# Backend-equivalence acceptance test (ctest `lbectl_backend_equivalence`):
# the same search run over every rank transport — virtual (token-serialized
# simulation), threads (real concurrent threads), process (one forked OS
# worker per rank over Unix-domain sockets) — must produce a byte-identical
# psms.tsv. Covers both the cold start (the process backend stages a bundle
# under out_dir) and the warm start (all backends mmap the prepared bundle).
# Invoked as:
#   cmake -DLBECTL=<lbectl> -DWORK_DIR=<scratch> -P backend_equivalence_test.cmake

file(REMOVE_RECURSE "${WORK_DIR}")
file(MAKE_DIRECTORY "${WORK_DIR}")

set(COMMON --entries 12000 --num_queries 16 --ranks 4 --seed 2019)

# --- cold start: no prepared bundle anywhere -------------------------------
foreach(backend virtual threads process)
  execute_process(
    COMMAND ${LBECTL} search ${COMMON} --backend ${backend}
            --out ${WORK_DIR}/cold_${backend}
    RESULT_VARIABLE status)
  if(NOT status EQUAL 0)
    message(FATAL_ERROR
            "cold lbectl search --backend ${backend} failed (${status})")
  endif()
endforeach()

foreach(backend threads process)
  execute_process(
    COMMAND ${CMAKE_COMMAND} -E compare_files
            ${WORK_DIR}/cold_virtual/psms.tsv
            ${WORK_DIR}/cold_${backend}/psms.tsv
    RESULT_VARIABLE status)
  if(NOT status EQUAL 0)
    message(FATAL_ERROR
            "cold --backend ${backend} psms.tsv differs from --backend "
            "virtual")
  endif()
  message(STATUS
          "cold --backend ${backend} psms.tsv is byte-identical to virtual")
endforeach()

# The process backend must report real wire traffic in metrics.csv: every
# worker rank ships at least its result batches and stats, so comm_messages
# must be nonzero for some rank.
file(READ ${WORK_DIR}/cold_process/metrics.csv metrics)
if(NOT metrics MATCHES "comm_messages")
  message(FATAL_ERROR "metrics.csv is missing the comm_messages column")
endif()
set(saw_comm_traffic FALSE)
string(REPLACE "\n" ";" metrics_lines "${metrics}")
foreach(line IN LISTS metrics_lines)
  # rank,entries,index_bytes,build_s,query_s,work,comm_messages,comm_bytes,rss
  if(line MATCHES "^[0-9]+,([0-9.e+-]+,)+")
    string(REPLACE "," ";" fields "${line}")
    list(GET fields 6 comm_messages)
    if(comm_messages GREATER 0)
      set(saw_comm_traffic TRUE)
    endif()
  endif()
endforeach()
if(NOT saw_comm_traffic)
  message(FATAL_ERROR
          "process backend reported zero comm_messages on every rank")
endif()
message(STATUS "process backend reported real comm traffic in metrics.csv")

# --- warm start: every backend over one prepared, mmap'd bundle ------------
execute_process(
  COMMAND ${LBECTL} prepare ${COMMON} --out ${WORK_DIR}/prep
  RESULT_VARIABLE status)
if(NOT status EQUAL 0)
  message(FATAL_ERROR "lbectl prepare failed (${status})")
endif()

# The warm baseline: a cold rebuild over the *prepared plan* (the plan's
# stored database, not this invocation's synthetic one).
execute_process(
  COMMAND ${LBECTL} search ${COMMON} --plan ${WORK_DIR}/prep/plan.lbe
          --out ${WORK_DIR}/plan_cold
  RESULT_VARIABLE status)
if(NOT status EQUAL 0)
  message(FATAL_ERROR "plan-based cold lbectl search failed (${status})")
endif()

foreach(backend virtual threads process)
  execute_process(
    COMMAND ${LBECTL} search ${COMMON} --plan ${WORK_DIR}/prep/plan.lbe
            --index ${WORK_DIR}/prep --backend ${backend}
            --out ${WORK_DIR}/warm_${backend}
    OUTPUT_VARIABLE warm_output
    RESULT_VARIABLE status)
  if(NOT status EQUAL 0)
    message(FATAL_ERROR
            "warm lbectl search --backend ${backend} failed (${status})")
  endif()
  if(NOT warm_output MATCHES "warm start: loaded")
    message(FATAL_ERROR
            "warm search --backend ${backend} did not report a warm start:\n"
            "${warm_output}")
  endif()

  execute_process(
    COMMAND ${CMAKE_COMMAND} -E compare_files
            ${WORK_DIR}/plan_cold/psms.tsv
            ${WORK_DIR}/warm_${backend}/psms.tsv
    RESULT_VARIABLE status)
  if(NOT status EQUAL 0)
    message(FATAL_ERROR
            "warm --backend ${backend} psms.tsv differs from the cold "
            "rebuild over the same plan")
  endif()
  message(STATUS
          "warm --backend ${backend} psms.tsv is byte-identical to the "
          "cold rebuild over the same plan")
endforeach()
