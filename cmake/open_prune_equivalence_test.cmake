# Open-search pruning acceptance test (ctest `lbectl_open_prune_equivalence`):
# the same open-window PTM workload searched with block-max span pruning on
# (the default) and off must write byte-identical psms.tsv — over a cold
# build, a warm v5 bundle (mapped and eager), and a fully open window. The
# pruned run must also actually prune: metrics.csv's spans_pruned +
# blocks_pruned columns must be nonzero, so the equivalence is not
# vacuously "pruning never fired".
# Invoked as:
#   cmake -DLBECTL=<lbectl> -DWORK_DIR=<scratch> -P open_prune_equivalence_test.cmake

file(REMOVE_RECURSE "${WORK_DIR}")
file(MAKE_DIRECTORY "${WORK_DIR}")

# Coarse 1.0 Da bins keep many postings per bin, so bins span several
# 128-posting codec blocks and the per-block mass bounds have teeth.
set(COMMON --entries 20000 --num_queries 24 --ranks 2 --seed 2019
    --resolution 1.0 --ptm_fraction 0.5)

function(run_search label)
  execute_process(
    COMMAND ${LBECTL} search ${COMMON} ${ARGN} --out ${WORK_DIR}/${label}
    RESULT_VARIABLE status)
  if(NOT status EQUAL 0)
    message(FATAL_ERROR "lbectl search (${label}) failed (${status})")
  endif()
endfunction()

function(require_identical a b what)
  execute_process(
    COMMAND ${CMAKE_COMMAND} -E compare_files
            ${WORK_DIR}/${a}/psms.tsv ${WORK_DIR}/${b}/psms.tsv
    RESULT_VARIABLE status)
  if(NOT status EQUAL 0)
    message(FATAL_ERROR "psms.tsv differs: ${what}")
  endif()
  message(STATUS "psms.tsv identical: ${what}")
endfunction()

# Cold builds, wide window: pruning on vs off.
run_search(wide_on --open-window 100)
run_search(wide_off --open-window 100 --prune false)
require_identical(wide_on wide_off "wide window, prune on vs off (cold)")

# Fully open window: only the score-threshold half of pruning can fire.
run_search(inf_on --open-window inf)
run_search(inf_off --open-window inf --prune false)
require_identical(inf_on inf_off "open window, prune on vs off (cold)")

# Warm v5 bundle: bounds deserialized (mapped and eager) must prune the
# same way the cold-built bounds did. The cold reference here re-runs
# against the SAME plan (synthetic query draws differ between the
# workload-linked and plan-db paths, so wide_on above is not comparable).
execute_process(
  COMMAND ${LBECTL} prepare ${COMMON} --out ${WORK_DIR}/prep
  RESULT_VARIABLE status)
if(NOT status EQUAL 0)
  message(FATAL_ERROR "lbectl prepare failed (${status})")
endif()
run_search(cold_plan --open-window 100 --plan ${WORK_DIR}/prep/plan.lbe)
run_search(warm_mapped --open-window 100
           --plan ${WORK_DIR}/prep/plan.lbe --index ${WORK_DIR}/prep)
run_search(warm_eager --open-window 100 --mmap off
           --plan ${WORK_DIR}/prep/plan.lbe --index ${WORK_DIR}/prep)
require_identical(cold_plan warm_mapped "cold vs warm-mapped (prune on)")
require_identical(cold_plan warm_eager "cold vs warm-eager (prune on)")
run_search(warm_off --open-window 100 --prune false
           --plan ${WORK_DIR}/prep/plan.lbe --index ${WORK_DIR}/prep)
require_identical(warm_mapped warm_off "warm bundle, prune on vs off")

# Anti-vacuity: the pruned wide-window run must report pruning work.
file(READ ${WORK_DIR}/wide_on/metrics.csv metrics)
string(REPLACE "\n" ";" metrics_lines "${metrics}")
list(GET metrics_lines 0 header)
if(NOT header MATCHES "spans_pruned" OR NOT header MATCHES "blocks_pruned")
  message(FATAL_ERROR "metrics.csv lacks pruning columns: ${header}")
endif()
set(total_pruned 0)
list(LENGTH metrics_lines line_count)
math(EXPR last_line "${line_count} - 1")
foreach(i RANGE 1 ${last_line})
  list(GET metrics_lines ${i} line)
  if(line STREQUAL "")
    continue()
  endif()
  # rank,entries,index_bytes,build_seconds,query_seconds,work_units,
  # spans_walked,spans_pruned,blocks_pruned,candidates_scored,...
  string(REPLACE "," ";" fields "${line}")
  list(GET fields 8 blocks_pruned)
  math(EXPR total_pruned "${total_pruned} + ${blocks_pruned}")
endforeach()
if(total_pruned EQUAL 0)
  message(FATAL_ERROR "wide-window pruned run pruned zero blocks")
endif()
message(STATUS "wide-window pruned run skipped ${total_pruned} blocks")
