# Serving acceptance test (ctest `lbectl_serve_end_to_end`): a daemon
# started over a prepared index bundle must answer `lbectl query` with a
# psms.tsv byte-identical to a one-shot `lbectl search` — before AND after
# a SIGHUP hot swap — then exit cleanly on `query --shutdown`.
# Invoked as:
#   cmake -DLBECTL=<lbectl> -DWORK_DIR=<scratch> -P serve_test.cmake

file(REMOVE_RECURSE "${WORK_DIR}")
file(MAKE_DIRECTORY "${WORK_DIR}")

# One shell script so the daemon can run in the background with a kill trap;
# execute_process has no notion of a long-lived child.
set(SCRIPT "
set -e
COMMON='--entries 8000 --num_queries 24 --ranks 3 --seed 2019'
SOCK='${WORK_DIR}/daemon.sock'
LOG='${WORK_DIR}/serve.log'

'${LBECTL}' prepare \$COMMON --out '${WORK_DIR}/prep'
'${LBECTL}' search \$COMMON --plan '${WORK_DIR}/prep/plan.lbe' \
    --out '${WORK_DIR}/oneshot'

'${LBECTL}' serve \$COMMON --plan '${WORK_DIR}/prep/plan.lbe' \
    --index '${WORK_DIR}/prep' --socket \"\$SOCK\" > \"\$LOG\" 2>&1 &
SERVE_PID=\$!
trap 'kill \$SERVE_PID 2>/dev/null || true' EXIT

'${LBECTL}' query \$COMMON --plan '${WORK_DIR}/prep/plan.lbe' \
    --socket \"\$SOCK\" --batch 10 --out '${WORK_DIR}/q1'
cmp '${WORK_DIR}/oneshot/psms.tsv' '${WORK_DIR}/q1/psms.tsv'

kill -HUP \$SERVE_PID
i=0
until grep -q 'hot swap complete' \"\$LOG\"; do
  i=\$((i + 1))
  test \$i -le 150 || { echo 'hot swap never completed'; exit 1; }
  sleep 0.2
done

'${LBECTL}' query \$COMMON --plan '${WORK_DIR}/prep/plan.lbe' \
    --socket \"\$SOCK\" --batch 7 --out '${WORK_DIR}/q2'
cmp '${WORK_DIR}/oneshot/psms.tsv' '${WORK_DIR}/q2/psms.tsv'

'${LBECTL}' query \$COMMON --plan '${WORK_DIR}/prep/plan.lbe' \
    --socket \"\$SOCK\" --batch 24 --out '${WORK_DIR}/q3' --shutdown
cmp '${WORK_DIR}/oneshot/psms.tsv' '${WORK_DIR}/q3/psms.tsv'
wait \$SERVE_PID

grep -q 'listening on' \"\$LOG\"
grep -q 'shutdown complete' \"\$LOG\"
test ! -e \"\$SOCK\"
echo 'serve end-to-end: daemon rows byte-identical across reload + shutdown'
")

execute_process(
  COMMAND sh -c "${SCRIPT}"
  RESULT_VARIABLE status
  OUTPUT_VARIABLE out
  ERROR_VARIABLE err)
message(STATUS "${out}")
if(NOT status EQUAL 0)
  message(FATAL_ERROR "serve end-to-end failed (${status}):\n${out}\n${err}")
endif()
