# SIMD equivalence acceptance test (ctest `lbectl_simd_equivalence`):
# one prepared v4 bundle, searched warm at every decode kernel the CPU
# supports (--simd scalar/sse/avx2 over the mapped path), must produce a
# psms.tsv byte-identical to the eager streamed load (--mmap off), which
# never touches the packed extents lazily. Unsupported levels are skipped
# with a notice — lbectl clamps them to the best available kernel, so a
# cmp there would only re-test the fallback.
# Invoked as:
#   cmake -DLBECTL=<lbectl> -DWORK_DIR=<scratch> -P simd_equivalence_test.cmake

file(REMOVE_RECURSE "${WORK_DIR}")
file(MAKE_DIRECTORY "${WORK_DIR}")

set(COMMON --entries 12000 --num_queries 16 --ranks 4 --seed 2019)

execute_process(
  COMMAND ${LBECTL} prepare ${COMMON} --out ${WORK_DIR}/prep
  RESULT_VARIABLE status)
if(NOT status EQUAL 0)
  message(FATAL_ERROR "lbectl prepare failed (${status})")
endif()

# Baseline: eager streamed warm start, decoded with whatever kernel `auto`
# picks. Byte-identity against this run proves both the codec kernels and
# the lazy mapped path change nothing observable.
execute_process(
  COMMAND ${LBECTL} search ${COMMON} --plan ${WORK_DIR}/prep/plan.lbe
          --index ${WORK_DIR}/prep --mmap off
          --out ${WORK_DIR}/baseline
  RESULT_VARIABLE status)
if(NOT status EQUAL 0)
  message(FATAL_ERROR "baseline lbectl search --mmap off failed (${status})")
endif()

foreach(simd_level scalar sse avx2)
  execute_process(
    COMMAND ${LBECTL} search ${COMMON} --plan ${WORK_DIR}/prep/plan.lbe
            --index ${WORK_DIR}/prep --mmap on --simd ${simd_level}
            --out ${WORK_DIR}/simd_${simd_level}
    OUTPUT_VARIABLE search_output
    ERROR_VARIABLE search_stderr
    RESULT_VARIABLE status)
  if(NOT status EQUAL 0)
    message(FATAL_ERROR
            "lbectl search --simd ${simd_level} failed (${status})")
  endif()
  if(search_stderr MATCHES "not supported by this CPU")
    message(STATUS
            "simd level '${simd_level}' unsupported on this CPU; skipped")
    continue()
  endif()
  if(NOT search_output MATCHES "warm start: loaded")
    message(FATAL_ERROR
            "search --simd ${simd_level} did not report a warm start:\n"
            "${search_output}")
  endif()

  execute_process(
    COMMAND ${CMAKE_COMMAND} -E compare_files
            ${WORK_DIR}/baseline/psms.tsv
            ${WORK_DIR}/simd_${simd_level}/psms.tsv
    RESULT_VARIABLE status)
  if(NOT status EQUAL 0)
    message(FATAL_ERROR
            "--simd ${simd_level} psms.tsv differs from the eager baseline")
  endif()
  message(STATUS
          "--simd ${simd_level} psms.tsv is byte-identical to the eager "
          "baseline")
endforeach()
