# Warm-start acceptance test (ctest `lbectl_warm_start_identical`):
# prepare writes the plan + index bundle, then a warm `search --index` must
# produce a byte-identical psms.tsv to a cold rebuild — through BOTH warm
# load paths: `--mmap on` (mapped, lazy chunks; the default) and
# `--mmap off` (eager streamed load).
# Invoked as:
#   cmake -DLBECTL=<lbectl> -DWORK_DIR=<scratch> -P warm_start_test.cmake

file(REMOVE_RECURSE "${WORK_DIR}")
file(MAKE_DIRECTORY "${WORK_DIR}")

set(COMMON --entries 12000 --num_queries 16 --ranks 4 --seed 2019)

execute_process(
  COMMAND ${LBECTL} prepare ${COMMON} --out ${WORK_DIR}/prep
  RESULT_VARIABLE status)
if(NOT status EQUAL 0)
  message(FATAL_ERROR "lbectl prepare failed (${status})")
endif()

execute_process(
  COMMAND ${LBECTL} search ${COMMON} --plan ${WORK_DIR}/prep/plan.lbe
          --out ${WORK_DIR}/cold
  RESULT_VARIABLE status)
if(NOT status EQUAL 0)
  message(FATAL_ERROR "cold lbectl search failed (${status})")
endif()

foreach(mmap_mode on off)
  execute_process(
    COMMAND ${LBECTL} search ${COMMON} --plan ${WORK_DIR}/prep/plan.lbe
            --index ${WORK_DIR}/prep --mmap ${mmap_mode}
            --out ${WORK_DIR}/warm_${mmap_mode}
    OUTPUT_VARIABLE warm_output
    RESULT_VARIABLE status)
  if(NOT status EQUAL 0)
    message(FATAL_ERROR
            "warm lbectl search --mmap ${mmap_mode} failed (${status})")
  endif()
  if(NOT warm_output MATCHES "warm start: loaded")
    message(FATAL_ERROR
            "warm search --mmap ${mmap_mode} did not report a warm start:\n"
            "${warm_output}")
  endif()
  if(mmap_mode STREQUAL "on" AND NOT warm_output MATCHES "mmap, lazy chunks")
    message(FATAL_ERROR
            "warm search --mmap on did not take the mapped path:\n"
            "${warm_output}")
  endif()

  execute_process(
    COMMAND ${CMAKE_COMMAND} -E compare_files
            ${WORK_DIR}/cold/psms.tsv ${WORK_DIR}/warm_${mmap_mode}/psms.tsv
    RESULT_VARIABLE status)
  if(NOT status EQUAL 0)
    message(FATAL_ERROR
            "warm-start (--mmap ${mmap_mode}) psms.tsv differs from the "
            "cold rebuild")
  endif()
  message(STATUS
          "warm-start (--mmap ${mmap_mode}) psms.tsv is byte-identical to "
          "the cold rebuild")
endforeach()
