# Schedule-equivalence acceptance test (ctest `lbectl_schedule_equivalence`):
# work stealing is a pure execution-order change — the same search run with
# --schedule stealing must produce a psms.tsv byte-identical to
# --schedule lbe_static, on every rank transport. The merge's strict total
# order over global PSM ids is what makes this hold no matter which rank
# executed which batch or how a victim/thief race resolved; this script is
# the end-to-end check that no layer between the CLI and the wire breaks it.
# The batch size is kept small so the queue is deep enough for grants to
# actually fire when scheduling jitter allows (byte-identity must hold
# whether or not any batch migrates).
# Invoked as:
#   cmake -DLBECTL=<lbectl> -DWORK_DIR=<scratch> -P schedule_equivalence_test.cmake

file(REMOVE_RECURSE "${WORK_DIR}")
file(MAKE_DIRECTORY "${WORK_DIR}")

set(COMMON --entries 12000 --num_queries 32 --ranks 4 --batch 4 --seed 2019)

foreach(backend virtual threads process)
  execute_process(
    COMMAND ${LBECTL} search ${COMMON} --backend ${backend}
            --schedule lbe_static --out ${WORK_DIR}/static_${backend}
    RESULT_VARIABLE status)
  if(NOT status EQUAL 0)
    message(FATAL_ERROR
            "lbectl search --schedule lbe_static --backend ${backend} "
            "failed (${status})")
  endif()

  execute_process(
    COMMAND ${LBECTL} search ${COMMON} --backend ${backend}
            --schedule stealing --steal_threshold 1.0
            --out ${WORK_DIR}/stealing_${backend}
    RESULT_VARIABLE status)
  if(NOT status EQUAL 0)
    message(FATAL_ERROR
            "lbectl search --schedule stealing --backend ${backend} "
            "failed (${status})")
  endif()

  execute_process(
    COMMAND ${CMAKE_COMMAND} -E compare_files
            ${WORK_DIR}/static_${backend}/psms.tsv
            ${WORK_DIR}/stealing_${backend}/psms.tsv
    RESULT_VARIABLE status)
  if(NOT status EQUAL 0)
    message(FATAL_ERROR
            "--schedule stealing psms.tsv differs from lbe_static on "
            "--backend ${backend}")
  endif()
  message(STATUS
          "--backend ${backend}: stealing psms.tsv is byte-identical to "
          "lbe_static")
endforeach()

# The stealing run must surface its scheduling telemetry: metrics.csv gains
# the batches_stolen and cost-model error columns.
file(READ ${WORK_DIR}/stealing_virtual/metrics.csv metrics)
foreach(column batches_stolen predicted_cost pred_rel_err_mean)
  if(NOT metrics MATCHES "${column}")
    message(FATAL_ERROR "metrics.csv is missing the ${column} column")
  endif()
endforeach()
message(STATUS "stealing metrics.csv carries the scheduling columns")
