// lbectl — the end-to-end LBE search driver.
//
// Wires the whole reproduction into one binary: FASTA (or synthetic
// proteome) -> digestion + decoys + dedup -> LBE grouping/partitioning ->
// per-rank index build -> distributed query execution over a simulated MPI
// cluster (optionally hybrid-threaded per rank) -> master-side merge ->
// target-decoy FDR -> PSM/metrics reports. See `lbectl help`.
#include <cstdio>

#include "app/commands.hpp"
#include "app/options.hpp"
#include "app/rank_programs.hpp"
#include "common/error.hpp"
#include "simmpi/process.hpp"

int main(int argc, char** argv) {
  using namespace lbe;
  // `search --backend process` re-execs this binary once per worker rank;
  // the worker entry point must run before any CLI parsing.
  if (mpi::is_rank_worker(argc, argv)) {
    app::register_rank_programs();
    return mpi::rank_worker_main(argc, argv);
  }
  try {
    return app::dispatch(app::parse_cli(argc, argv));
  } catch (const Error& error) {
    std::fprintf(stderr, "lbectl: %s\n", error.what());
    return 2;
  }
}
