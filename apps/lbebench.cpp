// lbebench — unified benchmark driver.
//
//   lbebench --suite smoke|micro|index_io|serve|mpi_backend|open|figures|ablation
//            [--filter SUBSTR]
//            [--repeat N] [--out DIR]
//            [--baseline FILE --max-regress FRAC] [--no-json] [--list]
//
// Runs the registered suite, prints each benchmark's figure/CSV output and
// shape checks, and writes DIR/BENCH_<suite>.json (schema-versioned; see
// src/perf/bench_report.hpp). With --baseline, exits 2 if any benchmark's
// median-derived "queries_per_sec" falls more than --max-regress below the
// baseline file — the CI perf-smoke gate.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <exception>
#include <string>

#include "app/rank_programs.hpp"
#include "common/logging.hpp"
#include "index/posting_codec.hpp"
#include "perf/bench_registry.hpp"
#include "simmpi/process.hpp"

namespace {

constexpr const char* kUsage =
    "usage: lbebench [--suite smoke|micro|index_io|serve|mpi_backend|\n"
    "                         open|figures|ablation]\n"
    "                [--list] [--filter SUBSTR] [--repeat N] [--out DIR]\n"
    "                [--baseline FILE] [--max-regress FRAC] [--no-json]\n"
    "                [--gate-lower METRIC[,METRIC...]]\n"
    "                [--lower-max-regress FRAC]\n"
    "                [--simd auto|scalar|sse|avx2]\n"
    "\n"
    "Runs a registered benchmark suite and writes BENCH_<suite>.json\n"
    "(schema v1: wall time min/median/stddev per benchmark, queries/sec,\n"
    "cPSMs/sec, Eq. 1 load imbalance, peak RSS, git/compiler provenance).\n"
    "With --baseline, exits 2 when median queries/sec regresses more than\n"
    "--max-regress (default 0.25) against the baseline file. --gate-lower\n"
    "additionally gates the named lower-is-better metrics (e.g.\n"
    "p50_latency_ms,p99_latency_ms of the serve suite), failing when one\n"
    "grows beyond baseline / (1 - --lower-max-regress) (default 0.5).\n";

int list_benches() {
  lbe::perf::register_all_benches();
  std::printf("%-28s %-10s %s\n", "name", "suite", "description");
  for (const auto& bench : lbe::perf::BenchRegistry::instance().all()) {
    std::printf("%-28s %-10s %s\n", bench.name.c_str(), bench.suite.c_str(),
                bench.description.c_str());
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  // Process-backend benches re-exec this binary once per worker rank.
  if (lbe::mpi::is_rank_worker(argc, argv)) {
    lbe::app::register_rank_programs();
    return lbe::mpi::rank_worker_main(argc, argv);
  }
  lbe::log::set_level(lbe::log::Level::kWarn);
  lbe::perf::BenchRunOptions options;
  bool list = false;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto value = [&]() -> std::string {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "lbebench: %s needs a value\n%s", arg.c_str(),
                     kUsage);
        std::exit(1);
      }
      return argv[++i];
    };
    if (arg == "--suite") {
      options.suite = value();
    } else if (arg == "--filter") {
      options.filter = value();
    } else if (arg == "--repeat") {
      options.repeat = std::atoi(value().c_str());
      if (options.repeat < 1) {
        std::fprintf(stderr, "lbebench: --repeat must be >= 1\n");
        return 1;
      }
    } else if (arg == "--out") {
      options.out_dir = value();
    } else if (arg == "--baseline") {
      options.baseline_path = value();
    } else if (arg == "--max-regress") {
      options.max_regress = std::atof(value().c_str());
      if (options.max_regress < 0.0 || options.max_regress >= 1.0) {
        std::fprintf(stderr, "lbebench: --max-regress must be in [0, 1)\n");
        return 1;
      }
    } else if (arg == "--gate-lower") {
      std::string list = value();
      std::size_t start = 0;
      while (start <= list.size()) {
        const std::size_t comma = list.find(',', start);
        const std::string metric =
            list.substr(start, comma == std::string::npos ? std::string::npos
                                                          : comma - start);
        if (!metric.empty()) options.gate_lower.push_back(metric);
        if (comma == std::string::npos) break;
        start = comma + 1;
      }
    } else if (arg == "--lower-max-regress") {
      options.lower_max_regress = std::atof(value().c_str());
      if (options.lower_max_regress < 0.0 ||
          options.lower_max_regress >= 1.0) {
        std::fprintf(stderr,
                     "lbebench: --lower-max-regress must be in [0, 1)\n");
        return 1;
      }
    } else if (arg == "--simd") {
      namespace codec = lbe::index::codec;
      const std::string name = value();
      codec::SimdLevel level = codec::SimdLevel::kAuto;
      if (!codec::parse_simd_level(name, level)) {
        std::fprintf(stderr,
                     "lbebench: unknown simd level '%s' "
                     "(expected auto|scalar|sse|avx2)\n",
                     name.c_str());
        return 1;
      }
      codec::set_simd_level(level);
      if (level != codec::SimdLevel::kAuto &&
          codec::resolved_simd_level() != level) {
        std::fprintf(stderr,
                     "lbebench: simd level '%s' is not supported by this "
                     "CPU; using '%s'\n",
                     name.c_str(),
                     codec::simd_level_name(codec::resolved_simd_level()));
      }
    } else if (arg == "--no-json") {
      options.write_json = false;
    } else if (arg == "--list") {
      list = true;
    } else if (arg == "--help" || arg == "-h") {
      std::printf("%s", kUsage);
      return 0;
    } else {
      std::fprintf(stderr, "lbebench: unknown option %s\n%s", arg.c_str(),
                   kUsage);
      return 1;
    }
  }

  try {
    if (list) return list_benches();
    return lbe::perf::run_suite(options);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "lbebench: %s\n", e.what());
    return 1;
  }
}
