// Target-decoy validated search — the statistically-controlled workflow a
// production deployment runs:
//
//   1. synthetic proteome + pseudo-reversed decoys (equal statistics),
//   2. digestion, dedup, LBE plan over the combined database,
//   3. distributed open search of synthetic query spectra,
//   4. PSM-level q-values from the decoy hit distribution,
//   5. TSV report with decoy flags + acceptance count at 1% FDR.
//
// Usage: ./examples/target_decoy_fdr [report.tsv]
#include <cstdio>
#include <unordered_set>

#include "common/logging.hpp"
#include "digest/decoy.hpp"
#include "digest/dedup.hpp"
#include "digest/digestor.hpp"
#include "search/distributed.hpp"
#include "search/fdr.hpp"
#include "search/report.hpp"
#include "synth/proteome.hpp"
#include "synth/spectra.hpp"

int main(int argc, char** argv) {
  using namespace lbe;
  log::set_level(log::Level::kWarn);

  // 1. Targets + pseudo-reversed decoys.
  synth::ProteomeParams proteome_params;
  proteome_params.num_families = 16;
  proteome_params.proteins_per_family = 4;
  const auto targets = synth::generate_proteome(proteome_params);
  const auto database =
      digest::with_decoys(targets, digest::DecoyMethod::kPseudoReverse);
  std::printf("database: %zu targets + %zu decoys\n", targets.size(),
              database.size() - targets.size());

  // 2. Digest, dedup; remember which peptide sequences are decoy-only.
  digest::DigestionParams digestion;
  std::unordered_set<std::string> target_peps;
  std::unordered_set<std::string> decoy_peps;
  std::vector<std::string> peptides;
  for (const auto& record : database) {
    const bool decoy = digest::is_decoy_header(record.header);
    for (auto& pep :
         digest::digest_protein(record.sequence, 0, digest::trypsin(),
                                digestion)) {
      (decoy ? decoy_peps : target_peps).insert(pep.sequence);
      peptides.push_back(std::move(pep.sequence));
    }
  }
  digest::deduplicate(peptides);
  std::printf("peptides: %zu unique after dedup\n", peptides.size());

  // 3. LBE plan + distributed search. Queries are generated from *target*
  // peptides only, so every decoy hit is by construction a false match.
  const chem::ModificationSet mods = chem::ModificationSet::paper_default();
  digest::VariantParams variants;
  variants.max_mod_residues = 2;
  variants.max_variants_per_peptide = 16;
  core::LbeParams lbe;
  lbe.partition.ranks = 8;
  const core::LbePlan plan(peptides, mods, variants, lbe);

  // Decoy annotation per clustered base: decoy-only sequences count as
  // decoys; shared target/decoy sequences stay targets (standard rule).
  std::vector<bool> decoy_bases(plan.num_bases(), false);
  std::size_t decoy_base_count = 0;
  for (std::uint32_t b = 0; b < plan.num_bases(); ++b) {
    const auto& seq = plan.base_sequence(b);
    decoy_bases[b] = decoy_peps.count(seq) && !target_peps.count(seq);
    if (decoy_bases[b]) ++decoy_base_count;
  }
  std::printf("index: %llu entries over %zu groups (%zu decoy bases)\n",
              static_cast<unsigned long long>(plan.num_variants()),
              plan.grouping().num_groups(), decoy_base_count);

  std::vector<std::string> target_list(target_peps.begin(),
                                       target_peps.end());
  std::sort(target_list.begin(), target_list.end());  // determinism
  synth::SpectraParams spectra_params;
  spectra_params.num_spectra = 200;
  const auto queries = synth::generate_spectra(target_list, mods,
                                               spectra_params);

  search::DistributedParams params;
  params.index.fragments.max_fragment_charge = 1;
  params.search.score.fragments = params.index.fragments;
  mpi::ClusterOptions cluster_options;
  cluster_options.ranks = 8;
  mpi::Cluster cluster(cluster_options);
  const auto report = search::run_distributed_search(
      cluster, plan, queries.spectra, params);

  // 4. Top-1 PSMs -> q-values.
  std::vector<search::FdrInput> fdr_input;
  for (const auto& result : report.results) {
    if (result.top.empty()) continue;
    const auto& best = result.top.front();
    fdr_input.push_back(search::FdrInput{
        best.score,
        decoy_bases[plan.locate_variant(best.peptide).base_id]});
  }
  const auto qvalues = search::compute_qvalues(fdr_input);
  std::size_t decoy_hits = 0;
  for (const auto& input : fdr_input) {
    if (input.is_decoy) ++decoy_hits;
  }
  const std::size_t accepted_1pct =
      search::accepted_at(fdr_input, qvalues, 0.01);
  const std::size_t accepted_5pct =
      search::accepted_at(fdr_input, qvalues, 0.05);
  std::printf("\nPSMs: %zu top-1 hits, %zu decoy\n", fdr_input.size(),
              decoy_hits);
  std::printf("accepted at 1%% FDR: %zu; at 5%% FDR: %zu\n", accepted_1pct,
              accepted_5pct);

  // 5. TSV report.
  const std::string path = argc > 1 ? argv[1] : "psm_report.tsv";
  search::write_psm_report_file(path, plan, report.results, decoy_bases);
  std::printf("report written to %s\n", path.c_str());
  return 0;
}
