// Database preparation pipeline — the paper's §V-A preprocessing chain:
//
//   protein FASTA ──digest (trypsin, <=2 missed, len 6-40, 100-5000 Da)──▶
//   peptides ──deduplicate (DBToolkit step)──▶ unique peptides ──Algorithm 1
//   grouping──▶ clustered database FASTA (the input every rank reads).
//
// Usage:
//   ./examples/db_prep_pipeline [input.fasta] [clustered_out.fasta]
// With no arguments a synthetic 24-family proteome is generated first, so
// the example is runnable out of the box.
#include <cstdio>
#include <string>

#include "core/lbe_layer.hpp"
#include "digest/dedup.hpp"
#include "digest/digestor.hpp"
#include "digest/enzyme.hpp"
#include "io/fasta.hpp"
#include "synth/proteome.hpp"

int main(int argc, char** argv) {
  using namespace lbe;

  // 1. Load (or synthesize) the protein database.
  std::vector<io::FastaRecord> proteins;
  if (argc > 1) {
    proteins = io::read_fasta_file(argv[1]);
    std::printf("loaded %zu proteins from %s\n", proteins.size(), argv[1]);
  } else {
    synth::ProteomeParams synth_params;
    synth_params.num_families = 24;
    synth_params.proteins_per_family = 6;
    proteins = synth::generate_proteome(synth_params);
    std::printf("generated %zu synthetic proteins (24 families x 6)\n",
                proteins.size());
  }

  // 2. In-silico digestion with the paper's settings.
  digest::DigestionParams digestion;  // defaults == §V-A settings
  auto digested = digest::digest_database(proteins, digest::trypsin(),
                                          digestion);
  std::printf("digestion: %zu peptides (fully tryptic, <=%u missed)\n",
              digested.size(), digestion.missed_cleavages);

  // 3. Duplicate removal (the DBToolkit step).
  const std::size_t duplicates = digest::deduplicate(digested);
  std::printf("deduplication: dropped %zu duplicates, %zu remain\n",
              duplicates, digested.size());

  std::vector<std::string> sequences;
  sequences.reserve(digested.size());
  for (auto& peptide : digested) {
    sequences.push_back(std::move(peptide.sequence));
  }

  // 4. Algorithm 1 grouping with the paper's defaults (criterion 2).
  const auto grouping =
      core::group_peptides(std::move(sequences), core::GroupingParams{});
  std::printf("grouping: %zu groups over %zu peptides (avg %.2f/group)\n",
              grouping.num_groups(), grouping.sequences.size(),
              grouping.num_groups() == 0
                  ? 0.0
                  : static_cast<double>(grouping.sequences.size()) /
                        static_cast<double>(grouping.num_groups()));

  // 5. Write the clustered database every rank will read.
  const std::string out_path =
      argc > 2 ? argv[2] : "clustered_database.fasta";
  core::write_clustered_fasta(out_path, grouping);
  std::printf("clustered database written to %s\n", out_path.c_str());

  // Round-trip check, as a sanity demonstration.
  const auto reloaded = core::read_clustered_fasta(out_path);
  std::printf("round-trip: %zu sequences, %zu groups — %s\n",
              reloaded.sequences.size(), reloaded.group_sizes.size(),
              reloaded.sequences == grouping.sequences ? "OK" : "MISMATCH");
  return 0;
}
