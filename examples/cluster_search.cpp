// Cluster search — the paper's full distributed experiment at example
// scale: build a synthetic workload, partition it with a chosen policy,
// run the search over a simulated MPI cluster, and print the per-rank load
// table that Figs. 6/11 summarize.
//
// Usage:
//   ./examples/cluster_search [policy=cyclic] [ranks=16] [entries=60000]
// Try `chunk` vs `cyclic` to watch the load-imbalance story unfold.
#include <cstdio>
#include <string>

#include "common/logging.hpp"
#include "common/timer.hpp"
#include "perf/metrics.hpp"
#include "search/distributed.hpp"
#include "synth/workload.hpp"

int main(int argc, char** argv) {
  using namespace lbe;
  log::set_level(log::Level::kWarn);

  const core::Policy policy =
      argc > 1 ? core::policy_from_string(argv[1]) : core::Policy::kCyclic;
  const int ranks = argc > 2 ? std::stoi(argv[2]) : 16;
  const std::uint64_t entries =
      argc > 3 ? static_cast<std::uint64_t>(std::stoll(argv[3])) : 60000;

  std::printf("policy=%s ranks=%d target index entries=%llu\n",
              core::policy_name(policy), ranks,
              static_cast<unsigned long long>(entries));

  const auto workload = synth::make_paper_workload(entries, 64);
  std::printf("workload: %zu base peptides, %llu entries, %zu queries\n",
              workload.base_peptides.size(),
              static_cast<unsigned long long>(workload.planned_entries),
              workload.queries.size());

  core::LbeParams lbe;
  lbe.partition.policy = policy;
  lbe.partition.ranks = ranks;
  Stopwatch prep;
  const core::LbePlan plan(workload.base_peptides, workload.mods,
                           workload.variant_params, lbe);
  const double prep_seconds = prep.seconds();

  search::DistributedParams params;
  params.index.fragments.max_fragment_charge = 1;
  params.search.score.fragments = params.index.fragments;
  params.prep_seconds = prep_seconds;

  mpi::ClusterOptions options;
  options.ranks = ranks;
  mpi::Cluster cluster(options);
  const auto report = search::run_distributed_search(
      cluster, plan, workload.queries, params);

  std::printf("\n%5s %10s %12s %12s %14s\n", "rank", "entries", "build(ms)",
              "query(ms)", "work units");
  for (int rank = 0; rank < ranks; ++rank) {
    const auto r = static_cast<std::size_t>(rank);
    std::printf("%5d %10llu %12.2f %12.2f %14.0f\n", rank,
                static_cast<unsigned long long>(report.index_entries[r]),
                report.times[r].build_seconds() * 1e3,
                report.times[r].query_seconds() * 1e3,
                report.work[r].cost_units());
  }

  const auto time_stats = perf::load_stats(report.query_phase_seconds());
  std::vector<double> work_units;
  for (const auto& work : report.work) work_units.push_back(work.cost_units());
  const auto work_stats = perf::load_stats(work_units);

  std::printf("\nquery-phase load imbalance (Eq. 1):\n");
  std::printf("  by time:       %.1f%%  (Tavg=%.1f ms, dTmax=%.1f ms)\n",
              100.0 * time_stats.imbalance, time_stats.t_avg * 1e3,
              time_stats.delta_t_max * 1e3);
  std::printf("  by work units: %.1f%%\n", 100.0 * work_stats.imbalance);
  std::printf("  wasted CPU time Twst = N*dTmax = %.1f ms\n",
              time_stats.wasted_cpu * 1e3);
  std::printf("total pipeline makespan: %.1f ms (prep %.1f ms charged to "
              "rank 0)\n",
              report.makespan * 1e3, prep_seconds * 1e3);

  std::size_t matched = 0;
  for (const auto& result : report.results) {
    if (!result.top.empty()) ++matched;
  }
  std::printf("queries with at least one PSM: %zu / %zu\n", matched,
              report.results.size());
  return 0;
}
