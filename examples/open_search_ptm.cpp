// Open search with post-translational modifications — the use case that
// motivates the paper's introduction: spectra whose precursor mass is
// shifted by an unexpected modification escape narrow-window search, so the
// engine runs with ΔM = ∞ (open search) and the index carries modified
// variants. This example:
//
//   1. indexes peptides with the paper's PTM set (up to 5 mod residues),
//   2. generates queries from *modified* peptide forms,
//   3. searches open-window and reports the identified modification state,
//   4. shows the same spectra failing under a narrow ±0.1 Da search with an
//      unmodified index — the "dark matter" the intro describes,
//   5. repeats the exercise with *unannounced* PTM-like shifts (deltas the
//      database has no variant for), which only a wide precursor window can
//      recover.
//
// Doubles as a ctest: every "must find" / "must miss" expectation below is
// asserted, and a violation exits nonzero.
#include <cstdio>
#include <cstdlib>

#include "digest/variants.hpp"
#include "search/query_engine.hpp"
#include "synth/spectra.hpp"
#include "theospec/fragmenter.hpp"

namespace {

void expect(bool condition, const char* what) {
  if (condition) return;
  std::printf("EXPECTATION FAILED: %s\n", what);
  std::exit(1);
}

}  // namespace

int main() {
  using namespace lbe;

  const chem::ModificationSet mods = chem::ModificationSet::paper_default();
  const std::vector<std::string> peptides = {
      "NMKAAAGGK", "MMGFNNK", "QCKAAWK", "PEPTMIDEK", "GGNQMKR",
  };

  // Index A: modified variants included (paper settings, <=5 sites).
  digest::VariantParams with_mods;
  with_mods.max_mod_residues = 5;
  index::IndexParams index_params;
  index_params.fragments.max_fragment_charge = 1;
  index::PeptideStore store_mods(&mods);
  for (const auto& seq : peptides) {
    for (const auto& variant :
         digest::enumerate_variants(seq, mods, with_mods)) {
      store_mods.add(variant, mods);
    }
  }
  const index::ChunkedIndex open_index(std::move(store_mods), mods,
                                       index_params,
                                       index::ChunkingParams{});
  std::printf("open-search index: %zu entries from %zu peptides (%.1fx "
              "blow-up from PTMs)\n",
              open_index.num_peptides(), peptides.size(),
              static_cast<double>(open_index.num_peptides()) /
                  static_cast<double>(peptides.size()));

  // Index B: unmodified only (what a narrow search engine would hold).
  index::PeptideStore store_plain(&mods);
  for (const auto& seq : peptides) {
    store_plain.add(chem::Peptide(seq), mods);
  }
  const index::ChunkedIndex plain_index(std::move(store_plain), mods,
                                        index_params,
                                        index::ChunkingParams{});

  // Queries: every spectrum comes from a modified peptide form.
  synth::SpectraParams spectra_params;
  spectra_params.num_spectra = 12;
  spectra_params.modified_fraction = 1.0;
  spectra_params.max_mods_per_query = 3;
  spectra_params.fragments = index_params.fragments;
  const auto generated = synth::generate_spectra(peptides, mods,
                                                 spectra_params);

  search::SearchParams open_params;
  open_params.filter.shared_peak_min = 4;  // ΔM defaults to infinity
  open_params.score.fragments = index_params.fragments;
  const search::QueryEngine open_engine(open_index, mods, open_params);

  search::SearchParams narrow_params = open_params;
  narrow_params.filter.precursor_tolerance = 0.1;  // closed search
  const search::QueryEngine narrow_engine(plain_index, mods, narrow_params);

  std::printf("\n%-4s %-28s %-12s %s\n", "qid", "open-search id",
              "mass shift", "narrow search vs plain index");
  std::size_t open_hits = 0;
  std::size_t narrow_hits = 0;
  for (std::size_t q = 0; q < generated.spectra.size(); ++q) {
    index::QueryWork work;
    const auto open_result = open_engine.search(
        generated.spectra[q], static_cast<std::uint32_t>(q), work);
    const auto narrow_result = narrow_engine.search(
        generated.spectra[q], static_cast<std::uint32_t>(q), work);

    std::string open_id = "(none)";
    double shift = 0.0;
    if (!open_result.top.empty()) {
      ++open_hits;
      const auto peptide =
          open_index.store().materialize(open_result.top[0].peptide);
      open_id = peptide.annotated(mods);
      shift = peptide.mass(mods) - chem::Peptide(peptide.sequence()).mass(mods);
    }
    if (!narrow_result.top.empty()) ++narrow_hits;
    std::printf("%-4zu %-28s %+9.4f Da %s\n", q, open_id.c_str(), shift,
                narrow_result.top.empty() ? "MISSED (dark matter)"
                                          : "matched");
  }
  std::printf("\nopen search identified %zu/%zu modified spectra; "
              "narrow+unmodified identified %zu/%zu\n",
              open_hits, generated.spectra.size(), narrow_hits,
              generated.spectra.size());
  expect(open_hits == generated.spectra.size(),
         "open-window search must identify every modified spectrum");
  expect(narrow_hits == 0,
         "narrow-window search over the unmodified index must miss every "
         "modified spectrum");

  // Part 2: unannounced shifts. The generator plants a PTM-like delta the
  // database has *no variant for* (12-120 Da at a random residue); the
  // precursor and site-containing fragments move together. A wide window
  // still recovers the base peptide from the unshifted fragments; the
  // narrow window cannot even form a candidate list.
  synth::SpectraParams shifted_params;
  shifted_params.num_spectra = 12;
  shifted_params.modified_fraction = 0.0;
  shifted_params.ptm_shift_fraction = 1.0;
  shifted_params.fragments = index_params.fragments;
  const auto shifted = synth::generate_spectra(peptides, mods,
                                               shifted_params);

  search::SearchParams wide_params = open_params;
  wide_params.filter.precursor_tolerance = 150.0;  // covers every shift
  const search::QueryEngine wide_engine(plain_index, mods, wide_params);
  const search::QueryEngine narrow_plain_engine(plain_index, mods,
                                                narrow_params);

  std::size_t wide_correct = 0;
  std::size_t narrow_shifted_hits = 0;
  for (std::size_t q = 0; q < shifted.spectra.size(); ++q) {
    index::QueryWork work;
    const auto wide_result = wide_engine.search(
        shifted.spectra[q], static_cast<std::uint32_t>(q), work);
    const auto narrow_result = narrow_plain_engine.search(
        shifted.spectra[q], static_cast<std::uint32_t>(q), work);
    if (!wide_result.top.empty()) {
      const auto peptide =
          plain_index.store().materialize(wide_result.top[0].peptide);
      if (peptide.sequence() == peptides[shifted.truth[q]]) ++wide_correct;
    }
    if (!narrow_result.top.empty()) ++narrow_shifted_hits;
    expect(shifted.ptm_shift[q] >= 12.0 && shifted.ptm_shift[q] <= 120.0,
           "every spectrum in this batch carries an unannounced shift");
  }
  std::printf("unannounced shifts: ±150 Da window recovered %zu/%zu base "
              "peptides; ±0.1 Da window matched %zu\n",
              wide_correct, shifted.spectra.size(), narrow_shifted_hits);
  expect(wide_correct == shifted.spectra.size(),
         "wide-window search must recover the base peptide under every "
         "unannounced shift");
  expect(narrow_shifted_hits == 0,
         "narrow-window search must miss every unannounced-shift spectrum");
  return 0;
}
