// Quickstart — the smallest end-to-end use of the LBE library.
//
//   1. take a handful of peptide sequences (normally: digested from FASTA),
//   2. build an LBE plan (grouping + cyclic partitioning for 4 ranks),
//   3. run the distributed search on the simulated cluster,
//   4. print the top peptide-spectrum match per query.
//
// Build & run:  ./examples/quickstart
#include <cstdio>

#include "core/lbe_layer.hpp"
#include "search/distributed.hpp"
#include "theospec/fragmenter.hpp"

int main() {
  using namespace lbe;

  // A miniature peptide database. Real pipelines produce this with
  // digest::digest_database + digest::deduplicate (see db_prep_pipeline).
  const std::vector<std::string> peptides = {
      "PEPTIDEK",  "PEPTIDER",   "MKWVTFISLLK", "GGGGGGK",
      "WWWWHHHHK", "AAAAAAGK",   "NMGGGKAA",    "CCCCCCK",
  };

  // The paper's variable modifications (deamidation, Gly-Gly, oxidation),
  // at most 2 modified residues per peptide for this demo.
  const chem::ModificationSet mods = chem::ModificationSet::paper_default();
  digest::VariantParams variants;
  variants.max_mod_residues = 2;

  // LBE plan: Algorithm-1 grouping, cyclic partitioning over 4 ranks.
  core::LbeParams lbe;
  lbe.partition.policy = core::Policy::kCyclic;
  lbe.partition.ranks = 4;
  const core::LbePlan plan(peptides, mods, variants, lbe);
  std::printf("database: %zu base peptides -> %llu index entries, %zu groups\n",
              plan.num_bases(),
              static_cast<unsigned long long>(plan.num_variants()),
              plan.grouping().num_groups());

  // Queries: here, noise-free theoretical spectra of three peptides.
  search::DistributedParams params;
  params.index.fragments.max_fragment_charge = 1;
  params.search.score.fragments = params.index.fragments;
  params.search.filter.shared_peak_min = 4;
  std::vector<chem::Spectrum> queries;
  for (const char* seq : {"PEPTIDEK", "MKWVTFISLLK", "NMGGGKAA"}) {
    queries.push_back(theospec::theoretical_spectrum(
        chem::Peptide(seq), mods, params.index.fragments));
  }

  // Simulated 4-rank cluster; virtual time measures per-rank load.
  mpi::ClusterOptions cluster_options;
  cluster_options.ranks = 4;
  mpi::Cluster cluster(cluster_options);
  const auto report =
      search::run_distributed_search(cluster, plan, queries, params);

  for (const auto& result : report.results) {
    if (result.top.empty()) {
      std::printf("query %u: no match\n", result.query_id);
      continue;
    }
    const auto& best = result.top.front();
    const chem::Peptide peptide = plan.variant_peptide(best.peptide);
    std::printf(
        "query %u: %-24s shared peaks=%2u score=%6.2f (rank %d)\n",
        result.query_id, peptide.annotated(mods).c_str(), best.shared_peaks,
        static_cast<double>(best.score), best.source_rank);
  }
  std::printf("simulated makespan: %.3f ms across %d ranks\n",
              report.makespan * 1e3, plan.ranks());
  return 0;
}
