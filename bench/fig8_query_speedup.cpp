// Fig. 8 — Query-time speedup vs number of MPI processes (cyclic policy).
//
// Paper claim: distributed querying scales almost linearly with CPUs. The
// paper could not run 1 MPI process (10.5M-spectra partition cap), so its
// base case is 2 CPUs for the smallest index and 4 CPUs for the rest,
// scaled by ideal efficiency — reproduced here via speedup_vs_base.
#include "bench_common.hpp"

#include <algorithm>

int main() {
  using namespace lbe;
  log::set_level(log::Level::kWarn);

  perf::Figure fig(
      "Fig. 8", "Query speedup vs MPI processes (cyclic policy)",
      "near-linear query speedup; base case 2 CPUs (smallest index) / 4 CPUs",
      {"ranks", "index_entries", "speedup", "efficiency"});

  bench::WorkloadCache cache;
  const auto params = bench::paper_params();
  constexpr std::uint32_t kQueries = 96;
  const auto& sweep = bench::rank_sweep();

  std::map<std::uint64_t, std::map<int, double>> speedups;
  for (std::size_t s = 0; s < bench::index_sizes().size(); ++s) {
    const std::uint64_t entries = bench::index_sizes()[s];
    const auto& workload = cache.at(entries, kQueries);
    // Paper convention: base = 2 CPUs for the smallest index, 4 otherwise.
    const int base_ranks = s == 0 ? 2 : 4;

    std::map<int, double> wall;
    for (const int ranks : sweep) {
      const auto run = bench::run_distributed_repeated(
          workload, core::Policy::kCyclic, ranks, params);
      wall[ranks] = run.query_wall_min;
    }
    for (const int ranks : sweep) {
      const double speedup =
          perf::speedup_vs_base(wall[base_ranks], base_ranks, wall[ranks]);
      speedups[entries][ranks] = speedup;
      fig.row({bench::fmt(ranks), bench::fmt(entries), bench::fmt(speedup),
               bench::fmt(perf::efficiency(speedup, ranks))});
    }
  }

  // Fixed per-rank work (every rank preprocesses every query — §III-E)
  // erodes efficiency at our scaled-down sizes; the paper's 18M+ indexes
  // sit deep in the work-dominated regime. Demand near-linear efficiency
  // where the parallel fraction is large and a floor elsewhere.
  for (std::size_t s = 0; s < bench::index_sizes().size(); ++s) {
    const std::uint64_t entries = bench::index_sizes()[s];
    fig.check("speedup grows from p=4 to p=16, size " +
                  std::to_string(entries),
              speedups[entries][16] > speedups[entries][4]);
    const bool large = s + 2 >= bench::index_sizes().size();
    const double floor = large ? 0.5 : 0.3;
    fig.check("efficiency at p=16 >= " + std::to_string(floor) + ", size " +
                  std::to_string(entries),
              perf::efficiency(speedups[entries][16], 16) >= floor);
  }
  return fig.finish();
}
