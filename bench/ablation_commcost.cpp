// Ablation — communication-cost sensitivity (DESIGN.md §6).
//
// The paper argues LBE keeps communication minimal: peptide data never
// moves (every rank reads the clustered database itself), only compact
// result batches (virtual ids + scores) travel to the master. This
// ablation quantifies that: makespan under three network models (free,
// LAN-like default, WAN-like slow) crossed with result-batch sizes. If the
// protocol is communication-light, even a 200x slower network should move
// the makespan only modestly, and batching should absorb most of the
// latency cost.
#include "bench_common.hpp"

int main() {
  using namespace lbe;
  log::set_level(log::Level::kWarn);

  perf::Figure fig(
      "Ablation: comm cost",
      "makespan under network cost models x result batch size",
      "the LBE protocol is communication-light: results-only traffic keeps "
      "slow-network penalties small; batching absorbs latency",
      {"network", "result_batch", "makespan_seconds", "bytes_to_master"});

  bench::WorkloadCache cache;
  constexpr std::uint64_t kEntries = 120000;
  constexpr std::uint32_t kQueries = 96;
  const auto& workload = cache.at(kEntries, kQueries);
  constexpr int kRanks = 8;

  struct Network {
    const char* name;
    mpi::CostModel cost;
  };
  const std::vector<Network> networks = {
      {"free", mpi::CostModel::zero()},
      {"lan", mpi::CostModel{50e-6, 1e-8}},    // 50 us, ~100 MB/s
      {"wan", mpi::CostModel{10e-3, 2e-6}},    // 10 ms, ~0.5 MB/s
  };

  core::LbeParams lbe;
  lbe.partition.policy = core::Policy::kCyclic;
  lbe.partition.ranks = kRanks;
  const core::LbePlan plan(workload.base_peptides, workload.mods,
                           workload.variant_params, lbe);

  std::map<std::string, double> makespan_by_key;
  for (const Network& network : networks) {
    for (const std::uint32_t batch : {8u, 64u, 1024u}) {
      auto params = bench::paper_params();
      params.result_batch = batch;
      // Best-of-3: single-core timing noise in the (dominant) build phase
      // would otherwise drown the network signal.
      double makespan = 0.0;
      std::uint64_t bytes = 0;
      for (int rep = 0; rep < 3; ++rep) {
        mpi::ClusterOptions options;
        options.ranks = kRanks;
        options.engine = mpi::Engine::kVirtual;
        options.measured_time = true;
        options.cost = network.cost;
        mpi::Cluster cluster(options);
        const auto report = search::run_distributed_search(
            cluster, plan, workload.queries, params);
        bytes = 0;
        for (const auto& rank_report : cluster.reports()) {
          bytes += rank_report.bytes_sent;
        }
        makespan = rep == 0 ? report.makespan
                            : std::min(makespan, report.makespan);
      }
      makespan_by_key[std::string(network.name) + "/" +
                      std::to_string(batch)] = makespan;
      fig.row({network.name, bench::fmt(std::uint64_t{batch}),
               bench::fmt(makespan), bench::fmt(bytes)});
    }
  }

  fig.check("LAN penalty over free network is < 25% (batch 64)",
            makespan_by_key["lan/64"] < makespan_by_key["free/64"] * 1.25);
  fig.check("batching absorbs WAN latency (batch 1024 beats batch 8 on WAN)",
            makespan_by_key["wan/1024"] < makespan_by_key["wan/8"]);
  fig.check("batch size irrelevant on a free network (within noise)",
            makespan_by_key["free/1024"] <
                makespan_by_key["free/8"] * 1.35 + 0.05);
  return fig.finish();
}
