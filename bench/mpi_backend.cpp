// Rank-transport driver — runs the "mpi_backend" suite (virtual vs threads
// vs process backends over one shared mmap'd bundle, plus the aggregate
// resident-index scaling point). The benchmarks live in
// src/perf/bench_suites_mpi_backend.cpp; `lbebench --suite mpi_backend`
// runs the same set and additionally writes BENCH_mpi_backend.json.
#include "app/rank_programs.hpp"
#include "common/logging.hpp"
#include "perf/bench_registry.hpp"
#include "simmpi/process.hpp"

int main(int argc, char** argv) {
  // The process backend re-execs this binary once per worker rank.
  if (lbe::mpi::is_rank_worker(argc, argv)) {
    lbe::app::register_rank_programs();
    return lbe::mpi::rank_worker_main(argc, argv);
  }
  lbe::log::set_level(lbe::log::Level::kWarn);
  lbe::perf::BenchRunOptions options;
  options.suite = "mpi_backend";
  options.repeat = 1;
  options.write_json = false;
  return lbe::perf::run_suite(options);
}
