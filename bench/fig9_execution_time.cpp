// Fig. 9 — Total execution time vs number of MPI processes (cyclic policy).
//
// Total execution covers the whole pipeline: serial master prep (grouping +
// partition planning, charged to rank 0), parallel index construction, the
// query phase, and the result merge at the master — i.e. the cluster
// makespan. Paper claim: total time falls with CPUs but flattens (the
// serial fraction stops scaling).
#include "bench_common.hpp"

#include <algorithm>

int main() {
  using namespace lbe;
  log::set_level(log::Level::kWarn);

  perf::Figure fig(
      "Fig. 9", "Total execution time vs MPI processes (cyclic policy)",
      "execution time decreases with CPUs but flattens (serial fraction)",
      {"ranks", "index_entries", "execution_seconds", "prep_seconds"});

  bench::WorkloadCache cache;
  const auto params = bench::paper_params();
  constexpr std::uint32_t kQueries = 96;
  const auto& sweep = bench::rank_sweep();

  std::map<std::uint64_t, std::vector<double>> series;
  for (const std::uint64_t entries : bench::index_sizes()) {
    const auto& workload = cache.at(entries, kQueries);
    for (const int ranks : sweep) {
      const auto run = bench::run_distributed_repeated(
          workload, core::Policy::kCyclic, ranks, params);
      series[entries].push_back(run.makespan_min);
      fig.row({bench::fmt(ranks), bench::fmt(entries),
               bench::fmt(run.makespan_min), bench::fmt(run.prep_seconds)});
    }
  }

  const std::size_t i2 = 0;
  const std::size_t i16 = static_cast<std::size_t>(
      std::find(sweep.begin(), sweep.end(), 16) - sweep.begin());
  for (const std::uint64_t entries : bench::index_sizes()) {
    const auto& times = series[entries];
    fig.check("total time falls from p=2 to p=16, size " +
                  std::to_string(entries),
              times[i16] < times[i2]);
  }
  return fig.finish();
}
