// Fig. 5 — Memory footprint: distributed SLM index vs the shared-memory
// implementation, for increasing index size.
//
// Paper claim: the distributed implementation averages 0.366 GB per million
// spectra against 0.346 GB/M for shared memory — only ~6.4% overhead — and
// the overhead varies inversely with the partition size per MPI process.
#include "bench_common.hpp"

#include <iostream>

#include "common/strings.hpp"

int main() {
  using namespace lbe;
  log::set_level(log::Level::kWarn);

  perf::Figure fig(
      "Fig. 5", "Memory footprint of distributed vs shared-memory SLM index",
      "distributed ~= shared + small overhead; overhead shrinks as the "
      "per-rank partition grows",
      {"index_entries", "series", "bytes", "bytes_per_entry"});

  bench::WorkloadCache cache;
  const auto params = bench::paper_params();
  constexpr std::uint32_t kQueries = 16;  // memory bench: queries irrelevant

  std::vector<double> overhead_percent;
  for (const std::uint64_t entries : bench::index_sizes()) {
    const auto& workload = cache.at(entries, kQueries);

    // Shared-memory baseline: one global index in one address space.
    core::LbeParams lbe;
    lbe.partition.ranks = bench::kPaperRanks;
    lbe.partition.policy = core::Policy::kCyclic;
    const core::LbePlan plan(workload.base_peptides, workload.mods,
                             workload.variant_params, lbe);
    const auto shared =
        search::run_shared_baseline(plan, workload.queries, params);

    // Distributed: 16 partial indexes plus the master's mapping table.
    const auto run = bench::run_distributed(workload, core::Policy::kCyclic,
                                            bench::kPaperRanks, params,
                                            /*measured_time=*/false);
    std::uint64_t distributed = run.report.mapping_bytes;
    for (const auto bytes : run.report.index_bytes) distributed += bytes;

    const double n = static_cast<double>(plan.num_variants());
    fig.row({bench::fmt(plan.num_variants()), "shared",
             bench::fmt(shared.index_bytes),
             bench::fmt(static_cast<double>(shared.index_bytes) / n)});
    fig.row({bench::fmt(plan.num_variants()), "distributed",
             bench::fmt(distributed),
             bench::fmt(static_cast<double>(distributed) / n)});

    const double overhead =
        100.0 * (static_cast<double>(distributed) -
                 static_cast<double>(shared.index_bytes)) /
        static_cast<double>(shared.index_bytes);
    overhead_percent.push_back(overhead);
    fig.note("entries=" + std::to_string(plan.num_variants()) +
             " shared=" + str::human_bytes(shared.index_bytes) +
             " distributed=" + str::human_bytes(distributed) +
             " overhead=" + bench::fmt(overhead) + "%");
  }

  // Shape checks.
  for (std::size_t i = 0; i < overhead_percent.size(); ++i) {
    fig.check("distributed costs more than shared (per-rank fixed parts), "
              "size " + std::to_string(bench::index_sizes()[i]),
              overhead_percent[i] > 0.0);
  }
  fig.check(
      "overhead shrinks as partitions grow (paper: inverse relation)",
      overhead_percent.back() < overhead_percent.front());
  fig.check("overhead at the largest size is modest (< 60%)",
            overhead_percent.back() < 60.0);
  return fig.finish();
}
