// Fig. 10 — Total-execution speedup vs number of MPI processes.
//
// Paper claim: the speedup is bounded by Amdahl's law (the serial part of
// the pipeline saturates it), and scalability improves as the index grows
// because the parallel query phase becomes a larger fraction of the total.
#include "bench_common.hpp"

#include <algorithm>

int main() {
  using namespace lbe;
  log::set_level(log::Level::kWarn);

  perf::Figure fig(
      "Fig. 10", "Execution speedup vs MPI processes (cyclic policy)",
      "speedup saturates (Amdahl); scalability improves with index size",
      {"ranks", "index_entries", "speedup", "efficiency"});

  bench::WorkloadCache cache;
  const auto params = bench::paper_params();
  constexpr std::uint32_t kQueries = 96;
  const auto& sweep = bench::rank_sweep();

  std::map<std::uint64_t, std::map<int, double>> speedups;
  for (std::size_t s = 0; s < bench::index_sizes().size(); ++s) {
    const std::uint64_t entries = bench::index_sizes()[s];
    const auto& workload = cache.at(entries, kQueries);
    const int base_ranks = s == 0 ? 2 : 4;  // paper's Fig. 8/10 convention

    std::map<int, double> wall;
    for (const int ranks : sweep) {
      const auto run = bench::run_distributed_repeated(
          workload, core::Policy::kCyclic, ranks, params);
      wall[ranks] = run.makespan_min;
    }
    for (const int ranks : sweep) {
      const double speedup =
          perf::speedup_vs_base(wall[base_ranks], base_ranks, wall[ranks]);
      speedups[entries][ranks] = speedup;
      fig.row({bench::fmt(ranks), bench::fmt(entries), bench::fmt(speedup),
               bench::fmt(perf::efficiency(speedup, ranks))});
    }
  }

  for (const std::uint64_t entries : bench::index_sizes()) {
    fig.check("speedup still improves 4 -> 16 CPUs, size " +
                  std::to_string(entries),
              speedups[entries][16] > speedups[entries][4]);
    fig.check("speedup is sub-linear at p=16 (Amdahl), size " +
                  std::to_string(entries),
              speedups[entries][16] < 16.0);
  }
  // Query time grows with index size while the serial prep grows slower, so
  // the parallel fraction — and with it the speedup at p=16 — increases.
  fig.check("largest index scales better than smallest at p=16",
            speedups[bench::index_sizes().back()][16] >
                speedups[bench::index_sizes().front()][16]);
  return fig.finish();
}
