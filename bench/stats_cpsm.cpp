// §V-A search statistics — candidate PSM volume under open-search settings.
//
// Paper: searching 23,264 spectra of PXD009072 against the 49.45M-entry
// index yielded 22,517,426,929 cPSMs, i.e. ~73,723 cPSMs per query — about
// 1,490 cPSMs per query per million index entries. The density (cPSMs per
// query per entry) is the scale-free quantity our synthetic analogue can
// reproduce; we report it alongside raw counts.
#include "bench_common.hpp"

int main() {
  using namespace lbe;
  log::set_level(log::Level::kWarn);

  perf::Figure fig(
      "§V-A stats", "Candidate PSM volume under open-search settings",
      "open search yields tens of thousands of cPSMs per query at paper "
      "scale; density per million entries is scale-free",
      {"index_entries", "queries", "total_cpsms", "cpsms_per_query",
       "cpsms_per_query_per_Mentry"});

  bench::WorkloadCache cache;
  const auto params = bench::paper_params();
  constexpr std::uint32_t kQueries = 128;

  std::vector<double> densities;
  for (const std::uint64_t entries : bench::index_sizes()) {
    const auto& workload = cache.at(entries, kQueries);
    const auto run = bench::run_distributed(workload, core::Policy::kCyclic,
                                            bench::kPaperRanks, params,
                                            /*measured_time=*/false);
    std::uint64_t cpsms = 0;
    for (const auto& work : run.report.work) cpsms += work.candidates;
    const double per_query =
        static_cast<double>(cpsms) / static_cast<double>(kQueries);
    const double density =
        per_query / (static_cast<double>(entries) / 1e6);
    densities.push_back(density);
    fig.row({bench::fmt(entries), bench::fmt(std::uint64_t{kQueries}),
             bench::fmt(cpsms), bench::fmt(per_query),
             bench::fmt(density)});
  }

  fig.note("paper: 73,723 cPSMs/query at 49.45M entries = 1,491 "
           "cPSMs/query/Mentry");
  // Small synthetic databases are denser in near-duplicate peptides than
  // the human proteome, so density falls toward the paper's value as the
  // index grows; check the trend plus the largest point.
  for (std::size_t i = 1; i < densities.size(); ++i) {
    fig.check("cPSM density falls toward paper scale (" +
                  std::to_string(bench::index_sizes()[i - 1]) + " -> " +
                  std::to_string(bench::index_sizes()[i]) + ")",
              densities[i] < densities[i - 1]);
  }
  fig.check("largest-size density within 1 order of magnitude of the paper",
            densities.back() > 149.0 && densities.back() < 14910.0);
  return fig.finish();
}
