// Fig. 6 — Normalized load imbalance (Eq. 1) for 16 MPI processes with
// increasing index size, per distribution policy.
//
// Paper claim: LI stays <= 20% for Cyclic and Random partitioning versus
// ~120% for conventional Chunk partitioning.
//
// Two LI columns are reported: `li_work_pct` from deterministic work units
// (postings/candidates touched — machine-independent) and `li_time_pct`
// from the virtual-time clocks (what the paper measured). Shape checks use
// the deterministic series.
#include "bench_common.hpp"

int main() {
  using namespace lbe;
  log::set_level(log::Level::kWarn);

  perf::Figure fig(
      "Fig. 6", "Load imbalance vs index size, 16 ranks",
      "LI <= 20% for cyclic/random vs ~120% for chunk partitioning",
      {"index_entries", "policy", "li_work_pct", "li_time_pct"});

  bench::WorkloadCache cache;
  const auto params = bench::paper_params();
  constexpr std::uint32_t kQueries = 96;

  const std::vector<core::Policy> policies = {
      core::Policy::kChunk, core::Policy::kCyclic, core::Policy::kRandom};

  std::map<core::Policy, std::vector<double>> li_work;
  for (const std::uint64_t entries : bench::index_sizes()) {
    const auto& workload = cache.at(entries, kQueries);
    for (const core::Policy policy : policies) {
      const auto run = bench::run_distributed(workload, policy,
                                              bench::kPaperRanks, params);
      const double work_li =
          perf::load_imbalance(bench::work_units(run.report));
      const double time_li =
          perf::load_imbalance(run.report.query_phase_seconds());
      li_work[policy].push_back(work_li);
      fig.row({bench::fmt(entries), core::policy_name(policy),
               bench::fmt(100.0 * work_li), bench::fmt(100.0 * time_li)});
    }
  }

  // Per-size bounds carry slack at the smallest size: a 16th of 30k entries
  // is under 2k peptides per rank, a regime the paper (18M+) never touches.
  for (std::size_t i = 0; i < bench::index_sizes().size(); ++i) {
    const std::string size = std::to_string(bench::index_sizes()[i]);
    const double balanced_cap = i == 0 ? 0.30 : 0.25;
    fig.check("cyclic LI small at " + size,
              li_work[core::Policy::kCyclic][i] <= balanced_cap);
    fig.check("random LI small at " + size,
              li_work[core::Policy::kRandom][i] <= balanced_cap);
    fig.check("chunk LI at least 3x cyclic LI at " + size,
              li_work[core::Policy::kChunk][i] >=
                  3.0 * li_work[core::Policy::kCyclic][i]);
    fig.check("chunk LI exceeds 40% at " + size,
              li_work[core::Policy::kChunk][i] > 0.40);
  }
  auto mean = [](const std::vector<double>& v) {
    double sum = 0.0;
    for (const double x : v) sum += x;
    return sum / static_cast<double>(v.size());
  };
  fig.check("mean cyclic LI <= 20% (the paper's headline bound)",
            mean(li_work[core::Policy::kCyclic]) <= 0.20);
  fig.check("mean random LI <= 20% (the paper's headline bound)",
            mean(li_work[core::Policy::kRandom]) <= 0.20);
  return fig.finish();
}
