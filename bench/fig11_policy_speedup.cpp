// Fig. 11 — CPU-time speedup of LBE partitioning (Cyclic / Random) over the
// conventional Chunk partitioning, for increasing index size at 16 ranks.
//
// Paper claim: order-of-magnitude speedups — on average ~8.6x for Cyclic
// and ~7.5x for Random. Per §VI the plotted quantity amplifies wall-clock
// imbalance into wasted CPU time: a system of N CPUs whose straggler runs
// ΔTmax over the mean wastes Twst = N·ΔTmax CPU-seconds, so the ratio of
// wasted CPU time (chunk vs LBE policy) is the figure's y-axis.
#include "bench_common.hpp"

int main() {
  using namespace lbe;
  log::set_level(log::Level::kWarn);

  perf::Figure fig(
      "Fig. 11", "Wasted-CPU-time speedup of LBE policies over chunk, p=16",
      "order-of-magnitude speedup by load balance (paper avg: cyclic ~8.6x, "
      "random ~7.5x)",
      {"index_entries", "policy", "twst_chunk_over_twst_policy"});

  bench::WorkloadCache cache;
  const auto params = bench::paper_params();
  constexpr std::uint32_t kQueries = 96;

  std::map<core::Policy, std::vector<double>> ratios;
  for (const std::uint64_t entries : bench::index_sizes()) {
    const auto& workload = cache.at(entries, kQueries);

    std::map<core::Policy, perf::LoadStats> stats;
    for (const core::Policy policy :
         {core::Policy::kChunk, core::Policy::kCyclic,
          core::Policy::kRandom}) {
      const auto run = bench::run_distributed(workload, policy,
                                              bench::kPaperRanks, params);
      stats[policy] = perf::load_stats(bench::work_units(run.report));
    }
    for (const core::Policy policy :
         {core::Policy::kCyclic, core::Policy::kRandom}) {
      // Twst = N * ΔTmax; N identical, so the ratio reduces to ΔTmax ratio.
      const double ratio = stats[core::Policy::kChunk].wasted_cpu /
                           std::max(stats[policy].wasted_cpu, 1e-12);
      ratios[policy].push_back(ratio);
      fig.row({bench::fmt(entries), core::policy_name(policy),
               bench::fmt(ratio)});
    }
  }

  auto mean = [](const std::vector<double>& v) {
    double sum = 0.0;
    for (const double x : v) sum += x;
    return sum / static_cast<double>(v.size());
  };
  for (std::size_t i = 0; i < bench::index_sizes().size(); ++i) {
    const std::string size = std::to_string(bench::index_sizes()[i]);
    fig.check("cyclic beats chunk by > 3x at " + size,
              ratios[core::Policy::kCyclic][i] > 3.0);
    fig.check("random beats chunk by > 3x at " + size,
              ratios[core::Policy::kRandom][i] > 3.0);
  }
  fig.note("mean cyclic speedup: " +
           bench::fmt(mean(ratios[core::Policy::kCyclic])) +
           "x (paper: ~8.6x)");
  fig.note("mean random speedup: " +
           bench::fmt(mean(ratios[core::Policy::kRandom])) +
           "x (paper: ~7.5x)");
  fig.check("mean cyclic speedup is order-of-magnitude (>= 5x)",
            mean(ratios[core::Policy::kCyclic]) >= 5.0);
  fig.check("mean random speedup is order-of-magnitude (>= 5x)",
            mean(ratios[core::Policy::kRandom]) >= 5.0);
  return fig.finish();
}
