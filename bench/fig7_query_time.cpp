// Fig. 7 — Query time vs number of MPI processes (cyclic partitioning),
// one series per index size.
//
// Paper claim: query time falls roughly as 1/p as CPUs are added, for every
// index size. Query time here is the simulated wall clock of the query
// phase: max over ranks of (query_done - query_start) on virtual clocks.
#include "bench_common.hpp"

#include <algorithm>

int main() {
  using namespace lbe;
  log::set_level(log::Level::kWarn);

  perf::Figure fig(
      "Fig. 7", "Query time vs MPI processes (cyclic policy)",
      "query time decreases ~1/p with more CPUs at every index size",
      {"ranks", "index_entries", "query_seconds"});

  bench::WorkloadCache cache;
  const auto params = bench::paper_params();
  constexpr std::uint32_t kQueries = 96;

  std::map<std::uint64_t, std::vector<double>> series;  // size -> t(p)
  for (const std::uint64_t entries : bench::index_sizes()) {
    const auto& workload = cache.at(entries, kQueries);
    for (const int ranks : bench::rank_sweep()) {
      const auto run = bench::run_distributed_repeated(
          workload, core::Policy::kCyclic, ranks, params);
      series[entries].push_back(run.query_wall_min);
      fig.row({bench::fmt(ranks), bench::fmt(entries),
               bench::fmt(run.query_wall_min)});
    }
  }

  const auto& sweep = bench::rank_sweep();
  const std::size_t i16 = static_cast<std::size_t>(
      std::find(sweep.begin(), sweep.end(), 16) - sweep.begin());
  for (const std::uint64_t entries : bench::index_sizes()) {
    const auto& times = series[entries];
    // p = 2 -> 16 is an 8x resource increase; demand at least 2.5x less
    // wall time (ideal 8x) to absorb single-core timing noise.
    fig.check("query time at p=16 well below p=2, size " +
                  std::to_string(entries),
              times[i16] < times[0] / 2.5);
  }
  for (std::size_t i = 0; i + 1 < bench::index_sizes().size(); ++i) {
    fig.check("bigger index costs more at p=16 (" +
                  std::to_string(bench::index_sizes()[i]) + " vs " +
                  std::to_string(bench::index_sizes()[i + 1]) + ")",
              series[bench::index_sizes()[i]][i16] <
                  series[bench::index_sizes()[i + 1]][i16] * 1.15);
  }
  return fig.finish();
}
