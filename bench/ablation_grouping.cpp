// Ablation — how the grouping/partitioning design choices affect load
// balance (DESIGN.md §6). Sweeps, at one index size and 16 ranks:
//
//   * grouping criterion 1 (absolute, d = 2) vs 2 (normalized, d' = 0.86),
//   * group-size cap gsize in {5, 20, 80},
//   * Random policy with and without per-group rank rotation.
//
// Note an instructive structural fact this ablation exposes: Chunk and
// Cyclic depend only on the sorted (clustered) order, so criterion/gsize
// choices move ONLY the Random policy (whose splits honour group
// boundaries). Chunk's imbalance comes from the sort itself — similar
// peptides are adjacent — not from where the group boundaries fall.
#include "bench_common.hpp"

int main() {
  using namespace lbe;
  log::set_level(log::Level::kWarn);

  perf::Figure fig(
      "Ablation: grouping",
      "LI sensitivity to grouping criterion, gsize, and random rotation",
      "clustering creates chunk's imbalance; LBE policies stay balanced "
      "across all grouping settings",
      {"config", "policy", "li_work_pct"});

  bench::WorkloadCache cache;
  const auto base_params = bench::paper_params();
  constexpr std::uint64_t kEntries = 120000;
  constexpr std::uint32_t kQueries = 96;
  const auto& workload = cache.at(kEntries, kQueries);

  struct Run {
    std::string config;
    core::Policy policy;
    core::GroupingParams grouping;
    bool rotate = true;
  };
  std::vector<Run> runs;
  for (const core::Policy policy :
       {core::Policy::kChunk, core::Policy::kCyclic, core::Policy::kRandom}) {
    core::GroupingParams criterion1;
    criterion1.criterion = core::GroupingCriterion::kAbsolute;
    runs.push_back({"criterion1_d2", policy, criterion1, true});
    runs.push_back({"criterion2_d0.86", policy, core::GroupingParams{}, true});
    for (const std::uint32_t gsize : {5u, 80u}) {
      core::GroupingParams sized;
      sized.gsize = gsize;
      runs.push_back({"gsize" + std::to_string(gsize), policy, sized, true});
    }
  }
  core::GroupingParams defaults;
  runs.push_back({"no_rotation", core::Policy::kRandom, defaults, false});

  std::map<std::string, double> li_by_key;
  for (const Run& run : runs) {
    core::LbeParams lbe;
    lbe.grouping = run.grouping;
    lbe.partition.policy = run.policy;
    lbe.partition.ranks = bench::kPaperRanks;
    lbe.partition.rotate_groups = run.rotate;
    const core::LbePlan plan(workload.base_peptides, workload.mods,
                             workload.variant_params, lbe);
    mpi::ClusterOptions options;
    options.ranks = bench::kPaperRanks;
    options.engine = mpi::Engine::kVirtual;
    options.measured_time = false;
    mpi::Cluster cluster(options);
    const auto report = search::run_distributed_search(
        cluster, plan, workload.queries, base_params);
    const double li = perf::load_imbalance(bench::work_units(report));
    li_by_key[run.config + "/" + core::policy_name(run.policy)] = li;
    fig.row({run.config, core::policy_name(run.policy),
             bench::fmt(100.0 * li)});
  }

  // LBE policies stay balanced across every grouping configuration. The
  // no_rotation config is the known pathology (checked separately below).
  for (const auto& [key, li] : li_by_key) {
    if (key.find("chunk") == std::string::npos &&
        key.find("no_rotation") == std::string::npos) {
      fig.check("balanced (<35%): " + key, li < 0.35);
    }
  }
  // Chunk's imbalance persists across grouping configurations.
  for (const std::string config :
       {"criterion1_d2", "criterion2_d0.86", "gsize5", "gsize80"}) {
    fig.check("chunk imbalanced (>40%): " + config,
              li_by_key[config + "/chunk"] > 0.40);
  }
  fig.check("rotation helps random policy",
            li_by_key["no_rotation/random"] >
                li_by_key["criterion2_d0.86/random"]);
  return fig.finish();
}
