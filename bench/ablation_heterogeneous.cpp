// Ablation — heterogeneous clusters and the load-prediction model
// (the paper's §VIII future work, DESIGN.md §6).
//
// Setup: 8 simulated ranks where half run 3x slower (per-rank slowdown
// factors in the virtual-time engine). Uniform Cyclic partitioning — ideal
// on symmetric hardware — leaves the slow ranks straggling; the Weighted
// policy with weights = 1/slowdown restores balance and cuts the query
// makespan. Separately, the load-prediction model's per-rank cost estimates
// are validated against measured work units.
#include "bench_common.hpp"

#include "search/load_model.hpp"

int main() {
  using namespace lbe;
  log::set_level(log::Level::kWarn);

  perf::Figure fig(
      "Ablation: heterogeneous",
      "weighted partitioning + load prediction on a heterogeneous cluster",
      "weights = 1/slowdown rebalances a heterogeneous cluster; predicted "
      "per-rank load tracks measured work",
      {"config", "metric", "value"});

  bench::WorkloadCache cache;
  constexpr std::uint64_t kEntries = 120000;
  constexpr std::uint32_t kQueries = 96;
  const auto& workload = cache.at(kEntries, kQueries);
  const auto params = bench::paper_params();

  constexpr int kRanks = 8;
  const std::vector<double> slowdown = {1.0, 1.0, 1.0, 1.0,
                                        3.0, 3.0, 3.0, 3.0};

  struct HeteroRun {
    search::DistributedReport report;      ///< first repeat (counters)
    std::vector<double> query_seconds;     ///< per-rank min over repeats
    double wall = 0.0;
  };
  // Best-of-3 per rank: single-core timing noise is strictly additive.
  auto run_with = [&](core::Policy policy,
                      const std::vector<double>& weights) {
    core::LbeParams lbe;
    lbe.partition.policy = policy;
    lbe.partition.ranks = kRanks;
    lbe.partition.weights = weights;
    const core::LbePlan plan(workload.base_peptides, workload.mods,
                             workload.variant_params, lbe);
    HeteroRun out;
    for (int rep = 0; rep < 3; ++rep) {
      mpi::ClusterOptions options;
      options.ranks = kRanks;
      options.engine = mpi::Engine::kVirtual;
      options.measured_time = true;
      options.slowdown = slowdown;
      mpi::Cluster cluster(options);
      auto report = search::run_distributed_search(cluster, plan,
                                                   workload.queries, params);
      const auto seconds = report.query_phase_seconds();
      if (rep == 0) {
        out.query_seconds = seconds;
        out.report = std::move(report);
      } else {
        for (std::size_t r = 0; r < seconds.size(); ++r) {
          out.query_seconds[r] = std::min(out.query_seconds[r], seconds[r]);
        }
      }
    }
    for (const double t : out.query_seconds) out.wall = std::max(out.wall, t);
    return out;
  };

  // Uniform cyclic on heterogeneous hardware.
  const auto uniform = run_with(core::Policy::kCyclic, {});
  const double uniform_li = perf::load_imbalance(uniform.query_seconds);
  const double uniform_wall = uniform.wall;

  // Weighted by inverse slowdown.
  std::vector<double> weights;
  for (const double s : slowdown) weights.push_back(1.0 / s);
  const auto weighted = run_with(core::Policy::kWeighted, weights);
  const double weighted_li = perf::load_imbalance(weighted.query_seconds);
  const double weighted_wall = weighted.wall;

  fig.row({"uniform_cyclic", "time_li_pct", bench::fmt(100.0 * uniform_li)});
  fig.row({"weighted", "time_li_pct", bench::fmt(100.0 * weighted_li)});
  fig.row({"uniform_cyclic", "query_wall_s", bench::fmt(uniform_wall)});
  fig.row({"weighted", "query_wall_s", bench::fmt(weighted_wall)});
  for (int rank = 0; rank < kRanks; ++rank) {
    const auto r = static_cast<std::size_t>(rank);
    fig.row({"uniform_rank" + std::to_string(rank), "query_s",
             bench::fmt(uniform.query_seconds[r])});
    fig.row({"weighted_rank" + std::to_string(rank), "query_s",
             bench::fmt(weighted.query_seconds[r])});
    fig.row({"weighted_rank" + std::to_string(rank), "entries",
             bench::fmt(weighted.report.index_entries[r])});
  }

  // Load model: predicted per-rank cost vs measured work units on the
  // uniform plan (deterministic counters; rebuilt outside the cluster).
  {
    core::LbeParams lbe;
    lbe.partition.policy = core::Policy::kCyclic;
    lbe.partition.ranks = kRanks;
    const core::LbePlan plan(workload.base_peptides, workload.mods,
                             workload.variant_params, lbe);
    std::vector<double> predicted;
    for (int rank = 0; rank < kRanks; ++rank) {
      const index::ChunkedIndex partial(plan.build_rank_store(rank),
                                        plan.mods(), params.index,
                                        params.chunking);
      predicted.push_back(search::predict_query_cost(
          partial, workload.queries, params.search.filter,
          params.search.preprocess));
    }
    std::vector<double> measured;
    for (const auto& work : uniform.report.work) {
      measured.push_back(static_cast<double>(work.postings_touched));
    }
    const double exact_r =
        search::prediction_correlation(predicted, measured);
    std::vector<double> cost_units = bench::work_units(uniform.report);
    const double cost_r =
        search::prediction_correlation(predicted, cost_units);
    fig.row({"load_model", "corr_vs_postings", bench::fmt(exact_r)});
    fig.row({"load_model", "corr_vs_cost_units", bench::fmt(cost_r)});
    fig.check("prediction matches postings traffic (r > 0.999)",
              exact_r > 0.999);
    fig.check("prediction tracks total cost (r > 0.9)", cost_r > 0.9);
  }

  // Residual imbalance remains by design: every rank pays a fixed per-query
  // cost (preprocessing + bin scans) that entry-count weighting cannot move,
  // and on slow ranks that fixed cost is multiplied by the slowdown. The
  // paper-scale regime (work >> fixed cost) would push weighted LI further
  // down; at this scale we demand a halving plus a meaningful makespan cut.
  fig.check("uniform cyclic is imbalanced on heterogeneous ranks (LI > 40%)",
            uniform_li > 0.40);
  fig.check("weighted partitioning at least halves the LI",
            weighted_li < 0.5 * uniform_li);
  fig.check("weighted LI below 30%", weighted_li < 0.30);
  fig.check("weighted cuts the query makespan by > 15%",
            weighted_wall < 0.85 * uniform_wall);
  return fig.finish();
}
