// Scheduling driver — runs the "schedule" suite (static vs stealing makespan
// on the heterogeneous fixture, plus the probe-calibrated re-plan). The
// benchmark bodies live in src/perf/bench_suites_schedule.cpp; `lbebench
// --suite schedule` runs the same set and additionally writes
// BENCH_schedule.json and gates against the checked-in baseline.
#include "common/logging.hpp"
#include "perf/bench_registry.hpp"

int main() {
  lbe::log::set_level(lbe::log::Level::kWarn);
  lbe::perf::BenchRunOptions options;
  options.suite = "schedule";
  options.repeat = 1;
  options.write_json = false;
  return lbe::perf::run_suite(options);
}
