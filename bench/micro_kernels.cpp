// Microbenchmarks (google-benchmark) for the kernels the paper's pipeline
// spends its time in: banded edit distance (grouping), Algorithm 1 itself,
// partitioning policies, index construction, and scorecard querying.
#include <benchmark/benchmark.h>

#include "chem/amino_acid.hpp"
#include "core/edit_distance.hpp"
#include "core/grouping.hpp"
#include "core/partition.hpp"
#include "common/rng.hpp"
#include "index/chunked_index.hpp"
#include "search/preprocess.hpp"
#include "search/query_engine.hpp"
#include "synth/workload.hpp"
#include "theospec/fragmenter.hpp"

namespace {

using namespace lbe;

std::vector<std::string> random_peptides(std::size_t count,
                                         std::uint64_t seed) {
  Xoshiro256 rng(seed);
  const std::string_view alphabet = chem::kResidues;
  std::vector<std::string> out;
  out.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    std::string s;
    const std::size_t len = 8 + rng.below(20);
    for (std::size_t j = 0; j < len; ++j) {
      s += alphabet[rng.below(alphabet.size())];
    }
    out.push_back(std::move(s));
  }
  return out;
}

void BM_EditDistanceFull(benchmark::State& state) {
  const auto peptides = random_peptides(256, 1);
  std::size_t i = 0;
  for (auto _ : state) {
    const auto& a = peptides[i % peptides.size()];
    const auto& b = peptides[(i + 1) % peptides.size()];
    benchmark::DoNotOptimize(core::edit_distance(a, b));
    ++i;
  }
}
BENCHMARK(BM_EditDistanceFull);

void BM_EditDistanceBanded(benchmark::State& state) {
  const auto limit = static_cast<std::uint32_t>(state.range(0));
  const auto peptides = random_peptides(256, 1);
  std::size_t i = 0;
  for (auto _ : state) {
    const auto& a = peptides[i % peptides.size()];
    const auto& b = peptides[(i + 1) % peptides.size()];
    benchmark::DoNotOptimize(core::bounded_edit_distance(a, b, limit));
    ++i;
  }
}
BENCHMARK(BM_EditDistanceBanded)->Arg(2)->Arg(8);

void BM_GroupingAlgorithm1(benchmark::State& state) {
  const auto peptides =
      random_peptides(static_cast<std::size_t>(state.range(0)), 2);
  for (auto _ : state) {
    auto copy = peptides;
    benchmark::DoNotOptimize(
        core::group_peptides(std::move(copy), core::GroupingParams{}));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_GroupingAlgorithm1)->Arg(1000)->Arg(10000);

void BM_PartitionPolicy(benchmark::State& state) {
  const auto policy = static_cast<core::Policy>(state.range(0));
  const std::vector<std::uint32_t> groups(5000, 20);  // 100k entries
  core::PartitionParams params;
  params.policy = policy;
  params.ranks = 16;
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::partition(groups, params));
  }
  state.SetItemsProcessed(state.iterations() * 100000);
}
BENCHMARK(BM_PartitionPolicy)
    ->Arg(static_cast<int>(core::Policy::kChunk))
    ->Arg(static_cast<int>(core::Policy::kCyclic))
    ->Arg(static_cast<int>(core::Policy::kRandom));

void BM_FragmentPeptide(benchmark::State& state) {
  const chem::ModificationSet mods = chem::ModificationSet::paper_default();
  const chem::Peptide peptide("MKWVTFISLLLLFSSAYSRGVFRR");
  theospec::FragmentParams params;
  params.max_fragment_charge = 2;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        theospec::fragment_peptide(peptide, mods, params));
  }
}
BENCHMARK(BM_FragmentPeptide);

struct IndexFixtureData {
  chem::ModificationSet mods = chem::ModificationSet::paper_default();
  index::PeptideStore store{&mods};
  index::IndexParams params;

  explicit IndexFixtureData(std::size_t peptides) {
    params.fragments.max_fragment_charge = 1;
    for (auto& seq : random_peptides(peptides, 3)) {
      store.add(chem::Peptide(std::move(seq)), mods);
    }
  }
};

void BM_IndexBuild(benchmark::State& state) {
  IndexFixtureData data(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    const index::SlmIndex index(data.store, data.mods, data.params);
    benchmark::DoNotOptimize(index.num_postings());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_IndexBuild)->Arg(1000)->Arg(10000);

void BM_IndexQuery(benchmark::State& state) {
  IndexFixtureData data(static_cast<std::size_t>(state.range(0)));
  const index::SlmIndex index(data.store, data.mods, data.params);
  const auto spectrum = theospec::theoretical_spectrum(
      data.store.materialize(0), data.mods, data.params.fragments);
  index::QueryParams query;
  query.shared_peak_min = 4;
  std::vector<index::Candidate> candidates;
  index::QueryWork work;
  for (auto _ : state) {
    candidates.clear();
    index.query(spectrum, query, candidates, work);
    benchmark::DoNotOptimize(candidates.size());
  }
}
BENCHMARK(BM_IndexQuery)->Arg(1000)->Arg(10000)->Arg(50000);

void BM_Preprocess(benchmark::State& state) {
  Xoshiro256 rng(4);
  chem::Spectrum spectrum;
  for (int i = 0; i < 500; ++i) {
    spectrum.add_peak(rng.uniform(100.0, 2000.0),
                      static_cast<float>(rng.uniform(1.0, 1000.0)));
  }
  spectrum.finalize();
  const search::PreprocessParams params;
  for (auto _ : state) {
    benchmark::DoNotOptimize(search::preprocess(spectrum, params));
  }
}
BENCHMARK(BM_Preprocess);

}  // namespace

BENCHMARK_MAIN();
