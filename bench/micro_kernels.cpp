// Micro-kernel driver — runs the whole "micro" suite (edit distance,
// grouping, partitioning, index build, preprocessing, and the batched-vs-
// reference filtration gate). The kernels live in
// src/perf/bench_suites_micro.cpp; `lbebench --suite micro` runs the same
// set and additionally writes BENCH_micro.json.
#include "common/logging.hpp"
#include "perf/bench_registry.hpp"

int main() {
  lbe::log::set_level(lbe::log::Level::kWarn);
  lbe::perf::BenchRunOptions options;
  options.suite = "micro";
  options.repeat = 3;
  options.write_json = false;
  return lbe::perf::run_suite(options);
}
