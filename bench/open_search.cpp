// Open-search pruning ablation — thin driver. The benchmark body lives in
// src/perf/ (registered on the lbebench harness); this binary preserves the
// standalone reproduce-one-figure workflow and its exit-code contract (0 =
// all shape checks passed, including PSM identity and the >= 1.3x pruning
// speedup).
#include "common/logging.hpp"
#include "perf/bench_registry.hpp"

int main() {
  lbe::log::set_level(lbe::log::Level::kWarn);
  return lbe::perf::run_single_benchmark("open_pruning_ablation");
}
