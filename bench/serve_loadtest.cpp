// Serve load test — thin driver. The benchmark body lives in src/perf/
// (registered on the lbebench harness); this binary preserves the
// standalone reproduce-one-benchmark workflow and its exit-code contract
// (0 = all shape checks passed).
#include "common/logging.hpp"
#include "perf/bench_registry.hpp"

int main() {
  lbe::log::set_level(lbe::log::Level::kWarn);
  const int throughput = lbe::perf::run_single_benchmark("serve_throughput");
  const int open_loop = lbe::perf::run_single_benchmark("serve_open_loop");
  return throughput != 0 ? throughput : open_loop;
}
