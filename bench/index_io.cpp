// Index-IO driver — runs the "index_io" suite (on-disk bundle save/load
// wall time plus the loaded-vs-rebuilt search equivalence gate). The
// benchmark lives in src/perf/bench_suites_index_io.cpp; `lbebench --suite
// index_io` runs the same set and additionally writes BENCH_index_io.json.
#include "common/logging.hpp"
#include "perf/bench_registry.hpp"

int main() {
  lbe::log::set_level(lbe::log::Level::kWarn);
  lbe::perf::BenchRunOptions options;
  options.suite = "index_io";
  options.repeat = 3;
  options.write_json = false;
  return lbe::perf::run_suite(options);
}
