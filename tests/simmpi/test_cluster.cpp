#include "simmpi/cluster.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <vector>

namespace lbe::mpi {
namespace {

ClusterOptions deterministic(int ranks, Engine engine = Engine::kVirtual) {
  ClusterOptions options;
  options.ranks = ranks;
  options.engine = engine;
  options.measured_time = false;  // clocks move only via charge()/cost model
  return options;
}

Bytes payload_of(std::uint64_t value) {
  Bytes bytes;
  ByteWriter writer(bytes);
  writer.pod(value);
  return bytes;
}

std::uint64_t value_of(const Bytes& bytes) {
  ByteReader reader(bytes);
  return reader.pod<std::uint64_t>();
}

class ClusterEngines : public ::testing::TestWithParam<Engine> {};

TEST_P(ClusterEngines, RunsEveryRankExactlyOnce) {
  Cluster cluster(deterministic(6, GetParam()));
  std::vector<std::atomic<int>> hits(6);
  cluster.run([&](Comm& comm) { hits[static_cast<std::size_t>(comm.rank())]
                                    .fetch_add(1); });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST_P(ClusterEngines, RankAndSizeCorrect) {
  Cluster cluster(deterministic(4, GetParam()));
  std::vector<int> sizes(4, 0);
  cluster.run([&](Comm& comm) {
    sizes[static_cast<std::size_t>(comm.rank())] = comm.size();
  });
  for (const int s : sizes) EXPECT_EQ(s, 4);
}

TEST_P(ClusterEngines, PingPong) {
  Cluster cluster(deterministic(2, GetParam()));
  std::uint64_t received_back = 0;
  cluster.run([&](Comm& comm) {
    if (comm.rank() == 0) {
      comm.send(1, 5, payload_of(41));
      received_back = value_of(comm.recv(1, 6));
    } else {
      const std::uint64_t v = value_of(comm.recv(0, 5));
      comm.send(0, 6, payload_of(v + 1));
    }
  });
  EXPECT_EQ(received_back, 42u);
}

TEST_P(ClusterEngines, ManyToOneWithAnySource) {
  constexpr int kRanks = 8;
  Cluster cluster(deterministic(kRanks, GetParam()));
  std::uint64_t sum = 0;
  cluster.run([&](Comm& comm) {
    if (comm.rank() == 0) {
      for (int i = 1; i < kRanks; ++i) {
        sum += value_of(comm.recv(kAnySource, 1));
      }
    } else {
      comm.send(0, 1, payload_of(static_cast<std::uint64_t>(comm.rank())));
    }
  });
  EXPECT_EQ(sum, 28u);  // 1 + 2 + ... + 7
}

TEST_P(ClusterEngines, TagMatchingSelectsCorrectMessage) {
  Cluster cluster(deterministic(2, GetParam()));
  std::uint64_t tagged_a = 0;
  std::uint64_t tagged_b = 0;
  cluster.run([&](Comm& comm) {
    if (comm.rank() == 0) {
      comm.send(1, 10, payload_of(100));
      comm.send(1, 20, payload_of(200));
    } else {
      // Receive in reverse send order using tags.
      tagged_b = value_of(comm.recv(0, 20));
      tagged_a = value_of(comm.recv(0, 10));
    }
  });
  EXPECT_EQ(tagged_a, 100u);
  EXPECT_EQ(tagged_b, 200u);
}

TEST_P(ClusterEngines, RecvInfoReportsSourceAndTag) {
  Cluster cluster(deterministic(3, GetParam()));
  RecvInfo info;
  cluster.run([&](Comm& comm) {
    if (comm.rank() == 2) {
      comm.send(0, 7, payload_of(1));
    } else if (comm.rank() == 0) {
      comm.recv(kAnySource, kAnyTag, &info);
    }
  });
  EXPECT_EQ(info.src, 2);
  EXPECT_EQ(info.tag, 7);
}

TEST_P(ClusterEngines, SelfSendWorks) {
  Cluster cluster(deterministic(1, GetParam()));
  std::uint64_t got = 0;
  cluster.run([&](Comm& comm) {
    comm.send(0, 1, payload_of(9));
    got = value_of(comm.recv(0, 1));
  });
  EXPECT_EQ(got, 9u);
}

TEST_P(ClusterEngines, ProbeSeesPendingMessage) {
  Cluster cluster(deterministic(2, GetParam()));
  bool before = true;
  bool after = false;
  cluster.run([&](Comm& comm) {
    if (comm.rank() == 0) {
      comm.barrier();  // rank 1 sends before this completes
      after = comm.probe(1, 3);
      before = comm.probe(1, 99);
      comm.recv(1, 3);
    } else {
      comm.send(0, 3, payload_of(1));
      comm.barrier();
    }
  });
  EXPECT_TRUE(after);
  EXPECT_FALSE(before);
}

TEST_P(ClusterEngines, BarrierSynchronizesAll) {
  constexpr int kRanks = 5;
  Cluster cluster(deterministic(kRanks, GetParam()));
  std::atomic<int> phase_one{0};
  std::vector<int> observed(kRanks, -1);
  cluster.run([&](Comm& comm) {
    phase_one.fetch_add(1);
    comm.barrier();
    observed[static_cast<std::size_t>(comm.rank())] = phase_one.load();
  });
  for (const int o : observed) EXPECT_EQ(o, kRanks);
}

TEST_P(ClusterEngines, MultipleBarriers) {
  Cluster cluster(deterministic(3, GetParam()));
  std::atomic<int> counter{0};
  std::vector<int> after_second(3, -1);
  cluster.run([&](Comm& comm) {
    comm.barrier();
    counter.fetch_add(1);
    comm.barrier();
    after_second[static_cast<std::size_t>(comm.rank())] = counter.load();
    comm.barrier();
  });
  for (const int v : after_second) EXPECT_EQ(v, 3);
}

TEST_P(ClusterEngines, ExceptionInRankPropagates) {
  Cluster cluster(deterministic(4, GetParam()));
  EXPECT_THROW(cluster.run([&](Comm& comm) {
    if (comm.rank() == 2) throw std::runtime_error("rank 2 exploded");
    // Other ranks block forever; abort must release them.
    comm.recv(kAnySource, kAnyTag);
  }),
               std::runtime_error);
}

TEST_P(ClusterEngines, DeadlockDetected) {
  Cluster cluster(deterministic(2, GetParam()));
  EXPECT_THROW(cluster.run([&](Comm& comm) {
    // Everyone receives, nobody sends.
    comm.recv(kAnySource, kAnyTag);
  }),
               CommError);
}

TEST_P(ClusterEngines, MismatchedBarrierIsDeadlock) {
  Cluster cluster(deterministic(2, GetParam()));
  EXPECT_THROW(cluster.run([&](Comm& comm) {
    if (comm.rank() == 0) comm.barrier();
    // rank 1 exits immediately; the barrier can never complete.
  }),
               CommError);
}

TEST_P(ClusterEngines, InvalidDestinationThrows) {
  Cluster cluster(deterministic(2, GetParam()));
  EXPECT_THROW(cluster.run([&](Comm& comm) {
    if (comm.rank() == 0) comm.send(5, 1, Bytes{});
    comm.barrier();
  }),
               CommError);
}

TEST_P(ClusterEngines, NegativeUserTagRejected) {
  Cluster cluster(deterministic(2, GetParam()));
  EXPECT_THROW(cluster.run([&](Comm& comm) {
    if (comm.rank() == 0) comm.send(1, -3, Bytes{});
    comm.barrier();
  }),
               CommError);
}

TEST_P(ClusterEngines, ClusterReusableAfterRun) {
  Cluster cluster(deterministic(2, GetParam()));
  int total = 0;
  for (int round = 0; round < 3; ++round) {
    cluster.run([&](Comm& comm) {
      if (comm.rank() == 0) {
        comm.send(1, 1, payload_of(1));
      } else {
        total += static_cast<int>(value_of(comm.recv(0, 1)));
      }
    });
  }
  EXPECT_EQ(total, 3);
}

TEST_P(ClusterEngines, MessageDropCausesDeadlockDetection) {
  ClusterOptions options = deterministic(2, GetParam());
  options.faults.drop = [](const Envelope& env) { return env.tag == 13; };
  Cluster cluster(options);
  EXPECT_THROW(cluster.run([&](Comm& comm) {
    if (comm.rank() == 0) {
      comm.send(1, 13, payload_of(1));  // dropped
    } else {
      comm.recv(0, 13);  // waits forever
    }
  }),
               CommError);
}

TEST_P(ClusterEngines, FifoPerSenderPreserved) {
  Cluster cluster(deterministic(2, GetParam()));
  std::vector<std::uint64_t> received;
  cluster.run([&](Comm& comm) {
    if (comm.rank() == 0) {
      for (std::uint64_t i = 0; i < 10; ++i) comm.send(1, 1, payload_of(i));
    } else {
      for (int i = 0; i < 10; ++i) {
        received.push_back(value_of(comm.recv(0, 1)));
      }
    }
  });
  for (std::uint64_t i = 0; i < 10; ++i) EXPECT_EQ(received[i], i);
}

INSTANTIATE_TEST_SUITE_P(Engines, ClusterEngines,
                         ::testing::Values(Engine::kVirtual,
                                           Engine::kThreads),
                         [](const auto& info) {
                           return info.param == Engine::kVirtual ? "Virtual"
                                                                 : "Threads";
                         });

TEST(ClusterOptionsValidation, RejectsBadConfigs) {
  ClusterOptions options;
  options.ranks = 0;
  EXPECT_THROW(Cluster{options}, CommError);
  options.ranks = 2;
  options.slowdown = {1.0};
  EXPECT_THROW(Cluster{options}, CommError);
  options.slowdown = {1.0, -1.0};
  EXPECT_THROW(Cluster{options}, CommError);
}

}  // namespace
}  // namespace lbe::mpi
