// Tests for the virtual-time engine: explicit charges, the α–β cost model,
// barrier release semantics, heterogeneous slowdowns, and makespan — the
// machinery every figure bench's timing rests on.
#include <gtest/gtest.h>

#include <vector>

#include "simmpi/cluster.hpp"

namespace lbe::mpi {
namespace {

ClusterOptions base_options(int ranks) {
  ClusterOptions options;
  options.ranks = ranks;
  options.engine = Engine::kVirtual;
  options.measured_time = false;
  options.cost = CostModel::zero();
  return options;
}

TEST(VirtualTime, ChargeAdvancesOwnClockOnly) {
  Cluster cluster(base_options(3));
  cluster.run([&](Comm& comm) {
    if (comm.rank() == 1) comm.charge(2.5);
  });
  EXPECT_DOUBLE_EQ(cluster.reports()[0].vclock, 0.0);
  EXPECT_DOUBLE_EQ(cluster.reports()[1].vclock, 2.5);
  EXPECT_DOUBLE_EQ(cluster.reports()[2].vclock, 0.0);
  EXPECT_DOUBLE_EQ(cluster.makespan(), 2.5);
}

TEST(VirtualTime, ChargesAccumulate) {
  Cluster cluster(base_options(1));
  cluster.run([&](Comm& comm) {
    comm.charge(1.0);
    comm.charge(0.5);
    EXPECT_DOUBLE_EQ(comm.vclock(), 1.5);
  });
  EXPECT_DOUBLE_EQ(cluster.makespan(), 1.5);
}

TEST(VirtualTime, NegativeChargeRejected) {
  Cluster cluster(base_options(1));
  EXPECT_THROW(cluster.run([&](Comm& comm) { comm.charge(-1.0); }),
               CommError);
}

TEST(VirtualTime, SendChargesAlphaBetaToSender) {
  ClusterOptions options = base_options(2);
  options.cost.latency = 1.0;
  options.cost.seconds_per_byte = 0.5;
  Cluster cluster(options);
  cluster.run([&](Comm& comm) {
    if (comm.rank() == 0) {
      comm.send(1, 1, Bytes(10));  // cost = 1.0 + 10 * 0.5 = 6.0
    } else {
      comm.recv(0, 1);
    }
  });
  EXPECT_DOUBLE_EQ(cluster.reports()[0].vclock, 6.0);
  // Receiver clock advances to the message availability time.
  EXPECT_DOUBLE_EQ(cluster.reports()[1].vclock, 6.0);
}

TEST(VirtualTime, ReceiverNotRolledBackIfAlreadyLater) {
  ClusterOptions options = base_options(2);
  options.cost.latency = 1.0;
  Cluster cluster(options);
  cluster.run([&](Comm& comm) {
    if (comm.rank() == 0) {
      comm.send(1, 1, Bytes{});  // available at t=1
    } else {
      comm.charge(10.0);
      comm.recv(0, 1);
      EXPECT_DOUBLE_EQ(comm.vclock(), 10.0);  // max(10, 1) = 10
    }
  });
}

TEST(VirtualTime, ReceiverWaitsForwardsClock) {
  ClusterOptions options = base_options(2);
  Cluster cluster(options);
  cluster.run([&](Comm& comm) {
    if (comm.rank() == 0) {
      comm.charge(5.0);  // compute before sending
      comm.send(1, 1, Bytes{});
    } else {
      comm.recv(0, 1);
      EXPECT_DOUBLE_EQ(comm.vclock(), 5.0);  // waited for the sender
    }
  });
}

TEST(VirtualTime, BarrierReleasesAllAtMaxArrival) {
  ClusterOptions options = base_options(4);
  Cluster cluster(options);
  std::vector<double> after(4);
  cluster.run([&](Comm& comm) {
    comm.charge(static_cast<double>(comm.rank()));  // 0, 1, 2, 3
    comm.barrier();
    after[static_cast<std::size_t>(comm.rank())] = comm.vclock();
  });
  for (const double t : after) EXPECT_DOUBLE_EQ(t, 3.0);
}

TEST(VirtualTime, BarrierCostAddsLogTerm) {
  ClusterOptions options = base_options(4);
  options.cost.latency = 1.0;  // barrier(4) = 1.0 * ceil(log2(4)) = 2.0
  Cluster cluster(options);
  std::vector<double> after(4);
  cluster.run([&](Comm& comm) {
    comm.barrier();
    after[static_cast<std::size_t>(comm.rank())] = comm.vclock();
  });
  for (const double t : after) EXPECT_DOUBLE_EQ(t, 2.0);
}

TEST(VirtualTime, SlowdownScalesMeasuredTime) {
  // With measured time ON and a 3x slowdown on rank 1, equal real work
  // costs rank 1 about 3x the virtual seconds of rank 0.
  ClusterOptions options;
  options.ranks = 2;
  options.engine = Engine::kVirtual;
  options.measured_time = true;
  options.cost = CostModel::zero();
  options.slowdown = {1.0, 3.0};
  Cluster cluster(options);
  cluster.run([&](Comm& /*comm*/) {
    volatile double sink = 0.0;
    for (int i = 0; i < 2000000; ++i) sink = sink + 1.0;
  });
  const double t0 = cluster.reports()[0].vclock;
  const double t1 = cluster.reports()[1].vclock;
  ASSERT_GT(t0, 0.0);
  const double ratio = t1 / t0;
  EXPECT_GT(ratio, 1.8);  // loose: CI timing noise
  EXPECT_LT(ratio, 5.0);
}

TEST(VirtualTime, MeasuredTimeProducesNonZeroClocks) {
  ClusterOptions options;
  options.ranks = 2;
  options.engine = Engine::kVirtual;
  options.measured_time = true;
  options.cost = CostModel::zero();
  Cluster cluster(options);
  cluster.run([&](Comm&) {
    volatile double sink = 0.0;
    for (int i = 0; i < 500000; ++i) sink = sink + 1.0;
  });
  EXPECT_GT(cluster.reports()[0].vclock, 0.0);
  EXPECT_GT(cluster.reports()[1].vclock, 0.0);
}

TEST(VirtualTime, ResetClocksZeroesState) {
  Cluster cluster(base_options(2));
  cluster.run([&](Comm& comm) { comm.charge(1.0); });
  EXPECT_GT(cluster.makespan(), 0.0);
  cluster.reset_clocks();
  cluster.run([&](Comm&) {});
  EXPECT_DOUBLE_EQ(cluster.makespan(), 0.0);
}

TEST(VirtualTime, ReportsCountMessagesAndBytes) {
  Cluster cluster(base_options(2));
  cluster.run([&](Comm& comm) {
    if (comm.rank() == 0) {
      comm.send(1, 1, Bytes(100));
      comm.send(1, 1, Bytes(50));
    } else {
      comm.recv(0, 1);
      comm.recv(0, 1);
    }
  });
  EXPECT_EQ(cluster.reports()[0].messages_sent, 2u);
  EXPECT_EQ(cluster.reports()[0].bytes_sent, 150u);
  EXPECT_EQ(cluster.reports()[1].messages_received, 2u);
}

TEST(VirtualTime, FaultDelayPostponesAvailability) {
  ClusterOptions options = base_options(2);
  options.faults.delay = [](const Envelope&) { return 4.0; };
  Cluster cluster(options);
  cluster.run([&](Comm& comm) {
    if (comm.rank() == 0) {
      comm.send(1, 1, Bytes{});
    } else {
      comm.recv(0, 1);
      EXPECT_DOUBLE_EQ(comm.vclock(), 4.0);
    }
  });
}

TEST(VirtualTime, SchedulerPrefersLaggingRank) {
  // Two workers charge different amounts, then both send to a collector.
  // The collector must observe availability times consistent with each
  // sender's own clock (lower-clock rank scheduled first is an internal
  // detail; availability is what the model guarantees).
  Cluster cluster(base_options(3));
  std::vector<double> availability(2);
  cluster.run([&](Comm& comm) {
    if (comm.rank() == 0) {
      for (int i = 0; i < 2; ++i) {
        RecvInfo info;
        comm.recv(kAnySource, 1, &info);
        // vclock now >= sender's send time.
      }
    } else {
      comm.charge(comm.rank() == 1 ? 1.0 : 7.0);
      comm.send(0, 1, Bytes{});
      availability[static_cast<std::size_t>(comm.rank() - 1)] = comm.vclock();
    }
  });
  EXPECT_DOUBLE_EQ(availability[0], 1.0);
  EXPECT_DOUBLE_EQ(availability[1], 7.0);
  // Collector ends at the latest availability.
  EXPECT_DOUBLE_EQ(cluster.reports()[0].vclock, 7.0);
}

TEST(CostModel, TransferAndBarrierFormulas) {
  CostModel model;
  model.latency = 2.0;
  model.seconds_per_byte = 0.25;
  EXPECT_DOUBLE_EQ(model.transfer(8), 4.0);
  EXPECT_DOUBLE_EQ(model.transfer(0), 2.0);
  EXPECT_DOUBLE_EQ(model.barrier(1), 0.0);
  EXPECT_DOUBLE_EQ(model.barrier(2), 2.0);   // ceil(log2 2) = 1
  EXPECT_DOUBLE_EQ(model.barrier(4), 4.0);   // 2
  EXPECT_DOUBLE_EQ(model.barrier(5), 6.0);   // 3
  EXPECT_DOUBLE_EQ(model.barrier(16), 8.0);  // 4
  const CostModel zero = CostModel::zero();
  EXPECT_DOUBLE_EQ(zero.transfer(1000), 0.0);
}

}  // namespace
}  // namespace lbe::mpi
