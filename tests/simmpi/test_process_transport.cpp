// ProcessTransport end to end: real forked worker processes over Unix-domain
// sockets, including the fault paths the ISSUE demands stay *typed* — a
// killed worker, a garbage frame and an oversized frame must each surface as
// CommError (FrameTooLargeError for the oversize case) at the master, never
// as a hang, and no run may leave zombie children behind.
//
// This binary is its own process-transport host: main() registers the test
// rank programs and dispatches to rank_worker_main when re-exec'd with
// --rank-worker, so gtest_main is not used here.
#include "simmpi/process.hpp"

#include <sys/wait.h>

#include <cerrno>
#include <cstdlib>
#include <string>

#include <gtest/gtest.h>

#include "common/error.hpp"
#include "common/net.hpp"
#include "simmpi/transport.hpp"

namespace lbe::mpi {
namespace {

Bytes payload_of(std::uint64_t value) {
  Bytes bytes;
  ByteWriter writer(bytes);
  writer.pod(value);
  return bytes;
}

std::uint64_t value_of(const Bytes& bytes) {
  ByteReader reader(bytes);
  return reader.pod<std::uint64_t>();
}

/// Worker-side check: a failed expectation inside a worker process cannot
/// reach gtest in the parent, so it throws instead — the transport delivers
/// it to the master as "rank N worker failed: <message>".
void worker_check(bool condition, const char* message) {
  if (!condition) throw CommError(message);
}

void register_test_programs() {
  // Each worker: self-send round trip, ping-pong with the master, barrier,
  // then an allreduce — every primitive over the real socket fabric.
  register_rank_program("test.pingpong", [](Comm& comm, const Bytes& setup) {
    const std::uint64_t base = value_of(setup);
    const auto rank = static_cast<std::uint64_t>(comm.rank());

    comm.send(comm.rank(), 9, payload_of(base * 2));
    worker_check(value_of(comm.recv(comm.rank(), 9)) == base * 2,
                 "self-send round trip corrupted the payload");

    comm.send(0, 5, payload_of(base + rank));
    worker_check(value_of(comm.recv(0, 6)) == base + rank + 100,
                 "master reply carried the wrong value");

    comm.barrier();
    const double max = comm.allreduce_max(static_cast<double>(comm.rank()));
    worker_check(max == static_cast<double>(comm.size() - 1),
                 "allreduce_max disagreed with the fleet size");
  });

  // Worker-to-worker traffic through the master's router: 1 -> 2 -> 0.
  register_rank_program("test.relay", [](Comm& comm, const Bytes& setup) {
    const std::uint64_t base = value_of(setup);
    if (comm.rank() == 1) {
      comm.send(2, 3, payload_of(base + 1));
    } else if (comm.rank() == 2) {
      comm.send(0, 4, payload_of(value_of(comm.recv(1, 3)) + 1));
    }
  });

  // Blocks on a message the master never sends — the victim program for
  // the fault-injection tests (the faulted sibling dies first, and the
  // master must kill + reap this one during cleanup).
  register_rank_program("test.block", [](Comm& comm, const Bytes&) {
    comm.recv(0, 99);
  });

  // A worker whose program itself throws: the typed message must surface
  // verbatim at the master.
  register_rank_program("test.fail", [](Comm&, const Bytes&) {
    throw CommError("deliberate test failure");
  });
}

/// Scoped LBE_RANK_WORKER_FAULT so one test's fault cannot leak into the
/// next (workers inherit the environment at fork).
class FaultInjection {
 public:
  explicit FaultInjection(const std::string& spec) {
    ::setenv("LBE_RANK_WORKER_FAULT", spec.c_str(), 1);
  }
  ~FaultInjection() { ::unsetenv("LBE_RANK_WORKER_FAULT"); }
};

/// True when this process has no unreaped children left: every fork the
/// transport made was waited on (zombies would still be our children).
bool all_children_reaped() {
  return ::waitpid(-1, nullptr, WNOHANG) == -1 && errno == ECHILD;
}

ProcessTransportOptions options_for(int ranks, const std::string& program,
                                    std::uint64_t setup_value = 7) {
  ProcessTransportOptions options;
  options.ranks = ranks;
  options.program = program;
  options.setup = payload_of(setup_value);
  return options;
}

TEST(ProcessTransport, PingPongBarrierAndCollectivesAcrossProcesses) {
  ProcessTransport transport(options_for(4, "test.pingpong", 1000));
  std::uint64_t sum = 0;
  transport.run([&](Comm& comm) {
    ASSERT_EQ(comm.rank(), 0);  // only the master runs in-process
    ASSERT_EQ(comm.size(), 4);
    for (int src = 1; src < comm.size(); ++src) {
      const std::uint64_t value = value_of(comm.recv(src, 5));
      sum += value;
      comm.send(src, 6, payload_of(value + 100));
    }
    comm.barrier();
    EXPECT_EQ(comm.allreduce_max(0.0), 3.0);
  });
  EXPECT_EQ(sum, 3 * 1000u + 1 + 2 + 3);
  EXPECT_TRUE(all_children_reaped());

  const auto& reports = transport.reports();
  ASSERT_EQ(reports.size(), 4u);
  for (std::size_t rank = 1; rank < reports.size(); ++rank) {
    EXPECT_GT(reports[rank].messages_sent, 0u) << "rank " << rank;
    EXPECT_GT(reports[rank].bytes_sent, 0u) << "rank " << rank;
    EXPECT_GT(reports[rank].messages_received, 0u) << "rank " << rank;
    // Real processes report real resident memory.
    EXPECT_GT(reports[rank].peak_rss_bytes, 0u) << "rank " << rank;
  }
  EXPECT_GT(reports[0].messages_sent, 0u);
  EXPECT_GT(transport.makespan(), 0.0);
}

TEST(ProcessTransport, RoutesWorkerToWorkerTraffic) {
  ProcessTransport transport(options_for(3, "test.relay", 40));
  std::uint64_t relayed = 0;
  transport.run([&](Comm& comm) { relayed = value_of(comm.recv(2, 4)); });
  EXPECT_EQ(relayed, 42u);  // 40 staged, +1 at rank 1, +1 at rank 2
  EXPECT_TRUE(all_children_reaped());
}

TEST(ProcessTransport, SingleRankRunsMasterOnly) {
  ProcessTransport transport(options_for(1, ""));
  int ran = 0;
  transport.run([&](Comm& comm) {
    ++ran;
    EXPECT_EQ(comm.size(), 1);
    comm.send(0, 1, payload_of(11));
    EXPECT_EQ(value_of(comm.recv(0, 1)), 11u);
  });
  EXPECT_EQ(ran, 1);
  ASSERT_EQ(transport.reports().size(), 1u);
}

TEST(ProcessTransport, KilledWorkerSurfacesAsTypedErrorNotHang) {
  // Rank 1 exits right after its handshake, before sending anything; the
  // master is left blocking on its message and the healthy rank 2 blocks
  // forever by design — a hang here IS the regression this test guards.
  FaultInjection fault("exit:1");
  ProcessTransport transport(options_for(3, "test.block"));
  try {
    transport.run([&](Comm& comm) { comm.recv(1, 5); });
    FAIL() << "run() returned despite a killed worker";
  } catch (const CommError& error) {
    EXPECT_NE(std::string(error.what()).find("rank 1 worker exited"),
              std::string::npos)
        << error.what();
  }
  // Cleanup must have SIGKILL'd and reaped rank 2 too — no zombies.
  EXPECT_TRUE(all_children_reaped());
}

TEST(ProcessTransport, GarbageFrameSurfacesAsCommError) {
  FaultInjection fault("garbage:1");
  ProcessTransport transport(options_for(3, "test.block"));
  try {
    transport.run([&](Comm& comm) { comm.recv(1, 5); });
    FAIL() << "run() returned despite a garbage frame";
  } catch (const net::FrameTooLargeError&) {
    FAIL() << "garbage magic misclassified as an oversized frame";
  } catch (const CommError& error) {
    EXPECT_NE(std::string(error.what()).find("garbage"), std::string::npos)
        << error.what();
  }
  EXPECT_TRUE(all_children_reaped());
}

TEST(ProcessTransport, OversizedFrameSurfacesAsFrameTooLargeError) {
  FaultInjection fault("oversize:2");
  ProcessTransport transport(options_for(3, "test.block"));
  EXPECT_THROW(transport.run([&](Comm& comm) { comm.recv(2, 5); }),
               net::FrameTooLargeError);
  EXPECT_TRUE(all_children_reaped());
}

TEST(ProcessTransport, WorkerProgramFailureCarriesItsMessage) {
  ProcessTransport transport(options_for(2, "test.fail"));
  try {
    transport.run([&](Comm& comm) { comm.recv(1, 5); });
    FAIL() << "run() returned despite a failing worker program";
  } catch (const CommError& error) {
    const std::string what = error.what();
    EXPECT_NE(what.find("rank 1 worker failed"), std::string::npos) << what;
    EXPECT_NE(what.find("deliberate test failure"), std::string::npos)
        << what;
  }
  EXPECT_TRUE(all_children_reaped());
}

TEST(ProcessTransport, UnregisteredProgramFailsTyped) {
  ProcessTransport transport(options_for(2, "test.no-such-program"));
  try {
    transport.run([&](Comm& comm) { comm.recv(1, 5); });
    FAIL() << "run() returned despite an unregistered program";
  } catch (const CommError& error) {
    EXPECT_NE(std::string(error.what()).find("no rank program registered"),
              std::string::npos)
        << error.what();
  }
  EXPECT_TRUE(all_children_reaped());
}

TEST(ProcessTransport, RejectsInvalidOptions) {
  EXPECT_THROW(ProcessTransport(options_for(0, "test.pingpong")), CommError);
  EXPECT_THROW(ProcessTransport(options_for(2, "")), CommError);
}

TEST(ProcessTransport, UserTagsMustBeNonNegativeOnTheWireToo) {
  ProcessTransport transport(options_for(1, ""));
  transport.run([&](Comm& comm) {
    EXPECT_THROW(comm.send(0, -1, payload_of(1)), CommError);
  });
}

}  // namespace
}  // namespace lbe::mpi

int main(int argc, char** argv) {
  lbe::mpi::register_test_programs();
  if (lbe::mpi::is_rank_worker(argc, argv)) {
    return lbe::mpi::rank_worker_main(argc, argv);
  }
  ::testing::InitGoogleTest(&argc, argv);
  return RUN_ALL_TESTS();
}
