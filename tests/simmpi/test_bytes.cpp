#include "simmpi/bytes.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

namespace lbe::mpi {
namespace {

TEST(Bytes, PodRoundTrip) {
  Bytes buffer;
  ByteWriter writer(buffer);
  writer.pod(std::uint32_t{42});
  writer.pod(3.25);
  writer.pod(std::int8_t{-7});

  ByteReader reader(buffer);
  EXPECT_EQ(reader.pod<std::uint32_t>(), 42u);
  EXPECT_DOUBLE_EQ(reader.pod<double>(), 3.25);
  EXPECT_EQ(reader.pod<std::int8_t>(), -7);
  EXPECT_TRUE(reader.exhausted());
}

TEST(Bytes, StringRoundTrip) {
  Bytes buffer;
  ByteWriter writer(buffer);
  const std::string with_nuls("with\0embedded\nnul\0", 18);
  writer.string("PEPTIDEK");
  writer.string("");
  writer.string(with_nuls);

  ByteReader reader(buffer);
  EXPECT_EQ(reader.string(), "PEPTIDEK");
  EXPECT_EQ(reader.string(), "");
  const std::string third = reader.string();
  EXPECT_EQ(third.size(), 18u);
  EXPECT_EQ(third, with_nuls);
  EXPECT_TRUE(reader.exhausted());
}

TEST(Bytes, VectorRoundTrip) {
  Bytes buffer;
  ByteWriter writer(buffer);
  writer.vector(std::vector<std::uint32_t>{1, 2, 3});
  writer.vector(std::vector<double>{});
  writer.vector(std::vector<float>{1.5f, -2.5f});

  ByteReader reader(buffer);
  EXPECT_EQ(reader.vector<std::uint32_t>(),
            (std::vector<std::uint32_t>{1, 2, 3}));
  EXPECT_TRUE(reader.vector<double>().empty());
  EXPECT_EQ(reader.vector<float>(), (std::vector<float>{1.5f, -2.5f}));
}

TEST(Bytes, MixedSequenceRoundTrip) {
  Bytes buffer;
  ByteWriter writer(buffer);
  writer.pod(std::uint64_t{7});
  writer.string("query");
  writer.vector(std::vector<std::uint16_t>{9, 8});
  writer.pod(false);

  ByteReader reader(buffer);
  EXPECT_EQ(reader.pod<std::uint64_t>(), 7u);
  EXPECT_EQ(reader.string(), "query");
  EXPECT_EQ(reader.vector<std::uint16_t>(),
            (std::vector<std::uint16_t>{9, 8}));
  EXPECT_FALSE(reader.pod<bool>());
  EXPECT_TRUE(reader.exhausted());
}

TEST(Bytes, UnderrunThrows) {
  Bytes buffer;
  ByteWriter writer(buffer);
  writer.pod(std::uint16_t{1});
  ByteReader reader(buffer);
  EXPECT_THROW(reader.pod<std::uint64_t>(), CommError);
}

TEST(Bytes, TruncatedStringThrows) {
  Bytes buffer;
  ByteWriter writer(buffer);
  writer.string("hello");
  buffer.resize(buffer.size() - 2);  // chop payload
  ByteReader reader(buffer);
  EXPECT_THROW(reader.string(), CommError);
}

TEST(Bytes, TruncatedVectorThrows) {
  Bytes buffer;
  ByteWriter writer(buffer);
  writer.vector(std::vector<std::uint64_t>{1, 2, 3});
  buffer.resize(buffer.size() - 1);
  ByteReader reader(buffer);
  EXPECT_THROW(reader.vector<std::uint64_t>(), CommError);
}

TEST(Bytes, AdversarialStringSizeThrowsInsteadOfWrapping) {
  // A hand-crafted frame can carry any 64-bit length prefix. Sizes near
  // 2^64 must fail the bounds check (CommError), not wrap `pos_ + bytes`
  // around zero and pass it — that path ends in a multi-exabyte
  // std::string allocation.
  for (const std::uint64_t evil :
       {~std::uint64_t{0}, ~std::uint64_t{0} - 7, std::uint64_t{1} << 63}) {
    Bytes buffer;
    ByteWriter writer(buffer);
    writer.pod(evil);  // string() reads this as the byte count
    ByteReader reader(buffer);
    EXPECT_THROW(reader.string(), CommError);
  }
}

TEST(Bytes, AdversarialVectorCountThrowsInsteadOfOverflowing) {
  // Same attack on vector(): a count like 2^61 times sizeof(u64) wraps a
  // naive `count * sizeof(T)` to a small number. The reader must reject
  // the count against remaining()/sizeof(T) before sizing anything.
  for (const std::uint64_t evil :
       {~std::uint64_t{0}, std::uint64_t{1} << 61, std::uint64_t{1} << 32}) {
    Bytes buffer;
    ByteWriter writer(buffer);
    writer.pod(evil);                 // element count
    writer.pod(std::uint64_t{0xAB});  // a few bytes of "payload"
    ByteReader reader(buffer);
    EXPECT_THROW(reader.vector<std::uint64_t>(), CommError);
  }
}

TEST(Bytes, RemainingTracksPosition) {
  Bytes buffer;
  ByteWriter writer(buffer);
  writer.pod(std::uint32_t{1});
  writer.pod(std::uint32_t{2});
  ByteReader reader(buffer);
  EXPECT_EQ(reader.remaining(), 8u);
  reader.pod<std::uint32_t>();
  EXPECT_EQ(reader.remaining(), 4u);
}

TEST(Bytes, TrivialStructRoundTrip) {
  struct Record {
    std::uint32_t id;
    float score;
    bool operator==(const Record&) const = default;
  };
  Bytes buffer;
  ByteWriter writer(buffer);
  writer.vector(std::vector<Record>{{1, 0.5f}, {2, -1.0f}});
  ByteReader reader(buffer);
  EXPECT_EQ(reader.vector<Record>(),
            (std::vector<Record>{{1, 0.5f}, {2, -1.0f}}));
}

}  // namespace
}  // namespace lbe::mpi
