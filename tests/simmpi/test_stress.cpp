// Randomized stress tests for the cluster: seeded message storms whose
// outcome is checkable in closed form, run on both engines.
#include <gtest/gtest.h>

#include <numeric>
#include <vector>

#include "common/rng.hpp"
#include "simmpi/cluster.hpp"

namespace lbe::mpi {
namespace {

ClusterOptions deterministic(int ranks, Engine engine) {
  ClusterOptions options;
  options.ranks = ranks;
  options.engine = engine;
  options.measured_time = false;
  return options;
}

class StressEngines
    : public ::testing::TestWithParam<std::tuple<Engine, int>> {};

TEST_P(StressEngines, RingRotationPreservesTokens) {
  // Each rank starts with a value and passes it around the full ring; after
  // p hops everyone must hold their own value again.
  const auto [engine, ranks] = GetParam();
  Cluster cluster(deterministic(ranks, engine));
  std::vector<std::uint64_t> final_values(
      static_cast<std::size_t>(ranks), 0);
  cluster.run([&](Comm& comm) {
    const int p = comm.size();
    const int next = (comm.rank() + 1) % p;
    const int prev = (comm.rank() + p - 1) % p;
    std::uint64_t token = 1000 + static_cast<std::uint64_t>(comm.rank());
    for (int hop = 0; hop < p; ++hop) {
      Bytes payload;
      ByteWriter writer(payload);
      writer.pod(token);
      comm.send(next, hop, std::move(payload));
      const Bytes received = comm.recv(prev, hop);
      ByteReader reader(received);
      token = reader.pod<std::uint64_t>();
    }
    final_values[static_cast<std::size_t>(comm.rank())] = token;
  });
  for (int r = 0; r < ranks; ++r) {
    EXPECT_EQ(final_values[static_cast<std::size_t>(r)],
              1000 + static_cast<std::uint64_t>(r));
  }
}

TEST_P(StressEngines, RandomScheduleChecksums) {
  // A seeded random schedule of point-to-point messages; every rank knows
  // exactly which messages it must receive (same seed), so the total
  // checksum is verifiable without any coordination.
  const auto [engine, ranks] = GetParam();
  constexpr int kMessages = 200;
  const auto p = static_cast<std::uint64_t>(ranks);

  // Global schedule: message m goes src -> dest with value v(m).
  struct Planned {
    int src;
    int dest;
    std::uint64_t value;
  };
  std::vector<Planned> schedule;
  Xoshiro256 rng(0xC0FFEE);
  for (int m = 0; m < kMessages; ++m) {
    const int src = static_cast<int>(rng.below(p));
    int dest = static_cast<int>(rng.below(p));
    schedule.push_back(Planned{src, dest, rng() >> 8});
  }

  Cluster cluster(deterministic(ranks, engine));
  std::vector<std::uint64_t> received_sum(static_cast<std::size_t>(ranks), 0);
  cluster.run([&](Comm& comm) {
    const int me = comm.rank();
    std::size_t expected = 0;
    for (const auto& planned : schedule) {
      if (planned.dest == me) ++expected;
    }
    // Send everything I owe (FIFO per sender keeps this deadlock-free:
    // sends never block).
    for (const auto& planned : schedule) {
      if (planned.src != me) continue;
      Bytes payload;
      ByteWriter writer(payload);
      writer.pod(planned.value);
      comm.send(planned.dest, 7, std::move(payload));
    }
    std::uint64_t sum = 0;
    for (std::size_t i = 0; i < expected; ++i) {
      const Bytes bytes = comm.recv(kAnySource, 7);
      ByteReader reader(bytes);
      sum += reader.pod<std::uint64_t>();
    }
    received_sum[static_cast<std::size_t>(me)] = sum;
  });

  std::vector<std::uint64_t> expected_sum(static_cast<std::size_t>(ranks), 0);
  for (const auto& planned : schedule) {
    expected_sum[static_cast<std::size_t>(planned.dest)] += planned.value;
  }
  EXPECT_EQ(received_sum, expected_sum);
}

TEST_P(StressEngines, AlternatingBarriersAndReductions) {
  const auto [engine, ranks] = GetParam();
  Cluster cluster(deterministic(ranks, engine));
  std::vector<double> finals(static_cast<std::size_t>(ranks), 0.0);
  cluster.run([&](Comm& comm) {
    double value = static_cast<double>(comm.rank() + 1);
    for (int round = 0; round < 5; ++round) {
      value = comm.allreduce_sum(value) / comm.size();  // -> mean
      comm.barrier();
    }
    finals[static_cast<std::size_t>(comm.rank())] = value;
  });
  // Mean of 1..p is (p+1)/2 and is a fixed point of the iteration.
  const double expected = (static_cast<double>(ranks) + 1.0) / 2.0;
  for (const double v : finals) EXPECT_DOUBLE_EQ(v, expected);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, StressEngines,
    ::testing::Combine(::testing::Values(Engine::kVirtual, Engine::kThreads),
                       ::testing::Values(2, 5, 9)),
    [](const auto& info) {
      return std::string(std::get<0>(info.param) == Engine::kVirtual
                             ? "Virtual"
                             : "Threads") +
             "_p" + std::to_string(std::get<1>(info.param));
    });

}  // namespace
}  // namespace lbe::mpi
