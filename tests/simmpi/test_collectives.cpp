#include <gtest/gtest.h>

#include <vector>

#include "simmpi/cluster.hpp"

namespace lbe::mpi {
namespace {

ClusterOptions deterministic(int ranks, Engine engine = Engine::kVirtual) {
  ClusterOptions options;
  options.ranks = ranks;
  options.engine = engine;
  options.measured_time = false;
  return options;
}

class CollectiveEngines : public ::testing::TestWithParam<Engine> {};

TEST_P(CollectiveEngines, BcastDeliversToAll) {
  constexpr int kRanks = 6;
  Cluster cluster(deterministic(kRanks, GetParam()));
  std::vector<std::string> received(kRanks);
  cluster.run([&](Comm& comm) {
    Bytes data;
    if (comm.rank() == 2) {
      ByteWriter writer(data);
      writer.string("clustered-db");
    }
    comm.bcast(data, 2);
    ByteReader reader(data);
    received[static_cast<std::size_t>(comm.rank())] = reader.string();
  });
  for (const auto& r : received) EXPECT_EQ(r, "clustered-db");
}

TEST_P(CollectiveEngines, GatherCollectsInRankOrder) {
  constexpr int kRanks = 5;
  Cluster cluster(deterministic(kRanks, GetParam()));
  std::vector<std::uint64_t> collected;
  cluster.run([&](Comm& comm) {
    Bytes mine;
    ByteWriter writer(mine);
    writer.pod(static_cast<std::uint64_t>(comm.rank() * 11));
    const auto all = comm.gather(std::move(mine), 0);
    if (comm.rank() == 0) {
      ASSERT_EQ(all.size(), static_cast<std::size_t>(kRanks));
      for (const auto& bytes : all) {
        ByteReader reader(bytes);
        collected.push_back(reader.pod<std::uint64_t>());
      }
    } else {
      EXPECT_TRUE(all.empty());
    }
  });
  ASSERT_EQ(collected.size(), 5u);
  for (std::size_t i = 0; i < collected.size(); ++i) {
    EXPECT_EQ(collected[i], i * 11);
  }
}

TEST_P(CollectiveEngines, GatherToNonZeroRoot) {
  Cluster cluster(deterministic(3, GetParam()));
  std::size_t got = 0;
  cluster.run([&](Comm& comm) {
    Bytes mine;
    ByteWriter writer(mine);
    writer.pod(comm.rank());
    const auto all = comm.gather(std::move(mine), 2);
    if (comm.rank() == 2) got = all.size();
  });
  EXPECT_EQ(got, 3u);
}

TEST_P(CollectiveEngines, AllreduceMax) {
  constexpr int kRanks = 7;
  Cluster cluster(deterministic(kRanks, GetParam()));
  std::vector<double> results(kRanks, -1.0);
  cluster.run([&](Comm& comm) {
    const double mine = comm.rank() == 4 ? 99.5 : static_cast<double>(
                                                       comm.rank());
    results[static_cast<std::size_t>(comm.rank())] =
        comm.allreduce_max(mine);
  });
  for (const double r : results) EXPECT_DOUBLE_EQ(r, 99.5);
}

TEST_P(CollectiveEngines, AllreduceSum) {
  constexpr int kRanks = 4;
  Cluster cluster(deterministic(kRanks, GetParam()));
  std::vector<double> results(kRanks, 0.0);
  cluster.run([&](Comm& comm) {
    results[static_cast<std::size_t>(comm.rank())] =
        comm.allreduce_sum(static_cast<double>(comm.rank() + 1));
  });
  for (const double r : results) EXPECT_DOUBLE_EQ(r, 10.0);  // 1+2+3+4
}

TEST_P(CollectiveEngines, SingleRankCollectivesTrivial) {
  Cluster cluster(deterministic(1, GetParam()));
  cluster.run([&](Comm& comm) {
    Bytes data;
    ByteWriter writer(data);
    writer.pod(5);
    comm.bcast(data, 0);
    const auto all = comm.gather(std::move(data), 0);
    EXPECT_EQ(all.size(), 1u);
    EXPECT_DOUBLE_EQ(comm.allreduce_max(3.0), 3.0);
    EXPECT_DOUBLE_EQ(comm.allreduce_sum(3.0), 3.0);
  });
}

TEST_P(CollectiveEngines, BackToBackCollectivesDoNotCrosstalk) {
  constexpr int kRanks = 4;
  Cluster cluster(deterministic(kRanks, GetParam()));
  std::vector<double> sums(kRanks);
  std::vector<double> maxes(kRanks);
  cluster.run([&](Comm& comm) {
    const auto r = static_cast<std::size_t>(comm.rank());
    sums[r] = comm.allreduce_sum(1.0);
    maxes[r] = comm.allreduce_max(static_cast<double>(comm.rank()));
    sums[r] += comm.allreduce_sum(2.0);
  });
  for (const double s : sums) EXPECT_DOUBLE_EQ(s, 12.0);  // 4 + 8
  for (const double m : maxes) EXPECT_DOUBLE_EQ(m, 3.0);
}

INSTANTIATE_TEST_SUITE_P(Engines, CollectiveEngines,
                         ::testing::Values(Engine::kVirtual,
                                           Engine::kThreads),
                         [](const auto& info) {
                           return info.param == Engine::kVirtual ? "Virtual"
                                                                 : "Threads";
                         });

}  // namespace
}  // namespace lbe::mpi
