#include "synth/spectra.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"
#include "io/ms2.hpp"

namespace lbe::synth {
namespace {

class SpectraTest : public ::testing::Test {
 protected:
  SpectraTest() {
    params_.num_spectra = 50;
    params_.fragments.max_fragment_charge = 1;
  }

  std::vector<std::string> peptides_ = {"PEPTIDEK", "MKWVTFISLLK",
                                        "NMGGGKAA", "GGGGGGK"};
  chem::ModificationSet mods_ = chem::ModificationSet::paper_default();
  SpectraParams params_;
};

TEST_F(SpectraTest, GeneratesRequestedCount) {
  const auto out = generate_spectra(peptides_, mods_, params_);
  EXPECT_EQ(out.spectra.size(), 50u);
  EXPECT_EQ(out.truth.size(), 50u);
}

TEST_F(SpectraTest, TruthIndicesValid) {
  const auto out = generate_spectra(peptides_, mods_, params_);
  for (const auto t : out.truth) {
    EXPECT_LT(t, peptides_.size());
  }
}

TEST_F(SpectraTest, DeterministicForSeed) {
  const auto a = generate_spectra(peptides_, mods_, params_);
  const auto b = generate_spectra(peptides_, mods_, params_);
  ASSERT_EQ(a.spectra.size(), b.spectra.size());
  EXPECT_EQ(a.truth, b.truth);
  for (std::size_t i = 0; i < a.spectra.size(); ++i) {
    ASSERT_EQ(a.spectra[i].size(), b.spectra[i].size());
    for (std::size_t p = 0; p < a.spectra[i].size(); ++p) {
      EXPECT_DOUBLE_EQ(a.spectra[i].mz(p), b.spectra[i].mz(p));
    }
  }
}

TEST_F(SpectraTest, PrecursorChargeInRange) {
  const auto out = generate_spectra(peptides_, mods_, params_);
  for (const auto& s : out.spectra) {
    EXPECT_GE(s.precursor.charge, params_.precursor_charge_min);
    EXPECT_LE(s.precursor.charge, params_.precursor_charge_max);
    EXPECT_GT(s.precursor.neutral_mass, 0.0);
    EXPECT_GT(s.precursor.mz, 0.0);
  }
}

TEST_F(SpectraTest, UnmodifiedFractionMatchesPrecursorMass) {
  SpectraParams no_mods = params_;
  no_mods.modified_fraction = 0.0;
  const auto out = generate_spectra(peptides_, mods_, no_mods);
  for (std::size_t i = 0; i < out.spectra.size(); ++i) {
    const chem::Peptide truth(peptides_[out.truth[i]]);
    EXPECT_NEAR(out.spectra[i].precursor.neutral_mass, truth.mass(mods_),
                1e-6);
  }
}

TEST_F(SpectraTest, ModifiedFractionShiftsSomePrecursors) {
  SpectraParams all_mods = params_;
  all_mods.modified_fraction = 1.0;
  all_mods.num_spectra = 100;
  const auto out = generate_spectra(peptides_, mods_, all_mods);
  std::size_t shifted = 0;
  for (std::size_t i = 0; i < out.spectra.size(); ++i) {
    const chem::Peptide base(peptides_[out.truth[i]]);
    if (std::abs(out.spectra[i].precursor.neutral_mass - base.mass(mods_)) >
        0.5) {
      ++shifted;
    }
  }
  // Every draw asked for a modified variant; peptides without eligible
  // sites (GGGGGGK has K -> GlyGly applies) still shift. Expect most.
  EXPECT_GT(shifted, 60u);
}

TEST_F(SpectraTest, NoisePeaksIncreaseSpectrumSize) {
  SpectraParams no_noise = params_;
  no_noise.noise_peaks = 0;
  no_noise.peak_observe_prob = 1.0;
  no_noise.mz_jitter_stddev = 0.0;
  SpectraParams noisy = no_noise;
  noisy.noise_peaks = 30;
  const auto clean = generate_spectra(peptides_, mods_, no_noise);
  const auto dirty = generate_spectra(peptides_, mods_, noisy);
  double clean_avg = 0.0;
  double dirty_avg = 0.0;
  for (const auto& s : clean.spectra) clean_avg += static_cast<double>(s.size());
  for (const auto& s : dirty.spectra) dirty_avg += static_cast<double>(s.size());
  EXPECT_GT(dirty_avg, clean_avg + 25.0 * 50);
}

TEST_F(SpectraTest, DropoutReducesPeaks) {
  SpectraParams full = params_;
  full.peak_observe_prob = 1.0;
  full.noise_peaks = 0;
  SpectraParams half = full;
  half.peak_observe_prob = 0.5;
  const auto a = generate_spectra(peptides_, mods_, full);
  const auto b = generate_spectra(peptides_, mods_, half);
  double full_total = 0.0;
  double half_total = 0.0;
  for (const auto& s : a.spectra) full_total += static_cast<double>(s.size());
  for (const auto& s : b.spectra) half_total += static_cast<double>(s.size());
  EXPECT_LT(half_total, 0.7 * full_total);
}

TEST_F(SpectraTest, SpectraAreSortedAndFinalized) {
  const auto out = generate_spectra(peptides_, mods_, params_);
  for (const auto& s : out.spectra) {
    for (std::size_t i = 1; i < s.size(); ++i) {
      EXPECT_LE(s.mz(i - 1), s.mz(i));
    }
  }
}

TEST_F(SpectraTest, EmptyPeptideListRejected) {
  EXPECT_THROW(generate_spectra({}, mods_, params_), ConfigError);
}

TEST_F(SpectraTest, BadChargeRangeRejected) {
  SpectraParams bad = params_;
  bad.precursor_charge_min = 3;
  bad.precursor_charge_max = 2;
  EXPECT_THROW(generate_spectra(peptides_, mods_, bad), ConfigError);
}

TEST_F(SpectraTest, PtmShiftFractionZeroLeavesGeneratorStreamUntouched) {
  // The open-search knob must be a strict no-op at fraction 0: the Bernoulli
  // draw is guarded, so existing workloads stay byte-identical.
  SpectraParams with_knob = params_;
  with_knob.ptm_shift_fraction = 0.0;
  const auto a = generate_spectra(peptides_, mods_, params_);
  const auto b = generate_spectra(peptides_, mods_, with_knob);
  ASSERT_EQ(a.spectra.size(), b.spectra.size());
  EXPECT_EQ(a.truth, b.truth);
  ASSERT_EQ(b.ptm_shift.size(), b.spectra.size());
  for (std::size_t i = 0; i < a.spectra.size(); ++i) {
    EXPECT_EQ(b.ptm_shift[i], 0.0);
    ASSERT_EQ(a.spectra[i].size(), b.spectra[i].size());
    EXPECT_EQ(a.spectra[i].precursor.neutral_mass,
              b.spectra[i].precursor.neutral_mass);
    for (std::size_t p = 0; p < a.spectra[i].size(); ++p) {
      EXPECT_EQ(a.spectra[i].mz(p), b.spectra[i].mz(p));
    }
  }
}

TEST_F(SpectraTest, PtmShiftMovesPrecursorByRecordedDelta) {
  SpectraParams shifted = params_;
  shifted.ptm_shift_fraction = 1.0;
  shifted.modified_fraction = 0.0;  // isolate the PTM shift from variants
  const auto out = generate_spectra(peptides_, mods_, shifted);
  ASSERT_EQ(out.ptm_shift.size(), out.spectra.size());
  for (std::size_t i = 0; i < out.spectra.size(); ++i) {
    const Mass delta = out.ptm_shift[i];
    EXPECT_GE(delta, shifted.ptm_shift_min);
    EXPECT_LE(delta, shifted.ptm_shift_max);
    const chem::Peptide base(peptides_[out.truth[i]]);
    EXPECT_NEAR(out.spectra[i].precursor.neutral_mass,
                base.mass(mods_) + delta, 1e-6);
  }
}

TEST_F(SpectraTest, PtmShiftFractionIsApproximatelyHonored) {
  SpectraParams half = params_;
  half.ptm_shift_fraction = 0.5;
  half.num_spectra = 200;
  const auto out = generate_spectra(peptides_, mods_, half);
  std::size_t shifted = 0;
  for (const Mass delta : out.ptm_shift) shifted += delta != 0.0 ? 1 : 0;
  EXPECT_GT(shifted, 60u);
  EXPECT_LT(shifted, 140u);
}

TEST_F(SpectraTest, BadPtmShiftParamsRejected) {
  SpectraParams bad = params_;
  bad.ptm_shift_fraction = 1.5;
  EXPECT_THROW(generate_spectra(peptides_, mods_, bad), ConfigError);
  bad.ptm_shift_fraction = 0.5;
  bad.ptm_shift_min = 100.0;
  bad.ptm_shift_max = 10.0;
  EXPECT_THROW(generate_spectra(peptides_, mods_, bad), ConfigError);
}

TEST_F(SpectraTest, Ms2ExportRoundTrips) {
  params_.num_spectra = 5;
  const auto out = generate_spectra(peptides_, mods_, params_);
  const auto file = out.to_ms2();
  EXPECT_EQ(file.spectra.size(), 5u);
  const std::string path = ::testing::TempDir() + "/lbe_synth.ms2";
  io::write_ms2_file(path, file);
  const auto parsed = io::read_ms2_file(path);
  ASSERT_EQ(parsed.spectra.size(), 5u);
  for (std::size_t i = 0; i < parsed.spectra.size(); ++i) {
    EXPECT_EQ(parsed.spectra[i].size(), out.spectra[i].size());
    EXPECT_NEAR(parsed.spectra[i].precursor.neutral_mass,
                out.spectra[i].precursor.neutral_mass, 1e-3);
  }
}

}  // namespace
}  // namespace lbe::synth
