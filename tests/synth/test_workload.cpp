#include "synth/workload.hpp"

#include <gtest/gtest.h>

#include <unordered_set>

#include "digest/variants.hpp"

namespace lbe::synth {
namespace {

TEST(Workload, ReachesTargetEntries) {
  const auto w = make_paper_workload(5000, 20);
  EXPECT_GE(w.planned_entries, 5000u);
  // Overshoot bounded by one peptide's variant cap.
  EXPECT_LE(w.planned_entries,
            5000u + w.variant_params.max_variants_per_peptide);
  EXPECT_EQ(w.queries.size(), 20u);
  EXPECT_EQ(w.query_truth.size(), 20u);
}

TEST(Workload, PlannedEntriesMatchRecount) {
  const auto w = make_paper_workload(3000, 5);
  std::uint64_t recount = 0;
  for (const auto& p : w.base_peptides) {
    recount += digest::count_variants(p, w.mods, w.variant_params);
  }
  EXPECT_EQ(recount, w.planned_entries);
}

TEST(Workload, BasePeptidesDeduplicated) {
  const auto w = make_paper_workload(4000, 5);
  std::unordered_set<std::string> unique(w.base_peptides.begin(),
                                         w.base_peptides.end());
  EXPECT_EQ(unique.size(), w.base_peptides.size());
}

TEST(Workload, DeterministicForSeed) {
  const auto a = make_paper_workload(2000, 10, 7);
  const auto b = make_paper_workload(2000, 10, 7);
  EXPECT_EQ(a.base_peptides, b.base_peptides);
  EXPECT_EQ(a.query_truth, b.query_truth);
  EXPECT_EQ(a.planned_entries, b.planned_entries);
}

TEST(Workload, LargerTargetExtendsSmaller) {
  // Prefix stability: the peptides of a small workload are a prefix of a
  // larger one at the same seed.
  const auto small = make_paper_workload(1000, 5, 3);
  const auto large = make_paper_workload(4000, 5, 3);
  ASSERT_LE(small.base_peptides.size(), large.base_peptides.size());
  for (std::size_t i = 0; i < small.base_peptides.size(); ++i) {
    EXPECT_EQ(small.base_peptides[i], large.base_peptides[i]) << i;
  }
}

TEST(Workload, QueriesDigestibleLengths) {
  const auto w = make_paper_workload(2000, 10);
  for (const auto& p : w.base_peptides) {
    EXPECT_GE(p.size(), 6u);   // paper digestion window
    EXPECT_LE(p.size(), 40u);
  }
}

TEST(Workload, QueryTruthPointsAtRealPeptides) {
  const auto w = make_paper_workload(2000, 25);
  for (const auto t : w.query_truth) {
    EXPECT_LT(t, w.base_peptides.size());
  }
}

TEST(Workload, PaperVariantSettings) {
  const auto w = make_paper_workload(1000, 1);
  EXPECT_EQ(w.variant_params.max_mod_residues, 5u);
  EXPECT_EQ(w.mods.size(), 3u);  // deamidation, GlyGly, oxidation
}

}  // namespace
}  // namespace lbe::synth
