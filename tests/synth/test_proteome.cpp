#include "synth/proteome.hpp"

#include <gtest/gtest.h>

#include "chem/amino_acid.hpp"
#include "common/error.hpp"
#include "core/edit_distance.hpp"

namespace lbe::synth {
namespace {

TEST(Proteome, GeneratesRequestedCounts) {
  ProteomeParams params;
  params.num_families = 5;
  params.proteins_per_family = 4;
  const auto records = generate_proteome(params);
  EXPECT_EQ(records.size(), 20u);
}

TEST(Proteome, AllSequencesValidResidues) {
  ProteomeParams params;
  params.num_families = 8;
  const auto records = generate_proteome(params);
  for (const auto& record : records) {
    EXPECT_EQ(chem::find_invalid_residue(record.sequence),
              std::string_view::npos)
        << record.header;
  }
}

TEST(Proteome, DeterministicForSeed) {
  ProteomeParams params;
  params.num_families = 4;
  const auto a = generate_proteome(params);
  const auto b = generate_proteome(params);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].sequence, b[i].sequence);
  }
}

TEST(Proteome, SeedsChangeOutput) {
  ProteomeParams params;
  params.num_families = 2;
  const auto a = generate_proteome(params);
  params.seed ^= 1;
  const auto b = generate_proteome(params);
  EXPECT_NE(a[0].sequence, b[0].sequence);
}

TEST(Proteome, FamilyPrefixStability) {
  ProteomeParams small;
  small.num_families = 3;
  ProteomeParams large = small;
  large.num_families = 6;
  const auto a = generate_proteome(small);
  const auto b = generate_proteome(large);
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].sequence, b[i].sequence) << i;
  }
  // generate_family agrees with the batch generator.
  const auto fam2 = generate_family(large, 2);
  for (std::size_t m = 0; m < fam2.size(); ++m) {
    EXPECT_EQ(fam2[m].sequence, b[2 * large.proteins_per_family + m].sequence);
  }
}

TEST(Proteome, FamilyMembersAreSimilarToBase) {
  ProteomeParams params;
  params.num_families = 3;
  params.proteins_per_family = 5;
  params.substitution_rate = 0.03;
  params.indel_rate = 0.005;
  const auto records = generate_proteome(params);
  for (std::uint32_t f = 0; f < params.num_families; ++f) {
    const auto& base =
        records[f * params.proteins_per_family].sequence;
    for (std::uint32_t m = 1; m < params.proteins_per_family; ++m) {
      const auto& member =
          records[f * params.proteins_per_family + m].sequence;
      const auto dist = core::edit_distance(base, member);
      // Expected edits ~ (0.03 + 0.005) * len; allow generous slack.
      EXPECT_LT(dist, base.size() / 5) << "family " << f << " member " << m;
      EXPECT_GT(dist, 0u);  // astronomically unlikely to be identical
    }
  }
}

TEST(Proteome, DifferentFamiliesAreDissimilar) {
  ProteomeParams params;
  params.num_families = 2;
  params.proteins_per_family = 1;
  const auto records = generate_proteome(params);
  const auto& a = records[0].sequence;
  const auto& b = records[1].sequence;
  const auto dist = core::edit_distance(a, b);
  EXPECT_GT(dist, std::min(a.size(), b.size()) / 2);
}

TEST(Proteome, LengthRespectsMinimum) {
  ProteomeParams params;
  params.num_families = 20;
  params.proteins_per_family = 1;
  params.protein_length_mean = 70;
  params.protein_length_stddev = 50;  // would often dip below min
  params.protein_length_min = 60;
  const auto records = generate_proteome(params);
  for (const auto& record : records) {
    EXPECT_GE(record.sequence.size(), 50u);  // min minus indel slack
  }
}

TEST(Proteome, HeadersEncodeFamilyAndMember) {
  ProteomeParams params;
  params.num_families = 2;
  params.proteins_per_family = 2;
  const auto records = generate_proteome(params);
  EXPECT_EQ(records[0].header, "fam0|mem0");
  EXPECT_EQ(records[3].header, "fam1|mem1");
}

TEST(Proteome, RejectsBadRates) {
  ProteomeParams params;
  params.substitution_rate = 1.5;
  EXPECT_THROW(generate_proteome(params), ConfigError);
  params.substitution_rate = 0.05;
  params.indel_rate = -0.1;
  EXPECT_THROW(generate_proteome(params), ConfigError);
}

TEST(Proteome, MutateProteinRatesScale) {
  const std::string base = random_protein(500, 42);
  const auto light = mutate_protein(base, 0.01, 0.0, 7);
  const auto heavy = mutate_protein(base, 0.20, 0.0, 7);
  EXPECT_LT(core::edit_distance(base, light),
            core::edit_distance(base, heavy));
}

TEST(Proteome, RandomProteinUsesAllCommonResidues) {
  const std::string protein = random_protein(5000, 1);
  // Every canonical residue should appear in 5000 draws.
  for (const char c : chem::kResidues) {
    EXPECT_NE(protein.find(c), std::string::npos) << c;
  }
}

}  // namespace
}  // namespace lbe::synth
