#include "chem/peptide.hpp"

#include <gtest/gtest.h>

#include "chem/amino_acid.hpp"
#include "chem/mass.hpp"
#include "common/error.hpp"

namespace lbe::chem {
namespace {

class PeptideTest : public ::testing::Test {
 protected:
  ModificationSet mods_ = ModificationSet::paper_default();
};

TEST_F(PeptideTest, ValidSequenceAccepted) {
  const Peptide p("PEPTIDEK");
  EXPECT_EQ(p.sequence(), "PEPTIDEK");
  EXPECT_EQ(p.length(), 8u);
  EXPECT_FALSE(p.modified());
}

TEST_F(PeptideTest, InvalidSequenceRejected) {
  EXPECT_THROW(Peptide("PEPXIDE"), ConfigError);
  EXPECT_THROW(Peptide(""), ConfigError);
  EXPECT_THROW(Peptide("pep"), ConfigError);
}

TEST_F(PeptideTest, UnmodifiedMassMatchesAminoAcidSum) {
  const Peptide p("ACDEFGHIK");
  EXPECT_NEAR(p.mass(mods_), peptide_mass("ACDEFGHIK"), 1e-9);
}

TEST_F(PeptideTest, ModifiedMassAddsDelta) {
  // Oxidation is mod id 2 in paper_default; M is at position 0.
  const Peptide p("MKWVTFISLLLLFSSAYSR", {{0, 2}}, mods_);
  EXPECT_TRUE(p.modified());
  EXPECT_NEAR(p.mass(mods_),
              peptide_mass("MKWVTFISLLLLFSSAYSR") + 15.99491462, 1e-5);
}

TEST_F(PeptideTest, MultipleModsSumDeltas) {
  // N at 0 (deamidation id 0), K at 3 (GlyGly id 1).
  const Peptide p("NACK", {{0, 0}, {3, 1}}, mods_);
  EXPECT_NEAR(p.mass(mods_),
              peptide_mass("NACK") + 0.98401585 + 114.04292744, 1e-5);
}

TEST_F(PeptideTest, SiteValidationRejectsBadPositions) {
  EXPECT_THROW(Peptide("MK", {{5, 2}}, mods_), ConfigError);     // off end
  EXPECT_THROW(Peptide("MK", {{0, 99}}, mods_), ConfigError);    // bad mod id
  EXPECT_THROW(Peptide("MK", {{1, 2}}, mods_), ConfigError);     // Ox on K
  EXPECT_THROW(Peptide("MM", {{1, 2}, {0, 2}}, mods_), ConfigError);  // order
  EXPECT_THROW(Peptide("MM", {{0, 2}, {0, 2}}, mods_), ConfigError);  // dup
}

TEST_F(PeptideTest, ResidueDeltaIncludesPlacedMod) {
  const Peptide p("MAM", {{2, 2}}, mods_);
  EXPECT_NEAR(p.residue_delta(0, mods_), residue_mass('M'), 1e-9);
  EXPECT_NEAR(p.residue_delta(2, mods_), residue_mass('M') + 15.99491462,
              1e-5);
}

TEST_F(PeptideTest, ResidueDeltasSumToMass) {
  const Peptide p("NMCKQ", {{1, 2}, {3, 1}}, mods_);
  Mass sum = kWater;
  for (std::size_t i = 0; i < p.length(); ++i) {
    sum += p.residue_delta(i, mods_);
  }
  EXPECT_NEAR(sum, p.mass(mods_), 1e-9);
}

TEST_F(PeptideTest, AnnotatedForm) {
  const Peptide plain("PEPK");
  EXPECT_EQ(plain.annotated(mods_), "PEPK");
  const Peptide modified("MPEK", {{0, 2}, {3, 1}}, mods_);
  EXPECT_EQ(modified.annotated(mods_), "M(Oxidation)PEK(GlyGly)");
}

TEST_F(PeptideTest, EqualityIncludesSites) {
  const Peptide a("MK");
  const Peptide b("MK");
  const Peptide c("MK", {{0, 2}}, mods_);
  EXPECT_EQ(a, b);
  EXPECT_FALSE(a == c);
}

TEST_F(PeptideTest, FixedModsAppliedToMass) {
  ModificationSet fixed;
  fixed.add({"Carbamidomethyl", 57.021464, "C", true});
  const Peptide p("ACC");
  EXPECT_NEAR(p.mass(fixed), peptide_mass("ACC") + 2 * 57.021464, 1e-5);
}

}  // namespace
}  // namespace lbe::chem
