#include "chem/spectrum.hpp"

#include <gtest/gtest.h>

namespace lbe::chem {
namespace {

TEST(Spectrum, EmptyByDefault) {
  const Spectrum s;
  EXPECT_TRUE(s.empty());
  EXPECT_EQ(s.size(), 0u);
  EXPECT_DOUBLE_EQ(s.tic(), 0.0);
}

TEST(Spectrum, FinalizeSortsByMz) {
  Spectrum s;
  s.add_peak(500.0, 10.0f);
  s.add_peak(100.0, 5.0f);
  s.add_peak(300.0, 7.0f);
  s.finalize();
  ASSERT_EQ(s.size(), 3u);
  EXPECT_DOUBLE_EQ(s.mz(0), 100.0);
  EXPECT_DOUBLE_EQ(s.mz(1), 300.0);
  EXPECT_DOUBLE_EQ(s.mz(2), 500.0);
  EXPECT_FLOAT_EQ(s.intensity(0), 5.0f);
  EXPECT_FLOAT_EQ(s.intensity(2), 10.0f);
}

TEST(Spectrum, FinalizeMergesDuplicateMz) {
  Spectrum s;
  s.add_peak(200.0, 3.0f);
  s.add_peak(200.0, 4.0f);
  s.add_peak(201.0, 1.0f);
  s.finalize();
  ASSERT_EQ(s.size(), 2u);
  EXPECT_FLOAT_EQ(s.intensity(0), 7.0f);
}

TEST(Spectrum, FinalizeIdempotent) {
  Spectrum s;
  s.add_peak(100.0, 1.0f);
  s.add_peak(50.0, 2.0f);
  s.finalize();
  s.finalize();
  ASSERT_EQ(s.size(), 2u);
  EXPECT_DOUBLE_EQ(s.mz(0), 50.0);
}

TEST(Spectrum, TicSumsIntensities) {
  Spectrum s;
  s.add_peak(100.0, 1.5f);
  s.add_peak(200.0, 2.5f);
  s.finalize();
  EXPECT_DOUBLE_EQ(s.tic(), 4.0);
}

TEST(Spectrum, PrecursorFieldsRoundTrip) {
  Spectrum s;
  s.precursor.mz = 750.5;
  s.precursor.charge = 2;
  s.precursor.neutral_mass = 1499.0;
  s.scan_id = 42;
  s.title = "scan42";
  EXPECT_EQ(s.precursor.charge, 2);
  EXPECT_DOUBLE_EQ(s.precursor.mz, 750.5);
  EXPECT_EQ(s.scan_id, 42u);
}

TEST(Spectrum, SinglePeakFinalizeNoop) {
  Spectrum s;
  s.add_peak(123.4, 9.0f);
  s.finalize();
  ASSERT_EQ(s.size(), 1u);
  EXPECT_DOUBLE_EQ(s.mz(0), 123.4);
}

}  // namespace
}  // namespace lbe::chem
