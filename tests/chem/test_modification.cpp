#include "chem/modification.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"

namespace lbe::chem {
namespace {

TEST(ModificationSet, PaperDefaultHasThreeMods) {
  const auto mods = ModificationSet::paper_default();
  ASSERT_EQ(mods.size(), 3u);
  EXPECT_EQ(mods[0].name, "Deamidation");
  EXPECT_EQ(mods[1].name, "GlyGly");
  EXPECT_EQ(mods[2].name, "Oxidation");
}

TEST(ModificationSet, PaperDefaultDeltas) {
  const auto mods = ModificationSet::paper_default();
  EXPECT_NEAR(mods[0].delta, 0.984016, 1e-5);    // deamidation
  EXPECT_NEAR(mods[1].delta, 114.042927, 1e-5);  // GlyGly == GG residue mass
  EXPECT_NEAR(mods[2].delta, 15.994915, 1e-5);   // oxidation
}

TEST(ModificationSet, AppliesToTargets) {
  const auto mods = ModificationSet::paper_default();
  EXPECT_TRUE(mods[0].applies_to('N'));
  EXPECT_TRUE(mods[0].applies_to('Q'));
  EXPECT_FALSE(mods[0].applies_to('M'));
  EXPECT_TRUE(mods[2].applies_to('M'));
}

TEST(ModificationSet, VariableModsForResidue) {
  const auto mods = ModificationSet::paper_default();
  const auto for_m = mods.variable_mods_for('M');
  ASSERT_EQ(for_m.size(), 1u);
  EXPECT_EQ(mods[for_m[0]].name, "Oxidation");
  EXPECT_TRUE(mods.variable_mods_for('A').empty());
  const auto for_k = mods.variable_mods_for('K');
  ASSERT_EQ(for_k.size(), 1u);
  EXPECT_EQ(mods[for_k[0]].name, "GlyGly");
}

TEST(ModificationSet, FixedModsExcludedFromVariableLookup) {
  ModificationSet mods;
  mods.add({"Carbamidomethyl", 57.021464, "C", true});
  EXPECT_TRUE(mods.variable_mods_for('C').empty());
  EXPECT_NEAR(mods.fixed_delta('C'), 57.021464, 1e-6);
  EXPECT_DOUBLE_EQ(mods.fixed_delta('A'), 0.0);
}

TEST(ModificationSet, AddValidation) {
  ModificationSet mods;
  EXPECT_THROW(mods.add({"", 1.0, "A", false}), ConfigError);
  EXPECT_THROW(mods.add({"NoTargets", 1.0, "", false}), ConfigError);
  EXPECT_THROW(mods.add({"BadResidue", 1.0, "X", false}), ConfigError);
  mods.add({"Ok", 1.0, "A", false});
  EXPECT_THROW(mods.add({"Ok", 2.0, "C", false}), ConfigError);  // duplicate
}

TEST(ModificationSet, ParseRoundTrip) {
  const auto mods = ModificationSet::parse(
      "Oxidation:15.994915:M;Deamidation:0.984016:NQ;Fixed1:57.02:C:fixed");
  ASSERT_EQ(mods.size(), 3u);
  EXPECT_EQ(mods[0].name, "Oxidation");
  EXPECT_FALSE(mods[0].fixed);
  EXPECT_TRUE(mods[2].fixed);
  EXPECT_EQ(mods[2].residues, "C");
}

TEST(ModificationSet, ParseEmptyGivesEmptySet) {
  EXPECT_EQ(ModificationSet::parse("").size(), 0u);
  EXPECT_EQ(ModificationSet::parse("  ").size(), 0u);
}

TEST(ModificationSet, ParseRejectsMalformed) {
  EXPECT_THROW(ModificationSet::parse("JustAName"), ConfigError);
  EXPECT_THROW(ModificationSet::parse("A:notanumber:M"), ConfigError);
  EXPECT_THROW(ModificationSet::parse("A:1.0:M:banana"), ConfigError);
}

TEST(ModificationSet, ParseLowercasesResiduesUp) {
  const auto mods = ModificationSet::parse("Ox:15.99:m");
  EXPECT_TRUE(mods[0].applies_to('M'));
}

}  // namespace
}  // namespace lbe::chem
