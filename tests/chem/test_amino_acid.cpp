#include "chem/amino_acid.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <numeric>

#include "chem/mass.hpp"

namespace lbe::chem {
namespace {

TEST(AminoAcid, TwentyCanonicalResidues) {
  EXPECT_EQ(kResidues.size(), 20u);
  for (const char c : kResidues) EXPECT_TRUE(is_residue(c)) << c;
}

TEST(AminoAcid, NonResiduesRejected) {
  for (const char c : {'B', 'J', 'O', 'U', 'X', 'Z'}) {
    EXPECT_FALSE(is_residue(c)) << c;
  }
  EXPECT_FALSE(is_residue('a'));  // lower case is not canonical
  EXPECT_FALSE(is_residue('1'));
  EXPECT_FALSE(is_residue(' '));
}

TEST(AminoAcid, KnownMonoisotopicMasses) {
  EXPECT_NEAR(residue_mass('G'), 57.02146, 1e-4);
  EXPECT_NEAR(residue_mass('A'), 71.03711, 1e-4);
  EXPECT_NEAR(residue_mass('W'), 186.07931, 1e-4);
  EXPECT_NEAR(residue_mass('K'), 128.09496, 1e-4);
  EXPECT_NEAR(residue_mass('R'), 156.10111, 1e-4);
}

TEST(AminoAcid, LeucineIsoleucineIsobaric) {
  EXPECT_DOUBLE_EQ(residue_mass('L'), residue_mass('I'));
}

TEST(AminoAcid, GlycineIsLightestTryptophanHeaviest) {
  for (const char c : kResidues) {
    EXPECT_GE(residue_mass(c), residue_mass('G'));
    EXPECT_LE(residue_mass(c), residue_mass('W'));
  }
}

TEST(AminoAcid, ResidueMassOrZeroSafeOnJunk) {
  EXPECT_DOUBLE_EQ(residue_mass_or_zero('#'), 0.0);
  EXPECT_DOUBLE_EQ(residue_mass_or_zero('B'), 0.0);
  EXPECT_GT(residue_mass_or_zero('A'), 0.0);
}

TEST(AminoAcid, FindInvalidResidue) {
  EXPECT_EQ(find_invalid_residue("PEPTIDE"), std::string_view::npos);
  EXPECT_EQ(find_invalid_residue("PEPXTIDE"), 3u);
  EXPECT_EQ(find_invalid_residue(""), 0u);
  EXPECT_EQ(find_invalid_residue("b"), 0u);
}

TEST(AminoAcid, PeptideMassIsResiduesPlusWater) {
  // Glycine dipeptide GG: 2 * 57.02146 + water.
  EXPECT_NEAR(peptide_mass("GG"), 2 * 57.02146374 + kWater, 1e-6);
}

TEST(AminoAcid, KnownPeptideMass) {
  // PEPTIDE: a community reference value, monoisotopic ~799.36 Da.
  EXPECT_NEAR(peptide_mass("PEPTIDE"), 799.35997, 1e-3);
}

TEST(AminoAcid, PeptideMassAdditive) {
  const Mass ab = peptide_mass("ACDK");
  const Mass a = peptide_mass("AC");
  const Mass b = peptide_mass("DK");
  // Concatenation removes one water.
  EXPECT_NEAR(ab, a + b - kWater, 1e-9);
}

TEST(AminoAcid, SwissprotFrequenciesSumToOne) {
  const auto& freq = swissprot_frequencies();
  const double sum = std::accumulate(freq.begin(), freq.end(), 0.0);
  EXPECT_NEAR(sum, 1.0, 0.01);
  for (const double f : freq) EXPECT_GT(f, 0.0);
}

TEST(MassConversions, MzRoundTrip) {
  const Mass neutral = 1500.75;
  for (Charge z = 1; z <= 4; ++z) {
    const Mz mz = mz_from_mass(neutral, z);
    EXPECT_NEAR(mass_from_mz(mz, z), neutral, 1e-9);
    EXPECT_GT(mz, 0.0);
  }
}

TEST(MassConversions, HigherChargeLowerMz) {
  const Mass neutral = 2000.0;
  EXPECT_GT(mz_from_mass(neutral, 1), mz_from_mass(neutral, 2));
  EXPECT_GT(mz_from_mass(neutral, 2), mz_from_mass(neutral, 3));
}

}  // namespace
}  // namespace lbe::chem
