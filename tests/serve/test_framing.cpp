// Wire-protocol edge cases for the serve daemon: codec round trips, strict
// decoding (trailing bytes, adversarial counts), and frame I/O over a real
// socketpair (partial delivery, oversized/garbage length prefix, EOF).
#include <sys/socket.h>

#include <gtest/gtest.h>

#include <array>
#include <cstring>
#include <thread>
#include <vector>

#include "common/error.hpp"
#include "serve/protocol.hpp"
#include "serve/socket.hpp"

namespace lbe::serve {
namespace {

chem::Spectrum sample_spectrum(std::uint32_t scan_id) {
  chem::Spectrum spectrum;
  spectrum.scan_id = scan_id;
  spectrum.title = "scan=" + std::to_string(scan_id);
  spectrum.precursor.mz = 523.77;
  spectrum.precursor.charge = 2;
  spectrum.precursor.neutral_mass = 1045.53;
  spectrum.add_peak(147.11, 120.0f);
  spectrum.add_peak(245.08, 88.5f);
  spectrum.add_peak(376.19, 430.25f);
  return spectrum;
}

search::ResolvedPsm sample_row() {
  search::ResolvedPsm row;
  row.query_id = 7;
  row.psm_rank = 1;
  row.peptide = "PEPT[79.96633]IDEK";
  row.base_sequence = "PEPTIDEK";
  row.neutral_mass = 1006.48;
  row.shared_peaks = 9;
  row.score = 31.5f;
  row.source_rank = 3;
  row.is_decoy = true;
  return row;
}

TEST(ServeFraming, FrameHeaderRoundTrip) {
  const auto raw = encode_frame_header(MsgType::kSearchRequest, 12345);
  const FrameHeader header = decode_frame_header(raw);
  EXPECT_EQ(header.type, MsgType::kSearchRequest);
  EXPECT_EQ(header.payload_size, 12345u);
}

TEST(ServeFraming, FrameHeaderRejectsBadMagicAndUnknownType) {
  auto raw = encode_frame_header(MsgType::kPing, 0);
  raw[0] ^= 0xFF;  // corrupt the magic
  EXPECT_THROW(decode_frame_header(raw), CommError);

  raw = encode_frame_header(MsgType::kPing, 0);
  const std::uint32_t bogus_type = 99;
  std::memcpy(raw.data() + 4, &bogus_type, sizeof(bogus_type));
  EXPECT_THROW(decode_frame_header(raw), CommError);

  const std::uint32_t zero_type = 0;
  std::memcpy(raw.data() + 4, &zero_type, sizeof(zero_type));
  EXPECT_THROW(decode_frame_header(raw), CommError);
}

TEST(ServeFraming, PongRoundTrip) {
  PongInfo info;
  info.ranks = 8;
  info.top_k = 5;
  info.queue_depth = 64;
  info.max_frame_bytes = 1 << 20;
  const PongInfo back = decode_pong(encode_pong(info));
  EXPECT_EQ(back.protocol_version, kProtocolVersion);
  EXPECT_EQ(back.ranks, 8u);
  EXPECT_EQ(back.top_k, 5u);
  EXPECT_EQ(back.queue_depth, 64u);
  EXPECT_EQ(back.max_frame_bytes, std::uint64_t{1} << 20);
}

TEST(ServeFraming, SearchRequestRoundTrip) {
  SearchRequest request;
  request.start_id = 42;
  request.spectra = {sample_spectrum(1), sample_spectrum(2)};
  const SearchRequest back =
      decode_search_request(encode_search_request(request));
  ASSERT_EQ(back.spectra.size(), 2u);
  EXPECT_EQ(back.start_id, 42u);
  for (std::size_t i = 0; i < back.spectra.size(); ++i) {
    const chem::Spectrum& a = back.spectra[i];
    const chem::Spectrum& b = request.spectra[i];
    EXPECT_EQ(a.scan_id, b.scan_id);
    EXPECT_EQ(a.title, b.title);
    EXPECT_DOUBLE_EQ(a.precursor.mz, b.precursor.mz);
    EXPECT_EQ(a.precursor.charge, b.precursor.charge);
    EXPECT_DOUBLE_EQ(a.precursor.neutral_mass, b.precursor.neutral_mass);
    // Peak order survives verbatim: the decoder must NOT re-finalize (a
    // second merge pass could desync daemon rows from one-shot rows).
    EXPECT_EQ(a.mzs(), b.mzs());
    EXPECT_EQ(a.intensities(), b.intensities());
  }
}

TEST(ServeFraming, SearchResponseRoundTrip) {
  SearchResponse response;
  response.start_id = 40;
  response.queries = 8;
  response.candidates = 12345;
  response.rows = {sample_row()};
  const SearchResponse back =
      decode_search_response(encode_search_response(response));
  EXPECT_EQ(back.start_id, 40u);
  EXPECT_EQ(back.queries, 8u);
  EXPECT_EQ(back.candidates, 12345u);
  ASSERT_EQ(back.rows.size(), 1u);
  const search::ResolvedPsm& row = back.rows[0];
  const search::ResolvedPsm want = sample_row();
  EXPECT_EQ(row.query_id, want.query_id);
  EXPECT_EQ(row.psm_rank, want.psm_rank);
  EXPECT_EQ(row.peptide, want.peptide);
  EXPECT_EQ(row.base_sequence, want.base_sequence);
  EXPECT_DOUBLE_EQ(row.neutral_mass, want.neutral_mass);
  EXPECT_EQ(row.shared_peaks, want.shared_peaks);
  EXPECT_FLOAT_EQ(row.score, want.score);
  EXPECT_EQ(row.source_rank, want.source_rank);
  EXPECT_TRUE(row.is_decoy);
}

TEST(ServeFraming, ErrorAndStatsRoundTrip) {
  ErrorBody error;
  error.status = Status::kQueueFull;
  error.request_id = 16;
  error.message = "bounded queue is full";
  const ErrorBody back = decode_error(encode_error(error));
  EXPECT_EQ(back.status, Status::kQueueFull);
  EXPECT_EQ(back.request_id, 16u);
  EXPECT_EQ(back.message, "bounded queue is full");
  EXPECT_STREQ(status_name(back.status), "queue-full");

  StatsBody stats;
  stats.connections_accepted = 3;
  stats.batches_served = 10;
  stats.queries_served = 80;
  stats.batches_rejected = 2;
  stats.malformed_frames = 1;
  stats.reloads = 4;
  stats.queue_length = 5;
  stats.ranks = 8;
  stats.queue_depth = 64;
  stats.workers = 2;
  const StatsBody sback = decode_stats(encode_stats(stats));
  EXPECT_EQ(sback.batches_served, 10u);
  EXPECT_EQ(sback.batches_rejected, 2u);
  EXPECT_EQ(sback.reloads, 4u);
  EXPECT_EQ(sback.workers, 2u);
}

TEST(ServeFraming, DecodersRejectTrailingBytes) {
  mpi::Bytes payload = encode_pong(PongInfo{});
  payload.push_back(std::uint8_t{0});
  EXPECT_THROW(decode_pong(payload), CommError);

  SearchRequest request;
  request.spectra = {sample_spectrum(1)};
  payload = encode_search_request(request);
  payload.push_back(std::uint8_t{0});
  EXPECT_THROW(decode_search_request(payload), CommError);
}

TEST(ServeFraming, DecodersRejectAdversarialCounts) {
  // A forged query count far beyond the ceiling must throw before any
  // allocation proportional to the claimed count happens.
  mpi::Bytes payload;
  mpi::ByteWriter writer(payload);
  writer.pod(std::uint32_t{0});             // start_id
  writer.pod(~std::uint64_t{0});            // query count: 2^64 - 1
  EXPECT_THROW(decode_search_request(payload), CommError);

  mpi::Bytes response;
  mpi::ByteWriter rwriter(response);
  rwriter.pod(std::uint32_t{0});            // start_id
  rwriter.pod(std::uint64_t{1});            // queries
  rwriter.pod(std::uint64_t{2});            // candidates
  rwriter.pod(std::uint64_t{1} << 62);      // row count
  EXPECT_THROW(decode_search_response(response), CommError);
}

/// Connected socketpair with RAII on both ends.
struct Pair {
  Fd a;
  Fd b;
  Pair() {
    int fds[2];
    if (::socketpair(AF_UNIX, SOCK_STREAM, 0, fds) != 0) {
      ADD_FAILURE() << "socketpair failed";
      return;
    }
    a = Fd(fds[0]);
    b = Fd(fds[1]);
  }
};

TEST(ServeFraming, FrameRoundTripOverSocket) {
  Pair pair;
  const mpi::Bytes payload = encode_pong(PongInfo{});
  write_frame(pair.a.get(), MsgType::kPong, payload);
  Frame frame;
  ASSERT_TRUE(read_frame(pair.b.get(), frame));
  EXPECT_EQ(frame.type, MsgType::kPong);
  EXPECT_EQ(frame.payload, payload);
}

TEST(ServeFraming, PartialDeliveryStillYieldsWholeFrame) {
  // Stream sockets may deliver a frame in arbitrarily small pieces;
  // read_frame must loop until the full header + payload arrive.
  Pair pair;
  SearchRequest request;
  request.start_id = 9;
  request.spectra = {sample_spectrum(3)};
  const mpi::Bytes payload = encode_search_request(request);
  const auto header =
      encode_frame_header(MsgType::kSearchRequest, payload.size());

  std::vector<std::uint8_t> wire;
  wire.reserve(header.size() + payload.size());
  wire.insert(wire.end(), header.begin(), header.end());
  wire.insert(wire.end(), payload.begin(), payload.end());
  std::thread dribble([&] {
    for (std::size_t i = 0; i < wire.size(); i += 3) {
      const std::size_t n = std::min<std::size_t>(3, wire.size() - i);
      write_all(pair.a.get(), wire.data() + i, n);
      std::this_thread::yield();
    }
  });

  Frame frame;
  ASSERT_TRUE(read_frame(pair.b.get(), frame));
  dribble.join();
  EXPECT_EQ(frame.type, MsgType::kSearchRequest);
  const SearchRequest back = decode_search_request(frame.payload);
  ASSERT_EQ(back.spectra.size(), 1u);
  EXPECT_EQ(back.spectra[0].scan_id, 3u);
}

TEST(ServeFraming, OversizedLengthPrefixThrowsTooLarge) {
  Pair pair;
  // Claim a payload just past the bound; send no payload bytes at all —
  // read_frame must throw from the header alone, without trying to
  // allocate or read the claimed size.
  const auto header = encode_frame_header(MsgType::kSearchRequest, 1025);
  write_all(pair.a.get(), header.data(), header.size());
  Frame frame;
  EXPECT_THROW(read_frame(pair.b.get(), frame, /*max_payload=*/1024),
               FrameTooLargeError);
}

TEST(ServeFraming, AdversarialLengthPrefixThrowsTooLarge) {
  Pair pair;
  const auto header =
      encode_frame_header(MsgType::kSearchRequest, ~std::uint64_t{0});
  write_all(pair.a.get(), header.data(), header.size());
  Frame frame;
  EXPECT_THROW(read_frame(pair.b.get(), frame), FrameTooLargeError);
}

TEST(ServeFraming, GarbageHeaderThrowsCommError) {
  Pair pair;
  std::array<std::uint8_t, kFrameHeaderBytes> junk;
  junk.fill(0x5A);
  write_all(pair.a.get(), junk.data(), junk.size());
  Frame frame;
  EXPECT_THROW(read_frame(pair.b.get(), frame), CommError);
}

TEST(ServeFraming, CleanEofReturnsFalse) {
  Pair pair;
  pair.a.reset();  // peer closes between frames
  Frame frame;
  EXPECT_FALSE(read_frame(pair.b.get(), frame));
}

TEST(ServeFraming, MidFrameDisconnectThrowsIoError) {
  Pair pair;
  const mpi::Bytes payload = encode_pong(PongInfo{});
  const auto header = encode_frame_header(MsgType::kPong, payload.size());
  write_all(pair.a.get(), header.data(), header.size());
  write_all(pair.a.get(), payload.data(), payload.size() / 2);
  pair.a.reset();  // vanish mid-payload
  Frame frame;
  EXPECT_THROW(read_frame(pair.b.get(), frame), IoError);
}

}  // namespace
}  // namespace lbe::serve
