// End-to-end daemon behaviour over a real Unix socket: one-shot
// equivalence, bounded-queue admission control, malformed/oversized frame
// handling, mid-batch disconnects, and the SIGHUP hot-swap path.
#include <unistd.h>

#include <gtest/gtest.h>

#include <array>
#include <chrono>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "app/pipeline.hpp"
#include "common/error.hpp"
#include "search/report.hpp"
#include "serve/client.hpp"
#include "serve/server.hpp"
#include "serve/service.hpp"

namespace lbe::serve {
namespace {

constexpr std::size_t kBatch = 4;

std::string test_socket(const char* tag) {
  return "/tmp/lbe_serve_test_" + std::string(tag) + "_" +
         std::to_string(::getpid()) + ".sock";
}

app::AppOptions test_options(const char* tag) {
  app::AppOptions opts = app::options_from_config(Config{});
  opts.target_entries = 4000;
  opts.num_queries = 16;
  opts.lbe.partition.ranks = 3;
  opts.socket_path = test_socket(tag);
  opts.write_report = false;
  return opts;
}

/// One daemon + workload shared by the read-only tests in this file.
struct ServerEnv {
  app::AppOptions opts;
  std::shared_ptr<ServingContext> context;
  std::unique_ptr<Server> server;
  std::vector<chem::Spectrum> spectra;
};

ServerEnv& env() {
  static ServerEnv e = [] {
    ServerEnv out;
    out.opts = test_options("shared");
    out.context = build_serving_context_in_memory(out.opts);
    out.spectra = app::prepare_inputs(out.opts).queries.spectra;
    ServerConfig config;
    config.socket_path = out.opts.socket_path;
    out.server = std::make_unique<Server>(config, out.context);
    out.server->start();
    return out;
  }();
  return e;
}

ServeClient connected_client(const std::string& socket_path) {
  ServeClient client(socket_path);
  EXPECT_TRUE(client.connect_wait(10.0)) << "daemon did not come up";
  return client;
}

std::vector<search::ResolvedPsm> query_all(ServeClient& client,
                                           const ServerEnv& e) {
  std::vector<search::ResolvedPsm> rows;
  for (std::size_t lo = 0; lo < e.spectra.size(); lo += kBatch) {
    const std::size_t hi = std::min(e.spectra.size(), lo + kBatch);
    SearchRequest request;
    request.start_id = static_cast<std::uint32_t>(lo);
    request.spectra.assign(e.spectra.begin() + lo, e.spectra.begin() + hi);
    const ServeClient::Outcome outcome = client.search(request);
    EXPECT_EQ(outcome.status, Status::kOk) << outcome.error;
    rows.insert(rows.end(), outcome.response.rows.begin(),
                outcome.response.rows.end());
  }
  return rows;
}

std::string rows_to_tsv(const std::vector<search::ResolvedPsm>& rows) {
  std::ostringstream out;
  search::write_psm_rows(out, rows);
  return out.str();
}

TEST(ServeServer, DaemonRowsMatchOneShotPipeline) {
  ServerEnv& e = env();
  ServeClient client = connected_client(e.opts.socket_path);
  const auto daemon_rows = query_all(client, e);

  app::QueryBundle bundle;
  bundle.spectra = e.spectra;
  bundle.origin = "<synthetic>";
  const app::SearchOutcome oneshot = app::run_search_pipeline(
      e.context->plan, bundle, e.opts, e.context->warm.get());
  const auto oneshot_rows =
      search::resolve_psms(*e.context->plan.plan, oneshot.report.results,
                           e.context->plan.decoy_bases);

  EXPECT_FALSE(daemon_rows.empty());
  EXPECT_EQ(rows_to_tsv(daemon_rows), rows_to_tsv(oneshot_rows));
}

TEST(ServeServer, PingReportsTheServingShape) {
  ServerEnv& e = env();
  ServeClient client = connected_client(e.opts.socket_path);
  const PongInfo pong = client.ping();
  EXPECT_EQ(pong.protocol_version, kProtocolVersion);
  EXPECT_EQ(pong.ranks, 3u);
  EXPECT_GE(pong.top_k, 1u);
  EXPECT_EQ(pong.queue_depth, e.server->config().queue_depth);
}

TEST(ServeServer, BoundedQueueRejectsWithTypedErrorAndRecovers) {
  // A paused single-slot server: the first batch fills the queue, the
  // second must bounce with kQueueFull — and succeed on retry once the
  // worker drains the queue.
  app::AppOptions opts = test_options("queue");
  auto context = build_serving_context_in_memory(opts);
  ServerConfig config;
  config.socket_path = opts.socket_path;
  config.queue_depth = 1;
  config.start_paused = true;
  Server server(config, context);
  server.start();
  const auto spectra = app::prepare_inputs(opts).queries.spectra;

  SearchRequest request;
  request.start_id = 0;
  request.spectra.assign(spectra.begin(), spectra.begin() + 2);

  ServeClient first = connected_client(opts.socket_path);
  first.send_search(request);
  // Wait until the handler thread has actually enqueued the batch.
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(10);
  while (server.stats().queue_length == 0 &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  ASSERT_EQ(server.stats().queue_length, 1u);

  ServeClient second = connected_client(opts.socket_path);
  SearchRequest rejected = request;
  rejected.start_id = 2;
  const ServeClient::Outcome bounce = second.search(rejected);
  EXPECT_EQ(bounce.status, Status::kQueueFull);
  EXPECT_FALSE(bounce.error.empty());
  EXPECT_GE(server.stats().batches_rejected, 1u);

  server.resume_workers();
  const ServeClient::Outcome drained = first.read_search_result();
  EXPECT_EQ(drained.status, Status::kOk) << drained.error;
  EXPECT_EQ(drained.response.start_id, 0u);

  // The rejected connection was kept open: a plain retry goes through.
  for (;;) {
    const ServeClient::Outcome retry = second.search(rejected);
    if (retry.status == Status::kQueueFull) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
      continue;
    }
    EXPECT_EQ(retry.status, Status::kOk) << retry.error;
    EXPECT_EQ(retry.response.start_id, 2u);
    break;
  }
  server.stop();
}

TEST(ServeServer, GarbageFrameGetsTypedMalformedReply) {
  ServerEnv& e = env();
  Fd fd = connect_unix(e.opts.socket_path);
  std::array<std::uint8_t, kFrameHeaderBytes> junk;
  junk.fill(0x5A);
  write_all(fd.get(), junk.data(), junk.size());

  Frame reply;
  ASSERT_TRUE(read_frame(fd.get(), reply));
  ASSERT_EQ(reply.type, MsgType::kError);
  const ErrorBody error = decode_error(reply.payload);
  EXPECT_EQ(error.status, Status::kMalformed);
  // After the typed reply the server drops the peer: clean EOF.
  EXPECT_FALSE(read_frame(fd.get(), reply));
  EXPECT_GE(e.server->stats().malformed_frames, 1u);
}

TEST(ServeServer, OversizedFrameGetsTooLargeReply) {
  ServerEnv& e = env();
  Fd fd = connect_unix(e.opts.socket_path);
  const auto header = encode_frame_header(
      MsgType::kSearchRequest, e.server->config().max_frame_bytes + 1);
  write_all(fd.get(), header.data(), header.size());

  Frame reply;
  ASSERT_TRUE(read_frame(fd.get(), reply));
  ASSERT_EQ(reply.type, MsgType::kError);
  EXPECT_EQ(decode_error(reply.payload).status, Status::kTooLarge);
  EXPECT_FALSE(read_frame(fd.get(), reply));
}

TEST(ServeServer, MidBatchDisconnectLeavesServerServing) {
  ServerEnv& e = env();
  {
    Fd fd = connect_unix(e.opts.socket_path);
    SearchRequest request;
    request.spectra = {e.spectra.front()};
    const mpi::Bytes payload = encode_search_request(request);
    const auto header =
        encode_frame_header(MsgType::kSearchRequest, payload.size());
    write_all(fd.get(), header.data(), header.size());
    write_all(fd.get(), payload.data(), payload.size() / 2);
    // fd closes here: the peer vanished mid-batch.
  }
  ServeClient client = connected_client(e.opts.socket_path);
  EXPECT_EQ(client.ping().ranks, 3u);
  SearchRequest request;
  request.start_id = 0;
  request.spectra = {e.spectra.front()};
  EXPECT_EQ(client.search(request).status, Status::kOk);
}

TEST(ServeServer, HotSwapKeepsAnswersIdenticalAndCountsReloads) {
  ServerEnv& e = env();
  ServeClient client = connected_client(e.opts.socket_path);
  const std::string before = rows_to_tsv(query_all(client, e));
  const std::uint64_t reloads_before = e.server->stats().reloads;

  e.server->hot_swap(build_serving_context_in_memory(e.opts));

  const std::string after = rows_to_tsv(query_all(client, e));
  EXPECT_EQ(before, after);
  EXPECT_EQ(e.server->stats().reloads, reloads_before + 1);
}

TEST(ServeServer, StatsFrameTracksServedWork) {
  ServerEnv& e = env();
  ServeClient client = connected_client(e.opts.socket_path);
  SearchRequest request;
  request.start_id = 0;
  request.spectra = {e.spectra.front()};
  ASSERT_EQ(client.search(request).status, Status::kOk);

  const StatsBody stats = client.stats();
  EXPECT_GE(stats.connections_accepted, 1u);
  EXPECT_GE(stats.batches_served, 1u);
  EXPECT_GE(stats.queries_served, 1u);
  EXPECT_EQ(stats.ranks, 3u);
  EXPECT_EQ(stats.queue_depth, e.server->config().queue_depth);
  EXPECT_EQ(stats.workers, e.server->config().workers);
}

TEST(ServeServer, ShutdownRequestSetsTheFlagAndAcks) {
  app::AppOptions opts = test_options("shutdown");
  auto context = build_serving_context_in_memory(opts);
  ServerConfig config;
  config.socket_path = opts.socket_path;
  Server server(config, context);
  server.start();

  ServeClient client = connected_client(opts.socket_path);
  EXPECT_FALSE(server.shutdown_requested());
  client.shutdown_server();  // waits for the kShutdownResponse ack
  EXPECT_TRUE(server.shutdown_requested());
  server.stop();
}

}  // namespace
}  // namespace lbe::serve
