// BENCH_<suite>.json schema: validation, round-trip through the parser,
// and the regression gate the CI perf-smoke job runs.
#include <gtest/gtest.h>

#include "common/error.hpp"
#include "perf/bench_report.hpp"

namespace lbe::perf {
namespace {

BenchReport sample_report() {
  BenchReport report;
  report.suite = "smoke";
  report.repeat = 3;
  report.provenance = BenchProvenance{"abc123", "GNU", "12.2.0",
                                      "-O3 -DNDEBUG", "Release", "ci-host"};
  report.peak_rss_bytes = 123456789;

  BenchResult result;
  result.name = "smoke_query_throughput";
  result.wall_samples = {0.012, 0.010, 0.011};
  result.wall_seconds = summarize(result.wall_samples);
  result.add_metric("queries_per_sec", 4800.0);
  result.add_metric("cpsms_per_sec", 1.25e6);
  result.add_metric("load_imbalance", 0.07);
  result.checks_total = 3;
  result.checks_failed = 0;
  report.benchmarks.push_back(result);

  BenchResult build;
  build.name = "smoke_index_build";
  build.wall_samples = {0.5};
  build.wall_seconds = summarize(build.wall_samples);
  build.add_metric("entries_per_sec", 40000.0);
  build.checks_total = 1;
  report.benchmarks.push_back(build);
  return report;
}

TEST(BenchReport, RoundTripsThroughJson) {
  const BenchReport original = sample_report();
  const Json encoded = report_to_json(original);
  const BenchReport decoded = report_from_json(encoded);

  EXPECT_EQ(decoded.suite, original.suite);
  EXPECT_EQ(decoded.repeat, original.repeat);
  EXPECT_EQ(decoded.provenance.git_sha, original.provenance.git_sha);
  EXPECT_EQ(decoded.provenance.compiler_version,
            original.provenance.compiler_version);
  EXPECT_EQ(decoded.peak_rss_bytes, original.peak_rss_bytes);
  ASSERT_EQ(decoded.benchmarks.size(), original.benchmarks.size());
  for (std::size_t i = 0; i < decoded.benchmarks.size(); ++i) {
    const BenchResult& a = decoded.benchmarks[i];
    const BenchResult& b = original.benchmarks[i];
    EXPECT_EQ(a.name, b.name);
    EXPECT_EQ(a.wall_samples, b.wall_samples);
    EXPECT_DOUBLE_EQ(a.wall_seconds.median, b.wall_seconds.median);
    EXPECT_DOUBLE_EQ(a.wall_seconds.stddev, b.wall_seconds.stddev);
    EXPECT_EQ(a.metrics, b.metrics);
    EXPECT_EQ(a.checks_total, b.checks_total);
    EXPECT_EQ(a.checks_failed, b.checks_failed);
  }

  // Text-level round trip too: dump -> parse -> dump is a fixed point.
  const std::string text = encoded.dump(2);
  EXPECT_EQ(Json::parse(text).dump(2), text);
}

TEST(BenchReport, ValidatesCurrentSchema) {
  EXPECT_EQ(validate_report_json(report_to_json(sample_report())), "");
}

TEST(BenchReport, RejectsSchemaViolations) {
  const Json good = report_to_json(sample_report());

  {  // wrong schema version
    Json bad = good;
    bad.set("schema_version", Json(99));
    EXPECT_NE(validate_report_json(bad), "");
  }
  {  // missing suite
    Json bad = Json::object();
    bad.set("schema_version", Json(kBenchSchemaVersion));
    EXPECT_NE(validate_report_json(bad), "");
  }
  {  // benchmarks not an array
    Json bad = good;
    bad.set("benchmarks", Json("nope"));
    EXPECT_NE(validate_report_json(bad), "");
  }
  {  // non-numeric metric
    Json bad = good;
    Json benchmarks = Json::array();
    Json entry = good.at("benchmarks").items()[0];
    Json metrics = Json::object();
    metrics.set("queries_per_sec", Json("fast"));
    entry.set("metrics", metrics);
    benchmarks.push_back(entry);
    bad.set("benchmarks", benchmarks);
    EXPECT_NE(validate_report_json(bad), "");
  }
  {  // hand-edited median that contradicts the samples
    Json bad = good;
    Json benchmarks = Json::array();
    Json entry = good.at("benchmarks").items()[0];
    Json wall = entry.at("wall_seconds");
    wall.set("median", Json(1000.0));
    entry.set("wall_seconds", wall);
    benchmarks.push_back(entry);
    bad.set("benchmarks", benchmarks);
    EXPECT_NE(validate_report_json(bad), "");
  }
  EXPECT_THROW(report_from_json(Json("not an object")), IoError);
}

TEST(BenchReport, JsonParserRejectsGarbage) {
  EXPECT_THROW(Json::parse(""), IoError);
  EXPECT_THROW(Json::parse("{"), IoError);
  EXPECT_THROW(Json::parse("{} trailing"), IoError);
  EXPECT_THROW(Json::parse("{\"a\":1,\"a\":2}"), IoError);
  EXPECT_THROW(Json::parse("[1,]"), IoError);
  EXPECT_THROW(Json::parse("01"), IoError);  // strtod accepts, grammar no
  EXPECT_THROW(Json::parse("\"\\q\""), IoError);
  EXPECT_EQ(Json::parse("[1, 2.5, -3e2]").items().size(), 3u);
  EXPECT_EQ(Json::parse("\"a\\u0041b\"").as_string(), "aAb");
}

TEST(BenchReport, RegressionGateFlagsOnlyRealRegressions) {
  const BenchReport baseline = sample_report();

  // 10% slower: within the 25% tolerance.
  BenchReport current = baseline;
  current.benchmarks[0].metrics.clear();
  current.benchmarks[0].add_metric("queries_per_sec", 4800.0 * 0.9);
  EXPECT_TRUE(find_regressions(baseline, current, 0.25).empty());

  // 40% slower: flagged.
  current.benchmarks[0].metrics.clear();
  current.benchmarks[0].add_metric("queries_per_sec", 4800.0 * 0.6);
  const auto findings = find_regressions(baseline, current, 0.25);
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].benchmark, "smoke_query_throughput");
  EXPECT_NEAR(findings[0].ratio, 0.6, 1e-9);

  // Faster is never a finding.
  current.benchmarks[0].metrics.clear();
  current.benchmarks[0].add_metric("queries_per_sec", 4800.0 * 2.0);
  EXPECT_TRUE(find_regressions(baseline, current, 0.25).empty());

  // A gated baseline benchmark that vanished (renamed/dropped/metric lost)
  // is flagged with current = 0, never skipped: the gate must not pass
  // vacuously. Ungated baseline entries (no queries_per_sec) stay silent.
  current.benchmarks[0].metrics.clear();
  const auto lost_metric = find_regressions(baseline, current, 0.25);
  ASSERT_EQ(lost_metric.size(), 1u);
  EXPECT_EQ(lost_metric[0].benchmark, "smoke_query_throughput");
  EXPECT_DOUBLE_EQ(lost_metric[0].current, 0.0);
  current.benchmarks.clear();
  const auto all_gone = find_regressions(baseline, current, 0.25);
  ASSERT_EQ(all_gone.size(), 1u);
  EXPECT_DOUBLE_EQ(all_gone[0].ratio, 0.0);

  // Benchmarks only in `current` have no baseline yet: ignored.
  BenchReport extra = baseline;
  BenchResult novel;
  novel.name = "smoke_new_path";
  novel.add_metric("queries_per_sec", 1.0);
  extra.benchmarks.push_back(novel);
  EXPECT_TRUE(find_regressions(baseline, extra, 0.25).empty());
}

TEST(BenchReport, LowerIsBetterGateMirrorsTheTolerance) {
  BenchReport baseline;
  baseline.suite = "serve";
  BenchResult open_loop;
  open_loop.name = "serve_open_loop";
  open_loop.wall_samples = {0.2};
  open_loop.wall_seconds = summarize(open_loop.wall_samples);
  open_loop.add_metric("p99_latency_ms", 10.0);
  baseline.benchmarks.push_back(open_loop);

  const auto gate = [&](double current_ms) {
    BenchReport current = baseline;
    current.benchmarks[0].metrics.clear();
    current.benchmarks[0].add_metric("p99_latency_ms", current_ms);
    return find_regressions(baseline, current, 0.5, "p99_latency_ms",
                            /*flag_missing=*/true, /*lower_is_better=*/true);
  };

  // The ceiling for max_regress 0.5 is baseline / 0.5 = 2x baseline.
  EXPECT_TRUE(gate(10.0).empty());   // unchanged
  EXPECT_TRUE(gate(3.0).empty());    // faster is never a finding
  EXPECT_TRUE(gate(19.9).empty());   // below the ceiling
  const auto slow = gate(25.0);      // beyond the ceiling: flagged
  ASSERT_EQ(slow.size(), 1u);
  EXPECT_EQ(slow[0].benchmark, "serve_open_loop");
  EXPECT_EQ(slow[0].metric, "p99_latency_ms");
  EXPECT_NEAR(slow[0].ratio, 2.5, 1e-9);

  // A vanished latency metric is still a finding: the latency gate must
  // not pass because the benchmark stopped reporting it.
  BenchReport missing = baseline;
  missing.benchmarks[0].metrics.clear();
  const auto lost =
      find_regressions(baseline, missing, 0.5, "p99_latency_ms",
                       /*flag_missing=*/true, /*lower_is_better=*/true);
  ASSERT_EQ(lost.size(), 1u);
  EXPECT_DOUBLE_EQ(lost[0].current, 0.0);
}

TEST(BenchReport, ParsesCheckedInBaselineWhenPresent) {
  // The repo ships bench/baseline/BENCH_smoke.json; exercise the real file
  // if the test runs from the build tree next to the sources.
  try {
    const BenchReport baseline =
        load_report_file("../bench/baseline/BENCH_smoke.json");
    EXPECT_EQ(baseline.suite, "smoke");
    EXPECT_FALSE(baseline.benchmarks.empty());
  } catch (const IoError&) {
    GTEST_SKIP() << "baseline not reachable from this working directory";
  }
}

}  // namespace
}  // namespace lbe::perf
