#include "perf/metrics.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "common/error.hpp"

namespace lbe::perf {
namespace {

TEST(LoadStats, PaperWorkedExample) {
  // §VI: 16 CPUs, Tavg = 100 s, ΔTmax = 80 s => LI = 0.8, Twst = 1280 s.
  // Construct 16 rank times with mean 100 and max 180.
  std::vector<double> times(16, 100.0);
  times[7] = 180.0;
  // Adjust the rest down so the mean stays 100: remove 80/15 from each.
  for (std::size_t i = 0; i < times.size(); ++i) {
    if (i != 7) times[i] -= 80.0 / 15.0;
  }
  const LoadStats stats = load_stats(times);
  EXPECT_NEAR(stats.t_avg, 100.0, 1e-9);
  EXPECT_NEAR(stats.delta_t_max, 80.0, 1e-9);
  EXPECT_NEAR(stats.imbalance, 0.8, 1e-9);
  EXPECT_NEAR(stats.wasted_cpu, 1280.0, 1e-9);
}

TEST(LoadStats, PerfectBalanceIsZero) {
  const std::vector<double> times(8, 42.0);
  const LoadStats stats = load_stats(times);
  EXPECT_DOUBLE_EQ(stats.imbalance, 0.0);
  EXPECT_DOUBLE_EQ(stats.delta_t_max, 0.0);
  EXPECT_DOUBLE_EQ(stats.wasted_cpu, 0.0);
}

TEST(LoadStats, EmptyAndZeroInputs) {
  EXPECT_DOUBLE_EQ(load_imbalance({}), 0.0);
  EXPECT_DOUBLE_EQ(load_imbalance({0.0, 0.0}), 0.0);
}

TEST(LoadStats, SingleRankBalanced) {
  EXPECT_DOUBLE_EQ(load_imbalance({5.0}), 0.0);
}

TEST(LoadStats, NegativeTimeRejected) {
  EXPECT_THROW(load_stats({1.0, -2.0}), InvariantError);
}

TEST(LoadStats, ChunkLikeSkew) {
  // One rank does all the work: LI = (T - T/p) / (T/p) = p - 1.
  std::vector<double> times(16, 0.0);
  times[0] = 16.0;
  EXPECT_NEAR(load_imbalance(times), 15.0, 1e-9);
}

TEST(Speedup, BaseCaseConvention) {
  // Fig. 8 convention: base is the smallest measured CPU count.
  // S(p) = base_ranks * base_time / time(p).
  EXPECT_DOUBLE_EQ(speedup_vs_base(100.0, 2, 100.0), 2.0);
  EXPECT_DOUBLE_EQ(speedup_vs_base(100.0, 2, 50.0), 4.0);
  EXPECT_DOUBLE_EQ(speedup_vs_base(100.0, 4, 25.0), 16.0);
}

TEST(Speedup, InvalidInputsRejected) {
  EXPECT_THROW(speedup_vs_base(0.0, 2, 1.0), InvariantError);
  EXPECT_THROW(speedup_vs_base(1.0, 2, 0.0), InvariantError);
  EXPECT_THROW(speedup_vs_base(1.0, 0, 1.0), InvariantError);
}

TEST(Efficiency, Values) {
  EXPECT_DOUBLE_EQ(efficiency(8.0, 8), 1.0);
  EXPECT_DOUBLE_EQ(efficiency(4.0, 8), 0.5);
  EXPECT_THROW(efficiency(1.0, 0), InvariantError);
}

TEST(CpuTimeSpeedup, BalancedVsImbalanced) {
  // Baseline: chunk-like, one rank 16 s, rest idle => CPU cost 16 * 16.
  std::vector<double> chunk(16, 0.0);
  chunk[0] = 16.0;
  // Improved: perfectly balanced 1 s each => CPU cost 16 * 1.
  const std::vector<double> cyclic(16, 1.0);
  EXPECT_NEAR(cpu_time_speedup(chunk, cyclic), 16.0, 1e-9);
}

TEST(CpuTimeSpeedup, EqualRunsGiveOne) {
  const std::vector<double> times(4, 2.0);
  EXPECT_DOUBLE_EQ(cpu_time_speedup(times, times), 1.0);
}

TEST(CpuTimeSpeedup, ZeroImprovedRejected) {
  EXPECT_THROW(cpu_time_speedup({1.0}, {0.0}), InvariantError);
}

TEST(SampleStats, OrderStatisticsAndSpread) {
  const SampleStats odd = summarize({3.0, 1.0, 2.0});
  EXPECT_EQ(odd.samples, 3u);
  EXPECT_DOUBLE_EQ(odd.min, 1.0);
  EXPECT_DOUBLE_EQ(odd.max, 3.0);
  EXPECT_DOUBLE_EQ(odd.median, 2.0);
  EXPECT_DOUBLE_EQ(odd.mean, 2.0);
  EXPECT_NEAR(odd.stddev, std::sqrt(2.0 / 3.0), 1e-12);

  const SampleStats even = summarize({4.0, 1.0, 3.0, 2.0});
  EXPECT_DOUBLE_EQ(even.median, 2.5);

  const SampleStats single = summarize({7.0});
  EXPECT_DOUBLE_EQ(single.median, 7.0);
  EXPECT_DOUBLE_EQ(single.stddev, 0.0);

  EXPECT_EQ(summarize({}).samples, 0u);
}

TEST(WorkUnitLoads, MatchesCostUnitsAndFeedsEq1) {
  // The single conversion lbectl and the bench harness share: Eq. 1 over
  // QueryWork::cost_units must equal computing it by hand.
  index::QueryWork light;
  light.postings_touched = 100;
  light.bins_visited = 40;
  light.candidates = 5;
  index::QueryWork heavy;
  heavy.postings_touched = 1000;
  heavy.bins_visited = 400;
  heavy.candidates = 50;
  const std::vector<index::QueryWork> per_rank = {light, heavy};

  const std::vector<double> loads = work_unit_loads(per_rank);
  ASSERT_EQ(loads.size(), 2u);
  EXPECT_DOUBLE_EQ(loads[0], light.cost_units());
  EXPECT_DOUBLE_EQ(loads[1], heavy.cost_units());

  const LoadStats direct = load_stats(loads);
  const LoadStats via_work = load_stats_from_work(per_rank);
  EXPECT_DOUBLE_EQ(direct.imbalance, via_work.imbalance);
  EXPECT_DOUBLE_EQ(direct.wasted_cpu, via_work.wasted_cpu);
  EXPECT_GT(via_work.imbalance, 0.0);
}

}  // namespace
}  // namespace lbe::perf
