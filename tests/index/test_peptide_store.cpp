#include "index/peptide_store.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"

namespace lbe::index {
namespace {

class PeptideStoreTest : public ::testing::Test {
 protected:
  chem::ModificationSet mods_ = chem::ModificationSet::paper_default();
};

TEST_F(PeptideStoreTest, EmptyStore) {
  const PeptideStore store;
  EXPECT_EQ(store.size(), 0u);
  EXPECT_TRUE(store.empty());
  EXPECT_THROW(store.view(0), InvariantError);
}

TEST_F(PeptideStoreTest, AddAssignsDenseIds) {
  PeptideStore store;
  EXPECT_EQ(store.add(chem::Peptide("PEPK"), mods_), 0u);
  EXPECT_EQ(store.add(chem::Peptide("AAAK"), mods_), 1u);
  EXPECT_EQ(store.size(), 2u);
}

TEST_F(PeptideStoreTest, ViewRecoversSequenceAndMass) {
  PeptideStore store;
  const chem::Peptide p("PEPTIDEK");
  store.add(p, mods_);
  const PeptideView v = store.view(0);
  EXPECT_EQ(v.sequence, "PEPTIDEK");
  EXPECT_EQ(v.site_count, 0u);
  EXPECT_NEAR(v.mass, p.mass(mods_), 1e-9);
  EXPECT_NEAR(store.mass(0), p.mass(mods_), 1e-9);
}

TEST_F(PeptideStoreTest, ModifiedPeptideRoundTrips) {
  PeptideStore store(&mods_);
  const chem::Peptide p("MGGGK", {{0, 2}}, mods_);
  store.add(p, mods_);
  const PeptideView v = store.view(0);
  EXPECT_TRUE(v.modified());
  ASSERT_EQ(v.site_count, 1u);
  EXPECT_EQ(v.sites[0].position, 0u);
  EXPECT_EQ(v.sites[0].mod, 2);
  const chem::Peptide back = store.materialize(0);
  EXPECT_EQ(back, p);
}

TEST_F(PeptideStoreTest, ManyPeptidesContiguousViews) {
  PeptideStore store(&mods_);
  std::vector<std::string> seqs;
  for (int i = 0; i < 100; ++i) {
    seqs.push_back("PEP" + std::string(static_cast<std::size_t>(i % 7 + 1),
                                       'G') + "K");
    store.add(chem::Peptide(seqs.back()), mods_);
  }
  for (std::size_t i = 0; i < seqs.size(); ++i) {
    EXPECT_EQ(store.view(static_cast<LocalPeptideId>(i)).sequence, seqs[i]);
  }
}

TEST_F(PeptideStoreTest, MemoryBytesGrowsWithContent) {
  PeptideStore store(&mods_);
  const auto empty_bytes = store.memory_bytes();
  for (int i = 0; i < 1000; ++i) {
    store.add(chem::Peptide("PEPTIDEGGGK"), mods_);
  }
  EXPECT_GT(store.memory_bytes(), empty_bytes + 1000 * 11);
}

TEST_F(PeptideStoreTest, IdsByMassSortsAscending) {
  PeptideStore store(&mods_);
  store.add(chem::Peptide("WWWWWW"), mods_);  // heavy
  store.add(chem::Peptide("GGGGGG"), mods_);  // light
  store.add(chem::Peptide("AAAAAA"), mods_);  // middle
  const auto ids = store.ids_by_mass();
  ASSERT_EQ(ids.size(), 3u);
  EXPECT_EQ(ids[0], 1u);
  EXPECT_EQ(ids[1], 2u);
  EXPECT_EQ(ids[2], 0u);
}

TEST_F(PeptideStoreTest, IdsByMassStableForTies) {
  PeptideStore store(&mods_);
  store.add(chem::Peptide("GGG"), mods_);
  store.add(chem::Peptide("GGG"), mods_);
  const auto ids = store.ids_by_mass();
  EXPECT_EQ(ids[0], 0u);
  EXPECT_EQ(ids[1], 1u);
}

}  // namespace
}  // namespace lbe::index
