// The v4 posting codec in isolation: round-trips across the width range,
// degenerate spans, the incompressible fallback, structural validation,
// and — on hardware that has them — byte-for-byte agreement of the SSE4.1
// and AVX2 unpack kernels with the scalar reference. The engine-level
// equivalence (identical psms.tsv per --simd level) is asserted separately
// by cmake/simd_equivalence_test.cmake and CI.
#include "index/posting_codec.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <limits>
#include <random>
#include <vector>

#include "common/error.hpp"

namespace codec = lbe::index::codec;

namespace {

/// Encode + decode-all under the currently selected kernel.
std::vector<std::uint32_t> round_trip(
    const std::vector<std::uint32_t>& values) {
  std::vector<codec::BlockMeta> blocks;
  std::vector<std::byte> bytes;
  codec::encode(values, blocks, bytes);
  codec::validate_blocks(blocks, values.size(), bytes.size());
  const std::size_t padded =
      blocks.size() * static_cast<std::size_t>(codec::kBlockValues);
  std::vector<std::uint32_t> out(padded, 0xDEADBEEFu);
  codec::decode_blocks(blocks, bytes, values.size(), 0, blocks.size(),
                       out.data());
  out.resize(values.size());
  return out;
}

/// Values whose per-block offset range needs exactly `width` bits.
std::vector<std::uint32_t> values_of_width(std::uint32_t width,
                                           std::size_t count,
                                           std::uint32_t seed) {
  std::mt19937 rng(seed);
  const std::uint64_t range = width >= 32
                                  ? 0x100000000ull
                                  : (1ull << width);
  const std::uint32_t base = rng() % 100000u;
  std::vector<std::uint32_t> values(count);
  for (auto& v : values) {
    v = base + static_cast<std::uint32_t>(rng() % range);
  }
  return values;
}

class PostingCodecTest : public ::testing::Test {
 protected:
  void TearDown() override {
    codec::set_simd_level(codec::SimdLevel::kAuto);
  }
};

TEST_F(PostingCodecTest, RoundTripsEveryWidthOnEveryKernel) {
  for (const codec::SimdLevel level :
       {codec::SimdLevel::kScalar, codec::SimdLevel::kSse,
        codec::SimdLevel::kAvx2}) {
    if (!codec::cpu_supports(level)) continue;
    codec::set_simd_level(level);
    ASSERT_EQ(codec::resolved_simd_level(), level);
    for (std::uint32_t width = 0; width <= 32; ++width) {
      const auto values = values_of_width(width, 1000, 7u * width + 1);
      EXPECT_EQ(round_trip(values), values)
          << "width " << width << " on " << codec::simd_level_name(level);
    }
  }
}

TEST_F(PostingCodecTest, KernelsAgreeByteForByte) {
  std::mt19937 rng(42);
  for (int trial = 0; trial < 50; ++trial) {
    const std::uint32_t width = rng() % 33u;
    const std::size_t count = 1 + rng() % 1000;
    const auto values = values_of_width(width, count, rng());

    codec::set_simd_level(codec::SimdLevel::kScalar);
    const auto scalar = round_trip(values);
    ASSERT_EQ(scalar, values);
    for (const codec::SimdLevel level :
         {codec::SimdLevel::kSse, codec::SimdLevel::kAvx2}) {
      if (!codec::cpu_supports(level)) continue;
      codec::set_simd_level(level);
      EXPECT_EQ(round_trip(values), scalar)
          << codec::simd_level_name(level) << " diverges from scalar at "
          << "width " << width << " count " << count;
    }
  }
}

TEST_F(PostingCodecTest, DegenerateSpans) {
  // Empty: no blocks, no bytes.
  std::vector<codec::BlockMeta> blocks;
  std::vector<std::byte> bytes;
  codec::encode({}, blocks, bytes);
  EXPECT_TRUE(blocks.empty());
  EXPECT_TRUE(bytes.empty());
  codec::validate_blocks(blocks, 0, 0);

  // Single value; all-equal block (width 0); max-u32 values.
  EXPECT_EQ(round_trip({42u}), std::vector<std::uint32_t>{42u});
  const std::vector<std::uint32_t> equal(300, 123456u);
  EXPECT_EQ(round_trip(equal), equal);
  const std::uint32_t top = std::numeric_limits<std::uint32_t>::max();
  const std::vector<std::uint32_t> extremes = {0u, top, top - 1, 0u, top};
  EXPECT_EQ(round_trip(extremes), extremes);
}

TEST_F(PostingCodecTest, BlockBoundaryCounts) {
  for (const std::size_t count : {127u, 128u, 129u, 255u, 256u, 257u}) {
    const auto values = values_of_width(11, count, 99);
    EXPECT_EQ(round_trip(values), values) << "count " << count;
  }
}

TEST_F(PostingCodecTest, IncompressibleBlocksFallBackToRaw) {
  // Full-range random values need 32-bit offsets: packing would not
  // shrink them, so the encoder must emit verbatim blocks no larger than
  // the raw array.
  std::mt19937 rng(7);
  std::vector<std::uint32_t> values(512);
  for (auto& v : values) v = rng();
  std::vector<codec::BlockMeta> blocks;
  std::vector<std::byte> bytes;
  codec::encode(values, blocks, bytes);
  ASSERT_EQ(blocks.size(), 4u);
  for (const auto& meta : blocks) {
    EXPECT_EQ(meta.tag, codec::kTagRaw);
  }
  EXPECT_EQ(bytes.size(), values.size() * sizeof(std::uint32_t));
  EXPECT_EQ(round_trip(values), values);
}

TEST_F(PostingCodecTest, CompressesTypicalPostingsWell) {
  // The gate the index_io bench enforces end to end (≤ 0.6× raw u32),
  // checked here at the codec layer: clustered bins pack far below 4 B.
  const auto values = values_of_width(12, 4096, 3);
  std::vector<codec::BlockMeta> blocks;
  std::vector<std::byte> bytes;
  codec::encode(values, blocks, bytes);
  const double per_posting =
      static_cast<double>(bytes.size() +
                          blocks.size() * sizeof(codec::BlockMeta)) /
      static_cast<double>(values.size());
  EXPECT_LE(per_posting, 0.6 * sizeof(std::uint32_t));
}

TEST_F(PostingCodecTest, DecodeRangeMatchesFullDecodeOnEveryKernel) {
  // decode_range is the span-walk entry point: arbitrary [first, last)
  // sub-ranges, rounded out to 8-value rows, must reproduce exactly what a
  // full block decode yields — mid-stream kernel entry (a lane's bit
  // buffer primed at a non-zero word/bit offset) included — and must not
  // write outside the rounded row range.
  std::mt19937 rng(2024);
  for (const codec::SimdLevel level :
       {codec::SimdLevel::kScalar, codec::SimdLevel::kSse,
        codec::SimdLevel::kAvx2}) {
    if (!codec::cpu_supports(level)) continue;
    codec::set_simd_level(level);
    for (int trial = 0; trial < 40; ++trial) {
      const std::uint32_t width = rng() % 33u;
      const std::size_t count = 1 + rng() % 700;
      const auto values = values_of_width(width, count, rng());
      std::vector<codec::BlockMeta> blocks;
      std::vector<std::byte> bytes;
      codec::encode(values, blocks, bytes);

      const std::uint64_t first = rng() % count;
      const std::uint64_t last = first + 1 + rng() % (count - first);
      const std::size_t block_first =
          static_cast<std::size_t>(first) / codec::kBlockValues;
      const std::size_t block_count =
          (static_cast<std::size_t>(last) - 1) / codec::kBlockValues -
          block_first + 1;
      std::vector<std::uint32_t> out(block_count * codec::kBlockValues,
                                     0xDEADBEEFu);
      codec::decode_range(blocks, bytes, count, first, last, out.data());

      const std::uint64_t origin =
          static_cast<std::uint64_t>(block_first) * codec::kBlockValues;
      for (std::uint64_t i = first; i < last; ++i) {
        ASSERT_EQ(out[i - origin], values[i])
            << codec::simd_level_name(level) << " width " << width
            << " range [" << first << ", " << last << ") at " << i;
      }
      // Row-rounding bound: nothing before floor8(first) or at/after
      // ceil8(last) may be written.
      const std::uint64_t lo_bound = (first - origin) / 8 * 8;
      const std::uint64_t hi_bound = ((last - origin) + 7) / 8 * 8;
      for (std::uint64_t i = 0; i < lo_bound; ++i) {
        ASSERT_EQ(out[i], 0xDEADBEEFu) << "wrote before the row range";
      }
      for (std::uint64_t i = hi_bound; i < out.size(); ++i) {
        ASSERT_EQ(out[i], 0xDEADBEEFu) << "wrote past the row range";
      }
    }
  }
}

TEST_F(PostingCodecTest, ValidationRejectsMalformedDirectories) {
  const auto values = values_of_width(9, 300, 5);
  std::vector<codec::BlockMeta> blocks;
  std::vector<std::byte> bytes;
  codec::encode(values, blocks, bytes);

  auto corrupt = blocks;
  corrupt[1].tag = 7;
  EXPECT_THROW(codec::validate_blocks(corrupt, values.size(), bytes.size()),
               lbe::IoError);
  corrupt = blocks;
  corrupt[0].width = 33;
  EXPECT_THROW(codec::validate_blocks(corrupt, values.size(), bytes.size()),
               lbe::IoError);
  corrupt = blocks;
  corrupt[2].offset += 8;
  EXPECT_THROW(codec::validate_blocks(corrupt, values.size(), bytes.size()),
               lbe::IoError);
  corrupt = blocks;
  corrupt[0].reserved = 1;
  EXPECT_THROW(codec::validate_blocks(corrupt, values.size(), bytes.size()),
               lbe::IoError);
  // Stream bytes not tiled exactly by the blocks.
  EXPECT_THROW(codec::validate_blocks(blocks, values.size(),
                                      bytes.size() + 8),
               lbe::IoError);
  // Wrong block count for the posting total.
  EXPECT_THROW(codec::validate_blocks(blocks, values.size() + 200,
                                      bytes.size()),
               lbe::IoError);
}

}  // namespace
