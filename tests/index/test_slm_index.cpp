#include "index/slm_index.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "theospec/fragmenter.hpp"

namespace lbe::index {
namespace {

class SlmIndexTest : public ::testing::Test {
 protected:
  SlmIndexTest() {
    params_.resolution = 0.01;
    params_.max_fragment_mz = 3000.0;
    params_.fragments.max_fragment_charge = 1;
    query_.fragment_tolerance = 0.05;
    query_.shared_peak_min = 4;
  }

  PeptideStore make_store(const std::vector<std::string>& seqs) {
    PeptideStore store(&mods_);
    for (const auto& s : seqs) store.add(chem::Peptide(s), mods_);
    return store;
  }

  chem::Spectrum theo(const std::string& seq) {
    return theospec::theoretical_spectrum(chem::Peptide(seq), mods_,
                                          params_.fragments);
  }

  chem::ModificationSet mods_ = chem::ModificationSet::paper_default();
  IndexParams params_;
  QueryParams query_;
};

TEST_F(SlmIndexTest, PostingsCountMatchesFragmentCount) {
  const auto store = make_store({"PEPTIDEK", "AAAGGGK"});
  const SlmIndex index(store, mods_, params_);
  // 7 cuts * 2 + 6 cuts * 2 = 26 postings (all fragments in range).
  EXPECT_EQ(index.num_postings(), 26u);
}

TEST_F(SlmIndexTest, SelfQueryFindsOwnPeptideWithMaxSharedPeaks) {
  const auto store = make_store({"PEPTIDEK", "MKWVTFISLLK", "GGGGGGK"});
  const SlmIndex index(store, mods_, params_);
  std::vector<Candidate> candidates;
  QueryWork work;
  const chem::Spectrum spectrum = theo("MKWVTFISLLK");
  index.query(spectrum, query_, candidates, work);
  ASSERT_FALSE(candidates.empty());
  const auto best = std::max_element(
      candidates.begin(), candidates.end(),
      [](const Candidate& a, const Candidate& b) {
        return a.shared_peaks < b.shared_peaks;
      });
  EXPECT_EQ(best->peptide, 1u);
  // Every theoretical peak of the peptide must match at least one of its
  // own postings (identical m/z => identical bin).
  EXPECT_GE(best->shared_peaks, spectrum.size());
}

TEST_F(SlmIndexTest, SharedPeakThresholdFilters) {
  const auto store = make_store({"PEPTIDEK", "WWWWWHHK"});
  const SlmIndex index(store, mods_, params_);
  std::vector<Candidate> candidates;
  QueryWork work;
  // Querying PEPTIDEK's spectrum: WWWWWHHK shares essentially nothing
  // except possibly the y1 (K) ion => below threshold 4.
  index.query(theo("PEPTIDEK"), query_, candidates, work);
  for (const auto& c : candidates) {
    EXPECT_EQ(c.peptide, 0u);
    EXPECT_GE(c.shared_peaks, query_.shared_peak_min);
  }
}

TEST_F(SlmIndexTest, ThresholdOneAdmitsWeakMatches) {
  const auto store = make_store({"PEPTIDEK", "GGGGGGK"});
  const SlmIndex index(store, mods_, params_);
  QueryParams loose = query_;
  loose.shared_peak_min = 1;
  std::vector<Candidate> candidates;
  QueryWork work;
  index.query(theo("PEPTIDEK"), loose, candidates, work);
  // Both share the y1 = K ion.
  EXPECT_EQ(candidates.size(), 2u);
}

TEST_F(SlmIndexTest, PrecursorWindowFiltersCandidates) {
  const auto store = make_store({"PEPTIDEK", "PEPTIDEKK"});
  const SlmIndex index(store, mods_, params_);
  QueryParams narrow = query_;
  narrow.shared_peak_min = 1;
  narrow.precursor_tolerance = 1.0;  // ±1 Da closed search
  auto spectrum = theo("PEPTIDEK");
  std::vector<Candidate> candidates;
  QueryWork work;
  index.query(spectrum, narrow, candidates, work);
  ASSERT_EQ(candidates.size(), 1u);
  EXPECT_EQ(candidates[0].peptide, 0u);
}

TEST_F(SlmIndexTest, OpenSearchKeepsAllCandidates) {
  const auto store = make_store({"PEPTIDEK", "PEPTIDEKK"});
  const SlmIndex index(store, mods_, params_);
  QueryParams open = query_;
  open.shared_peak_min = 1;  // default precursor_tolerance = inf
  auto spectrum = theo("PEPTIDEK");
  std::vector<Candidate> candidates;
  QueryWork work;
  index.query(spectrum, open, candidates, work);
  EXPECT_EQ(candidates.size(), 2u);
}

TEST_F(SlmIndexTest, RepeatedQueriesIndependent) {
  const auto store = make_store({"PEPTIDEK", "MKWVTFISLLK"});
  const SlmIndex index(store, mods_, params_);
  std::vector<Candidate> first;
  std::vector<Candidate> second;
  QueryWork work;
  index.query(theo("PEPTIDEK"), query_, first, work);
  index.query(theo("PEPTIDEK"), query_, second, work);
  ASSERT_EQ(first.size(), second.size());
  for (std::size_t i = 0; i < first.size(); ++i) {
    EXPECT_EQ(first[i].peptide, second[i].peptide);
    EXPECT_EQ(first[i].shared_peaks, second[i].shared_peaks);
  }
}

TEST_F(SlmIndexTest, WorkCountersPopulated) {
  const auto store = make_store({"PEPTIDEK"});
  const SlmIndex index(store, mods_, params_);
  QueryWork work;
  std::vector<Candidate> candidates;
  const chem::Spectrum spectrum = theo("PEPTIDEK");
  index.query(spectrum, query_, candidates, work);
  EXPECT_EQ(work.peaks_processed, spectrum.size());
  EXPECT_GT(work.bins_visited, work.peaks_processed);  // ±5 bins per peak
  EXPECT_GE(work.postings_touched, spectrum.size());
  EXPECT_EQ(work.candidates, candidates.size());
  EXPECT_GT(work.cost_units(), 0.0);
}

TEST_F(SlmIndexTest, SubsetIndexOnlySeesSubset) {
  const auto store = make_store({"PEPTIDEK", "MKWVTFISLLK", "GGGGGGK"});
  const std::vector<LocalPeptideId> subset = {1};
  const SlmIndex index(store, mods_, params_, subset);
  std::vector<Candidate> candidates;
  QueryWork work;
  QueryParams loose = query_;
  loose.shared_peak_min = 1;
  index.query(theo("PEPTIDEK"), loose, candidates, work);
  for (const auto& c : candidates) EXPECT_EQ(c.peptide, 1u);
  candidates.clear();
  index.query(theo("MKWVTFISLLK"), loose, candidates, work);
  ASSERT_FALSE(candidates.empty());
  EXPECT_EQ(candidates[0].peptide, 1u);  // keeps store-wide id
}

TEST_F(SlmIndexTest, SubsetWithBadIdThrows) {
  const auto store = make_store({"PEPTIDEK"});
  const std::vector<LocalPeptideId> bad = {5};
  EXPECT_THROW(SlmIndex(store, mods_, params_, bad), InvariantError);
}

TEST_F(SlmIndexTest, FragmentsAboveMaxMzDropped) {
  IndexParams tight = params_;
  tight.max_fragment_mz = 300.0;
  const auto store = make_store({"PEPTIDEK"});
  const SlmIndex full(store, mods_, params_);
  const SlmIndex cut(store, mods_, tight);
  EXPECT_LT(cut.num_postings(), full.num_postings());
  EXPECT_GT(cut.num_postings(), 0u);
}

TEST_F(SlmIndexTest, MemoryBytesTracksPostings) {
  const auto small_store = make_store({"PEPTIDEK"});
  std::vector<std::string> many;
  for (int i = 0; i < 200; ++i) many.push_back("PEPTIDEGGGSSAK");
  const auto big_store = make_store(many);
  const SlmIndex small(small_store, mods_, params_);
  const SlmIndex big(big_store, mods_, params_);
  EXPECT_GT(big.memory_bytes(), small.memory_bytes());
}

TEST_F(SlmIndexTest, BinOccupancySumsToPostings) {
  const auto store = make_store({"PEPTIDEK", "AAAGGGK"});
  const SlmIndex index(store, mods_, params_);
  const auto occupancy = index.bin_occupancy();
  std::uint64_t total = 0;
  for (const auto c : occupancy) total += c;
  EXPECT_EQ(total, index.num_postings());
}

TEST_F(SlmIndexTest, EmptySpectrumYieldsNothing) {
  const auto store = make_store({"PEPTIDEK"});
  const SlmIndex index(store, mods_, params_);
  chem::Spectrum empty;
  std::vector<Candidate> candidates;
  QueryWork work;
  index.query(empty, query_, candidates, work);
  EXPECT_TRUE(candidates.empty());
  EXPECT_EQ(work.peaks_processed, 0u);
}

}  // namespace
}  // namespace lbe::index
