#include "index/mapping_table.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"

namespace lbe::index {
namespace {

TEST(MappingTable, RoundTripLookups) {
  // 7 peptides over 3 ranks, cyclic-like assignment.
  const std::vector<std::vector<GlobalPeptideId>> per_rank = {
      {0, 3, 6}, {1, 4}, {2, 5}};
  const MappingTable table(per_rank);
  EXPECT_EQ(table.num_ranks(), 3);
  EXPECT_EQ(table.total_peptides(), 7u);
  EXPECT_EQ(table.rank_count(0), 3u);
  EXPECT_EQ(table.rank_count(1), 2u);

  for (RankId rank = 0; rank < 3; ++rank) {
    const auto r = static_cast<std::size_t>(rank);
    for (std::size_t local = 0; local < per_rank[r].size(); ++local) {
      const GlobalPeptideId global =
          table.to_global(rank, static_cast<LocalPeptideId>(local));
      EXPECT_EQ(global, per_rank[r][local]);
      EXPECT_EQ(table.rank_of(global), rank);
      EXPECT_EQ(table.local_of(global), local);
    }
  }
}

TEST(MappingTable, RejectsDoubleAssignment) {
  EXPECT_THROW(MappingTable({{0, 1}, {1, 2}}), InvariantError);
}

TEST(MappingTable, RejectsGapsInGlobalIds) {
  // Global id 2 missing, id 3 present => out of range for total 3.
  EXPECT_THROW(MappingTable({{0}, {1, 3}}), InvariantError);
}

TEST(MappingTable, RejectsOutOfRangeQueries) {
  const MappingTable table({{0, 1}, {2}});
  EXPECT_THROW(table.to_global(5, 0), InvariantError);
  EXPECT_THROW(table.to_global(-1, 0), InvariantError);
  EXPECT_THROW(table.to_global(0, 9), InvariantError);
  EXPECT_THROW(table.rank_of(99), InvariantError);
  EXPECT_THROW(table.rank_count(7), InvariantError);
}

TEST(MappingTable, EmptyRanksAllowed) {
  const MappingTable table({{0, 1, 2}, {}});
  EXPECT_EQ(table.rank_count(0), 3u);
  EXPECT_EQ(table.rank_count(1), 0u);
  EXPECT_EQ(table.rank_of(2), 0);
}

TEST(MappingTable, MemoryScalesWithPeptides) {
  std::vector<std::vector<GlobalPeptideId>> small = {{0, 1}};
  std::vector<std::vector<GlobalPeptideId>> large(1);
  for (GlobalPeptideId i = 0; i < 10000; ++i) large[0].push_back(i);
  const MappingTable a(small);
  const MappingTable b(large);
  EXPECT_GT(b.memory_bytes(), a.memory_bytes());
  // Paper layout: ~one GlobalPeptideId per peptide plus inverse arrays.
  EXPECT_GE(b.memory_bytes(), 10000u * sizeof(GlobalPeptideId));
}

TEST(MappingTable, DefaultConstructedIsEmpty) {
  const MappingTable table;
  EXPECT_EQ(table.total_peptides(), 0u);
  EXPECT_EQ(table.num_ranks(), 0);
}

}  // namespace
}  // namespace lbe::index
