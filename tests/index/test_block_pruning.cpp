// Block-max pruning (format v5 bound metadata): bound construction,
// serialization round trips, corruption handling, and — the property the
// whole feature rests on — exact candidate equivalence between the pruned
// and unpruned walks, raw and packed, flat and chunked.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <limits>
#include <sstream>
#include <string>
#include <vector>

#include "common/error.hpp"
#include "index/chunked_index.hpp"
#include "index/posting_codec.hpp"
#include "index/slm_index.hpp"
#include "synth/workload.hpp"
#include "theospec/fragmenter.hpp"

namespace lbe::index {
namespace {

class BlockPruningTest : public ::testing::Test {
 protected:
  BlockPruningTest() {
    // Coarse 1.0 Da bins pile enough postings per bin that the 128-posting
    // codec blocks — the pruning granule — actually partition bins.
    params_.resolution = 1.0;
    params_.max_fragment_mz = 2000.0;
    params_.fragments.max_fragment_charge = 1;
    query_.fragment_tolerance = 1.0;
    query_.shared_peak_min = 4;
    query_.prune_blocks = true;
  }

  PeptideStore make_store(const std::vector<std::string>& seqs) {
    PeptideStore store(&mods_);
    for (const auto& s : seqs) store.add(chem::Peptide(s), mods_);
    return store;
  }

  // The open-search bench workload in miniature: PTM-shifted queries over
  // a dense synthetic peptide set. Built once, shared by every test.
  static const synth::Workload& workload() {
    static const synth::Workload w = [] {
      synth::WorkloadParams p;
      p.target_entries = 4000;
      p.num_queries = 8;
      p.seed = 2019;
      p.spectra.ptm_shift_fraction = 0.5;
      p.variants.max_mod_residues = 5;
      p.variants.max_variants_per_peptide = 64;
      return synth::make_workload(p);
    }();
    return w;
  }

  PeptideStore workload_store() {
    PeptideStore store(&mods_);
    for (const auto& seq : workload().base_peptides) {
      store.add(chem::Peptide(seq), mods_);
    }
    return store;
  }

  static bool same_candidates(const std::vector<Candidate>& a,
                              const std::vector<Candidate>& b) {
    if (a.size() != b.size()) return false;
    for (std::size_t i = 0; i < a.size(); ++i) {
      if (a[i].peptide != b[i].peptide ||
          a[i].shared_peaks != b[i].shared_peaks ||
          a[i].matched_intensity != b[i].matched_intensity) {
        return false;
      }
    }
    return true;
  }

  chem::ModificationSet mods_ = chem::ModificationSet::paper_default();
  IndexParams params_;
  QueryParams query_;
};

TEST_F(BlockPruningTest, BoundsComputedAtBuild) {
  const auto store = make_store({"PEPTIDEK"});
  const SlmIndex index(store, mods_, params_);
  const auto bounds = index.block_bounds();
  const std::uint64_t expect_blocks =
      (index.num_postings() + codec::kBlockValues - 1) / codec::kBlockValues;
  ASSERT_EQ(bounds.size(), expect_blocks);
  ASSERT_GE(bounds.size(), 1u);

  // One peptide: every block's mass range brackets its mass, and no block
  // can claim more postings for one peptide than the index holds.
  const Mass mass = store.mass(0);
  for (const BlockBound& bound : bounds) {
    EXPECT_LE(static_cast<double>(bound.mass_lo), mass);
    EXPECT_GE(static_cast<double>(bound.mass_hi), mass);
    EXPECT_GE(bound.max_frags, 1u);
    EXPECT_LE(bound.max_frags, index.num_postings());
    EXPECT_EQ(bound.reserved, 0u);
  }
  // The full index is one peptide, so some block must see its whole
  // posting share.
  std::uint32_t max_seen = 0;
  for (const BlockBound& bound : bounds) {
    max_seen = std::max(max_seen, bound.max_frags);
  }
  const std::uint64_t last_block_size =
      index.num_postings() - (bounds.size() - 1) * codec::kBlockValues;
  EXPECT_GE(max_seen, std::min<std::uint64_t>(last_block_size,
                                              codec::kBlockValues));
}

TEST_F(BlockPruningTest, BoundInvariantsOnDenseIndex) {
  const auto store = workload_store();
  const SlmIndex index(store, mods_, params_);
  ASSERT_GT(index.block_bounds().size(), 4u);
  for (const BlockBound& bound : index.block_bounds()) {
    EXPECT_TRUE(std::isfinite(bound.mass_lo));
    EXPECT_TRUE(std::isfinite(bound.mass_hi));
    EXPECT_LE(bound.mass_lo, bound.mass_hi);
    EXPECT_GE(bound.max_frags, 1u);
    EXPECT_EQ(bound.reserved, 0u);
  }
}

// The core exactness property: with a finite precursor window, the pruned
// walk must emit candidate-for-candidate (order and bits) what the
// unpruned walk emits, while actually skipping blocks.
TEST_F(BlockPruningTest, MassPruningIsExactOnRawAndPackedIndexes) {
  const auto store = workload_store();
  SlmIndex index(store, mods_, params_);

  for (const bool packed : {false, true}) {
    if (packed) index.compress_in_memory();
    std::uint64_t total_pruned = 0;
    for (const double window : {5.0, 100.0}) {
      QueryParams pruned = query_;
      pruned.precursor_tolerance = window;
      QueryParams plain = pruned;
      plain.prune_blocks = false;

      for (const auto& spectrum : workload().queries) {
        std::vector<Candidate> out_pruned;
        std::vector<Candidate> out_plain;
        QueryWork work_pruned;
        QueryWork work_plain;
        index.query(spectrum, pruned, out_pruned, work_pruned);
        index.query(spectrum, plain, out_plain, work_plain);
        EXPECT_TRUE(same_candidates(out_pruned, out_plain))
            << "packed=" << packed << " window=" << window;
        EXPECT_EQ(work_plain.blocks_pruned, 0u);
        EXPECT_EQ(work_plain.spans_pruned, 0u);
        // Pruning only ever removes walked work.
        EXPECT_LE(work_pruned.postings_touched, work_plain.postings_touched);
        total_pruned += work_pruned.blocks_pruned;
      }
    }
    EXPECT_GT(total_pruned, 0u) << "packed=" << packed
                                << ": mass pruning never fired (vacuous)";
  }
}

// Candidate sets must also agree with the pre-batching reference walk —
// the oracle that predates both batching and pruning. Order differs by
// contract, so compare (peptide, shared_peaks) multisets.
TEST_F(BlockPruningTest, PrunedWalkMatchesReferenceOracle) {
  const auto store = workload_store();
  const SlmIndex index(store, mods_, params_);
  QueryParams pruned = query_;
  pruned.precursor_tolerance = 50.0;

  QueryArena arena;
  for (const auto& spectrum : workload().queries) {
    std::vector<Candidate> batched;
    std::vector<Candidate> reference;
    QueryWork work;
    index.query(spectrum, pruned, batched, work, arena);
    index.query_reference(spectrum, pruned, reference, work, arena);

    const auto key = [](const Candidate& c) {
      return std::pair<LocalPeptideId, std::uint32_t>{c.peptide,
                                                      c.shared_peaks};
    };
    std::vector<std::pair<LocalPeptideId, std::uint32_t>> a;
    std::vector<std::pair<LocalPeptideId, std::uint32_t>> b;
    for (const auto& c : batched) a.push_back(key(c));
    for (const auto& c : reference) b.push_back(key(c));
    std::sort(a.begin(), a.end());
    std::sort(b.begin(), b.end());
    EXPECT_EQ(a, b);
  }
}

// The score-threshold half: once earlier (lighter) chunks have produced K
// final candidates, later chunks' blocks whose score upper bound cannot
// displace the K-th are skipped — even on a fully open window, where mass
// bounds exclude nothing. Light glycine-rich peptides (many fragments,
// strong self-match) fill chunk 1; heavy tryptophan 5-mers (few fragments
// each, so a low block score bound) fill chunk 2.
TEST_F(BlockPruningTest, ScoreFloorPrunesLaterChunks) {
  std::vector<std::string> seqs;
  const std::string strong = "GGGGGGGGGGGK";  // light, 22 postings
  seqs.push_back(strong);
  for (const char a : {'A', 'S', 'P', 'V', 'T', 'L', 'N', 'Q'}) {
    seqs.push_back(std::string("GGGGGGGGGG") + a + "K");  // light fillers
  }
  std::vector<std::string> heavy;
  for (const char a : {'A', 'S', 'P', 'V', 'T', 'L', 'N', 'Q', 'G', 'E'}) {
    heavy.push_back(std::string("WWWW") + a + "K");  // ~1100+ Da, 10 postings
  }
  seqs.insert(seqs.end(), heavy.begin(), heavy.end());

  ChunkingParams chunking;
  chunking.max_chunk_entries = 9;  // all light peptides, then all heavy
  const ChunkedIndex index(make_store(seqs), mods_, params_, chunking);
  ASSERT_EQ(index.num_chunks(), 3u);
  ASSERT_LT(index.chunk_mass_range(0).second,
            index.chunk_mass_range(1).first);

  // Query: the strong peptide's own spectrum, plus one fragment peak per
  // heavy peptide so the span walk genuinely reaches chunk 2's postings
  // instead of never touching them.
  chem::Spectrum spectrum =
      theospec::theoretical_spectrum(chem::Peptide(strong), mods_,
                                     params_.fragments);
  chem::Spectrum query;
  for (std::size_t p = 0; p < spectrum.size(); ++p) {
    query.add_peak(spectrum.mz(p), spectrum.intensity(p));
  }
  for (const auto& seq : heavy) {
    const auto fragments = theospec::fragment_peptide(
        chem::Peptide(seq), mods_, params_.fragments);
    query.add_peak(fragments[fragments.size() / 2].mz, 1.0f);
  }
  query.precursor = spectrum.precursor;
  query.finalize();

  QueryParams pruned = query_;
  pruned.precursor_tolerance = std::numeric_limits<double>::infinity();
  pruned.prune_top_k = 1;
  QueryParams plain = pruned;
  plain.prune_blocks = false;

  std::vector<Candidate> out_pruned;
  std::vector<Candidate> out_plain;
  QueryWork work_pruned;
  QueryWork work_plain;
  index.query(query, pruned, out_pruned, work_pruned);
  index.query(query, plain, out_plain, work_plain);

  // Score pruning's exactness contract is at the reported-top-K level: a
  // pruned candidate list may drop (or under-count) peptides that provably
  // cannot displace the K-th candidate, so compare the K = 1 winners, not
  // the full lists.
  const auto best = [](const std::vector<Candidate>& out) {
    return *std::max_element(
        out.begin(), out.end(), [](const Candidate& a, const Candidate& b) {
          return candidate_filter_score(a.shared_peaks, a.matched_intensity) <
                 candidate_filter_score(b.shared_peaks, b.matched_intensity);
        });
  };
  ASSERT_FALSE(out_pruned.empty());
  ASSERT_FALSE(out_plain.empty());
  const Candidate top_pruned = best(out_pruned);
  const Candidate top_plain = best(out_plain);
  EXPECT_EQ(top_pruned.peptide, top_plain.peptide);
  EXPECT_EQ(top_pruned.shared_peaks, top_plain.shared_peaks);
  EXPECT_EQ(top_pruned.matched_intensity, top_plain.matched_intensity);
  EXPECT_GT(work_pruned.blocks_pruned, 0u)
      << "score floor never pruned a block (vacuous)";
  EXPECT_EQ(work_plain.blocks_pruned, 0u);
  EXPECT_LT(work_pruned.postings_touched, work_plain.postings_touched);
}

TEST_F(BlockPruningTest, SaveLoadRoundTripPreservesBounds) {
  const auto store = workload_store();
  const SlmIndex built(store, mods_, params_);
  std::stringstream stream;
  built.save(stream);
  const SlmIndex loaded = SlmIndex::load(stream, store, mods_, params_);

  const auto a = built.block_bounds();
  const auto b = loaded.block_bounds();
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].mass_lo, b[i].mass_lo);
    EXPECT_EQ(a[i].mass_hi, b[i].mass_hi);
    EXPECT_EQ(a[i].max_frags, b[i].max_frags);
  }

  // And the loaded index prunes exactly like the built one.
  QueryParams pruned = query_;
  pruned.precursor_tolerance = 50.0;
  for (const auto& spectrum : workload().queries) {
    std::vector<Candidate> out_built;
    std::vector<Candidate> out_loaded;
    QueryWork wb;
    QueryWork wl;
    built.query(spectrum, pruned, out_built, wb);
    loaded.query(spectrum, pruned, out_loaded, wl);
    EXPECT_TRUE(same_candidates(out_built, out_loaded));
    EXPECT_EQ(wb.blocks_pruned, wl.blocks_pruned);
  }
}

TEST_F(BlockPruningTest, CorruptedBoundBytesAreIoError) {
  const auto store = make_store({"PEPTIDEK", "MKWVTFISLLK", "GGGGGGK"});
  const SlmIndex index(store, mods_, params_);
  std::stringstream stream;
  index.save(stream);
  std::string bytes = stream.str();

  // The BlockBound records sit at the tail of the arrays payload; flip one
  // byte there. Whether the container CRC or the bound validation catches
  // it, the contract is the same: IoError, never a silently wrong bound.
  ASSERT_GT(bytes.size(), 64u);
  bytes[bytes.size() - 48] ^= 0x40;
  std::istringstream corrupted(bytes);
  EXPECT_THROW(SlmIndex::load(corrupted, store, mods_, params_), IoError);

  // Truncation inside the bounds region is IoError too.
  std::istringstream truncated(stream.str().substr(0, bytes.size() - 24));
  EXPECT_THROW(SlmIndex::load(truncated, store, mods_, params_), IoError);
}

}  // namespace
}  // namespace lbe::index
