// Round-trip tests for the on-disk index format (the paper's disk-resident
// chunks): every component — store, SLM index, chunked index, mapping
// table, full per-rank bundle — survives save/load bit-exactly, queries
// agree, and corrupted/mismatched files (bad magic, wrong version,
// truncation, flipped bits anywhere) are rejected with IoError.
#include <gtest/gtest.h>

#include <filesystem>
#include <sstream>

#include "common/binary_io.hpp"
#include "index/serialize.hpp"
#include "theospec/fragmenter.hpp"

namespace lbe::index {
namespace {

class SerializeTest : public ::testing::Test {
 protected:
  SerializeTest() {
    params_.resolution = 0.01;
    params_.max_fragment_mz = 2000.0;
    params_.fragments.max_fragment_charge = 1;
  }

  PeptideStore make_store() {
    PeptideStore store(&mods_);
    store.add(chem::Peptide("PEPTIDEK"), mods_);
    store.add(chem::Peptide("MKWVTFISLLK"), mods_);
    store.add(chem::Peptide("MGGGK", {{0, 2}}, mods_), mods_);  // modified
    store.add(chem::Peptide("GGGGGGK"), mods_);
    return store;
  }

  chem::ModificationSet mods_ = chem::ModificationSet::paper_default();
  IndexParams params_;
};

TEST_F(SerializeTest, StoreRoundTrip) {
  const PeptideStore original = make_store();
  std::stringstream buffer;
  original.save(buffer);
  const PeptideStore loaded = PeptideStore::load(buffer, &mods_);
  ASSERT_EQ(loaded.size(), original.size());
  for (LocalPeptideId id = 0; id < original.size(); ++id) {
    EXPECT_EQ(loaded.materialize(id), original.materialize(id));
    EXPECT_DOUBLE_EQ(loaded.mass(id), original.mass(id));
  }
}

TEST_F(SerializeTest, EmptyStoreRoundTrip) {
  const PeptideStore empty(&mods_);
  std::stringstream buffer;
  empty.save(buffer);
  const PeptideStore loaded = PeptideStore::load(buffer, &mods_);
  EXPECT_EQ(loaded.size(), 0u);
}

TEST_F(SerializeTest, StoreLoadRejectsTruncation) {
  const PeptideStore original = make_store();
  std::stringstream buffer;
  original.save(buffer);
  std::string bytes = buffer.str();
  bytes.resize(bytes.size() / 2);
  std::istringstream truncated(bytes);
  EXPECT_THROW(PeptideStore::load(truncated, &mods_), IoError);
}

TEST_F(SerializeTest, ChunkedIndexRoundTripQueriesAgree) {
  ChunkingParams chunking;
  chunking.max_chunk_entries = 2;  // multiple chunks exercised
  const ChunkedIndex original(make_store(), mods_, params_, chunking);
  std::stringstream buffer;
  original.save(buffer);
  const auto loaded = ChunkedIndex::load(buffer, mods_, params_);

  EXPECT_EQ(loaded->num_chunks(), original.num_chunks());
  EXPECT_EQ(loaded->num_postings(), original.num_postings());
  EXPECT_EQ(loaded->num_peptides(), original.num_peptides());

  QueryParams filter;
  filter.shared_peak_min = 1;
  for (const char* seq : {"PEPTIDEK", "MKWVTFISLLK", "GGGGGGK"}) {
    const auto spectrum = theospec::theoretical_spectrum(
        chem::Peptide(seq), mods_, params_.fragments);
    std::vector<Candidate> a;
    std::vector<Candidate> b;
    QueryWork wa;
    QueryWork wb;
    original.query(spectrum, filter, a, wa);
    loaded->query(spectrum, filter, b, wb);
    ASSERT_EQ(a.size(), b.size()) << seq;
    for (std::size_t i = 0; i < a.size(); ++i) {
      EXPECT_EQ(a[i].peptide, b[i].peptide);
      EXPECT_EQ(a[i].shared_peaks, b[i].shared_peaks);
      EXPECT_FLOAT_EQ(a[i].matched_intensity, b[i].matched_intensity);
    }
    EXPECT_EQ(wa.postings_touched, wb.postings_touched);
  }
}

TEST_F(SerializeTest, LoadRejectsBadMagic) {
  std::stringstream buffer;
  buffer << "definitely not an index";
  EXPECT_THROW(ChunkedIndex::load(buffer, mods_, params_), IoError);
}

TEST_F(SerializeTest, LoadRejectsDifferentParams) {
  const ChunkedIndex original(make_store(), mods_, params_,
                              ChunkingParams{});
  std::stringstream buffer;
  original.save(buffer);
  IndexParams other = params_;
  other.resolution = 0.02;
  EXPECT_THROW(ChunkedIndex::load(buffer, mods_, other), IoError);
}

TEST_F(SerializeTest, FileRoundTripAndMissingFile) {
  const ChunkedIndex original(make_store(), mods_, params_,
                              ChunkingParams{});
  const std::string path = ::testing::TempDir() + "/lbe_index.bin";
  original.save_file(path);
  const auto loaded = ChunkedIndex::load_file(path, mods_, params_);
  EXPECT_EQ(loaded->num_postings(), original.num_postings());
  EXPECT_THROW(ChunkedIndex::load_file("/nonexistent/x.bin", mods_, params_),
               IoError);
}

TEST_F(SerializeTest, LoadedIndexMemoryAccountingSane) {
  const ChunkedIndex original(make_store(), mods_, params_,
                              ChunkingParams{});
  std::stringstream buffer;
  original.save(buffer);
  const auto loaded = ChunkedIndex::load(buffer, mods_, params_);
  // Scorecards are lazily sized, so loaded <= original is possible; both
  // must at least cover the postings.
  EXPECT_GE(loaded->memory_bytes(),
            loaded->num_postings() * sizeof(LocalPeptideId));
}

TEST_F(SerializeTest, SlmIndexRoundTrip) {
  const PeptideStore store = make_store();
  const SlmIndex original(store, mods_, params_);
  std::stringstream buffer;
  original.save(buffer);
  const SlmIndex loaded = SlmIndex::load(buffer, store, mods_, params_);
  EXPECT_EQ(loaded.num_postings(), original.num_postings());

  QueryParams filter;
  filter.shared_peak_min = 1;
  const auto spectrum = theospec::theoretical_spectrum(
      chem::Peptide("PEPTIDEK"), mods_, params_.fragments);
  std::vector<Candidate> a;
  std::vector<Candidate> b;
  QueryWork wa;
  QueryWork wb;
  original.query(spectrum, filter, a, wa);
  loaded.query(spectrum, filter, b, wb);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].peptide, b[i].peptide);
    EXPECT_EQ(a[i].shared_peaks, b[i].shared_peaks);
  }
}

TEST_F(SerializeTest, SlmIndexLoadRejectsDifferentParams) {
  const PeptideStore store = make_store();
  const SlmIndex original(store, mods_, params_);
  std::stringstream buffer;
  original.save(buffer);
  IndexParams other = params_;
  other.fragments.max_fragment_charge = 2;
  EXPECT_THROW(SlmIndex::load(buffer, store, mods_, other), IoError);
}

TEST_F(SerializeTest, MappingTableRoundTrip) {
  const MappingTable original({{0, 2, 5}, {1, 4}, {3}});
  std::stringstream buffer;
  original.save(buffer);
  const MappingTable loaded = MappingTable::load(buffer);
  EXPECT_TRUE(loaded == original);
  EXPECT_EQ(loaded.num_ranks(), 3);
  EXPECT_EQ(loaded.total_peptides(), 6u);
  for (GlobalPeptideId g = 0; g < 6; ++g) {
    EXPECT_EQ(loaded.rank_of(g), original.rank_of(g)) << g;
    EXPECT_EQ(loaded.local_of(g), original.local_of(g)) << g;
  }
  EXPECT_EQ(loaded.to_global(1, 1), 4u);
}

TEST_F(SerializeTest, LoadRejectsWrongFormatVersion) {
  // A stream claiming version 1 (the pre-checksum layout) must be refused,
  // not misparsed: the versioning policy is regenerate, never migrate.
  std::stringstream buffer;
  bin::write_pod(buffer, serialize::kMagic);
  bin::write_pod(buffer, std::uint32_t{1});
  bin::write_pod(buffer,
                 static_cast<std::uint32_t>(serialize::Kind::kChunkedIndex));
  EXPECT_THROW(ChunkedIndex::load(buffer, mods_, params_), IoError);
}

TEST_F(SerializeTest, StaleVersionAndCorruptionAreDistinctErrors) {
  // The pipeline's warm-start path treats FormatVersionError as
  // "regenerate quietly" but lets any other IoError propagate, so the two
  // must stay distinguishable: a stale version field throws the subtype, a
  // flipped payload bit throws plain IoError.
  const ChunkedIndex original(make_store(), mods_, params_,
                              ChunkingParams{});
  std::stringstream buffer;
  original.save(buffer);
  const std::string bytes = buffer.str();

  std::string stale = bytes;
  stale[4] = 3;  // version u32 follows the 4-byte magic
  std::istringstream stale_in(stale);
  EXPECT_THROW(ChunkedIndex::load(stale_in, mods_, params_),
               serialize::FormatVersionError);

  std::string corrupt = bytes;
  corrupt[bytes.size() / 2] =
      static_cast<char>(corrupt[bytes.size() / 2] ^ 0x20);
  std::istringstream corrupt_in(corrupt);
  try {
    ChunkedIndex::load(corrupt_in, mods_, params_);
    FAIL() << "corrupted stream loaded successfully";
  } catch (const serialize::FormatVersionError&) {
    FAIL() << "payload corruption misreported as a version mismatch";
  } catch (const IoError&) {
    // Expected: corruption is fatal, not a rebuild trigger.
  }
}

TEST_F(SerializeTest, LoadRejectsWrongComponentKind) {
  const PeptideStore store = make_store();
  std::stringstream buffer;
  store.save(buffer);
  // A valid peptide-store stream is not a chunked index.
  EXPECT_THROW(ChunkedIndex::load(buffer, mods_, params_), IoError);
}

TEST_F(SerializeTest, ChunkedLoadRejectsTrailingBytes) {
  // Both load modes must agree on validity: map_file requires the chunk
  // extents to account for the whole file, so the eager stream load must
  // reject appended garbage too.
  const ChunkedIndex original(make_store(), mods_, params_,
                              ChunkingParams{});
  std::stringstream buffer;
  original.save(buffer);
  buffer << "garbage";
  EXPECT_THROW(ChunkedIndex::load(buffer, mods_, params_), IoError);
}

TEST_F(SerializeTest, ChunkedLoadRejectsTruncation) {
  const ChunkedIndex original(make_store(), mods_, params_,
                              ChunkingParams{});
  std::stringstream buffer;
  original.save(buffer);
  std::string bytes = buffer.str();
  bytes.resize(bytes.size() - bytes.size() / 3);
  std::istringstream truncated(bytes);
  EXPECT_THROW(ChunkedIndex::load(truncated, mods_, params_), IoError);
}

TEST_F(SerializeTest, EveryFlippedBitIsDetected) {
  const ChunkedIndex original(make_store(), mods_, params_,
                              ChunkingParams{});
  std::stringstream buffer;
  original.save(buffer);
  const std::string bytes = buffer.str();
  ASSERT_GT(bytes.size(), 64u);

  // Flip one bit at a spread of positions covering the header, the section
  // frames and the payloads; every single one must surface as IoError —
  // never UB, never a silently different index.
  for (std::size_t pos = 0; pos < bytes.size();
       pos += 1 + bytes.size() / 97) {
    std::string corrupt = bytes;
    corrupt[pos] = static_cast<char>(corrupt[pos] ^ 0x10);
    std::istringstream in(corrupt);
    EXPECT_THROW(ChunkedIndex::load(in, mods_, params_), IoError)
        << "flipped bit at byte " << pos << " went undetected";
  }
}

TEST_F(SerializeTest, MappingTableRejectsFlippedBit) {
  const MappingTable original({{0, 2}, {1, 3}});
  std::stringstream buffer;
  original.save(buffer);
  std::string bytes = buffer.str();
  // Flip inside the payload (past the 12-byte header and 16-byte frame).
  bytes[bytes.size() - 3] = static_cast<char>(bytes[bytes.size() - 3] ^ 0x01);
  std::istringstream in(bytes);
  EXPECT_THROW(MappingTable::load(in), IoError);
}

TEST_F(SerializeTest, IndexBundleRoundTrip) {
  // Two ranks, hand-carved: rank 0 owns globals {0, 2}, rank 1 owns {1, 3}.
  IndexBundle bundle;
  bundle.lbe.partition.ranks = 2;
  bundle.index_params = params_;
  bundle.mapping = MappingTable({{0, 2}, {1, 3}});
  for (int rank = 0; rank < 2; ++rank) {
    PeptideStore store(&mods_);
    store.add(chem::Peptide(rank == 0 ? "PEPTIDEK" : "MKWVTFISLLK"), mods_);
    store.add(chem::Peptide(rank == 0 ? "GGGGGGK" : "MGGGK"), mods_);
    bundle.per_rank.push_back(std::make_unique<ChunkedIndex>(
        std::move(store), mods_, params_, ChunkingParams{}));
  }

  const std::string dir = ::testing::TempDir() + "/lbe_bundle_test";
  save_index_bundle(dir, bundle);
  const IndexBundle loaded = load_index_bundle(dir, mods_);

  EXPECT_TRUE(loaded.mapping == bundle.mapping);
  EXPECT_TRUE(serialize::same_lbe_params(loaded.lbe, bundle.lbe));
  EXPECT_TRUE(serialize::same_index_params(loaded.index_params, params_));
  ASSERT_EQ(loaded.ranks(), 2);
  for (int rank = 0; rank < 2; ++rank) {
    const auto& a = *bundle.per_rank[static_cast<std::size_t>(rank)];
    const auto& b = *loaded.per_rank[static_cast<std::size_t>(rank)];
    EXPECT_EQ(b.num_peptides(), a.num_peptides());
    EXPECT_EQ(b.num_postings(), a.num_postings());
  }
  std::filesystem::remove_all(dir);
}

TEST_F(SerializeTest, BundleLoadRejectsMissingRankFile) {
  IndexBundle bundle;
  bundle.lbe.partition.ranks = 2;
  bundle.index_params = params_;
  bundle.mapping = MappingTable({{0, 2}, {1, 3}});
  for (int rank = 0; rank < 2; ++rank) {
    PeptideStore store(&mods_);
    store.add(chem::Peptide("PEPTIDEK"), mods_);
    store.add(chem::Peptide("GGGGGGK"), mods_);
    bundle.per_rank.push_back(std::make_unique<ChunkedIndex>(
        std::move(store), mods_, params_, ChunkingParams{}));
  }
  const std::string dir = ::testing::TempDir() + "/lbe_bundle_missing";
  save_index_bundle(dir, bundle);
  std::filesystem::remove(bundle_rank_path(dir, 1));
  EXPECT_THROW(load_index_bundle(dir, mods_), IoError);
  std::filesystem::remove_all(dir);
}

}  // namespace
}  // namespace lbe::index
