// Round-trip tests for the on-disk index format (the paper's disk-resident
// chunks): store + chunked index survive save/load bit-exactly, queries
// agree, and corrupted/mismatched files are rejected.
#include <gtest/gtest.h>

#include <sstream>

#include "index/chunked_index.hpp"
#include "theospec/fragmenter.hpp"

namespace lbe::index {
namespace {

class SerializeTest : public ::testing::Test {
 protected:
  SerializeTest() {
    params_.resolution = 0.01;
    params_.max_fragment_mz = 2000.0;
    params_.fragments.max_fragment_charge = 1;
  }

  PeptideStore make_store() {
    PeptideStore store(&mods_);
    store.add(chem::Peptide("PEPTIDEK"), mods_);
    store.add(chem::Peptide("MKWVTFISLLK"), mods_);
    store.add(chem::Peptide("MGGGK", {{0, 2}}, mods_), mods_);  // modified
    store.add(chem::Peptide("GGGGGGK"), mods_);
    return store;
  }

  chem::ModificationSet mods_ = chem::ModificationSet::paper_default();
  IndexParams params_;
};

TEST_F(SerializeTest, StoreRoundTrip) {
  const PeptideStore original = make_store();
  std::stringstream buffer;
  original.save(buffer);
  const PeptideStore loaded = PeptideStore::load(buffer, &mods_);
  ASSERT_EQ(loaded.size(), original.size());
  for (LocalPeptideId id = 0; id < original.size(); ++id) {
    EXPECT_EQ(loaded.materialize(id), original.materialize(id));
    EXPECT_DOUBLE_EQ(loaded.mass(id), original.mass(id));
  }
}

TEST_F(SerializeTest, EmptyStoreRoundTrip) {
  const PeptideStore empty(&mods_);
  std::stringstream buffer;
  empty.save(buffer);
  const PeptideStore loaded = PeptideStore::load(buffer, &mods_);
  EXPECT_EQ(loaded.size(), 0u);
}

TEST_F(SerializeTest, StoreLoadRejectsTruncation) {
  const PeptideStore original = make_store();
  std::stringstream buffer;
  original.save(buffer);
  std::string bytes = buffer.str();
  bytes.resize(bytes.size() / 2);
  std::istringstream truncated(bytes);
  EXPECT_THROW(PeptideStore::load(truncated, &mods_), IoError);
}

TEST_F(SerializeTest, ChunkedIndexRoundTripQueriesAgree) {
  ChunkingParams chunking;
  chunking.max_chunk_entries = 2;  // multiple chunks exercised
  const ChunkedIndex original(make_store(), mods_, params_, chunking);
  std::stringstream buffer;
  original.save(buffer);
  const auto loaded = ChunkedIndex::load(buffer, mods_, params_);

  EXPECT_EQ(loaded->num_chunks(), original.num_chunks());
  EXPECT_EQ(loaded->num_postings(), original.num_postings());
  EXPECT_EQ(loaded->num_peptides(), original.num_peptides());

  QueryParams filter;
  filter.shared_peak_min = 1;
  for (const char* seq : {"PEPTIDEK", "MKWVTFISLLK", "GGGGGGK"}) {
    const auto spectrum = theospec::theoretical_spectrum(
        chem::Peptide(seq), mods_, params_.fragments);
    std::vector<Candidate> a;
    std::vector<Candidate> b;
    QueryWork wa;
    QueryWork wb;
    original.query(spectrum, filter, a, wa);
    loaded->query(spectrum, filter, b, wb);
    ASSERT_EQ(a.size(), b.size()) << seq;
    for (std::size_t i = 0; i < a.size(); ++i) {
      EXPECT_EQ(a[i].peptide, b[i].peptide);
      EXPECT_EQ(a[i].shared_peaks, b[i].shared_peaks);
      EXPECT_FLOAT_EQ(a[i].matched_intensity, b[i].matched_intensity);
    }
    EXPECT_EQ(wa.postings_touched, wb.postings_touched);
  }
}

TEST_F(SerializeTest, LoadRejectsBadMagic) {
  std::stringstream buffer;
  buffer << "definitely not an index";
  EXPECT_THROW(ChunkedIndex::load(buffer, mods_, params_), IoError);
}

TEST_F(SerializeTest, LoadRejectsDifferentParams) {
  const ChunkedIndex original(make_store(), mods_, params_,
                              ChunkingParams{});
  std::stringstream buffer;
  original.save(buffer);
  IndexParams other = params_;
  other.resolution = 0.02;
  EXPECT_THROW(ChunkedIndex::load(buffer, mods_, other), IoError);
}

TEST_F(SerializeTest, FileRoundTripAndMissingFile) {
  const ChunkedIndex original(make_store(), mods_, params_,
                              ChunkingParams{});
  const std::string path = ::testing::TempDir() + "/lbe_index.bin";
  original.save_file(path);
  const auto loaded = ChunkedIndex::load_file(path, mods_, params_);
  EXPECT_EQ(loaded->num_postings(), original.num_postings());
  EXPECT_THROW(ChunkedIndex::load_file("/nonexistent/x.bin", mods_, params_),
               IoError);
}

TEST_F(SerializeTest, LoadedIndexMemoryAccountingSane) {
  const ChunkedIndex original(make_store(), mods_, params_,
                              ChunkingParams{});
  std::stringstream buffer;
  original.save(buffer);
  const auto loaded = ChunkedIndex::load(buffer, mods_, params_);
  // Scorecards are lazily sized, so loaded <= original is possible; both
  // must at least cover the postings.
  EXPECT_GE(loaded->memory_bytes(),
            loaded->num_postings() * sizeof(LocalPeptideId));
}

}  // namespace
}  // namespace lbe::index
