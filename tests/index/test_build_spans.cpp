// Span construction at extreme tolerance widths. The batched query walk
// coalesces per-peak tolerance windows into maximal constant-coverage
// BinSpans (index/query_arena.hpp); these tests pin the edge geometry —
// windows covering the whole bin range, the tolerance_bins clamp, adjacent
// windows merging, and arena reuse across queries — by querying through the
// public API and inspecting the spans left in the caller's arena.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "index/binning.hpp"
#include "index/slm_index.hpp"

namespace lbe::index {
namespace {

class BuildSpansTest : public ::testing::Test {
 protected:
  BuildSpansTest() {
    params_.resolution = 1.0;
    params_.max_fragment_mz = 2000.0;
    params_.fragments.max_fragment_charge = 1;
    query_.shared_peak_min = 1;
  }

  PeptideStore make_store(const std::vector<std::string>& seqs) {
    PeptideStore store(&mods_);
    for (const auto& s : seqs) store.add(chem::Peptide(s), mods_);
    return store;
  }

  Binning binning() const {
    return Binning(params_.resolution, params_.max_fragment_mz);
  }

  /// Runs one query and returns the spans the walk built.
  const std::vector<BinSpan>& spans_for(const SlmIndex& index,
                                        const chem::Spectrum& spectrum) {
    std::vector<Candidate> out;
    QueryWork work;
    index.query(spectrum, query_, out, work, arena_);
    return arena_.spans;
  }

  static chem::Spectrum spectrum_of(
      const std::vector<std::pair<Mz, float>>& peaks) {
    chem::Spectrum spectrum;
    for (const auto& [mz, intensity] : peaks) {
      spectrum.add_peak(mz, intensity);
    }
    spectrum.finalize();
    return spectrum;
  }

  chem::ModificationSet mods_ = chem::ModificationSet::paper_default();
  IndexParams params_;
  QueryParams query_;
  QueryArena arena_;
};

TEST_F(BuildSpansTest, WindowCoveringAllBinsYieldsOneSpan) {
  const auto store = make_store({"PEPTIDEK"});
  const SlmIndex index(store, mods_, params_);
  // Tolerance wider than the whole indexed range: every peak's window
  // clamps to [0, num_bins) and the sweep merges them into a single span
  // whose multiplicity is the in-range peak count.
  query_.fragment_tolerance = 10.0 * params_.max_fragment_mz;
  const auto spectrum =
      spectrum_of({{100.0, 1.0f}, {500.0, 2.0f}, {1500.0, 4.0f}});
  const auto& spans = spans_for(index, spectrum);

  ASSERT_EQ(spans.size(), 1u);
  EXPECT_EQ(spans[0].lo, 0u);
  EXPECT_EQ(spans[0].hi, binning().num_bins());
  EXPECT_EQ(spans[0].multiplicity, 3u);
  EXPECT_EQ(spans[0].intensity, 7.0f);
}

TEST_F(BuildSpansTest, ToleranceBinsClampsAtNumBins) {
  const Binning binning = this->binning();
  // The clamp is what keeps a huge tolerance from overflowing MzBin in
  // the double -> u32 cast and from wrapping `center + tol` sums.
  EXPECT_EQ(binning.tolerance_bins(1e18), binning.num_bins());
  EXPECT_EQ(binning.tolerance_bins(0.0), 0u);

  const auto store = make_store({"PEPTIDEK"});
  const SlmIndex index(store, mods_, params_);
  query_.fragment_tolerance = 1e18;
  const auto& spans = spans_for(index, spectrum_of({{1000.0, 1.0f}}));
  ASSERT_EQ(spans.size(), 1u);
  EXPECT_EQ(spans[0].lo, 0u);
  EXPECT_EQ(spans[0].hi, binning.num_bins());
  EXPECT_EQ(spans[0].multiplicity, 1u);
}

TEST_F(BuildSpansTest, AdjacentWindowsCoalesceWithMultiplicityProfile) {
  const auto store = make_store({"PEPTIDEK"});
  const SlmIndex index(store, mods_, params_);
  query_.fragment_tolerance = 5.0;  // ±5 bins at r = 1.0

  const Binning binning = this->binning();
  const MzBin tol = binning.tolerance_bins(query_.fragment_tolerance);
  const Mz a = 100.0;
  const Mz b = 104.0;  // windows overlap by 7 bins
  const auto& spans = spans_for(index, spectrum_of({{a, 1.0f}, {b, 2.0f}}));

  const MzBin a_lo = binning.bin(a) - tol;
  const MzBin a_hi = binning.bin(a) + tol + 1;  // exclusive
  const MzBin b_lo = binning.bin(b) - tol;
  const MzBin b_hi = binning.bin(b) + tol + 1;
  ASSERT_LT(b_lo, a_hi) << "windows must overlap for this test";

  ASSERT_EQ(spans.size(), 3u);
  EXPECT_EQ(spans[0].lo, a_lo);
  EXPECT_EQ(spans[0].hi, b_lo);
  EXPECT_EQ(spans[0].multiplicity, 1u);
  EXPECT_EQ(spans[0].intensity, 1.0f);
  EXPECT_EQ(spans[1].lo, b_lo);
  EXPECT_EQ(spans[1].hi, a_hi);
  EXPECT_EQ(spans[1].multiplicity, 2u);
  EXPECT_EQ(spans[1].intensity, 3.0f);
  EXPECT_EQ(spans[2].lo, a_hi);
  EXPECT_EQ(spans[2].hi, b_hi);
  EXPECT_EQ(spans[2].multiplicity, 1u);
  EXPECT_EQ(spans[2].intensity, 2.0f);
}

TEST_F(BuildSpansTest, DisjointWindowsStaySeparate) {
  const auto store = make_store({"PEPTIDEK"});
  const SlmIndex index(store, mods_, params_);
  query_.fragment_tolerance = 1.0;
  const auto& spans =
      spans_for(index, spectrum_of({{100.0, 1.0f}, {900.0, 1.0f}}));
  ASSERT_EQ(spans.size(), 2u);
  EXPECT_EQ(spans[0].multiplicity, 1u);
  EXPECT_EQ(spans[1].multiplicity, 1u);
  EXPECT_LT(spans[0].hi, spans[1].lo);
}

TEST_F(BuildSpansTest, ArenaIsReusedAndSpansReplacedAcrossQueries) {
  const auto store = make_store({"PEPTIDEK"});
  const SlmIndex index(store, mods_, params_);

  // Wide query first: the arena's span scratch grows...
  query_.fragment_tolerance = 10.0 * params_.max_fragment_mz;
  const auto wide = spectrum_of({{100.0, 1.0f}, {500.0, 1.0f}});
  ASSERT_EQ(spans_for(index, wide).size(), 1u);

  // ...then a narrow query on the SAME arena must see only its own spans,
  // not stale wide-window state.
  query_.fragment_tolerance = 1.0;
  const auto narrow = spectrum_of({{100.0, 1.0f}, {900.0, 1.0f}});
  const auto& spans = spans_for(index, narrow);
  ASSERT_EQ(spans.size(), 2u);
  EXPECT_LT(spans[0].hi - spans[0].lo, 10u);

  // And an edge peak clamps its window at bin 0 without wrapping.
  query_.fragment_tolerance = 5.0;
  const auto& edge = spans_for(index, spectrum_of({{1.0, 1.0f}}));
  ASSERT_EQ(edge.size(), 1u);
  EXPECT_EQ(edge[0].lo, 0u);
}

}  // namespace
}  // namespace lbe::index
