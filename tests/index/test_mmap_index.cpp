// The mmap warm-start path (format v4): mapped indexes must answer queries
// identically to eagerly loaded ones — decoding bit-packed posting spans
// per query — materialize only the chunks a precursor window touches, and
// turn EVERY corruption — flipped bit (including inside a packed posting
// extent), truncation, wrong version — into IoError at map time or first
// touch, never a silently different result.
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <limits>
#include <sstream>
#include <thread>

#include "common/binary_io.hpp"
#include "common/error.hpp"
#include "index/serialize.hpp"
#include "theospec/fragmenter.hpp"

namespace lbe::index {
namespace {

namespace fs = std::filesystem;

class MmapIndexTest : public ::testing::Test {
 protected:
  MmapIndexTest() {
    params_.resolution = 0.01;
    params_.max_fragment_mz = 2000.0;
    params_.fragments.max_fragment_charge = 1;
  }

  PeptideStore make_store() {
    PeptideStore store(&mods_);
    store.add(chem::Peptide("PEPTIDEK"), mods_);
    store.add(chem::Peptide("MKWVTFISLLK"), mods_);
    store.add(chem::Peptide("MGGGK", {{0, 2}}, mods_), mods_);  // modified
    store.add(chem::Peptide("GGGGGGK"), mods_);
    store.add(chem::Peptide("AAAAAAGK"), mods_);
    store.add(chem::Peptide("WWWWWWK"), mods_);
    return store;
  }

  /// Saves a chunked index (2 entries per chunk => 3 chunks) to a file.
  std::string save_chunked(const std::string& name) {
    ChunkingParams chunking;
    chunking.max_chunk_entries = 2;
    const ChunkedIndex original(make_store(), mods_, params_, chunking);
    const std::string path = ::testing::TempDir() + "/" + name;
    original.save_file(path);
    return path;
  }

  chem::Spectrum theo(const std::string& seq) {
    return theospec::theoretical_spectrum(chem::Peptide(seq), mods_,
                                          params_.fragments);
  }

  chem::ModificationSet mods_ = chem::ModificationSet::paper_default();
  IndexParams params_;
};

TEST_F(MmapIndexTest, MappedQueriesAgreeWithEagerLoad) {
  const std::string path = save_chunked("mmap_roundtrip.idx");
  const auto eager = ChunkedIndex::load_file(path, mods_, params_);
  const auto mapped = ChunkedIndex::map_file(path, mods_, params_);

  EXPECT_TRUE(mapped->mapped());
  EXPECT_TRUE(mapped->store().mapped());
  EXPECT_EQ(mapped->num_chunks(), eager->num_chunks());
  EXPECT_EQ(mapped->num_peptides(), eager->num_peptides());

  QueryParams filter;
  filter.shared_peak_min = 1;
  for (const char* seq : {"PEPTIDEK", "MKWVTFISLLK", "GGGGGGK", "WWWWWWK"}) {
    const auto spectrum = theo(seq);
    std::vector<Candidate> a;
    std::vector<Candidate> b;
    QueryWork wa;
    QueryWork wb;
    eager->query(spectrum, filter, a, wa);
    mapped->query(spectrum, filter, b, wb);
    ASSERT_EQ(a.size(), b.size()) << seq;
    for (std::size_t i = 0; i < a.size(); ++i) {
      EXPECT_EQ(a[i].peptide, b[i].peptide);
      EXPECT_EQ(a[i].shared_peaks, b[i].shared_peaks);
      EXPECT_FLOAT_EQ(a[i].matched_intensity, b[i].matched_intensity);
    }
    EXPECT_EQ(wa.postings_touched, wb.postings_touched);
  }
  // num_postings forces full materialization; totals must agree.
  EXPECT_EQ(mapped->num_postings(), eager->num_postings());
  EXPECT_EQ(mapped->num_chunks_loaded(), mapped->num_chunks());
}

TEST_F(MmapIndexTest, NarrowWindowMaterializesOnlyIntersectingChunks) {
  const std::string path = save_chunked("mmap_lazy.idx");
  const auto mapped = ChunkedIndex::map_file(path, mods_, params_);
  ASSERT_EQ(mapped->num_chunks(), 3u);
  EXPECT_EQ(mapped->num_chunks_loaded(), 0u);

  // A tight precursor window around one stored mass touches one chunk.
  auto spectrum = theo("PEPTIDEK");
  QueryParams narrow;
  narrow.shared_peak_min = 1;
  narrow.precursor_tolerance = 0.5;
  std::vector<Candidate> candidates;
  QueryWork work;
  mapped->query(spectrum, narrow, candidates, work);
  EXPECT_FALSE(candidates.empty());
  EXPECT_GE(mapped->num_chunks_loaded(), 1u);
  EXPECT_LT(mapped->num_chunks_loaded(), mapped->num_chunks());

  // The eager oracle agrees on the same narrow window.
  const auto eager = ChunkedIndex::load_file(path, mods_, params_);
  std::vector<Candidate> oracle;
  QueryWork oracle_work;
  eager->query(spectrum, narrow, oracle, oracle_work);
  ASSERT_EQ(candidates.size(), oracle.size());
  for (std::size_t i = 0; i < candidates.size(); ++i) {
    EXPECT_EQ(candidates[i].peptide, oracle[i].peptide);
    EXPECT_EQ(candidates[i].shared_peaks, oracle[i].shared_peaks);
  }
}

TEST_F(MmapIndexTest, ConcurrentFirstTouchIsSafe) {
  const std::string path = save_chunked("mmap_threads.idx");
  const auto mapped = ChunkedIndex::map_file(path, mods_, params_);
  const auto spectrum = theo("GGGGGGK");
  QueryParams filter;
  filter.shared_peak_min = 1;

  std::vector<Candidate> expected;
  {
    const auto eager = ChunkedIndex::load_file(path, mods_, params_);
    QueryWork work;
    eager->query(spectrum, filter, expected, work);
  }

  // Many threads race the open-search first touch of every chunk.
  std::vector<std::thread> threads;
  std::vector<std::vector<Candidate>> results(8);
  for (std::size_t t = 0; t < results.size(); ++t) {
    threads.emplace_back([&, t] {
      QueryArena arena;
      QueryWork work;
      mapped->query(spectrum, filter, results[t], work, arena);
    });
  }
  for (auto& thread : threads) thread.join();
  for (const auto& result : results) {
    ASSERT_EQ(result.size(), expected.size());
    for (std::size_t i = 0; i < result.size(); ++i) {
      EXPECT_EQ(result[i].peptide, expected[i].peptide);
      EXPECT_EQ(result[i].shared_peaks, expected[i].shared_peaks);
    }
  }
  EXPECT_EQ(mapped->num_chunks_loaded(), mapped->num_chunks());
}

TEST_F(MmapIndexTest, EveryFlippedBitFailsAtMapOrFirstTouch) {
  const std::string path = save_chunked("mmap_flip.idx");
  std::string bytes;
  {
    std::ifstream in(path, std::ios::binary);
    std::ostringstream buffer;
    buffer << in.rdbuf();
    bytes = buffer.str();
  }
  ASSERT_GT(bytes.size(), 128u);

  const std::string corrupt_path = ::testing::TempDir() + "/mmap_flip_c.idx";
  QueryParams open_filter;
  open_filter.shared_peak_min = 1;
  const auto spectrum = theo("PEPTIDEK");

  for (std::size_t pos = 0; pos < bytes.size();
       pos += 1 + bytes.size() / 139) {
    std::string corrupt = bytes;
    corrupt[pos] = static_cast<char>(corrupt[pos] ^ 0x08);
    {
      std::ofstream out(corrupt_path, std::ios::binary);
      out.write(corrupt.data(),
                static_cast<std::streamsize>(corrupt.size()));
    }
    // Map, then touch everything: any flipped bit must surface as IoError
    // by the time every chunk has been materialized (lazy chunks report at
    // first touch; metadata reports at map time).
    EXPECT_THROW(
        {
          const auto mapped =
              ChunkedIndex::map_file(corrupt_path, mods_, params_);
          std::vector<Candidate> candidates;
          QueryWork work;
          mapped->query(spectrum, open_filter, candidates, work);
          (void)mapped->num_postings();
        },
        IoError)
        << "flipped bit at byte " << pos << " went undetected";
  }
  fs::remove(corrupt_path);
}

TEST_F(MmapIndexTest, PackedExtentBitFlipFailsAtFirstTouch) {
  // A v4 chunk payload ends with its bit-packed posting stream, so the
  // file's trailing bytes sit inside the last chunk's packed extent (or
  // its checksummed padding). Flipping them must leave the map itself
  // clean — header, directory and store metadata are untouched — and
  // surface as IoError exactly when the lazy first touch materializes
  // (and checksums) that chunk, never as a quietly different decode.
  const std::string path = save_chunked("mmap_packed_flip.idx");
  std::string bytes;
  {
    std::ifstream in(path, std::ios::binary);
    std::ostringstream buffer;
    buffer << in.rdbuf();
    bytes = buffer.str();
  }
  const std::string corrupt_path =
      ::testing::TempDir() + "/mmap_packed_flip_c.idx";
  QueryParams open_filter;
  open_filter.shared_peak_min = 1;
  const auto spectrum = theo("PEPTIDEK");
  for (std::size_t back = 1; back <= 24; ++back) {
    std::string corrupt = bytes;
    corrupt[corrupt.size() - back] =
        static_cast<char>(corrupt[corrupt.size() - back] ^ 0x04);
    {
      std::ofstream out(corrupt_path, std::ios::binary);
      out.write(corrupt.data(),
                static_cast<std::streamsize>(corrupt.size()));
    }
    std::unique_ptr<ChunkedIndex> mapped;
    ASSERT_NO_THROW(mapped =
                        ChunkedIndex::map_file(corrupt_path, mods_, params_))
        << "metadata-only map rejected a payload flip " << back
        << " bytes from EOF";
    EXPECT_THROW(
        {
          std::vector<Candidate> candidates;
          QueryWork work;
          mapped->query(spectrum, open_filter, candidates, work);
          (void)mapped->num_postings();
        },
        IoError)
        << "flip " << back << " bytes from EOF went undetected";
  }
  fs::remove(corrupt_path);
}

TEST_F(MmapIndexTest, TruncationFailsAtMapOrFirstTouch) {
  const std::string path = save_chunked("mmap_trunc.idx");
  std::string bytes;
  {
    std::ifstream in(path, std::ios::binary);
    std::ostringstream buffer;
    buffer << in.rdbuf();
    bytes = buffer.str();
  }
  const std::string cut_path = ::testing::TempDir() + "/mmap_trunc_c.idx";
  for (const double fraction : {0.1, 0.4, 0.7, 0.95, 0.999}) {
    const auto keep = static_cast<std::size_t>(
        static_cast<double>(bytes.size()) * fraction);
    {
      std::ofstream out(cut_path, std::ios::binary);
      out.write(bytes.data(), static_cast<std::streamsize>(keep));
    }
    EXPECT_THROW(
        {
          const auto mapped =
              ChunkedIndex::map_file(cut_path, mods_, params_);
          (void)mapped->num_postings();
        },
        IoError)
        << "truncation to " << keep << " bytes went undetected";
  }
  fs::remove(cut_path);
}

TEST_F(MmapIndexTest, MapRejectsWrongVersionAndParams) {
  const std::string path = save_chunked("mmap_version.idx");
  // Patch the version field (bytes 4..8 of the header) to v2.
  std::string bytes;
  {
    std::ifstream in(path, std::ios::binary);
    std::ostringstream buffer;
    buffer << in.rdbuf();
    bytes = buffer.str();
  }
  bytes[4] = 2;
  const std::string v2_path = ::testing::TempDir() + "/mmap_version_c.idx";
  {
    std::ofstream out(v2_path, std::ios::binary);
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  }
  EXPECT_THROW(ChunkedIndex::map_file(v2_path, mods_, params_), IoError);
  fs::remove(v2_path);

  IndexParams other = params_;
  other.resolution = 0.02;
  EXPECT_THROW(ChunkedIndex::map_file(path, mods_, other), IoError);
  EXPECT_THROW(ChunkedIndex::map_file("/nonexistent/x.idx", mods_, params_),
               IoError);
}

TEST_F(MmapIndexTest, SavingAMappedIndexRoundTrips) {
  const std::string path = save_chunked("mmap_resave.idx");
  const auto mapped = ChunkedIndex::map_file(path, mods_, params_);
  // Saving materializes (and re-validates) every chunk.
  std::stringstream buffer;
  mapped->save(buffer);
  const auto reloaded = ChunkedIndex::load(buffer, mods_, params_);
  EXPECT_EQ(reloaded->num_postings(), mapped->num_postings());
  EXPECT_EQ(reloaded->num_chunks(), mapped->num_chunks());
}

TEST_F(MmapIndexTest, MappedBundleLoadMatchesEager) {
  // Two hand-carved ranks, loaded via both bundle modes.
  IndexBundle bundle;
  bundle.lbe.partition.ranks = 2;
  bundle.index_params = params_;
  bundle.chunking.max_chunk_entries = 2;
  bundle.mapping = MappingTable({{0, 2, 4}, {1, 3, 5}});
  for (int rank = 0; rank < 2; ++rank) {
    PeptideStore store(&mods_);
    store.add(chem::Peptide(rank == 0 ? "PEPTIDEK" : "MKWVTFISLLK"), mods_);
    store.add(chem::Peptide(rank == 0 ? "GGGGGGK" : "MGGGK"), mods_);
    store.add(chem::Peptide(rank == 0 ? "AAAAAAGK" : "WWWWWWK"), mods_);
    bundle.per_rank.push_back(std::make_unique<ChunkedIndex>(
        std::move(store), mods_, params_, bundle.chunking));
  }
  const std::string dir = ::testing::TempDir() + "/lbe_bundle_mmap";
  save_index_bundle(dir, bundle);

  const IndexBundle eager =
      load_index_bundle(dir, mods_, BundleLoadMode::kEager);
  const IndexBundle mapped =
      load_index_bundle(dir, mods_, BundleLoadMode::kMapped);
  ASSERT_EQ(mapped.ranks(), eager.ranks());
  EXPECT_TRUE(mapped.mapping == eager.mapping);
  for (int rank = 0; rank < mapped.ranks(); ++rank) {
    const auto& m = *mapped.per_rank[static_cast<std::size_t>(rank)];
    const auto& e = *eager.per_rank[static_cast<std::size_t>(rank)];
    EXPECT_TRUE(m.mapped());
    EXPECT_EQ(m.num_peptides(), e.num_peptides());
    EXPECT_EQ(m.num_postings(), e.num_postings());
  }
  fs::remove_all(dir);
}

}  // namespace
}  // namespace lbe::index
