#include "index/binning.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"

namespace lbe::index {
namespace {

TEST(Binning, PaperResolutionLayout) {
  const Binning b(0.01, 5000.0);
  EXPECT_DOUBLE_EQ(b.resolution(), 0.01);
  EXPECT_EQ(b.num_bins(), 500001u);
}

TEST(Binning, RejectsBadConstruction) {
  EXPECT_THROW(Binning(0.0, 100.0), InvariantError);
  EXPECT_THROW(Binning(-0.01, 100.0), InvariantError);
  EXPECT_THROW(Binning(1.0, 0.5), InvariantError);
}

TEST(Binning, BinIsMonotonicInMz) {
  const Binning b(0.01, 2000.0);
  MzBin prev = 0;
  for (double mz = 0.0; mz < 2000.0; mz += 13.37) {
    const MzBin bin = b.bin(mz);
    EXPECT_GE(bin, prev);
    prev = bin;
  }
}

TEST(Binning, NeighborsWithinResolutionShareBin) {
  const Binning b(0.01, 2000.0);
  EXPECT_EQ(b.bin(100.001), b.bin(100.009));
  EXPECT_NE(b.bin(100.001), b.bin(100.011));
}

TEST(Binning, InRangeBoundaries) {
  const Binning b(0.01, 2000.0);
  EXPECT_TRUE(b.in_range(0.0));
  EXPECT_TRUE(b.in_range(2000.0));
  EXPECT_FALSE(b.in_range(2000.01));
  EXPECT_FALSE(b.in_range(-0.01));
}

TEST(Binning, ToleranceBins) {
  const Binning b(0.01, 2000.0);
  EXPECT_EQ(b.tolerance_bins(0.05), 5u);   // the paper's ΔF
  EXPECT_EQ(b.tolerance_bins(0.0), 0u);
  EXPECT_EQ(b.tolerance_bins(-1.0), 0u);
  EXPECT_EQ(b.tolerance_bins(0.004), 0u);  // rounds to nearest
  EXPECT_EQ(b.tolerance_bins(0.006), 1u);
}

TEST(Binning, BinCenterInsideBin) {
  const Binning b(0.5, 100.0);
  for (MzBin bin = 0; bin < 10; ++bin) {
    const Mz center = b.bin_center(bin);
    EXPECT_EQ(b.bin(center), bin);
  }
}

TEST(Binning, MaxMzFallsInLastValidBin) {
  const Binning b(0.01, 2000.0);
  EXPECT_LT(b.bin(2000.0), b.num_bins());
}

TEST(Binning, ToleranceBinsClampsInsteadOfOverflowing) {
  const Binning b(0.01, 2000.0);
  // A tolerance wider than the whole index covers every bin from any
  // center; the cast of 1e14 bins to u32 would otherwise be UB/wraparound.
  EXPECT_EQ(b.tolerance_bins(1e12), b.num_bins());
  EXPECT_EQ(b.tolerance_bins(1e6), b.num_bins());
  // Just under the clamp still rounds normally.
  EXPECT_EQ(b.tolerance_bins(19.0), 1900u);
}

}  // namespace
}  // namespace lbe::index
