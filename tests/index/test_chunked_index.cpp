#include "index/chunked_index.hpp"

#include <gtest/gtest.h>

#include "theospec/fragmenter.hpp"

namespace lbe::index {
namespace {

class ChunkedIndexTest : public ::testing::Test {
 protected:
  ChunkedIndexTest() {
    params_.resolution = 0.01;
    params_.max_fragment_mz = 3000.0;
    params_.fragments.max_fragment_charge = 1;
    query_.shared_peak_min = 1;
  }

  PeptideStore make_store(const std::vector<std::string>& seqs) {
    PeptideStore store(&mods_);
    for (const auto& s : seqs) store.add(chem::Peptide(s), mods_);
    return store;
  }

  chem::Spectrum theo(const std::string& seq) {
    return theospec::theoretical_spectrum(chem::Peptide(seq), mods_,
                                          params_.fragments);
  }

  chem::ModificationSet mods_ = chem::ModificationSet::paper_default();
  IndexParams params_;
  QueryParams query_;
};

const std::vector<std::string> kPeptides = {
    "GGGGGGK",       // light
    "AAAAAAK",       //
    "PEPTIDEK",      //
    "MKWVTFISLLK",   //
    "WWWWHHHHYYKK",  // heavy
    "WWWWWWWWWWKK",  // heaviest
};

TEST_F(ChunkedIndexTest, SingleChunkWhenDisabled) {
  ChunkingParams chunking;  // max_chunk_entries = 0
  const ChunkedIndex index(make_store(kPeptides), mods_, params_, chunking);
  EXPECT_EQ(index.num_chunks(), 1u);
  EXPECT_EQ(index.num_peptides(), kPeptides.size());
}

TEST_F(ChunkedIndexTest, ChunkCountMatchesCap) {
  ChunkingParams chunking;
  chunking.max_chunk_entries = 2;
  const ChunkedIndex index(make_store(kPeptides), mods_, params_, chunking);
  EXPECT_EQ(index.num_chunks(), 3u);
}

TEST_F(ChunkedIndexTest, ChunksSortedByMassAndNonOverlapping) {
  ChunkingParams chunking;
  chunking.max_chunk_entries = 2;
  const ChunkedIndex index(make_store(kPeptides), mods_, params_, chunking);
  for (std::size_t c = 0; c < index.num_chunks(); ++c) {
    const auto [lo, hi] = index.chunk_mass_range(c);
    EXPECT_LE(lo, hi);
    if (c > 0) {
      EXPECT_LE(index.chunk_mass_range(c - 1).second, lo);
    }
  }
}

TEST_F(ChunkedIndexTest, QueryResultsIdenticalToUnchunked) {
  ChunkingParams single;
  ChunkingParams split;
  split.max_chunk_entries = 2;
  const ChunkedIndex whole(make_store(kPeptides), mods_, params_, single);
  const ChunkedIndex chunked(make_store(kPeptides), mods_, params_, split);

  for (const auto& seq : kPeptides) {
    std::vector<Candidate> a;
    std::vector<Candidate> b;
    QueryWork wa;
    QueryWork wb;
    whole.query(theo(seq), query_, a, wa);
    chunked.query(theo(seq), query_, b, wb);
    ASSERT_EQ(a.size(), b.size()) << seq;
    // Order may differ across chunks; compare as sets of (id, count).
    auto key = [](const Candidate& c) {
      return std::pair<LocalPeptideId, std::uint32_t>(c.peptide,
                                                      c.shared_peaks);
    };
    std::vector<std::pair<LocalPeptideId, std::uint32_t>> ka;
    std::vector<std::pair<LocalPeptideId, std::uint32_t>> kb;
    for (const auto& c : a) ka.push_back(key(c));
    for (const auto& c : b) kb.push_back(key(c));
    std::sort(ka.begin(), ka.end());
    std::sort(kb.begin(), kb.end());
    EXPECT_EQ(ka, kb) << seq;
  }
}

TEST_F(ChunkedIndexTest, NarrowWindowTouchesFewChunks) {
  ChunkingParams split;
  split.max_chunk_entries = 2;
  const ChunkedIndex index(make_store(kPeptides), mods_, params_, split);
  const Mass light = chem::Peptide("GGGGGGK").mass(mods_);
  EXPECT_EQ(index.chunks_for_window(light, 1.0), 1u);
  const double inf = std::numeric_limits<double>::infinity();
  EXPECT_EQ(index.chunks_for_window(light, inf), index.num_chunks());
}

TEST_F(ChunkedIndexTest, NarrowQuerySkipsForeignChunks) {
  ChunkingParams split;
  split.max_chunk_entries = 2;
  const ChunkedIndex index(make_store(kPeptides), mods_, params_, split);
  QueryParams narrow = query_;
  narrow.precursor_tolerance = 1.0;
  std::vector<Candidate> candidates;
  QueryWork work;
  index.query(theo("GGGGGGK"), narrow, candidates, work);
  ASSERT_EQ(candidates.size(), 1u);
  EXPECT_EQ(index.store().view(candidates[0].peptide).sequence, "GGGGGGK");
}

TEST_F(ChunkedIndexTest, PostingsPreservedAcrossChunking) {
  ChunkingParams single;
  ChunkingParams split;
  split.max_chunk_entries = 2;
  const ChunkedIndex whole(make_store(kPeptides), mods_, params_, single);
  const ChunkedIndex chunked(make_store(kPeptides), mods_, params_, split);
  EXPECT_EQ(whole.num_postings(), chunked.num_postings());
}

TEST_F(ChunkedIndexTest, EmptyStoreProducesNoChunks) {
  const ChunkedIndex index(PeptideStore(&mods_), mods_, params_,
                           ChunkingParams{});
  EXPECT_EQ(index.num_chunks(), 0u);
  std::vector<Candidate> candidates;
  QueryWork work;
  index.query(theo("PEPTIDEK"), query_, candidates, work);
  EXPECT_TRUE(candidates.empty());
}

TEST_F(ChunkedIndexTest, MemoryIncludesStoreAndChunks) {
  const ChunkedIndex index(make_store(kPeptides), mods_, params_,
                           ChunkingParams{});
  EXPECT_GT(index.memory_bytes(), index.store().memory_bytes());
}

}  // namespace
}  // namespace lbe::index
