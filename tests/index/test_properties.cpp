// Property tests over realistic synthetic workloads: structural invariants
// of the index and filtration results that must hold for any input.
#include <gtest/gtest.h>

#include <set>
#include <sstream>

#include "index/chunked_index.hpp"
#include "synth/workload.hpp"

namespace lbe::index {
namespace {

class IndexProperties : public ::testing::TestWithParam<std::uint64_t> {
 protected:
  IndexProperties()
      : workload_(synth::make_paper_workload(2500, 16, GetParam())) {
    params_.fragments.max_fragment_charge = 1;
  }

  PeptideStore build_store() const {
    PeptideStore store(&workload_.mods);
    for (const auto& seq : workload_.base_peptides) {
      for (const auto& variant : digest::enumerate_variants(
               seq, workload_.mods, workload_.variant_params)) {
        store.add(variant, workload_.mods);
      }
    }
    return store;
  }

  synth::Workload workload_;
  IndexParams params_;
};

TEST_P(IndexProperties, BinOccupancyAccountsForAllPostings) {
  const PeptideStore store = build_store();
  const SlmIndex index(store, workload_.mods, params_);
  const auto occupancy = index.bin_occupancy();
  std::uint64_t total = 0;
  for (const auto c : occupancy) total += c;
  EXPECT_EQ(total, index.num_postings());
  EXPECT_GT(total, 0u);
}

TEST_P(IndexProperties, CandidatesUniqueAndAboveThreshold) {
  const PeptideStore store = build_store();
  const SlmIndex index(store, workload_.mods, params_);
  QueryParams filter;
  filter.shared_peak_min = 4;
  std::vector<Candidate> candidates;
  QueryWork work;
  for (const auto& query : workload_.queries) {
    candidates.clear();
    index.query(query, filter, candidates, work);
    std::set<LocalPeptideId> seen;
    for (const auto& candidate : candidates) {
      EXPECT_TRUE(seen.insert(candidate.peptide).second)
          << "duplicate candidate";
      EXPECT_GE(candidate.shared_peaks, filter.shared_peak_min);
      EXPECT_GT(candidate.matched_intensity, 0.0f);
      EXPECT_LT(candidate.peptide, store.size());
    }
  }
}

TEST_P(IndexProperties, TighterThresholdYieldsSubset) {
  const PeptideStore store = build_store();
  const SlmIndex index(store, workload_.mods, params_);
  QueryParams loose;
  loose.shared_peak_min = 2;
  QueryParams tight;
  tight.shared_peak_min = 6;
  std::vector<Candidate> loose_out;
  std::vector<Candidate> tight_out;
  QueryWork work;
  for (const auto& query : workload_.queries) {
    loose_out.clear();
    tight_out.clear();
    index.query(query, loose, loose_out, work);
    index.query(query, tight, tight_out, work);
    std::set<LocalPeptideId> loose_ids;
    for (const auto& c : loose_out) loose_ids.insert(c.peptide);
    for (const auto& c : tight_out) {
      EXPECT_TRUE(loose_ids.count(c.peptide))
          << "tight candidate missing from loose set";
    }
    EXPECT_LE(tight_out.size(), loose_out.size());
  }
}

TEST_P(IndexProperties, ChunkedMatchesFlatOnWorkload) {
  ChunkingParams flat;
  ChunkingParams split;
  split.max_chunk_entries = 333;
  PeptideStore store_a = build_store();
  PeptideStore store_b = build_store();
  const ChunkedIndex whole(std::move(store_a), workload_.mods, params_, flat);
  const ChunkedIndex chunked(std::move(store_b), workload_.mods, params_,
                             split);
  EXPECT_EQ(whole.num_postings(), chunked.num_postings());

  QueryParams filter;
  filter.shared_peak_min = 4;
  std::vector<Candidate> a;
  std::vector<Candidate> b;
  QueryWork wa;
  QueryWork wb;
  for (const auto& query : workload_.queries) {
    a.clear();
    b.clear();
    whole.query(query, filter, a, wa);
    chunked.query(query, filter, b, wb);
    std::set<std::pair<LocalPeptideId, std::uint32_t>> sa;
    std::set<std::pair<LocalPeptideId, std::uint32_t>> sb;
    for (const auto& c : a) sa.insert({c.peptide, c.shared_peaks});
    for (const auto& c : b) sb.insert({c.peptide, c.shared_peaks});
    EXPECT_EQ(sa, sb);
  }
  EXPECT_EQ(wa.postings_touched, wb.postings_touched);
}

TEST_P(IndexProperties, SerializationPreservesEverything) {
  PeptideStore store = build_store();
  const ChunkedIndex original(std::move(store), workload_.mods, params_,
                              ChunkingParams{});
  std::stringstream buffer;
  original.save(buffer);
  const auto loaded = ChunkedIndex::load(buffer, workload_.mods, params_);
  EXPECT_EQ(loaded->num_postings(), original.num_postings());
  QueryParams filter;
  filter.shared_peak_min = 4;
  std::vector<Candidate> a;
  std::vector<Candidate> b;
  QueryWork wa;
  QueryWork wb;
  for (const auto& query : workload_.queries) {
    a.clear();
    b.clear();
    original.query(query, filter, a, wa);
    loaded->query(query, filter, b, wb);
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i) {
      EXPECT_EQ(a[i].peptide, b[i].peptide);
      EXPECT_EQ(a[i].shared_peaks, b[i].shared_peaks);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, IndexProperties,
                         ::testing::Values(11u, 222u, 3333u));

}  // namespace
}  // namespace lbe::index
