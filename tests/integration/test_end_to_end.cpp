// Full-pipeline integration tests: synthetic proteome -> digestion ->
// LBE grouping/partitioning -> distributed index build -> distributed open
// search -> merged results. These exercise every module together at a small
// but non-trivial scale, including the paper's central claims in miniature:
// the engine finds the true peptides, results are invariant to the
// partition policy, and cyclic balances load better than chunk.
#include <gtest/gtest.h>

#include "perf/metrics.hpp"
#include "search/distributed.hpp"
#include "synth/workload.hpp"

namespace lbe {
namespace {

class EndToEnd : public ::testing::Test {
 protected:
  static constexpr std::uint64_t kEntries = 4000;
  static constexpr std::uint32_t kQueries = 40;

  EndToEnd() : workload_(synth::make_paper_workload(kEntries, kQueries)) {
    params_.index.resolution = 0.01;
    params_.index.max_fragment_mz = 5000.0;
    params_.index.fragments.max_fragment_charge = 1;
    params_.search.filter.fragment_tolerance = 0.05;
    params_.search.filter.shared_peak_min = 4;
    params_.search.score.fragments = params_.index.fragments;
    params_.search.top_k = 3;
  }

  core::LbePlan make_plan(core::Policy policy, int ranks) const {
    core::LbeParams lbe;
    lbe.partition.policy = policy;
    lbe.partition.ranks = ranks;
    return core::LbePlan(workload_.base_peptides, workload_.mods,
                         workload_.variant_params, lbe);
  }

  mpi::Cluster make_cluster(int ranks) const {
    mpi::ClusterOptions options;
    options.ranks = ranks;
    options.engine = mpi::Engine::kVirtual;
    options.measured_time = false;
    options.cost = mpi::CostModel::zero();
    return mpi::Cluster(options);
  }

  synth::Workload workload_;
  search::DistributedParams params_;
};

TEST_F(EndToEnd, OpenSearchRecallOnTruePeptides) {
  const auto plan = make_plan(core::Policy::kCyclic, 4);
  auto cluster = make_cluster(4);
  const auto report = search::run_distributed_search(
      cluster, plan, workload_.queries, params_);

  std::size_t top1_hits = 0;
  for (std::size_t q = 0; q < workload_.queries.size(); ++q) {
    if (report.results[q].top.empty()) continue;
    const auto loc = plan.locate_variant(report.results[q].top[0].peptide);
    const std::string& found = plan.base_sequence(loc.base_id);
    if (found == workload_.base_peptides[workload_.query_truth[q]]) {
      ++top1_hits;
    }
  }
  // Synthetic spectra carry realistic noise/dropout; expect strong recall.
  EXPECT_GE(top1_hits, workload_.queries.size() * 8 / 10);
}

TEST_F(EndToEnd, ResultsInvariantAcrossPoliciesAndRanks) {
  const auto reference_plan = make_plan(core::Policy::kChunk, 2);
  auto reference_cluster = make_cluster(2);
  const auto reference = search::run_distributed_search(
      reference_cluster, reference_plan, workload_.queries, params_);

  for (const auto policy : {core::Policy::kCyclic, core::Policy::kRandom}) {
    for (const int ranks : {2, 8}) {
      const auto plan = make_plan(policy, ranks);
      auto cluster = make_cluster(ranks);
      const auto report = search::run_distributed_search(
          cluster, plan, workload_.queries, params_);
      ASSERT_EQ(report.results.size(), reference.results.size());
      for (std::size_t q = 0; q < report.results.size(); ++q) {
        const auto& a = reference.results[q].top;
        const auto& b = report.results[q].top;
        ASSERT_EQ(a.empty(), b.empty());
        if (a.empty()) continue;
        // Global ids differ across plans (clustered order is plan-internal),
        // but the winning peptide sequence and score must agree.
        const auto seq_a =
            reference_plan.variant_peptide(a[0].peptide)
                .annotated(workload_.mods);
        const auto seq_b =
            plan.variant_peptide(b[0].peptide).annotated(workload_.mods);
        EXPECT_EQ(seq_a, seq_b) << "query " << q;
        EXPECT_FLOAT_EQ(a[0].score, b[0].score);
      }
    }
  }
}

TEST_F(EndToEnd, WorkBalanceCyclicBeatsChunk) {
  // The miniature Fig. 6: deterministic work units (postings touched)
  // per rank, 8 ranks. Cyclic spreads similarity groups; chunk does not.
  constexpr int kRanks = 8;
  auto run_policy = [&](core::Policy policy) {
    const auto plan = make_plan(policy, kRanks);
    auto cluster = make_cluster(kRanks);
    const auto report = search::run_distributed_search(
        cluster, plan, workload_.queries, params_);
    std::vector<double> work_units;
    for (const auto& work : report.work) {
      work_units.push_back(work.cost_units());
    }
    return perf::load_imbalance(work_units);
  };
  const double li_chunk = run_policy(core::Policy::kChunk);
  const double li_cyclic = run_policy(core::Policy::kCyclic);
  EXPECT_LT(li_cyclic, li_chunk);
  EXPECT_LT(li_cyclic, 0.25);  // the paper's <= 20% claim with slack
}

TEST_F(EndToEnd, SharedBaselineAgreesWithDistributed) {
  const auto plan = make_plan(core::Policy::kCyclic, 4);
  auto cluster = make_cluster(4);
  const auto distributed = search::run_distributed_search(
      cluster, plan, workload_.queries, params_);
  const auto shared =
      search::run_shared_baseline(plan, workload_.queries, params_);
  for (std::size_t q = 0; q < workload_.queries.size(); ++q) {
    const auto& d = distributed.results[q].top;
    const auto& s = shared.results[q].top;
    ASSERT_EQ(d.size(), s.size()) << q;
    for (std::size_t k = 0; k < d.size(); ++k) {
      EXPECT_EQ(d[k].peptide, s[k].peptide) << q;
    }
  }
}

TEST_F(EndToEnd, DistributedMemorySumApproximatesSharedMemory) {
  // Fig. 5 in miniature: the distributed sum equals the shared footprint
  // plus per-rank fixed costs (each partition carries its own bin-offset
  // array and scorecard — the paper's "overhead varies inversely with the
  // size of data partition per MPI CPU"). At this tiny scale the fixed
  // part dominates, so bound it structurally rather than by a small factor.
  constexpr int kRanks = 4;
  const auto plan = make_plan(core::Policy::kCyclic, kRanks);
  auto cluster = make_cluster(kRanks);
  const auto distributed = search::run_distributed_search(
      cluster, plan, workload_.queries, params_);
  const auto shared =
      search::run_shared_baseline(plan, workload_.queries, params_);

  std::uint64_t distributed_total = distributed.mapping_bytes;
  for (const auto bytes : distributed.index_bytes) {
    distributed_total += bytes;
  }
  // Never below the shared content (the data itself is replicated nowhere,
  // but each rank adds fixed structures).
  EXPECT_GT(distributed_total, shared.index_bytes);
  // Fixed cost per rank: bin offsets (num_bins * 4 bytes) + slack.
  const std::uint64_t bins =
      static_cast<std::uint64_t>(params_.index.max_fragment_mz /
                                 params_.index.resolution) + 2;
  const std::uint64_t fixed_per_rank = bins * sizeof(std::uint32_t);
  EXPECT_LT(distributed_total,
            shared.index_bytes + kRanks * fixed_per_rank +
                shared.index_bytes / 2);
}

TEST_F(EndToEnd, MS2RoundTripPreservesSearchResults) {
  // Write queries to MS2, read them back, search again: same top-1.
  const auto plan = make_plan(core::Policy::kCyclic, 2);
  synth::GeneratedSpectra bundle;
  bundle.spectra = workload_.queries;
  bundle.truth = workload_.query_truth;
  const std::string path = ::testing::TempDir() + "/lbe_e2e.ms2";
  io::write_ms2_file(path, bundle.to_ms2());
  const auto loaded = io::read_ms2_file(path);
  ASSERT_EQ(loaded.spectra.size(), workload_.queries.size());

  auto cluster_a = make_cluster(2);
  const auto original = search::run_distributed_search(
      cluster_a, plan, workload_.queries, params_);
  auto cluster_b = make_cluster(2);
  const auto reloaded = search::run_distributed_search(
      cluster_b, plan, loaded.spectra, params_);
  std::size_t agree = 0;
  std::size_t total = 0;
  for (std::size_t q = 0; q < workload_.queries.size(); ++q) {
    const auto& a = original.results[q].top;
    const auto& b = reloaded.results[q].top;
    if (a.empty() || b.empty()) continue;
    ++total;
    if (a[0].peptide == b[0].peptide) ++agree;
  }
  // MS2 stores m/z at 1e-4 precision: identical binning for nearly all.
  EXPECT_GE(agree * 10, total * 9);
}

}  // namespace
}  // namespace lbe
