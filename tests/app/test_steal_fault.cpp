// Steal-protocol fault tolerance over the real multi-process transport: a
// worker killed in the middle of a `--schedule stealing` run must surface at
// the master as a *typed* CommError — never a hang in the steal drain loop —
// and cleanup must kill + reap every remaining worker (no zombies).
//
// This binary is its own process-transport host: main() registers the app's
// rank programs and dispatches to rank_worker_main when re-exec'd with
// --rank-worker, so gtest_main is not used here.
#include <sys/wait.h>

#include <cerrno>
#include <cstdlib>
#include <string>

#include <gtest/gtest.h>

#include "app/options.hpp"
#include "app/pipeline.hpp"
#include "app/rank_programs.hpp"
#include "common/error.hpp"
#include "simmpi/process.hpp"

namespace lbe::app {
namespace {

/// Scoped LBE_RANK_WORKER_FAULT so one test's fault cannot leak into the
/// next (workers inherit the environment at fork).
class FaultInjection {
 public:
  explicit FaultInjection(const std::string& spec) {
    ::setenv("LBE_RANK_WORKER_FAULT", spec.c_str(), 1);
  }
  ~FaultInjection() { ::unsetenv("LBE_RANK_WORKER_FAULT"); }
};

/// True when this process has no unreaped children left: every fork the
/// transport made was waited on (zombies would still be our children).
bool all_children_reaped() {
  return ::waitpid(-1, nullptr, WNOHANG) == -1 && errno == ECHILD;
}

AppOptions stealing_options() {
  return options_from_config(Config::from_string(
      "entries = 15000\n"
      "num_queries = 24\n"
      "ranks = 3\n"
      "threads = 1\n"
      "batch = 4\n"
      "backend = process\n"
      "schedule = stealing\n"
      "steal_threshold = 1.0\n"
      "report = false\n"));
}

// Sanity for the fault test below: the same stealing-over-processes setup
// completes when nobody is killed. Without this, a broken setup would make
// the fault test pass vacuously (any failure looks like the injected one).
TEST(StealFault, StealingSearchCompletesOverProcesses) {
  const AppOptions opts = stealing_options();
  const PipelineInputs inputs = prepare_inputs(opts);
  const PlanBundle plan = build_plan(inputs.database, opts);
  const SearchOutcome outcome =
      run_search_pipeline(plan, inputs.queries, opts);

  EXPECT_EQ(outcome.report.results.size(), inputs.queries.spectra.size());
  std::size_t executed = 0;
  for (const auto batches : outcome.report.batches_executed) {
    executed += batches;
  }
  // Every (rank, batch) cell is covered: 24 queries / batch 4 = 6 batches
  // per index rank, regardless of who executed them. A tail-cut racing its
  // victim may duplicate a batch (deduplicated by the master), so >=.
  EXPECT_GE(executed, 6u * 3u);
  EXPECT_TRUE(all_children_reaped());
}

TEST(StealFault, KilledWorkerMidStealSurfacesTypedErrorNotHang) {
  // Rank 1 exits right after its handshake — before its first steal
  // request — leaving the master's unified query+drain loop waiting on a
  // request/result that will never arrive while healthy rank 2 keeps
  // working. A hang here IS the regression this test guards: the drain
  // condition must never spin past a dead worker, and the transport must
  // convert the EOF into a typed error.
  FaultInjection fault("exit:1");
  const AppOptions opts = stealing_options();
  const PipelineInputs inputs = prepare_inputs(opts);
  const PlanBundle plan = build_plan(inputs.database, opts);
  try {
    run_search_pipeline(plan, inputs.queries, opts);
    FAIL() << "search returned despite a killed worker";
  } catch (const CommError& error) {
    EXPECT_NE(std::string(error.what()).find("rank 1 worker exited"),
              std::string::npos)
        << error.what();
  }
  // Cleanup must have SIGKILL'd and reaped rank 2 too — no zombies.
  EXPECT_TRUE(all_children_reaped());
}

}  // namespace
}  // namespace lbe::app

int main(int argc, char** argv) {
  lbe::app::register_rank_programs();
  if (lbe::mpi::is_rank_worker(argc, argv)) {
    return lbe::mpi::rank_worker_main(argc, argv);
  }
  ::testing::InitGoogleTest(&argc, argv);
  return RUN_ALL_TESTS();
}
