// Integration tests for the lbectl driver layer: the full synthetic
// workload (synth::proteome + synth::spectra) flows through the same
// functions the binary runs, and the distributed result set must equal the
// shared-memory baseline over build_global_store while FDR output stays
// non-empty and deterministic.
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <sstream>

#include "app/commands.hpp"
#include "app/options.hpp"
#include "app/pipeline.hpp"
#include "common/error.hpp"
#include "search/distributed.hpp"

namespace lbe::app {
namespace {

AppOptions small_options(const std::string& extra = "") {
  const std::string text =
      "entries = 15000\n"
      "num_queries = 24\n"
      "ranks = 4\n"
      "threads = 4\n"
      "batch = 8\n"
      "report = false\n" +
      extra;
  return options_from_config(Config::from_string(text));
}

AppOptions small_options_without_ranks() {
  return options_from_config(
      Config::from_string("entries = 15000\nreport = false\n"));
}

TEST(LbectlPipeline, DistributedMatchesSharedBaselineExactly) {
  const AppOptions opts = small_options();
  const PipelineInputs inputs = prepare_inputs(opts);
  const PlanBundle plan = build_plan(inputs.database, opts);
  const SearchOutcome outcome =
      run_search_pipeline(plan, inputs.queries, opts);

  // compare_with_baseline runs the identical engine over the global store
  // (plan.build_global_store()) in one address space.
  EXPECT_EQ(compare_with_baseline(plan, inputs.queries, opts, outcome), 0u);
}

TEST(LbectlPipeline, FdrOutputNonEmptyAndDeterministic) {
  const AppOptions opts = small_options();

  auto run_once = [&] {
    const PipelineInputs inputs = prepare_inputs(opts);
    const PlanBundle plan = build_plan(inputs.database, opts);
    return run_search_pipeline(plan, inputs.queries, opts);
  };
  const SearchOutcome first = run_once();
  const SearchOutcome second = run_once();

  ASSERT_FALSE(first.fdr_inputs.empty());
  ASSERT_EQ(first.fdr_inputs.size(), first.qvalues.size());
  EXPECT_GT(first.accepted, 0u);

  ASSERT_EQ(first.fdr_inputs.size(), second.fdr_inputs.size());
  for (std::size_t i = 0; i < first.fdr_inputs.size(); ++i) {
    EXPECT_EQ(first.fdr_inputs[i].score, second.fdr_inputs[i].score) << i;
    EXPECT_EQ(first.fdr_inputs[i].is_decoy, second.fdr_inputs[i].is_decoy)
        << i;
    EXPECT_EQ(first.qvalues[i], second.qvalues[i]) << i;
  }
  EXPECT_EQ(first.accepted, second.accepted);
}

TEST(LbectlPipeline, HybridThreadsDoNotChangeResults) {
  const AppOptions serial = small_options("threads = 1\n");
  const AppOptions hybrid = small_options("threads = 4\nbatch = 5\n");

  const PipelineInputs inputs = prepare_inputs(serial);
  const PlanBundle plan = build_plan(inputs.database, serial);
  const SearchOutcome a = run_search_pipeline(plan, inputs.queries, serial);
  const SearchOutcome b = run_search_pipeline(plan, inputs.queries, hybrid);

  ASSERT_EQ(a.report.results.size(), b.report.results.size());
  for (std::size_t q = 0; q < a.report.results.size(); ++q) {
    const auto& ta = a.report.results[q].top;
    const auto& tb = b.report.results[q].top;
    ASSERT_EQ(ta.size(), tb.size()) << q;
    for (std::size_t k = 0; k < ta.size(); ++k) {
      EXPECT_EQ(ta[k].peptide, tb[k].peptide) << q;
      EXPECT_EQ(ta[k].score, tb[k].score) << q;
    }
  }
}

TEST(LbectlPipeline, DatabaseCarriesDecoysForFdr) {
  const AppOptions opts = small_options();
  const DatabaseBundle db = build_database(opts);
  std::size_t decoys = 0;
  for (const bool flag : db.is_decoy) decoys += flag ? 1 : 0;
  EXPECT_GT(decoys, 0u);
  EXPECT_LT(decoys, db.peptides.size());

  // Decoy flags must survive the clustered permutation.
  const PlanBundle plan = build_plan(db, opts);
  ASSERT_EQ(plan.decoy_bases.size(), db.peptides.size());
  std::size_t clustered_decoys = 0;
  for (const bool flag : plan.decoy_bases) clustered_decoys += flag ? 1 : 0;
  EXPECT_EQ(clustered_decoys, decoys);
}

namespace fs = std::filesystem;

std::string slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

// The acceptance path for `search --index`: a warm start over the saved
// bundle — through BOTH load paths, eager (--mmap off) and mapped lazy
// (--mmap on, the default) — must produce a byte-identical psms.tsv to
// the cold rebuild.
TEST(LbectlPipeline, WarmStartSearchIsByteIdenticalToColdRebuild) {
  const AppOptions opts = small_options();
  const PipelineInputs inputs = prepare_inputs(opts);
  const PlanBundle plan = build_plan(inputs.database, opts);

  const std::string dir = ::testing::TempDir() + "/lbe_warm_start";
  index::save_index_bundle(dir,
                           build_index_bundle(plan, inputs.database, opts));

  const SearchOutcome cold = run_search_pipeline(plan, inputs.queries, opts);
  const std::string cold_dir = dir + "/cold";
  write_reports(cold_dir, plan, cold);
  const std::string cold_psms = slurp(cold_dir + "/psms.tsv");
  EXPECT_FALSE(cold_psms.empty());

  for (const bool mmap_mode : {true, false}) {
    AppOptions warm_opts = opts;
    warm_opts.index_mmap = mmap_mode;
    const auto warm =
        try_load_warm_indexes(dir, plan, inputs.database, warm_opts);
    ASSERT_NE(warm, nullptr);
    for (const auto& rank : warm->per_rank) {
      EXPECT_EQ(rank->mapped(), mmap_mode);
    }
    const SearchOutcome warmed =
        run_search_pipeline(plan, inputs.queries, warm_opts, warm.get());
    const std::string warm_dir =
        dir + (mmap_mode ? "/warm_mmap" : "/warm_eager");
    write_reports(warm_dir, plan, warmed);
    EXPECT_EQ(cold_psms, slurp(warm_dir + "/psms.tsv"))
        << (mmap_mode ? "mmap" : "eager") << " warm start diverged";
  }
  fs::remove_all(dir);
}

// Any parameter drift between the bundle and the invocation must fall back
// to a rebuild (nullptr + warning), never silently search stale indexes.
TEST(LbectlPipeline, WarmStartRejectsMismatchedBundle) {
  const AppOptions opts = small_options();
  const PipelineInputs inputs = prepare_inputs(opts);
  const PlanBundle plan = build_plan(inputs.database, opts);

  const std::string dir = ::testing::TempDir() + "/lbe_warm_mismatch";
  index::save_index_bundle(dir,
                           build_index_bundle(plan, inputs.database, opts));

  // Different fragment resolution => IndexParams mismatch.
  AppOptions finer = opts;
  finer.search.index.resolution = 0.02;
  EXPECT_EQ(try_load_warm_indexes(dir, plan, inputs.database, finer),
            nullptr);

  // Different rank count => LBE-params (and mapping) mismatch.
  const AppOptions more_ranks = small_options("ranks = 6\n");
  const PlanBundle replanned = build_plan(inputs.database, more_ranks);
  EXPECT_EQ(try_load_warm_indexes(dir, replanned, inputs.database,
                                  more_ranks),
            nullptr);

  // A database edit that leaves every parameter and the mapping table
  // intact must still be caught, via the manifest's content fingerprint.
  DatabaseBundle edited = inputs.database;
  edited.variants.max_mod_residues += 1;
  EXPECT_EQ(try_load_warm_indexes(dir, plan, edited, opts), nullptr);
  ASSERT_FALSE(edited.peptides.empty());
  edited = inputs.database;
  edited.peptides.front()[0] = edited.peptides.front()[0] == 'A' ? 'G' : 'A';
  EXPECT_EQ(try_load_warm_indexes(dir, plan, edited, opts), nullptr);

  // The matching invocation still loads.
  EXPECT_NE(try_load_warm_indexes(dir, plan, inputs.database, opts), nullptr);
  fs::remove_all(dir);
}

// Format-version policy at the warm-start boundary: a bundle written in an
// older on-disk layout is stale, not corrupt — the loader warns and falls
// back to a rebuild (nullptr) — while a flipped payload bit in the very
// same files stays a hard IoError. Stale must never mask corrupt.
TEST(LbectlPipeline, StaleFormatVersionRebuildsButCorruptionStillThrows) {
  const AppOptions opts = small_options();
  const PipelineInputs inputs = prepare_inputs(opts);
  const PlanBundle plan = build_plan(inputs.database, opts);

  const std::string dir = ::testing::TempDir() + "/lbe_warm_version";
  index::save_index_bundle(dir,
                           build_index_bundle(plan, inputs.database, opts));
  const std::string manifest = index::bundle_manifest_path(dir);
  const std::string pristine = slurp(manifest);
  const auto rewrite = [&](const std::string& bytes) {
    std::ofstream out(manifest, std::ios::binary);
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  };

  // Patch the header's format-version field (bytes 4..8) down to v3: the
  // previous layout, recognizably LBEX, but not this reader's version.
  std::string stale = pristine;
  stale[4] = 3;
  rewrite(stale);
  EXPECT_EQ(try_load_warm_indexes(dir, plan, inputs.database, opts), nullptr);

  // A flipped bit mid-manifest is a checksum failure, not staleness.
  std::string corrupt = pristine;
  corrupt[pristine.size() / 2] =
      static_cast<char>(corrupt[pristine.size() / 2] ^ 0x20);
  rewrite(corrupt);
  EXPECT_THROW(try_load_warm_indexes(dir, plan, inputs.database, opts),
               IoError);

  // Restored, the bundle warm-starts again.
  rewrite(pristine);
  EXPECT_NE(try_load_warm_indexes(dir, plan, inputs.database, opts), nullptr);
  fs::remove_all(dir);
}

TEST(LbectlPipeline, PlanFileRoundTrips) {
  const AppOptions opts =
      small_options("policy = chunk\nranks = 6\ngsize = 12\n");
  const DatabaseBundle db = build_database(opts);

  std::stringstream buffer;
  save_plan(buffer, db, opts.lbe);
  const DatabaseBundle loaded = load_plan(buffer);

  EXPECT_EQ(loaded.peptides, db.peptides);
  EXPECT_EQ(loaded.is_decoy, db.is_decoy);
  EXPECT_EQ(loaded.mods_spec, db.mods_spec);
  EXPECT_EQ(loaded.variants.max_mod_residues, db.variants.max_mod_residues);
  EXPECT_EQ(loaded.mods.size(), db.mods.size());
  ASSERT_TRUE(loaded.stored_lbe.has_value());
  EXPECT_EQ(loaded.stored_lbe->partition.policy, core::Policy::kChunk);
  EXPECT_EQ(loaded.stored_lbe->partition.ranks, 6);
  EXPECT_EQ(loaded.stored_lbe->grouping.gsize, 12u);
}

TEST(LbectlPipeline, StoredPlanParamsUsedUnlessOverridden) {
  const AppOptions prepare_opts =
      small_options("policy = chunk\nranks = 6\n");
  DatabaseBundle db = build_database(prepare_opts);
  db.stored_lbe = prepare_opts.lbe;

  // No policy/ranks in this invocation: the prepared values win.
  const AppOptions plain = small_options_without_ranks();
  const core::LbeParams reused = effective_lbe_params(db, plain);
  EXPECT_EQ(reused.partition.policy, core::Policy::kChunk);
  EXPECT_EQ(reused.partition.ranks, 6);

  // An explicit --ranks overrides only that key.
  const AppOptions override_ranks = small_options();  // sets ranks = 4
  const core::LbeParams merged = effective_lbe_params(db, override_ranks);
  EXPECT_EQ(merged.partition.policy, core::Policy::kChunk);
  EXPECT_EQ(merged.partition.ranks, 4);
}

TEST(LbectlPipeline, PlanLoadRejectsGarbage) {
  std::stringstream buffer("definitely not a plan file");
  EXPECT_THROW(load_plan(buffer), Error);
}

TEST(LbectlCli, ParsesOverridesAndFlags) {
  const char* argv[] = {"lbectl", "search",    "--ranks", "8",
                        "--policy=chunk",      "--verify"};
  const CliInvocation cli = parse_cli(6, argv);
  EXPECT_EQ(cli.subcommand, "search");
  const AppOptions opts = options_from_config(cli.config);
  EXPECT_EQ(opts.lbe.partition.ranks, 8);
  EXPECT_EQ(opts.lbe.partition.policy, core::Policy::kChunk);
  EXPECT_TRUE(opts.verify_baseline);
}

TEST(LbectlCli, RejectsUnknownKeys) {
  const char* argv[] = {"lbectl", "search", "--rankz", "8"};
  EXPECT_THROW(parse_cli(4, argv), ConfigError);
  EXPECT_THROW(options_from_config(
                   Config::from_string("definitely_unknown = 1\n")),
               ConfigError);
}

TEST(LbectlCli, RejectsInvalidValues) {
  EXPECT_THROW(options_from_config(Config::from_string("ranks = 0\n")),
               ConfigError);
  EXPECT_THROW(options_from_config(Config::from_string("batch = 0\n")),
               ConfigError);
  EXPECT_THROW(options_from_config(Config::from_string("decoy = bogus\n")),
               ConfigError);
  EXPECT_THROW(options_from_config(Config::from_string("fdr = 0\n")),
               ConfigError);
}

}  // namespace
}  // namespace lbe::app
