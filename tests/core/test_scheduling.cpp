#include "core/scheduling.hpp"

#include <gtest/gtest.h>

#include <memory>

#include "common/error.hpp"

namespace lbe::core {
namespace {

std::vector<std::uint32_t> uniform_groups(std::size_t count,
                                          std::uint32_t size) {
  return std::vector<std::uint32_t>(count, size);
}

TEST(ScheduleParsing, RoundTrip) {
  EXPECT_EQ(schedule_from_string("lbe_static"), Schedule::kLbeStatic);
  EXPECT_EQ(schedule_from_string("static"), Schedule::kLbeStatic);
  EXPECT_EQ(schedule_from_string("Calibrated"), Schedule::kCalibrated);
  EXPECT_EQ(schedule_from_string("STEALING"), Schedule::kStealing);
  EXPECT_THROW(schedule_from_string("dynamic"), ConfigError);
  EXPECT_STREQ(schedule_name(Schedule::kLbeStatic), "lbe_static");
  EXPECT_STREQ(schedule_name(Schedule::kCalibrated), "calibrated");
  EXPECT_STREQ(schedule_name(Schedule::kStealing), "stealing");
}

TEST(ScheduleParams, Validation) {
  ScheduleParams params;
  params.validate();  // defaults are valid
  params.steal_threshold = 0.5;
  EXPECT_THROW(params.validate(), ConfigError);
  params.steal_threshold = 1.0;
  params.validate();
  params.calibration_queries = 0;
  EXPECT_THROW(params.validate(), ConfigError);
}

TEST(PartitionOracle, AcceptsExactPartition) {
  PartitionPlan plan;
  plan.per_rank = {{0, 2}, {1, 3}};
  const PartitionCheck check = assert_is_partition(plan, 4, 4);
  EXPECT_TRUE(check.ok()) << check.detail;
}

TEST(PartitionOracle, RejectsDuplicate) {
  PartitionPlan plan;
  plan.per_rank = {{0, 1}, {1, 2, 3}};
  const PartitionCheck check = assert_is_partition(plan, 4, 4);
  EXPECT_FALSE(check.ok());
  EXPECT_FALSE(check.unique);
  EXPECT_NE(check.detail.find("placed twice"), std::string::npos);
}

TEST(PartitionOracle, RejectsMissing) {
  PartitionPlan plan;
  plan.per_rank = {{0}, {2, 3}};
  const PartitionCheck check = assert_is_partition(plan, 4, 4);
  EXPECT_FALSE(check.ok());
  EXPECT_FALSE(check.covered);
}

TEST(PartitionOracle, RejectsOutOfRange) {
  PartitionPlan plan;
  plan.per_rank = {{0, 1}, {2, 7}};
  const PartitionCheck check = assert_is_partition(plan, 4, 4);
  EXPECT_FALSE(check.ok());
  EXPECT_FALSE(check.in_range);
}

TEST(PartitionOracle, RejectsEmptyRankAtSaneSizes) {
  PartitionPlan plan;
  plan.per_rank = {{0, 1, 2, 3}, {}};
  const PartitionCheck check = assert_is_partition(plan, 4, 4);
  EXPECT_FALSE(check.ok());
  EXPECT_FALSE(check.no_empty_rank);
}

TEST(PartitionOracle, AllowsEmptyRankWithMoreRanksThanGroups) {
  PartitionPlan plan;
  plan.per_rank = {{0}, {1}, {}};
  const PartitionCheck check = assert_is_partition(plan, 2, 2);
  EXPECT_TRUE(check.ok()) << check.detail;
}

TEST(PartitionOracle, ThrowingFormNamesThePolicy) {
  PartitionPlan plan;
  plan.per_rank = {{0, 0}};
  try {
    check_partition(plan, 1, 1, "test_policy");
    FAIL() << "expected ConfigError";
  } catch (const ConfigError& e) {
    EXPECT_NE(std::string(e.what()).find("test_policy"), std::string::npos);
  }
}

// Every policy's place() must produce an oracle-clean partition, with or
// without feedback.
class PolicyPlacement : public ::testing::TestWithParam<Schedule> {};

TEST_P(PolicyPlacement, PlacesAnExactPartition) {
  const auto policy = make_policy(GetParam());
  ASSERT_NE(policy, nullptr);
  EXPECT_EQ(policy->schedule(), GetParam());

  PartitionParams base;
  base.ranks = 4;
  const auto group_sizes = uniform_groups(37, 3);

  CostFeedback none;
  const PartitionPlan cold = policy->place(group_sizes, base, none);
  EXPECT_EQ(cold.per_rank.size(), 4u);

  CostFeedback observed;
  observed.rank_seconds = {1.0, 1.0, 3.0, 3.0};
  observed.rank_cost_units = {100.0, 100.0, 100.0, 100.0};
  const PartitionPlan warm = policy->place(group_sizes, base, observed);
  EXPECT_EQ(warm.per_rank.size(), 4u);
}

INSTANTIATE_TEST_SUITE_P(AllSchedules, PolicyPlacement,
                         ::testing::Values(Schedule::kLbeStatic,
                                           Schedule::kCalibrated,
                                           Schedule::kStealing));

TEST(PolicyPlacement, OnlyStealingStealsAtRuntime) {
  EXPECT_FALSE(make_policy(Schedule::kLbeStatic)->steals_at_runtime());
  EXPECT_FALSE(make_policy(Schedule::kCalibrated)->steals_at_runtime());
  EXPECT_TRUE(make_policy(Schedule::kStealing)->steals_at_runtime());
}

TEST(PolicyPlacement, StaticAndStealingKeepThePlacement) {
  PartitionParams base;
  base.ranks = 3;
  CostFeedback observed;
  observed.rank_seconds = {1.0, 2.0, 4.0};
  observed.rank_cost_units = {100.0, 100.0, 100.0};
  for (const Schedule s : {Schedule::kLbeStatic, Schedule::kStealing}) {
    const PartitionParams fitted =
        make_policy(s)->plan_params(base, observed);
    EXPECT_EQ(fitted.policy, base.policy) << schedule_name(s);
    EXPECT_TRUE(fitted.weights.empty()) << schedule_name(s);
  }
}

TEST(PolicyPlacement, CalibratedSwitchesToWeighted) {
  PartitionParams base;
  base.ranks = 3;
  CostFeedback observed;
  observed.rank_seconds = {1.0, 1.0, 2.0};
  observed.rank_cost_units = {100.0, 100.0, 100.0};
  const PartitionParams fitted =
      make_policy(Schedule::kCalibrated)->plan_params(base, observed);
  EXPECT_EQ(fitted.policy, Policy::kWeighted);
  ASSERT_EQ(fitted.weights.size(), 3u);
  // Rank 2 took twice the time for the same work: half the speed weight.
  EXPECT_GT(fitted.weights[0], fitted.weights[2]);
  EXPECT_NEAR(fitted.weights[0] / fitted.weights[2], 2.0, 1e-9);
}

TEST(PolicyPlacement, CalibratedWithoutFeedbackStaysStatic) {
  PartitionParams base;
  base.ranks = 3;
  const PartitionParams fitted =
      make_policy(Schedule::kCalibrated)->plan_params(base, CostFeedback{});
  EXPECT_EQ(fitted.policy, base.policy);
  EXPECT_TRUE(fitted.weights.empty());
}

TEST(CalibrationWeights, NormalizedToMeanOne) {
  CostFeedback feedback;
  feedback.rank_seconds = {1.0, 1.0, 3.0, 3.0};
  feedback.rank_cost_units = {90.0, 90.0, 90.0, 90.0};
  const std::vector<double> weights = calibration_weights(feedback);
  ASSERT_EQ(weights.size(), 4u);
  double mean = 0.0;
  for (const double w : weights) mean += w;
  mean /= 4.0;
  EXPECT_NEAR(mean, 1.0, 1e-9);
  // The 3x-slower ranks get a third of the fast ranks' weight.
  EXPECT_NEAR(weights[0] / weights[2], 3.0, 1e-9);
}

TEST(CalibrationWeights, DegenerateFeedbackIsEmpty) {
  EXPECT_TRUE(calibration_weights(CostFeedback{}).empty());

  CostFeedback mismatched;
  mismatched.rank_seconds = {1.0, 1.0};
  mismatched.rank_cost_units = {1.0};
  EXPECT_TRUE(calibration_weights(mismatched).empty());

  CostFeedback zero_time;
  zero_time.rank_seconds = {1.0, 0.0};
  zero_time.rank_cost_units = {1.0, 1.0};
  EXPECT_TRUE(calibration_weights(zero_time).empty());

  CostFeedback zero_work;
  zero_work.rank_seconds = {1.0, 1.0};
  zero_work.rank_cost_units = {1.0, 0.0};
  EXPECT_TRUE(calibration_weights(zero_work).empty());
}

TEST(CalibrationWeights, OutliersAreClamped) {
  CostFeedback feedback;
  feedback.rank_seconds = {1.0, 1e6};
  feedback.rank_cost_units = {100.0, 100.0};
  const std::vector<double> weights = calibration_weights(feedback);
  ASSERT_EQ(weights.size(), 2u);
  EXPECT_LE(weights[0], 20.0);
  EXPECT_GE(weights[1], 0.05);
}

}  // namespace
}  // namespace lbe::core
