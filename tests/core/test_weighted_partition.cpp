// Tests for the Weighted policy (heterogeneous-cluster extension).
#include <gtest/gtest.h>

#include <numeric>

#include "common/error.hpp"
#include "core/partition.hpp"

namespace lbe::core {
namespace {

PartitionParams weighted(std::vector<double> weights) {
  PartitionParams params;
  params.policy = Policy::kWeighted;
  params.ranks = static_cast<int>(weights.size());
  params.weights = std::move(weights);
  return params;
}

TEST(WeightedPartition, ParsesFromString) {
  EXPECT_EQ(policy_from_string("weighted"), Policy::kWeighted);
  EXPECT_STREQ(policy_name(Policy::kWeighted), "weighted");
}

TEST(WeightedPartition, ValidationRules) {
  PartitionParams params;
  params.policy = Policy::kWeighted;
  params.ranks = 3;
  EXPECT_THROW(params.validate(), ConfigError);  // missing weights
  params.weights = {1.0, 2.0};
  EXPECT_THROW(params.validate(), ConfigError);  // wrong count
  params.weights = {1.0, 2.0, 0.0};
  EXPECT_THROW(params.validate(), ConfigError);  // non-positive
  params.weights = {1.0, 2.0, 3.0};
  EXPECT_NO_THROW(params.validate());

  PartitionParams cyclic;
  cyclic.ranks = 2;
  cyclic.weights = {1.0, 1.0};
  EXPECT_THROW(cyclic.validate(), ConfigError);  // weights w/o policy
}

TEST(WeightedPartition, EqualWeightsMatchCyclicCounts) {
  const auto plan =
      partition(std::vector<std::uint32_t>(10, 10), weighted({1, 1, 1, 1}));
  for (const auto& ids : plan.per_rank) EXPECT_EQ(ids.size(), 25u);
}

TEST(WeightedPartition, SharesProportionalToWeights) {
  // Weights 3:1 over 4 ranks -> shares 3/8 and 1/8 of 800 entries.
  const auto plan = partition(std::vector<std::uint32_t>(40, 20),
                              weighted({3.0, 3.0, 1.0, 1.0}));
  EXPECT_NEAR(static_cast<double>(plan.per_rank[0].size()), 300.0, 2.0);
  EXPECT_NEAR(static_cast<double>(plan.per_rank[1].size()), 300.0, 2.0);
  EXPECT_NEAR(static_cast<double>(plan.per_rank[2].size()), 100.0, 2.0);
  EXPECT_NEAR(static_cast<double>(plan.per_rank[3].size()), 100.0, 2.0);
}

TEST(WeightedPartition, ExactDisjointCover) {
  const auto plan = partition(std::vector<std::uint32_t>(13, 7),
                              weighted({2.5, 1.0, 0.5}));
  std::vector<bool> seen(13 * 7, false);
  for (const auto& ids : plan.per_rank) {
    for (const GlobalPeptideId id : ids) {
      ASSERT_LT(id, seen.size());
      EXPECT_FALSE(seen[id]);
      seen[id] = true;
    }
  }
  for (const bool s : seen) EXPECT_TRUE(s);
}

TEST(WeightedPartition, InterleavesNeighbours) {
  // Consecutive entries should spread: no rank may own a long run of
  // consecutive ids when weights are moderate.
  const auto plan =
      partition(std::vector<std::uint32_t>(10, 16), weighted({2, 1, 1}));
  for (const auto& ids : plan.per_rank) {
    std::size_t longest_run = 1;
    std::size_t run = 1;
    for (std::size_t i = 1; i < ids.size(); ++i) {
      run = (ids[i] == ids[i - 1] + 1) ? run + 1 : 1;
      longest_run = std::max(longest_run, run);
    }
    EXPECT_LE(longest_run, 3u);
  }
}

TEST(WeightedPartition, Deterministic) {
  const std::vector<std::uint32_t> groups(25, 11);
  const auto a = partition(groups, weighted({1.0, 0.25, 4.0}));
  const auto b = partition(groups, weighted({1.0, 0.25, 4.0}));
  EXPECT_EQ(a.per_rank, b.per_rank);
}

TEST(WeightedPartition, SkewedWeightsStillCover) {
  const auto plan =
      partition(std::vector<std::uint32_t>(1, 100), weighted({9.0, 1.0}));
  EXPECT_EQ(plan.total(), 100u);
  EXPECT_NEAR(static_cast<double>(plan.per_rank[0].size()), 90.0, 2.0);
  EXPECT_NEAR(static_cast<double>(plan.per_rank[1].size()), 10.0, 2.0);
}

}  // namespace
}  // namespace lbe::core
