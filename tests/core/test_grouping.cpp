#include "core/grouping.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "core/edit_distance.hpp"

namespace lbe::core {
namespace {

std::vector<std::string> shuffled(std::vector<std::string> v,
                                  std::uint64_t seed) {
  Xoshiro256 rng(seed);
  shuffle(v.begin(), v.end(), rng);
  return v;
}

TEST(GroupingParams, Validation) {
  GroupingParams params;
  EXPECT_NO_THROW(params.validate());
  params.d_prime = 1.5;
  EXPECT_THROW(params.validate(), ConfigError);
  params = GroupingParams{};
  params.gsize = 0;
  EXPECT_THROW(params.validate(), ConfigError);
}

TEST(Grouping, EmptyInput) {
  const auto result = group_peptides({}, GroupingParams{});
  EXPECT_TRUE(result.sequences.empty());
  EXPECT_TRUE(result.group_sizes.empty());
}

TEST(Grouping, SingleSequenceSingleGroup) {
  const auto result = group_peptides({"PEPTIDEK"}, GroupingParams{});
  ASSERT_EQ(result.group_sizes.size(), 1u);
  EXPECT_EQ(result.group_sizes[0], 1u);
}

TEST(Grouping, SortIsByLengthThenLex) {
  const auto result = group_peptides(
      {"CCC", "BBBB", "AAAA", "DD"}, GroupingParams{});
  ASSERT_EQ(result.sequences.size(), 4u);
  EXPECT_EQ(result.sequences[0], "DD");
  EXPECT_EQ(result.sequences[1], "CCC");
  EXPECT_EQ(result.sequences[2], "AAAA");
  EXPECT_EQ(result.sequences[3], "BBBB");
}

TEST(Grouping, GroupSizesSumToInput) {
  std::vector<std::string> seqs;
  Xoshiro256 rng(3);
  const std::string alphabet = "ACDEFGHIKLMNPQRSTVWY";
  for (int i = 0; i < 500; ++i) {
    std::string s;
    const std::size_t len = 6 + rng.below(20);
    for (std::size_t j = 0; j < len; ++j) {
      s += alphabet[rng.below(alphabet.size())];
    }
    seqs.push_back(std::move(s));
  }
  const auto result = group_peptides(seqs, GroupingParams{});
  const std::uint64_t total = std::accumulate(
      result.group_sizes.begin(), result.group_sizes.end(), std::uint64_t{0});
  EXPECT_EQ(total, seqs.size());
  EXPECT_EQ(result.sequences.size(), seqs.size());
  EXPECT_EQ(result.permutation.size(), seqs.size());
}

TEST(Grouping, PermutationIsValid) {
  const std::vector<std::string> input = {"CCC", "BBBB", "AAAA", "DD"};
  const auto result = group_peptides(input, GroupingParams{});
  std::vector<bool> seen(input.size(), false);
  for (std::size_t i = 0; i < input.size(); ++i) {
    const std::uint32_t orig = result.permutation[i];
    ASSERT_LT(orig, input.size());
    EXPECT_FALSE(seen[orig]);
    seen[orig] = true;
    EXPECT_EQ(result.sequences[i], input[orig]);
  }
}

TEST(Grouping, GsizeCapRespected) {
  // 50 identical sequences with gsize 20 must split into 20/20/10.
  std::vector<std::string> seqs(50, "PEPTIDEK");
  GroupingParams params;
  params.gsize = 20;
  const auto result = group_peptides(seqs, params);
  ASSERT_EQ(result.group_sizes.size(), 3u);
  EXPECT_EQ(result.group_sizes[0], 20u);
  EXPECT_EQ(result.group_sizes[1], 20u);
  EXPECT_EQ(result.group_sizes[2], 10u);
}

TEST(Grouping, SimilarSequencesGroupedTogether) {
  // A family of near-identical peptides and one outlier of equal length.
  GroupingParams params;
  params.criterion = GroupingCriterion::kAbsolute;
  params.d = 2;
  const std::vector<std::string> seqs = {
      "AAAAAAAAGK", "AAAAAAAACK", "AAAAAAAAMK", "WWWWWWWWWW"};
  const auto result = group_peptides(seqs, params);
  // Sorted: AAAAAAAACK, AAAAAAAAGK, AAAAAAAAMK, WWWWWWWWWW.
  ASSERT_EQ(result.group_sizes.size(), 2u);
  EXPECT_EQ(result.group_sizes[0], 3u);
  EXPECT_EQ(result.group_sizes[1], 1u);
}

TEST(Grouping, InputOrderDoesNotChangeOutput) {
  std::vector<std::string> seqs;
  Xoshiro256 rng(5);
  for (int f = 0; f < 10; ++f) {
    std::string base = "PEPTIDEBASE";
    base[0] = static_cast<char>('A' + f);
    for (int m = 0; m < 5; ++m) {
      std::string member = base;
      member[5] = static_cast<char>('A' + m);
      seqs.push_back(member);
    }
  }
  const auto a = group_peptides(seqs, GroupingParams{});
  const auto b = group_peptides(shuffled(seqs, 17), GroupingParams{});
  EXPECT_EQ(a.sequences, b.sequences);
  EXPECT_EQ(a.group_sizes, b.group_sizes);
}

TEST(Grouping, Criterion1CutoffBehaviour) {
  GroupingParams params;
  params.criterion = GroupingCriterion::kAbsolute;
  params.d = 2;
  // len 4: cutoff = max(2, 2) = 2.
  EXPECT_TRUE(passes_cutoff("AAAA", "AABB", params));
  EXPECT_FALSE(passes_cutoff("AAAA", "ABBB", params));
  // len 12: cutoff = max(2, 6) = 6 — longer sequences are more permissive.
  EXPECT_TRUE(passes_cutoff("AAAAAAAAAAAA", "AAAAAABBBBBB", params));
}

TEST(Grouping, Criterion2CutoffBehaviour) {
  GroupingParams params;
  params.criterion = GroupingCriterion::kNormalized;
  params.d_prime = 0.5;
  // dist("AAAA","AABB") = 2; 2/4 = 0.5 <= 0.5 passes.
  EXPECT_TRUE(passes_cutoff("AAAA", "AABB", params));
  // dist("AAAA","ABBB") = 3; 3/4 > 0.5 fails.
  EXPECT_FALSE(passes_cutoff("AAAA", "ABBB", params));
}

TEST(Grouping, PaperDefaultCriterion2IsPermissive) {
  // d' = 0.86: even quite different same-length sequences pass; groups are
  // then bounded mostly by gsize. This mirrors the paper's defaults.
  GroupingParams params;  // defaults: criterion 2, d' = 0.86
  EXPECT_TRUE(passes_cutoff("AAAAAAAAAA", "AAAABBBBBB", params));
  EXPECT_FALSE(passes_cutoff("AA", "WWWWWWWWWWWWWWWWWWWW", params));
}

TEST(Grouping, GroupMembersActuallySimilarUnderCriterion1) {
  GroupingParams params;
  params.criterion = GroupingCriterion::kAbsolute;
  params.d = 2;
  std::vector<std::string> seqs;
  Xoshiro256 rng(11);
  const std::string alphabet = "ACDEFGHIKLMNPQRSTVWY";
  for (int f = 0; f < 20; ++f) {
    std::string base;
    for (int j = 0; j < 12; ++j) base += alphabet[rng.below(20)];
    for (int m = 0; m < 4; ++m) {
      std::string member = base;
      member[rng.below(member.size())] = alphabet[rng.below(20)];
      seqs.push_back(member);
    }
  }
  const auto result = group_peptides(seqs, params);
  // Verify the grouping invariant: every member passes the cutoff vs the
  // group seed (first member of the group).
  std::size_t position = 0;
  for (const std::uint32_t size : result.group_sizes) {
    const std::string& seed = result.sequences[position];
    for (std::uint32_t k = 1; k < size; ++k) {
      EXPECT_TRUE(passes_cutoff(seed, result.sequences[position + k], params));
    }
    position += size;
  }
}

TEST(Grouping, GroupOfDerivation) {
  std::vector<std::string> seqs(25, "PEPTIDEK");
  GroupingParams params;
  params.gsize = 10;
  const auto result = group_peptides(seqs, params);
  const auto groups = result.group_of();
  ASSERT_EQ(groups.size(), 25u);
  EXPECT_EQ(groups[0], 0u);
  EXPECT_EQ(groups[9], 0u);
  EXPECT_EQ(groups[10], 1u);
  EXPECT_EQ(groups[24], 2u);
}

}  // namespace
}  // namespace lbe::core
