#include "core/edit_distance.hpp"

#include <gtest/gtest.h>

#include <string>
#include <tuple>

#include "common/rng.hpp"

namespace lbe::core {
namespace {

TEST(EditDistance, IdenticalStringsZero) {
  EXPECT_EQ(edit_distance("PEPTIDE", "PEPTIDE"), 0u);
  EXPECT_EQ(edit_distance("", ""), 0u);
}

TEST(EditDistance, EmptyVsNonEmpty) {
  EXPECT_EQ(edit_distance("", "ABC"), 3u);
  EXPECT_EQ(edit_distance("ABC", ""), 3u);
}

TEST(EditDistance, SingleOperations) {
  EXPECT_EQ(edit_distance("PEPTIDE", "PEPTIDES"), 1u);  // insert
  EXPECT_EQ(edit_distance("PEPTIDE", "PEPTIDE"), 0u);
  EXPECT_EQ(edit_distance("PEPTIDE", "PEPTIDX"), 1u);   // substitute
  EXPECT_EQ(edit_distance("PEPTIDE", "PEPTID"), 1u);    // delete
}

TEST(EditDistance, ClassicExamples) {
  EXPECT_EQ(edit_distance("KITTEN", "SITTING"), 3u);
  EXPECT_EQ(edit_distance("SUNDAY", "SATURDAY"), 3u);
  EXPECT_EQ(edit_distance("FLAW", "LAWN"), 2u);
}

TEST(EditDistance, Symmetric) {
  EXPECT_EQ(edit_distance("INTENTION", "EXECUTION"),
            edit_distance("EXECUTION", "INTENTION"));
}

TEST(BoundedEditDistance, ExactWithinLimit) {
  EXPECT_EQ(bounded_edit_distance("KITTEN", "SITTING", 3), 3u);
  EXPECT_EQ(bounded_edit_distance("KITTEN", "SITTING", 5), 3u);
  EXPECT_EQ(bounded_edit_distance("AAA", "AAA", 0), 0u);
}

TEST(BoundedEditDistance, ReportsExceededAsAboveLimit) {
  EXPECT_GT(bounded_edit_distance("KITTEN", "SITTING", 2), 2u);
  EXPECT_GT(bounded_edit_distance("AAAA", "BBBB", 3), 3u);
}

TEST(BoundedEditDistance, LengthGapShortCircuits) {
  EXPECT_GT(bounded_edit_distance("A", "AAAAAAAAAA", 3), 3u);
}

TEST(BoundedEditDistance, EmptyStringEdgeCases) {
  EXPECT_EQ(bounded_edit_distance("", "", 0), 0u);
  EXPECT_EQ(bounded_edit_distance("AB", "", 2), 2u);
  EXPECT_GT(bounded_edit_distance("ABC", "", 2), 2u);
}

// Property: banded result agrees with the reference DP whenever the true
// distance is within the limit, and exceeds the limit otherwise.
class BoundedVsReference
    : public ::testing::TestWithParam<std::tuple<int, std::uint32_t>> {};

TEST_P(BoundedVsReference, AgreesWithFullDp) {
  const auto [seed, limit] = GetParam();
  Xoshiro256 rng(static_cast<std::uint64_t>(seed));
  const std::string alphabet = "ACDEFGHIKLMNPQRSTVWY";
  for (int round = 0; round < 200; ++round) {
    const std::size_t len_a = 1 + rng.below(24);
    const std::size_t len_b = 1 + rng.below(24);
    std::string a;
    std::string b;
    for (std::size_t i = 0; i < len_a; ++i) {
      a += alphabet[rng.below(alphabet.size())];
    }
    // Half the time, derive b from a by light mutation so small distances
    // are well represented.
    if (round % 2 == 0) {
      b = a;
      const std::size_t edits = rng.below(4);
      for (std::size_t e = 0; e < edits && !b.empty(); ++e) {
        b[rng.below(b.size())] = alphabet[rng.below(alphabet.size())];
      }
    } else {
      for (std::size_t i = 0; i < len_b; ++i) {
        b += alphabet[rng.below(alphabet.size())];
      }
    }
    const std::uint32_t exact = edit_distance(a, b);
    const std::uint32_t banded = bounded_edit_distance(a, b, limit);
    if (exact <= limit) {
      EXPECT_EQ(banded, exact) << a << " vs " << b << " limit " << limit;
    } else {
      EXPECT_GT(banded, limit) << a << " vs " << b << " limit " << limit;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, BoundedVsReference,
    ::testing::Combine(::testing::Values(1, 2, 3),
                       ::testing::Values(0u, 1u, 2u, 4u, 8u, 16u)));

TEST(EditDistance, TriangleInequalityOnRandomTriples) {
  Xoshiro256 rng(99);
  const std::string alphabet = "ACDEFGHIKLMNPQRSTVWY";
  auto random_string = [&](std::size_t max_len) {
    std::string s;
    const std::size_t len = 1 + rng.below(max_len);
    for (std::size_t i = 0; i < len; ++i) {
      s += alphabet[rng.below(alphabet.size())];
    }
    return s;
  };
  for (int round = 0; round < 100; ++round) {
    const std::string a = random_string(15);
    const std::string b = random_string(15);
    const std::string c = random_string(15);
    EXPECT_LE(edit_distance(a, c),
              edit_distance(a, b) + edit_distance(b, c));
  }
}

}  // namespace
}  // namespace lbe::core
