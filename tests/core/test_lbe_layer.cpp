#include "core/lbe_layer.hpp"

#include <gtest/gtest.h>

#include <numeric>
#include <set>

#include "common/error.hpp"
#include "digest/variants.hpp"
#include "io/fasta.hpp"

namespace lbe::core {
namespace {

class LbeLayerTest : public ::testing::Test {
 protected:
  LbeLayerTest() {
    variant_params_.max_mod_residues = 2;
    lbe_params_.partition.ranks = 4;
    lbe_params_.partition.policy = Policy::kCyclic;
  }

  std::vector<std::string> sample_peptides() const {
    return {"NMKAAA", "NMKAAC", "NMKAAG",  // family with mods
            "GGGGGGG", "GGGGGGA",          // family without many mods
            "WWWWHHHH", "PEPTIDEK", "MMMMKK"};
  }

  chem::ModificationSet mods_ = chem::ModificationSet::paper_default();
  digest::VariantParams variant_params_;
  LbeParams lbe_params_;
};

TEST_F(LbeLayerTest, VariantTotalsMatchEnumeration) {
  const LbePlan plan(sample_peptides(), mods_, variant_params_, lbe_params_);
  std::uint64_t expected = 0;
  for (const auto& seq : plan.grouping().sequences) {
    expected += digest::count_variants(seq, mods_, variant_params_);
  }
  EXPECT_EQ(plan.num_variants(), expected);
  EXPECT_EQ(plan.num_bases(), sample_peptides().size());
}

TEST_F(LbeLayerTest, MappingCoversAllVariantsOnce) {
  const LbePlan plan(sample_peptides(), mods_, variant_params_, lbe_params_);
  const auto& mapping = plan.mapping();
  EXPECT_EQ(mapping.total_peptides(), plan.num_variants());
  std::set<GlobalPeptideId> seen;
  for (RankId rank = 0; rank < plan.ranks(); ++rank) {
    for (std::size_t local = 0; local < mapping.rank_count(rank); ++local) {
      const auto global =
          mapping.to_global(rank, static_cast<LocalPeptideId>(local));
      EXPECT_TRUE(seen.insert(global).second);
    }
  }
  EXPECT_EQ(seen.size(), plan.num_variants());
}

TEST_F(LbeLayerTest, RankStoreMatchesMappingOrder) {
  const LbePlan plan(sample_peptides(), mods_, variant_params_, lbe_params_);
  for (RankId rank = 0; rank < plan.ranks(); ++rank) {
    const auto store = plan.build_rank_store(rank);
    ASSERT_EQ(store.size(), plan.mapping().rank_count(rank));
    for (std::size_t local = 0; local < store.size(); ++local) {
      const auto global = plan.mapping().to_global(
          rank, static_cast<LocalPeptideId>(local));
      const chem::Peptide expected = plan.variant_peptide(global);
      EXPECT_EQ(store.materialize(static_cast<LocalPeptideId>(local)),
                expected);
    }
  }
}

TEST_F(LbeLayerTest, GlobalStoreMatchesVariantIds) {
  const LbePlan plan(sample_peptides(), mods_, variant_params_, lbe_params_);
  const auto store = plan.build_global_store();
  ASSERT_EQ(store.size(), plan.num_variants());
  for (GlobalPeptideId g = 0; g < store.size(); ++g) {
    EXPECT_EQ(store.materialize(g), plan.variant_peptide(g));
  }
}

TEST_F(LbeLayerTest, VariantsStayWithTheirBase) {
  // Every variant of a base peptide must live on the same rank.
  const LbePlan plan(sample_peptides(), mods_, variant_params_, lbe_params_);
  for (GlobalPeptideId g = 0; g < plan.num_variants(); ++g) {
    const auto loc = plan.locate_variant(g);
    const RankId rank = plan.mapping().rank_of(g);
    // The base's first variant must be on the same rank.
    const auto first_of_base = plan.locate_variant(g).ordinal == 0
                                   ? g
                                   : g - loc.ordinal;
    EXPECT_EQ(plan.mapping().rank_of(first_of_base), rank);
  }
}

TEST_F(LbeLayerTest, LocateVariantInverse) {
  const LbePlan plan(sample_peptides(), mods_, variant_params_, lbe_params_);
  std::uint64_t cursor = 0;
  for (std::uint32_t base = 0; base < plan.num_bases(); ++base) {
    const auto count = digest::count_variants(plan.base_sequence(base), mods_,
                                              variant_params_);
    for (std::uint32_t ordinal = 0; ordinal < count; ++ordinal, ++cursor) {
      const auto loc =
          plan.locate_variant(static_cast<GlobalPeptideId>(cursor));
      EXPECT_EQ(loc.base_id, base);
      EXPECT_EQ(loc.ordinal, ordinal);
    }
  }
  EXPECT_THROW(plan.locate_variant(
                   static_cast<GlobalPeptideId>(plan.num_variants())),
               InvariantError);
}

TEST_F(LbeLayerTest, ClusteredFastaRoundTrip) {
  const LbePlan plan(sample_peptides(), mods_, variant_params_, lbe_params_);
  const std::string path = ::testing::TempDir() + "/lbe_clustered.fasta";
  write_clustered_fasta(path, plan.grouping());
  const auto loaded = read_clustered_fasta(path);
  EXPECT_EQ(loaded.sequences, plan.grouping().sequences);
  EXPECT_EQ(loaded.group_sizes, plan.grouping().group_sizes);
}

TEST_F(LbeLayerTest, ReadClusteredFastaRejectsPlainFasta) {
  const std::string path = ::testing::TempDir() + "/lbe_plain.fasta";
  io::write_fasta_file(path, {{"not-a-cluster-header", "PEPTIDEK"}});
  EXPECT_THROW(read_clustered_fasta(path), ParseError);
}

TEST_F(LbeLayerTest, InvalidRankRejected) {
  const LbePlan plan(sample_peptides(), mods_, variant_params_, lbe_params_);
  EXPECT_THROW(plan.build_rank_store(-1), InvariantError);
  EXPECT_THROW(plan.build_rank_store(99), InvariantError);
}

TEST_F(LbeLayerTest, ChunkPolicyKeepsClusterOrderContiguous) {
  LbeParams chunk_params = lbe_params_;
  chunk_params.partition.policy = Policy::kChunk;
  const LbePlan plan(sample_peptides(), mods_, variant_params_, chunk_params);
  for (const auto& bases : plan.base_partition().per_rank) {
    for (std::size_t i = 1; i < bases.size(); ++i) {
      EXPECT_EQ(bases[i], bases[i - 1] + 1);
    }
  }
}

}  // namespace
}  // namespace lbe::core
