#include "core/partition.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>
#include <set>

#include "common/error.hpp"

namespace lbe::core {
namespace {

// Checks that a plan is a disjoint exact cover of {0..total-1} and local
// ids are in ascending global order.
void expect_exact_cover(const PartitionPlan& plan, std::size_t total) {
  std::vector<bool> seen(total, false);
  for (const auto& ids : plan.per_rank) {
    EXPECT_TRUE(std::is_sorted(ids.begin(), ids.end()));
    for (const GlobalPeptideId id : ids) {
      ASSERT_LT(id, total);
      EXPECT_FALSE(seen[id]) << "id assigned twice: " << id;
      seen[id] = true;
    }
  }
  for (std::size_t i = 0; i < total; ++i) {
    EXPECT_TRUE(seen[i]) << "id unassigned: " << i;
  }
}

std::vector<std::uint32_t> uniform_groups(std::size_t count,
                                          std::uint32_t size) {
  return std::vector<std::uint32_t>(count, size);
}

TEST(PolicyParsing, RoundTrip) {
  EXPECT_EQ(policy_from_string("chunk"), Policy::kChunk);
  EXPECT_EQ(policy_from_string("CYCLIC"), Policy::kCyclic);
  EXPECT_EQ(policy_from_string("Random"), Policy::kRandom);
  EXPECT_THROW(policy_from_string("zigzag"), ConfigError);
  EXPECT_STREQ(policy_name(Policy::kChunk), "chunk");
  EXPECT_STREQ(policy_name(Policy::kCyclic), "cyclic");
  EXPECT_STREQ(policy_name(Policy::kRandom), "random");
}

TEST(PartitionParams, Validation) {
  PartitionParams params;
  params.ranks = 0;
  EXPECT_THROW(params.validate(), ConfigError);
}

class PolicyCoverage
    : public ::testing::TestWithParam<std::tuple<Policy, int, std::size_t>> {};

TEST_P(PolicyCoverage, ExactDisjointCover) {
  const auto [policy, ranks, groups] = GetParam();
  PartitionParams params;
  params.policy = policy;
  params.ranks = ranks;
  const auto group_sizes = uniform_groups(groups, 20);
  const auto plan = partition(group_sizes, params);
  ASSERT_EQ(plan.per_rank.size(), static_cast<std::size_t>(ranks));
  expect_exact_cover(plan, groups * 20);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, PolicyCoverage,
    ::testing::Combine(::testing::Values(Policy::kChunk, Policy::kCyclic,
                                         Policy::kRandom),
                       ::testing::Values(1, 2, 7, 16),
                       ::testing::Values(std::size_t{1}, std::size_t{13},
                                         std::size_t{100})));

TEST(ChunkPolicy, ContiguousRanges) {
  PartitionParams params;
  params.policy = Policy::kChunk;
  params.ranks = 4;
  const auto plan = partition(uniform_groups(10, 10), params);  // N = 100
  for (const auto& ids : plan.per_rank) {
    ASSERT_FALSE(ids.empty());
    for (std::size_t i = 1; i < ids.size(); ++i) {
      EXPECT_EQ(ids[i], ids[i - 1] + 1);  // contiguous
    }
    EXPECT_EQ(ids.size(), 25u);
  }
  EXPECT_EQ(plan.per_rank[0].front(), 0u);
  EXPECT_EQ(plan.per_rank[3].back(), 99u);
}

TEST(ChunkPolicy, BalancedWhenNotDivisible) {
  PartitionParams params;
  params.policy = Policy::kChunk;
  params.ranks = 3;
  const auto plan = partition(uniform_groups(1, 10), params);  // N = 10
  std::vector<std::size_t> sizes;
  for (const auto& ids : plan.per_rank) sizes.push_back(ids.size());
  const auto [min_size, max_size] =
      std::minmax_element(sizes.begin(), sizes.end());
  EXPECT_LE(*max_size - *min_size, 1u);
}

TEST(CyclicPolicy, RoundRobinAssignment) {
  PartitionParams params;
  params.policy = Policy::kCyclic;
  params.ranks = 3;
  const auto plan = partition(uniform_groups(1, 9), params);
  EXPECT_EQ(plan.per_rank[0], (std::vector<GlobalPeptideId>{0, 3, 6}));
  EXPECT_EQ(plan.per_rank[1], (std::vector<GlobalPeptideId>{1, 4, 7}));
  EXPECT_EQ(plan.per_rank[2], (std::vector<GlobalPeptideId>{2, 5, 8}));
}

TEST(CyclicPolicy, PerGroupSpreadIsNearUniform) {
  // Every group of 20 split over 16 ranks: each rank gets 1 or 2 members.
  PartitionParams params;
  params.policy = Policy::kCyclic;
  params.ranks = 16;
  const std::size_t groups = 64;
  const auto plan = partition(uniform_groups(groups, 20), params);
  for (const auto& ids : plan.per_rank) {
    std::vector<std::size_t> per_group(groups, 0);
    for (const GlobalPeptideId id : ids) ++per_group[id / 20];
    for (const std::size_t count : per_group) {
      EXPECT_GE(count, 1u);
      EXPECT_LE(count, 2u);
    }
  }
}

TEST(ChunkPolicy, PlacesWholeGroupsOnOneRank) {
  // The pathology of Fig. 2: group members stay contiguous, so a rank owns
  // entire groups.
  PartitionParams params;
  params.policy = Policy::kChunk;
  params.ranks = 4;
  const std::size_t groups = 16;
  const auto plan = partition(uniform_groups(groups, 20), params);
  std::size_t whole_groups = 0;
  for (const auto& ids : plan.per_rank) {
    std::set<std::uint32_t> touched;
    std::vector<std::size_t> per_group(groups, 0);
    for (const GlobalPeptideId id : ids) {
      touched.insert(id / 20);
      ++per_group[id / 20];
    }
    for (const std::size_t count : per_group) {
      if (count == 20) ++whole_groups;
    }
  }
  EXPECT_GE(whole_groups, groups - 4);  // at most p-1... boundaries split
}

TEST(RandomPolicy, DeterministicForSeed) {
  PartitionParams params;
  params.policy = Policy::kRandom;
  params.ranks = 8;
  params.seed = 123;
  const auto group_sizes = uniform_groups(50, 20);
  const auto a = partition(group_sizes, params);
  const auto b = partition(group_sizes, params);
  EXPECT_EQ(a.per_rank, b.per_rank);
}

TEST(RandomPolicy, DifferentSeedsDiffer) {
  PartitionParams params;
  params.policy = Policy::kRandom;
  params.ranks = 8;
  params.seed = 1;
  const auto group_sizes = uniform_groups(50, 20);
  const auto a = partition(group_sizes, params);
  params.seed = 2;
  const auto b = partition(group_sizes, params);
  EXPECT_NE(a.per_rank, b.per_rank);
}

TEST(RandomPolicy, PerGroupSpreadBounded) {
  PartitionParams params;
  params.policy = Policy::kRandom;
  params.ranks = 16;
  const std::size_t groups = 64;
  const auto plan = partition(uniform_groups(groups, 20), params);
  // Chunk-splitting a shuffled 20-group into 16 parts yields parts of
  // size 1 or 2 only.
  for (const auto& ids : plan.per_rank) {
    std::vector<std::size_t> per_group(groups, 0);
    for (const GlobalPeptideId id : ids) ++per_group[id / 20];
    for (const std::size_t count : per_group) EXPECT_LE(count, 2u);
  }
}

TEST(RandomPolicy, RotationBalancesRankTotals) {
  PartitionParams params;
  params.policy = Policy::kRandom;
  params.ranks = 16;
  params.rotate_groups = true;
  const auto plan = partition(uniform_groups(64, 20), params);  // N = 1280
  for (const auto& ids : plan.per_rank) {
    EXPECT_EQ(ids.size(), 80u);  // perfectly balanced with rotation
  }
}

TEST(RandomPolicy, NoRotationSkewsFixedRanks) {
  PartitionParams params;
  params.policy = Policy::kRandom;
  params.ranks = 16;
  params.rotate_groups = false;
  const auto plan = partition(uniform_groups(64, 20), params);
  // 20 entries into 16 contiguous floor-boundary parts: parts 3, 7, 11, 15
  // get 2 members, the rest 1. Without rotation the same ranks receive the
  // big part for every group — a 2x systematic pile-up rotation fixes.
  EXPECT_EQ(plan.per_rank[3].size(), 128u);
  EXPECT_EQ(plan.per_rank[15].size(), 128u);
  EXPECT_EQ(plan.per_rank[0].size(), 64u);
  EXPECT_EQ(plan.per_rank[1].size(), 64u);
}

TEST(PartitionFlat, TreatsEntriesAsSingletonGroups) {
  PartitionParams params;
  params.policy = Policy::kCyclic;
  params.ranks = 4;
  const auto plan = partition_flat(10, params);
  expect_exact_cover(plan, 10);
  EXPECT_EQ(plan.per_rank[0].size(), 3u);
  EXPECT_EQ(plan.per_rank[3].size(), 2u);
}

TEST(Partition, SingleRankGetsEverything) {
  for (const Policy policy :
       {Policy::kChunk, Policy::kCyclic, Policy::kRandom}) {
    PartitionParams params;
    params.policy = policy;
    params.ranks = 1;
    const auto plan = partition(uniform_groups(5, 7), params);
    ASSERT_EQ(plan.per_rank.size(), 1u);
    EXPECT_EQ(plan.per_rank[0].size(), 35u);
  }
}

TEST(Partition, EmptyInputYieldsEmptyRanks) {
  PartitionParams params;
  params.ranks = 4;
  for (const Policy policy :
       {Policy::kChunk, Policy::kCyclic, Policy::kRandom}) {
    params.policy = policy;
    const auto plan = partition({}, params);
    ASSERT_EQ(plan.per_rank.size(), 4u);
    for (const auto& ids : plan.per_rank) EXPECT_TRUE(ids.empty());
  }
}

TEST(Partition, MoreRanksThanEntries) {
  PartitionParams params;
  params.policy = Policy::kCyclic;
  params.ranks = 10;
  const auto plan = partition(uniform_groups(1, 3), params);
  expect_exact_cover(plan, 3);
  std::size_t empty_ranks = 0;
  for (const auto& ids : plan.per_rank) {
    if (ids.empty()) ++empty_ranks;
  }
  EXPECT_EQ(empty_ranks, 7u);
}

}  // namespace
}  // namespace lbe::core
