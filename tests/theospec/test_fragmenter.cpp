#include "theospec/fragmenter.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "chem/amino_acid.hpp"
#include "chem/mass.hpp"

namespace lbe::theospec {
namespace {

class FragmenterTest : public ::testing::Test {
 protected:
  chem::ModificationSet mods_ = chem::ModificationSet::paper_default();
  FragmentParams single_charge_ = [] {
    FragmentParams p;
    p.max_fragment_charge = 1;
    return p;
  }();
};

TEST_F(FragmenterTest, CountMatchesFormula) {
  const chem::Peptide p("PEPTIDEK");
  const auto fragments = fragment_peptide(p, mods_, single_charge_);
  EXPECT_EQ(fragments.size(), fragment_count(8, single_charge_));
  EXPECT_EQ(fragments.size(), 14u);  // (8-1) cuts * (b + y)
}

TEST_F(FragmenterTest, ChargeTwoDoublesCount) {
  FragmentParams p2 = single_charge_;
  p2.max_fragment_charge = 2;
  const chem::Peptide p("PEPTIDEK");
  EXPECT_EQ(fragment_peptide(p, mods_, p2).size(), 28u);
  EXPECT_EQ(fragment_count(8, p2), 28u);
}

TEST_F(FragmenterTest, TooShortPeptideYieldsNothing) {
  const chem::Peptide p("K");
  EXPECT_TRUE(fragment_peptide(p, mods_, single_charge_).empty());
  EXPECT_EQ(fragment_count(1, single_charge_), 0u);
}

TEST_F(FragmenterTest, SortedByMz) {
  const chem::Peptide p("MKWVTFISLLK");
  const auto fragments = fragment_peptide(p, mods_, single_charge_);
  EXPECT_TRUE(std::is_sorted(
      fragments.begin(), fragments.end(),
      [](const Fragment& a, const Fragment& b) { return a.mz < b.mz; }));
}

TEST_F(FragmenterTest, B2IonOfKnownPeptide) {
  // b2 of PEPTIDEK: P + E residues + proton, singly charged.
  const chem::Peptide p("PEPTIDEK");
  const auto fragments = fragment_peptide(p, mods_, single_charge_);
  const double expected_b2 =
      chem::residue_mass('P') + chem::residue_mass('E') + chem::kProton;
  bool found = false;
  for (const auto& f : fragments) {
    if (f.series == IonSeries::kB && f.ordinal == 2 && f.charge == 1) {
      EXPECT_NEAR(f.mz, expected_b2, 1e-6);
      found = true;
    }
  }
  EXPECT_TRUE(found);
}

TEST_F(FragmenterTest, Y1IonOfKnownPeptide) {
  // y1 of PEPTIDEK: K residue + water + proton.
  const chem::Peptide p("PEPTIDEK");
  const auto fragments = fragment_peptide(p, mods_, single_charge_);
  const double expected_y1 =
      chem::residue_mass('K') + chem::kWater + chem::kProton;
  bool found = false;
  for (const auto& f : fragments) {
    if (f.series == IonSeries::kY && f.ordinal == 1 && f.charge == 1) {
      EXPECT_NEAR(f.mz, expected_y1, 1e-6);
      found = true;
    }
  }
  EXPECT_TRUE(found);
}

TEST_F(FragmenterTest, BYComplementarity) {
  // Neutral(b_i) + Neutral(y_{n-i}) == peptide neutral mass, for every i.
  const chem::Peptide p("MKWVTFISLLK");
  const double total = p.mass(mods_);
  const auto fragments = fragment_peptide(p, mods_, single_charge_);
  const std::size_t n = p.length();
  for (std::size_t i = 1; i < n; ++i) {
    double b_neutral = -1.0;
    double y_neutral = -1.0;
    for (const auto& f : fragments) {
      if (f.charge != 1) continue;
      if (f.series == IonSeries::kB && f.ordinal == i) {
        b_neutral = f.mz - chem::kProton;
      }
      if (f.series == IonSeries::kY && f.ordinal == n - i) {
        y_neutral = f.mz - chem::kProton;
      }
    }
    ASSERT_GE(b_neutral, 0.0);
    ASSERT_GE(y_neutral, 0.0);
    EXPECT_NEAR(b_neutral + y_neutral, total, 1e-6) << "cut " << i;
  }
}

TEST_F(FragmenterTest, ModificationShiftsContainingFragments) {
  // Oxidation (id 2) on M at position 0 of "MGGGK": every b ion shifts,
  // y ions (which exclude position 0) do not.
  const chem::Peptide plain("MGGGK");
  const chem::Peptide oxidized("MGGGK", {{0, 2}}, mods_);
  const auto f_plain = fragment_peptide(plain, mods_, single_charge_);
  const auto f_ox = fragment_peptide(oxidized, mods_, single_charge_);
  auto find = [](const std::vector<Fragment>& v, IonSeries s,
                 std::uint16_t ordinal) {
    for (const auto& f : v) {
      if (f.series == s && f.ordinal == ordinal && f.charge == 1) return f.mz;
    }
    return -1.0;
  };
  EXPECT_NEAR(find(f_ox, IonSeries::kB, 1) - find(f_plain, IonSeries::kB, 1),
              15.99491462, 1e-5);
  EXPECT_NEAR(find(f_ox, IonSeries::kY, 4) - find(f_plain, IonSeries::kY, 4),
              0.0, 1e-9);
}

TEST_F(FragmenterTest, AIonsAreBMinusCO) {
  FragmentParams with_a = single_charge_;
  with_a.a_ions = true;
  const chem::Peptide p("PEPTIDEK");
  const auto fragments = fragment_peptide(p, mods_, with_a);
  double b3 = -1.0;
  double a3 = -1.0;
  for (const auto& f : fragments) {
    if (f.ordinal == 3 && f.charge == 1) {
      if (f.series == IonSeries::kB) b3 = f.mz;
      if (f.series == IonSeries::kA) a3 = f.mz;
    }
  }
  ASSERT_GT(b3, 0.0);
  ASSERT_GT(a3, 0.0);
  EXPECT_NEAR(b3 - a3, chem::kCarbonMonoxide, 1e-6);
}

TEST_F(FragmenterTest, NeutralLossesCounted) {
  FragmentParams losses = single_charge_;
  losses.neutral_loss_nh3 = true;
  losses.neutral_loss_h2o = true;
  EXPECT_EQ(fragment_count(8, losses), 7u * 6u);  // (b,y,±NH3,±H2O per cut)
  const chem::Peptide p("PEPTIDEK");
  EXPECT_EQ(fragment_peptide(p, mods_, losses).size(), 42u);
}

TEST_F(FragmenterTest, TheoreticalSpectrumHasPrecursorAndSortedPeaks) {
  const chem::Peptide p("PEPTIDEK");
  const auto spec = theoretical_spectrum(p, mods_, single_charge_);
  EXPECT_EQ(spec.size(), 14u);
  EXPECT_NEAR(spec.precursor.neutral_mass, p.mass(mods_), 1e-9);
  EXPECT_EQ(spec.precursor.charge, 2);
  for (std::size_t i = 1; i < spec.size(); ++i) {
    EXPECT_LT(spec.mz(i - 1), spec.mz(i));
  }
}

TEST_F(FragmenterTest, DoublyChargedIsHalfShifted) {
  FragmentParams p2 = single_charge_;
  p2.max_fragment_charge = 2;
  const chem::Peptide p("PEPTIDEK");
  const auto fragments = fragment_peptide(p, mods_, p2);
  double b3_z1 = -1.0;
  double b3_z2 = -1.0;
  for (const auto& f : fragments) {
    if (f.series == IonSeries::kB && f.ordinal == 3) {
      if (f.charge == 1) b3_z1 = f.mz;
      if (f.charge == 2) b3_z2 = f.mz;
    }
  }
  // neutral = z1 - proton; z2 = (neutral + 2 protons) / 2.
  const double neutral = b3_z1 - chem::kProton;
  EXPECT_NEAR(b3_z2, (neutral + 2 * chem::kProton) / 2.0, 1e-9);
}

}  // namespace
}  // namespace lbe::theospec
