#include "io/fasta.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "common/error.hpp"

namespace lbe::io {
namespace {

TEST(Fasta, ParsesSimpleRecords) {
  std::istringstream in(">sp|P1|PROT1\nPEPTIDE\n>sp|P2|PROT2\nACDEFGH\n");
  const auto records = read_fasta(in);
  ASSERT_EQ(records.size(), 2u);
  EXPECT_EQ(records[0].header, "sp|P1|PROT1");
  EXPECT_EQ(records[0].sequence, "PEPTIDE");
  EXPECT_EQ(records[1].sequence, "ACDEFGH");
}

TEST(Fasta, JoinsWrappedLines) {
  std::istringstream in(">p\nPEPT\nIDEK\nAAA\n");
  const auto records = read_fasta(in);
  ASSERT_EQ(records.size(), 1u);
  EXPECT_EQ(records[0].sequence, "PEPTIDEKAAA");
}

TEST(Fasta, UppercasesAndStripsStopCodons) {
  std::istringstream in(">p\npep*tide\n");
  const auto records = read_fasta(in);
  EXPECT_EQ(records[0].sequence, "PEPTIDE");
}

TEST(Fasta, HandlesCrlfAndBlankLines) {
  std::istringstream in(">p\r\n\r\nPEP\r\nTIDE\r\n\r\n");
  const auto records = read_fasta(in);
  EXPECT_EQ(records[0].sequence, "PEPTIDE");
}

// CRLF twin of ParsesSimpleRecords: headers and sequences must come out
// byte-identical to the LF parse — no '\r' may survive into either.
TEST(Fasta, CrlfInputParsesIdenticallyToLf) {
  const std::string lf_text = ">sp|P1|PROT1\nPEPTIDE\n>sp|P2|PROT2\nACDEFGH\n";
  std::string crlf_text;
  for (const char c : lf_text) {
    if (c == '\n') crlf_text += '\r';
    crlf_text += c;
  }
  std::istringstream lf_in(lf_text);
  std::istringstream crlf_in(crlf_text);
  const auto lf = read_fasta(lf_in);
  const auto windows = read_fasta(crlf_in);
  ASSERT_EQ(windows.size(), lf.size());
  for (std::size_t i = 0; i < lf.size(); ++i) {
    EXPECT_EQ(windows[i].header, lf[i].header);
    EXPECT_EQ(windows[i].sequence, lf[i].sequence);
    EXPECT_EQ(windows[i].header.find('\r'), std::string::npos);
  }
}

TEST(Fasta, SkipsLegacyCommentLines) {
  std::istringstream in(">p\n; comment\nPEP\n");
  const auto records = read_fasta(in);
  EXPECT_EQ(records[0].sequence, "PEP");
}

TEST(Fasta, RejectsSequenceBeforeHeader) {
  std::istringstream in("PEPTIDE\n>p\nAAA\n");
  EXPECT_THROW(read_fasta(in), ParseError);
}

TEST(Fasta, RejectsInvalidResidueWithContext) {
  std::istringstream in(">prot1\nPEP1TIDE\n");
  try {
    read_fasta(in, "db.fasta");
    FAIL() << "expected ParseError";
  } catch (const ParseError& e) {
    EXPECT_EQ(e.file(), "db.fasta");
    EXPECT_EQ(e.line(), 2u);
    EXPECT_NE(std::string(e.what()).find("prot1"), std::string::npos);
  }
}

TEST(Fasta, RejectsEmptySequenceRecord) {
  std::istringstream in(">only-header\n");
  EXPECT_THROW(read_fasta(in), ParseError);
}

TEST(Fasta, EmptyStreamYieldsNoRecords) {
  std::istringstream in("");
  EXPECT_TRUE(read_fasta(in).empty());
}

TEST(Fasta, WriteReadRoundTrip) {
  const std::vector<FastaRecord> records = {
      {"first", "PEPTIDEKAAA"},
      {"second protein with spaces", "MKWVTFISLL"},
  };
  std::ostringstream out;
  write_fasta(out, records, 4);  // tiny wrap width exercises wrapping
  std::istringstream in(out.str());
  const auto again = read_fasta(in);
  ASSERT_EQ(again.size(), records.size());
  for (std::size_t i = 0; i < records.size(); ++i) {
    EXPECT_EQ(again[i].header, records[i].header);
    EXPECT_EQ(again[i].sequence, records[i].sequence);
  }
}

TEST(Fasta, WriteUnwrappedWhenWidthZero) {
  std::ostringstream out;
  write_fasta(out, {{"p", "PEPTIDEKAAA"}}, 0);
  EXPECT_EQ(out.str(), ">p\nPEPTIDEKAAA\n");
}

TEST(Fasta, FileRoundTripAndMissingFile) {
  const std::string path = ::testing::TempDir() + "/lbe_fasta_test.fasta";
  write_fasta_file(path, {{"p1", "PEPTIDEK"}});
  const auto records = read_fasta_file(path);
  ASSERT_EQ(records.size(), 1u);
  EXPECT_EQ(records[0].sequence, "PEPTIDEK");
  EXPECT_THROW(read_fasta_file("/nonexistent/dir/f.fasta"), IoError);
}

}  // namespace
}  // namespace lbe::io
