#include "io/ms2.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "chem/mass.hpp"
#include "common/error.hpp"

namespace lbe::io {
namespace {

constexpr const char* kSample =
    "H\tCreationDate\t2019-03-01\n"
    "H\tExtractor\tmsconvert\n"
    "S\t1\t1\t750.4000\n"
    "Z\t2\t1499.7927\n"
    "100.1 10.5\n"
    "200.2 20.0\n"
    "S\t2\t2\t500.2500\n"
    "150.0 5.0\n";

TEST(Ms2, ParsesHeadersScansAndPeaks) {
  std::istringstream in(kSample);
  const auto file = read_ms2(in);
  EXPECT_EQ(file.headers.at("Extractor"), "msconvert");
  ASSERT_EQ(file.spectra.size(), 2u);

  const auto& first = file.spectra[0];
  EXPECT_EQ(first.scan_id, 1u);
  EXPECT_DOUBLE_EQ(first.precursor.mz, 750.4);
  EXPECT_EQ(first.precursor.charge, 2);
  // Z line stores (M+H)+; neutral = value - proton.
  EXPECT_NEAR(first.precursor.neutral_mass, 1499.7927 - chem::kProton, 1e-6);
  ASSERT_EQ(first.size(), 2u);
  EXPECT_DOUBLE_EQ(first.mz(0), 100.1);
  EXPECT_FLOAT_EQ(first.intensity(1), 20.0f);

  const auto& second = file.spectra[1];
  EXPECT_EQ(second.scan_id, 2u);
  EXPECT_EQ(second.precursor.charge, 0);  // no Z line
  ASSERT_EQ(second.size(), 1u);
}

// msconvert on Windows emits CRLF; a surviving '\r' used to be able to
// corrupt header values and peak fields. The CRLF file must parse exactly
// like its LF twin, with no '\r' anywhere in the parsed values.
TEST(Ms2, CrlfInputParsesIdenticallyToLf) {
  std::string crlf;
  for (const char c : std::string(kSample)) {
    if (c == '\n') crlf += '\r';
    crlf += c;
  }
  std::istringstream lf_in(kSample);
  std::istringstream crlf_in(crlf);
  const auto lf = read_ms2(lf_in);
  const auto windows = read_ms2(crlf_in);

  ASSERT_EQ(windows.headers.size(), lf.headers.size());
  for (const auto& [key, value] : lf.headers) {
    ASSERT_TRUE(windows.headers.count(key)) << key;
    EXPECT_EQ(windows.headers.at(key), value);
    EXPECT_EQ(value.find('\r'), std::string::npos);
  }
  ASSERT_EQ(windows.spectra.size(), lf.spectra.size());
  for (std::size_t s = 0; s < lf.spectra.size(); ++s) {
    const auto& a = lf.spectra[s];
    const auto& b = windows.spectra[s];
    EXPECT_EQ(b.scan_id, a.scan_id);
    EXPECT_DOUBLE_EQ(b.precursor.mz, a.precursor.mz);
    EXPECT_EQ(b.precursor.charge, a.precursor.charge);
    EXPECT_DOUBLE_EQ(b.precursor.neutral_mass, a.precursor.neutral_mass);
    ASSERT_EQ(b.size(), a.size());
    for (std::size_t i = 0; i < a.size(); ++i) {
      EXPECT_DOUBLE_EQ(b.mz(i), a.mz(i));
      EXPECT_FLOAT_EQ(b.intensity(i), a.intensity(i));
    }
  }
}

TEST(Ms2, AcceptsSpaceOrTabSeparators) {
  std::istringstream in("S 3 3 400.0\n100.0\t1.0\n");
  const auto file = read_ms2(in);
  ASSERT_EQ(file.spectra.size(), 1u);
  EXPECT_EQ(file.spectra[0].scan_id, 3u);
  EXPECT_EQ(file.spectra[0].size(), 1u);
}

TEST(Ms2, PeaksSortedAfterParse) {
  std::istringstream in("S 1 1 400.0\n300.0 1.0\n100.0 2.0\n200.0 3.0\n");
  const auto file = read_ms2(in);
  const auto& s = file.spectra[0];
  ASSERT_EQ(s.size(), 3u);
  EXPECT_LT(s.mz(0), s.mz(1));
  EXPECT_LT(s.mz(1), s.mz(2));
}

TEST(Ms2, RejectsPeakOutsideScan) {
  std::istringstream in("100.0 1.0\n");
  EXPECT_THROW(read_ms2(in), ParseError);
}

TEST(Ms2, RejectsZOutsideScan) {
  std::istringstream in("Z 2 1000.0\n");
  EXPECT_THROW(read_ms2(in), ParseError);
}

TEST(Ms2, RejectsTruncatedSLine) {
  std::istringstream in("S 1 1\n");
  EXPECT_THROW(read_ms2(in), ParseError);
}

TEST(Ms2, RejectsNegativeValues) {
  std::istringstream in("S 1 1 400.0\n-100.0 1.0\n");
  EXPECT_THROW(read_ms2(in), ParseError);
}

TEST(Ms2, RejectsBadCharge) {
  std::istringstream in("S 1 1 400.0\nZ 999 1000.0\n");
  EXPECT_THROW(read_ms2(in), ParseError);
}

TEST(Ms2, ReportsLineNumbers) {
  std::istringstream in("S 1 1 400.0\n100.0 1.0\njunk here x\n");
  try {
    read_ms2(in, "run.ms2");
    FAIL() << "expected ParseError";
  } catch (const ParseError& e) {
    EXPECT_EQ(e.file(), "run.ms2");
    EXPECT_EQ(e.line(), 3u);
  }
}

TEST(Ms2, IgnoresInfoLines) {
  std::istringstream in("S 1 1 400.0\nI\tRTime\t12.3\n100.0 1.0\n");
  const auto file = read_ms2(in);
  EXPECT_EQ(file.spectra[0].size(), 1u);
}

TEST(Ms2, WriteReadRoundTrip) {
  Ms2File original;
  original.headers["Extractor"] = "lbe";
  chem::Spectrum s;
  s.scan_id = 7;
  s.precursor.mz = 600.3;
  s.precursor.charge = 2;
  s.precursor.neutral_mass = 1198.58;
  s.add_peak(100.1234, 11.0f);
  s.add_peak(250.5678, 22.5f);
  s.finalize();
  original.spectra.push_back(std::move(s));

  std::ostringstream out;
  write_ms2(out, original);
  std::istringstream in(out.str());
  const auto parsed = read_ms2(in);

  ASSERT_EQ(parsed.spectra.size(), 1u);
  const auto& p = parsed.spectra[0];
  EXPECT_EQ(p.scan_id, 7u);
  EXPECT_EQ(p.precursor.charge, 2);
  EXPECT_NEAR(p.precursor.neutral_mass, 1198.58, 1e-3);
  ASSERT_EQ(p.size(), 2u);
  EXPECT_NEAR(p.mz(0), 100.1234, 1e-4);
  EXPECT_NEAR(static_cast<double>(p.intensity(1)), 22.5, 0.1);
}

TEST(Ms2, FileRoundTripAndMissingFile) {
  Ms2File file;
  chem::Spectrum s;
  s.scan_id = 1;
  s.precursor.mz = 500.0;
  s.add_peak(123.4, 1.0f);
  s.finalize();
  file.spectra.push_back(std::move(s));

  const std::string path = ::testing::TempDir() + "/lbe_ms2_test.ms2";
  write_ms2_file(path, file);
  const auto parsed = read_ms2_file(path);
  EXPECT_EQ(parsed.spectra.size(), 1u);
  EXPECT_THROW(read_ms2_file("/nonexistent/x.ms2"), IoError);
}

}  // namespace
}  // namespace lbe::io
