#include "common/logging.hpp"

#include <gtest/gtest.h>

#include <string>
#include <vector>

namespace lbe::log {
namespace {

struct Captured {
  Level level;
  std::string message;
};

class LoggingTest : public ::testing::Test {
 protected:
  void SetUp() override {
    set_level(Level::kDebug);
    set_sink([this](Level lvl, const std::string& msg) {
      captured_.push_back({lvl, msg});
    });
  }
  void TearDown() override {
    set_sink(nullptr);
    set_level(Level::kInfo);
  }
  std::vector<Captured> captured_;
};

TEST_F(LoggingTest, MessagesReachSink) {
  info("hello ", 42);
  ASSERT_EQ(captured_.size(), 1u);
  EXPECT_EQ(captured_[0].message, "hello 42");
  EXPECT_EQ(captured_[0].level, Level::kInfo);
}

TEST_F(LoggingTest, LevelFilterSuppresses) {
  set_level(Level::kWarn);
  debug("invisible");
  info("also invisible");
  warn("visible");
  error("also visible");
  ASSERT_EQ(captured_.size(), 2u);
  EXPECT_EQ(captured_[0].level, Level::kWarn);
  EXPECT_EQ(captured_[1].level, Level::kError);
}

TEST_F(LoggingTest, OffSilencesEverything) {
  set_level(Level::kOff);
  error("nope");
  EXPECT_TRUE(captured_.empty());
}

TEST_F(LoggingTest, ConcatenatesMixedTypes) {
  set_level(Level::kDebug);
  debug("x=", 1.5, " y=", 2, " z=", "str");
  ASSERT_EQ(captured_.size(), 1u);
  EXPECT_EQ(captured_[0].message, "x=1.5 y=2 z=str");
}

}  // namespace
}  // namespace lbe::log
