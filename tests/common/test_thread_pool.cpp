#include "common/thread_pool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <vector>

namespace lbe {
namespace {

TEST(ThreadPool, SizeOneRunsInline) {
  ThreadPool pool(1);
  EXPECT_EQ(pool.size(), 1u);
  std::vector<int> hits(10, 0);
  pool.parallel_for(0, 10, [&](std::size_t lo, std::size_t hi) {
    for (std::size_t i = lo; i < hi; ++i) ++hits[i];
  });
  for (const int h : hits) EXPECT_EQ(h, 1);
}

TEST(ThreadPool, CoversEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(1000);
  pool.parallel_for(0, hits.size(), [&](std::size_t lo, std::size_t hi) {
    for (std::size_t i = lo; i < hi; ++i) hits[i].fetch_add(1);
  });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, EmptyRangeIsNoop) {
  ThreadPool pool(2);
  bool ran = false;
  pool.parallel_for(5, 5, [&](std::size_t, std::size_t) { ran = true; });
  EXPECT_FALSE(ran);
}

TEST(ThreadPool, OffsetRange) {
  ThreadPool pool(3);
  std::atomic<std::size_t> sum{0};
  pool.parallel_for(10, 20, [&](std::size_t lo, std::size_t hi) {
    std::size_t local = 0;
    for (std::size_t i = lo; i < hi; ++i) local += i;
    sum.fetch_add(local);
  });
  EXPECT_EQ(sum.load(), 145u);  // 10 + 11 + ... + 19
}

TEST(ThreadPool, MoreThreadsThanItems) {
  ThreadPool pool(8);
  std::vector<std::atomic<int>> hits(3);
  pool.parallel_for(0, 3, [&](std::size_t lo, std::size_t hi) {
    for (std::size_t i = lo; i < hi; ++i) hits[i].fetch_add(1);
  });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, PropagatesExceptions) {
  ThreadPool pool(4);
  EXPECT_THROW(
      pool.parallel_for(0, 100,
                        [&](std::size_t lo, std::size_t) {
                          if (lo == 0) throw std::runtime_error("boom");
                        }),
      std::runtime_error);
}

TEST(ThreadPool, ReusableAfterException) {
  ThreadPool pool(2);
  try {
    pool.parallel_for(0, 10, [](std::size_t, std::size_t) {
      throw std::runtime_error("first");
    });
  } catch (const std::runtime_error&) {
  }
  std::atomic<int> count{0};
  pool.parallel_for(0, 10, [&](std::size_t lo, std::size_t hi) {
    count.fetch_add(static_cast<int>(hi - lo));
  });
  EXPECT_EQ(count.load(), 10);
}

TEST(ThreadPool, SequentialCallsAccumulate) {
  ThreadPool pool(2);
  std::atomic<int> total{0};
  for (int round = 0; round < 5; ++round) {
    pool.parallel_for(0, 100, [&](std::size_t lo, std::size_t hi) {
      total.fetch_add(static_cast<int>(hi - lo));
    });
  }
  EXPECT_EQ(total.load(), 500);
}

}  // namespace
}  // namespace lbe
