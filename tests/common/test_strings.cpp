#include "common/strings.hpp"

#include <gtest/gtest.h>

namespace lbe::str {
namespace {

TEST(Trim, RemovesSurroundingWhitespace) {
  EXPECT_EQ(trim("  hello  "), "hello");
  EXPECT_EQ(trim("\t\r\nx\n"), "x");
}

TEST(Trim, PreservesInnerWhitespace) { EXPECT_EQ(trim(" a b "), "a b"); }

TEST(Trim, EmptyAndAllWhitespace) {
  EXPECT_EQ(trim(""), "");
  EXPECT_EQ(trim("   \t\n"), "");
}

TEST(Split, BasicFields) {
  const auto parts = split("a,b,c", ',');
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[1], "b");
  EXPECT_EQ(parts[2], "c");
}

TEST(Split, PreservesEmptyFields) {
  const auto parts = split(",a,,b,", ',');
  ASSERT_EQ(parts.size(), 5u);
  EXPECT_EQ(parts[0], "");
  EXPECT_EQ(parts[2], "");
  EXPECT_EQ(parts[4], "");
}

TEST(Split, SingleFieldWithoutSeparator) {
  const auto parts = split("abc", ',');
  ASSERT_EQ(parts.size(), 1u);
  EXPECT_EQ(parts[0], "abc");
}

TEST(SplitWs, CollapsesRuns) {
  const auto parts = split_ws("  a \t b\n c  ");
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[1], "b");
  EXPECT_EQ(parts[2], "c");
}

TEST(SplitWs, EmptyInputYieldsNoFields) {
  EXPECT_TRUE(split_ws("").empty());
  EXPECT_TRUE(split_ws("   ").empty());
}

TEST(StartsWith, Basics) {
  EXPECT_TRUE(starts_with("peptide", "pep"));
  EXPECT_FALSE(starts_with("pep", "peptide"));
  EXPECT_TRUE(starts_with("x", ""));
}

TEST(ToUpper, MixedCase) { EXPECT_EQ(to_upper("PepTide"), "PEPTIDE"); }

TEST(ParseDouble, Valid) {
  double v = 0.0;
  EXPECT_TRUE(parse_double("3.25", v));
  EXPECT_DOUBLE_EQ(v, 3.25);
  EXPECT_TRUE(parse_double(" -1e-3 ", v));
  EXPECT_DOUBLE_EQ(v, -1e-3);
}

TEST(ParseDouble, RejectsGarbage) {
  double v = 0.0;
  EXPECT_FALSE(parse_double("", v));
  EXPECT_FALSE(parse_double("abc", v));
  EXPECT_FALSE(parse_double("1.5x", v));
}

TEST(ParseU64, ValidAndInvalid) {
  std::uint64_t v = 0;
  EXPECT_TRUE(parse_u64("42", v));
  EXPECT_EQ(v, 42u);
  EXPECT_FALSE(parse_u64("-1", v));
  EXPECT_FALSE(parse_u64("4.2", v));
  EXPECT_FALSE(parse_u64("", v));
}

TEST(HumanBytes, Units) {
  EXPECT_EQ(human_bytes(512), "512.00 B");
  EXPECT_EQ(human_bytes(1536), "1.50 KiB");
  EXPECT_EQ(human_bytes(3u * 1024 * 1024), "3.00 MiB");
}

TEST(HumanSeconds, Ranges) {
  EXPECT_EQ(human_seconds(0.5e-3), "500.0 us");
  EXPECT_EQ(human_seconds(0.25), "250.0 ms");
  EXPECT_EQ(human_seconds(2.5), "2.50 s");
}

}  // namespace
}  // namespace lbe::str
