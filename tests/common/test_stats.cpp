#include "common/stats.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "common/error.hpp"
#include "common/rng.hpp"

namespace lbe {
namespace {

TEST(RunningStats, EmptyIsZero) {
  RunningStats stats;
  EXPECT_EQ(stats.count(), 0u);
  EXPECT_DOUBLE_EQ(stats.mean(), 0.0);
  EXPECT_DOUBLE_EQ(stats.variance(), 0.0);
}

TEST(RunningStats, SingleValue) {
  RunningStats stats;
  stats.add(5.0);
  EXPECT_EQ(stats.count(), 1u);
  EXPECT_DOUBLE_EQ(stats.mean(), 5.0);
  EXPECT_DOUBLE_EQ(stats.variance(), 0.0);
  EXPECT_DOUBLE_EQ(stats.min(), 5.0);
  EXPECT_DOUBLE_EQ(stats.max(), 5.0);
}

TEST(RunningStats, KnownMoments) {
  RunningStats stats;
  for (const double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) {
    stats.add(x);
  }
  EXPECT_DOUBLE_EQ(stats.mean(), 5.0);
  EXPECT_DOUBLE_EQ(stats.variance(), 4.0);  // classic textbook set
  EXPECT_DOUBLE_EQ(stats.stddev(), 2.0);
  EXPECT_DOUBLE_EQ(stats.min(), 2.0);
  EXPECT_DOUBLE_EQ(stats.max(), 9.0);
  EXPECT_DOUBLE_EQ(stats.sum(), 40.0);
}

TEST(RunningStats, MergeMatchesSequential) {
  Xoshiro256 rng(7);
  RunningStats all;
  RunningStats a;
  RunningStats b;
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.uniform(-3.0, 8.0);
    all.add(x);
    (i % 2 == 0 ? a : b).add(x);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-12);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-9);
  EXPECT_DOUBLE_EQ(a.min(), all.min());
  EXPECT_DOUBLE_EQ(a.max(), all.max());
}

TEST(RunningStats, MergeWithEmptySides) {
  RunningStats a;
  RunningStats empty;
  a.add(1.0);
  a.add(3.0);
  const double mean_before = a.mean();
  a.merge(empty);
  EXPECT_DOUBLE_EQ(a.mean(), mean_before);
  RunningStats target;
  target.merge(a);
  EXPECT_EQ(target.count(), 2u);
  EXPECT_DOUBLE_EQ(target.mean(), mean_before);
}

TEST(Histogram, RejectsBadConstruction) {
  EXPECT_THROW(Histogram(1.0, 1.0, 4), InvariantError);
  EXPECT_THROW(Histogram(0.0, 1.0, 0), InvariantError);
}

TEST(Histogram, BinBoundaries) {
  Histogram h(0.0, 10.0, 5);
  EXPECT_DOUBLE_EQ(h.bin_lo(0), 0.0);
  EXPECT_DOUBLE_EQ(h.bin_hi(0), 2.0);
  EXPECT_DOUBLE_EQ(h.bin_lo(4), 8.0);
  EXPECT_DOUBLE_EQ(h.bin_hi(4), 10.0);
}

TEST(Histogram, CountsAndClamping) {
  Histogram h(0.0, 10.0, 5);
  h.add(1.0);
  h.add(3.0);
  h.add(3.5);
  h.add(-100.0);  // clamps to first bin
  h.add(100.0);   // clamps to last bin
  EXPECT_EQ(h.count(0), 2u);
  EXPECT_EQ(h.count(1), 2u);
  EXPECT_EQ(h.count(4), 1u);
  EXPECT_EQ(h.total(), 5u);
}

TEST(Histogram, WeightedAdd) {
  Histogram h(0.0, 4.0, 2);
  h.add(1.0, 10);
  EXPECT_EQ(h.count(0), 10u);
  EXPECT_EQ(h.total(), 10u);
}

TEST(Histogram, QuantileUniform) {
  Histogram h(0.0, 100.0, 100);
  for (int i = 0; i < 100; ++i) h.add(i + 0.5);
  EXPECT_NEAR(h.quantile(0.5), 50.0, 1.0);
  EXPECT_NEAR(h.quantile(0.9), 90.0, 1.0);
  EXPECT_NEAR(h.quantile(0.0), 0.0, 1.0);
  EXPECT_NEAR(h.quantile(1.0), 100.0, 1.0);
}

TEST(Histogram, QuantileOnEmptyReturnsLo) {
  Histogram h(2.0, 8.0, 3);
  EXPECT_DOUBLE_EQ(h.quantile(0.5), 2.0);
}

TEST(Histogram, RenderContainsEveryBin) {
  Histogram h(0.0, 2.0, 2);
  h.add(0.5);
  const std::string text = h.render(10);
  EXPECT_NE(text.find("[0, 1)"), std::string::npos);
  EXPECT_NE(text.find("[1, 2)"), std::string::npos);
}

}  // namespace
}  // namespace lbe
