// MmapFile + ByteReader: the RAII mapping layer behind format-v3 warm
// starts. Missing/empty files and every flavour of overrun must surface as
// IoError, alignment padding must verify as zero, and raw sections must
// round-trip between the stream writer and the mapped reader.
#include "common/mmap_file.hpp"

#include <gtest/gtest.h>

#include <cstring>
#include <fstream>
#include <limits>
#include <sstream>

#include "common/binary_io.hpp"
#include "common/error.hpp"

namespace lbe::bin {
namespace {

std::string temp_path(const std::string& name) {
  return ::testing::TempDir() + "/" + name;
}

void write_file(const std::string& path, std::string_view bytes) {
  std::ofstream out(path, std::ios::binary);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  ASSERT_TRUE(out.good());
}

TEST(MmapFile, MapsFileBytes) {
  const std::string path = temp_path("mmap_basic.bin");
  const std::string content = "0123456789abcdef";
  write_file(path, content);

  const auto map = MmapFile::open(path);
  ASSERT_EQ(map->size(), content.size());
  EXPECT_EQ(std::memcmp(map->bytes().data(), content.data(), content.size()),
            0);
  EXPECT_EQ(map->path(), path);
}

TEST(MmapFile, MissingFileThrows) {
  EXPECT_THROW(MmapFile::open("/nonexistent/lbe_mmap.bin"), IoError);
}

TEST(MmapFile, EmptyFileThrows) {
  const std::string path = temp_path("mmap_empty.bin");
  write_file(path, "");
  EXPECT_THROW(MmapFile::open(path), IoError);
}

TEST(ByteReader, OverrunThrows) {
  const std::string bytes = "12345678";
  ByteReader reader(std::as_bytes(std::span(bytes)));
  EXPECT_EQ(reader.read_pod<std::uint32_t>(), 0x34333231u);  // "1234" LE
  EXPECT_EQ(reader.remaining(), 4u);
  EXPECT_THROW(reader.read_pod<std::uint64_t>(), IoError);
  EXPECT_THROW(ByteReader(std::as_bytes(std::span(bytes)), 9), IoError);
}

TEST(ByteReader, AlignConsumesZeroPaddingOnly) {
  const std::string zeros(16, '\0');
  ByteReader ok(std::as_bytes(std::span(zeros)), 0);
  ok.take(3);
  ok.align();
  EXPECT_EQ(ok.offset(), 8u);

  std::string dirty(16, '\0');
  dirty[5] = 0x10;  // inside the pad of a 3-byte prefix
  ByteReader bad(std::as_bytes(std::span(dirty)), 0);
  bad.take(3);
  EXPECT_THROW(bad.align(), IoError);
}

TEST(ByteReader, RawSectionRoundTripsFromStreamWriter) {
  std::ostringstream out;
  std::uint64_t cursor = 12;  // simulate a 12-byte component header
  out.write("HDRHDRHDRHDR", 12);
  const std::string payload = "payload bytes go here!";
  write_raw_section(out, cursor, 0x42, payload);

  const std::string file = out.str();
  ByteReader reader(std::as_bytes(std::span(file)), 12);
  const auto view = read_raw_section(reader, 0x42);
  ASSERT_EQ(view.size(), payload.size());
  EXPECT_EQ(std::memcmp(view.data(), payload.data(), payload.size()), 0);
  EXPECT_EQ(reader.remaining(), 0u);

  // Wrong tag and flipped payload bit both reject.
  ByteReader wrong_tag(std::as_bytes(std::span(file)), 12);
  EXPECT_THROW(read_raw_section(wrong_tag, 0x43), IoError);
  std::string corrupt = file;
  corrupt[corrupt.size() - 1] ^= 0x01;
  ByteReader flipped(std::as_bytes(std::span(corrupt)), 12);
  EXPECT_THROW(read_raw_section(flipped, 0x42), IoError);
}

TEST(ByteReader, ViewArrayGuardsCountOverflow) {
  const std::string bytes(32, '\0');
  ByteReader reader(std::as_bytes(std::span(bytes)));
  EXPECT_THROW(reader.view_array<std::uint64_t>(
                   std::numeric_limits<std::size_t>::max() / 4),
               IoError);
}

}  // namespace
}  // namespace lbe::bin
