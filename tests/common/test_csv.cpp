#include "common/csv.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "common/error.hpp"

namespace lbe {
namespace {

TEST(Csv, WritesHeaderAndRows) {
  std::ostringstream out;
  CsvWriter csv(out, {"x", "series", "value"});
  csv.row({"1", "chunk", "120.5"});
  csv.row({"2", "cyclic", "8"});
  EXPECT_EQ(out.str(),
            "x,series,value\n"
            "1,chunk,120.5\n"
            "2,cyclic,8\n");
  EXPECT_EQ(csv.rows_written(), 2u);
}

TEST(Csv, QuotesFieldsWithCommas) {
  std::ostringstream out;
  CsvWriter csv(out, {"a"});
  csv.row({"hello, world"});
  EXPECT_EQ(out.str(), "a\n\"hello, world\"\n");
}

TEST(Csv, EscapesEmbeddedQuotes) {
  std::ostringstream out;
  CsvWriter csv(out, {"a"});
  csv.row({"say \"hi\""});
  EXPECT_EQ(out.str(), "a\n\"say \"\"hi\"\"\"\n");
}

TEST(Csv, RowWidthMismatchThrows) {
  std::ostringstream out;
  CsvWriter csv(out, {"a", "b"});
  EXPECT_THROW(csv.row({"only one"}), InvariantError);
}

TEST(Csv, EmptyColumnsRejected) {
  std::ostringstream out;
  EXPECT_THROW(CsvWriter(out, {}), InvariantError);
}

TEST(Csv, NumericFieldFormatting) {
  EXPECT_EQ(CsvWriter::field(1.5), "1.5");
  EXPECT_EQ(CsvWriter::field(0.000012345), "1.2345e-05");
  EXPECT_EQ(CsvWriter::field(std::uint64_t{42}), "42");
  EXPECT_EQ(CsvWriter::field(std::int64_t{-3}), "-3");
  EXPECT_EQ(CsvWriter::field(7), "7");
}

}  // namespace
}  // namespace lbe
