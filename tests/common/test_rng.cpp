#include "common/rng.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>
#include <set>
#include <vector>

namespace lbe {
namespace {

TEST(Xoshiro, DeterministicForSeed) {
  Xoshiro256 a(123);
  Xoshiro256 b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(Xoshiro, DifferentSeedsDiverge) {
  Xoshiro256 a(1);
  Xoshiro256 b(2);
  int equal = 0;
  for (int i = 0; i < 64; ++i) {
    if (a() == b()) ++equal;
  }
  EXPECT_LT(equal, 2);
}

TEST(Xoshiro, UniformInUnitInterval) {
  Xoshiro256 rng(9);
  double sum = 0.0;
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
    sum += u;
  }
  EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(Xoshiro, UniformRangeRespectsBounds) {
  Xoshiro256 rng(10);
  for (int i = 0; i < 1000; ++i) {
    const double v = rng.uniform(-2.0, 3.0);
    ASSERT_GE(v, -2.0);
    ASSERT_LT(v, 3.0);
  }
}

TEST(Xoshiro, BelowCoversRangeUniformly) {
  Xoshiro256 rng(11);
  std::vector<int> counts(10, 0);
  constexpr int kDraws = 100000;
  for (int i = 0; i < kDraws; ++i) {
    ++counts[rng.below(10)];
  }
  for (const int c : counts) {
    EXPECT_NEAR(c, kDraws / 10, kDraws / 100);  // within 10% of expected
  }
}

TEST(Xoshiro, BelowOneIsAlwaysZero) {
  Xoshiro256 rng(12);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(rng.below(1), 0u);
}

TEST(Xoshiro, NormalMomentsRoughlyStandard) {
  Xoshiro256 rng(13);
  double sum = 0.0;
  double sq = 0.0;
  constexpr int kDraws = 20000;
  for (int i = 0; i < kDraws; ++i) {
    const double x = rng.normal();
    sum += x;
    sq += x * x;
  }
  const double mean = sum / kDraws;
  const double var = sq / kDraws - mean * mean;
  EXPECT_NEAR(mean, 0.0, 0.03);
  EXPECT_NEAR(var, 1.0, 0.05);
}

TEST(Xoshiro, BernoulliFrequency) {
  Xoshiro256 rng(14);
  int hits = 0;
  constexpr int kDraws = 50000;
  for (int i = 0; i < kDraws; ++i) {
    if (rng.bernoulli(0.3)) ++hits;
  }
  EXPECT_NEAR(static_cast<double>(hits) / kDraws, 0.3, 0.01);
}

TEST(Shuffle, IsPermutation) {
  Xoshiro256 rng(15);
  std::vector<int> v(100);
  std::iota(v.begin(), v.end(), 0);
  auto shuffled = v;
  shuffle(shuffled.begin(), shuffled.end(), rng);
  EXPECT_TRUE(std::is_permutation(v.begin(), v.end(), shuffled.begin()));
  EXPECT_NE(v, shuffled);  // 1/100! chance of false failure
}

TEST(Shuffle, DeterministicForSeed) {
  std::vector<int> a(50);
  std::iota(a.begin(), a.end(), 0);
  auto b = a;
  Xoshiro256 rng_a(77);
  Xoshiro256 rng_b(77);
  shuffle(a.begin(), a.end(), rng_a);
  shuffle(b.begin(), b.end(), rng_b);
  EXPECT_EQ(a, b);
}

TEST(Shuffle, HandlesDegenerateSizes) {
  Xoshiro256 rng(16);
  std::vector<int> empty;
  shuffle(empty.begin(), empty.end(), rng);
  std::vector<int> one{42};
  shuffle(one.begin(), one.end(), rng);
  EXPECT_EQ(one[0], 42);
}

TEST(SplitMix, KnownFirstOutputsDiffer) {
  SplitMix64 sm(0);
  const auto a = sm.next();
  const auto b = sm.next();
  EXPECT_NE(a, b);
}

}  // namespace
}  // namespace lbe
