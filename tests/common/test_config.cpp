#include "common/config.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"

namespace lbe {
namespace {

TEST(Config, ParsesKeyValueLines) {
  const auto cfg = Config::from_string(
      "resolution = 0.01\n"
      "# a comment\n"
      "\n"
      "policy = cyclic\n");
  EXPECT_EQ(cfg.size(), 2u);
  EXPECT_DOUBLE_EQ(cfg.get_double("resolution"), 0.01);
  EXPECT_EQ(cfg.get_string("policy"), "cyclic");
}

TEST(Config, TrimsKeysAndValues) {
  const auto cfg = Config::from_string("  key   =   value with spaces  \n");
  EXPECT_EQ(cfg.get_string("key"), "value with spaces");
}

TEST(Config, MissingKeyThrows) {
  const Config cfg;
  EXPECT_THROW(cfg.get_string("nope"), ConfigError);
  EXPECT_THROW(cfg.get_double("nope"), ConfigError);
  EXPECT_THROW(cfg.get_int("nope"), ConfigError);
  EXPECT_THROW(cfg.get_bool("nope"), ConfigError);
}

TEST(Config, FallbacksUsedWhenMissing) {
  const Config cfg;
  EXPECT_EQ(cfg.get_string("k", "dflt"), "dflt");
  EXPECT_DOUBLE_EQ(cfg.get_double("k", 1.5), 1.5);
  EXPECT_EQ(cfg.get_int("k", 7), 7);
  EXPECT_TRUE(cfg.get_bool("k", true));
}

TEST(Config, FallbackNotUsedWhenPresent) {
  const auto cfg = Config::from_string("x = 9\n");
  EXPECT_EQ(cfg.get_int("x", 7), 9);
}

TEST(Config, BadNumberThrows) {
  const auto cfg = Config::from_string("x = not_a_number\n");
  EXPECT_THROW(cfg.get_double("x"), ConfigError);
  EXPECT_THROW(cfg.get_double("x", 1.0), ConfigError);
}

TEST(Config, NonIntegerRejectedByGetInt) {
  const auto cfg = Config::from_string("x = 1.5\n");
  EXPECT_THROW(cfg.get_int("x"), ConfigError);
}

TEST(Config, BoolSpellings) {
  const auto cfg = Config::from_string(
      "a = true\nb = FALSE\nc = 1\nd = off\ne = Yes\n");
  EXPECT_TRUE(cfg.get_bool("a"));
  EXPECT_FALSE(cfg.get_bool("b"));
  EXPECT_TRUE(cfg.get_bool("c"));
  EXPECT_FALSE(cfg.get_bool("d"));
  EXPECT_TRUE(cfg.get_bool("e"));
  EXPECT_THROW(Config::from_string("f = maybe\n").get_bool("f"), ConfigError);
}

TEST(Config, MalformedLineThrowsWithLineNumber) {
  try {
    Config::from_string("ok = 1\nbroken line\n", "test.cfg");
    FAIL() << "expected ParseError";
  } catch (const ParseError& e) {
    EXPECT_EQ(e.line(), 2u);
    EXPECT_EQ(e.file(), "test.cfg");
  }
}

TEST(Config, EmptyKeyRejected) {
  EXPECT_THROW(Config::from_string("= value\n"), ParseError);
}

TEST(Config, LaterValueOverridesEarlier) {
  const auto cfg = Config::from_string("k = 1\nk = 2\n");
  EXPECT_EQ(cfg.get_int("k"), 2);
}

TEST(Config, RoundTripsThroughToString) {
  const auto cfg = Config::from_string("b = 2\na = 1\n");
  const auto again = Config::from_string(cfg.to_string());
  EXPECT_EQ(again.get_int("a"), 1);
  EXPECT_EQ(again.get_int("b"), 2);
  // Deterministic (sorted) serialization.
  EXPECT_EQ(cfg.to_string(), "a = 1\nb = 2\n");
}

TEST(Config, MissingFileThrowsIoError) {
  EXPECT_THROW(Config::from_file("/nonexistent/path/x.cfg"), IoError);
}

}  // namespace
}  // namespace lbe
