#include "digest/enzyme.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"

namespace lbe::digest {
namespace {

TEST(Enzyme, TrypsinCutsAfterKAndR) {
  const auto& t = trypsin();
  EXPECT_TRUE(t.cleaves_after("AKA", 1));
  EXPECT_TRUE(t.cleaves_after("ARA", 1));
  EXPECT_FALSE(t.cleaves_after("AAA", 1));
}

TEST(Enzyme, TrypsinBlockedByProline) {
  const auto& t = trypsin();
  EXPECT_FALSE(t.cleaves_after("AKP", 1));
  EXPECT_FALSE(t.cleaves_after("ARP", 1));
  EXPECT_TRUE(t.cleaves_after("AKG", 1));
}

TEST(Enzyme, TrypsinPIgnoresProlineRule) {
  const auto& tp = enzyme_by_name("trypsin/p");
  EXPECT_TRUE(tp.cleaves_after("AKP", 1));
}

TEST(Enzyme, TerminalResidueNeverBlocksOnMissingNext) {
  const auto& t = trypsin();
  // K at the last position: cleaving "after" the final residue is allowed
  // by the rule (no next residue to block), though sites() never asks.
  EXPECT_TRUE(t.cleaves_after("AAK", 2));
}

TEST(Enzyme, SitesEnumeratesInternalBoundaries) {
  const auto& t = trypsin();
  // MKWVTFISLLLLFSSAYSR -> K at 1; R at the end is terminal (not a site).
  const auto sites = t.sites("MKWVTFISLLLLFSSAYSR");
  ASSERT_EQ(sites.size(), 1u);
  EXPECT_EQ(sites[0], 1u);
}

TEST(Enzyme, SitesOnEmptyAndSingle) {
  const auto& t = trypsin();
  EXPECT_TRUE(t.sites("").empty());
  EXPECT_TRUE(t.sites("K").empty());
}

TEST(Enzyme, LysCOnlyCutsAfterK) {
  const auto& lysc = enzyme_by_name("lys-c");
  EXPECT_TRUE(lysc.cleaves_after("AKA", 1));
  EXPECT_FALSE(lysc.cleaves_after("ARA", 1));
}

TEST(Enzyme, ChymotrypsinAromatics) {
  const auto& chymo = enzyme_by_name("chymotrypsin");
  EXPECT_TRUE(chymo.cleaves_after("AFA", 1));
  EXPECT_TRUE(chymo.cleaves_after("AWA", 1));
  EXPECT_TRUE(chymo.cleaves_after("AYA", 1));
  EXPECT_FALSE(chymo.cleaves_after("AFP", 1));
  EXPECT_FALSE(chymo.cleaves_after("AKA", 1));
}

TEST(Enzyme, LookupIsCaseInsensitive) {
  EXPECT_EQ(enzyme_by_name("TRYPSIN").name, "trypsin");
  EXPECT_EQ(enzyme_by_name("Glu-C").name, "glu-c");
}

TEST(Enzyme, UnknownNameThrows) {
  EXPECT_THROW(enzyme_by_name("pepsinogen-x"), ConfigError);
}

}  // namespace
}  // namespace lbe::digest
