#include "digest/digestor.hpp"

#include <gtest/gtest.h>

#include <set>

#include "chem/amino_acid.hpp"
#include "common/error.hpp"

namespace lbe::digest {
namespace {

DigestionParams loose_params() {
  DigestionParams params;
  params.missed_cleavages = 0;
  params.min_length = 1;
  params.max_length = 100;
  params.min_mass = 0.0;
  params.max_mass = 1e6;
  return params;
}

TEST(Digestor, FullyTrypticNoMissedCleavages) {
  // AAAKBBBRCCC with valid residues: use G blocks. "GGGKGGGRGGG"
  const auto peptides =
      digest_protein("GGGKGGGRGGG", 0, trypsin(), loose_params());
  ASSERT_EQ(peptides.size(), 3u);
  EXPECT_EQ(peptides[0].sequence, "GGGK");
  EXPECT_EQ(peptides[1].sequence, "GGGR");
  EXPECT_EQ(peptides[2].sequence, "GGG");
  EXPECT_EQ(peptides[0].start, 0u);
  EXPECT_EQ(peptides[1].start, 4u);
  EXPECT_EQ(peptides[2].start, 8u);
}

TEST(Digestor, MissedCleavagesProduceSpans) {
  DigestionParams params = loose_params();
  params.missed_cleavages = 1;
  const auto peptides =
      digest_protein("GGGKGGGRGGG", 0, trypsin(), params);
  std::set<std::string> seqs;
  for (const auto& p : peptides) seqs.insert(p.sequence);
  EXPECT_TRUE(seqs.count("GGGK"));
  EXPECT_TRUE(seqs.count("GGGKGGGR"));
  EXPECT_TRUE(seqs.count("GGGRGGG"));
  EXPECT_FALSE(seqs.count("GGGKGGGRGGG"));  // needs 2 missed
  ASSERT_EQ(peptides.size(), 5u);
}

TEST(Digestor, MissedCleavageCountRecorded) {
  DigestionParams params = loose_params();
  params.missed_cleavages = 2;
  const auto peptides =
      digest_protein("GGGKGGGRGGG", 0, trypsin(), params);
  for (const auto& p : peptides) {
    if (p.sequence == "GGGKGGGRGGG") {
      EXPECT_EQ(p.missed_cleavages, 2u);
    }
    if (p.sequence == "GGGK") {
      EXPECT_EQ(p.missed_cleavages, 0u);
    }
    if (p.sequence == "GGGKGGGR") {
      EXPECT_EQ(p.missed_cleavages, 1u);
    }
  }
}

TEST(Digestor, LengthFilterApplies) {
  DigestionParams params = loose_params();
  params.min_length = 4;
  const auto peptides =
      digest_protein("GGGKGGGRGGG", 0, trypsin(), params);
  for (const auto& p : peptides) EXPECT_GE(p.sequence.size(), 4u);
  // "GGG" tail (length 3) must be gone.
  for (const auto& p : peptides) EXPECT_NE(p.sequence, "GGG");
}

TEST(Digestor, MassFilterApplies) {
  DigestionParams params = loose_params();
  params.max_mass = 300.0;  // GGGK ~ 317 Da is too heavy
  const auto peptides =
      digest_protein("GGGKGGGRGGG", 0, trypsin(), params);
  for (const auto& p : peptides) {
    EXPECT_LE(chem::peptide_mass(p.sequence), 300.0);
  }
}

TEST(Digestor, ProlineSuppressionChangesProducts) {
  // KP at positions 3-4: no cleavage after K3.
  const auto peptides =
      digest_protein("GGGKPGGRGGG", 0, trypsin(), loose_params());
  ASSERT_GE(peptides.size(), 1u);
  EXPECT_EQ(peptides[0].sequence, "GGGKPGGR");
}

TEST(Digestor, NoSitesYieldsWholeProtein) {
  const auto peptides = digest_protein("GGGGGG", 7, trypsin(), loose_params());
  ASSERT_EQ(peptides.size(), 1u);
  EXPECT_EQ(peptides[0].sequence, "GGGGGG");
  EXPECT_EQ(peptides[0].protein, 7u);
}

TEST(Digestor, EmptyProteinYieldsNothing) {
  EXPECT_TRUE(digest_protein("", 0, trypsin(), loose_params()).empty());
}

TEST(Digestor, PaperSettingsValidate) {
  DigestionParams params;  // defaults are the paper's settings
  EXPECT_EQ(params.missed_cleavages, 2u);
  EXPECT_EQ(params.min_length, 6u);
  EXPECT_EQ(params.max_length, 40u);
  EXPECT_NO_THROW(params.validate());
}

TEST(Digestor, InvalidParamsThrow) {
  DigestionParams params = loose_params();
  params.min_length = 0;
  EXPECT_THROW(params.validate(), ConfigError);
  params = loose_params();
  params.min_length = 50;
  params.max_length = 10;
  EXPECT_THROW(params.validate(), ConfigError);
  params = loose_params();
  params.min_mass = 100.0;
  params.max_mass = 50.0;
  EXPECT_THROW(params.validate(), ConfigError);
}

TEST(Digestor, DatabaseDigestTracksProteinIds) {
  const std::vector<io::FastaRecord> db = {
      {"p0", "GGGKGGG"},
      {"p1", "AAARAAA"},
  };
  const auto peptides = digest_database(db, trypsin(), loose_params());
  ASSERT_EQ(peptides.size(), 4u);
  EXPECT_EQ(peptides[0].protein, 0u);
  EXPECT_EQ(peptides[2].protein, 1u);
}

TEST(Digestor, PeptidesCoverProteinWithoutOverlapAtZeroMissed) {
  const std::string protein = "MKWVTFISLLLLFSSAYSRGVFRRDTHK";
  const auto peptides =
      digest_protein(protein, 0, trypsin(), loose_params());
  std::string reassembled;
  for (const auto& p : peptides) reassembled += p.sequence;
  EXPECT_EQ(reassembled, protein);
}

}  // namespace
}  // namespace lbe::digest
