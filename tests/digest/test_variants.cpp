#include "digest/variants.hpp"

#include <gtest/gtest.h>

#include <set>

#include "chem/modification.hpp"

namespace lbe::digest {
namespace {

class VariantsTest : public ::testing::Test {
 protected:
  chem::ModificationSet mods_ = chem::ModificationSet::paper_default();
  VariantParams params_;
};

TEST_F(VariantsTest, NoEligibleSitesYieldsBaseOnly) {
  const auto variants = enumerate_variants("GGAVL", mods_, params_);
  ASSERT_EQ(variants.size(), 1u);
  EXPECT_FALSE(variants[0].modified());
}

TEST_F(VariantsTest, SingleSiteTwoVariants) {
  // M: oxidation only.
  const auto variants = enumerate_variants("GMG", mods_, params_);
  ASSERT_EQ(variants.size(), 2u);
  EXPECT_FALSE(variants[0].modified());
  EXPECT_TRUE(variants[1].modified());
  EXPECT_EQ(variants[1].annotated(mods_), "GM(Oxidation)G");
}

TEST_F(VariantsTest, CountMatchesClosedFormForIndependentSites) {
  // "NMK": N (deamid), M (ox), K (glygly) — one mod option each.
  // Variants = sum over subsets = 2^3 = 8.
  EXPECT_EQ(count_variants("NMK", mods_, params_), 8u);
  const auto variants = enumerate_variants("NMK", mods_, params_);
  EXPECT_EQ(variants.size(), 8u);
}

TEST_F(VariantsTest, MaxModResiduesCapsSubsetSize) {
  VariantParams capped = params_;
  capped.max_mod_residues = 1;
  // "NMK": base + 3 single-site variants = 4.
  EXPECT_EQ(count_variants("NMK", mods_, capped), 4u);
  capped.max_mod_residues = 2;
  // base + 3 singles + 3 pairs = 7.
  EXPECT_EQ(count_variants("NMK", mods_, capped), 7u);
}

TEST_F(VariantsTest, ZeroMaxModsMeansUnmodifiedOnly) {
  VariantParams capped = params_;
  capped.max_mod_residues = 0;
  EXPECT_EQ(count_variants("NMK", mods_, capped), 1u);
}

TEST_F(VariantsTest, ExcludeUnmodified) {
  VariantParams p = params_;
  p.include_unmodified = false;
  const auto variants = enumerate_variants("GMG", mods_, p);
  ASSERT_EQ(variants.size(), 1u);
  EXPECT_TRUE(variants[0].modified());
}

TEST_F(VariantsTest, FewerSitesFirstOrdering) {
  const auto variants = enumerate_variants("NMK", mods_, params_);
  ASSERT_EQ(variants.size(), 8u);
  EXPECT_EQ(variants[0].sites().size(), 0u);
  EXPECT_EQ(variants[1].sites().size(), 1u);
  EXPECT_EQ(variants[3].sites().size(), 1u);
  EXPECT_EQ(variants[4].sites().size(), 2u);
  EXPECT_EQ(variants[7].sites().size(), 3u);
}

TEST_F(VariantsTest, AllVariantsDistinct) {
  const auto variants = enumerate_variants("NNMMKK", mods_, params_);
  std::set<std::string> annotated;
  for (const auto& v : variants) annotated.insert(v.annotated(mods_));
  EXPECT_EQ(annotated.size(), variants.size());
}

TEST_F(VariantsTest, CapTruncatesDeterministically) {
  VariantParams capped = params_;
  capped.max_variants_per_peptide = 5;
  const auto all = enumerate_variants("NNMMKK", mods_, params_);
  const auto cut = enumerate_variants("NNMMKK", mods_, capped);
  ASSERT_EQ(cut.size(), 5u);
  for (std::size_t i = 0; i < cut.size(); ++i) {
    EXPECT_EQ(cut[i].annotated(mods_), all[i].annotated(mods_));
  }
  EXPECT_EQ(count_variants("NNMMKK", mods_, capped), 5u);
}

TEST_F(VariantsTest, CountAgreesWithEnumerationOnManySequences) {
  const std::vector<std::string> sequences = {
      "GG", "NG", "NQ", "MMM", "KCKC", "NQMKC", "GGGGGG", "NNNNN",
  };
  for (const auto& seq : sequences) {
    EXPECT_EQ(count_variants(seq, mods_, params_),
              enumerate_variants(seq, mods_, params_).size())
        << seq;
  }
}

TEST_F(VariantsTest, PaperCapOfFiveModifiedResidues) {
  VariantParams paper = params_;
  paper.max_mod_residues = 5;
  // 6 eligible sites, max 5 modified: 2^6 - 1 (the all-six subset) = 63.
  EXPECT_EQ(count_variants("NNMMKC", mods_, paper), 63u);
}

TEST_F(VariantsTest, MassesReflectPlacedMods) {
  const auto variants = enumerate_variants("GMG", mods_, params_);
  ASSERT_EQ(variants.size(), 2u);
  EXPECT_NEAR(variants[1].mass(mods_) - variants[0].mass(mods_),
              15.99491462, 1e-6);
}

}  // namespace
}  // namespace lbe::digest
