#include "digest/decoy.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "chem/amino_acid.hpp"
#include "digest/digestor.hpp"

namespace lbe::digest {
namespace {

TEST(Decoy, ReverseReversesWholeSequence) {
  EXPECT_EQ(decoy_sequence("PEPTIDEK", DecoyMethod::kReverse, trypsin(), 1),
            "KEDITPEP");
}

TEST(Decoy, ShuffleIsSeededPermutation) {
  const std::string target = "MKWVTFISLLLLFSSAYSR";
  const auto a = decoy_sequence(target, DecoyMethod::kShuffle, trypsin(), 7);
  const auto b = decoy_sequence(target, DecoyMethod::kShuffle, trypsin(), 7);
  const auto c = decoy_sequence(target, DecoyMethod::kShuffle, trypsin(), 8);
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);
  EXPECT_TRUE(std::is_permutation(target.begin(), target.end(), a.begin()));
  EXPECT_NE(a, target);
}

TEST(Decoy, PseudoReverseKeepsCleavageSites) {
  // GGGK | AVAR | CCC  ->  per-fragment reversal keeping K and R in place.
  const auto decoy = decoy_sequence("GGGKAVARCCC", DecoyMethod::kPseudoReverse,
                                    trypsin(), 1);
  EXPECT_EQ(decoy.size(), 11u);
  EXPECT_EQ(decoy[3], 'K');
  EXPECT_EQ(decoy[7], 'R');
  EXPECT_EQ(decoy.substr(4, 3), "AVA");  // palindromic fragment unchanged
}

TEST(Decoy, PseudoReversePreservesDigestStatistics) {
  // Digesting target and pseudo-reversed decoy yields peptides with
  // identical length multisets and identical mass multisets.
  const std::string target = "MKWVTFISLLLLFSSAYSRGVFRRDTHKSEIAHR";
  const auto decoy = decoy_sequence(target, DecoyMethod::kPseudoReverse,
                                    trypsin(), 1);
  DigestionParams params;
  params.min_length = 1;
  params.min_mass = 0.0;
  params.missed_cleavages = 0;
  const auto target_peps = digest_protein(target, 0, trypsin(), params);
  const auto decoy_peps = digest_protein(decoy, 0, trypsin(), params);
  ASSERT_EQ(target_peps.size(), decoy_peps.size());
  std::vector<double> target_masses;
  std::vector<double> decoy_masses;
  for (const auto& p : target_peps) {
    target_masses.push_back(chem::peptide_mass(p.sequence));
  }
  for (const auto& p : decoy_peps) {
    decoy_masses.push_back(chem::peptide_mass(p.sequence));
  }
  std::sort(target_masses.begin(), target_masses.end());
  std::sort(decoy_masses.begin(), decoy_masses.end());
  for (std::size_t i = 0; i < target_masses.size(); ++i) {
    EXPECT_NEAR(target_masses[i], decoy_masses[i], 1e-9);
  }
}

TEST(Decoy, MakeDecoysPrefixesHeaders) {
  const std::vector<io::FastaRecord> targets = {{"sp|P1|A", "PEPTIDEK"},
                                                {"sp|P2|B", "GGGGGGK"}};
  const auto decoys = make_decoys(targets, DecoyMethod::kReverse);
  ASSERT_EQ(decoys.size(), 2u);
  EXPECT_EQ(decoys[0].header, "DECOY_sp|P1|A");
  EXPECT_TRUE(is_decoy_header(decoys[0].header));
  EXPECT_FALSE(is_decoy_header(targets[0].header));
}

TEST(Decoy, WithDecoysDoublesDatabase) {
  const std::vector<io::FastaRecord> targets = {{"a", "PEPTIDEK"},
                                                {"b", "GGGGGGK"}};
  const auto combined = with_decoys(targets, DecoyMethod::kPseudoReverse);
  ASSERT_EQ(combined.size(), 4u);
  EXPECT_EQ(combined[0].header, "a");
  EXPECT_TRUE(is_decoy_header(combined[2].header));
  // Decoy sequences remain valid residue strings.
  for (const auto& record : combined) {
    EXPECT_EQ(chem::find_invalid_residue(record.sequence),
              std::string_view::npos);
  }
}

TEST(Decoy, DistinctSeedsPerRecordForShuffle) {
  const std::vector<io::FastaRecord> targets = {{"a", "MKWVTFISLLLLFSSAY"},
                                                {"b", "MKWVTFISLLLLFSSAY"}};
  const auto decoys = make_decoys(targets, DecoyMethod::kShuffle);
  // Identical targets get different shuffles (per-record seed offset).
  EXPECT_NE(decoys[0].sequence, decoys[1].sequence);
}

}  // namespace
}  // namespace lbe::digest
