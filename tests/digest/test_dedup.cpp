#include "digest/dedup.hpp"

#include <gtest/gtest.h>

namespace lbe::digest {
namespace {

TEST(Dedup, RemovesLaterDuplicateSequences) {
  std::vector<std::string> seqs = {"PEPTIDEK", "AAAK", "PEPTIDEK", "AAAK",
                                   "CCCK"};
  const std::size_t dropped = deduplicate(seqs);
  EXPECT_EQ(dropped, 2u);
  ASSERT_EQ(seqs.size(), 3u);
  EXPECT_EQ(seqs[0], "PEPTIDEK");
  EXPECT_EQ(seqs[1], "AAAK");
  EXPECT_EQ(seqs[2], "CCCK");
}

TEST(Dedup, KeepsFirstOccurrenceOrder) {
  std::vector<std::string> seqs = {"B", "A", "B", "C", "A"};
  deduplicate(seqs);
  EXPECT_EQ(seqs, (std::vector<std::string>{"B", "A", "C"}));
}

TEST(Dedup, NoDuplicatesIsNoop) {
  std::vector<std::string> seqs = {"A", "B", "C"};
  EXPECT_EQ(deduplicate(seqs), 0u);
  EXPECT_EQ(seqs.size(), 3u);
}

TEST(Dedup, EmptyInput) {
  std::vector<std::string> seqs;
  EXPECT_EQ(deduplicate(seqs), 0u);
}

TEST(Dedup, AllIdentical) {
  std::vector<std::string> seqs(10, "SAME");
  EXPECT_EQ(deduplicate(seqs), 9u);
  ASSERT_EQ(seqs.size(), 1u);
}

TEST(Dedup, DigestedPeptideKeepsFirstProteinAttribution) {
  std::vector<DigestedPeptide> peptides = {
      {"PEPK", 0, 0, 0},
      {"AAAK", 1, 5, 0},
      {"PEPK", 2, 9, 1},  // duplicate sequence from another protein
  };
  const std::size_t dropped = deduplicate(peptides);
  EXPECT_EQ(dropped, 1u);
  ASSERT_EQ(peptides.size(), 2u);
  EXPECT_EQ(peptides[0].sequence, "PEPK");
  EXPECT_EQ(peptides[0].protein, 0u);  // DBToolkit behaviour: first wins
}

TEST(Dedup, LargeInputStaysLinearish) {
  std::vector<std::string> seqs;
  seqs.reserve(20000);
  for (int i = 0; i < 10000; ++i) {
    seqs.push_back("PEP" + std::to_string(i % 5000));
  }
  const std::size_t dropped = deduplicate(seqs);
  EXPECT_EQ(dropped, 5000u);
  EXPECT_EQ(seqs.size(), 5000u);
}

}  // namespace
}  // namespace lbe::digest
