// Round-trip coverage for the steal-protocol control messages. The search
// payloads (spectra, setup, result batches) are exercised end to end by the
// process-backend equivalence tests; the control messages are small enough
// that a field dropped from a codec would only show up as a subtle
// scheduling bug, so they get explicit field-by-field checks here.
#include "search/wire.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"

namespace lbe::search {
namespace {

TEST(WireSteal, StealRequestRoundTrip) {
  wire::StealRequest request;
  request.batches_executed = 0x1122334455667788ULL;
  const wire::StealRequest out =
      wire::decode_steal_request(wire::encode_steal_request(request));
  EXPECT_EQ(out.batches_executed, request.batches_executed);
}

TEST(WireSteal, StealGrantWorkRoundTrip) {
  wire::StealGrant grant;
  grant.done = false;
  grant.index_rank = 5;
  grant.query_lo = 96;
  grant.query_hi = 128;
  const wire::StealGrant out =
      wire::decode_steal_grant(wire::encode_steal_grant(grant));
  EXPECT_FALSE(out.done);
  EXPECT_EQ(out.index_rank, grant.index_rank);
  EXPECT_EQ(out.query_lo, grant.query_lo);
  EXPECT_EQ(out.query_hi, grant.query_hi);
}

TEST(WireSteal, StealGrantDoneRoundTrip) {
  wire::StealGrant grant;
  grant.done = true;
  const wire::StealGrant out =
      wire::decode_steal_grant(wire::encode_steal_grant(grant));
  EXPECT_TRUE(out.done);
}

TEST(WireSteal, StealTailCutRoundTrip) {
  wire::StealTailCut cut;
  cut.new_tail = 7;
  const wire::StealTailCut out =
      wire::decode_steal_tail_cut(wire::encode_steal_tail_cut(cut));
  EXPECT_EQ(out.new_tail, cut.new_tail);
}

TEST(WireSteal, RankStatsCarriesStealCounters) {
  wire::RankStats stats;
  stats.times.start = 1.0;
  stats.times.build_done = 2.0;
  stats.times.query_start = 3.0;
  stats.times.query_done = 4.0;
  stats.times.finish = 5.0;
  stats.work.postings_touched = 42;
  stats.index_bytes = 1 << 20;
  stats.index_entries = 12345;
  stats.batches_executed = 17;
  stats.batches_stolen = 5;
  const wire::RankStats out =
      wire::decode_rank_stats(wire::encode_rank_stats(stats));
  EXPECT_EQ(out.times.query_done, stats.times.query_done);
  EXPECT_EQ(out.work.postings_touched, stats.work.postings_touched);
  EXPECT_EQ(out.index_bytes, stats.index_bytes);
  EXPECT_EQ(out.index_entries, stats.index_entries);
  EXPECT_EQ(out.batches_executed, stats.batches_executed);
  EXPECT_EQ(out.batches_stolen, stats.batches_stolen);
}

// A truncated control payload must surface as CommError (defensive decode),
// never as UB — a dying worker's half-written buffer reaching the master's
// steal loop is exactly the fault-injection scenario tests/app covers.
TEST(WireSteal, TruncatedPayloadThrows) {
  mpi::Bytes bytes = wire::encode_steal_grant(wire::StealGrant{});
  bytes.pop_back();
  EXPECT_THROW(wire::decode_steal_grant(bytes), CommError);

  mpi::Bytes cut = wire::encode_steal_tail_cut(wire::StealTailCut{});
  cut.pop_back();
  EXPECT_THROW(wire::decode_steal_tail_cut(cut), CommError);

  mpi::Bytes request = wire::encode_steal_request(wire::StealRequest{});
  request.pop_back();
  EXPECT_THROW(wire::decode_steal_request(request), CommError);
}

// Trailing garbage after a well-formed message is also a shape error: the
// codecs define the whole payload, so extra bytes mean a framing bug.
TEST(WireSteal, TrailingBytesThrow) {
  mpi::Bytes bytes = wire::encode_steal_request(wire::StealRequest{});
  bytes.push_back(0);
  EXPECT_THROW(wire::decode_steal_request(bytes), CommError);
}

}  // namespace
}  // namespace lbe::search
