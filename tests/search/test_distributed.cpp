// End-to-end protocol tests for the distributed search: result equivalence
// against the shared-memory baseline across policies and rank counts — the
// correctness property that makes the paper's performance comparison fair.
#include "search/distributed.hpp"

#include <gtest/gtest.h>

#include <map>

#include "theospec/fragmenter.hpp"

namespace lbe::search {
namespace {

struct Fixture {
  chem::ModificationSet mods = chem::ModificationSet::paper_default();
  digest::VariantParams variants;
  DistributedParams params;

  Fixture() {
    variants.max_mod_residues = 1;
    params.index.resolution = 0.01;
    params.index.max_fragment_mz = 3000.0;
    params.index.fragments.max_fragment_charge = 1;
    params.search.filter.shared_peak_min = 2;
    params.search.score.fragments = params.index.fragments;
    params.search.top_k = 3;
    params.result_batch = 2;  // small batches exercise the batching path
  }

  std::vector<std::string> database() const {
    return {"PEPTIDEK", "PEPTIDER", "MKWVTFISLLK", "GGGGGGK",
            "WWWWHHHHK", "AAAAAAGK", "CCCCCCK", "NNNNNNK",
            "MMMMMMK", "QQQQQQK", "HHHHHHK", "DDDDDDK"};
  }

  core::LbePlan plan(core::Policy policy, int ranks) const {
    core::LbeParams lbe;
    lbe.partition.policy = policy;
    lbe.partition.ranks = ranks;
    return core::LbePlan(database(), mods, variants, lbe);
  }

  std::vector<chem::Spectrum> queries() const {
    std::vector<chem::Spectrum> out;
    for (const auto& seq : database()) {
      out.push_back(theospec::theoretical_spectrum(
          chem::Peptide(seq), mods, params.index.fragments));
    }
    return out;
  }

  mpi::Cluster cluster(int ranks) const {
    mpi::ClusterOptions options;
    options.ranks = ranks;
    options.engine = mpi::Engine::kVirtual;
    options.measured_time = false;  // deterministic protocol tests
    options.cost = mpi::CostModel::zero();
    return mpi::Cluster(options);
  }
};

using PolicyRanks = std::tuple<core::Policy, int>;

class DistributedEquivalence : public ::testing::TestWithParam<PolicyRanks> {
 protected:
  Fixture fx_;
};

TEST_P(DistributedEquivalence, TopHitMatchesSharedBaseline) {
  const auto [policy, ranks] = GetParam();
  const auto plan = fx_.plan(policy, ranks);
  const auto queries = fx_.queries();

  auto cluster = fx_.cluster(ranks);
  const auto distributed =
      run_distributed_search(cluster, plan, queries, fx_.params);
  const auto shared = run_shared_baseline(plan, queries, fx_.params);

  ASSERT_EQ(distributed.results.size(), queries.size());
  ASSERT_EQ(shared.results.size(), queries.size());
  for (std::size_t q = 0; q < queries.size(); ++q) {
    const auto& d = distributed.results[q].top;
    const auto& s = shared.results[q].top;
    ASSERT_EQ(d.empty(), s.empty()) << "query " << q;
    if (s.empty()) continue;
    EXPECT_EQ(d[0].peptide, s[0].peptide) << "query " << q;
    EXPECT_EQ(d[0].shared_peaks, s[0].shared_peaks) << "query " << q;
    EXPECT_FLOAT_EQ(d[0].score, s[0].score) << "query " << q;
  }
}

TEST_P(DistributedEquivalence, TotalCandidatesMatchSharedBaseline) {
  const auto [policy, ranks] = GetParam();
  const auto plan = fx_.plan(policy, ranks);
  const auto queries = fx_.queries();

  auto cluster = fx_.cluster(ranks);
  const auto distributed =
      run_distributed_search(cluster, plan, queries, fx_.params);
  const auto shared = run_shared_baseline(plan, queries, fx_.params);

  std::uint64_t distributed_candidates = 0;
  for (const auto& work : distributed.work) {
    distributed_candidates += work.candidates;
  }
  EXPECT_EQ(distributed_candidates, shared.work.candidates);
}

INSTANTIATE_TEST_SUITE_P(
    PolicyBySize, DistributedEquivalence,
    ::testing::Combine(::testing::Values(core::Policy::kChunk,
                                         core::Policy::kCyclic,
                                         core::Policy::kRandom),
                       ::testing::Values(1, 3, 4, 8)),
    [](const auto& info) {
      return std::string(core::policy_name(std::get<0>(info.param))) + "_p" +
             std::to_string(std::get<1>(info.param));
    });

TEST(DistributedSearch, TruePeptideWinsGlobally) {
  Fixture fx;
  const auto plan = fx.plan(core::Policy::kCyclic, 4);
  const auto queries = fx.queries();
  auto cluster = fx.cluster(4);
  const auto report = run_distributed_search(cluster, plan, queries,
                                             fx.params);
  const auto db = fx.database();
  for (std::size_t q = 0; q < queries.size(); ++q) {
    ASSERT_FALSE(report.results[q].top.empty());
    const auto global = report.results[q].top[0].peptide;
    const auto loc = plan.locate_variant(global);
    EXPECT_EQ(plan.base_sequence(loc.base_id), db[q]) << "query " << q;
  }
}

TEST(DistributedSearch, SourceRankConsistentWithMapping) {
  Fixture fx;
  const auto plan = fx.plan(core::Policy::kRandom, 3);
  const auto queries = fx.queries();
  auto cluster = fx.cluster(3);
  const auto report = run_distributed_search(cluster, plan, queries,
                                             fx.params);
  for (const auto& result : report.results) {
    for (const auto& psm : result.top) {
      EXPECT_EQ(psm.source_rank, plan.mapping().rank_of(psm.peptide));
    }
  }
}

TEST(DistributedSearch, IndexEntriesMatchMapping) {
  Fixture fx;
  const auto plan = fx.plan(core::Policy::kCyclic, 4);
  auto cluster = fx.cluster(4);
  const auto report = run_distributed_search(cluster, plan, fx.queries(),
                                             fx.params);
  for (int rank = 0; rank < 4; ++rank) {
    EXPECT_EQ(report.index_entries[static_cast<std::size_t>(rank)],
              plan.mapping().rank_count(rank));
  }
  EXPECT_GT(report.mapping_bytes, 0u);
}

TEST(DistributedSearch, PhaseTimesMonotone) {
  Fixture fx;
  const auto plan = fx.plan(core::Policy::kCyclic, 3);
  auto cluster = fx.cluster(3);
  // Use a real cost model + prep so phases are strictly ordered.
  DistributedParams params = fx.params;
  params.prep_seconds = 0.125;
  const auto report = run_distributed_search(cluster, plan, fx.queries(),
                                             params);
  for (const auto& t : report.times) {
    EXPECT_GE(t.start, params.prep_seconds);  // prep charged before barrier
    EXPECT_GE(t.build_done, t.start);
    EXPECT_GE(t.query_start, t.build_done);
    EXPECT_GE(t.query_done, t.query_start);
    EXPECT_GE(t.finish, t.query_done);
  }
  EXPECT_GE(report.makespan, report.times[0].finish);
}

TEST(DistributedSearch, ClusterSizeMismatchRejected) {
  Fixture fx;
  const auto plan = fx.plan(core::Policy::kCyclic, 4);
  auto cluster = fx.cluster(3);
  EXPECT_THROW(
      run_distributed_search(cluster, plan, fx.queries(), fx.params),
      InvariantError);
}

TEST(DistributedSearch, EmptyQuerySetProducesEmptyReport) {
  Fixture fx;
  const auto plan = fx.plan(core::Policy::kCyclic, 2);
  auto cluster = fx.cluster(2);
  const auto report =
      run_distributed_search(cluster, plan, {}, fx.params);
  EXPECT_TRUE(report.results.empty());
  for (const auto& work : report.work) {
    EXPECT_EQ(work.peaks_processed, 0u);
  }
}

TEST(DistributedSearch, HybridThreadsPerRankSameResults) {
  // §VIII future-work mode: per-rank thread pools change timing only.
  Fixture fx;
  const auto plan = fx.plan(core::Policy::kCyclic, 3);
  const auto queries = fx.queries();

  auto cluster_serial = fx.cluster(3);
  const auto serial = run_distributed_search(cluster_serial, plan, queries,
                                             fx.params);
  DistributedParams hybrid_params = fx.params;
  hybrid_params.threads_per_rank = 3;
  auto cluster_hybrid = fx.cluster(3);
  const auto hybrid = run_distributed_search(cluster_hybrid, plan, queries,
                                             hybrid_params);

  ASSERT_EQ(serial.results.size(), hybrid.results.size());
  for (std::size_t q = 0; q < serial.results.size(); ++q) {
    const auto& a = serial.results[q].top;
    const auto& b = hybrid.results[q].top;
    ASSERT_EQ(a.size(), b.size()) << q;
    for (std::size_t k = 0; k < a.size(); ++k) {
      EXPECT_EQ(a[k].peptide, b[k].peptide);
      EXPECT_FLOAT_EQ(a[k].score, b[k].score);
    }
  }
  // Work counters are conserved regardless of the threading mode.
  std::uint64_t serial_postings = 0;
  std::uint64_t hybrid_postings = 0;
  for (const auto& w : serial.work) serial_postings += w.postings_touched;
  for (const auto& w : hybrid.work) hybrid_postings += w.postings_touched;
  EXPECT_EQ(serial_postings, hybrid_postings);
}

// Result equivalence across scheduling policies: stealing must produce
// *exactly* the results of the static schedule — same PSMs, same order —
// on both in-process engines, since the merge order never depends on which
// rank executed a batch.
class ScheduleEquivalence : public ::testing::TestWithParam<mpi::Engine> {
 protected:
  Fixture fx_;

  mpi::Cluster cluster(int ranks, std::vector<double> slowdown = {}) const {
    mpi::ClusterOptions options;
    options.ranks = ranks;
    options.engine = GetParam();
    options.measured_time = GetParam() == mpi::Engine::kVirtual;
    options.slowdown = std::move(slowdown);
    return mpi::Cluster(options);
  }

  static void expect_same_results(const DistributedReport& a,
                                  const DistributedReport& b) {
    ASSERT_EQ(a.results.size(), b.results.size());
    for (std::size_t q = 0; q < a.results.size(); ++q) {
      const auto& ra = a.results[q].top;
      const auto& rb = b.results[q].top;
      ASSERT_EQ(ra.size(), rb.size()) << "query " << q;
      for (std::size_t k = 0; k < ra.size(); ++k) {
        EXPECT_EQ(ra[k].peptide, rb[k].peptide) << "query " << q;
        EXPECT_EQ(ra[k].shared_peaks, rb[k].shared_peaks) << "query " << q;
        EXPECT_FLOAT_EQ(ra[k].score, rb[k].score) << "query " << q;
        EXPECT_EQ(ra[k].source_rank, rb[k].source_rank) << "query " << q;
      }
    }
  }
};

TEST_P(ScheduleEquivalence, StealingMatchesStaticExactly) {
  const int ranks = 4;
  const auto plan = fx_.plan(core::Policy::kCyclic, ranks);
  const auto queries = fx_.queries();

  auto cluster_static = cluster(ranks);
  const auto baseline =
      run_distributed_search(cluster_static, plan, queries, fx_.params);

  DistributedParams steal_params = fx_.params;
  steal_params.schedule.schedule = core::Schedule::kStealing;
  auto cluster_steal = cluster(ranks);
  const auto stolen =
      run_distributed_search(cluster_steal, plan, queries, steal_params);

  expect_same_results(baseline, stolen);

  // Ledger invariant: every batch cell merged, so at least one execution
  // per cell; a tail-cut racing its victim may duplicate a batch (the
  // master deduplicates before merging), so `executed` can exceed the grid
  // but never undershoot it.
  const std::uint64_t batches_per_rank =
      (queries.size() + fx_.params.result_batch - 1) / fx_.params.result_batch;
  std::uint64_t executed = 0;
  for (const auto n : stolen.batches_executed) executed += n;
  EXPECT_GE(executed, batches_per_rank * static_cast<std::uint64_t>(ranks));
}

TEST_P(ScheduleEquivalence, StealingOnSlowedClusterMatchesStatic) {
  // A heterogeneous fleet (half the ranks 3x slower) forces real steals on
  // the virtual engine; results must not move.
  const int ranks = 4;
  const auto plan = fx_.plan(core::Policy::kCyclic, ranks);
  const auto queries = fx_.queries();

  auto cluster_static = cluster(ranks);
  const auto baseline =
      run_distributed_search(cluster_static, plan, queries, fx_.params);

  DistributedParams steal_params = fx_.params;
  steal_params.schedule.schedule = core::Schedule::kStealing;
  steal_params.schedule.steal_threshold = 1.0;
  auto cluster_steal = cluster(ranks, {1.0, 1.0, 3.0, 3.0});
  const auto stolen =
      run_distributed_search(cluster_steal, plan, queries, steal_params);

  expect_same_results(baseline, stolen);
}

TEST_P(ScheduleEquivalence, CostModelRecordsCoverEveryQueryOnce) {
  // Any non-static schedule ships per-query predicted/observed cost
  // records: one per (index rank, query), regardless of who executed it.
  const int ranks = 3;
  const auto plan = fx_.plan(core::Policy::kCyclic, ranks);
  const auto queries = fx_.queries();

  DistributedParams params = fx_.params;
  params.schedule.schedule = core::Schedule::kStealing;
  auto steal_cluster = cluster(ranks);
  const auto report =
      run_distributed_search(steal_cluster, plan, queries, params);

  ASSERT_EQ(report.query_costs.size(), queries.size() * ranks);
  std::size_t i = 0;
  for (int rank = 0; rank < ranks; ++rank) {
    for (std::uint32_t q = 0; q < queries.size(); ++q, ++i) {
      EXPECT_EQ(report.query_costs[i].index_rank, rank);
      EXPECT_EQ(report.query_costs[i].query_id, q);
      EXPECT_GE(report.query_costs[i].predicted, 0.0);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Engines, ScheduleEquivalence,
                         ::testing::Values(mpi::Engine::kVirtual,
                                           mpi::Engine::kThreads),
                         [](const auto& info) {
                           return info.param == mpi::Engine::kVirtual
                                      ? "virtual_engine"
                                      : "threads_engine";
                         });

TEST(DistributedSearch, StealProtocolActivation) {
  core::ScheduleParams stealing;
  stealing.schedule = core::Schedule::kStealing;
  EXPECT_TRUE(steal_protocol_active(stealing, 4, 100));
  EXPECT_FALSE(steal_protocol_active(stealing, 1, 100));  // nobody to rob
  EXPECT_FALSE(steal_protocol_active(stealing, 4, 0));    // nothing to do
  EXPECT_FALSE(steal_protocol_active(core::ScheduleParams{}, 4, 100));
}

TEST(DistributedSearch, StealingSingleRankDegradesToStatic) {
  Fixture fx;
  const auto plan = fx.plan(core::Policy::kCyclic, 1);
  const auto queries = fx.queries();
  DistributedParams params = fx.params;
  params.schedule.schedule = core::Schedule::kStealing;
  auto cluster = fx.cluster(1);
  const auto report = run_distributed_search(cluster, plan, queries, params);
  ASSERT_EQ(report.results.size(), queries.size());
  EXPECT_EQ(report.batches_stolen[0], 0u);
}

TEST(DistributedSearch, LargeBatchSizeSingleMessage) {
  Fixture fx;
  fx.params.result_batch = 10000;  // everything in one batch
  const auto plan = fx.plan(core::Policy::kCyclic, 3);
  const auto queries = fx.queries();
  auto cluster = fx.cluster(3);
  const auto report = run_distributed_search(cluster, plan, queries,
                                             fx.params);
  ASSERT_EQ(report.results.size(), queries.size());
  for (const auto& result : report.results) {
    EXPECT_FALSE(result.top.empty());
  }
}

}  // namespace
}  // namespace lbe::search
