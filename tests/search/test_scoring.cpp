#include "search/scoring.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "theospec/fragmenter.hpp"

namespace lbe::search {
namespace {

class ScoringTest : public ::testing::Test {
 protected:
  ScoringTest() {
    params_.fragment_tolerance = 0.05;
    params_.fragments.max_fragment_charge = 1;
  }

  chem::Spectrum perfect_spectrum(const chem::Peptide& peptide) {
    return theospec::theoretical_spectrum(peptide, mods_, params_.fragments);
  }

  chem::ModificationSet mods_ = chem::ModificationSet::paper_default();
  ScoreParams params_;
};

TEST_F(ScoringTest, LogFactorialValues) {
  EXPECT_DOUBLE_EQ(log_factorial(0), 0.0);
  EXPECT_DOUBLE_EQ(log_factorial(1), 0.0);
  EXPECT_NEAR(log_factorial(5), std::log(120.0), 1e-9);
  EXPECT_NEAR(log_factorial(10), std::log(3628800.0), 1e-6);
}

TEST_F(ScoringTest, PerfectMatchMatchesEveryIon) {
  const chem::Peptide peptide("PEPTIDEK");
  const auto query = perfect_spectrum(peptide);
  const auto result = score_candidate(query, peptide, mods_, params_);
  // 7 b-ions + 7 y-ions, every query peak matches.
  EXPECT_EQ(result.matched_b, 7u);
  EXPECT_EQ(result.matched_y, 7u);
  EXPECT_GT(result.hyperscore, 0.0);
}

TEST_F(ScoringTest, UnrelatedPeptideScoresLower) {
  const chem::Peptide truth("PEPTIDEK");
  const chem::Peptide decoy("WWWWHHHH");
  const auto query = perfect_spectrum(truth);
  const auto good = score_candidate(query, truth, mods_, params_);
  const auto bad = score_candidate(query, decoy, mods_, params_);
  EXPECT_GT(good.hyperscore, bad.hyperscore);
  EXPECT_GT(good.matched_total(), bad.matched_total());
}

TEST_F(ScoringTest, EmptyInputsScoreZero) {
  const chem::Peptide peptide("PEPTIDEK");
  chem::Spectrum empty;
  const auto r1 = score_candidate(empty, peptide, mods_, params_);
  EXPECT_EQ(r1.matched_total(), 0u);
  EXPECT_DOUBLE_EQ(r1.hyperscore, 0.0);
}

TEST_F(ScoringTest, ToleranceWindowControlsMatching) {
  const chem::Peptide peptide("PEPTIDEK");
  auto query = perfect_spectrum(peptide);
  // Shift every peak by 0.04 Da: inside 0.05 tolerance, outside 0.01.
  chem::Spectrum shifted;
  for (std::size_t i = 0; i < query.size(); ++i) {
    shifted.add_peak(query.mz(i) + 0.04, query.intensity(i));
  }
  shifted.finalize();

  const auto within = score_candidate(shifted, peptide, mods_, params_);
  EXPECT_EQ(within.matched_total(), 14u);

  ScoreParams tight = params_;
  tight.fragment_tolerance = 0.01;
  const auto outside = score_candidate(shifted, peptide, mods_, tight);
  EXPECT_EQ(outside.matched_total(), 0u);
}

TEST_F(ScoringTest, IntensitySumsAccumulateMatchedPeaks) {
  const chem::Peptide peptide("PEPTIDEK");
  const auto query = perfect_spectrum(peptide);  // unit intensities
  const auto result = score_candidate(query, peptide, mods_, params_);
  EXPECT_NEAR(result.intensity_b, 7.0, 1e-6);
  EXPECT_NEAR(result.intensity_y, 7.0, 1e-6);
}

TEST_F(ScoringTest, HyperscoreFormula) {
  const chem::Peptide peptide("PEPTIDEK");
  const auto query = perfect_spectrum(peptide);
  const auto result = score_candidate(query, peptide, mods_, params_);
  const double expected = log_factorial(result.matched_b) +
                          log_factorial(result.matched_y) +
                          std::log1p(result.intensity_b) +
                          std::log1p(result.intensity_y);
  EXPECT_NEAR(result.hyperscore, expected, 1e-12);
}

TEST_F(ScoringTest, NoisePeaksDoNotMatch) {
  const chem::Peptide peptide("PEPTIDEK");
  auto query = perfect_spectrum(peptide);
  chem::Spectrum with_noise;
  for (std::size_t i = 0; i < query.size(); ++i) {
    with_noise.add_peak(query.mz(i), query.intensity(i));
  }
  // Noise far from any fragment.
  with_noise.add_peak(23.0, 100.0f);
  with_noise.add_peak(2900.0, 100.0f);
  with_noise.finalize();
  const auto result = score_candidate(with_noise, peptide, mods_, params_);
  EXPECT_EQ(result.matched_total(), 14u);
  EXPECT_NEAR(result.intensity_b + result.intensity_y, 14.0, 1e-6);
}

TEST_F(ScoringTest, ModifiedPeptideScoredAgainstItsOwnSpectrum) {
  const chem::Peptide oxidized("MPEPTIDEK", {{0, 2}}, mods_);
  const chem::Peptide plain("MPEPTIDEK");
  const auto query = perfect_spectrum(oxidized);
  const auto right = score_candidate(query, oxidized, mods_, params_);
  const auto wrong = score_candidate(query, plain, mods_, params_);
  // The unmodified form mismatches every b-ion (M is N-terminal), but the
  // y-ladder (which excludes the modified residue) still matches.
  EXPECT_GT(right.matched_b, wrong.matched_b);
  EXPECT_EQ(right.matched_y, wrong.matched_y);
  EXPECT_GT(right.hyperscore, wrong.hyperscore);
}

}  // namespace
}  // namespace lbe::search
