#include "search/load_model.hpp"

#include <gtest/gtest.h>

#include <memory>

#include "theospec/fragmenter.hpp"

namespace lbe::search {
namespace {

class LoadModelTest : public ::testing::Test {
 protected:
  LoadModelTest() {
    params_.resolution = 0.01;
    params_.max_fragment_mz = 2000.0;
    params_.fragments.max_fragment_charge = 1;
    filter_.fragment_tolerance = 0.05;
    filter_.shared_peak_min = 1;
  }

  index::ChunkedIndex make_index(const std::vector<std::string>& seqs) {
    index::PeptideStore store(&mods_);
    for (const auto& s : seqs) store.add(chem::Peptide(s), mods_);
    return index::ChunkedIndex(std::move(store), mods_, params_,
                               index::ChunkingParams{});
  }

  chem::Spectrum theo(const std::string& seq) {
    return theospec::theoretical_spectrum(chem::Peptide(seq), mods_,
                                          params_.fragments);
  }

  chem::ModificationSet mods_ = chem::ModificationSet::paper_default();
  index::IndexParams params_;
  index::QueryParams filter_;
  PreprocessParams preprocess_;
};

TEST_F(LoadModelTest, PredictionEqualsMeasuredPostings) {
  const auto index =
      make_index({"PEPTIDEK", "MKWVTFISLLK", "GGGGGGK", "AAAAAAGK"});
  const std::vector<chem::Spectrum> queries = {theo("PEPTIDEK"),
                                               theo("GGGGGGK")};
  const double predicted =
      predict_query_cost(index, queries, filter_, preprocess_);

  index::QueryWork work;
  std::vector<index::Candidate> candidates;
  for (const auto& query : queries) {
    candidates.clear();
    index.query(preprocess(query, preprocess_), filter_, candidates, work);
  }
  EXPECT_DOUBLE_EQ(predicted,
                   static_cast<double>(work.postings_touched));
}

TEST_F(LoadModelTest, EmptyQueriesPredictZero) {
  const auto index = make_index({"PEPTIDEK"});
  EXPECT_DOUBLE_EQ(predict_query_cost(index, {}, filter_, preprocess_), 0.0);
}

TEST_F(LoadModelTest, BiggerPartitionPredictsMoreCost) {
  const auto small = make_index({"PEPTIDEK"});
  const auto large =
      make_index({"PEPTIDEK", "PEPTIDER", "PEPTIDEG", "PEPTIDEA"});
  const std::vector<chem::Spectrum> queries = {theo("PEPTIDEK")};
  EXPECT_LT(predict_query_cost(small, queries, filter_, preprocess_),
            predict_query_cost(large, queries, filter_, preprocess_));
}

// Regression: the model used to sum each peak's tolerance window
// independently, double-counting bins covered by several peaks, while the
// engine coalesces overlapping windows and walks each posting once. Two
// peaks landing in the same bin must predict the same cost as one.
TEST_F(LoadModelTest, OverlappingWindowsAreNotDoubleCounted) {
  const auto index =
      make_index({"PEPTIDEK", "MKWVTFISLLK", "GGGGGGK", "AAAAAAGK"});

  chem::Spectrum one;
  one.add_peak(500.0, 1.0f);
  one.precursor.neutral_mass = 1000.0;
  one.finalize();
  chem::Spectrum two = one;
  two.add_peak(500.004, 1.0f);  // same 0.01-Da bin => identical window
  two.finalize();

  const double predicted_one =
      predict_query_cost(index, {one}, filter_, preprocess_);
  const double predicted_two =
      predict_query_cost(index, {two}, filter_, preprocess_);
  EXPECT_DOUBLE_EQ(predicted_two, predicted_one);

  // The engine's multiplicity-weighted accounting still counts both peaks
  // (it mirrors the per-peak reference walk), so the old per-peak sum is
  // recoverable as work.postings_touched — and the merged prediction must
  // sit at half of it for a fully-overlapping pair.
  index::QueryWork work;
  std::vector<index::Candidate> candidates;
  index.query(preprocess(two, preprocess_), filter_, candidates, work);
  EXPECT_DOUBLE_EQ(2.0 * predicted_two,
                   static_cast<double>(work.postings_touched));
}

// Regression: `center + tol_bins` could wrap MzBin for a huge fragment
// tolerance; the window must clamp to "all bins" instead.
TEST_F(LoadModelTest, HugeToleranceClampsToWholeIndex) {
  const auto index = make_index({"PEPTIDEK", "GGGGGGK"});
  index::QueryParams wide = filter_;
  wide.fragment_tolerance = 1e12;

  chem::Spectrum q;
  q.add_peak(1000.0, 1.0f);
  q.precursor.neutral_mass = 1000.0;
  q.finalize();

  // One peak whose window covers every bin touches every posting once.
  const double predicted = predict_query_cost(index, {q}, wide, preprocess_);
  EXPECT_DOUBLE_EQ(predicted, static_cast<double>(index.num_postings()));
}

TEST_F(LoadModelTest, PerQueryModelMatchesAggregatePrediction) {
  const auto index =
      make_index({"PEPTIDEK", "MKWVTFISLLK", "GGGGGGK", "AAAAAAGK"});
  const std::vector<chem::Spectrum> queries = {theo("PEPTIDEK"),
                                               theo("GGGGGGK"),
                                               theo("AAAAAAGK")};
  const QueryCostModel model(index, filter_, preprocess_);
  double per_query_sum = 0.0;
  for (const auto& query : queries) per_query_sum += model.predict(query);
  EXPECT_DOUBLE_EQ(per_query_sum,
                   predict_query_cost(index, queries, filter_, preprocess_));
}

TEST_F(LoadModelTest, ModelOutlivesTheIndex) {
  // The model snapshots the occupancy histogram — predictions must not
  // depend on the index staying alive.
  std::unique_ptr<QueryCostModel> model;
  double live = 0.0;
  const auto query = theo("PEPTIDEK");
  {
    const auto index = make_index({"PEPTIDEK", "GGGGGGK"});
    model = std::make_unique<QueryCostModel>(index, filter_, preprocess_);
    live = model->predict(query);
  }
  EXPECT_DOUBLE_EQ(model->predict(query), live);
  EXPECT_GT(live, 0.0);
}

TEST(CostModelFit, PerfectPredictionsFitIdentity) {
  const std::vector<double> predicted = {10.0, 20.0, 40.0};
  const CostModelFit fit = fit_cost_model(predicted, predicted);
  EXPECT_NEAR(fit.slope, 1.0, 1e-9);
  EXPECT_NEAR(fit.intercept, 0.0, 1e-9);
  EXPECT_DOUBLE_EQ(fit.mean_rel_error, 0.0);
  EXPECT_DOUBLE_EQ(fit.p95_rel_error, 0.0);
  EXPECT_EQ(fit.samples, 3u);
}

TEST(CostModelFit, RecoversLinearTransform) {
  // observed = 2 * predicted + 5, exactly.
  const std::vector<double> predicted = {1.0, 2.0, 3.0, 4.0};
  const std::vector<double> observed = {7.0, 9.0, 11.0, 13.0};
  const CostModelFit fit = fit_cost_model(predicted, observed);
  EXPECT_NEAR(fit.slope, 2.0, 1e-9);
  EXPECT_NEAR(fit.intercept, 5.0, 1e-9);
  EXPECT_GT(fit.mean_rel_error, 0.0);  // raw predictions are off by the map
}

TEST(CostModelFit, RelativeErrorSummary) {
  // |predicted - observed| / observed: {0.5, 0.25} -> mean 0.375.
  const CostModelFit fit = fit_cost_model({5.0, 15.0}, {10.0, 12.0});
  EXPECT_EQ(fit.samples, 2u);
  EXPECT_NEAR(fit.mean_rel_error, 0.375, 1e-9);
  EXPECT_NEAR(fit.p95_rel_error, 0.5, 1e-9);
}

TEST(CostModelFit, DegenerateInputsKeepDefaults) {
  const CostModelFit empty = fit_cost_model({}, {});
  EXPECT_DOUBLE_EQ(empty.slope, 1.0);
  EXPECT_DOUBLE_EQ(empty.intercept, 0.0);
  EXPECT_EQ(empty.samples, 0u);

  const CostModelFit mismatched = fit_cost_model({1.0, 2.0}, {1.0});
  EXPECT_EQ(mismatched.samples, 0u);

  // All-zero observations: the fit runs but there is nothing to measure
  // relative error against, so the summary stays at zero.
  const CostModelFit zeros = fit_cost_model({1.0, 2.0}, {0.0, 0.0});
  EXPECT_EQ(zeros.samples, 2u);
  EXPECT_DOUBLE_EQ(zeros.mean_rel_error, 0.0);
  EXPECT_DOUBLE_EQ(zeros.p95_rel_error, 0.0);
}

TEST(PredictionCorrelation, PerfectAndInverse) {
  EXPECT_DOUBLE_EQ(
      prediction_correlation({1.0, 2.0, 3.0}, {10.0, 20.0, 30.0}), 1.0);
  EXPECT_DOUBLE_EQ(
      prediction_correlation({1.0, 2.0, 3.0}, {30.0, 20.0, 10.0}), -1.0);
}

TEST(PredictionCorrelation, DegenerateInputs) {
  EXPECT_DOUBLE_EQ(prediction_correlation({}, {}), 0.0);
  EXPECT_DOUBLE_EQ(prediction_correlation({1.0}, {1.0}), 0.0);
  EXPECT_DOUBLE_EQ(prediction_correlation({1.0, 2.0}, {1.0}), 0.0);
  EXPECT_DOUBLE_EQ(prediction_correlation({5.0, 5.0}, {1.0, 2.0}), 0.0);
}

}  // namespace
}  // namespace lbe::search
