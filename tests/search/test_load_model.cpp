#include "search/load_model.hpp"

#include <gtest/gtest.h>

#include "theospec/fragmenter.hpp"

namespace lbe::search {
namespace {

class LoadModelTest : public ::testing::Test {
 protected:
  LoadModelTest() {
    params_.resolution = 0.01;
    params_.max_fragment_mz = 2000.0;
    params_.fragments.max_fragment_charge = 1;
    filter_.fragment_tolerance = 0.05;
    filter_.shared_peak_min = 1;
  }

  index::ChunkedIndex make_index(const std::vector<std::string>& seqs) {
    index::PeptideStore store(&mods_);
    for (const auto& s : seqs) store.add(chem::Peptide(s), mods_);
    return index::ChunkedIndex(std::move(store), mods_, params_,
                               index::ChunkingParams{});
  }

  chem::Spectrum theo(const std::string& seq) {
    return theospec::theoretical_spectrum(chem::Peptide(seq), mods_,
                                          params_.fragments);
  }

  chem::ModificationSet mods_ = chem::ModificationSet::paper_default();
  index::IndexParams params_;
  index::QueryParams filter_;
  PreprocessParams preprocess_;
};

TEST_F(LoadModelTest, PredictionEqualsMeasuredPostings) {
  const auto index =
      make_index({"PEPTIDEK", "MKWVTFISLLK", "GGGGGGK", "AAAAAAGK"});
  const std::vector<chem::Spectrum> queries = {theo("PEPTIDEK"),
                                               theo("GGGGGGK")};
  const double predicted =
      predict_query_cost(index, queries, filter_, preprocess_);

  index::QueryWork work;
  std::vector<index::Candidate> candidates;
  for (const auto& query : queries) {
    candidates.clear();
    index.query(preprocess(query, preprocess_), filter_, candidates, work);
  }
  EXPECT_DOUBLE_EQ(predicted,
                   static_cast<double>(work.postings_touched));
}

TEST_F(LoadModelTest, EmptyQueriesPredictZero) {
  const auto index = make_index({"PEPTIDEK"});
  EXPECT_DOUBLE_EQ(predict_query_cost(index, {}, filter_, preprocess_), 0.0);
}

TEST_F(LoadModelTest, BiggerPartitionPredictsMoreCost) {
  const auto small = make_index({"PEPTIDEK"});
  const auto large =
      make_index({"PEPTIDEK", "PEPTIDER", "PEPTIDEG", "PEPTIDEA"});
  const std::vector<chem::Spectrum> queries = {theo("PEPTIDEK")};
  EXPECT_LT(predict_query_cost(small, queries, filter_, preprocess_),
            predict_query_cost(large, queries, filter_, preprocess_));
}

TEST(PredictionCorrelation, PerfectAndInverse) {
  EXPECT_DOUBLE_EQ(
      prediction_correlation({1.0, 2.0, 3.0}, {10.0, 20.0, 30.0}), 1.0);
  EXPECT_DOUBLE_EQ(
      prediction_correlation({1.0, 2.0, 3.0}, {30.0, 20.0, 10.0}), -1.0);
}

TEST(PredictionCorrelation, DegenerateInputs) {
  EXPECT_DOUBLE_EQ(prediction_correlation({}, {}), 0.0);
  EXPECT_DOUBLE_EQ(prediction_correlation({1.0}, {1.0}), 0.0);
  EXPECT_DOUBLE_EQ(prediction_correlation({1.0, 2.0}, {1.0}), 0.0);
  EXPECT_DOUBLE_EQ(prediction_correlation({5.0, 5.0}, {1.0, 2.0}), 0.0);
}

}  // namespace
}  // namespace lbe::search
