#include "search/query_engine.hpp"

#include <gtest/gtest.h>

#include "theospec/fragmenter.hpp"

namespace lbe::search {
namespace {

class QueryEngineTest : public ::testing::Test {
 protected:
  QueryEngineTest() {
    index_params_.resolution = 0.01;
    index_params_.max_fragment_mz = 3000.0;
    index_params_.fragments.max_fragment_charge = 1;
    search_params_.filter.fragment_tolerance = 0.05;
    search_params_.filter.shared_peak_min = 4;
    search_params_.score.fragments = index_params_.fragments;
    search_params_.top_k = 3;
  }

  std::unique_ptr<index::ChunkedIndex> make_index(
      const std::vector<std::string>& seqs) {
    index::PeptideStore store(&mods_);
    for (const auto& s : seqs) store.add(chem::Peptide(s), mods_);
    return std::make_unique<index::ChunkedIndex>(
        std::move(store), mods_, index_params_, index::ChunkingParams{});
  }

  chem::Spectrum theo(const std::string& seq) {
    return theospec::theoretical_spectrum(chem::Peptide(seq), mods_,
                                          index_params_.fragments);
  }

  chem::ModificationSet mods_ = chem::ModificationSet::paper_default();
  index::IndexParams index_params_;
  SearchParams search_params_;
};

const std::vector<std::string> kDatabase = {
    "PEPTIDEK", "PEPTIDER", "MKWVTFISLLK", "GGGGGGK", "WWWWHHHHK",
    "AAAAAAGK",  "CCCCCCK",  "NNNNNNK",
};

TEST_F(QueryEngineTest, TopHitIsTruePeptide) {
  const auto index = make_index(kDatabase);
  const QueryEngine engine(*index, mods_, search_params_);
  for (std::size_t truth = 0; truth < kDatabase.size(); ++truth) {
    index::QueryWork work;
    const auto result =
        engine.search(theo(kDatabase[truth]),
                      static_cast<std::uint32_t>(truth), work);
    ASSERT_FALSE(result.top.empty()) << kDatabase[truth];
    EXPECT_EQ(index->store().view(result.top[0].peptide).sequence,
              kDatabase[truth]);
    EXPECT_EQ(result.query_id, truth);
  }
}

TEST_F(QueryEngineTest, TopKLimitRespected) {
  const auto index = make_index(kDatabase);
  SearchParams params = search_params_;
  params.top_k = 2;
  params.filter.shared_peak_min = 1;
  const QueryEngine engine(*index, mods_, params);
  index::QueryWork work;
  const auto result = engine.search(theo("PEPTIDEK"), 0, work);
  EXPECT_LE(result.top.size(), 2u);
  EXPECT_GE(result.candidates, 2u);  // PEPTIDEK and PEPTIDER at least
}

TEST_F(QueryEngineTest, ResultsSortedBestFirst) {
  const auto index = make_index(kDatabase);
  SearchParams params = search_params_;
  params.filter.shared_peak_min = 1;
  const QueryEngine engine(*index, mods_, params);
  index::QueryWork work;
  const auto result = engine.search(theo("PEPTIDEK"), 0, work);
  for (std::size_t i = 1; i < result.top.size(); ++i) {
    EXPECT_TRUE(psm_better(result.top[i - 1], result.top[i]) ||
                (!psm_better(result.top[i], result.top[i - 1])));
  }
}

TEST_F(QueryEngineTest, NoCandidatesYieldsEmptyResult) {
  const auto index = make_index({"WWWWWWWWWW"});
  const QueryEngine engine(*index, mods_, search_params_);
  index::QueryWork work;
  const auto result = engine.search(theo("GGGGGGK"), 9, work);
  EXPECT_TRUE(result.top.empty());
  EXPECT_EQ(result.candidates, 0u);
  EXPECT_EQ(result.query_id, 9u);
}

TEST_F(QueryEngineTest, RescoreDepthRefinesLeadingPsms) {
  const auto index = make_index(kDatabase);
  SearchParams params = search_params_;
  params.filter.shared_peak_min = 1;
  params.top_k = 5;
  const QueryEngine engine(*index, mods_, params);
  index::QueryWork work_a;
  const auto filter_only = engine.search(theo("PEPTIDEK"), 0, work_a);

  params.rescore_depth = 3;
  const QueryEngine rescoring(*index, mods_, params);
  index::QueryWork work_b;
  const auto rescored = rescoring.search(theo("PEPTIDEK"), 0, work_b);

  // Same PSM count; the true peptide stays on top; the leading scores now
  // come from the b/y-aware hyperscore, so they differ from filter scores.
  ASSERT_EQ(filter_only.top.size(), rescored.top.size());
  EXPECT_EQ(index->store().view(rescored.top[0].peptide).sequence,
            "PEPTIDEK");
  EXPECT_NE(filter_only.top[0].score, rescored.top[0].score);
}

TEST_F(QueryEngineTest, SearchAllMatchesIndividualSearches) {
  const auto index = make_index(kDatabase);
  const QueryEngine engine(*index, mods_, search_params_);
  std::vector<chem::Spectrum> queries;
  for (const auto& seq : kDatabase) queries.push_back(theo(seq));

  index::QueryWork work_batch;
  const auto batch = engine.search_all(queries, work_batch);

  index::QueryWork work_single;
  for (std::size_t i = 0; i < queries.size(); ++i) {
    const auto single = engine.search(
        queries[i], static_cast<std::uint32_t>(i), work_single);
    ASSERT_EQ(batch[i].top.size(), single.top.size());
    for (std::size_t k = 0; k < single.top.size(); ++k) {
      EXPECT_EQ(batch[i].top[k].peptide, single.top[k].peptide);
      EXPECT_EQ(batch[i].top[k].shared_peaks, single.top[k].shared_peaks);
    }
  }
  EXPECT_EQ(work_batch.postings_touched, work_single.postings_touched);
}

TEST_F(QueryEngineTest, SearchAllWithThreadPoolSameResults) {
  const auto index = make_index(kDatabase);
  const QueryEngine engine(*index, mods_, search_params_);
  std::vector<chem::Spectrum> queries;
  for (const auto& seq : kDatabase) queries.push_back(theo(seq));

  index::QueryWork work_serial;
  const auto serial = engine.search_all(queries, work_serial);
  ThreadPool pool(3);
  index::QueryWork work_pooled;
  const auto pooled = engine.search_all(queries, work_pooled, &pool);

  ASSERT_EQ(serial.size(), pooled.size());
  for (std::size_t i = 0; i < serial.size(); ++i) {
    ASSERT_EQ(serial[i].top.size(), pooled[i].top.size());
    for (std::size_t k = 0; k < serial[i].top.size(); ++k) {
      EXPECT_EQ(serial[i].top[k].peptide, pooled[i].top[k].peptide);
    }
  }
  EXPECT_EQ(work_serial.postings_touched, work_pooled.postings_touched);
}

TEST_F(QueryEngineTest, PsmOrderingIsTotal) {
  const Psm a{1, 5, 10.0f};
  const Psm b{2, 5, 10.0f};
  const Psm c{1, 7, 10.0f};
  const Psm d{1, 5, 11.0f};
  EXPECT_TRUE(psm_better(a, b));   // id tie-break
  EXPECT_FALSE(psm_better(b, a));
  EXPECT_TRUE(psm_better(c, a));   // shared peaks
  EXPECT_TRUE(psm_better(d, a));   // score dominates
  EXPECT_FALSE(psm_better(a, a));  // irreflexive
}

TEST_F(QueryEngineTest, TopKZeroRejected) {
  const auto index = make_index(kDatabase);
  SearchParams params = search_params_;
  params.top_k = 0;
  EXPECT_THROW(QueryEngine(*index, mods_, params), InvariantError);
}

TEST_F(QueryEngineTest, ModifiedVariantFoundWhenIndexed) {
  index::PeptideStore store(&mods_);
  store.add(chem::Peptide("MPEPTIDEK"), mods_);
  const chem::Peptide oxidized("MPEPTIDEK", {{0, 2}}, mods_);
  store.add(oxidized, mods_);
  const index::ChunkedIndex index(std::move(store), mods_, index_params_,
                                  index::ChunkingParams{});
  const QueryEngine engine(index, mods_, search_params_);
  index::QueryWork work;
  const auto result = engine.search(
      theospec::theoretical_spectrum(oxidized, mods_,
                                     index_params_.fragments),
      0, work);
  ASSERT_FALSE(result.top.empty());
  EXPECT_EQ(result.top[0].peptide, 1u);  // the modified entry wins
}

}  // namespace
}  // namespace lbe::search
