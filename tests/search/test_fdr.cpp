#include "search/fdr.hpp"

#include <gtest/gtest.h>

namespace lbe::search {
namespace {

TEST(Fdr, EmptyInput) {
  EXPECT_TRUE(compute_qvalues({}).empty());
}

TEST(Fdr, AllTargetsZeroQ) {
  const std::vector<FdrInput> psms = {{10.f, false}, {8.f, false},
                                      {6.f, false}};
  const auto q = compute_qvalues(psms);
  for (const double v : q) EXPECT_DOUBLE_EQ(v, 0.0);
  EXPECT_EQ(accepted_at(psms, q, 0.01), 3u);
}

TEST(Fdr, KnownLadder) {
  // Scores desc: T T D T D D. Walking FDR: 0, 0, 1/2, 1/3, 2/3, 3/3.
  // q-values (monotone from bottom): 0, 0, 1/3, 1/3, 2/3, 1.
  const std::vector<FdrInput> psms = {
      {10.f, false}, {9.f, false}, {8.f, true},
      {7.f, false},  {6.f, true},  {5.f, true},
  };
  const auto q = compute_qvalues(psms);
  EXPECT_DOUBLE_EQ(q[0], 0.0);
  EXPECT_DOUBLE_EQ(q[1], 0.0);
  EXPECT_NEAR(q[2], 1.0 / 3.0, 1e-12);
  EXPECT_NEAR(q[3], 1.0 / 3.0, 1e-12);
  EXPECT_NEAR(q[4], 2.0 / 3.0, 1e-12);
  EXPECT_DOUBLE_EQ(q[5], 1.0);
}

TEST(Fdr, QValuesAreMonotoneInScore) {
  const std::vector<FdrInput> psms = {
      {9.f, false}, {8.f, true}, {7.f, false}, {6.f, true},
      {5.f, false}, {4.f, true}, {3.f, false},
  };
  const auto q = compute_qvalues(psms);
  for (std::size_t i = 1; i < psms.size(); ++i) {
    EXPECT_LE(q[i - 1], q[i]);  // input is already score-descending
  }
}

TEST(Fdr, TiesCountDecoysFirst) {
  // Equal scores: the decoy is ranked above the target (conservative), so
  // the target at the same score already carries the decoy in its FDR.
  const std::vector<FdrInput> psms = {{5.f, false}, {5.f, true}};
  const auto q = compute_qvalues(psms);
  EXPECT_DOUBLE_EQ(q[0], 1.0);  // 1 decoy / 1 target
  EXPECT_DOUBLE_EQ(q[1], 1.0);
}

TEST(Fdr, AcceptedAtThreshold) {
  const std::vector<FdrInput> psms = {
      {10.f, false}, {9.f, false}, {8.f, false}, {7.f, false},
      {6.f, true},   {5.f, false},
  };
  const auto q = compute_qvalues(psms);
  // First 4 targets have q = 0; the 5th target (score 5) sits below the
  // decoy: q = 1/5.
  EXPECT_EQ(accepted_at(psms, q, 0.01), 4u);
  EXPECT_EQ(accepted_at(psms, q, 0.5), 5u);
}

TEST(Fdr, AllDecoys) {
  const std::vector<FdrInput> psms = {{3.f, true}, {2.f, true}};
  const auto q = compute_qvalues(psms);
  // No targets: FDR denominators clamp at 1.
  EXPECT_GE(q[0], 1.0);
  EXPECT_EQ(accepted_at(psms, q, 1.0), 0u);
}

TEST(Fdr, InputOrderIrrelevant) {
  const std::vector<FdrInput> sorted = {
      {9.f, false}, {8.f, true}, {7.f, false}};
  const std::vector<FdrInput> shuffled = {
      {7.f, false}, {9.f, false}, {8.f, true}};
  const auto qa = compute_qvalues(sorted);
  const auto qb = compute_qvalues(shuffled);
  EXPECT_DOUBLE_EQ(qa[0], qb[1]);
  EXPECT_DOUBLE_EQ(qa[1], qb[2]);
  EXPECT_DOUBLE_EQ(qa[2], qb[0]);
}

}  // namespace
}  // namespace lbe::search
