#include "search/report.hpp"

#include <gtest/gtest.h>

#include <fstream>
#include <sstream>

#include "common/strings.hpp"
#include "search/fdr.hpp"
#include "theospec/fragmenter.hpp"

namespace lbe::search {
namespace {

class ReportTest : public ::testing::Test {
 protected:
  // NOTE: mods_/variants_ are declared before plan_ below so they are
  // initialized before the plan that references them.
  ReportTest()
      : plan_({"PEPTIDEK", "GGGGGGK", "MKWVTFISLLK"}, mods_, variants_,
              lbe_params()) {}

  static core::LbeParams lbe_params() {
    core::LbeParams lbe;
    lbe.partition.ranks = 2;
    return lbe;
  }

  /// First global variant id whose base differs from variant 0's base
  /// (variants of one base share its decoy/target identity).
  GlobalPeptideId other_base_variant() const {
    const auto base0 = plan_.locate_variant(0).base_id;
    for (GlobalPeptideId g = 1; g < plan_.num_variants(); ++g) {
      if (plan_.locate_variant(g).base_id != base0) return g;
    }
    return 0;
  }

  std::vector<GlobalQueryResult> sample_results() const {
    GlobalQueryResult r0;
    r0.query_id = 0;
    r0.top.push_back(GlobalPsm{0, 12, 21.5f, 0});
    r0.top.push_back(GlobalPsm{other_base_variant(), 5, 8.25f, 1});
    GlobalQueryResult r1;
    r1.query_id = 1;  // no PSMs
    return {r0, r1};
  }

  chem::ModificationSet mods_ = chem::ModificationSet::paper_default();
  digest::VariantParams variants_;
  core::LbePlan plan_;  // keep last: references the members above
};

TEST_F(ReportTest, HeaderAndRowStructure) {
  std::ostringstream out;
  write_psm_report(out, plan_, sample_results());
  const std::string text = out.str();
  const auto lines = str::split(text, '\n');
  ASSERT_GE(lines.size(), 3u);
  EXPECT_TRUE(str::starts_with(lines[0], "query_id\tpsm_rank\tpeptide"));
  // 2 PSMs total -> 2 data rows (+ trailing empty line from final \n).
  EXPECT_EQ(lines.size(), 4u);
  const auto fields = str::split(lines[1], '\t');
  ASSERT_EQ(fields.size(), 9u);
  EXPECT_EQ(fields[0], "0");  // query id
  EXPECT_EQ(fields[1], "1");  // rank
}

TEST_F(ReportTest, PeptideColumnsAreAnnotated) {
  std::ostringstream out;
  write_psm_report(out, plan_, sample_results());
  const std::string text = out.str();
  // Global variant 0 is the first variant of the first clustered base.
  const auto expected = plan_.variant_peptide(0).annotated(mods_);
  EXPECT_NE(text.find(expected), std::string::npos);
}

TEST_F(ReportTest, DecoyFlagColumn) {
  std::vector<bool> decoy_bases(plan_.num_bases(), false);
  const auto loc = plan_.locate_variant(0);
  decoy_bases[loc.base_id] = true;
  std::ostringstream out;
  write_psm_report(out, plan_, sample_results(), decoy_bases);
  const std::string text = out.str();
  const auto lines = str::split(text, '\n');
  const auto first = str::split(lines[1], '\t');
  const auto second = str::split(lines[2], '\t');
  EXPECT_EQ(first[8], "1");
  EXPECT_EQ(second[8], "0");
}

TEST_F(ReportTest, FileWriterRoundTrip) {
  const std::string path = ::testing::TempDir() + "/lbe_report.tsv";
  write_psm_report_file(path, plan_, sample_results());
  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::string header;
  std::getline(in, header);
  EXPECT_TRUE(str::starts_with(header, "query_id"));
  EXPECT_THROW(
      write_psm_report_file("/nonexistent/dir/r.tsv", plan_, {}),
      IoError);
}

TEST_F(ReportTest, ReportFeedsFdrPipeline) {
  // Typical postprocessing: report rows -> FdrInput -> q-values.
  const auto results = sample_results();
  std::vector<bool> decoy_bases(plan_.num_bases(), false);
  decoy_bases[plan_.locate_variant(other_base_variant()).base_id] = true;
  std::vector<FdrInput> fdr_input;
  for (const auto& result : results) {
    for (const auto& psm : result.top) {
      fdr_input.push_back(FdrInput{
          psm.score,
          decoy_bases[plan_.locate_variant(psm.peptide).base_id]});
    }
  }
  const auto q = compute_qvalues(fdr_input);
  ASSERT_EQ(q.size(), 2u);
  EXPECT_DOUBLE_EQ(q[0], 0.0);  // target above the decoy
  EXPECT_EQ(accepted_at(fdr_input, q, 0.01), 1u);
}

}  // namespace
}  // namespace lbe::search
