#include "search/preprocess.hpp"

#include <gtest/gtest.h>

#include <limits>

namespace lbe::search {
namespace {

chem::Spectrum make_spectrum(std::size_t peaks, float base_intensity = 1.0f) {
  chem::Spectrum s;
  for (std::size_t i = 0; i < peaks; ++i) {
    s.add_peak(100.0 + static_cast<double>(i),
               base_intensity + static_cast<float>(i));
  }
  s.precursor.mz = 700.0;
  s.precursor.charge = 2;
  s.precursor.neutral_mass = 1398.0;
  s.scan_id = 5;
  // std::string move assignment sidesteps GCC 12's -Wrestrict false
  // positive (PR 105329) on char* assignment under -O2.
  s.title = std::string("t");
  s.finalize();
  return s;
}

TEST(Preprocess, KeepsTopNPeaksByIntensity) {
  PreprocessParams params;
  params.top_peaks = 10;
  params.normalize = false;
  const auto out = preprocess(make_spectrum(50), params);
  ASSERT_EQ(out.size(), 10u);
  // The 10 most intense are the last 10 m/z values (intensity grows with i).
  for (std::size_t i = 0; i < out.size(); ++i) {
    EXPECT_GE(out.mz(i), 140.0);
  }
}

TEST(Preprocess, OutputSortedByMz) {
  PreprocessParams params;
  params.top_peaks = 25;
  const auto out = preprocess(make_spectrum(100), params);
  for (std::size_t i = 1; i < out.size(); ++i) {
    EXPECT_LT(out.mz(i - 1), out.mz(i));
  }
}

TEST(Preprocess, FewerPeaksThanNKeepsAll) {
  PreprocessParams params;
  params.top_peaks = 100;
  const auto out = preprocess(make_spectrum(7), params);
  EXPECT_EQ(out.size(), 7u);
}

TEST(Preprocess, MzRangeFilterApplies) {
  PreprocessParams params;
  params.top_peaks = 100;
  params.min_mz = 110.0;
  params.max_mz = 120.0;
  const auto out = preprocess(make_spectrum(50), params);
  for (std::size_t i = 0; i < out.size(); ++i) {
    EXPECT_GE(out.mz(i), 110.0);
    EXPECT_LE(out.mz(i), 120.0);
  }
  EXPECT_EQ(out.size(), 11u);
}

TEST(Preprocess, NormalizationScalesMaxTo100) {
  PreprocessParams params;
  params.top_peaks = 10;
  params.normalize = true;
  const auto out = preprocess(make_spectrum(20, 5.0f), params);
  float max_intensity = 0.0f;
  for (std::size_t i = 0; i < out.size(); ++i) {
    max_intensity = std::max(max_intensity, out.intensity(i));
  }
  EXPECT_FLOAT_EQ(max_intensity, 100.0f);
}

TEST(Preprocess, NoNormalizationPreservesIntensities) {
  PreprocessParams params;
  params.top_peaks = 3;
  params.normalize = false;
  const auto out = preprocess(make_spectrum(5, 1.0f), params);
  // Top 3 intensities are 5, 4, 3 at m/z 104, 103, 102.
  ASSERT_EQ(out.size(), 3u);
  EXPECT_FLOAT_EQ(out.intensity(2), 5.0f);
}

TEST(Preprocess, PrecursorAndMetadataCopied) {
  PreprocessParams params;
  const auto out = preprocess(make_spectrum(30), params);
  EXPECT_DOUBLE_EQ(out.precursor.mz, 700.0);
  EXPECT_EQ(out.precursor.charge, 2);
  EXPECT_DOUBLE_EQ(out.precursor.neutral_mass, 1398.0);
  EXPECT_EQ(out.scan_id, 5u);
  EXPECT_EQ(out.title, "t");
}

TEST(Preprocess, EmptySpectrumStaysEmpty) {
  PreprocessParams params;
  chem::Spectrum empty;
  const auto out = preprocess(empty, params);
  EXPECT_TRUE(out.empty());
}

TEST(Preprocess, IntensityTiesBrokenByLowerMz) {
  chem::Spectrum s;
  s.add_peak(300.0, 5.0f);
  s.add_peak(100.0, 5.0f);
  s.add_peak(200.0, 5.0f);
  s.finalize();
  PreprocessParams params;
  params.top_peaks = 2;
  params.normalize = false;
  const auto out = preprocess(s, params);
  ASSERT_EQ(out.size(), 2u);
  EXPECT_DOUBLE_EQ(out.mz(0), 100.0);
  EXPECT_DOUBLE_EQ(out.mz(1), 200.0);
}

// Regression: NaN intensities fed to the top-N partial_sort comparator
// broke its strict weak ordering (UB); non-finite m/z could neither be
// binned nor kept sorted. All such peaks are dropped up front.
TEST(Preprocess, DropsNonFinitePeaks) {
  constexpr double kNanMz = std::numeric_limits<double>::quiet_NaN();
  constexpr float kNanInt = std::numeric_limits<float>::quiet_NaN();
  chem::Spectrum s;
  s.add_peak(100.0, 5.0f);
  s.add_peak(kNanMz, 50.0f);
  s.add_peak(200.0, kNanInt);
  s.add_peak(300.0, std::numeric_limits<float>::infinity());
  s.add_peak(std::numeric_limits<double>::infinity(), 2.0f);
  s.add_peak(150.0, 7.0f);
  // Deliberately NOT finalized: finalize() sorts by m/z, which a NaN m/z
  // would also break. preprocess must cope with the raw parse order.
  PreprocessParams params;
  params.top_peaks = 10;
  params.normalize = false;
  const auto out = preprocess(s, params);
  ASSERT_EQ(out.size(), 2u);
  EXPECT_DOUBLE_EQ(out.mz(0), 100.0);
  EXPECT_DOUBLE_EQ(out.mz(1), 150.0);
  EXPECT_FLOAT_EQ(out.intensity(0), 5.0f);
  EXPECT_FLOAT_EQ(out.intensity(1), 7.0f);
}

TEST(Preprocess, NanPeaksDoNotDisturbTopNSelection) {
  chem::Spectrum s;
  for (std::size_t i = 0; i < 20; ++i) {
    s.add_peak(100.0 + static_cast<double>(i), 1.0f + static_cast<float>(i));
    s.add_peak(500.0 + static_cast<double>(i),
               std::numeric_limits<float>::quiet_NaN());
  }
  PreprocessParams params;
  params.top_peaks = 5;
  params.normalize = false;
  const auto out = preprocess(s, params);
  // Top 5 finite intensities are 20..16 at m/z 119..115, emitted sorted.
  ASSERT_EQ(out.size(), 5u);
  for (std::size_t i = 0; i < out.size(); ++i) {
    EXPECT_DOUBLE_EQ(out.mz(i), 115.0 + static_cast<double>(i));
  }
}

TEST(Preprocess, PaperDefaultIsTop100) {
  const PreprocessParams params;
  EXPECT_EQ(params.top_peaks, 100u);
  const auto out = preprocess(make_spectrum(500), params);
  EXPECT_EQ(out.size(), 100u);
}

}  // namespace
}  // namespace lbe::search
