// Equivalence of the batched bin-span filtration path against the retained
// pre-refactor reference walk (SlmIndex::query_reference), on seeded random
// workloads.
//
// Spectra here carry integer-valued intensities with normalization off, so
// every float accumulation is exact regardless of summation order — which
// makes BYTE-identical comparison meaningful: candidate multisets must
// match bit for bit, and the full QueryEngine must reproduce, PSM by PSM,
// what a reference-walk engine would report.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstring>
#include <vector>

#include "common/rng.hpp"
#include "index/chunked_index.hpp"
#include "search/query_engine.hpp"
#include "synth/proteome.hpp"
#include "theospec/fragmenter.hpp"

namespace lbe::search {
namespace {

/// Random spectrum with integer intensities in [1, 1000] — exact in float,
/// and exact under any association of sums up to 2^24.
chem::Spectrum random_spectrum(Xoshiro256& rng, std::size_t peaks,
                               double max_mz) {
  chem::Spectrum spectrum;
  for (std::size_t i = 0; i < peaks; ++i) {
    spectrum.add_peak(rng.uniform(50.0, max_mz),
                      static_cast<float>(1 + rng.below(1000)));
  }
  spectrum.finalize();
  spectrum.precursor.neutral_mass = rng.uniform(500.0, 3000.0);
  return spectrum;
}

bool candidate_less(const index::Candidate& a, const index::Candidate& b) {
  return a.peptide < b.peptide;
}

class FiltrationEquivalence : public ::testing::TestWithParam<std::uint64_t> {
 protected:
  FiltrationEquivalence() {
    params_.resolution = 0.01;
    params_.max_fragment_mz = 2000.0;
    params_.fragments.max_fragment_charge = 2;
    for (auto& seq : synth::random_peptides(800, GetParam(), 7, 20)) {
      store_.add(chem::Peptide(std::move(seq)), mods_);
    }
  }

  chem::ModificationSet mods_ = chem::ModificationSet::paper_default();
  index::PeptideStore store_{&mods_};
  index::IndexParams params_;
};

TEST_P(FiltrationEquivalence, CandidatesByteIdenticalAcrossThresholds) {
  const index::SlmIndex index(store_, mods_, params_);
  Xoshiro256 rng(GetParam() * 31 + 7);
  index::QueryArena arena_a;
  index::QueryArena arena_b;

  for (const std::uint32_t threshold : {1u, 2u, 4u, 8u}) {
    index::QueryParams filter;
    filter.fragment_tolerance = 0.05;
    filter.shared_peak_min = threshold;
    for (int q = 0; q < 24; ++q) {
      // Mix dense random spectra (overlapping tolerance windows — the
      // multiplicity > 1 span path) with theoretical self-spectra.
      const chem::Spectrum query =
          q % 3 == 0 ? theospec::theoretical_spectrum(
                           store_.materialize(rng.below(store_.size())),
                           mods_, params_.fragments)
                     : random_spectrum(rng, 60 + rng.below(200), 2100.0);

      std::vector<index::Candidate> batched;
      std::vector<index::Candidate> reference;
      index::QueryWork work_a;
      index::QueryWork work_b;
      index.query(query, filter, batched, work_a, arena_a);
      index.query_reference(query, filter, reference, work_b, arena_b);

      // Work accounting must agree exactly: the batched walk charges a bin
      // covered by k peaks as k visits and k x its postings.
      EXPECT_EQ(work_a.peaks_processed, work_b.peaks_processed);
      EXPECT_EQ(work_a.bins_visited, work_b.bins_visited);
      EXPECT_EQ(work_a.postings_touched, work_b.postings_touched);
      EXPECT_EQ(work_a.candidates, work_b.candidates);

      // Candidate ORDER is walk-dependent (threshold-crossing order); the
      // contents must be byte-identical after sorting by peptide id.
      ASSERT_EQ(batched.size(), reference.size());
      std::sort(batched.begin(), batched.end(), candidate_less);
      std::sort(reference.begin(), reference.end(), candidate_less);
      for (std::size_t i = 0; i < batched.size(); ++i) {
        EXPECT_EQ(batched[i].peptide, reference[i].peptide);
        EXPECT_EQ(batched[i].shared_peaks, reference[i].shared_peaks);
        // Bit equality, not approximate: integer intensities make every
        // accumulation exact in both walks.
        std::uint32_t bits_a = 0;
        std::uint32_t bits_b = 0;
        std::memcpy(&bits_a, &batched[i].matched_intensity, sizeof(bits_a));
        std::memcpy(&bits_b, &reference[i].matched_intensity,
                    sizeof(bits_b));
        EXPECT_EQ(bits_a, bits_b);
      }
    }
  }
}

TEST_P(FiltrationEquivalence, UnsortedSpectrumStillAgrees) {
  // Spectrum built without finalize(): peaks arrive in arbitrary m/z order
  // (legal per spectrum.hpp). The batched sweep must detect the unsorted
  // windows and still produce reference-identical candidates.
  const index::SlmIndex index(store_, mods_, params_);
  Xoshiro256 rng(GetParam() * 7 + 1);
  index::QueryArena arena;
  index::QueryParams filter;
  filter.shared_peak_min = 2;

  for (int q = 0; q < 8; ++q) {
    chem::Spectrum unsorted;
    for (int i = 0; i < 150; ++i) {
      unsorted.add_peak(rng.uniform(50.0, 2100.0),
                        static_cast<float>(1 + rng.below(1000)));
    }
    // Out-of-order peaks near m/z 0 whose windows all clamp their open to
    // bin 0 but keep distinct closes — the tie case where sorting opens
    // alone would leave the close sequence decreasing.
    unsorted.add_peak(0.05, 3.0f);
    unsorted.add_peak(0.02, 5.0f);
    unsorted.add_peak(0.04, 7.0f);
    // deliberately no finalize()
    unsorted.precursor.neutral_mass = rng.uniform(500.0, 3000.0);

    std::vector<index::Candidate> batched;
    std::vector<index::Candidate> reference;
    index::QueryWork wa;
    index::QueryWork wb;
    index.query(unsorted, filter, batched, wa, arena);
    index.query_reference(unsorted, filter, reference, wb, arena);
    EXPECT_EQ(wa.postings_touched, wb.postings_touched);
    ASSERT_EQ(batched.size(), reference.size());
    std::sort(batched.begin(), batched.end(), candidate_less);
    std::sort(reference.begin(), reference.end(), candidate_less);
    for (std::size_t i = 0; i < batched.size(); ++i) {
      EXPECT_EQ(batched[i].peptide, reference[i].peptide);
      EXPECT_EQ(batched[i].shared_peaks, reference[i].shared_peaks);
    }
  }
}

TEST_P(FiltrationEquivalence, NarrowPrecursorWindowAgrees) {
  const index::SlmIndex index(store_, mods_, params_);
  Xoshiro256 rng(GetParam() * 17 + 3);
  index::QueryArena arena;
  index::QueryParams narrow;
  narrow.shared_peak_min = 2;
  narrow.precursor_tolerance = 1.5;

  for (int q = 0; q < 16; ++q) {
    chem::Spectrum query = random_spectrum(rng, 120, 2100.0);
    query.precursor.neutral_mass =
        store_.mass(rng.below(store_.size()));
    std::vector<index::Candidate> batched;
    std::vector<index::Candidate> reference;
    index::QueryWork wa;
    index::QueryWork wb;
    index.query(query, narrow, batched, wa, arena);
    index.query_reference(query, narrow, reference, wb, arena);
    ASSERT_EQ(batched.size(), reference.size());
    std::sort(batched.begin(), batched.end(), candidate_less);
    std::sort(reference.begin(), reference.end(), candidate_less);
    for (std::size_t i = 0; i < batched.size(); ++i) {
      EXPECT_EQ(batched[i].peptide, reference[i].peptide);
      EXPECT_EQ(batched[i].shared_peaks, reference[i].shared_peaks);
    }
  }
}

/// Full-engine check: QueryResults from the (batched) QueryEngine must be
/// byte-identical to an engine built on the reference walk — same top-k
/// selection applied to reference candidates.
TEST_P(FiltrationEquivalence, EngineResultsByteIdenticalToReferenceEngine) {
  const index::ChunkedIndex index(std::move(store_), mods_, params_,
                                  index::ChunkingParams{});
  SearchParams search;
  search.filter.fragment_tolerance = 0.05;
  search.filter.shared_peak_min = 3;
  search.preprocess.normalize = false;  // keep intensities integer-exact
  search.top_k = 5;
  const QueryEngine engine(index, mods_, search);
  const index::SlmIndex ref_index(index.store(), mods_, params_);

  Xoshiro256 rng(GetParam() * 101 + 13);
  index::QueryArena arena;
  for (int q = 0; q < 24; ++q) {
    const chem::Spectrum raw = random_spectrum(rng, 150, 2100.0);
    index::QueryWork work;
    const QueryResult result =
        engine.search(raw, static_cast<std::uint32_t>(q), work, arena);

    // Reference engine: preprocess, REFERENCE-walk filtration over the
    // same store, identical deterministic top-k ordering.
    const chem::Spectrum query = preprocess(raw, search.preprocess);
    std::vector<index::Candidate> candidates;
    index::QueryWork ref_work;
    index::QueryArena ref_arena;
    ref_index.query_reference(query, search.filter, candidates, ref_work,
                              ref_arena);
    // Re-rank reference candidates exactly as the engine does.
    std::sort(candidates.begin(), candidates.end(),
              [](const index::Candidate& a, const index::Candidate& b) {
                const double sa = filter_score(
                    a.shared_peaks, static_cast<double>(a.matched_intensity));
                const double sb = filter_score(
                    b.shared_peaks, static_cast<double>(b.matched_intensity));
                if (sa != sb) return sa > sb;
                if (a.shared_peaks != b.shared_peaks) {
                  return a.shared_peaks > b.shared_peaks;
                }
                return a.peptide < b.peptide;
              });

    ASSERT_EQ(result.candidates, candidates.size());
    const std::size_t keep =
        std::min<std::size_t>(search.top_k, candidates.size());
    ASSERT_EQ(result.top.size(), keep);
    for (std::size_t i = 0; i < keep; ++i) {
      EXPECT_EQ(result.top[i].peptide, candidates[i].peptide);
      EXPECT_EQ(result.top[i].shared_peaks, candidates[i].shared_peaks);
      const auto expected = static_cast<float>(filter_score(
          candidates[i].shared_peaks,
          static_cast<double>(candidates[i].matched_intensity)));
      std::uint32_t bits_a = 0;
      std::uint32_t bits_b = 0;
      std::memcpy(&bits_a, &result.top[i].score, sizeof(bits_a));
      std::memcpy(&bits_b, &expected, sizeof(bits_b));
      EXPECT_EQ(bits_a, bits_b);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FiltrationEquivalence,
                         ::testing::Values(2019ull, 42ull, 777ull));

}  // namespace
}  // namespace lbe::search
