#include "core/partition.hpp"

#include <algorithm>
#include <string>

#include "common/error.hpp"
#include "common/rng.hpp"

namespace lbe::core {

Policy policy_from_string(std::string_view name) {
  std::string lowered;
  for (const char c : name) {
    lowered += static_cast<char>(c >= 'A' && c <= 'Z' ? c - 'A' + 'a' : c);
  }
  if (lowered == "chunk") return Policy::kChunk;
  if (lowered == "cyclic") return Policy::kCyclic;
  if (lowered == "random") return Policy::kRandom;
  if (lowered == "weighted") return Policy::kWeighted;
  throw ConfigError("unknown partition policy: " + std::string(name));
}

const char* policy_name(Policy policy) {
  switch (policy) {
    case Policy::kChunk:
      return "chunk";
    case Policy::kCyclic:
      return "cyclic";
    case Policy::kRandom:
      return "random";
    case Policy::kWeighted:
      return "weighted";
  }
  return "?";
}

void PartitionParams::validate() const {
  if (ranks < 1) throw ConfigError("partition: need at least 1 rank");
  if (policy == Policy::kWeighted) {
    if (weights.size() != static_cast<std::size_t>(ranks)) {
      throw ConfigError("weighted partition: need one weight per rank");
    }
    for (const double w : weights) {
      if (!(w > 0.0)) {
        throw ConfigError("weighted partition: weights must be positive");
      }
    }
  } else if (!weights.empty()) {
    throw ConfigError("weights are only valid with the weighted policy");
  }
}

namespace {

std::size_t total_entries(const std::vector<std::uint32_t>& group_sizes) {
  std::size_t n = 0;
  for (const auto s : group_sizes) n += s;
  return n;
}

PartitionPlan chunk_partition(std::size_t n, int ranks) {
  // pep(m) = { i | N/p * m <= i < N/p * (m+1) } with balanced integer
  // boundaries (floor(N*m/p)), so sizes differ by at most one.
  PartitionPlan plan;
  plan.per_rank.resize(static_cast<std::size_t>(ranks));
  const auto p = static_cast<std::size_t>(ranks);
  for (std::size_t m = 0; m < p; ++m) {
    const std::size_t lo = n * m / p;
    const std::size_t hi = n * (m + 1) / p;
    auto& ids = plan.per_rank[m];
    ids.reserve(hi - lo);
    for (std::size_t i = lo; i < hi; ++i) {
      ids.push_back(static_cast<GlobalPeptideId>(i));
    }
  }
  return plan;
}

PartitionPlan cyclic_partition(std::size_t n, int ranks) {
  PartitionPlan plan;
  plan.per_rank.resize(static_cast<std::size_t>(ranks));
  const auto p = static_cast<std::size_t>(ranks);
  for (std::size_t m = 0; m < p; ++m) {
    plan.per_rank[m].reserve(n / p + 1);
  }
  for (std::size_t i = 0; i < n; ++i) {
    plan.per_rank[i % p].push_back(static_cast<GlobalPeptideId>(i));
  }
  return plan;
}

PartitionPlan random_partition(const std::vector<std::uint32_t>& group_sizes,
                               const PartitionParams& params) {
  PartitionPlan plan;
  const auto p = static_cast<std::size_t>(params.ranks);
  plan.per_rank.resize(p);
  Xoshiro256 rng(params.seed);

  std::vector<GlobalPeptideId> members;
  std::size_t base = 0;
  for (std::size_t g = 0; g < group_sizes.size(); ++g) {
    const std::size_t size = group_sizes[g];
    members.resize(size);
    for (std::size_t k = 0; k < size; ++k) {
      members[k] = static_cast<GlobalPeptideId>(base + k);
    }
    shuffle(members.begin(), members.end(), rng);

    // Chunk-split the shuffled group into p parts; assign parts to ranks
    // starting at a per-group offset so remainders spread over all ranks.
    const std::size_t start = params.rotate_groups ? g % p : 0;
    for (std::size_t part = 0; part < p; ++part) {
      const std::size_t lo = size * part / p;
      const std::size_t hi = size * (part + 1) / p;
      if (lo == hi) continue;
      auto& ids = plan.per_rank[(start + part) % p];
      ids.insert(ids.end(), members.begin() + static_cast<std::ptrdiff_t>(lo),
                 members.begin() + static_cast<std::ptrdiff_t>(hi));
    }
    base += size;
  }

  // Local order: ascending global id keeps per-rank index construction
  // deterministic regardless of shuffle order.
  for (auto& ids : plan.per_rank) std::sort(ids.begin(), ids.end());
  return plan;
}

PartitionPlan weighted_partition(std::size_t n,
                                 const PartitionParams& params) {
  // Smooth weighted round-robin: entry i goes to the rank with the lowest
  // (assigned + 1) / weight ratio (ties: lowest rank id). Shares converge
  // to n * w_m / sum(w) with error < 1 per rank, and consecutive entries
  // still interleave across ranks, preserving the group-spreading property
  // the uniform Cyclic policy has.
  PartitionPlan plan;
  const auto p = static_cast<std::size_t>(params.ranks);
  plan.per_rank.resize(p);
  std::vector<double> assigned(p, 0.0);
  for (std::size_t i = 0; i < n; ++i) {
    std::size_t best = 0;
    double best_ratio = (assigned[0] + 1.0) / params.weights[0];
    for (std::size_t m = 1; m < p; ++m) {
      const double ratio = (assigned[m] + 1.0) / params.weights[m];
      if (ratio < best_ratio) {
        best_ratio = ratio;
        best = m;
      }
    }
    plan.per_rank[best].push_back(static_cast<GlobalPeptideId>(i));
    assigned[best] += 1.0;
  }
  return plan;
}

}  // namespace

PartitionPlan partition(const std::vector<std::uint32_t>& group_sizes,
                        const PartitionParams& params) {
  params.validate();
  const std::size_t n = total_entries(group_sizes);
  switch (params.policy) {
    case Policy::kChunk:
      return chunk_partition(n, params.ranks);
    case Policy::kCyclic:
      return cyclic_partition(n, params.ranks);
    case Policy::kRandom:
      return random_partition(group_sizes, params);
    case Policy::kWeighted:
      return weighted_partition(n, params);
  }
  throw ConfigError("unknown partition policy");
}

PartitionPlan partition_flat(std::size_t total,
                             const PartitionParams& params) {
  std::vector<std::uint32_t> singleton_groups(
      total, 1u);
  return partition(singleton_groups, params);
}

}  // namespace lbe::core
