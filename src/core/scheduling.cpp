#include "core/scheduling.hpp"

#include <algorithm>
#include <string>

#include "common/error.hpp"

namespace lbe::core {

Schedule schedule_from_string(std::string_view name) {
  std::string lowered;
  for (const char c : name) {
    lowered += static_cast<char>(c >= 'A' && c <= 'Z' ? c - 'A' + 'a' : c);
  }
  if (lowered == "lbe_static" || lowered == "static") {
    return Schedule::kLbeStatic;
  }
  if (lowered == "calibrated") return Schedule::kCalibrated;
  if (lowered == "stealing") return Schedule::kStealing;
  throw ConfigError("unknown schedule: " + std::string(name) +
                    " (expected lbe_static|calibrated|stealing)");
}

const char* schedule_name(Schedule schedule) {
  switch (schedule) {
    case Schedule::kLbeStatic:
      return "lbe_static";
    case Schedule::kCalibrated:
      return "calibrated";
    case Schedule::kStealing:
      return "stealing";
  }
  return "?";
}

void ScheduleParams::validate() const {
  if (!(steal_threshold >= 1.0)) {
    throw ConfigError("steal_threshold must be >= 1.0 (1.0 = steal whenever "
                      "any rank is above the mean remaining load)");
  }
  if (calibration_queries < 1) {
    throw ConfigError("calibration_queries must be >= 1");
  }
}

PartitionCheck assert_is_partition(const PartitionPlan& plan,
                                   std::size_t total,
                                   std::size_t num_groups) {
  PartitionCheck check;
  std::vector<std::uint8_t> seen(total, 0);
  std::size_t placed = 0;
  for (std::size_t m = 0; m < plan.per_rank.size(); ++m) {
    if (plan.per_rank[m].empty() && plan.per_rank.size() <= num_groups) {
      check.no_empty_rank = false;
      if (check.detail.empty()) {
        check.detail = "rank " + std::to_string(m) + " is empty with " +
                       std::to_string(num_groups) + " groups over " +
                       std::to_string(plan.per_rank.size()) + " ranks";
      }
    }
    for (const GlobalPeptideId id : plan.per_rank[m]) {
      if (id >= total) {
        check.in_range = false;
        if (check.detail.empty()) {
          check.detail = "rank " + std::to_string(m) + " holds id " +
                         std::to_string(id) + " >= total " +
                         std::to_string(total);
        }
        continue;
      }
      if (seen[id] != 0) {
        check.unique = false;
        if (check.detail.empty()) {
          check.detail = "id " + std::to_string(id) + " placed twice";
        }
        continue;
      }
      seen[id] = 1;
      ++placed;
    }
  }
  if (placed != total) {
    check.covered = false;
    if (check.detail.empty()) {
      check.detail = std::to_string(total - placed) + " of " +
                     std::to_string(total) + " ids never placed";
    }
  }
  return check;
}

void check_partition(const PartitionPlan& plan, std::size_t total,
                     std::size_t num_groups, const char* who) {
  const PartitionCheck check = assert_is_partition(plan, total, num_groups);
  if (!check.ok()) {
    throw ConfigError(std::string(who) +
                      ": placement is not a partition — " + check.detail);
  }
}

std::vector<double> calibration_weights(const CostFeedback& feedback) {
  const std::size_t p = feedback.rank_seconds.size();
  if (p == 0 || feedback.rank_cost_units.size() != p) return {};
  std::vector<double> speed(p, 0.0);
  double mean = 0.0;
  for (std::size_t m = 0; m < p; ++m) {
    const double seconds = feedback.rank_seconds[m];
    const double units = feedback.rank_cost_units[m];
    if (!(seconds > 0.0) || !(units > 0.0)) return {};
    speed[m] = units / seconds;
    mean += speed[m];
  }
  mean /= static_cast<double>(p);
  if (!(mean > 0.0)) return {};
  for (double& w : speed) {
    w = std::clamp(w / mean, 0.05, 20.0);
  }
  return speed;
}

namespace {

class StaticPolicy final : public SchedulingPolicy {
 public:
  Schedule schedule() const override { return Schedule::kLbeStatic; }
  PartitionParams plan_params(const PartitionParams& base,
                              const CostFeedback&) const override {
    return base;
  }
  bool steals_at_runtime() const override { return false; }
};

class CalibratedPolicy final : public SchedulingPolicy {
 public:
  Schedule schedule() const override { return Schedule::kCalibrated; }
  PartitionParams plan_params(const PartitionParams& base,
                              const CostFeedback& feedback) const override {
    const std::vector<double> weights = calibration_weights(feedback);
    if (weights.size() != static_cast<std::size_t>(base.ranks)) {
      // No (usable) feedback yet: stay on the static placement. The probe
      // run itself takes this branch.
      return base;
    }
    PartitionParams fitted = base;
    fitted.policy = Policy::kWeighted;
    fitted.weights = weights;
    return fitted;
  }
  bool steals_at_runtime() const override { return false; }
};

class StealingPolicy final : public SchedulingPolicy {
 public:
  Schedule schedule() const override { return Schedule::kStealing; }
  PartitionParams plan_params(const PartitionParams& base,
                              const CostFeedback&) const override {
    // Placement is untouched — rebalancing happens at runtime, which is
    // exactly why psms.tsv stays byte-identical to lbe_static.
    return base;
  }
  bool steals_at_runtime() const override { return true; }
};

}  // namespace

PartitionPlan SchedulingPolicy::place(
    const std::vector<std::uint32_t>& group_sizes,
    const PartitionParams& base, const CostFeedback& feedback) const {
  const PartitionParams params = plan_params(base, feedback);
  PartitionPlan plan = partition(group_sizes, params);
  std::size_t total = 0;
  for (const auto size : group_sizes) total += size;
  check_partition(plan, total, group_sizes.size(), schedule_name(schedule()));
  return plan;
}

std::unique_ptr<SchedulingPolicy> make_policy(Schedule schedule) {
  switch (schedule) {
    case Schedule::kLbeStatic:
      return std::make_unique<StaticPolicy>();
    case Schedule::kCalibrated:
      return std::make_unique<CalibratedPolicy>();
    case Schedule::kStealing:
      return std::make_unique<StealingPolicy>();
  }
  throw ConfigError("unknown schedule");
}

}  // namespace lbe::core
