// Scheduling policies — how a plan's static placement meets the runtime.
//
// The paper places work once, offline, from Eq. 1 predictions. This layer
// turns that baked-in step into a pluggable policy:
//
//   lbe_static — the paper's behaviour: partition once, search; bit-identical
//                to the pre-policy pipeline.
//   calibrated — run a short probe, refit the Eq. 1 cost model against the
//                *observed* per-rank work rates, and re-plan with Weighted
//                partitioning sized to the measured speeds (the §VIII
//                "load-predicting model for heterogeneous architectures").
//   stealing   — keep the static placement but rebalance at runtime: an idle
//                rank claims query batches from the most-loaded rank's
//                unstarted tail (search/distributed.cpp speaks the steal
//                protocol; results stay byte-identical because the master's
//                merge order never depends on who executed a batch).
//
// Every policy's placement must pass `assert_is_partition` — the
// merian-wrs-style testable invariant (SNIPPETS.md): each element placed
// exactly once, ids in range, and no rank left empty unless there are more
// ranks than groups.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "core/partition.hpp"

namespace lbe::core {

enum class Schedule : std::uint8_t {
  kLbeStatic = 0,
  kCalibrated = 1,
  kStealing = 2,
};

/// Parses "lbe_static" | "calibrated" | "stealing" (case-insensitive).
Schedule schedule_from_string(std::string_view name);
const char* schedule_name(Schedule schedule);

struct ScheduleParams {
  Schedule schedule = Schedule::kLbeStatic;
  /// Stealing: a victim is robbed only while its unstarted tail holds at
  /// least `steal_threshold` times the mean remaining batches per rank —
  /// below that the fleet is balanced and migration would only add traffic.
  double steal_threshold = 1.2;
  /// Calibrated: query count of the probe run the cost model is refit from.
  std::uint32_t calibration_queries = 16;

  void validate() const;  ///< throws ConfigError
};

/// What the runtime observed: per-rank wall seconds and deterministic work
/// units from a probe (or a full run). Input to calibration.
struct CostFeedback {
  std::vector<double> rank_seconds;     ///< query-phase seconds per rank
  std::vector<double> rank_cost_units;  ///< QueryWork::cost_units per rank
};

/// Structured verdict of the partition-invariant oracle. `ok()` iff the
/// per-rank id lists form an exact partition of [0, total).
struct PartitionCheck {
  bool covered = true;       ///< every id placed at least once
  bool unique = true;        ///< no id placed twice
  bool in_range = true;      ///< no id >= total
  bool no_empty_rank = true; ///< only allowed when ranks > num_groups
  std::string detail;        ///< first violation, for the failure message

  bool ok() const { return covered && unique && in_range && no_empty_rank; }
};

/// The merian-wrs-style oracle every scheduling policy must pass: checks
/// that `plan` places each of the `total` ids exactly once, in range, and
/// leaves no rank empty unless ranks > num_groups (a rank with nothing to
/// do is a placement bug at sane sizes, not a valid split).
PartitionCheck assert_is_partition(const PartitionPlan& plan,
                                   std::size_t total, std::size_t num_groups);

/// Like assert_is_partition but throws ConfigError on violation — the form
/// LbePlan construction and policy `place` use.
void check_partition(const PartitionPlan& plan, std::size_t total,
                     std::size_t num_groups, const char* who);

/// A scheduling policy decides the *placement* (possibly from feedback) and
/// declares whether it also rebalances at runtime. The runtime half
/// (steal-request/steal-grant messages) lives in search/distributed.cpp;
/// this interface is what the app layer and benches program against.
class SchedulingPolicy {
 public:
  virtual ~SchedulingPolicy() = default;

  virtual Schedule schedule() const = 0;

  /// The partition parameters this policy plans with. `base` is the static
  /// LBE configuration; `feedback` is runtime observation (empty vectors =
  /// none available yet, e.g. before any probe ran).
  virtual PartitionParams plan_params(const PartitionParams& base,
                                      const CostFeedback& feedback) const = 0;

  /// True when the distributed runtime should speak the steal protocol on
  /// top of this policy's placement.
  virtual bool steals_at_runtime() const = 0;

  /// Plans and validates: partition(group_sizes, plan_params(...)) followed
  /// by the assert_is_partition oracle. Every policy goes through here, so
  /// a policy that mangles the placement fails loudly, not silently.
  PartitionPlan place(const std::vector<std::uint32_t>& group_sizes,
                      const PartitionParams& base,
                      const CostFeedback& feedback) const;
};

std::unique_ptr<SchedulingPolicy> make_policy(Schedule schedule);

/// Calibration weight fit: rank m's relative speed = cost_units/seconds,
/// normalized to mean 1 and clamped to [0.05, 20] so one noisy probe rank
/// cannot starve (or swamp) a partition. Returns an empty vector when the
/// feedback is degenerate (mismatched sizes, a rank with no time or no
/// work) — the caller stays on the static placement then.
std::vector<double> calibration_weights(const CostFeedback& feedback);

}  // namespace lbe::core
