#include "core/grouping.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "common/error.hpp"
#include "core/edit_distance.hpp"

namespace lbe::core {

void GroupingParams::validate() const {
  if (criterion != GroupingCriterion::kAbsolute &&
      criterion != GroupingCriterion::kNormalized) {
    throw ConfigError("grouping: unknown criterion");
  }
  if (d_prime < 0.0 || d_prime > 1.0) {
    throw ConfigError("grouping: d' must be in [0, 1]");
  }
  if (gsize == 0) {
    throw ConfigError("grouping: gsize must be >= 1");
  }
}

std::vector<std::uint32_t> GroupingResult::group_of() const {
  std::vector<std::uint32_t> out;
  out.reserve(sequences.size());
  for (std::size_t g = 0; g < group_sizes.size(); ++g) {
    for (std::uint32_t k = 0; k < group_sizes[g]; ++k) {
      out.push_back(static_cast<std::uint32_t>(g));
    }
  }
  return out;
}

bool passes_cutoff(const std::string& seed, const std::string& candidate,
                   const GroupingParams& params) {
  const auto len_seed = static_cast<std::uint32_t>(seed.size());
  const auto len_cand = static_cast<std::uint32_t>(candidate.size());
  std::uint32_t limit;
  if (params.criterion == GroupingCriterion::kAbsolute) {
    limit = std::max(params.d, len_cand / 2);
  } else {
    const double max_len = static_cast<double>(std::max(len_seed, len_cand));
    limit = static_cast<std::uint32_t>(std::floor(params.d_prime * max_len));
  }
  return bounded_edit_distance(seed, candidate, limit) <= limit;
}

GroupingResult group_peptides(std::vector<std::string> sequences,
                              const GroupingParams& params) {
  params.validate();
  GroupingResult result;
  const std::size_t n = sequences.size();

  // SortByLength, then LexSort (Algorithm 1's two sorts are one comparator).
  std::vector<std::uint32_t> order(n);
  std::iota(order.begin(), order.end(), 0u);
  std::sort(order.begin(), order.end(),
            [&sequences](std::uint32_t a, std::uint32_t b) {
              if (sequences[a].size() != sequences[b].size()) {
                return sequences[a].size() < sequences[b].size();
              }
              if (sequences[a] != sequences[b]) {
                return sequences[a] < sequences[b];
              }
              return a < b;  // stable for duplicate sequences
            });

  result.sequences.reserve(n);
  result.permutation.reserve(n);
  for (const std::uint32_t idx : order) {
    result.sequences.push_back(std::move(sequences[idx]));
    result.permutation.push_back(idx);
  }
  if (n == 0) return result;

  // Greedy group formation against the group seed.
  const std::string* seed = &result.sequences[0];
  result.group_sizes.push_back(1);
  for (std::size_t k = 1; k < n; ++k) {
    const std::string& candidate = result.sequences[k];
    const bool fits = result.group_sizes.back() < params.gsize &&
                      passes_cutoff(*seed, candidate, params);
    if (fits) {
      ++result.group_sizes.back();
    } else {
      seed = &candidate;
      result.group_sizes.push_back(1);
    }
  }
  return result;
}

}  // namespace lbe::core
