// Distribution policies — §III-D of the paper.
//
// Input: the clustered database (groups concatenated, global ids 0..N-1 in
// clustered order) plus the group sizes. Output: for each rank, the global
// ids it indexes, in local-id order. The three published policies:
//
//   Chunk  — contiguous N/p blocks, the conventional shared-memory scheme
//            (Fig. 2 shows why this imbalances a cluster: whole similarity
//            groups land on one machine).
//   Cyclic — round-robin over the clustered order, so each group's members
//            spread across ranks (the paper's best performer).
//   Random — per group: shuffle members (seeded), then chunk-split the
//            group into p parts. Parts are assigned starting from a rank
//            offset that rotates per group; without rotation the remainder
//            elements of every small group pile onto low ranks (measurable
//            as LI — the rotation ablation in bench/ablation_grouping).
#pragma once

#include <cstdint>
#include <string_view>
#include <vector>

#include "common/types.hpp"

namespace lbe::core {

enum class Policy : std::uint8_t {
  kChunk = 0,
  kCyclic = 1,
  kRandom = 2,
  /// Extension beyond the paper (its "load-predicting model for
  /// heterogeneous memory-distributed architectures" future work): a
  /// smooth weighted round-robin that hands rank m a share of entries
  /// proportional to weights[m] — e.g. the inverse of its slowdown factor —
  /// while still interleaving neighbours in the clustered order.
  kWeighted = 3,
};

/// Parses "chunk" | "cyclic" | "random" | "weighted" (case-insensitive).
Policy policy_from_string(std::string_view name);
const char* policy_name(Policy policy);

struct PartitionParams {
  Policy policy = Policy::kCyclic;
  int ranks = 1;
  std::uint64_t seed = 42;     ///< Random policy shuffle seed
  bool rotate_groups = true;   ///< Random policy: rotate part->rank start
  /// Weighted policy only: one positive weight per rank (relative compute
  /// speed). Must be empty for other policies.
  std::vector<double> weights;

  void validate() const;  ///< throws ConfigError
};

struct PartitionPlan {
  /// per_rank[m] = global ids assigned to rank m, in local-id order.
  std::vector<std::vector<GlobalPeptideId>> per_rank;

  std::size_t total() const {
    std::size_t sum = 0;
    for (const auto& ids : per_rank) sum += ids.size();
    return sum;
  }
};

/// Partitions N = sum(group_sizes) entries. For Chunk the group structure is
/// ignored (that is the point of the baseline); Cyclic and Random honour it.
PartitionPlan partition(const std::vector<std::uint32_t>& group_sizes,
                        const PartitionParams& params);

/// Convenience for group-free inputs (treats every entry as its own group).
PartitionPlan partition_flat(std::size_t total, const PartitionParams& params);

}  // namespace lbe::core
