#include "core/edit_distance.hpp"

#include <algorithm>
#include <vector>

namespace lbe::core {

std::uint32_t edit_distance(std::string_view a, std::string_view b) {
  if (a.size() < b.size()) std::swap(a, b);  // b is the shorter => less space
  const std::size_t n = a.size();
  const std::size_t m = b.size();
  if (m == 0) return static_cast<std::uint32_t>(n);

  std::vector<std::uint32_t> row(m + 1);
  for (std::size_t j = 0; j <= m; ++j) row[j] = static_cast<std::uint32_t>(j);

  for (std::size_t i = 1; i <= n; ++i) {
    std::uint32_t diag = row[0];  // D[i-1][j-1]
    row[0] = static_cast<std::uint32_t>(i);
    for (std::size_t j = 1; j <= m; ++j) {
      const std::uint32_t up = row[j];  // D[i-1][j]
      const std::uint32_t subst = diag + (a[i - 1] == b[j - 1] ? 0u : 1u);
      row[j] = std::min({subst, up + 1, row[j - 1] + 1});
      diag = up;
    }
  }
  return row[m];
}

std::uint32_t bounded_edit_distance(std::string_view a, std::string_view b,
                                    std::uint32_t limit) {
  if (a.size() < b.size()) std::swap(a, b);
  const std::size_t n = a.size();
  const std::size_t m = b.size();
  // Length difference is a lower bound on the distance.
  if (n - m > limit) return limit + 1;
  if (m == 0) return static_cast<std::uint32_t>(n);

  // Band of half-width `limit` around the diagonal. Cells outside the band
  // can never contribute to a distance <= limit.
  const std::uint32_t kInf = limit + 1;
  std::vector<std::uint32_t> row(m + 1, kInf);
  for (std::size_t j = 0; j <= std::min<std::size_t>(m, limit); ++j) {
    row[j] = static_cast<std::uint32_t>(j);
  }

  for (std::size_t i = 1; i <= n; ++i) {
    const std::size_t lo =
        i > limit ? i - limit : 1;  // first in-band column this row
    const std::size_t hi = std::min<std::size_t>(m, i + limit);
    if (lo > hi) return kInf;

    std::uint32_t diag = row[lo - 1];  // D[i-1][lo-1]
    std::uint32_t best_in_row = kInf;
    // Left-of-band cell is out of band for this row => +inf.
    if (lo == 1) {
      // Column 0 holds D[i][0] = i (clipped at kInf).
      row[0] = static_cast<std::uint32_t>(std::min<std::size_t>(i, kInf));
    }
    std::uint32_t left = (lo == 1) ? row[0] : kInf;
    for (std::size_t j = lo; j <= hi; ++j) {
      const std::uint32_t up = row[j];  // D[i-1][j] (kInf if out of band)
      const std::uint32_t subst = diag + (a[i - 1] == b[j - 1] ? 0u : 1u);
      std::uint32_t v = subst;
      if (up != kInf) v = std::min(v, up + 1);
      if (left != kInf) v = std::min(v, left + 1);
      v = std::min(v, kInf);
      diag = up;
      row[j] = v;
      left = v;
      best_in_row = std::min(best_in_row, v);
    }
    // Clear the cell right of the band so next row's `up` reads kInf there.
    if (hi + 1 <= m) row[hi + 1] = kInf;
    if (best_in_row > limit) return kInf;  // early exit: band exceeded
  }
  return row[m];
}

}  // namespace lbe::core
