// Peptide sequence grouping — Algorithm 1 of the paper (§III-C).
//
// Sequences are sorted by length, then lexicographically. Groups grow
// greedily from a seed sequence: the next sequence joins the current group
// while it passes the similarity cutoff against the seed and the group is
// below `gsize` entries; otherwise it seeds a new group. Two cutoff criteria
// are supported, as published:
//
//   criterion 1:  EditDistance(seed, s) <= max(d, len(s)/2)         (d = 2)
//   criterion 2:  EditDistance(seed, s) / max(len(seed), len(s)) <= d'
//                                                                  (d' = 0.86)
//
// The paper's evaluation clusters with criterion 2 and defaults. The output
// order (groups concatenated) is the "clustered database" every machine
// reads; it becomes the global peptide order for partitioning.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace lbe::core {

enum class GroupingCriterion : std::uint8_t {
  kAbsolute = 1,    ///< criterion 1: absolute cutoff max(d, len/2)
  kNormalized = 2,  ///< criterion 2: normalized cutoff d'
};

struct GroupingParams {
  GroupingCriterion criterion = GroupingCriterion::kNormalized;
  std::uint32_t d = 2;      ///< criterion-1 distance floor
  double d_prime = 0.86;    ///< criterion-2 normalized cutoff, in [0, 1]
  std::uint32_t gsize = 20; ///< max sequences per group (csize in Alg. 1)

  /// Throws ConfigError on out-of-range values.
  void validate() const;
};

struct GroupingResult {
  /// Sequences in clustered order (sorted, then grouped).
  std::vector<std::string> sequences;
  /// Size of each group, in order; sums to sequences.size().
  std::vector<std::uint32_t> group_sizes;
  /// permutation[i] = index of sequences[i] in the input vector.
  std::vector<std::uint32_t> permutation;

  std::size_t num_groups() const { return group_sizes.size(); }

  /// group_of()[i] = group index of sequences[i] (derived, O(N)).
  std::vector<std::uint32_t> group_of() const;
};

/// Runs Algorithm 1. Input order does not matter (a full sort happens
/// first); ties are broken deterministically.
GroupingResult group_peptides(std::vector<std::string> sequences,
                              const GroupingParams& params);

/// The similarity predicate used by grouping, exposed for tests/ablations:
/// true if `candidate` may join a group seeded by `seed`.
bool passes_cutoff(const std::string& seed, const std::string& candidate,
                   const GroupingParams& params);

}  // namespace lbe::core
