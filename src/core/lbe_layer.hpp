// The LBE layer — §IV of the paper.
//
// Orchestrates the full partitioning pipeline on the master side:
//
//   base peptides ──group──▶ clustered database ──policy──▶ per-rank base
//   assignment ──variant enumeration──▶ per-rank index entries + the
//   master's mapping table (local variant id ◀─▶ global variant id).
//
// Variants never leave their base peptide's group ("the normal peptide
// sequences and their modified variants are considered to be part of the
// same data group", §III-C): a rank that owns a base peptide owns all of its
// modified variants. Global variant ids are defined by the deterministic
// enumeration order (clustered base order, then variant ordinal), so every
// machine can derive them independently — only ids travel on the wire.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "chem/modification.hpp"
#include "core/grouping.hpp"
#include "core/partition.hpp"
#include "digest/variants.hpp"
#include "index/mapping_table.hpp"
#include "index/peptide_store.hpp"

namespace lbe::core {

struct LbeParams {
  GroupingParams grouping;
  PartitionParams partition;
};

class LbePlan {
 public:
  /// Runs grouping + partitioning + variant enumeration over base peptides.
  LbePlan(std::vector<std::string> base_peptides,
          const chem::ModificationSet& mods,
          const digest::VariantParams& variant_params,
          const LbeParams& params);

  /// Re-partitions an existing plan under new partition parameters — the
  /// calibrated schedule's re-plan step. Grouping, variant enumeration and
  /// global variant ids are copied unchanged (they depend only on grouping,
  /// not placement), so locate_variant/variant_peptide and any decoy labels
  /// derived from the original plan stay valid; only the per-rank base
  /// assignment and the mapping table are recomputed.
  LbePlan(const LbePlan& other, const PartitionParams& partition);

  const GroupingResult& grouping() const noexcept { return grouping_; }
  const PartitionPlan& base_partition() const noexcept { return base_plan_; }
  const index::MappingTable& mapping() const noexcept { return mapping_; }
  const LbeParams& params() const noexcept { return params_; }
  const chem::ModificationSet& mods() const noexcept { return *mods_; }
  const digest::VariantParams& variant_params() const noexcept {
    return variant_params_;
  }

  std::size_t num_bases() const noexcept {
    return grouping_.sequences.size();
  }
  std::uint64_t num_variants() const noexcept { return total_variants_; }
  int ranks() const noexcept { return params_.partition.ranks; }

  /// Clustered-order base sequence by global base id.
  const std::string& base_sequence(std::uint32_t base_id) const {
    return grouping_.sequences.at(base_id);
  }

  /// Decodes a global variant id into (base id, variant ordinal).
  struct VariantLocation {
    std::uint32_t base_id;
    std::uint32_t ordinal;  ///< position in enumerate_variants order
  };
  VariantLocation locate_variant(GlobalPeptideId global_variant) const;

  /// Materializes the peptide for a global variant id (master-side result
  /// reporting; O(variants of that base) via re-enumeration).
  chem::Peptide variant_peptide(GlobalPeptideId global_variant) const;

  /// Builds rank `m`'s index entries: every variant of every base assigned
  /// to it, in the local-id order the mapping table records.
  index::PeptideStore build_rank_store(RankId rank) const;

  /// Shared-memory reference: all variants, global order (used by Fig. 5's
  /// baseline and by equivalence tests).
  index::PeptideStore build_global_store() const;

 private:
  /// Partition + oracle + mapping-table rebuild over the (already set)
  /// grouping and variant offsets; shared by both constructors.
  void apply_partition();

  const chem::ModificationSet* mods_;
  digest::VariantParams variant_params_;
  LbeParams params_;
  GroupingResult grouping_;
  PartitionPlan base_plan_;
  std::vector<std::uint64_t> variant_offsets_;  ///< size num_bases+1
  std::uint64_t total_variants_ = 0;
  index::MappingTable mapping_;
};

/// Writes the clustered database in FASTA (one record per peptide; headers
/// "g<group>|p<position>" keep group structure recoverable).
void write_clustered_fasta(const std::string& path,
                           const GroupingResult& grouping);

/// Reads a clustered FASTA back into (sequences, group_sizes).
GroupingResult read_clustered_fasta(const std::string& path);

}  // namespace lbe::core
