// Levenshtein edit distance, plain and banded.
//
// Grouping (Algorithm 1) compares each candidate against the group seed with
// small cutoffs (d = 2, or a fraction of the length), so the banded variant
// with early exit does O(k·n) work instead of O(n·m) and is the one the hot
// path uses. The plain variant is kept as the reference oracle for tests.
#pragma once

#include <cstdint>
#include <string_view>

namespace lbe::core {

/// Exact Levenshtein distance (unit costs), O(|a|·|b|) time, O(min) space.
std::uint32_t edit_distance(std::string_view a, std::string_view b);

/// Banded distance with early exit: returns the exact distance if it is
/// <= `limit`, otherwise any value > `limit` (callers only compare against
/// the cutoff). O((2·limit+1)·max(|a|,|b|)) time.
std::uint32_t bounded_edit_distance(std::string_view a, std::string_view b,
                                    std::uint32_t limit);

}  // namespace lbe::core
