#include "core/lbe_layer.hpp"

#include <algorithm>

#include "common/error.hpp"
#include "common/strings.hpp"
#include "core/scheduling.hpp"
#include "io/fasta.hpp"

namespace lbe::core {

LbePlan::LbePlan(std::vector<std::string> base_peptides,
                 const chem::ModificationSet& mods,
                 const digest::VariantParams& variant_params,
                 const LbeParams& params)
    : mods_(&mods), variant_params_(variant_params), params_(params) {
  grouping_ = group_peptides(std::move(base_peptides), params_.grouping);

  // Global variant enumeration: prefix sums over per-base variant counts.
  const std::size_t n = grouping_.sequences.size();
  variant_offsets_.assign(n + 1, 0);
  for (std::size_t b = 0; b < n; ++b) {
    variant_offsets_[b + 1] =
        variant_offsets_[b] +
        digest::count_variants(grouping_.sequences[b], mods, variant_params_);
  }
  total_variants_ = variant_offsets_[n];
  LBE_CHECK(total_variants_ < kInvalidPeptideId,
            "variant count exceeds 32-bit id space; shrink the database or "
            "tighten VariantParams");

  apply_partition();
}

LbePlan::LbePlan(const LbePlan& other, const PartitionParams& partition)
    : mods_(other.mods_),
      variant_params_(other.variant_params_),
      params_(other.params_),
      grouping_(other.grouping_),
      variant_offsets_(other.variant_offsets_),
      total_variants_(other.total_variants_) {
  // Grouping and the global variant id space are placement-independent, so
  // only the partition (and the mapping derived from it) is recomputed.
  params_.partition = partition;
  apply_partition();
}

void LbePlan::apply_partition() {
  base_plan_ = partition(grouping_.group_sizes, params_.partition);
  // The partition-invariant oracle (core/scheduling.hpp): every base placed
  // exactly once, in range, no rank starved. O(N) against a plan the whole
  // pipeline is about to trust — cheap insurance for every policy.
  check_partition(base_plan_, grouping_.sequences.size(),
                  grouping_.group_sizes.size(),
                  policy_name(params_.partition.policy));

  // Mapping table: rank m's local variant l -> global variant id. Local
  // order = rank's bases ascending, then variant ordinal — the exact order
  // build_rank_store() appends entries in.
  std::vector<std::vector<GlobalPeptideId>> per_rank(
      base_plan_.per_rank.size());
  for (std::size_t m = 0; m < base_plan_.per_rank.size(); ++m) {
    auto& flat = per_rank[m];
    for (const GlobalPeptideId base : base_plan_.per_rank[m]) {
      const std::uint64_t lo = variant_offsets_[base];
      const std::uint64_t hi = variant_offsets_[base + 1];
      for (std::uint64_t v = lo; v < hi; ++v) {
        flat.push_back(static_cast<GlobalPeptideId>(v));
      }
    }
  }
  mapping_ = index::MappingTable(per_rank);
}

LbePlan::VariantLocation LbePlan::locate_variant(
    GlobalPeptideId global_variant) const {
  LBE_CHECK(global_variant < total_variants_, "variant id out of range");
  // First base whose range end exceeds the id.
  const auto it = std::upper_bound(variant_offsets_.begin(),
                                   variant_offsets_.end(), global_variant);
  const auto base =
      static_cast<std::uint32_t>(it - variant_offsets_.begin() - 1);
  return VariantLocation{
      base,
      static_cast<std::uint32_t>(global_variant - variant_offsets_[base])};
}

chem::Peptide LbePlan::variant_peptide(GlobalPeptideId global_variant) const {
  const VariantLocation loc = locate_variant(global_variant);
  auto variants = digest::enumerate_variants(grouping_.sequences[loc.base_id],
                                             *mods_, variant_params_);
  LBE_CHECK(loc.ordinal < variants.size(), "variant ordinal out of range");
  return std::move(variants[loc.ordinal]);
}

index::PeptideStore LbePlan::build_rank_store(RankId rank) const {
  LBE_CHECK(rank >= 0 && static_cast<std::size_t>(rank) <
                             base_plan_.per_rank.size(),
            "rank out of range");
  index::PeptideStore store(mods_);
  const auto& bases = base_plan_.per_rank[static_cast<std::size_t>(rank)];
  store.reserve(mapping_.rank_count(rank));
  for (const GlobalPeptideId base : bases) {
    for (const auto& variant : digest::enumerate_variants(
             grouping_.sequences[base], *mods_, variant_params_)) {
      store.add(variant, *mods_);
    }
  }
  LBE_CHECK(store.size() == mapping_.rank_count(rank),
            "rank store size disagrees with mapping table");
  return store;
}

index::PeptideStore LbePlan::build_global_store() const {
  index::PeptideStore store(mods_);
  store.reserve(total_variants_);
  for (const auto& base : grouping_.sequences) {
    for (const auto& variant :
         digest::enumerate_variants(base, *mods_, variant_params_)) {
      store.add(variant, *mods_);
    }
  }
  LBE_CHECK(store.size() == total_variants_,
            "global store size disagrees with variant enumeration");
  return store;
}

void write_clustered_fasta(const std::string& path,
                           const GroupingResult& grouping) {
  std::vector<io::FastaRecord> records;
  records.reserve(grouping.sequences.size());
  std::size_t position = 0;
  for (std::size_t g = 0; g < grouping.group_sizes.size(); ++g) {
    for (std::uint32_t k = 0; k < grouping.group_sizes[g]; ++k, ++position) {
      std::string header = "g";
      header += std::to_string(g);
      header += "|p";
      header += std::to_string(position);
      records.push_back(
          io::FastaRecord{std::move(header), grouping.sequences[position]});
    }
  }
  io::write_fasta_file(path, records, 0);
}

GroupingResult read_clustered_fasta(const std::string& path) {
  GroupingResult result;
  std::uint64_t current_group = 0;
  bool first = true;
  for (auto& record : io::read_fasta_file(path)) {
    std::uint64_t group = 0;
    const auto bar = record.header.find('|');
    if (record.header.empty() || record.header[0] != 'g' ||
        bar == std::string::npos ||
        !str::parse_u64(record.header.substr(1, bar - 1), group)) {
      throw ParseError(path, 0,
                       "not a clustered database header: " + record.header);
    }
    if (first || group != current_group) {
      result.group_sizes.push_back(0);
      current_group = group;
      first = false;
    }
    ++result.group_sizes.back();
    result.sequences.push_back(std::move(record.sequence));
    result.permutation.push_back(
        static_cast<std::uint32_t>(result.sequences.size() - 1));
  }
  return result;
}

}  // namespace lbe::core
