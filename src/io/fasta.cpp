#include "io/fasta.hpp"

#include <cctype>
#include <fstream>
#include <istream>
#include <ostream>

#include "chem/amino_acid.hpp"
#include "common/error.hpp"
#include "common/strings.hpp"

namespace lbe::io {

namespace {

void append_sequence_line(FastaRecord& record, std::string_view line,
                          const std::string& origin, std::size_t line_no) {
  for (char c : line) {
    if (c == '*') continue;  // stop codon marker, common in translated DBs
    c = static_cast<char>(std::toupper(static_cast<unsigned char>(c)));
    if (!chem::is_residue(c)) {
      throw ParseError(origin, line_no,
                       std::string("invalid residue '") + c + "' in record '" +
                           record.header + "'");
    }
    record.sequence += c;
  }
}

}  // namespace

std::vector<FastaRecord> read_fasta(std::istream& in,
                                    const std::string& origin) {
  std::vector<FastaRecord> records;
  std::string line;
  std::size_t line_no = 0;
  bool in_record = false;

  while (std::getline(in, line)) {
    ++line_no;
    // CRLF input: getline keeps the '\r'; strip it before any parsing so
    // headers and residues never see it.
    if (!line.empty() && line.back() == '\r') line.pop_back();
    std::string_view view = str::trim(line);
    if (view.empty()) continue;
    if (view.front() == '>') {
      records.push_back(FastaRecord{std::string(str::trim(view.substr(1))), ""});
      in_record = true;
    } else if (view.front() == ';') {
      continue;  // legacy comment lines
    } else {
      if (!in_record) {
        throw ParseError(origin, line_no, "sequence data before first header");
      }
      append_sequence_line(records.back(), view, origin, line_no);
    }
  }
  for (const auto& record : records) {
    if (record.sequence.empty()) {
      throw ParseError(origin, line_no,
                       "record '" + record.header + "' has no sequence");
    }
  }
  return records;
}

std::vector<FastaRecord> read_fasta_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw IoError("cannot open FASTA file: " + path);
  return read_fasta(in, path);
}

void write_fasta(std::ostream& out, const std::vector<FastaRecord>& records,
                 std::size_t line_width) {
  for (const auto& record : records) {
    out << '>' << record.header << '\n';
    if (line_width == 0) {
      out << record.sequence << '\n';
      continue;
    }
    for (std::size_t pos = 0; pos < record.sequence.size();
         pos += line_width) {
      out << std::string_view(record.sequence).substr(pos, line_width) << '\n';
    }
  }
}

void write_fasta_file(const std::string& path,
                      const std::vector<FastaRecord>& records,
                      std::size_t line_width) {
  std::ofstream out(path);
  if (!out) throw IoError("cannot open FASTA file for writing: " + path);
  write_fasta(out, records, line_width);
  if (!out) throw IoError("write failed: " + path);
}

}  // namespace lbe::io
