// FASTA reading/writing.
//
// Used in two roles mirroring the paper's pipeline:
//   1. protein databases (input to in-silico digestion),
//   2. "clustered databases" — peptide sequences concatenated group-by-group,
//      the on-disk interchange format LBE's grouping step emits (§III-C.2).
//
// The reader is tolerant the way real proteomics tools must be: wrapped
// sequence lines, CRLF, '*' stop codons (stripped), lower-case residues
// (upper-cased). Unknown residue codes are rejected with file:line context.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace lbe::io {

struct FastaRecord {
  std::string header;    ///< text after '>' without the marker
  std::string sequence;  ///< upper-cased, '*' stripped, validated
};

/// Parses an entire FASTA stream; throws ParseError with `origin` context.
std::vector<FastaRecord> read_fasta(std::istream& in,
                                    const std::string& origin = "<stream>");

/// Opens and parses a file; throws IoError if unreadable.
std::vector<FastaRecord> read_fasta_file(const std::string& path);

/// Writes records wrapped at `line_width` characters (0 = single line).
void write_fasta(std::ostream& out, const std::vector<FastaRecord>& records,
                 std::size_t line_width = 60);

void write_fasta_file(const std::string& path,
                      const std::vector<FastaRecord>& records,
                      std::size_t line_width = 60);

}  // namespace lbe::io
