// MS2 file format (McDonald et al. 2004), the query-spectrum interchange
// format the paper produces with msconvert before searching.
//
// Layout:
//   H <tab> key <tab> value          header lines (file scope)
//   S <tab> first-scan <tab> last-scan <tab> precursor-m/z
//   Z <tab> charge <tab> (M+H)+ mass         zero or more per scan
//   I <tab> key <tab> value                  per-scan info (optional)
//   m/z <space> intensity                    peak lines
//
// The reader accepts space or tab separators and arbitrary peak counts; it
// validates numeric fields and monotonically finalizes each spectrum.
#pragma once

#include <iosfwd>
#include <map>
#include <string>
#include <vector>

#include "chem/spectrum.hpp"

namespace lbe::io {

struct Ms2File {
  std::map<std::string, std::string> headers;
  std::vector<chem::Spectrum> spectra;
};

/// Parses an MS2 stream; throws ParseError with `origin` context.
Ms2File read_ms2(std::istream& in, const std::string& origin = "<stream>");

/// Opens and parses a file; throws IoError if unreadable.
Ms2File read_ms2_file(const std::string& path);

/// Serializes; charges with value 0 are omitted (undetermined precursor).
void write_ms2(std::ostream& out, const Ms2File& file);

void write_ms2_file(const std::string& path, const Ms2File& file);

}  // namespace lbe::io
