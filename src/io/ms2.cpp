#include "io/ms2.hpp"

#include <cstdio>
#include <fstream>
#include <istream>
#include <ostream>

#include "chem/mass.hpp"
#include "common/error.hpp"
#include "common/strings.hpp"

namespace lbe::io {

namespace {

double require_double(std::string_view field, const std::string& origin,
                      std::size_t line_no, const char* what) {
  double out = 0.0;
  if (!str::parse_double(field, out)) {
    throw ParseError(origin, line_no,
                     std::string("cannot parse ") + what + ": '" +
                         std::string(field) + "'");
  }
  return out;
}

}  // namespace

Ms2File read_ms2(std::istream& in, const std::string& origin) {
  Ms2File file;
  std::string line;
  std::size_t line_no = 0;
  bool in_scan = false;

  auto finish_current = [&] {
    if (in_scan) file.spectra.back().finalize();
  };

  while (std::getline(in, line)) {
    ++line_no;
    // CRLF input (e.g. msconvert output from Windows): getline keeps the
    // '\r'; strip it up front so no downstream field ever carries one.
    if (!line.empty() && line.back() == '\r') line.pop_back();
    const std::string_view view = str::trim(line);
    if (view.empty()) continue;

    switch (view.front()) {
      case 'H': {
        const auto fields = str::split_ws(view);
        if (fields.size() >= 3) {
          file.headers[std::string(fields[1])] = std::string(fields[2]);
        } else if (fields.size() == 2) {
          file.headers[std::string(fields[1])] = "";
        }
        break;
      }
      case 'S': {
        finish_current();
        const auto fields = str::split_ws(view);
        if (fields.size() < 4) {
          throw ParseError(origin, line_no,
                           "S line needs: S first-scan last-scan precursor-mz");
        }
        chem::Spectrum spec;
        std::uint64_t scan = 0;
        if (!str::parse_u64(fields[1], scan)) {
          throw ParseError(origin, line_no, "bad scan number");
        }
        spec.scan_id = static_cast<std::uint32_t>(scan);
        spec.precursor.mz =
            require_double(fields[3], origin, line_no, "precursor m/z");
        file.spectra.push_back(std::move(spec));
        in_scan = true;
        break;
      }
      case 'Z': {
        if (!in_scan) {
          throw ParseError(origin, line_no, "Z line outside of a scan");
        }
        const auto fields = str::split_ws(view);
        if (fields.size() < 3) {
          throw ParseError(origin, line_no, "Z line needs: Z charge mass");
        }
        std::uint64_t z = 0;
        if (!str::parse_u64(fields[1], z) || z > 255) {
          throw ParseError(origin, line_no, "bad charge");
        }
        auto& precursor = file.spectra.back().precursor;
        precursor.charge = static_cast<Charge>(z);
        // Z stores the singly-protonated mass (M+H)+; convert to neutral.
        const double mh =
            require_double(fields[2], origin, line_no, "(M+H)+ mass");
        precursor.neutral_mass = mh - chem::kProton;
        break;
      }
      case 'I':
      case 'D':
        break;  // per-scan metadata we do not interpret
      default: {
        if (!in_scan) {
          throw ParseError(origin, line_no, "peak line outside of a scan");
        }
        const auto fields = str::split_ws(view);
        if (fields.size() < 2) {
          throw ParseError(origin, line_no, "peak line needs: m/z intensity");
        }
        const double mz = require_double(fields[0], origin, line_no, "m/z");
        const double inten =
            require_double(fields[1], origin, line_no, "intensity");
        if (mz < 0.0 || inten < 0.0) {
          throw ParseError(origin, line_no, "negative m/z or intensity");
        }
        file.spectra.back().add_peak(mz, static_cast<float>(inten));
        break;
      }
    }
  }
  finish_current();
  return file;
}

Ms2File read_ms2_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw IoError("cannot open MS2 file: " + path);
  return read_ms2(in, path);
}

void write_ms2(std::ostream& out, const Ms2File& file) {
  for (const auto& [key, value] : file.headers) {
    out << "H\t" << key << '\t' << value << '\n';
  }
  char buf[64];
  for (const auto& spec : file.spectra) {
    std::snprintf(buf, sizeof(buf), "%.4f", spec.precursor.mz);
    out << "S\t" << spec.scan_id << '\t' << spec.scan_id << '\t' << buf
        << '\n';
    if (spec.precursor.charge > 0) {
      std::snprintf(buf, sizeof(buf), "%.4f",
                    spec.precursor.neutral_mass + chem::kProton);
      out << "Z\t" << static_cast<int>(spec.precursor.charge) << '\t' << buf
          << '\n';
    }
    for (std::size_t i = 0; i < spec.size(); ++i) {
      std::snprintf(buf, sizeof(buf), "%.4f %.1f", spec.mz(i),
                    static_cast<double>(spec.intensity(i)));
      out << buf << '\n';
    }
  }
}

void write_ms2_file(const std::string& path, const Ms2File& file) {
  std::ofstream out(path);
  if (!out) throw IoError("cannot open MS2 file for writing: " + path);
  write_ms2(out, file);
  if (!out) throw IoError("write failed: " + path);
}

}  // namespace lbe::io
