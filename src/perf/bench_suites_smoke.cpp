// Suite "smoke" — the CI perf gate. Small enough to finish with
// --repeat 3 in well under two minutes on one core, yet it exercises the
// three hot paths that matter: shared-memory query throughput (the
// filtration engine), end-to-end distributed search balance (Eq. 1), and
// index construction. The perf-smoke CI job gates the median
// "queries_per_sec" of these benchmarks against bench/baseline/
// BENCH_smoke.json (see README "Benchmarking").
#include <vector>

#include "perf/bench_common.hpp"
#include "perf/bench_registry.hpp"
#include "search/distributed.hpp"

namespace lbe::perf {

namespace {

constexpr std::uint64_t kSmokeEntries = 20000;
constexpr std::uint32_t kSmokeQueries = 48;
constexpr int kSmokeRanks = 8;

// Shared-memory engine throughput: the filtration hot path, end to end
// (preprocess + scorecard + top-k), over the global index.
void smoke_query_throughput(BenchContext& ctx) {
  using namespace lbe;
  Figure fig("smoke: query throughput",
             "shared-memory engine queries/sec on the smoke workload",
             "the filtration hot path sustains its baseline throughput",
             {"metric", "value"});

  const auto& workload = ctx.workload(kSmokeEntries, kSmokeQueries);
  const auto params = bench::paper_params();

  core::LbeParams lbe;
  lbe.partition.ranks = kSmokeRanks;
  lbe.partition.policy = core::Policy::kCyclic;
  const core::LbePlan plan(workload.base_peptides, workload.mods,
                           workload.variant_params, lbe);
  const index::ChunkedIndex global(plan.build_global_store(), plan.mods(),
                                   params.index, params.chunking);
  const search::QueryEngine engine(global, plan.mods(), params.search);

  index::QueryArena arena;
  std::uint64_t cpsms = 0;
  const auto run_queries = [&] {
    index::QueryWork work;
    for (std::size_t q = 0; q < workload.queries.size(); ++q) {
      const auto result = engine.search(
          workload.queries[q], static_cast<std::uint32_t>(q), work, arena);
      cpsms += result.candidates;
    }
  };
  run_queries();  // warm-up
  cpsms = 0;
  const SampleStats stats = ctx.time_hot(run_queries);
  const std::uint64_t cpsms_per_rep = cpsms / ctx.repeat();

  const double qps = workload.queries.size() / stats.median;
  const double cpsms_per_sec =
      static_cast<double>(cpsms_per_rep) / stats.median;
  fig.row({"queries_per_sec", bench::fmt(qps)});
  fig.row({"cpsms_per_sec", bench::fmt(cpsms_per_sec)});
  fig.check("engine produced candidates", cpsms_per_rep > 0);
  fig.finish();
  ctx.absorb_checks(fig);
  ctx.result.add_metric("queries_per_sec", qps);
  ctx.result.add_metric("cpsms_per_sec", cpsms_per_sec);
  ctx.result.add_metric("cpsms_per_query",
                        static_cast<double>(cpsms_per_rep) /
                            workload.queries.size());
}

// Distributed end-to-end: 8-rank cyclic search with Eq. 1 balance, the
// quantity the paper is about, measured per run (not just once).
void smoke_distributed_balance(BenchContext& ctx) {
  using namespace lbe;
  Figure fig("smoke: distributed",
             "8-rank cyclic distributed search on the smoke workload",
             "distributed search stays balanced and fast",
             {"metric", "value"});

  const auto& workload = ctx.workload(kSmokeEntries, kSmokeQueries);
  const auto params = bench::paper_params();

  double makespan = 0.0;
  double work_li = 0.0;
  const SampleStats stats = ctx.time_hot([&] {
    const auto run = bench::run_distributed(
        workload, core::Policy::kCyclic, kSmokeRanks, params);
    makespan = run.report.makespan;
    work_li = load_stats_from_work(run.report.work).imbalance;
  });

  const double qps = workload.queries.size() / stats.median;
  fig.row({"queries_per_sec", bench::fmt(qps)});
  fig.row({"makespan_seconds", bench::fmt(makespan)});
  fig.row({"li_work_pct", bench::fmt(100.0 * work_li)});
  fig.check("cyclic partitioning stays balanced (work LI < 35%)",
            work_li < 0.35);
  fig.finish();
  ctx.absorb_checks(fig);
  ctx.result.add_metric("queries_per_sec", qps);
  ctx.result.add_metric("load_imbalance", work_li);
  ctx.result.add_metric("makespan_seconds", makespan);
}

// Index construction throughput over the smoke database.
void smoke_index_build(BenchContext& ctx) {
  using namespace lbe;
  Figure fig("smoke: index build",
             "global SLM index construction on the smoke workload",
             "index construction sustains its baseline throughput",
             {"metric", "value"});

  const auto& workload = ctx.workload(kSmokeEntries, kSmokeQueries);
  const auto params = bench::paper_params();

  core::LbeParams lbe;
  lbe.partition.ranks = kSmokeRanks;
  lbe.partition.policy = core::Policy::kCyclic;
  const core::LbePlan plan(workload.base_peptides, workload.mods,
                           workload.variant_params, lbe);

  std::uint64_t entries = 0;
  const SampleStats stats = ctx.time_hot([&] {
    const index::ChunkedIndex global(plan.build_global_store(), plan.mods(),
                                     params.index, params.chunking);
    entries = global.num_peptides();
  });
  const double eps = static_cast<double>(entries) / stats.median;
  fig.row({"entries_per_sec", bench::fmt(eps)});
  fig.row({"entries", bench::fmt(entries)});
  fig.check("index built", entries > 0);
  fig.finish();
  ctx.absorb_checks(fig);
  ctx.result.add_metric("entries_per_sec", eps);
  ctx.result.add_metric("index_entries", static_cast<double>(entries));
}

}  // namespace

void register_smoke_benches(BenchRegistry& registry) {
  registry.add(BenchmarkDef{"smoke_query_throughput", "smoke",
                            "shared-memory engine throughput",
                            smoke_query_throughput});
  registry.add(BenchmarkDef{"smoke_distributed_balance", "smoke",
                            "8-rank distributed search balance",
                            smoke_distributed_balance});
  registry.add(BenchmarkDef{"smoke_index_build", "smoke",
                            "index construction throughput",
                            smoke_index_build});
}

}  // namespace lbe::perf
