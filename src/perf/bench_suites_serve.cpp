// Suite "serve" — the daemon latency/throughput gate. Spins up a real
// `lbectl serve` core (Unix socket, bounded queue, worker pool) over the
// smoke-sized workload, once per process, and drives it through the real
// client so every measurement crosses the wire protocol.
//
// Two benchmarks:
//   serve_throughput  closed-loop: back-to-back batches, gated on median
//                     queries_per_sec, plus a one-shot-equivalence check
//                     (daemon rows must serialize byte-identical to the
//                     in-process pipeline's psms.tsv rows).
//   serve_open_loop   open-loop: batches launched on a fixed schedule at
//                     ~60% of measured capacity; per-batch latency is
//                     measured from the *scheduled* send time, so queueing
//                     delay counts. Reports p50/p99 latency (ms), which CI
//                     gates with --gate-lower, and offered/achieved qps.
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "app/pipeline.hpp"
#include "perf/bench_common.hpp"
#include "perf/bench_registry.hpp"
#include "search/report.hpp"
#include "serve/client.hpp"
#include "serve/server.hpp"
#include "serve/service.hpp"

namespace lbe::perf {

namespace {

constexpr std::uint64_t kServeEntries = 20000;
constexpr std::uint32_t kServeQueries = 48;
constexpr int kServeRanks = 8;
constexpr std::size_t kServeBatch = 8;

/// One daemon per lbebench process, shared across benchmarks and repeats;
/// the suite measures steady-state serving, not startup.
struct ServeEnv {
  app::AppOptions opts;
  std::shared_ptr<serve::ServingContext> context;
  std::unique_ptr<serve::Server> server;
  std::vector<chem::Spectrum> spectra;
};

ServeEnv& serve_env() {
  static ServeEnv env = [] {
    ServeEnv e;
    e.opts = app::options_from_config(Config{});
    e.opts.target_entries = kServeEntries;
    e.opts.num_queries = kServeQueries;
    e.opts.lbe.partition.ranks = kServeRanks;
    e.opts.socket_path =
        "/tmp/lbe_serve_bench_" + std::to_string(::getpid()) + ".sock";
    e.opts.write_report = false;
    e.context = serve::build_serving_context_in_memory(e.opts);
    e.spectra = app::prepare_inputs(e.opts).queries.spectra;

    serve::ServerConfig config;
    config.socket_path = e.opts.socket_path;
    config.queue_depth = e.opts.queue_depth;
    config.workers = 1;
    e.server = std::make_unique<serve::Server>(config, e.context);
    e.server->start();
    return e;
  }();
  return env;
}

double percentile(std::vector<double> sorted, double p) {
  if (sorted.empty()) return 0.0;
  std::sort(sorted.begin(), sorted.end());
  const auto i = static_cast<std::size_t>(
      p * static_cast<double>(sorted.size() - 1) + 0.5);
  return sorted[i];
}

/// Sends [lo, hi) of the env's query set as one batch and returns the rows.
serve::SearchResponse send_batch(serve::ServeClient& client,
                                 const ServeEnv& env, std::size_t lo,
                                 std::size_t hi) {
  serve::SearchRequest request;
  request.start_id = static_cast<std::uint32_t>(lo);
  request.spectra.assign(env.spectra.begin() + lo, env.spectra.begin() + hi);
  for (;;) {
    serve::ServeClient::Outcome outcome = client.search(request);
    if (outcome.status == serve::Status::kQueueFull) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
      continue;
    }
    LBE_CHECK(outcome.status == serve::Status::kOk,
              "daemon rejected a bench batch: " + outcome.error);
    return std::move(outcome.response);
  }
}

std::vector<search::ResolvedPsm> query_all(serve::ServeClient& client,
                                           const ServeEnv& env) {
  std::vector<search::ResolvedPsm> rows;
  for (std::size_t lo = 0; lo < env.spectra.size(); lo += kServeBatch) {
    const std::size_t hi =
        std::min(env.spectra.size(), lo + kServeBatch);
    const auto response = send_batch(client, env, lo, hi);
    rows.insert(rows.end(), response.rows.begin(), response.rows.end());
  }
  return rows;
}

std::string rows_to_tsv(const std::vector<search::ResolvedPsm>& rows) {
  std::ostringstream out;
  search::write_psm_rows(out, rows);
  return out.str();
}

void serve_throughput(BenchContext& ctx) {
  using namespace lbe;
  Figure fig("serve: throughput",
             "closed-loop daemon queries/sec over the Unix socket",
             "the serving path sustains its baseline throughput",
             {"metric", "value"});

  ServeEnv& env = serve_env();
  serve::ServeClient client(env.opts.socket_path);
  LBE_CHECK(client.connect_wait(10.0), "bench daemon did not come up");

  // Equivalence first (and warm-up): daemon rows must match what the
  // one-shot pipeline writes for the same plan + queries, byte for byte.
  const std::vector<search::ResolvedPsm> daemon_rows = query_all(client, env);
  app::QueryBundle bundle;
  bundle.spectra = env.spectra;
  bundle.origin = "<synthetic>";
  const app::SearchOutcome oneshot = app::run_search_pipeline(
      env.context->plan, bundle, env.opts, env.context->warm.get());
  const auto oneshot_rows = search::resolve_psms(
      *env.context->plan.plan, oneshot.report.results,
      env.context->plan.decoy_bases);
  const bool identical = rows_to_tsv(daemon_rows) == rows_to_tsv(oneshot_rows);
  fig.check("daemon rows byte-identical to the one-shot pipeline", identical);

  const SampleStats stats = ctx.time_hot([&] { query_all(client, env); });
  const double qps =
      static_cast<double>(env.spectra.size()) / stats.median;
  fig.row({"queries_per_sec", bench::fmt(qps)});
  fig.row({"rows", bench::fmt(static_cast<std::uint64_t>(daemon_rows.size()))});
  fig.check("daemon produced rows", !daemon_rows.empty());
  fig.finish();
  ctx.absorb_checks(fig);
  ctx.result.add_metric("queries_per_sec", qps);
  ctx.result.add_metric("rows_per_query",
                        static_cast<double>(daemon_rows.size()) /
                            static_cast<double>(env.spectra.size()));
}

void serve_open_loop(BenchContext& ctx) {
  using namespace lbe;
  using Clock = std::chrono::steady_clock;
  Figure fig("serve: open-loop latency",
             "batch latency under open-loop load at ~60% of capacity",
             "p50/p99 batch latency stays within its baseline envelope",
             {"metric", "value"});

  ServeEnv& env = serve_env();
  serve::ServeClient client(env.opts.socket_path);
  LBE_CHECK(client.connect_wait(10.0), "bench daemon did not come up");

  // Calibrate: mean closed-loop batch service time sets the open-loop
  // schedule at ~60% utilization, the regime where queueing delay is
  // visible but the system is stable.
  const auto calibrate_start = Clock::now();
  constexpr int kCalibrationBatches = 6;
  for (int i = 0; i < kCalibrationBatches; ++i) {
    send_batch(client, env, 0, kServeBatch);
  }
  const double service_seconds =
      std::chrono::duration<double>(Clock::now() - calibrate_start).count() /
      kCalibrationBatches;
  const double interval_seconds = service_seconds / 0.6;

  constexpr int kBatches = 40;
  std::vector<double> latencies_ms;
  ctx.time_hot([&] {
    latencies_ms.clear();
    latencies_ms.reserve(kBatches);
    const auto start = Clock::now();
    for (int b = 0; b < kBatches; ++b) {
      // Open loop: the b-th batch is *due* at start + b*interval no matter
      // how long earlier batches took; latency counts from the due time,
      // so falling behind shows up as queueing delay, not a slower clock.
      const auto due =
          start + std::chrono::duration_cast<Clock::duration>(
                      std::chrono::duration<double>(b * interval_seconds));
      std::this_thread::sleep_until(due);
      const std::size_t lo =
          (static_cast<std::size_t>(b) * kServeBatch) % env.spectra.size();
      const std::size_t hi =
          std::min(env.spectra.size(), lo + kServeBatch);
      send_batch(client, env, lo, hi);
      latencies_ms.push_back(
          std::chrono::duration<double, std::milli>(Clock::now() - due)
              .count());
    }
  });

  const double p50 = percentile(latencies_ms, 0.5);
  const double p99 = percentile(latencies_ms, 0.99);
  const double offered_qps =
      static_cast<double>(kServeBatch) / interval_seconds;
  fig.row({"p50_latency_ms", bench::fmt(p50)});
  fig.row({"p99_latency_ms", bench::fmt(p99)});
  fig.row({"offered_qps", bench::fmt(offered_qps)});
  fig.check("latencies were measured",
            latencies_ms.size() == static_cast<std::size_t>(kBatches));
  fig.check("p99 >= p50", p99 >= p50);
  fig.finish();
  ctx.absorb_checks(fig);
  ctx.result.add_metric("p50_latency_ms", p50);
  ctx.result.add_metric("p99_latency_ms", p99);
  ctx.result.add_metric("offered_qps", offered_qps);
  ctx.result.add_metric(
      "queries_per_sec",
      static_cast<double>(kServeBatch) * kBatches /
          (latencies_ms.empty()
               ? 1.0
               : std::max(1e-9, kBatches * interval_seconds)));
}

}  // namespace

void register_serve_benches(BenchRegistry& registry) {
  registry.add(BenchmarkDef{"serve_throughput", "serve",
                            "closed-loop daemon throughput + equivalence",
                            serve_throughput});
  registry.add(BenchmarkDef{"serve_open_loop", "serve",
                            "open-loop batch latency at ~60% capacity",
                            serve_open_loop});
}

}  // namespace lbe::perf
