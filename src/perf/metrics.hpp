// Performance metrics from the paper.
//
//   Load Imbalance (Eq. 1):     LI = ΔTmax / Tavg
//     where ΔTmax = max_i(T_i) - Tavg is the maximum positive deviation of
//     any rank's compute time from the mean.
//
//   Wasted CPU time (§VI):      Twst = N · ΔTmax
//     the total CPU-seconds the other ranks spend waiting for the straggler
//     (the paper's amplification argument: 0.8 LI on 16 CPUs wastes 1280 s
//     of CPU time over a 100 s balanced phase).
//
//   Speedup / efficiency helpers follow the paper's Fig. 8 convention: the
//   base case is the smallest measured CPU count (1-rank runs are memory-
//   infeasible), scaled by ideal efficiency at that base.
#pragma once

#include <cstddef>
#include <vector>

namespace lbe::perf {

struct LoadStats {
  double t_avg = 0.0;
  double t_max = 0.0;
  double delta_t_max = 0.0;  ///< max(T) - avg(T), clamped at 0
  double imbalance = 0.0;    ///< Eq. 1; 0 for empty/zero input
  double wasted_cpu = 0.0;   ///< Twst = N * ΔTmax
};

/// Computes all Eq. 1 metrics from per-rank compute times.
LoadStats load_stats(const std::vector<double>& rank_times);

/// LI alone (Eq. 1).
double load_imbalance(const std::vector<double>& rank_times);

/// Speedup of `time` relative to a measured base point, extrapolated from
/// ideal efficiency at the base: S(p) = base_ranks * base_time / time.
double speedup_vs_base(double base_time, int base_ranks, double time);

/// Parallel efficiency: S(p) / p.
double efficiency(double speedup, int ranks);

/// CPU-time speedup of a balanced run over an imbalanced one at equal rank
/// count (Fig. 11): ratio of total CPU-seconds consumed, where each run
/// costs ranks * max_rank_time (stalled ranks burn their slot waiting).
double cpu_time_speedup(const std::vector<double>& baseline_times,
                        const std::vector<double>& improved_times);

}  // namespace lbe::perf
