// Performance metrics from the paper.
//
//   Load Imbalance (Eq. 1):     LI = ΔTmax / Tavg
//     where ΔTmax = max_i(T_i) - Tavg is the maximum positive deviation of
//     any rank's compute time from the mean.
//
//   Wasted CPU time (§VI):      Twst = N · ΔTmax
//     the total CPU-seconds the other ranks spend waiting for the straggler
//     (the paper's amplification argument: 0.8 LI on 16 CPUs wastes 1280 s
//     of CPU time over a 100 s balanced phase).
//
//   Speedup / efficiency helpers follow the paper's Fig. 8 convention: the
//   base case is the smallest measured CPU count (1-rank runs are memory-
//   infeasible), scaled by ideal efficiency at that base.
#pragma once

#include <cstddef>
#include <vector>

#include "index/query_work.hpp"

namespace lbe::perf {

struct LoadStats {
  double t_avg = 0.0;
  double t_max = 0.0;
  double delta_t_max = 0.0;  ///< max(T) - avg(T), clamped at 0
  double imbalance = 0.0;    ///< Eq. 1; 0 for empty/zero input
  double wasted_cpu = 0.0;   ///< Twst = N * ΔTmax
};

/// Computes all Eq. 1 metrics from per-rank compute times.
LoadStats load_stats(const std::vector<double>& rank_times);

/// LI alone (Eq. 1).
double load_imbalance(const std::vector<double>& rank_times);

/// Per-rank deterministic loads (QueryWork::cost_units) — the single
/// conversion both `lbectl` and the bench harness feed into Eq. 1, so the
/// two never disagree on what "work" means.
std::vector<double> work_unit_loads(
    const std::vector<index::QueryWork>& per_rank_work);

/// Eq. 1 over deterministic work units; equivalent to
/// `load_stats(work_unit_loads(w))`.
LoadStats load_stats_from_work(
    const std::vector<index::QueryWork>& per_rank_work);

/// Order statistics over repeated measurements (lbebench --repeat N).
struct SampleStats {
  std::size_t samples = 0;
  double min = 0.0;
  double max = 0.0;
  double mean = 0.0;
  double median = 0.0;
  double stddev = 0.0;  ///< population stddev; 0 for < 2 samples
};

/// Summarizes a sample vector; all-zero stats for empty input.
SampleStats summarize(std::vector<double> samples);

/// Speedup of `time` relative to a measured base point, extrapolated from
/// ideal efficiency at the base: S(p) = base_ranks * base_time / time.
double speedup_vs_base(double base_time, int base_ranks, double time);

/// Parallel efficiency: S(p) / p.
double efficiency(double speedup, int ranks);

/// CPU-time speedup of a balanced run over an imbalanced one at equal rank
/// count (Fig. 11): ratio of total CPU-seconds consumed, where each run
/// costs ranks * max_rank_time (stalled ranks burn their slot waiting).
double cpu_time_speedup(const std::vector<double>& baseline_times,
                        const std::vector<double>& improved_times);

}  // namespace lbe::perf
