#include "perf/figure.hpp"

#include <iostream>

namespace lbe::perf {

Figure::Figure(std::string id, std::string title, std::string claim,
               std::vector<std::string> columns)
    : id_(std::move(id)) {
  std::cout << "# " << id_ << " — " << title << '\n';
  std::cout << "# claim: " << claim << '\n';
  csv_.emplace(std::cout, std::move(columns));
}

void Figure::check(const std::string& what, bool ok) {
  ++checks_;
  if (!ok) ++failures_;
  std::cout << (ok ? "[PASS] " : "[FAIL] ") << id_ << ": " << what << '\n';
}

void Figure::note(const std::string& text) {
  std::cout << "# " << text << '\n';
}

int Figure::finish() {
  std::cout << "# " << id_ << ": " << (checks_ - failures_) << '/' << checks_
            << " shape checks passed\n";
  return failures_ == 0 ? 0 : 1;
}

}  // namespace lbe::perf
