// Suite "mpi_backend" — the pluggable rank transports head to head over one
// prepared bundle: virtual (token-serialized simulation), threads (real
// concurrent threads) and process (one forked OS worker per rank over
// Unix-domain sockets, every rank mmap'ing its slice of the same read-only
// bundle files). Measures wall time per backend, the bytes and messages
// that actually crossed the wire, and — at two rank counts — the aggregate
// resident index footprint, which the LBE partitioning plus shared mappings
// keep sublinear in rank count (a replicated design would be linear). The
// result-equivalence checks make this suite a second, perf-facing guard on
// what cmake/backend_equivalence_test.cmake asserts at the CLI.
#include <algorithm>
#include <filesystem>
#include <memory>
#include <string>
#include <vector>

#include "app/rank_programs.hpp"
#include "common/timer.hpp"
#include "index/posting_codec.hpp"
#include "index/serialize.hpp"
#include "perf/bench_common.hpp"
#include "perf/bench_registry.hpp"
#include "search/distributed.hpp"
#include "search/wire.hpp"
#include "simmpi/cluster.hpp"
#include "simmpi/process.hpp"

namespace lbe::perf {

namespace {

constexpr std::uint64_t kEntries = 20000;
constexpr std::uint32_t kQueries = 32;
constexpr int kRanks = 4;

bool same_results(const std::vector<search::GlobalQueryResult>& a,
                  const std::vector<search::GlobalQueryResult>& b) {
  if (a.size() != b.size()) return false;
  for (std::size_t q = 0; q < a.size(); ++q) {
    if (a[q].top.size() != b[q].top.size()) return false;
    for (std::size_t k = 0; k < a[q].top.size(); ++k) {
      const auto& x = a[q].top[k];
      const auto& y = b[q].top[k];
      if (x.peptide != y.peptide || x.shared_peaks != y.shared_peaks ||
          x.score != y.score) {
        return false;
      }
    }
  }
  return true;
}

/// Stages the per-rank index files the process workers mmap (the same
/// files the master maps below — one page cache entry per rank slice).
void stage_bundle(const core::LbePlan& plan,
                  const search::DistributedParams& params,
                  const std::string& dir) {
  std::filesystem::create_directories(dir);
  for (int rank = 0; rank < plan.ranks(); ++rank) {
    const index::ChunkedIndex partial(plan.build_rank_store(rank),
                                      plan.mods(), params.index,
                                      params.chunking);
    partial.save_file(index::bundle_rank_path(dir, rank));
  }
}

std::vector<std::unique_ptr<index::ChunkedIndex>> map_bundle(
    const std::string& dir, int ranks, const chem::ModificationSet& mods,
    const index::IndexParams& index_params) {
  std::vector<std::unique_ptr<index::ChunkedIndex>> mapped;
  for (int rank = 0; rank < ranks; ++rank) {
    mapped.push_back(index::ChunkedIndex::map_file(
        index::bundle_rank_path(dir, rank), mods, index_params));
  }
  return mapped;
}

struct BackendRun {
  search::DistributedReport report;
  std::vector<mpi::RankReport> comm;
  double seconds = 0.0;
};

BackendRun run_in_process(mpi::Engine engine, const core::LbePlan& plan,
                          const std::vector<chem::Spectrum>& queries,
                          const search::DistributedParams& params) {
  mpi::ClusterOptions options;
  options.ranks = plan.ranks();
  options.engine = engine;
  mpi::Cluster cluster(options);
  BackendRun run;
  Stopwatch timer;
  run.report = search::run_distributed_search(cluster, plan, queries, params);
  run.seconds = timer.seconds();
  run.comm = cluster.reports();
  return run;
}

BackendRun run_process_backend(const core::LbePlan& plan,
                               const std::vector<chem::Spectrum>& queries,
                               const search::DistributedParams& params,
                               const std::string& bundle_dir) {
  search::wire::SearchSetup setup;
  setup.bundle_dir = bundle_dir;
  // Pin the resolved (never "auto") level so worker kernels match ours.
  setup.simd_level =
      index::codec::simd_level_name(index::codec::resolved_simd_level());
  setup.mods = plan.mods();
  setup.index_params = params.index;
  setup.search = params.search;
  setup.result_batch = params.result_batch;
  setup.threads_per_rank = params.threads_per_rank;
  setup.queries = queries;

  mpi::ProcessTransportOptions options;
  options.ranks = plan.ranks();
  options.program = app::kSearchRankProgram;
  options.setup = search::wire::encode_search_setup(setup);
  mpi::ProcessTransport transport(std::move(options));
  BackendRun run;
  Stopwatch timer;
  run.report =
      search::run_distributed_search(transport, plan, queries, params);
  run.seconds = timer.seconds();
  run.comm = transport.reports();
  return run;
}

std::uint64_t sum_messages(const std::vector<mpi::RankReport>& comm) {
  std::uint64_t total = 0;
  for (const auto& rank : comm) total += rank.messages_sent;
  return total;
}

std::uint64_t sum_bytes(const std::vector<mpi::RankReport>& comm) {
  std::uint64_t total = 0;
  for (const auto& rank : comm) total += rank.bytes_sent;
  return total;
}

/// Aggregate peak RSS over the *worker* processes (ranks >= 1). Rank 0 is
/// this bench process, whose high-water mark reflects every prior
/// benchmark, not this run.
std::uint64_t sum_worker_rss(const std::vector<mpi::RankReport>& comm) {
  std::uint64_t total = 0;
  for (std::size_t rank = 1; rank < comm.size(); ++rank) {
    total += comm[rank].peak_rss_bytes;
  }
  return total;
}

core::LbePlan make_plan(const synth::Workload& workload, int ranks) {
  core::LbeParams lbe;
  lbe.partition.ranks = ranks;
  lbe.partition.policy = core::Policy::kCyclic;
  return core::LbePlan(workload.base_peptides, workload.mods,
                       workload.variant_params, lbe);
}

// Virtual vs threads vs process over one warm bundle: identical results,
// real wire traffic, per-backend wall time. queries_per_sec (the CI-gated
// throughput metric) is the process backend's — the one this suite exists
// to watch.
void mpi_backend_transports(BenchContext& ctx) {
  using namespace lbe;
  Figure fig("mpi_backend: transports",
             "virtual vs threads vs process over one shared mmap'd bundle",
             "every transport reproduces the same results; the process "
             "backend ships real bytes over real sockets",
             {"backend", "seconds", "messages", "wire_bytes"});

  const auto& workload = ctx.workload(kEntries, kQueries);
  auto params = bench::paper_params();
  const core::LbePlan plan = make_plan(workload, kRanks);

  const std::string dir =
      (std::filesystem::temp_directory_path() / "lbe_bench_mpi_backend")
          .string();
  stage_bundle(plan, params, dir);
  const auto mapped = map_bundle(dir, kRanks, plan.mods(), params.index);
  params.preloaded = &mapped;

  const BackendRun virt =
      run_in_process(mpi::Engine::kVirtual, plan, workload.queries, params);
  const BackendRun threads =
      run_in_process(mpi::Engine::kThreads, plan, workload.queries, params);
  const BackendRun process =
      run_process_backend(plan, workload.queries, params, dir);

  fig.check("threads results identical to virtual",
            same_results(virt.report.results, threads.report.results));
  fig.check("process results identical to virtual",
            same_results(virt.report.results, process.report.results));

  const std::uint64_t wire_messages = sum_messages(process.comm);
  const std::uint64_t wire_bytes = sum_bytes(process.comm);
  fig.check("process backend shipped real messages", wire_messages > 0);
  fig.check("process backend shipped real bytes", wire_bytes > 0);
  bool workers_report_rss = process.comm.size() == kRanks;
  for (std::size_t rank = 1; rank < process.comm.size(); ++rank) {
    workers_report_rss =
        workers_report_rss && process.comm[rank].peak_rss_bytes > 0;
  }
  fig.check("every worker process reported its peak RSS",
            workers_report_rss);

  std::filesystem::remove_all(dir);

  fig.row({"virtual", bench::fmt(virt.seconds),
           bench::fmt(sum_messages(virt.comm)),
           bench::fmt(sum_bytes(virt.comm))});
  fig.row({"threads", bench::fmt(threads.seconds),
           bench::fmt(sum_messages(threads.comm)),
           bench::fmt(sum_bytes(threads.comm))});
  fig.row({"process", bench::fmt(process.seconds),
           bench::fmt(wire_messages), bench::fmt(wire_bytes)});
  fig.note("process backend: " + bench::fmt(wire_messages) +
           " messages / " + bench::fmt(wire_bytes) +
           " B over the sockets in " + bench::fmt(process.seconds) + "s (" +
           bench::fmt(process.seconds / std::max(virt.seconds, 1e-9)) +
           "x the virtual engine's wall time)");
  fig.finish();
  ctx.absorb_checks(fig);

  ctx.result.add_metric("queries_per_sec",
                        kQueries / std::max(process.seconds, 1e-9));
  ctx.result.add_metric("virtual_seconds", virt.seconds);
  ctx.result.add_metric("threads_seconds", threads.seconds);
  ctx.result.add_metric("process_seconds", process.seconds);
  ctx.result.add_metric("wire_messages", static_cast<double>(wire_messages));
  ctx.result.add_metric("wire_bytes", static_cast<double>(wire_bytes));
  ctx.result.add_metric("worker_peak_rss_bytes",
                        static_cast<double>(sum_worker_rss(process.comm)));
}

constexpr std::uint64_t kScaleEntries = 48000;
constexpr std::uint32_t kScaleQueries = 12;

struct ScalePoint {
  int ranks = 0;
  int workers = 0;                   ///< forked processes (ranks - 1)
  std::uint64_t bundle_bytes = 0;    ///< sum of per-rank mapped file bytes
  std::uint64_t max_rank_bytes = 0;  ///< largest single rank's file
  std::uint64_t worker_rss = 0;      ///< aggregate worker-process peak RSS
  double seconds = 0.0;
};

// The shared-mapping economics the process backend exists for: the bundle
// is partitioned, every rank maps only its slice read-only, so the fleet's
// total index bytes (the files those resident pages are backed by) stay
// ~flat as ranks are added — sublinear in rank count, where a
// replicate-the-index design would be linear — and each extra worker costs
// less resident memory than the last because its slice shrank.
void mpi_backend_rss_scaling(BenchContext& ctx) {
  using namespace lbe;
  Figure fig("mpi_backend: rss scaling",
             "process backend at 2 vs 4 ranks over partitioned mmap'd "
             "bundles",
             "aggregate resident index bytes stay sublinear in rank count",
             {"ranks", "bundle_bytes", "max_rank_bytes", "worker_rss_bytes",
              "seconds"});

  const auto& workload = ctx.workload(kScaleEntries, kScaleQueries);
  const auto base = bench::paper_params();

  const std::string root =
      (std::filesystem::temp_directory_path() / "lbe_bench_mpi_rss")
          .string();
  std::vector<ScalePoint> points;
  for (const int ranks : {2, 4}) {
    const core::LbePlan plan = make_plan(workload, ranks);
    const std::string dir = root + "/r" + std::to_string(ranks);
    stage_bundle(plan, base, dir);
    const auto mapped = map_bundle(dir, ranks, plan.mods(), base.index);
    auto params = base;
    params.preloaded = &mapped;

    ScalePoint point;
    point.ranks = ranks;
    point.workers = ranks - 1;
    for (int rank = 0; rank < ranks; ++rank) {
      const std::uint64_t bytes =
          std::filesystem::file_size(index::bundle_rank_path(dir, rank));
      point.bundle_bytes += bytes;
      point.max_rank_bytes = std::max(point.max_rank_bytes, bytes);
    }

    const BackendRun run =
        run_process_backend(plan, workload.queries, params, dir);
    point.worker_rss = sum_worker_rss(run.comm);
    point.seconds = run.seconds;
    points.push_back(point);

    fig.row({bench::fmt(ranks), bench::fmt(point.bundle_bytes),
             bench::fmt(point.max_rank_bytes), bench::fmt(point.worker_rss),
             bench::fmt(point.seconds)});
  }
  std::filesystem::remove_all(root);

  const ScalePoint& two = points[0];
  const ScalePoint& four = points[1];
  // Linear-in-ranks would double the aggregate; partitioning keeps it ~1x.
  fig.check("aggregate resident index bytes sublinear in rank count",
            four.bundle_bytes < 1.5 * static_cast<double>(two.bundle_bytes));
  fig.check("per-rank index slice shrinks as ranks are added",
            four.max_rank_bytes < two.max_rank_bytes);
  // Real process memory: each additional worker must cost less than the
  // fleet's first one did, because it maps a smaller read-only slice.
  const double per_worker_rss_2 =
      static_cast<double>(two.worker_rss) / std::max(two.workers, 1);
  const double per_worker_rss_4 =
      static_cast<double>(four.worker_rss) / std::max(four.workers, 1);
  fig.check("per-worker peak RSS falls as the bundle spreads thinner",
            per_worker_rss_4 < per_worker_rss_2);

  const double bundle_growth = static_cast<double>(four.bundle_bytes) /
                               static_cast<double>(std::max<std::uint64_t>(
                                   two.bundle_bytes, 1));
  fig.note("2 -> 4 ranks grows the aggregate mapped index " +
           bench::fmt(bundle_growth) + "x (linear would be 2x); per-worker "
           "peak RSS " +
           bench::fmt(per_worker_rss_2) + " -> " +
           bench::fmt(per_worker_rss_4) + " B");
  fig.finish();
  ctx.absorb_checks(fig);

  ctx.result.add_metric("bundle_bytes_ranks2",
                        static_cast<double>(two.bundle_bytes));
  ctx.result.add_metric("bundle_bytes_ranks4",
                        static_cast<double>(four.bundle_bytes));
  ctx.result.add_metric("bundle_growth_2_to_4", bundle_growth);
  ctx.result.add_metric("worker_rss_ranks2",
                        static_cast<double>(two.worker_rss));
  ctx.result.add_metric("worker_rss_ranks4",
                        static_cast<double>(four.worker_rss));
  ctx.result.add_metric("per_worker_rss_ranks2", per_worker_rss_2);
  ctx.result.add_metric("per_worker_rss_ranks4", per_worker_rss_4);
  ctx.result.add_metric("seconds_ranks2", two.seconds);
  ctx.result.add_metric("seconds_ranks4", four.seconds);
}

}  // namespace

void register_mpi_backend_benches(BenchRegistry& registry) {
  registry.add(BenchmarkDef{"mpi_backend_transports", "mpi_backend",
                            "virtual vs threads vs process: wall time, "
                            "wire traffic, result equivalence",
                            mpi_backend_transports});
  registry.add(BenchmarkDef{"mpi_backend_rss_scaling", "mpi_backend",
                            "process backend at 2 vs 4 ranks: aggregate "
                            "resident index bytes stay sublinear",
                            mpi_backend_rss_scaling});
}

}  // namespace lbe::perf
