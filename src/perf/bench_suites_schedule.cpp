// Suite "schedule" — the scheduling layer's makespan contract on one
// heterogeneous fixture (8 ranks, half 3x slower; the ablation suite's
// cluster): work stealing must cut the static query makespan by >= 1.2x
// where hardware is skewed, while costing < 5% where it is not, and the
// calibrated policy must recover the hardware skew from a probe through the
// public CostFeedback -> plan_params hooks — no hand-coded 1/slowdown.
#include <algorithm>
#include <memory>

#include "core/scheduling.hpp"
#include "index/chunked_index.hpp"
#include "perf/bench_common.hpp"
#include "perf/bench_registry.hpp"

namespace lbe::perf {

namespace {

constexpr int kRanks = 8;
constexpr std::uint64_t kEntries = 120000;
// 24 batches per rank at result_batch 8: enough queue depth that the
// sub-5% homogeneous-overhead gate measures protocol cost, not timing
// noise on a too-short phase, while the heterogeneous fixture still has a
// deep unstarted tail to migrate.
constexpr std::uint32_t kQueries = 192;

/// Half the cluster runs 3x slower — the §VIII heterogeneous scenario.
const std::vector<double>& hetero_slowdown() {
  static const std::vector<double> kSlowdown = {1.0, 1.0, 1.0, 1.0,
                                                3.0, 3.0, 3.0, 3.0};
  return kSlowdown;
}

/// Small result batches so the steal ledger has real granularity to move:
/// 96 queries / batch 8 = 12 batches per index rank.
search::DistributedParams schedule_params(core::Schedule schedule) {
  auto params = bench::paper_params();
  params.result_batch = 8;
  params.schedule.schedule = schedule;
  return params;
}

struct ScheduleRun {
  search::DistributedReport report;  ///< first repeat (counters)
  double query_wall = 0.0;  ///< min over repeats of max rank query phase
  std::vector<double> query_seconds;  ///< per-rank min over repeats
};

/// Pre-builds every rank's partial index once, outside the measured runs —
/// the deployed analogue is the shared mmap'd bundle, where a thief maps a
/// victim's partial index instead of rebuilding it. Without this, the cost
/// of a steal is dominated by an index construction no real backend pays.
std::vector<std::unique_ptr<index::ChunkedIndex>> preload_indexes(
    const core::LbePlan& plan, const search::DistributedParams& params) {
  std::vector<std::unique_ptr<index::ChunkedIndex>> out;
  out.reserve(static_cast<std::size_t>(plan.ranks()));
  for (int rank = 0; rank < plan.ranks(); ++rank) {
    out.push_back(std::make_unique<index::ChunkedIndex>(
        plan.build_rank_store(rank), plan.mods(), params.index,
        params.chunking));
  }
  return out;
}

/// Best-of-5 on a fresh virtual cluster with measured time: single-core
/// timing noise is strictly additive, so the per-rank minimum over repeats
/// is the clean signal — the makespan gates compare sub-5% deltas, which
/// one noisy repeat would otherwise dominate.
ScheduleRun run_schedule(const core::LbePlan& plan,
                         const std::vector<chem::Spectrum>& queries,
                         const search::DistributedParams& params,
                         const std::vector<double>& slowdown) {
  ScheduleRun out;
  for (int rep = 0; rep < 5; ++rep) {
    mpi::ClusterOptions options;
    options.ranks = plan.ranks();
    options.engine = mpi::Engine::kVirtual;
    options.measured_time = true;
    options.slowdown = slowdown;
    mpi::Cluster cluster(options);
    auto report = search::run_distributed_search(cluster, plan, queries,
                                                 params);
    const auto seconds = report.query_phase_seconds();
    if (rep == 0) {
      out.query_seconds = seconds;
      out.report = std::move(report);
    } else {
      for (std::size_t r = 0; r < seconds.size(); ++r) {
        out.query_seconds[r] = std::min(out.query_seconds[r], seconds[r]);
      }
    }
  }
  for (const double t : out.query_seconds) {
    out.query_wall = std::max(out.query_wall, t);
  }
  return out;
}

std::uint64_t total_stolen(const search::DistributedReport& report) {
  std::uint64_t stolen = 0;
  for (const auto batches : report.batches_stolen) stolen += batches;
  return stolen;
}

// Stealing vs static, heterogeneous and homogeneous: the two halves of the
// scheduling contract. The makespan gated here is the query-phase wall —
// the only phase a schedule governs (index builds are placement-bound).
void schedule_stealing(BenchContext& ctx) {
  using namespace lbe;
  Figure fig(
      "Schedule: stealing",
      "static vs stealing query makespan, heterogeneous and homogeneous",
      "idle ranks absorbing the slow half's unstarted tail cut the "
      "heterogeneous makespan >= 1.2x; a balanced fleet steals (almost) "
      "nothing, so the protocol costs < 5% there",
      {"fixture", "schedule", "query_wall_s", "batches_stolen"});

  const auto& workload = ctx.workload(kEntries, kQueries);
  core::LbeParams lbe;
  lbe.partition.policy = core::Policy::kCyclic;
  lbe.partition.ranks = kRanks;
  const core::LbePlan plan(workload.base_peptides, workload.mods,
                           workload.variant_params, lbe);

  auto static_params = schedule_params(core::Schedule::kLbeStatic);
  auto steal_params = schedule_params(core::Schedule::kStealing);
  const auto indexes = preload_indexes(plan, static_params);
  static_params.preloaded = &indexes;
  steal_params.preloaded = &indexes;

  const auto static_hetero =
      run_schedule(plan, workload.queries, static_params, hetero_slowdown());
  const auto steal_hetero =
      run_schedule(plan, workload.queries, steal_params, hetero_slowdown());
  const auto static_homo =
      run_schedule(plan, workload.queries, static_params, {});
  const auto steal_homo =
      run_schedule(plan, workload.queries, steal_params, {});

  const std::uint64_t stolen_hetero = total_stolen(steal_hetero.report);
  const std::uint64_t stolen_homo = total_stolen(steal_homo.report);
  fig.row({"hetero", "lbe_static", bench::fmt(static_hetero.query_wall),
           bench::fmt(std::uint64_t{0})});
  fig.row({"hetero", "stealing", bench::fmt(steal_hetero.query_wall),
           bench::fmt(stolen_hetero)});
  fig.row({"homo", "lbe_static", bench::fmt(static_homo.query_wall),
           bench::fmt(std::uint64_t{0})});
  fig.row({"homo", "stealing", bench::fmt(steal_homo.query_wall),
           bench::fmt(stolen_homo)});

  const double hetero_speedup =
      static_hetero.query_wall / steal_hetero.query_wall;
  const double homo_overhead =
      steal_homo.query_wall / static_homo.query_wall - 1.0;
  fig.check("stealing cuts the heterogeneous query makespan >= 1.2x",
            hetero_speedup >= 1.2);
  fig.check("stealing costs < 5% on the homogeneous fixture",
            homo_overhead < 0.05);
  fig.check("batches actually migrate on the heterogeneous fixture",
            stolen_hetero > 0);
  // Stolen or not, every (index rank, batch) cell is covered; a tail-cut
  // racing its victim may add a deduplicated duplicate, never a gap.
  std::uint64_t executed = 0;
  for (const auto batches : steal_hetero.report.batches_executed) {
    executed += batches;
  }
  const std::uint64_t batches_per_rank =
      (kQueries + steal_params.result_batch - 1) / steal_params.result_batch;
  fig.check("steal ledger covers the batch grid",
            executed >= batches_per_rank * kRanks);
  fig.finish();
  ctx.absorb_checks(fig);
  ctx.result.add_metric("queries_per_sec",
                        kQueries / steal_hetero.query_wall);
  ctx.result.add_metric("hetero_speedup", hetero_speedup);
  ctx.result.add_metric("homo_overhead_pct", 100.0 * homo_overhead);
  ctx.result.add_metric("hetero_batches_stolen",
                        static_cast<double>(stolen_hetero));
}

// Calibration end to end through the policy hooks: probe the static plan,
// feed the observed per-rank seconds + work units into CalibratedPolicy,
// re-plan with the fitted weights, and demand the re-planned run beats the
// static one on the same skewed hardware.
void schedule_calibrated(BenchContext& ctx) {
  using namespace lbe;
  Figure fig(
      "Schedule: calibrated",
      "probe -> CostFeedback -> weighted re-plan on the heterogeneous fixture",
      "observed speeds recover the 3x hardware skew, so the fitted weights "
      "shift entries off the slow half and cut the query makespan",
      {"config", "metric", "value"});

  const auto& workload = ctx.workload(kEntries, kQueries);
  core::LbeParams lbe;
  lbe.partition.policy = core::Policy::kCyclic;
  lbe.partition.ranks = kRanks;
  const core::LbePlan plan(workload.base_peptides, workload.mods,
                           workload.variant_params, lbe);

  auto static_params = schedule_params(core::Schedule::kLbeStatic);
  const auto base_indexes = preload_indexes(plan, static_params);
  static_params.preloaded = &base_indexes;
  const auto static_run =
      run_schedule(plan, workload.queries, static_params, hetero_slowdown());

  core::CostFeedback feedback;
  feedback.rank_seconds = static_run.query_seconds;
  feedback.rank_cost_units = work_unit_loads(static_run.report.work);

  const auto policy = core::make_policy(core::Schedule::kCalibrated);
  const core::PartitionParams fitted =
      policy->plan_params(lbe.partition, feedback);
  const core::LbePlan replanned(plan, fitted);
  auto calibrated_params = schedule_params(core::Schedule::kCalibrated);
  const auto replanned_indexes = preload_indexes(replanned, calibrated_params);
  calibrated_params.preloaded = &replanned_indexes;
  const auto calibrated_run = run_schedule(replanned, workload.queries,
                                           calibrated_params,
                                           hetero_slowdown());

  fig.row({"static", "query_wall_s", bench::fmt(static_run.query_wall)});
  fig.row({"calibrated", "query_wall_s",
           bench::fmt(calibrated_run.query_wall)});
  for (int rank = 0; rank < kRanks; ++rank) {
    const auto r = static_cast<std::size_t>(rank);
    fig.row({"calibrated_rank" + std::to_string(rank), "weight",
             bench::fmt(fitted.weights.empty() ? 0.0 : fitted.weights[r])});
    fig.row({"calibrated_rank" + std::to_string(rank), "entries",
             bench::fmt(calibrated_run.report.index_entries[r])});
  }

  fig.check("probe feedback produces a weighted plan",
            fitted.policy == core::Policy::kWeighted &&
                fitted.weights.size() == kRanks);
  if (fitted.weights.size() == kRanks) {
    // Fast rank 0 measured ~3x the speed of slow rank 4; calibration sees
    // it through noise plus each rank's fixed per-query cost, so demand a
    // clear ordering rather than the exact ratio.
    fig.check("fitted weights recover the hardware skew (> 1.5x)",
              fitted.weights[0] > 1.5 * fitted.weights[4]);
  }
  const double speedup = static_run.query_wall / calibrated_run.query_wall;
  fig.check("calibrated re-plan cuts the query makespan by > 10%",
            speedup > 1.1);
  fig.finish();
  ctx.absorb_checks(fig);
  ctx.result.add_metric("queries_per_sec",
                        kQueries / calibrated_run.query_wall);
  ctx.result.add_metric("calibrated_speedup", speedup);
}

}  // namespace

void register_schedule_benches(BenchRegistry& registry) {
  registry.add(BenchmarkDef{"schedule_stealing", "schedule",
                            "static vs stealing makespan, hetero + homo",
                            schedule_stealing});
  registry.add(BenchmarkDef{"schedule_calibrated", "schedule",
                            "probe-calibrated re-plan vs static, hetero",
                            schedule_calibrated});
}

}  // namespace lbe::perf
