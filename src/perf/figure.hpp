// Uniform output harness for the figure-reproduction benches.
//
// Every bench/fig* binary prints:
//   1. a "# Figure N — title" banner with the paper's claim,
//   2. the figure's data as CSV rows (x, series, value) for re-plotting,
//   3. shape assertions ("[PASS]/[FAIL] ...") checking the paper's claims,
// and exits non-zero if any assertion failed — so `for b in bench/*; do $b;
// done` doubles as a reproduction check.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "common/csv.hpp"

namespace lbe::perf {

class Figure {
 public:
  /// `id` like "Fig. 6", `title` the paper caption digest, `claim` the
  /// sentence being reproduced. Prints the banner and CSV header.
  Figure(std::string id, std::string title, std::string claim,
         std::vector<std::string> columns);

  /// Emits one CSV data row.
  void row(const std::vector<std::string>& fields) { csv_->row(fields); }

  /// Records one shape assertion; prints immediately.
  void check(const std::string& what, bool ok);

  /// Prints a free-form note ('#'-prefixed, not part of the CSV).
  void note(const std::string& text);

  /// Prints the summary; returns the process exit code (0 = all PASS).
  int finish();

  bool all_passed() const { return failures_ == 0; }
  int checks() const { return checks_; }
  int failures() const { return failures_; }

 private:
  std::string id_;
  std::optional<CsvWriter> csv_;
  int checks_ = 0;
  int failures_ = 0;
};

}  // namespace lbe::perf
