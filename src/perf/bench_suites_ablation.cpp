// Suite "ablation" — design-choice sensitivity studies (DESIGN.md §6):
// communication cost models, grouping parameters, heterogeneous clusters.
#include <map>

#include "core/scheduling.hpp"
#include "perf/bench_common.hpp"
#include "perf/bench_registry.hpp"
#include "search/load_model.hpp"

namespace lbe::perf {

namespace {

// Communication-cost sensitivity: makespan under three network models
// crossed with result-batch sizes. If the protocol is communication-light,
// even a 200x slower network should move the makespan only modestly, and
// batching should absorb most of the latency cost.
void ablation_commcost(BenchContext& ctx) {
  using namespace lbe;
  Figure fig(
      "Ablation: comm cost",
      "makespan under network cost models x result batch size",
      "the LBE protocol is communication-light: results-only traffic keeps "
      "slow-network penalties small; batching absorbs latency",
      {"network", "result_batch", "makespan_seconds", "bytes_to_master"});

  constexpr std::uint64_t kEntries = 120000;
  constexpr std::uint32_t kQueries = 96;
  const auto& workload = ctx.workload(kEntries, kQueries);
  constexpr int kRanks = 8;

  struct Network {
    const char* name;
    mpi::CostModel cost;
  };
  const std::vector<Network> networks = {
      {"free", mpi::CostModel::zero()},
      {"lan", mpi::CostModel{50e-6, 1e-8}},    // 50 us, ~100 MB/s
      {"wan", mpi::CostModel{10e-3, 2e-6}},    // 10 ms, ~0.5 MB/s
  };

  core::LbeParams lbe;
  lbe.partition.policy = core::Policy::kCyclic;
  lbe.partition.ranks = kRanks;
  const core::LbePlan plan(workload.base_peptides, workload.mods,
                           workload.variant_params, lbe);

  std::map<std::string, double> makespan_by_key;
  for (const Network& network : networks) {
    for (const std::uint32_t batch : {8u, 64u, 1024u}) {
      auto params = bench::paper_params();
      params.result_batch = batch;
      // Best-of-3: single-core timing noise in the (dominant) build phase
      // would otherwise drown the network signal.
      double makespan = 0.0;
      std::uint64_t bytes = 0;
      for (int rep = 0; rep < 3; ++rep) {
        mpi::ClusterOptions options;
        options.ranks = kRanks;
        options.engine = mpi::Engine::kVirtual;
        options.measured_time = true;
        options.cost = network.cost;
        mpi::Cluster cluster(options);
        const auto report = search::run_distributed_search(
            cluster, plan, workload.queries, params);
        bytes = 0;
        for (const auto& rank_report : cluster.reports()) {
          bytes += rank_report.bytes_sent;
        }
        makespan = rep == 0 ? report.makespan
                            : std::min(makespan, report.makespan);
      }
      makespan_by_key[std::string(network.name) + "/" +
                      std::to_string(batch)] = makespan;
      fig.row({network.name, bench::fmt(std::uint64_t{batch}),
               bench::fmt(makespan), bench::fmt(bytes)});
    }
  }

  fig.check("LAN penalty over free network is < 25% (batch 64)",
            makespan_by_key["lan/64"] < makespan_by_key["free/64"] * 1.25);
  fig.check("batching absorbs WAN latency (batch 1024 beats batch 8 on WAN)",
            makespan_by_key["wan/1024"] < makespan_by_key["wan/8"]);
  fig.check("batch size irrelevant on a free network (within noise)",
            makespan_by_key["free/1024"] <
                makespan_by_key["free/8"] * 1.35 + 0.05);
  fig.finish();
  ctx.absorb_checks(fig);
  ctx.result.add_metric("wan_batch1024_makespan",
                        makespan_by_key["wan/1024"]);
  ctx.result.add_metric("free_batch64_makespan",
                        makespan_by_key["free/64"]);
}

// Grouping/partitioning sensitivity at one index size and 16 ranks:
// criterion 1 vs 2, gsize in {5, 80}, Random with/without rotation. Chunk
// and Cyclic depend only on the sorted (clustered) order, so grouping
// knobs move ONLY the Random policy; chunk's imbalance comes from the
// sort itself.
void ablation_grouping(BenchContext& ctx) {
  using namespace lbe;
  Figure fig(
      "Ablation: grouping",
      "LI sensitivity to grouping criterion, gsize, and random rotation",
      "clustering creates chunk's imbalance; LBE policies stay balanced "
      "across all grouping settings",
      {"config", "policy", "li_work_pct"});

  const auto base_params = bench::paper_params();
  constexpr std::uint64_t kEntries = 120000;
  constexpr std::uint32_t kQueries = 96;
  const auto& workload = ctx.workload(kEntries, kQueries);

  struct Run {
    std::string config;
    core::Policy policy;
    core::GroupingParams grouping;
    bool rotate = true;
  };
  std::vector<Run> runs;
  for (const core::Policy policy :
       {core::Policy::kChunk, core::Policy::kCyclic, core::Policy::kRandom}) {
    core::GroupingParams criterion1;
    criterion1.criterion = core::GroupingCriterion::kAbsolute;
    runs.push_back({"criterion1_d2", policy, criterion1, true});
    runs.push_back({"criterion2_d0.86", policy, core::GroupingParams{}, true});
    for (const std::uint32_t gsize : {5u, 80u}) {
      core::GroupingParams sized;
      sized.gsize = gsize;
      runs.push_back({"gsize" + std::to_string(gsize), policy, sized, true});
    }
  }
  core::GroupingParams defaults;
  runs.push_back({"no_rotation", core::Policy::kRandom, defaults, false});

  std::map<std::string, double> li_by_key;
  for (const Run& run : runs) {
    core::LbeParams lbe;
    lbe.grouping = run.grouping;
    lbe.partition.policy = run.policy;
    lbe.partition.ranks = bench::kPaperRanks;
    lbe.partition.rotate_groups = run.rotate;
    const core::LbePlan plan(workload.base_peptides, workload.mods,
                             workload.variant_params, lbe);
    mpi::ClusterOptions options;
    options.ranks = bench::kPaperRanks;
    options.engine = mpi::Engine::kVirtual;
    options.measured_time = false;
    mpi::Cluster cluster(options);
    const auto report = search::run_distributed_search(
        cluster, plan, workload.queries, base_params);
    const double li = load_stats_from_work(report.work).imbalance;
    li_by_key[run.config + "/" + core::policy_name(run.policy)] = li;
    fig.row({run.config, core::policy_name(run.policy),
             bench::fmt(100.0 * li)});
  }

  // LBE policies stay balanced across every grouping configuration. The
  // no_rotation config is the known pathology (checked separately below).
  for (const auto& [key, li] : li_by_key) {
    if (key.find("chunk") == std::string::npos &&
        key.find("no_rotation") == std::string::npos) {
      fig.check("balanced (<35%): " + key, li < 0.35);
    }
  }
  // Chunk's imbalance persists across grouping configurations.
  for (const std::string config :
       {"criterion1_d2", "criterion2_d0.86", "gsize5", "gsize80"}) {
    fig.check("chunk imbalanced (>40%): " + config,
              li_by_key[config + "/chunk"] > 0.40);
  }
  fig.check("rotation helps random policy",
            li_by_key["no_rotation/random"] >
                li_by_key["criterion2_d0.86/random"]);
  fig.finish();
  ctx.absorb_checks(fig);
  ctx.result.add_metric("default_random_li",
                        li_by_key["criterion2_d0.86/random"]);
  ctx.result.add_metric("no_rotation_random_li",
                        li_by_key["no_rotation/random"]);
}

// Heterogeneous clusters and the load-prediction model (§VIII future
// work): 8 ranks, half 3x slower. The calibrated policy refits per-rank
// speeds from the uniform run's own observations (CostFeedback ->
// plan_params, the same hooks `lbectl search --schedule calibrated` uses)
// and its weighted re-plan restores balance; work stealing attacks the
// same skew at runtime instead; predicted per-rank cost tracks measured
// work units.
void ablation_heterogeneous(BenchContext& ctx) {
  using namespace lbe;
  Figure fig(
      "Ablation: heterogeneous",
      "calibrated re-plan, work stealing + load prediction on a "
      "heterogeneous cluster",
      "probe-fitted weights rebalance a heterogeneous cluster offline, "
      "stealing rebalances it at runtime; predicted per-rank load tracks "
      "measured work",
      {"config", "metric", "value"});

  constexpr std::uint64_t kEntries = 120000;
  constexpr std::uint32_t kQueries = 96;
  const auto& workload = ctx.workload(kEntries, kQueries);
  const auto params = bench::paper_params();

  constexpr int kRanks = 8;
  const std::vector<double> slowdown = {1.0, 1.0, 1.0, 1.0,
                                        3.0, 3.0, 3.0, 3.0};

  core::PartitionParams base_partition;
  base_partition.policy = core::Policy::kCyclic;
  base_partition.ranks = kRanks;

  struct HeteroRun {
    search::DistributedReport report;      ///< first repeat (counters)
    std::vector<double> query_seconds;     ///< per-rank min over repeats
    double wall = 0.0;
  };
  // Best-of-3 per rank: single-core timing noise is strictly additive.
  auto run_with = [&](const core::PartitionParams& partition,
                      core::Schedule schedule, std::uint32_t batch) {
    core::LbeParams lbe;
    lbe.partition = partition;
    const core::LbePlan plan(workload.base_peptides, workload.mods,
                             workload.variant_params, lbe);
    search::DistributedParams run_params = params;
    run_params.result_batch = batch;
    run_params.schedule.schedule = schedule;
    HeteroRun out;
    for (int rep = 0; rep < 3; ++rep) {
      mpi::ClusterOptions options;
      options.ranks = kRanks;
      options.engine = mpi::Engine::kVirtual;
      options.measured_time = true;
      options.slowdown = slowdown;
      mpi::Cluster cluster(options);
      auto report = search::run_distributed_search(
          cluster, plan, workload.queries, run_params);
      const auto seconds = report.query_phase_seconds();
      if (rep == 0) {
        out.query_seconds = seconds;
        out.report = std::move(report);
      } else {
        for (std::size_t r = 0; r < seconds.size(); ++r) {
          out.query_seconds[r] = std::min(out.query_seconds[r], seconds[r]);
        }
      }
    }
    for (const double t : out.query_seconds) out.wall = std::max(out.wall, t);
    return out;
  };

  // Uniform cyclic on heterogeneous hardware.
  const auto uniform = run_with(base_partition, core::Schedule::kLbeStatic,
                                params.result_batch);
  const double uniform_li = load_imbalance(uniform.query_seconds);
  const double uniform_wall = uniform.wall;

  // Calibrated re-plan through the policy hooks: the uniform run doubles as
  // the probe, its observed per-rank seconds + deterministic work units are
  // the CostFeedback, and CalibratedPolicy fits the speed weights — the
  // bench no longer hand-codes 1/slowdown anywhere.
  core::CostFeedback feedback;
  feedback.rank_seconds = uniform.query_seconds;
  feedback.rank_cost_units = work_unit_loads(uniform.report.work);
  const core::PartitionParams fitted =
      core::make_policy(core::Schedule::kCalibrated)
          ->plan_params(base_partition, feedback);
  const auto weighted = run_with(fitted, core::Schedule::kLbeStatic,
                                 params.result_batch);
  const double weighted_li = load_imbalance(weighted.query_seconds);
  const double weighted_wall = weighted.wall;

  // Runtime rebalancing on the unchanged static plan: static vs stealing
  // side by side, small result batches so the steal ledger has granularity
  // to move (the schedule suite owns the strict 1.2x makespan gate).
  const auto static_sched =
      run_with(base_partition, core::Schedule::kLbeStatic, 8);
  const auto stealing_sched =
      run_with(base_partition, core::Schedule::kStealing, 8);
  std::uint64_t stolen = 0;
  for (const auto batches : stealing_sched.report.batches_stolen) {
    stolen += batches;
  }

  fig.row({"uniform_cyclic", "time_li_pct", bench::fmt(100.0 * uniform_li)});
  fig.row({"calibrated", "time_li_pct", bench::fmt(100.0 * weighted_li)});
  fig.row({"uniform_cyclic", "query_wall_s", bench::fmt(uniform_wall)});
  fig.row({"calibrated", "query_wall_s", bench::fmt(weighted_wall)});
  fig.row({"static_batch8", "query_wall_s", bench::fmt(static_sched.wall)});
  fig.row({"stealing_batch8", "query_wall_s",
           bench::fmt(stealing_sched.wall)});
  fig.row({"stealing_batch8", "batches_stolen", bench::fmt(stolen)});
  for (int rank = 0; rank < kRanks; ++rank) {
    const auto r = static_cast<std::size_t>(rank);
    fig.row({"uniform_rank" + std::to_string(rank), "query_s",
             bench::fmt(uniform.query_seconds[r])});
    fig.row({"calibrated_rank" + std::to_string(rank), "query_s",
             bench::fmt(weighted.query_seconds[r])});
    fig.row({"calibrated_rank" + std::to_string(rank), "weight",
             bench::fmt(fitted.weights.empty() ? 0.0 : fitted.weights[r])});
    fig.row({"calibrated_rank" + std::to_string(rank), "entries",
             bench::fmt(weighted.report.index_entries[r])});
  }

  // Load model: predicted per-rank cost vs measured work units on the
  // uniform plan (deterministic counters; rebuilt outside the cluster).
  {
    core::LbeParams lbe;
    lbe.partition.policy = core::Policy::kCyclic;
    lbe.partition.ranks = kRanks;
    const core::LbePlan plan(workload.base_peptides, workload.mods,
                             workload.variant_params, lbe);
    std::vector<double> predicted;
    for (int rank = 0; rank < kRanks; ++rank) {
      const index::ChunkedIndex partial(plan.build_rank_store(rank),
                                        plan.mods(), params.index,
                                        params.chunking);
      predicted.push_back(search::predict_query_cost(
          partial, workload.queries, params.search.filter,
          params.search.preprocess));
    }
    std::vector<double> measured;
    for (const auto& work : uniform.report.work) {
      measured.push_back(static_cast<double>(work.postings_touched));
    }
    const double exact_r =
        search::prediction_correlation(predicted, measured);
    const std::vector<double> cost_units =
        work_unit_loads(uniform.report.work);
    const double cost_r =
        search::prediction_correlation(predicted, cost_units);
    fig.row({"load_model", "corr_vs_postings", bench::fmt(exact_r)});
    fig.row({"load_model", "corr_vs_cost_units", bench::fmt(cost_r)});
    fig.check("prediction matches postings traffic (r > 0.999)",
              exact_r > 0.999);
    fig.check("prediction tracks total cost (r > 0.9)", cost_r > 0.9);
    ctx.result.add_metric("load_model_corr_postings", exact_r);
  }

  // Residual imbalance remains by design: every rank pays a fixed per-query
  // cost (preprocessing + bin scans) that entry-count weighting cannot move,
  // and on slow ranks that fixed cost is multiplied by the slowdown. The
  // paper-scale regime (work >> fixed cost) would push weighted LI further
  // down; at this scale we demand a halving plus a meaningful makespan cut.
  fig.check("uniform cyclic is imbalanced on heterogeneous ranks (LI > 40%)",
            uniform_li > 0.40);
  fig.check("calibration fits weighted params from the probe",
            fitted.policy == core::Policy::kWeighted &&
                fitted.weights.size() == kRanks);
  fig.check("calibrated re-plan at least halves the LI",
            weighted_li < 0.5 * uniform_li);
  fig.check("calibrated LI below 30%", weighted_li < 0.30);
  fig.check("calibrated re-plan cuts the query makespan by > 15%",
            weighted_wall < 0.85 * uniform_wall);
  fig.check("stealing beats the static schedule on the same plan",
            stealing_sched.wall < static_sched.wall);
  fig.check("stealing migrates batches on the heterogeneous cluster",
            stolen > 0);
  fig.finish();
  ctx.absorb_checks(fig);
  ctx.result.add_metric("uniform_li", uniform_li);
  ctx.result.add_metric("calibrated_li", weighted_li);
  ctx.result.add_metric("stealing_speedup",
                        static_sched.wall / stealing_sched.wall);
}

}  // namespace

void register_ablation_benches(BenchRegistry& registry) {
  registry.add(BenchmarkDef{"ablation_commcost", "ablation",
                            "network cost model x batch size",
                            ablation_commcost});
  registry.add(BenchmarkDef{"ablation_grouping", "ablation",
                            "grouping parameter sensitivity",
                            ablation_grouping});
  registry.add(BenchmarkDef{"ablation_heterogeneous", "ablation",
                            "heterogeneous cluster + load model",
                            ablation_heterogeneous});
}

}  // namespace lbe::perf
