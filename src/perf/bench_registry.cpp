#include "perf/bench_registry.hpp"

#include <cstdio>
#include <filesystem>

#include "common/error.hpp"
#include "common/timer.hpp"
#include "perf/figure.hpp"

namespace lbe::perf {

const synth::Workload& BenchContext::workload(std::uint64_t entries,
                                              std::uint32_t queries) {
  for (const CacheEntry& entry : cache_) {
    if (entry.entries == entries && entry.queries == queries) {
      return entry.workload;
    }
  }
  Stopwatch timer;
  cache_.push_back(CacheEntry{
      entries, queries, synth::make_paper_workload(entries, queries)});
  std::fprintf(stderr, "# workload %llu entries / %u queries: %.2fs\n",
               static_cast<unsigned long long>(entries), queries,
               timer.seconds());
  return cache_.back().workload;
}

SampleStats BenchContext::time_hot(const std::function<void()>& hot) {
  std::vector<double> samples;
  samples.reserve(static_cast<std::size_t>(repeat_));
  for (int rep = 0; rep < repeat_; ++rep) {
    Stopwatch timer;
    hot();
    samples.push_back(timer.seconds());
  }
  result.wall_samples = samples;
  result.wall_seconds = summarize(std::move(samples));
  return result.wall_seconds;
}

void BenchContext::absorb_checks(const Figure& figure) {
  result.checks_total += figure.checks();
  result.checks_failed += figure.failures();
}

BenchRegistry& BenchRegistry::instance() {
  static BenchRegistry registry;
  return registry;
}

void BenchRegistry::add(BenchmarkDef def) {
  LBE_CHECK(!def.name.empty() && !def.suite.empty(),
            "benchmark needs a name and a suite");
  for (const BenchmarkDef& existing : benches_) {
    LBE_CHECK(existing.name != def.name,
              "duplicate benchmark name: " + def.name);
  }
  benches_.push_back(std::move(def));
}

std::vector<std::string> BenchRegistry::suites() const {
  std::vector<std::string> names;
  for (const BenchmarkDef& bench : benches_) {
    bool known = false;
    for (const std::string& name : names) known = known || name == bench.suite;
    if (!known) names.push_back(bench.suite);
  }
  return names;
}

void register_all_benches() {
  static const bool registered = [] {
    BenchRegistry& registry = BenchRegistry::instance();
    register_smoke_benches(registry);
    register_micro_benches(registry);
    register_index_io_benches(registry);
    register_serve_benches(registry);
    register_mpi_backend_benches(registry);
    register_open_benches(registry);
    register_schedule_benches(registry);
    register_figure_benches(registry);
    register_ablation_benches(registry);
    return true;
  }();
  (void)registered;
}

namespace {

/// Runs one benchmark definition, timing the whole body as a fallback
/// sample when the body did not call time_hot itself (figure suites).
BenchResult run_one(const BenchmarkDef& bench, BenchContext& ctx) {
  std::printf("# ==== %s (%s) ====\n", bench.name.c_str(),
              bench.suite.c_str());
  ctx.result = BenchResult{};
  ctx.result.name = bench.name;
  Stopwatch total;
  bench.fn(ctx);
  const double total_seconds = total.seconds();
  if (ctx.result.wall_samples.empty()) {
    ctx.result.wall_samples = {total_seconds};
    ctx.result.wall_seconds = summarize(ctx.result.wall_samples);
  }
  ctx.result.add_metric("total_seconds", total_seconds);
  return ctx.result;
}

}  // namespace

int run_suite(const BenchRunOptions& options) {
  LBE_CHECK(options.repeat >= 1, "--repeat must be >= 1");
  register_all_benches();

  BenchContext ctx(options.repeat);
  BenchReport report;
  report.suite = options.suite;
  report.repeat = options.repeat;
  report.provenance = current_provenance();

  int ran = 0;
  int checks_failed = 0;
  for (const BenchmarkDef& bench : BenchRegistry::instance().all()) {
    if (bench.suite != options.suite) continue;
    if (!options.filter.empty() &&
        bench.name.find(options.filter) == std::string::npos) {
      continue;
    }
    report.benchmarks.push_back(run_one(bench, ctx));
    checks_failed += report.benchmarks.back().checks_failed;
    ++ran;
  }
  if (ran == 0) {
    std::fprintf(stderr, "lbebench: no benchmark matches suite '%s'%s%s\n",
                 options.suite.c_str(),
                 options.filter.empty() ? "" : " filter ",
                 options.filter.c_str());
    return 1;
  }
  report.peak_rss_bytes = peak_rss_bytes();

  if (options.write_json) {
    std::filesystem::create_directories(options.out_dir);
    const std::string path =
        options.out_dir + "/BENCH_" + options.suite + ".json";
    save_report_file(path, report);
    std::printf("# wrote %s (%d benchmarks, repeat=%d)\n", path.c_str(), ran,
                options.repeat);
  }

  int regressions = 0;
  if (!options.baseline_path.empty()) {
    const BenchReport baseline = load_report_file(options.baseline_path);
    const auto print_findings = [&](const std::vector<RegressionFinding>&
                                        findings,
                                    double max_regress,
                                    bool lower_is_better) {
      for (const RegressionFinding& finding : findings) {
        if (finding.current == 0.0 && finding.ratio == 0.0) {
          std::fprintf(stderr,
                       "REGRESSION %s: %s missing from the current report "
                       "(baseline %.1f) — refresh the baseline if this "
                       "benchmark was renamed or removed\n",
                       finding.benchmark.c_str(), finding.metric.c_str(),
                       finding.baseline);
          continue;
        }
        std::fprintf(stderr,
                     "REGRESSION %s: %s %.1f -> %.1f (%.0f%% of baseline; "
                     "%s is %.0f%%)\n",
                     finding.benchmark.c_str(), finding.metric.c_str(),
                     finding.baseline, finding.current, 100.0 * finding.ratio,
                     lower_is_better ? "ceiling" : "floor",
                     lower_is_better ? 100.0 / (1.0 - max_regress)
                                     : 100.0 * (1.0 - max_regress));
      }
    };
    // A filtered run is deliberately partial: gate only what actually ran.
    // Full-suite runs (CI) also flag baseline benchmarks that vanished.
    const auto findings =
        find_regressions(baseline, report, options.max_regress,
                         "queries_per_sec", options.filter.empty());
    print_findings(findings, options.max_regress, false);
    regressions = static_cast<int>(findings.size());
    if (findings.empty()) {
      std::printf("# baseline gate: no %s regression beyond %.0f%% vs %s\n",
                  "queries_per_sec", 100.0 * options.max_regress,
                  options.baseline_path.c_str());
    }
    // Lower-is-better metrics (latency percentiles) gate with their own,
    // looser tolerance: tail latency is noisier than median throughput.
    for (const std::string& metric : options.gate_lower) {
      const auto lower_findings = find_regressions(
          baseline, report, options.lower_max_regress, metric,
          options.filter.empty(), /*lower_is_better=*/true);
      print_findings(lower_findings, options.lower_max_regress, true);
      regressions += static_cast<int>(lower_findings.size());
      if (lower_findings.empty()) {
        std::printf(
            "# baseline gate: no %s growth beyond %.0f%% of baseline vs %s\n",
            metric.c_str(), 100.0 / (1.0 - options.lower_max_regress),
            options.baseline_path.c_str());
      }
    }
  }

  if (checks_failed > 0) {
    std::fprintf(stderr, "lbebench: %d shape check(s) failed\n",
                 checks_failed);
    return 1;
  }
  return regressions > 0 ? 2 : 0;
}

int run_single_benchmark(const std::string& name, int repeat) {
  register_all_benches();
  for (const BenchmarkDef& bench : BenchRegistry::instance().all()) {
    if (bench.name != name) continue;
    BenchContext ctx(repeat);
    const BenchResult result = run_one(bench, ctx);
    return result.checks_failed == 0 ? 0 : 1;
  }
  std::fprintf(stderr, "lbebench: unknown benchmark '%s'\n", name.c_str());
  return 1;
}

}  // namespace lbe::perf
