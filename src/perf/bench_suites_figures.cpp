// Suite "figures" — the paper-figure reproductions (Figs. 5-11, §V-A
// stats), registered on the lbebench harness. Each benchmark prints its
// figure CSV + shape checks exactly as the standalone bench/fig*.cpp
// binaries always did, and additionally reports its headline quantities as
// machine-readable metrics in BENCH_figures.json.
#include <iostream>
#include <map>

#include "common/strings.hpp"
#include "perf/bench_common.hpp"
#include "perf/bench_registry.hpp"
#include "search/load_model.hpp"

namespace lbe::perf {

namespace {

// Fig. 5 — Memory footprint: distributed SLM index vs the shared-memory
// implementation, for increasing index size. Paper claim: ~6.4% overhead,
// varying inversely with the partition size per MPI process.
void fig5_memory_footprint(BenchContext& ctx) {
  using namespace lbe;
  Figure fig(
      "Fig. 5", "Memory footprint of distributed vs shared-memory SLM index",
      "distributed ~= shared + small overhead; overhead shrinks as the "
      "per-rank partition grows",
      {"index_entries", "series", "bytes", "bytes_per_entry"});

  const auto params = bench::paper_params();
  constexpr std::uint32_t kQueries = 16;  // memory bench: queries irrelevant

  std::vector<double> overhead_percent;
  for (const std::uint64_t entries : bench::index_sizes()) {
    const auto& workload = ctx.workload(entries, kQueries);

    // Shared-memory baseline: one global index in one address space.
    core::LbeParams lbe;
    lbe.partition.ranks = bench::kPaperRanks;
    lbe.partition.policy = core::Policy::kCyclic;
    const core::LbePlan plan(workload.base_peptides, workload.mods,
                             workload.variant_params, lbe);
    const auto shared =
        search::run_shared_baseline(plan, workload.queries, params);

    // Distributed: 16 partial indexes plus the master's mapping table.
    const auto run = bench::run_distributed(workload, core::Policy::kCyclic,
                                            bench::kPaperRanks, params,
                                            /*measured_time=*/false);
    std::uint64_t distributed = run.report.mapping_bytes;
    for (const auto bytes : run.report.index_bytes) distributed += bytes;

    const double n = static_cast<double>(plan.num_variants());
    fig.row({bench::fmt(plan.num_variants()), "shared",
             bench::fmt(shared.index_bytes),
             bench::fmt(static_cast<double>(shared.index_bytes) / n)});
    fig.row({bench::fmt(plan.num_variants()), "distributed",
             bench::fmt(distributed),
             bench::fmt(static_cast<double>(distributed) / n)});

    const double overhead =
        100.0 * (static_cast<double>(distributed) -
                 static_cast<double>(shared.index_bytes)) /
        static_cast<double>(shared.index_bytes);
    overhead_percent.push_back(overhead);
    fig.note("entries=" + std::to_string(plan.num_variants()) +
             " shared=" + str::human_bytes(shared.index_bytes) +
             " distributed=" + str::human_bytes(distributed) +
             " overhead=" + bench::fmt(overhead) + "%");
  }

  for (std::size_t i = 0; i < overhead_percent.size(); ++i) {
    fig.check("distributed costs more than shared (per-rank fixed parts), "
              "size " + std::to_string(bench::index_sizes()[i]),
              overhead_percent[i] > 0.0);
  }
  fig.check(
      "overhead shrinks as partitions grow (paper: inverse relation)",
      overhead_percent.back() < overhead_percent.front());
  fig.check("overhead at the largest size is modest (< 60%)",
            overhead_percent.back() < 60.0);
  fig.finish();
  ctx.absorb_checks(fig);
  ctx.result.add_metric("overhead_pct_largest", overhead_percent.back());
  ctx.result.add_metric("overhead_pct_smallest", overhead_percent.front());
}

// Fig. 6 — Normalized load imbalance (Eq. 1) for 16 MPI processes with
// increasing index size, per distribution policy. Paper claim: LI <= 20%
// for Cyclic/Random vs ~120% for Chunk.
void fig6_load_imbalance(BenchContext& ctx) {
  using namespace lbe;
  Figure fig(
      "Fig. 6", "Load imbalance vs index size, 16 ranks",
      "LI <= 20% for cyclic/random vs ~120% for chunk partitioning",
      {"index_entries", "policy", "li_work_pct", "li_time_pct"});

  const auto params = bench::paper_params();
  constexpr std::uint32_t kQueries = 96;

  const std::vector<core::Policy> policies = {
      core::Policy::kChunk, core::Policy::kCyclic, core::Policy::kRandom};

  std::map<core::Policy, std::vector<double>> li_work;
  for (const std::uint64_t entries : bench::index_sizes()) {
    const auto& workload = ctx.workload(entries, kQueries);
    for (const core::Policy policy : policies) {
      const auto run = bench::run_distributed(workload, policy,
                                              bench::kPaperRanks, params);
      const double work_li =
          load_stats_from_work(run.report.work).imbalance;
      const double time_li =
          load_imbalance(run.report.query_phase_seconds());
      li_work[policy].push_back(work_li);
      fig.row({bench::fmt(entries), core::policy_name(policy),
               bench::fmt(100.0 * work_li), bench::fmt(100.0 * time_li)});
    }
  }

  // Per-size bounds carry slack at the smallest size: a 16th of 30k entries
  // is under 2k peptides per rank, a regime the paper (18M+) never touches.
  for (std::size_t i = 0; i < bench::index_sizes().size(); ++i) {
    const std::string size = std::to_string(bench::index_sizes()[i]);
    const double balanced_cap = i == 0 ? 0.30 : 0.25;
    fig.check("cyclic LI small at " + size,
              li_work[core::Policy::kCyclic][i] <= balanced_cap);
    fig.check("random LI small at " + size,
              li_work[core::Policy::kRandom][i] <= balanced_cap);
    fig.check("chunk LI at least 3x cyclic LI at " + size,
              li_work[core::Policy::kChunk][i] >=
                  3.0 * li_work[core::Policy::kCyclic][i]);
    fig.check("chunk LI exceeds 40% at " + size,
              li_work[core::Policy::kChunk][i] > 0.40);
  }
  fig.check("mean cyclic LI <= 20% (the paper's headline bound)",
            bench::mean(li_work[core::Policy::kCyclic]) <= 0.20);
  fig.check("mean random LI <= 20% (the paper's headline bound)",
            bench::mean(li_work[core::Policy::kRandom]) <= 0.20);
  fig.finish();
  ctx.absorb_checks(fig);
  ctx.result.add_metric("mean_cyclic_li",
                        bench::mean(li_work[core::Policy::kCyclic]));
  ctx.result.add_metric("mean_random_li",
                        bench::mean(li_work[core::Policy::kRandom]));
  ctx.result.add_metric("mean_chunk_li",
                        bench::mean(li_work[core::Policy::kChunk]));
}

// Fig. 7 — Query time vs number of MPI processes (cyclic partitioning),
// one series per index size. Paper claim: query time falls roughly as 1/p.
void fig7_query_time(BenchContext& ctx) {
  using namespace lbe;
  Figure fig(
      "Fig. 7", "Query time vs MPI processes (cyclic policy)",
      "query time decreases ~1/p with more CPUs at every index size",
      {"ranks", "index_entries", "query_seconds"});

  const auto params = bench::paper_params();
  constexpr std::uint32_t kQueries = 96;

  std::map<std::uint64_t, std::vector<double>> series;  // size -> t(p)
  for (const std::uint64_t entries : bench::index_sizes()) {
    const auto& workload = ctx.workload(entries, kQueries);
    for (const int ranks : bench::rank_sweep()) {
      const auto run = bench::run_distributed_repeated(
          workload, core::Policy::kCyclic, ranks, params);
      series[entries].push_back(run.query_wall_min);
      fig.row({bench::fmt(ranks), bench::fmt(entries),
               bench::fmt(run.query_wall_min)});
    }
  }

  const auto& sweep = bench::rank_sweep();
  const std::size_t i16 = static_cast<std::size_t>(
      std::find(sweep.begin(), sweep.end(), 16) - sweep.begin());
  for (const std::uint64_t entries : bench::index_sizes()) {
    const auto& times = series[entries];
    // p = 2 -> 16 is an 8x resource increase; demand at least 2.5x less
    // wall time (ideal 8x) to absorb single-core timing noise.
    fig.check("query time at p=16 well below p=2, size " +
                  std::to_string(entries),
              times[i16] < times[0] / 2.5);
  }
  for (std::size_t i = 0; i + 1 < bench::index_sizes().size(); ++i) {
    fig.check("bigger index costs more at p=16 (" +
                  std::to_string(bench::index_sizes()[i]) + " vs " +
                  std::to_string(bench::index_sizes()[i + 1]) + ")",
              series[bench::index_sizes()[i]][i16] <
                  series[bench::index_sizes()[i + 1]][i16] * 1.15);
  }
  fig.finish();
  ctx.absorb_checks(fig);
  ctx.result.add_metric("query_seconds_p16_largest",
                        series[bench::index_sizes().back()][i16]);
}

// Fig. 8 — Query-time speedup vs number of MPI processes (cyclic policy).
// Paper claim: near-linear scaling; base case 2 CPUs (smallest) / 4 CPUs.
void fig8_query_speedup(BenchContext& ctx) {
  using namespace lbe;
  Figure fig(
      "Fig. 8", "Query speedup vs MPI processes (cyclic policy)",
      "near-linear query speedup; base case 2 CPUs (smallest index) / 4 CPUs",
      {"ranks", "index_entries", "speedup", "efficiency"});

  const auto params = bench::paper_params();
  constexpr std::uint32_t kQueries = 96;
  const auto& sweep = bench::rank_sweep();

  std::map<std::uint64_t, std::map<int, double>> speedups;
  for (std::size_t s = 0; s < bench::index_sizes().size(); ++s) {
    const std::uint64_t entries = bench::index_sizes()[s];
    const auto& workload = ctx.workload(entries, kQueries);
    // Paper convention: base = 2 CPUs for the smallest index, 4 otherwise.
    const int base_ranks = s == 0 ? 2 : 4;

    std::map<int, double> wall;
    for (const int ranks : sweep) {
      const auto run = bench::run_distributed_repeated(
          workload, core::Policy::kCyclic, ranks, params);
      wall[ranks] = run.query_wall_min;
    }
    for (const int ranks : sweep) {
      const double speedup =
          speedup_vs_base(wall[base_ranks], base_ranks, wall[ranks]);
      speedups[entries][ranks] = speedup;
      fig.row({bench::fmt(ranks), bench::fmt(entries), bench::fmt(speedup),
               bench::fmt(efficiency(speedup, ranks))});
    }
  }

  // Fixed per-rank work (every rank preprocesses every query — §III-E)
  // erodes efficiency at our scaled-down sizes; the paper's 18M+ indexes
  // sit deep in the work-dominated regime. Demand near-linear efficiency
  // where the parallel fraction is large and a floor elsewhere.
  for (std::size_t s = 0; s < bench::index_sizes().size(); ++s) {
    const std::uint64_t entries = bench::index_sizes()[s];
    fig.check("speedup grows from p=4 to p=16, size " +
                  std::to_string(entries),
              speedups[entries][16] > speedups[entries][4]);
    const bool large = s + 2 >= bench::index_sizes().size();
    const double floor = large ? 0.5 : 0.3;
    fig.check("efficiency at p=16 >= " + std::to_string(floor) + ", size " +
                  std::to_string(entries),
              efficiency(speedups[entries][16], 16) >= floor);
  }
  fig.finish();
  ctx.absorb_checks(fig);
  ctx.result.add_metric(
      "efficiency_p16_largest",
      efficiency(speedups[bench::index_sizes().back()][16], 16));
}

// Fig. 9 — Total execution time vs number of MPI processes (cyclic
// policy). Paper claim: total time falls with CPUs but flattens.
void fig9_execution_time(BenchContext& ctx) {
  using namespace lbe;
  Figure fig(
      "Fig. 9", "Total execution time vs MPI processes (cyclic policy)",
      "execution time decreases with CPUs but flattens (serial fraction)",
      {"ranks", "index_entries", "execution_seconds", "prep_seconds"});

  const auto params = bench::paper_params();
  constexpr std::uint32_t kQueries = 96;
  const auto& sweep = bench::rank_sweep();

  std::map<std::uint64_t, std::vector<double>> series;
  for (const std::uint64_t entries : bench::index_sizes()) {
    const auto& workload = ctx.workload(entries, kQueries);
    for (const int ranks : sweep) {
      const auto run = bench::run_distributed_repeated(
          workload, core::Policy::kCyclic, ranks, params);
      series[entries].push_back(run.makespan_min);
      fig.row({bench::fmt(ranks), bench::fmt(entries),
               bench::fmt(run.makespan_min), bench::fmt(run.prep_seconds)});
    }
  }

  const std::size_t i2 = 0;
  const std::size_t i16 = static_cast<std::size_t>(
      std::find(sweep.begin(), sweep.end(), 16) - sweep.begin());
  for (const std::uint64_t entries : bench::index_sizes()) {
    const auto& times = series[entries];
    fig.check("total time falls from p=2 to p=16, size " +
                  std::to_string(entries),
              times[i16] < times[i2]);
  }
  fig.finish();
  ctx.absorb_checks(fig);
  ctx.result.add_metric("makespan_p16_largest",
                        series[bench::index_sizes().back()][i16]);
}

// Fig. 10 — Total-execution speedup vs number of MPI processes.
// Paper claim: Amdahl-bounded; scalability improves as the index grows.
void fig10_execution_speedup(BenchContext& ctx) {
  using namespace lbe;
  Figure fig(
      "Fig. 10", "Execution speedup vs MPI processes (cyclic policy)",
      "speedup saturates (Amdahl); scalability improves with index size",
      {"ranks", "index_entries", "speedup", "efficiency"});

  const auto params = bench::paper_params();
  constexpr std::uint32_t kQueries = 96;
  const auto& sweep = bench::rank_sweep();

  std::map<std::uint64_t, std::map<int, double>> speedups;
  for (std::size_t s = 0; s < bench::index_sizes().size(); ++s) {
    const std::uint64_t entries = bench::index_sizes()[s];
    const auto& workload = ctx.workload(entries, kQueries);
    const int base_ranks = s == 0 ? 2 : 4;  // paper's Fig. 8/10 convention

    std::map<int, double> wall;
    for (const int ranks : sweep) {
      const auto run = bench::run_distributed_repeated(
          workload, core::Policy::kCyclic, ranks, params);
      wall[ranks] = run.makespan_min;
    }
    for (const int ranks : sweep) {
      const double speedup =
          speedup_vs_base(wall[base_ranks], base_ranks, wall[ranks]);
      speedups[entries][ranks] = speedup;
      fig.row({bench::fmt(ranks), bench::fmt(entries), bench::fmt(speedup),
               bench::fmt(efficiency(speedup, ranks))});
    }
  }

  for (const std::uint64_t entries : bench::index_sizes()) {
    fig.check("speedup still improves 4 -> 16 CPUs, size " +
                  std::to_string(entries),
              speedups[entries][16] > speedups[entries][4]);
    fig.check("speedup is sub-linear at p=16 (Amdahl), size " +
                  std::to_string(entries),
              speedups[entries][16] < 16.0);
  }
  // Query time grows with index size while the serial prep grows slower, so
  // the parallel fraction — and with it the speedup at p=16 — increases.
  fig.check("largest index scales better than smallest at p=16",
            speedups[bench::index_sizes().back()][16] >
                speedups[bench::index_sizes().front()][16]);
  fig.finish();
  ctx.absorb_checks(fig);
  ctx.result.add_metric("speedup_p16_largest",
                        speedups[bench::index_sizes().back()][16]);
}

// Fig. 11 — CPU-time speedup of LBE partitioning (Cyclic / Random) over
// conventional Chunk partitioning. Paper claim: ~8.6x / ~7.5x on average.
void fig11_policy_speedup(BenchContext& ctx) {
  using namespace lbe;
  Figure fig(
      "Fig. 11", "Wasted-CPU-time speedup of LBE policies over chunk, p=16",
      "order-of-magnitude speedup by load balance (paper avg: cyclic ~8.6x, "
      "random ~7.5x)",
      {"index_entries", "policy", "twst_chunk_over_twst_policy"});

  const auto params = bench::paper_params();
  constexpr std::uint32_t kQueries = 96;

  std::map<core::Policy, std::vector<double>> ratios;
  for (const std::uint64_t entries : bench::index_sizes()) {
    const auto& workload = ctx.workload(entries, kQueries);

    std::map<core::Policy, LoadStats> stats;
    for (const core::Policy policy :
         {core::Policy::kChunk, core::Policy::kCyclic,
          core::Policy::kRandom}) {
      const auto run = bench::run_distributed(workload, policy,
                                              bench::kPaperRanks, params);
      stats[policy] = load_stats_from_work(run.report.work);
    }
    for (const core::Policy policy :
         {core::Policy::kCyclic, core::Policy::kRandom}) {
      // Twst = N * ΔTmax; N identical, so the ratio reduces to ΔTmax ratio.
      const double ratio = stats[core::Policy::kChunk].wasted_cpu /
                           std::max(stats[policy].wasted_cpu, 1e-12);
      ratios[policy].push_back(ratio);
      fig.row({bench::fmt(entries), core::policy_name(policy),
               bench::fmt(ratio)});
    }
  }

  for (std::size_t i = 0; i < bench::index_sizes().size(); ++i) {
    const std::string size = std::to_string(bench::index_sizes()[i]);
    fig.check("cyclic beats chunk by > 3x at " + size,
              ratios[core::Policy::kCyclic][i] > 3.0);
    fig.check("random beats chunk by > 3x at " + size,
              ratios[core::Policy::kRandom][i] > 3.0);
  }
  const double mean_cyclic = bench::mean(ratios[core::Policy::kCyclic]);
  const double mean_random = bench::mean(ratios[core::Policy::kRandom]);
  fig.note("mean cyclic speedup: " + bench::fmt(mean_cyclic) +
           "x (paper: ~8.6x)");
  fig.note("mean random speedup: " + bench::fmt(mean_random) +
           "x (paper: ~7.5x)");
  fig.check("mean cyclic speedup is order-of-magnitude (>= 5x)",
            mean_cyclic >= 5.0);
  fig.check("mean random speedup is order-of-magnitude (>= 5x)",
            mean_random >= 5.0);
  fig.finish();
  ctx.absorb_checks(fig);
  ctx.result.add_metric("mean_cyclic_speedup", mean_cyclic);
  ctx.result.add_metric("mean_random_speedup", mean_random);
}

// §V-A search statistics — candidate PSM volume under open-search
// settings. The density (cPSMs per query per million entries) is the
// scale-free quantity our synthetic analogue reproduces.
void stats_cpsm(BenchContext& ctx) {
  using namespace lbe;
  Figure fig(
      "§V-A stats", "Candidate PSM volume under open-search settings",
      "open search yields tens of thousands of cPSMs per query at paper "
      "scale; density per million entries is scale-free",
      {"index_entries", "queries", "total_cpsms", "cpsms_per_query",
       "cpsms_per_query_per_Mentry"});

  const auto params = bench::paper_params();
  constexpr std::uint32_t kQueries = 128;

  std::vector<double> densities;
  for (const std::uint64_t entries : bench::index_sizes()) {
    const auto& workload = ctx.workload(entries, kQueries);
    const auto run = bench::run_distributed(workload, core::Policy::kCyclic,
                                            bench::kPaperRanks, params,
                                            /*measured_time=*/false);
    std::uint64_t cpsms = 0;
    for (const auto& work : run.report.work) cpsms += work.candidates;
    const double per_query =
        static_cast<double>(cpsms) / static_cast<double>(kQueries);
    const double density =
        per_query / (static_cast<double>(entries) / 1e6);
    densities.push_back(density);
    fig.row({bench::fmt(entries), bench::fmt(std::uint64_t{kQueries}),
             bench::fmt(cpsms), bench::fmt(per_query),
             bench::fmt(density)});
  }

  fig.note("paper: 73,723 cPSMs/query at 49.45M entries = 1,491 "
           "cPSMs/query/Mentry");
  // Small synthetic databases are denser in near-duplicate peptides than
  // the human proteome, so density falls toward the paper's value as the
  // index grows; check the trend plus the largest point.
  for (std::size_t i = 1; i < densities.size(); ++i) {
    fig.check("cPSM density falls toward paper scale (" +
                  std::to_string(bench::index_sizes()[i - 1]) + " -> " +
                  std::to_string(bench::index_sizes()[i]) + ")",
              densities[i] < densities[i - 1]);
  }
  fig.check("largest-size density within 1 order of magnitude of the paper",
            densities.back() > 149.0 && densities.back() < 14910.0);
  fig.finish();
  ctx.absorb_checks(fig);
  ctx.result.add_metric("cpsm_density_largest", densities.back());
}

}  // namespace

void register_figure_benches(BenchRegistry& registry) {
  const auto add = [&registry](const char* name, const char* description,
                               BenchFn fn) {
    registry.add(BenchmarkDef{name, "figures", description, std::move(fn)});
  };
  add("fig5_memory_footprint", "distributed vs shared index memory",
      fig5_memory_footprint);
  add("fig6_load_imbalance", "Eq. 1 LI per policy vs index size",
      fig6_load_imbalance);
  add("fig7_query_time", "query time vs MPI processes", fig7_query_time);
  add("fig8_query_speedup", "query speedup vs MPI processes",
      fig8_query_speedup);
  add("fig9_execution_time", "total execution time vs MPI processes",
      fig9_execution_time);
  add("fig10_execution_speedup", "total-execution speedup vs MPI processes",
      fig10_execution_speedup);
  add("fig11_policy_speedup", "wasted-CPU speedup of LBE over chunk",
      fig11_policy_speedup);
  add("stats_cpsm", "cPSM volume under open search", stats_cpsm);
}

}  // namespace lbe::perf
