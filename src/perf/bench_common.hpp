// Shared scaffolding for the figure-reproduction benchmark suites.
//
// Scaling note: the paper sweeps 18M-49.45M index entries on a 4-node/16-core
// cluster with 32 GB RAM; these benches sweep tens to hundreds of thousands
// of entries so each figure regenerates in seconds on one core. All checks
// are *shape* checks (who wins, by what factor, where curves bend) — the
// algorithms are size-linear, so the shapes survive the scaling.
#pragma once

#include <algorithm>
#include <string>
#include <vector>

#include "common/csv.hpp"
#include "common/logging.hpp"
#include "common/timer.hpp"
#include "core/lbe_layer.hpp"
#include "perf/figure.hpp"
#include "perf/metrics.hpp"
#include "search/distributed.hpp"
#include "synth/workload.hpp"

namespace lbe::bench {

/// Scaled-down analogues of the paper's 18M / 30M / 41M / 49.45M sweep.
inline const std::vector<std::uint64_t>& index_sizes() {
  static const std::vector<std::uint64_t> kSizes = {30000, 60000, 120000,
                                                    200000};
  return kSizes;
}

/// The paper's cluster: 16 MPI processes (4 machines x 4 cores).
inline constexpr int kPaperRanks = 16;

/// MPI-process sweep of Figs. 7-10.
inline const std::vector<int>& rank_sweep() {
  static const std::vector<int> kRanks = {2, 4, 8, 12, 16, 20};
  return kRanks;
}

/// §V-A engine settings (scaled): r = 0.01, ΔF = 0.05 Da, ΔM = ∞ (open
/// search), shared-peak threshold 4, top-100 peaks.
inline search::DistributedParams paper_params() {
  search::DistributedParams params;
  params.index.resolution = 0.01;
  params.index.max_fragment_mz = 2000.0;
  params.index.fragments.max_fragment_charge = 1;
  params.search.preprocess.top_peaks = 100;
  params.search.filter.fragment_tolerance = 0.05;
  params.search.filter.shared_peak_min = 4;
  params.search.score.fragments = params.index.fragments;
  params.search.top_k = 5;
  params.search.rescore_depth = 32;
  params.result_batch = 256;
  return params;
}

struct RunResult {
  search::DistributedReport report;
  double prep_seconds = 0.0;  ///< measured LbePlan construction time
};

/// Builds the LBE plan (timed, charged as the serial prep term) and runs the
/// distributed search on a fresh virtual cluster with measured time.
inline RunResult run_distributed(const synth::Workload& workload,
                                 core::Policy policy, int ranks,
                                 const search::DistributedParams& base,
                                 bool measured_time = true) {
  core::LbeParams lbe;
  lbe.partition.policy = policy;
  lbe.partition.ranks = ranks;

  Stopwatch prep;
  const core::LbePlan plan(workload.base_peptides, workload.mods,
                           workload.variant_params, lbe);
  RunResult result;
  result.prep_seconds = prep.seconds();

  search::DistributedParams params = base;
  params.prep_seconds = result.prep_seconds;

  mpi::ClusterOptions options;
  options.ranks = ranks;
  options.engine = mpi::Engine::kVirtual;
  options.measured_time = measured_time;
  mpi::Cluster cluster(options);
  result.report = search::run_distributed_search(cluster, plan,
                                                 workload.queries, params);
  return result;
}

/// Timing-stabilized sweep point: repeats the run and keeps, per rank, the
/// MINIMUM observed query-phase seconds (noise on a shared single core is
/// strictly additive) plus the minimum makespan. The first run's report is
/// returned for the non-timing fields (work counters are deterministic).
struct RepeatedRun {
  search::DistributedReport report;       ///< first run (counters etc.)
  std::vector<double> query_seconds_min;  ///< per-rank best query phase
  double query_wall_min = 0.0;            ///< max over ranks of best times
  double makespan_min = 0.0;
  double prep_seconds = 0.0;
};

inline RepeatedRun run_distributed_repeated(
    const synth::Workload& workload, core::Policy policy, int ranks,
    const search::DistributedParams& base, int repeats = 3) {
  RepeatedRun out;
  for (int rep = 0; rep < repeats; ++rep) {
    RunResult run = run_distributed(workload, policy, ranks, base);
    const auto seconds = run.report.query_phase_seconds();
    if (rep == 0) {
      out.query_seconds_min = seconds;
      out.makespan_min = run.report.makespan;
      out.prep_seconds = run.prep_seconds;
      out.report = std::move(run.report);
    } else {
      for (std::size_t r = 0; r < seconds.size(); ++r) {
        out.query_seconds_min[r] = std::min(out.query_seconds_min[r],
                                            seconds[r]);
      }
      out.makespan_min = std::min(out.makespan_min, run.report.makespan);
      out.prep_seconds = std::min(out.prep_seconds, run.prep_seconds);
    }
  }
  for (const double t : out.query_seconds_min) {
    out.query_wall_min = std::max(out.query_wall_min, t);
  }
  return out;
}

inline std::string fmt(double v) { return CsvWriter::field(v); }
inline std::string fmt(std::uint64_t v) { return CsvWriter::field(v); }
inline std::string fmt(int v) { return CsvWriter::field(v); }

inline double mean(const std::vector<double>& v) {
  return perf::summarize(v).mean;
}

}  // namespace lbe::bench
