// Suite "micro" — kernel microbenchmarks for the code the pipeline spends
// its time in: banded edit distance (grouping), Algorithm 1, partitioning
// policies, fragmentation, index construction, preprocessing, and — the
// headline — shared-peak filtration, where the batched bin-span walk over
// a bit-packed index (decoded via the --simd kernel) is timed against the
// retained per-peak reference walk (query_reference) over the raw index
// and must deliver >= 1.3x throughput on identical results.
#include <algorithm>
#include <string>
#include <vector>

#include "chem/amino_acid.hpp"
#include "common/rng.hpp"
#include "common/timer.hpp"
#include "core/edit_distance.hpp"
#include "core/grouping.hpp"
#include "core/partition.hpp"
#include "index/chunked_index.hpp"
#include "index/posting_codec.hpp"
#include "perf/bench_common.hpp"
#include "perf/bench_registry.hpp"
#include "search/preprocess.hpp"
#include "search/query_engine.hpp"
#include "theospec/fragmenter.hpp"

namespace lbe::perf {

namespace {

using namespace lbe;

using synth::random_peptides;

// Keeps the optimizer from discarding a computed value.
template <typename T>
inline void consume(const T& value) {
  asm volatile("" : : "g"(&value) : "memory");
}

void micro_edit_distance(BenchContext& ctx) {
  Figure fig("micro: edit distance", "banded vs full edit distance",
             "the d-bounded band prunes most of the DP table",
             {"kernel", "pairs_per_sec"});
  const auto peptides = random_peptides(256, 1);
  constexpr int kPairs = 20000;

  const auto run_pairs = [&](auto&& distance) {
    std::size_t i = 0;
    for (int pair = 0; pair < kPairs; ++pair) {
      const auto& a = peptides[i % peptides.size()];
      const auto& b = peptides[(i + 1) % peptides.size()];
      consume(distance(a, b));
      ++i;
    }
  };

  const SampleStats full = ctx.time_hot([&] {
    run_pairs([](const std::string& a, const std::string& b) {
      return core::edit_distance(a, b);
    });
  });
  const double full_rate = kPairs / full.median;
  fig.row({"full", bench::fmt(full_rate)});

  const SampleStats banded = ctx.time_hot([&] {
    run_pairs([](const std::string& a, const std::string& b) {
      return core::bounded_edit_distance(a, b, 2);
    });
  });
  const double banded_rate = kPairs / banded.median;
  fig.row({"banded_d2", bench::fmt(banded_rate)});

  fig.check("banded (d=2) is faster than the full DP",
            banded_rate > full_rate);
  fig.finish();
  ctx.absorb_checks(fig);
  ctx.result.add_metric("full_pairs_per_sec", full_rate);
  ctx.result.add_metric("banded_pairs_per_sec", banded_rate);
}

void micro_grouping(BenchContext& ctx) {
  Figure fig("micro: grouping", "Algorithm 1 clustering throughput",
             "grouping stays fast enough to be the serial prep term",
             {"peptides", "peptides_per_sec"});
  constexpr std::size_t kCount = 4000;
  const auto peptides = random_peptides(kCount, 2);
  const SampleStats stats = ctx.time_hot([&] {
    auto copy = peptides;
    consume(core::group_peptides(std::move(copy), core::GroupingParams{}));
  });
  const double rate = static_cast<double>(kCount) / stats.median;
  fig.row({bench::fmt(std::uint64_t{kCount}), bench::fmt(rate)});
  fig.check("grouping throughput is positive", rate > 0.0);
  fig.finish();
  ctx.absorb_checks(fig);
  ctx.result.add_metric("peptides_per_sec", rate);
}

void micro_partition(BenchContext& ctx) {
  Figure fig("micro: partition", "partition policy throughput",
             "all policies are O(groups) and negligible next to grouping",
             {"policy", "entries_per_sec"});
  const std::vector<std::uint32_t> groups(5000, 20);  // 100k entries
  constexpr int kIters = 200;
  for (const core::Policy policy :
       {core::Policy::kChunk, core::Policy::kCyclic, core::Policy::kRandom}) {
    core::PartitionParams params;
    params.policy = policy;
    params.ranks = 16;
    const SampleStats stats = ctx.time_hot([&] {
      for (int i = 0; i < kIters; ++i) {
        consume(core::partition(groups, params));
      }
    });
    const double rate = 100000.0 * kIters / stats.median;
    fig.row({core::policy_name(policy), bench::fmt(rate)});
    ctx.result.add_metric(std::string(core::policy_name(policy)) +
                              "_entries_per_sec",
                          rate);
  }
  fig.check("partitioning completed", true);
  fig.finish();
  ctx.absorb_checks(fig);
}

void micro_index_build(BenchContext& ctx) {
  Figure fig("micro: index build", "SLM index construction throughput",
             "two-pass CSR build is size-linear",
             {"peptides", "entries_per_sec"});
  const chem::ModificationSet mods = chem::ModificationSet::paper_default();
  index::IndexParams params;
  params.fragments.max_fragment_charge = 1;
  constexpr std::size_t kCount = 4000;
  index::PeptideStore store(&mods);
  for (auto& seq : random_peptides(kCount, 3)) {
    store.add(chem::Peptide(std::move(seq)), mods);
  }
  const SampleStats stats = ctx.time_hot([&] {
    const index::SlmIndex index(store, mods, params);
    consume(index.num_postings());
  });
  const double rate = static_cast<double>(kCount) / stats.median;
  fig.row({bench::fmt(std::uint64_t{kCount}), bench::fmt(rate)});
  fig.check("index build throughput is positive", rate > 0.0);
  fig.finish();
  ctx.absorb_checks(fig);
  ctx.result.add_metric("entries_per_sec", rate);
}

void micro_preprocess(BenchContext& ctx) {
  Figure fig("micro: preprocess", "query preprocessing throughput",
             "top-N selection is the fixed per-query cost every rank pays",
             {"peaks", "spectra_per_sec"});
  Xoshiro256 rng(4);
  chem::Spectrum spectrum;
  for (int i = 0; i < 500; ++i) {
    spectrum.add_peak(rng.uniform(100.0, 2000.0),
                      static_cast<float>(rng.uniform(1.0, 1000.0)));
  }
  spectrum.finalize();
  const search::PreprocessParams params;
  constexpr int kIters = 2000;
  const SampleStats stats = ctx.time_hot([&] {
    for (int i = 0; i < kIters; ++i) {
      consume(search::preprocess(spectrum, params));
    }
  });
  const double rate = kIters / stats.median;
  fig.row({"500", bench::fmt(rate)});
  fig.check("preprocess throughput is positive", rate > 0.0);
  fig.finish();
  ctx.absorb_checks(fig);
  ctx.result.add_metric("spectra_per_sec", rate);
}

// The tentpole gate: batched bin-span filtration over a bit-packed
// (format v4) index — posting spans decoded through the active SIMD
// kernel (lbebench --simd) — vs the per-peak reference walk over the raw
// u32 index, with result equivalence asserted in-line. CI runs this bench
// once per ISA level and gates the 1.3x floor on each.
void micro_filtration_speedup(BenchContext& ctx) {
  namespace codec = index::codec;
  Figure fig("micro: filtration",
             "packed batched filtration vs per-peak reference walk",
             "walking each index bin once per query — decoding bit-packed "
             "posting spans on the fly — beats re-walking the raw index per "
             "covering peak by >= 1.3x at identical results",
             {"engine", "queries_per_sec", "cpsms_per_sec"});

  const chem::ModificationSet mods = chem::ModificationSet::paper_default();
  index::IndexParams params;
  params.fragments.max_fragment_charge = 2;  // denser spectra than charge 1
  // Sized so index + scorecard stay cache-resident: there a re-walked bin
  // costs as much as its first walk, which is exactly the work the batched
  // sweep eliminates — the per-rank-partition regime LBE puts each node
  // in. (A DRAM-sized scorecard measures the opposite and flatters
  // neither engine: the reference walk's re-visits ride the lines its
  // first pass just missed in.)
  constexpr std::size_t kCount = 6000;
  index::PeptideStore store(&mods);
  for (auto& seq : random_peptides(kCount, 5)) {
    store.add(chem::Peptide(std::move(seq)), mods);
  }
  // Two deterministic builds of the same index (SlmIndex is move-only):
  // the raw u32 copy backs the reference walk, the compressed copy is the
  // timed engine — every span it touches goes through the decode kernel.
  const index::SlmIndex index(store, mods, params);
  index::SlmIndex packed_index(store, mods, params);
  packed_index.compress_in_memory();

  // Query set: theoretical spectra of stored peptides (the self-match
  // regime filtration runs in) at charge-2 density.
  std::vector<chem::Spectrum> queries;
  for (std::uint32_t q = 0; q < 16; ++q) {
    queries.push_back(theospec::theoretical_spectrum(
        store.materialize(q * 997 % kCount), mods, params.fragments));
  }

  index::QueryParams filter;
  // Low-resolution fragment tolerance: at ±1.0 Da the per-peak windows of
  // adjacent charge-2 fragments overlap, so the reference walk re-visits
  // each covered bin once per covering peak while the batched sweep merges
  // them into one multiplicity-weighted span — the structural gap this
  // bench gates. (ΔF = 0.05 keeps windows mostly disjoint and measures
  // only loop overhead, a margin too thin to gate on a shared runner.)
  filter.fragment_tolerance = 1.0;
  filter.shared_peak_min = 4;

  index::QueryArena arena;
  std::vector<index::Candidate> out;

  std::uint64_t cpsms = 0;
  const auto run_batched = [&] {
    index::QueryWork work;
    cpsms = 0;
    for (const auto& query : queries) {
      out.clear();
      packed_index.query(query, filter, out, work, arena);
      cpsms += out.size();
    }
  };
  const auto run_reference = [&] {
    index::QueryWork work;
    cpsms = 0;
    for (const auto& query : queries) {
      out.clear();
      index.query_reference(query, filter, out, work, arena);
      cpsms += out.size();
    }
  };

  // Equivalence spot check before timing: same candidate multisets.
  {
    index::QueryWork wa;
    index::QueryWork wb;
    for (const auto& query : queries) {
      std::vector<index::Candidate> a;
      std::vector<index::Candidate> b;
      packed_index.query(query, filter, a, wa, arena);
      index.query_reference(query, filter, b, wb, arena);
      auto key = [](const index::Candidate& c) {
        return std::pair<LocalPeptideId, std::uint32_t>(c.peptide,
                                                        c.shared_peaks);
      };
      std::vector<std::pair<LocalPeptideId, std::uint32_t>> ka;
      std::vector<std::pair<LocalPeptideId, std::uint32_t>> kb;
      for (const auto& c : a) ka.push_back(key(c));
      for (const auto& c : b) kb.push_back(key(c));
      std::sort(ka.begin(), ka.end());
      std::sort(kb.begin(), kb.end());
      fig.check("batched == reference candidates",
                ka == kb && wa.postings_touched == wb.postings_touched);
      break;  // one query is enough here; the ctest suite covers the rest
    }
  }

  // Interleaved paired sampling: on a shared single-core runner the clock
  // rate drifts on a timescale comparable to two back-to-back time_hot
  // sections, which corrupts a ratio of medians taken from separate
  // windows. Alternating one batched run with one reference run per round
  // exposes both engines to the same interference, and gating on
  // best-of-N (interference only ever slows a sample down) estimates the
  // undisturbed ratio.
  run_batched();  // warm the arena + caches for both measurements
  run_reference();
  const int rounds = std::max(5, ctx.repeat());
  std::vector<double> batched_samples;
  std::vector<double> reference_samples;
  std::uint64_t batched_cpsms = 0;
  for (int round = 0; round < rounds; ++round) {
    Stopwatch tb;
    run_batched();
    batched_samples.push_back(tb.seconds());
    batched_cpsms = cpsms;
    Stopwatch tr;
    run_reference();
    reference_samples.push_back(tr.seconds());
  }
  const SampleStats batched = summarize(batched_samples);
  const SampleStats reference = summarize(reference_samples);

  const double batched_qps = queries.size() / batched.median;
  const double reference_qps = queries.size() / reference.median;
  const double speedup = reference.min / batched.min;
  const char* level = codec::simd_level_name(codec::resolved_simd_level());
  const double packed_per_posting =
      static_cast<double>(packed_index.packed_posting_bytes()) /
      static_cast<double>(std::max<std::uint64_t>(index.num_postings(), 1));
  fig.row({std::string("packed_") + level, bench::fmt(batched_qps),
           bench::fmt(static_cast<double>(batched_cpsms) / batched.median)});
  fig.row({"reference", bench::fmt(reference_qps),
           bench::fmt(static_cast<double>(cpsms) / reference.median)});
  fig.note("speedup (best-of-" + bench::fmt(std::uint64_t(rounds)) + "): " +
           bench::fmt(speedup) + "x (gate: >= 1.3x) at " +
           bench::fmt(packed_per_posting) + " packed bytes/posting, decode=" +
           level);
  fig.check("packed batched filtration >= 1.3x reference throughput",
            speedup >= 1.3);
  fig.finish();
  ctx.absorb_checks(fig);

  // Report the batched engine's wall samples as this bench's timing.
  ctx.result.wall_samples = batched_samples;
  ctx.result.wall_seconds = batched;
  ctx.result.add_metric("queries_per_sec", batched_qps);
  ctx.result.add_metric("reference_queries_per_sec", reference_qps);
  ctx.result.add_metric("speedup_vs_reference", speedup);
  ctx.result.add_metric("cpsms_per_sec",
                        static_cast<double>(batched_cpsms) / batched.median);
  ctx.result.add_metric("packed_bytes_per_posting", packed_per_posting);
}

}  // namespace

void register_micro_benches(BenchRegistry& registry) {
  const auto add = [&registry](const char* name, const char* description,
                               BenchFn fn) {
    registry.add(BenchmarkDef{name, "micro", description, std::move(fn)});
  };
  add("micro_filtration_speedup",
      "batched vs reference filtration (>= 1.3x gate)",
      micro_filtration_speedup);
  add("micro_edit_distance", "full vs banded edit distance",
      micro_edit_distance);
  add("micro_grouping", "Algorithm 1 throughput", micro_grouping);
  add("micro_partition", "partition policy throughput", micro_partition);
  add("micro_index_build", "SLM build throughput", micro_index_build);
  add("micro_preprocess", "preprocessing throughput", micro_preprocess);
}

}  // namespace lbe::perf
