#include "perf/bench_report.hpp"

#include <cmath>
#include <fstream>
#include <sstream>

#include <sys/resource.h>

#include "common/error.hpp"

namespace lbe::perf {

std::optional<double> BenchResult::metric(const std::string& key) const {
  for (const auto& [k, v] : metrics) {
    if (k == key) return v;
  }
  return std::nullopt;
}

std::uint64_t peak_rss_bytes() {
  struct rusage usage{};
  if (getrusage(RUSAGE_SELF, &usage) != 0) return 0;
#ifdef __APPLE__
  // macOS reports ru_maxrss in bytes.
  return static_cast<std::uint64_t>(usage.ru_maxrss);
#else
  // Linux reports ru_maxrss in kilobytes.
  return static_cast<std::uint64_t>(usage.ru_maxrss) * 1024;
#endif
}

namespace {

Json stats_to_json(const SampleStats& stats,
                   const std::vector<double>& samples) {
  Json out = Json::object();
  Json sample_array = Json::array();
  for (const double s : samples) sample_array.push_back(Json(s));
  out.set("samples", std::move(sample_array));
  out.set("min", Json(stats.min));
  out.set("median", Json(stats.median));
  out.set("mean", Json(stats.mean));
  out.set("stddev", Json(stats.stddev));
  return out;
}

double require_number(const Json& object, const std::string& key,
                      const std::string& where) {
  const Json* value = object.find(key);
  if (value == nullptr || !value->is_number()) {
    throw IoError("bench report: " + where + "." + key +
                  " missing or not a number");
  }
  return value->as_number();
}

std::string require_string(const Json& object, const std::string& key,
                           const std::string& where) {
  const Json* value = object.find(key);
  if (value == nullptr || !value->is_string()) {
    throw IoError("bench report: " + where + "." + key +
                  " missing or not a string");
  }
  return value->as_string();
}

}  // namespace

Json report_to_json(const BenchReport& report) {
  Json root = Json::object();
  root.set("schema_version", Json(kBenchSchemaVersion));
  root.set("suite", Json(report.suite));
  root.set("repeat", Json(report.repeat));

  Json provenance = Json::object();
  provenance.set("git_sha", Json(report.provenance.git_sha));
  provenance.set("compiler", Json(report.provenance.compiler));
  provenance.set("compiler_version",
                 Json(report.provenance.compiler_version));
  provenance.set("flags", Json(report.provenance.flags));
  provenance.set("build_type", Json(report.provenance.build_type));
  provenance.set("hostname", Json(report.provenance.hostname));
  root.set("provenance", std::move(provenance));

  root.set("peak_rss_bytes", Json(report.peak_rss_bytes));

  Json benchmarks = Json::array();
  for (const BenchResult& result : report.benchmarks) {
    Json entry = Json::object();
    entry.set("name", Json(result.name));
    entry.set("wall_seconds",
              stats_to_json(result.wall_seconds, result.wall_samples));
    Json metrics = Json::object();
    for (const auto& [key, value] : result.metrics) {
      metrics.set(key, Json(value));
    }
    entry.set("metrics", std::move(metrics));
    entry.set("checks_total", Json(result.checks_total));
    entry.set("checks_failed", Json(result.checks_failed));
    benchmarks.push_back(std::move(entry));
  }
  root.set("benchmarks", std::move(benchmarks));
  return root;
}

BenchReport report_from_json(const Json& json) {
  if (!json.is_object()) throw IoError("bench report: root is not an object");
  const double version = require_number(json, "schema_version", "root");
  if (version != kBenchSchemaVersion) {
    throw IoError("bench report: unsupported schema_version " +
                  std::to_string(version));
  }

  BenchReport report;
  report.suite = require_string(json, "suite", "root");
  report.repeat = static_cast<int>(require_number(json, "repeat", "root"));
  if (report.repeat < 1) throw IoError("bench report: repeat must be >= 1");

  const Json& provenance = json.at("provenance");
  if (!provenance.is_object()) {
    throw IoError("bench report: provenance is not an object");
  }
  report.provenance.git_sha =
      require_string(provenance, "git_sha", "provenance");
  report.provenance.compiler =
      require_string(provenance, "compiler", "provenance");
  report.provenance.compiler_version =
      require_string(provenance, "compiler_version", "provenance");
  report.provenance.flags = require_string(provenance, "flags", "provenance");
  report.provenance.build_type =
      require_string(provenance, "build_type", "provenance");
  report.provenance.hostname =
      require_string(provenance, "hostname", "provenance");

  report.peak_rss_bytes = static_cast<std::uint64_t>(
      require_number(json, "peak_rss_bytes", "root"));

  const Json& benchmarks = json.at("benchmarks");
  if (!benchmarks.is_array()) {
    throw IoError("bench report: benchmarks is not an array");
  }
  for (const Json& entry : benchmarks.items()) {
    if (!entry.is_object()) {
      throw IoError("bench report: benchmark entry is not an object");
    }
    BenchResult result;
    result.name = require_string(entry, "name", "benchmark");
    const Json& wall = entry.at("wall_seconds");
    if (!wall.is_object()) {
      throw IoError("bench report: wall_seconds is not an object");
    }
    const Json& samples = wall.at("samples");
    if (!samples.is_array()) {
      throw IoError("bench report: wall_seconds.samples is not an array");
    }
    for (const Json& sample : samples.items()) {
      if (!sample.is_number()) {
        throw IoError("bench report: wall sample is not a number");
      }
      result.wall_samples.push_back(sample.as_number());
    }
    result.wall_seconds = summarize(result.wall_samples);
    // Cross-check the stored order statistics against the samples they
    // claim to summarize; a mismatch means the file was hand-edited.
    const double stored_median =
        require_number(wall, "median", "wall_seconds");
    if (!result.wall_samples.empty() &&
        std::abs(stored_median - result.wall_seconds.median) >
            1e-9 * (1.0 + std::abs(stored_median))) {
      throw IoError("bench report: wall_seconds.median does not match "
                    "samples for '" + result.name + "'");
    }
    const Json& metrics = entry.at("metrics");
    if (!metrics.is_object()) {
      throw IoError("bench report: metrics is not an object");
    }
    for (const auto& [key, value] : metrics.members()) {
      if (!value.is_number()) {
        throw IoError("bench report: metric '" + key + "' is not a number");
      }
      result.add_metric(key, value.as_number());
    }
    result.checks_total =
        static_cast<int>(require_number(entry, "checks_total", "benchmark"));
    result.checks_failed =
        static_cast<int>(require_number(entry, "checks_failed", "benchmark"));
    report.benchmarks.push_back(std::move(result));
  }
  return report;
}

std::string validate_report_json(const Json& json) {
  try {
    report_from_json(json);
    return {};
  } catch (const std::exception& e) {
    return e.what();
  }
}

void save_report_file(const std::string& path, const BenchReport& report) {
  std::ofstream out(path);
  if (!out) throw IoError("cannot write bench report: " + path);
  out << report_to_json(report).dump(2);
  if (!out) throw IoError("bench report write failed: " + path);
}

BenchReport load_report_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw IoError("cannot open bench report: " + path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return report_from_json(Json::parse(buffer.str()));
}

std::vector<RegressionFinding> find_regressions(const BenchReport& baseline,
                                                const BenchReport& current,
                                                double max_regress,
                                                const std::string& metric,
                                                bool flag_missing,
                                                bool lower_is_better) {
  LBE_CHECK(max_regress >= 0.0 && max_regress < 1.0,
            "max_regress must be in [0, 1)");
  std::vector<RegressionFinding> findings;
  for (const BenchResult& base : baseline.benchmarks) {
    const auto base_value = base.metric(metric);
    if (!base_value || *base_value <= 0.0) continue;
    // A gated baseline benchmark whose name or metric vanished from the
    // current report is itself a finding (current = ratio = 0): otherwise
    // renaming or dropping a benchmark would pass the gate vacuously.
    bool measured = false;
    for (const BenchResult& now : current.benchmarks) {
      if (now.name != base.name) continue;
      const auto now_value = now.metric(metric);
      if (!now_value) continue;
      measured = true;
      const bool regressed =
          lower_is_better
              ? *now_value > *base_value / (1.0 - max_regress)
              : *now_value < (1.0 - max_regress) * *base_value;
      if (regressed) {
        findings.push_back(RegressionFinding{base.name, metric, *base_value,
                                             *now_value,
                                             *now_value / *base_value});
      }
    }
    if (!measured && flag_missing) {
      findings.push_back(
          RegressionFinding{base.name, metric, *base_value, 0.0, 0.0});
    }
  }
  return findings;
}

}  // namespace lbe::perf
