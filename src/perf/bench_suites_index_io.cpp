// Suite "index_io" — the warm-start economics of the on-disk index format
// (index/serialize.hpp). The paper's pipeline is "partition once, search
// many": this suite measures what that buys — bundle save and load wall
// time against a cold per-rank rebuild — and asserts, per run, that a
// search over the loaded indexes is identical to one over freshly built
// ones. CI runs it in the test matrix (ctest `lbebench_index_io`) so the
// equivalence check executes under every compiler/build-type combination.
#include <algorithm>
#include <filesystem>
#include <fstream>
#include <vector>

#ifdef __linux__
#include <unistd.h>
#endif

#include "common/timer.hpp"
#include "index/serialize.hpp"
#include "perf/bench_common.hpp"
#include "perf/bench_registry.hpp"
#include "search/distributed.hpp"

namespace lbe::perf {

namespace {

constexpr std::uint64_t kEntries = 20000;
constexpr std::uint32_t kQueries = 32;
constexpr int kRanks = 8;

bool same_results(const std::vector<search::GlobalQueryResult>& a,
                  const std::vector<search::GlobalQueryResult>& b) {
  if (a.size() != b.size()) return false;
  for (std::size_t q = 0; q < a.size(); ++q) {
    if (a[q].top.size() != b[q].top.size()) return false;
    for (std::size_t k = 0; k < a[q].top.size(); ++k) {
      const auto& x = a[q].top[k];
      const auto& y = b[q].top[k];
      if (x.peptide != y.peptide || x.shared_peaks != y.shared_peaks ||
          x.score != y.score) {
        return false;
      }
    }
  }
  return true;
}

search::DistributedReport run_once(
    const core::LbePlan& plan, const synth::Workload& workload,
    const search::DistributedParams& base,
    const std::vector<std::unique_ptr<index::ChunkedIndex>>* preloaded) {
  search::DistributedParams params = base;
  params.preloaded = preloaded;
  mpi::ClusterOptions options;
  options.ranks = kRanks;
  options.engine = mpi::Engine::kVirtual;
  mpi::Cluster cluster(options);
  return search::run_distributed_search(cluster, plan, workload.queries,
                                        params);
}

void index_io_warm_start(BenchContext& ctx) {
  using namespace lbe;
  Figure fig("index_io: warm start",
             "bundle save/load wall time vs cold per-rank index build",
             "loading prepared indexes beats rebuilding them and changes "
             "nothing about the results",
             {"metric", "value"});

  const auto& workload = ctx.workload(kEntries, kQueries);
  const auto params = bench::paper_params();

  core::LbeParams lbe;
  lbe.partition.ranks = kRanks;
  lbe.partition.policy = core::Policy::kCyclic;
  const core::LbePlan plan(workload.base_peptides, workload.mods,
                           workload.variant_params, lbe);

  // Cold build: every rank's partial index from scratch (the per-search
  // cost `--index` removes from the critical path).
  index::IndexBundle bundle;
  bundle.lbe = lbe;
  bundle.index_params = params.index;
  bundle.chunking = params.chunking;
  bundle.mapping = plan.mapping();
  Stopwatch build_timer;
  for (int rank = 0; rank < kRanks; ++rank) {
    bundle.per_rank.push_back(std::make_unique<index::ChunkedIndex>(
        plan.build_rank_store(rank), plan.mods(), bundle.index_params,
        bundle.chunking));
  }
  const double build_seconds = build_timer.seconds();

  const std::string dir =
      (std::filesystem::temp_directory_path() / "lbe_bench_index_io")
          .string();
  const SampleStats save_stats = ctx.time_hot([&] {
    index::save_index_bundle(dir, bundle);
  });

  index::IndexBundle loaded;
  const SampleStats load_stats = ctx.time_hot([&] {
    loaded = index::load_index_bundle(dir, workload.mods);
  });

  std::uint64_t bundle_bytes =
      std::filesystem::file_size(index::bundle_manifest_path(dir));
  for (int rank = 0; rank < kRanks; ++rank) {
    bundle_bytes += std::filesystem::file_size(
        index::bundle_rank_path(dir, rank));
  }

  // Compression economics of the v4 packed posting format: stream + block
  // directory bytes per posting, vs the 4 bytes a raw u32 posting costs.
  // CI gates bytes_per_posting lower-is-better against the checked-in
  // baseline so a codec regression (or an accidental raw fallback) fails
  // the perf-smoke job.
  std::uint64_t packed_bytes = 0;
  std::uint64_t num_postings = 0;
  for (const auto& rank : loaded.per_rank) {
    packed_bytes += rank->packed_posting_bytes();
    num_postings += rank->num_postings();
  }
  const double bytes_per_posting =
      static_cast<double>(packed_bytes) /
      static_cast<double>(std::max<std::uint64_t>(num_postings, 1));
  fig.check("packed postings beat raw u32 (<= 0.6x of 4 bytes)",
            bytes_per_posting <= 0.6 * 4.0);

  // Loaded-vs-rebuilt equivalence: the whole distributed search, not just
  // one query — any drift in the serialized arrays shows up here.
  const auto cold = run_once(plan, workload, params, nullptr);
  const auto warm = run_once(plan, workload, params, &loaded.per_rank);
  fig.check("warm-start results identical to cold rebuild",
            same_results(cold.results, warm.results));
  fig.check("loaded bundle matches the mapping table",
            loaded.mapping == plan.mapping());

  std::filesystem::remove_all(dir);

  const double warm_speedup = build_seconds / load_stats.median;
  fig.row({"build_seconds", bench::fmt(build_seconds)});
  fig.row({"save_seconds", bench::fmt(save_stats.median)});
  fig.row({"load_seconds", bench::fmt(load_stats.median)});
  fig.row({"bundle_mib",
           bench::fmt(static_cast<double>(bundle_bytes) / (1024.0 * 1024.0))});
  fig.row({"bytes_per_posting", bench::fmt(bytes_per_posting)});
  fig.note("warm start loads " + bench::fmt(warm_speedup) +
           "x faster than rebuilding; packed postings at " +
           bench::fmt(bytes_per_posting) + " B/posting vs 4 B raw");
  fig.finish();
  ctx.absorb_checks(fig);
  ctx.result.add_metric("build_seconds", build_seconds);
  ctx.result.add_metric("save_seconds", save_stats.median);
  ctx.result.add_metric("load_seconds", load_stats.median);
  ctx.result.add_metric("bundle_bytes", static_cast<double>(bundle_bytes));
  ctx.result.add_metric("bundle_bytes_total",
                        static_cast<double>(bundle_bytes));
  ctx.result.add_metric("bytes_per_posting", bytes_per_posting);
  ctx.result.add_metric("warm_speedup_vs_build", warm_speedup);
}

/// Current (not peak) resident set, so the two load paths can be compared
/// within one process: peak RSS is a monotone high-water mark the cold
/// build already raised.
std::uint64_t current_rss_bytes() {
#ifdef __linux__
  std::ifstream statm("/proc/self/statm");
  std::uint64_t pages_total = 0;
  std::uint64_t pages_resident = 0;
  statm >> pages_total >> pages_resident;
  return pages_resident * static_cast<std::uint64_t>(sysconf(_SC_PAGESIZE));
#else
  return 0;
#endif
}

std::uint64_t bundle_index_heap_bytes(const index::IndexBundle& bundle) {
  std::uint64_t total = 0;
  for (const auto& rank : bundle.per_rank) total += rank->memory_bytes();
  return total;
}

// The mmap warm start (format v3): load_index_bundle(kMapped) validates
// only metadata and binds arrays in place, materializing chunks on first
// query touch. A narrow precursor window therefore reaches its first query
// having read a fraction of the bundle — the two axes measured here are
// time-to-first-query and resident index memory, against the eager load.
void index_io_mmap_warm_start(BenchContext& ctx) {
  using namespace lbe;
  Figure fig("index_io: mmap warm start",
             "mapped lazy-chunk load vs eager load, narrow-window search",
             "mmap warm start reaches its first query faster and resident "
             "in less memory than the eager load, with identical results",
             {"metric", "value"});

  const auto& workload = ctx.workload(kEntries, kQueries);
  auto params = bench::paper_params();
  // Lazy loading pays off per chunk; carve each rank into many.
  params.chunking.max_chunk_entries = 512;

  core::LbeParams lbe;
  lbe.partition.ranks = kRanks;
  lbe.partition.policy = core::Policy::kCyclic;
  const core::LbePlan plan(workload.base_peptides, workload.mods,
                           workload.variant_params, lbe);

  const std::string dir =
      (std::filesystem::temp_directory_path() / "lbe_bench_index_io_mmap")
          .string();
  {
    index::IndexBundle bundle;
    bundle.lbe = lbe;
    bundle.index_params = params.index;
    bundle.chunking = params.chunking;
    bundle.mapping = plan.mapping();
    for (int rank = 0; rank < kRanks; ++rank) {
      bundle.per_rank.push_back(std::make_unique<index::ChunkedIndex>(
          plan.build_rank_store(rank), plan.mods(), bundle.index_params,
          bundle.chunking));
    }
    index::save_index_bundle(dir, bundle);
    // The bundle (and its peak-RSS high-water) drops here; the loads below
    // are measured with current RSS, which does come back down.
  }

  // One narrow-window query: the "partition once, search many" consumer a
  // prepared bundle exists for. ±1.5 Da touches a handful of chunks.
  index::QueryParams narrow = params.search.filter;
  narrow.precursor_tolerance = 1.5;
  narrow.shared_peak_min = 1;
  const chem::Spectrum& probe = workload.queries.front();
  const auto first_query = [&](const index::IndexBundle& bundle) {
    std::vector<index::Candidate> candidates;
    index::QueryWork work;
    for (const auto& rank : bundle.per_rank) {
      rank->query(probe, narrow, candidates, work);
    }
    return candidates;
  };

  // Mapped first (so the eager load cannot warm anything for it), each
  // path timed as load + first answered query = "first-query readiness".
  const std::uint64_t rss_before_mapped = current_rss_bytes();
  index::IndexBundle mapped;
  Stopwatch mapped_timer;
  mapped = index::load_index_bundle(dir, workload.mods,
                                    index::BundleLoadMode::kMapped);
  const auto mapped_candidates = first_query(mapped);
  const double mapped_ready_seconds = mapped_timer.seconds();
  const std::uint64_t rss_after_mapped = current_rss_bytes();

  std::size_t chunks_total = 0;
  std::size_t chunks_loaded = 0;
  for (const auto& rank : mapped.per_rank) {
    chunks_total += rank->num_chunks();
    chunks_loaded += rank->num_chunks_loaded();
  }

  const std::uint64_t rss_before_eager = current_rss_bytes();
  index::IndexBundle eager;
  Stopwatch eager_timer;
  eager = index::load_index_bundle(dir, workload.mods,
                                   index::BundleLoadMode::kEager);
  const auto eager_candidates = first_query(eager);
  const double eager_ready_seconds = eager_timer.seconds();
  const std::uint64_t rss_after_eager = current_rss_bytes();

  fig.check("narrow window materializes only intersecting chunks",
            chunks_loaded > 0 && chunks_loaded < chunks_total);
  bool same = mapped_candidates.size() == eager_candidates.size();
  for (std::size_t i = 0; same && i < mapped_candidates.size(); ++i) {
    same = mapped_candidates[i].peptide == eager_candidates[i].peptide &&
           mapped_candidates[i].shared_peaks ==
               eager_candidates[i].shared_peaks;
  }
  fig.check("mapped narrow-window candidates identical to eager", same);
  const std::uint64_t mapped_heap = bundle_index_heap_bytes(mapped);
  const std::uint64_t eager_heap = bundle_index_heap_bytes(eager);
  fig.check("mapped index resident heap below eager load",
            mapped_heap < eager_heap);
  // Wall-clock readiness is reported as a metric, not gated: this suite
  // runs in every CI cell (incl. ASan on shared runners), where a
  // scheduler hiccup could invert a race the deterministic chunks-loaded
  // and heap checks above already pin down structurally.

  // Full equivalence under the real engine: an open search over the mapped
  // bundle (which materializes every remaining chunk) must match a cold
  // rebuild exactly.
  const auto cold = run_once(plan, workload, params, nullptr);
  const auto warm = run_once(plan, workload, params, &mapped.per_rank);
  fig.check("open search over mapped bundle identical to cold rebuild",
            same_results(cold.results, warm.results));
  std::size_t chunks_loaded_after_open = 0;
  for (const auto& rank : mapped.per_rank) {
    chunks_loaded_after_open += rank->num_chunks_loaded();
  }
  fig.check("open search materialized every chunk",
            chunks_loaded_after_open == chunks_total);

  std::filesystem::remove_all(dir);

  const auto rss_delta = [](std::uint64_t before, std::uint64_t after) {
    return after > before ? after - before : 0;
  };
  const auto total_u64 = static_cast<std::uint64_t>(chunks_total);
  const auto loaded_u64 = static_cast<std::uint64_t>(chunks_loaded);
  fig.row({"mmap_ready_seconds", bench::fmt(mapped_ready_seconds)});
  fig.row({"eager_ready_seconds", bench::fmt(eager_ready_seconds)});
  fig.row({"chunks_total", bench::fmt(total_u64)});
  fig.row({"chunks_loaded_narrow", bench::fmt(loaded_u64)});
  fig.row({"mmap_index_heap_bytes", bench::fmt(mapped_heap)});
  fig.row({"eager_index_heap_bytes", bench::fmt(eager_heap)});
  fig.note("mmap first-query readiness " +
           bench::fmt(eager_ready_seconds /
                      std::max(mapped_ready_seconds, 1e-9)) +
           "x faster than eager load; " + bench::fmt(loaded_u64) + "/" +
           bench::fmt(total_u64) + " chunks touched");
  fig.finish();
  ctx.absorb_checks(fig);
  ctx.result.add_metric("mmap_ready_seconds", mapped_ready_seconds);
  ctx.result.add_metric("eager_ready_seconds", eager_ready_seconds);
  ctx.result.add_metric("mmap_ready_speedup",
                        eager_ready_seconds /
                            std::max(mapped_ready_seconds, 1e-9));
  ctx.result.add_metric("chunks_total",
                        static_cast<double>(chunks_total));
  ctx.result.add_metric("chunks_loaded_narrow",
                        static_cast<double>(chunks_loaded));
  ctx.result.add_metric("mmap_index_heap_bytes",
                        static_cast<double>(mapped_heap));
  ctx.result.add_metric("eager_index_heap_bytes",
                        static_cast<double>(eager_heap));
  ctx.result.add_metric(
      "mmap_load_rss_delta_bytes",
      static_cast<double>(rss_delta(rss_before_mapped, rss_after_mapped)));
  ctx.result.add_metric(
      "eager_load_rss_delta_bytes",
      static_cast<double>(rss_delta(rss_before_eager, rss_after_eager)));
}

}  // namespace

void register_index_io_benches(BenchRegistry& registry) {
  registry.add(BenchmarkDef{"index_io_warm_start", "index_io",
                            "bundle save/load + loaded-vs-rebuilt "
                            "equivalence",
                            index_io_warm_start});
  registry.add(BenchmarkDef{"index_io_mmap_warm_start", "index_io",
                            "mmap lazy warm start vs eager load: "
                            "first-query readiness, resident memory, "
                            "equivalence",
                            index_io_mmap_warm_start});
}

}  // namespace lbe::perf
