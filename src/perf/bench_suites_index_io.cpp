// Suite "index_io" — the warm-start economics of the on-disk index format
// (index/serialize.hpp). The paper's pipeline is "partition once, search
// many": this suite measures what that buys — bundle save and load wall
// time against a cold per-rank rebuild — and asserts, per run, that a
// search over the loaded indexes is identical to one over freshly built
// ones. CI runs it in the test matrix (ctest `lbebench_index_io`) so the
// equivalence check executes under every compiler/build-type combination.
#include <filesystem>
#include <vector>

#include "common/timer.hpp"
#include "index/serialize.hpp"
#include "perf/bench_common.hpp"
#include "perf/bench_registry.hpp"
#include "search/distributed.hpp"

namespace lbe::perf {

namespace {

constexpr std::uint64_t kEntries = 20000;
constexpr std::uint32_t kQueries = 32;
constexpr int kRanks = 8;

bool same_results(const std::vector<search::GlobalQueryResult>& a,
                  const std::vector<search::GlobalQueryResult>& b) {
  if (a.size() != b.size()) return false;
  for (std::size_t q = 0; q < a.size(); ++q) {
    if (a[q].top.size() != b[q].top.size()) return false;
    for (std::size_t k = 0; k < a[q].top.size(); ++k) {
      const auto& x = a[q].top[k];
      const auto& y = b[q].top[k];
      if (x.peptide != y.peptide || x.shared_peaks != y.shared_peaks ||
          x.score != y.score) {
        return false;
      }
    }
  }
  return true;
}

search::DistributedReport run_once(
    const core::LbePlan& plan, const synth::Workload& workload,
    const search::DistributedParams& base,
    const std::vector<std::unique_ptr<index::ChunkedIndex>>* preloaded) {
  search::DistributedParams params = base;
  params.preloaded = preloaded;
  mpi::ClusterOptions options;
  options.ranks = kRanks;
  options.engine = mpi::Engine::kVirtual;
  mpi::Cluster cluster(options);
  return search::run_distributed_search(cluster, plan, workload.queries,
                                        params);
}

void index_io_warm_start(BenchContext& ctx) {
  using namespace lbe;
  Figure fig("index_io: warm start",
             "bundle save/load wall time vs cold per-rank index build",
             "loading prepared indexes beats rebuilding them and changes "
             "nothing about the results",
             {"metric", "value"});

  const auto& workload = ctx.workload(kEntries, kQueries);
  const auto params = bench::paper_params();

  core::LbeParams lbe;
  lbe.partition.ranks = kRanks;
  lbe.partition.policy = core::Policy::kCyclic;
  const core::LbePlan plan(workload.base_peptides, workload.mods,
                           workload.variant_params, lbe);

  // Cold build: every rank's partial index from scratch (the per-search
  // cost `--index` removes from the critical path).
  index::IndexBundle bundle;
  bundle.lbe = lbe;
  bundle.index_params = params.index;
  bundle.chunking = params.chunking;
  bundle.mapping = plan.mapping();
  Stopwatch build_timer;
  for (int rank = 0; rank < kRanks; ++rank) {
    bundle.per_rank.push_back(std::make_unique<index::ChunkedIndex>(
        plan.build_rank_store(rank), plan.mods(), bundle.index_params,
        bundle.chunking));
  }
  const double build_seconds = build_timer.seconds();

  const std::string dir =
      (std::filesystem::temp_directory_path() / "lbe_bench_index_io")
          .string();
  const SampleStats save_stats = ctx.time_hot([&] {
    index::save_index_bundle(dir, bundle);
  });

  index::IndexBundle loaded;
  const SampleStats load_stats = ctx.time_hot([&] {
    loaded = index::load_index_bundle(dir, workload.mods);
  });

  std::uint64_t bundle_bytes =
      std::filesystem::file_size(index::bundle_manifest_path(dir));
  for (int rank = 0; rank < kRanks; ++rank) {
    bundle_bytes += std::filesystem::file_size(
        index::bundle_rank_path(dir, rank));
  }

  // Loaded-vs-rebuilt equivalence: the whole distributed search, not just
  // one query — any drift in the serialized arrays shows up here.
  const auto cold = run_once(plan, workload, params, nullptr);
  const auto warm = run_once(plan, workload, params, &loaded.per_rank);
  fig.check("warm-start results identical to cold rebuild",
            same_results(cold.results, warm.results));
  fig.check("loaded bundle matches the mapping table",
            loaded.mapping == plan.mapping());

  std::filesystem::remove_all(dir);

  const double warm_speedup = build_seconds / load_stats.median;
  fig.row({"build_seconds", bench::fmt(build_seconds)});
  fig.row({"save_seconds", bench::fmt(save_stats.median)});
  fig.row({"load_seconds", bench::fmt(load_stats.median)});
  fig.row({"bundle_mib",
           bench::fmt(static_cast<double>(bundle_bytes) / (1024.0 * 1024.0))});
  fig.note("warm start loads " + bench::fmt(warm_speedup) +
           "x faster than rebuilding");
  fig.finish();
  ctx.absorb_checks(fig);
  ctx.result.add_metric("build_seconds", build_seconds);
  ctx.result.add_metric("save_seconds", save_stats.median);
  ctx.result.add_metric("load_seconds", load_stats.median);
  ctx.result.add_metric("bundle_bytes", static_cast<double>(bundle_bytes));
  ctx.result.add_metric("warm_speedup_vs_build", warm_speedup);
}

}  // namespace

void register_index_io_benches(BenchRegistry& registry) {
  registry.add(BenchmarkDef{"index_io_warm_start", "index_io",
                            "bundle save/load + loaded-vs-rebuilt "
                            "equivalence",
                            index_io_warm_start});
}

}  // namespace lbe::perf
