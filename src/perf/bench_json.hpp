// Minimal JSON value type for the benchmark harness.
//
// BENCH_<suite>.json must be writable without third-party dependencies and
// re-parseable by the regression gate, so this implements exactly the JSON
// subset the harness emits: null, bool, finite doubles, strings, arrays and
// insertion-ordered objects. Numbers round-trip via %.17g (shortest exact
// double), strings escape the mandatory set. Not a general-purpose parser —
// it rejects anything outside RFC 8259 rather than guessing.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <utility>
#include <vector>

namespace lbe::perf {

class Json {
 public:
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };

  Json() : type_(Type::kNull) {}
  Json(bool b) : type_(Type::kBool), bool_(b) {}                // NOLINT
  Json(double v) : type_(Type::kNumber), number_(v) {}          // NOLINT
  Json(int v) : Json(static_cast<double>(v)) {}                 // NOLINT
  Json(std::uint64_t v) : Json(static_cast<double>(v)) {}       // NOLINT
  Json(std::int64_t v) : Json(static_cast<double>(v)) {}        // NOLINT
  Json(std::string s) : type_(Type::kString), string_(std::move(s)) {}  // NOLINT
  Json(const char* s) : Json(std::string(s)) {}                 // NOLINT

  static Json array() {
    Json j;
    j.type_ = Type::kArray;
    return j;
  }
  static Json object() {
    Json j;
    j.type_ = Type::kObject;
    return j;
  }

  Type type() const noexcept { return type_; }
  bool is_null() const noexcept { return type_ == Type::kNull; }
  bool is_bool() const noexcept { return type_ == Type::kBool; }
  bool is_number() const noexcept { return type_ == Type::kNumber; }
  bool is_string() const noexcept { return type_ == Type::kString; }
  bool is_array() const noexcept { return type_ == Type::kArray; }
  bool is_object() const noexcept { return type_ == Type::kObject; }

  /// Typed accessors; throw InvariantError on type mismatch.
  bool as_bool() const;
  double as_number() const;
  const std::string& as_string() const;
  const std::vector<Json>& items() const;
  const std::vector<std::pair<std::string, Json>>& members() const;

  /// Array append (must be an array).
  void push_back(Json value);

  /// Object insert/overwrite preserving first-insertion order.
  void set(const std::string& key, Json value);

  /// Object lookup; nullptr when absent (must be an object).
  const Json* find(const std::string& key) const;

  /// `find` that throws with a path-aware message when absent.
  const Json& at(const std::string& key) const;

  /// Serializes. `indent` > 0 pretty-prints with that many spaces.
  std::string dump(int indent = 0) const;

  /// Parses a complete JSON document; throws IoError on any syntax error
  /// or trailing garbage.
  static Json parse(const std::string& text);

  bool operator==(const Json& other) const;

 private:
  void dump_to(std::string& out, int indent, int depth) const;

  Type type_;
  bool bool_ = false;
  double number_ = 0.0;
  std::string string_;
  std::vector<Json> array_;
  std::vector<std::pair<std::string, Json>> object_;
};

}  // namespace lbe::perf
