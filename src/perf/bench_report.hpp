// Machine-readable benchmark results: the BENCH_<suite>.json format.
//
// Schema (version 1):
//   {
//     "schema_version": 1,
//     "suite": "<suite name>",
//     "repeat": <int >= 1>,
//     "provenance": { "git_sha", "compiler", "compiler_version", "flags",
//                     "build_type", "hostname" },        (all strings)
//     "peak_rss_bytes": <int>,
//     "benchmarks": [
//       {
//         "name": "<benchmark name>",
//         "wall_seconds": { "samples": [..], "min", "median",
//                           "mean", "stddev" },
//         "metrics": { "<metric>": <number>, ... },
//         "checks_total": <int>, "checks_failed": <int>
//       }, ...
//     ]
//   }
//
// "metrics" keys the regression gate understands are throughput-style
// (higher is better): the CI perf-smoke job gates on "queries_per_sec".
// The writer, parser, validator and gate all live here so a schema change
// cannot drift between them.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "perf/bench_json.hpp"
#include "perf/metrics.hpp"

namespace lbe::perf {

inline constexpr int kBenchSchemaVersion = 1;

/// Build/run provenance stamped into every report. `current_provenance()`
/// is generated at CMake configure time (see bench_provenance.cpp.in).
struct BenchProvenance {
  std::string git_sha;
  std::string compiler;
  std::string compiler_version;
  std::string flags;
  std::string build_type;
  std::string hostname;
};

BenchProvenance current_provenance();

/// One benchmark's results: repeated wall timings plus named scalar
/// metrics (throughputs, ratios, Eq. 1 imbalance, ...).
struct BenchResult {
  std::string name;
  SampleStats wall_seconds;
  std::vector<double> wall_samples;
  std::vector<std::pair<std::string, double>> metrics;
  int checks_total = 0;
  int checks_failed = 0;

  void add_metric(const std::string& key, double value) {
    metrics.emplace_back(key, value);
  }
  std::optional<double> metric(const std::string& key) const;
};

struct BenchReport {
  std::string suite;
  int repeat = 1;
  BenchProvenance provenance;
  std::uint64_t peak_rss_bytes = 0;
  std::vector<BenchResult> benchmarks;
};

/// Current process peak RSS in bytes (getrusage; 0 if unavailable).
std::uint64_t peak_rss_bytes();

Json report_to_json(const BenchReport& report);

/// Parses + validates; throws IoError with a field-level message on any
/// schema violation (wrong type, missing key, bad version, negative
/// repeat, non-array benchmarks, ...).
BenchReport report_from_json(const Json& json);

/// Validation without conversion; returns the first violation or empty.
std::string validate_report_json(const Json& json);

void save_report_file(const std::string& path, const BenchReport& report);
BenchReport load_report_file(const std::string& path);

/// One gate decision of the CI perf job.
struct RegressionFinding {
  std::string benchmark;
  std::string metric;
  double baseline = 0.0;
  double current = 0.0;
  double ratio = 0.0;  ///< current / baseline
};

/// Compares `current` against `baseline` on the given metric (default:
/// the gate metric "queries_per_sec"). By default the metric is
/// higher-is-better and a benchmark regresses when
/// current < (1 - max_regress) * baseline; with `lower_is_better`
/// (latencies), it regresses when current > baseline / (1 - max_regress)
/// — the same relative tolerance, mirrored. With `flag_missing` (the
/// full-suite default), a gated baseline benchmark with no matching
/// (name, metric) in `current` is reported with current = ratio = 0 —
/// renames and drops must refresh the baseline, they cannot pass the
/// gate vacuously. Pass flag_missing = false when `current` is
/// deliberately partial (lbebench --filter). Extra benchmarks only in
/// `current` are ignored (they have no baseline yet).
std::vector<RegressionFinding> find_regressions(
    const BenchReport& baseline, const BenchReport& current,
    double max_regress, const std::string& metric = "queries_per_sec",
    bool flag_missing = true, bool lower_is_better = false);

}  // namespace lbe::perf
