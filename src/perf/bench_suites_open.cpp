// Suite "open" — the open-window PTM search workload and its block-max
// pruning ablation. Half the queries carry an unannounced 12-120 Da mass
// shift (synth/spectra.hpp), the bins are coarse (r = 1.0 Da) so postings
// pile deep enough that one bin spans several 128-posting codec blocks,
// and the precursor window sweeps narrow -> wide -> fully open. The
// ablation times the identical wide-window search with pruning on vs off,
// asserts byte-identical PSMs, and gates both the speedup (>= 1.3x) and a
// nonzero pruned-block ratio; perf-smoke additionally gates the pruned
// run's queries/sec against bench/baseline/BENCH_open.json.
#include <string>
#include <vector>

#include "perf/bench_common.hpp"
#include "perf/bench_registry.hpp"
#include "search/query_engine.hpp"

namespace lbe::perf {

namespace {

constexpr std::uint64_t kOpenEntries = 60000;
constexpr std::uint32_t kOpenQueries = 32;
constexpr double kWideWindow = 100.0;  ///< Da; covers every planted shift

// The open workload is not the paper workload (coarse bins, PTM-shifted
// queries), so it bypasses the BenchContext cache and is built once here.
const synth::Workload& open_workload() {
  static const synth::Workload workload = [] {
    synth::WorkloadParams params;
    params.target_entries = kOpenEntries;
    params.num_queries = kOpenQueries;
    params.seed = 2019;
    params.spectra.ptm_shift_fraction = 0.5;
    params.variants.max_mod_residues = 5;
    params.variants.max_variants_per_peptide = 64;
    return synth::make_workload(params);
  }();
  return workload;
}

// §V-A engine settings at open-search resolution: r = 1.0 Da keeps bins
// dense (many codec blocks per bin), which is the regime block-max
// pruning targets. Rescoring is off so the measurement isolates the
// filtration walk that pruning accelerates.
search::DistributedParams open_params(std::size_t max_chunk_entries) {
  search::DistributedParams params = bench::paper_params();
  params.index.resolution = 1.0;
  params.search.rescore_depth = 0;
  params.chunking.max_chunk_entries = max_chunk_entries;
  return params;
}

struct OpenFixture {
  const core::LbePlan plan;
  const index::ChunkedIndex index;

  explicit OpenFixture(const synth::Workload& workload,
                       const search::DistributedParams& params)
      : plan(workload.base_peptides, workload.mods, workload.variant_params,
             [] {
               core::LbeParams lbe;
               lbe.partition.ranks = 1;
               lbe.partition.policy = core::Policy::kCyclic;
               return lbe;
             }()),
        index(plan.build_global_store(), plan.mods(), params.index,
              params.chunking) {}
};

// Sweep fixture: several chunks per index. Chunk boundaries are where the
// score floor re-arms, so this keeps the score-threshold half of pruning
// live even on the fully open window (where mass bounds exclude nothing).
const OpenFixture& sweep_fixture() {
  static const OpenFixture fixture(open_workload(), open_params(16384));
  return fixture;
}

// Ablation fixture: one chunk, the paper's §V-A configuration. Per-chunk
// mass routing is itself a pruner, so the single-chunk index isolates what
// the per-block bounds buy on their own.
const OpenFixture& ablation_fixture() {
  static const OpenFixture fixture(open_workload(), open_params(0));
  return fixture;
}

struct EngineRun {
  std::vector<search::QueryResult> results;
  index::QueryWork work;
};

EngineRun run_engine(const search::QueryEngine& engine,
                     const synth::Workload& workload,
                     index::QueryArena& arena) {
  EngineRun run;
  run.results.reserve(workload.queries.size());
  for (std::size_t q = 0; q < workload.queries.size(); ++q) {
    run.results.push_back(engine.search(
        workload.queries[q], static_cast<std::uint32_t>(q), run.work, arena));
  }
  return run;
}

bool identical_psms(const std::vector<search::QueryResult>& a,
                    const std::vector<search::QueryResult>& b) {
  if (a.size() != b.size()) return false;
  for (std::size_t q = 0; q < a.size(); ++q) {
    if (a[q].top.size() != b[q].top.size()) return false;
    if (a[q].candidates != b[q].candidates) return false;
    for (std::size_t k = 0; k < a[q].top.size(); ++k) {
      if (a[q].top[k].peptide != b[q].top[k].peptide ||
          a[q].top[k].shared_peaks != b[q].top[k].shared_peaks ||
          a[q].top[k].score != b[q].top[k].score) {
        return false;
      }
    }
  }
  return true;
}

double pruned_ratio(std::uint64_t pruned, std::uint64_t walked) {
  const std::uint64_t total = pruned + walked;
  return total == 0 ? 0.0 : static_cast<double>(pruned) /
                                static_cast<double>(total);
}

// Window sweep: the same PTM workload searched narrow (misses every
// shifted spectrum), wide (recovers them), and fully open (the paper's ΔM
// = ∞ mode, where only the score-threshold half of pruning can fire).
void open_window_sweep(BenchContext& ctx) {
  using namespace lbe;
  Figure fig("open: window sweep",
             "open-window PTM search: qps and pruning vs window width",
             "wider windows cost more; block-max pruning recovers most of it",
             {"window_da", "queries_per_sec", "blocks_pruned_ratio",
              "spans_pruned_ratio"});

  const auto& workload = open_workload();
  const auto& fixture = sweep_fixture();
  const auto base = open_params(16384);

  struct Point {
    const char* label;
    double window;
  };
  const std::vector<Point> points = {
      {"5", 5.0},
      {"100", kWideWindow},
      {"inf", std::numeric_limits<double>::infinity()},
  };

  index::QueryArena arena;
  double narrow_qps = 0.0;
  double open_qps = 0.0;
  for (const auto& point : points) {
    search::DistributedParams params = base;
    params.search.filter.precursor_tolerance = point.window;
    const search::QueryEngine engine(fixture.index, fixture.plan.mods(),
                                     params.search);

    EngineRun last;
    const SampleStats stats = ctx.time_hot(
        [&] { last = run_engine(engine, workload, arena); });
    const double qps = workload.queries.size() / stats.median;
    const double blocks_ratio =
        pruned_ratio(last.work.blocks_pruned, last.work.blocks_walked);
    const double spans_ratio =
        pruned_ratio(last.work.spans_pruned, last.work.spans_walked);
    fig.row({point.label, bench::fmt(qps), bench::fmt(blocks_ratio),
             bench::fmt(spans_ratio)});
    ctx.result.add_metric(std::string("qps_window_") + point.label, qps);
    ctx.result.add_metric(
        std::string("blocks_pruned_ratio_window_") + point.label,
        blocks_ratio);
    if (point.window == 5.0) narrow_qps = qps;
    if (std::isinf(point.window)) open_qps = qps;
    if (point.window == kWideWindow) {
      fig.check("wide window prunes blocks", last.work.blocks_pruned > 0);
    }
  }
  fig.check("narrow window is faster than fully open",
            narrow_qps > open_qps);
  fig.finish();
  ctx.absorb_checks(fig);
  ctx.result.add_metric("queries_per_sec", narrow_qps);
}

// The headline ablation: identical wide-window searches with block-max
// pruning on vs off. PSMs must match exactly; the pruned run must be at
// least 1.3x faster and must skip a meaningful share of blocks.
void open_pruning_ablation(BenchContext& ctx) {
  using namespace lbe;
  Figure fig("open: pruning ablation",
             "wide-window (±100 Da) search, block-max pruning on vs off",
             "pruning speeds the walk >= 1.3x without changing any PSM",
             {"variant", "queries_per_sec", "blocks_pruned_ratio"});

  const auto& workload = open_workload();
  const auto& fixture = ablation_fixture();

  search::DistributedParams pruned_params = open_params(0);
  pruned_params.search.filter.precursor_tolerance = kWideWindow;
  pruned_params.search.filter.prune_blocks = true;
  search::DistributedParams plain_params = pruned_params;
  plain_params.search.filter.prune_blocks = false;

  const search::QueryEngine pruned_engine(fixture.index, fixture.plan.mods(),
                                          pruned_params.search);
  const search::QueryEngine plain_engine(fixture.index, fixture.plan.mods(),
                                         plain_params.search);

  index::QueryArena arena;
  EngineRun pruned_run;
  const SampleStats pruned_stats = ctx.time_hot(
      [&] { pruned_run = run_engine(pruned_engine, workload, arena); });
  EngineRun plain_run;
  const SampleStats plain_stats = ctx.time_hot(
      [&] { plain_run = run_engine(plain_engine, workload, arena); });

  const double pruned_qps = workload.queries.size() / pruned_stats.median;
  const double plain_qps = workload.queries.size() / plain_stats.median;
  const double speedup = pruned_qps / plain_qps;
  const double blocks_ratio = pruned_ratio(pruned_run.work.blocks_pruned,
                                           pruned_run.work.blocks_walked);
  const double spans_ratio = pruned_ratio(pruned_run.work.spans_pruned,
                                          pruned_run.work.spans_walked);

  fig.row({"pruned", bench::fmt(pruned_qps), bench::fmt(blocks_ratio)});
  fig.row({"unpruned", bench::fmt(plain_qps), bench::fmt(0.0)});
  fig.check("pruning changes no PSM",
            identical_psms(pruned_run.results, plain_run.results));
  fig.check("pruning speeds the wide-window walk >= 1.3x", speedup >= 1.3);
  fig.check("pruned run skips >= 20% of blocks", blocks_ratio >= 0.2);
  fig.check("unpruned run prunes nothing",
            plain_run.work.blocks_pruned == 0 &&
                plain_run.work.spans_pruned == 0);
  fig.finish();
  ctx.absorb_checks(fig);
  ctx.result.add_metric("queries_per_sec", pruned_qps);
  ctx.result.add_metric("unpruned_queries_per_sec", plain_qps);
  ctx.result.add_metric("pruning_speedup", speedup);
  ctx.result.add_metric("blocks_pruned_ratio", blocks_ratio);
  ctx.result.add_metric("spans_pruned_ratio", spans_ratio);
}

}  // namespace

void register_open_benches(BenchRegistry& registry) {
  registry.add(BenchmarkDef{"open_window_sweep", "open",
                            "open-window qps/pruning vs window width",
                            open_window_sweep});
  registry.add(BenchmarkDef{"open_pruning_ablation", "open",
                            "wide-window pruning on/off ablation",
                            open_pruning_ablation});
}

}  // namespace lbe::perf
