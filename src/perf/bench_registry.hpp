// Registry-driven benchmark harness (the `lbebench` core).
//
// Every benchmark — the paper-figure reproductions, the design ablations,
// the micro-kernels and the CI smoke set — registers once under a suite
// name and runs through the same driver, which times it, collects its
// named metrics and shape-check tally, and emits one schema-versioned
// BENCH_<suite>.json (see bench_report.hpp) next to the human-readable
// CSV/figure output the benchmark prints itself.
//
// Registration is explicit (register_all_benches) rather than via static
// initializers: the suites live in a static library, where unreferenced
// archive members — and their registration objects — would silently never
// be linked.
#pragma once

#include <deque>
#include <functional>
#include <string>
#include <vector>

#include "perf/bench_report.hpp"
#include "synth/workload.hpp"

namespace lbe::perf {

class Figure;

/// Handed to each benchmark body: repeat policy, the suite-wide workload
/// cache (so multi-benchmark suites pay synthesis once), and the
/// BenchResult the body fills with metrics.
class BenchContext {
 public:
  explicit BenchContext(int repeat) : repeat_(repeat) {}

  int repeat() const noexcept { return repeat_; }

  /// Cached synthetic workload (shared across the suite run).
  const synth::Workload& workload(std::uint64_t entries,
                                  std::uint32_t queries);

  /// Runs `hot` repeat() times, recording each duration as one wall
  /// sample, and returns the summary. The result's wall stats are set to
  /// the LAST measured section (most benchmarks have exactly one).
  SampleStats time_hot(const std::function<void()>& hot);

  /// Folds a Figure's shape-check tally into the result.
  void absorb_checks(const Figure& figure);

  BenchResult result;

 private:
  struct CacheEntry {
    std::uint64_t entries;
    std::uint32_t queries;
    synth::Workload workload;
  };

  int repeat_;
  // Deque: push_back never invalidates references already handed out, so
  // a benchmark may hold several workloads at once.
  std::deque<CacheEntry> cache_;
};

using BenchFn = std::function<void(BenchContext&)>;

struct BenchmarkDef {
  std::string name;
  std::string suite;
  std::string description;
  BenchFn fn;
};

class BenchRegistry {
 public:
  static BenchRegistry& instance();

  void add(BenchmarkDef def);
  const std::vector<BenchmarkDef>& all() const noexcept { return benches_; }

  /// Registered suite names, in registration order, deduplicated.
  std::vector<std::string> suites() const;

 private:
  std::vector<BenchmarkDef> benches_;
};

/// Registers every built-in suite exactly once (idempotent).
void register_all_benches();

// Per-suite registration hooks (one per bench_suites_*.cpp).
void register_figure_benches(BenchRegistry& registry);
void register_ablation_benches(BenchRegistry& registry);
void register_micro_benches(BenchRegistry& registry);
void register_smoke_benches(BenchRegistry& registry);
void register_index_io_benches(BenchRegistry& registry);
void register_serve_benches(BenchRegistry& registry);
void register_mpi_backend_benches(BenchRegistry& registry);
void register_open_benches(BenchRegistry& registry);
void register_schedule_benches(BenchRegistry& registry);

struct BenchRunOptions {
  std::string suite = "smoke";
  std::string filter;        ///< substring match on benchmark name
  int repeat = 1;
  std::string out_dir = "."; ///< BENCH_<suite>.json lands here
  bool write_json = true;
  std::string baseline_path; ///< gate against this BENCH json when set
  double max_regress = 0.25; ///< median queries/sec regression tolerance
  /// Additional lower-is-better metrics to gate (e.g. latency percentiles
  /// of the serve suite); a benchmark regresses when such a metric grows
  /// beyond baseline / (1 - lower_max_regress).
  std::vector<std::string> gate_lower;
  double lower_max_regress = 0.5;
};

/// Runs one suite; returns the process exit code: 0 = all benchmarks'
/// shape checks passed and no baseline regression, 1 = check failures,
/// 2 = baseline regression (check failures take precedence).
int run_suite(const BenchRunOptions& options);

/// Runs a single registered benchmark (the thin bench/*.cpp mains).
/// Exit code 0 iff its shape checks all passed.
int run_single_benchmark(const std::string& name, int repeat = 1);

}  // namespace lbe::perf
