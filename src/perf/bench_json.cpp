#include "perf/bench_json.hpp"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstring>

#include "common/error.hpp"

namespace lbe::perf {

bool Json::as_bool() const {
  LBE_CHECK(is_bool(), "json: not a bool");
  return bool_;
}

double Json::as_number() const {
  LBE_CHECK(is_number(), "json: not a number");
  return number_;
}

const std::string& Json::as_string() const {
  LBE_CHECK(is_string(), "json: not a string");
  return string_;
}

const std::vector<Json>& Json::items() const {
  LBE_CHECK(is_array(), "json: not an array");
  return array_;
}

const std::vector<std::pair<std::string, Json>>& Json::members() const {
  LBE_CHECK(is_object(), "json: not an object");
  return object_;
}

void Json::push_back(Json value) {
  LBE_CHECK(is_array(), "json: push_back on non-array");
  array_.push_back(std::move(value));
}

void Json::set(const std::string& key, Json value) {
  LBE_CHECK(is_object(), "json: set on non-object");
  for (auto& member : object_) {
    if (member.first == key) {
      member.second = std::move(value);
      return;
    }
  }
  object_.emplace_back(key, std::move(value));
}

const Json* Json::find(const std::string& key) const {
  LBE_CHECK(is_object(), "json: find on non-object");
  for (const auto& member : object_) {
    if (member.first == key) return &member.second;
  }
  return nullptr;
}

const Json& Json::at(const std::string& key) const {
  const Json* value = find(key);
  if (value == nullptr) throw IoError("json: missing key '" + key + "'");
  return *value;
}

bool Json::operator==(const Json& other) const {
  if (type_ != other.type_) return false;
  switch (type_) {
    case Type::kNull: return true;
    case Type::kBool: return bool_ == other.bool_;
    case Type::kNumber: return number_ == other.number_;
    case Type::kString: return string_ == other.string_;
    case Type::kArray: return array_ == other.array_;
    case Type::kObject: return object_ == other.object_;
  }
  return false;
}

namespace {

void escape_into(std::string& out, const std::string& s) {
  out += '"';
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
}

void number_into(std::string& out, double v) {
  LBE_CHECK(std::isfinite(v), "json: cannot encode non-finite number");
  // Integers up to 2^53 print exactly without an exponent; everything else
  // uses %.17g, which round-trips any double.
  if (v == std::floor(v) && std::abs(v) < 9.007199254740992e15) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.0f", v);
    out += buf;
    return;
  }
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  out += buf;
}

void newline_indent(std::string& out, int indent, int depth) {
  if (indent <= 0) return;
  out += '\n';
  out.append(static_cast<std::size_t>(indent) * depth, ' ');
}

}  // namespace

void Json::dump_to(std::string& out, int indent, int depth) const {
  switch (type_) {
    case Type::kNull:
      out += "null";
      break;
    case Type::kBool:
      out += bool_ ? "true" : "false";
      break;
    case Type::kNumber:
      number_into(out, number_);
      break;
    case Type::kString:
      escape_into(out, string_);
      break;
    case Type::kArray: {
      if (array_.empty()) {
        out += "[]";
        break;
      }
      out += '[';
      for (std::size_t i = 0; i < array_.size(); ++i) {
        if (i > 0) out += ',';
        newline_indent(out, indent, depth + 1);
        array_[i].dump_to(out, indent, depth + 1);
      }
      newline_indent(out, indent, depth);
      out += ']';
      break;
    }
    case Type::kObject: {
      if (object_.empty()) {
        out += "{}";
        break;
      }
      out += '{';
      for (std::size_t i = 0; i < object_.size(); ++i) {
        if (i > 0) out += ',';
        newline_indent(out, indent, depth + 1);
        escape_into(out, object_[i].first);
        out += indent > 0 ? ": " : ":";
        object_[i].second.dump_to(out, indent, depth + 1);
      }
      newline_indent(out, indent, depth);
      out += '}';
      break;
    }
  }
}

std::string Json::dump(int indent) const {
  std::string out;
  dump_to(out, indent, 0);
  if (indent > 0) out += '\n';
  return out;
}

namespace {

class Parser {
 public:
  explicit Parser(const std::string& text) : text_(text) {}

  Json parse_document() {
    Json value = parse_value();
    skip_ws();
    if (pos_ != text_.size()) fail("trailing characters after document");
    return value;
  }

 private:
  [[noreturn]] void fail(const std::string& what) const {
    throw IoError("json parse error at offset " + std::to_string(pos_) +
                  ": " + what);
  }

  void skip_ws() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' ||
            text_[pos_] == '\n' || text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  char peek() {
    if (pos_ >= text_.size()) fail("unexpected end of input");
    return text_[pos_];
  }

  void expect(char c) {
    if (peek() != c) fail(std::string("expected '") + c + "'");
    ++pos_;
  }

  bool consume_literal(const char* literal) {
    const std::size_t len = std::strlen(literal);
    if (text_.compare(pos_, len, literal) == 0) {
      pos_ += len;
      return true;
    }
    return false;
  }

  Json parse_value() {
    skip_ws();
    const char c = peek();
    if (c == '{') return parse_object();
    if (c == '[') return parse_array();
    if (c == '"') return Json(parse_string());
    if (consume_literal("true")) return Json(true);
    if (consume_literal("false")) return Json(false);
    if (consume_literal("null")) return Json();
    if (c == '-' || (c >= '0' && c <= '9')) return parse_number();
    fail("unexpected character");
  }

  Json parse_object() {
    expect('{');
    Json object = Json::object();
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      return object;
    }
    while (true) {
      skip_ws();
      std::string key = parse_string();
      skip_ws();
      expect(':');
      Json value = parse_value();
      if (object.find(key) != nullptr) fail("duplicate key '" + key + "'");
      object.set(key, std::move(value));
      skip_ws();
      const char c = peek();
      ++pos_;
      if (c == '}') return object;
      if (c != ',') fail("expected ',' or '}' in object");
    }
  }

  Json parse_array() {
    expect('[');
    Json array = Json::array();
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      return array;
    }
    while (true) {
      array.push_back(parse_value());
      skip_ws();
      const char c = peek();
      ++pos_;
      if (c == ']') return array;
      if (c != ',') fail("expected ',' or ']' in array");
    }
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    while (true) {
      if (pos_ >= text_.size()) fail("unterminated string");
      const char c = text_[pos_++];
      if (c == '"') return out;
      if (static_cast<unsigned char>(c) < 0x20) {
        fail("raw control character in string");
      }
      if (c != '\\') {
        out += c;
        continue;
      }
      if (pos_ >= text_.size()) fail("unterminated escape");
      const char esc = text_[pos_++];
      switch (esc) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'u': {
          if (pos_ + 4 > text_.size()) fail("truncated \\u escape");
          unsigned int code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') {
              code |= static_cast<unsigned>(h - '0');
            } else if (h >= 'a' && h <= 'f') {
              code |= static_cast<unsigned>(h - 'a' + 10);
            } else if (h >= 'A' && h <= 'F') {
              code |= static_cast<unsigned>(h - 'A' + 10);
            } else {
              fail("bad hex digit in \\u escape");
            }
          }
          // The harness only ever writes \u00XX control escapes; encode the
          // code point as UTF-8 (no surrogate-pair support needed/claimed).
          if (code >= 0xD800 && code <= 0xDFFF) {
            fail("surrogate pairs are not supported");
          }
          if (code < 0x80) {
            out += static_cast<char>(code);
          } else if (code < 0x800) {
            out += static_cast<char>(0xC0 | (code >> 6));
            out += static_cast<char>(0x80 | (code & 0x3F));
          } else {
            out += static_cast<char>(0xE0 | (code >> 12));
            out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
            out += static_cast<char>(0x80 | (code & 0x3F));
          }
          break;
        }
        default:
          fail("unknown escape");
      }
    }
  }

  Json parse_number() {
    const std::size_t start = pos_;
    if (peek() == '-') ++pos_;
    if (pos_ >= text_.size() || !std::isdigit(
            static_cast<unsigned char>(text_[pos_]))) {
      fail("malformed number");
    }
    const std::size_t int_start = pos_;
    const bool leading_zero = text_[pos_] == '0';
    while (pos_ < text_.size() &&
           std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
    if (leading_zero && pos_ - int_start > 1) fail("leading zero");
    if (pos_ < text_.size() && text_[pos_] == '.') {
      ++pos_;
      if (pos_ >= text_.size() || !std::isdigit(
              static_cast<unsigned char>(text_[pos_]))) {
        fail("malformed fraction");
      }
      while (pos_ < text_.size() &&
             std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
        ++pos_;
      }
    }
    if (pos_ < text_.size() && (text_[pos_] == 'e' || text_[pos_] == 'E')) {
      ++pos_;
      if (pos_ < text_.size() && (text_[pos_] == '+' || text_[pos_] == '-')) {
        ++pos_;
      }
      if (pos_ >= text_.size() || !std::isdigit(
              static_cast<unsigned char>(text_[pos_]))) {
        fail("malformed exponent");
      }
      while (pos_ < text_.size() &&
             std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
        ++pos_;
      }
    }
    const std::string token = text_.substr(start, pos_ - start);
    char* end = nullptr;
    const double value = std::strtod(token.c_str(), &end);
    if (end == nullptr || *end != '\0') fail("malformed number");
    if (!std::isfinite(value)) fail("number out of range");
    return Json(value);
  }

  const std::string& text_;
  std::size_t pos_ = 0;
};

}  // namespace

Json Json::parse(const std::string& text) {
  return Parser(text).parse_document();
}

}  // namespace lbe::perf
