#include "perf/metrics.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"
#include "common/stats.hpp"

namespace lbe::perf {

LoadStats load_stats(const std::vector<double>& rank_times) {
  LoadStats stats;
  if (rank_times.empty()) return stats;
  double sum = 0.0;
  for (const double t : rank_times) {
    LBE_CHECK(t >= 0.0, "negative rank time");
    sum += t;
    stats.t_max = std::max(stats.t_max, t);
  }
  stats.t_avg = sum / static_cast<double>(rank_times.size());
  stats.delta_t_max = std::max(0.0, stats.t_max - stats.t_avg);
  stats.imbalance = stats.t_avg > 0.0 ? stats.delta_t_max / stats.t_avg : 0.0;
  stats.wasted_cpu =
      static_cast<double>(rank_times.size()) * stats.delta_t_max;
  return stats;
}

double load_imbalance(const std::vector<double>& rank_times) {
  return load_stats(rank_times).imbalance;
}

std::vector<double> work_unit_loads(
    const std::vector<index::QueryWork>& per_rank_work) {
  std::vector<double> units;
  units.reserve(per_rank_work.size());
  for (const auto& work : per_rank_work) units.push_back(work.cost_units());
  return units;
}

LoadStats load_stats_from_work(
    const std::vector<index::QueryWork>& per_rank_work) {
  return load_stats(work_unit_loads(per_rank_work));
}

SampleStats summarize(std::vector<double> samples) {
  SampleStats stats;
  stats.samples = samples.size();
  if (samples.empty()) return stats;
  std::sort(samples.begin(), samples.end());
  const std::size_t n = samples.size();
  stats.median = n % 2 == 1 ? samples[n / 2]
                            : 0.5 * (samples[n / 2 - 1] + samples[n / 2]);
  // One stddev convention for the whole codebase: RunningStats' population
  // variance (common/stats.hpp), so lbectl and lbebench can never drift.
  RunningStats accumulator;
  for (const double s : samples) accumulator.add(s);
  stats.min = accumulator.min();
  stats.max = accumulator.max();
  stats.mean = accumulator.mean();
  stats.stddev = accumulator.stddev();
  return stats;
}

double speedup_vs_base(double base_time, int base_ranks, double time) {
  LBE_CHECK(base_time > 0.0 && time > 0.0, "speedup needs positive times");
  LBE_CHECK(base_ranks >= 1, "speedup base needs >= 1 rank");
  return static_cast<double>(base_ranks) * base_time / time;
}

double efficiency(double speedup, int ranks) {
  LBE_CHECK(ranks >= 1, "efficiency needs >= 1 rank");
  return speedup / static_cast<double>(ranks);
}

double cpu_time_speedup(const std::vector<double>& baseline_times,
                        const std::vector<double>& improved_times) {
  const LoadStats base = load_stats(baseline_times);
  const LoadStats improved = load_stats(improved_times);
  LBE_CHECK(improved.t_max > 0.0, "improved run has zero compute time");
  // Total CPU-seconds = ranks * makespan: every rank occupies its CPU until
  // the straggler finishes (§VI's amplification argument).
  const double base_cpu =
      static_cast<double>(baseline_times.size()) * base.t_max;
  const double improved_cpu =
      static_cast<double>(improved_times.size()) * improved.t_max;
  return base_cpu / improved_cpu;
}

}  // namespace lbe::perf
