#include "common/net.hpp"

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <cstdint>
#include <cstring>

namespace lbe::net {

namespace {

[[noreturn]] void throw_errno(const std::string& what) {
  throw IoError(what + ": " + std::strerror(errno));
}

sockaddr_un make_address(const std::string& path) {
  sockaddr_un address{};
  address.sun_family = AF_UNIX;
  if (path.size() >= sizeof(address.sun_path)) {
    throw IoError("socket path too long for sockaddr_un: " + path);
  }
  std::memcpy(address.sun_path, path.c_str(), path.size() + 1);
  return address;
}

}  // namespace

void Fd::reset() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

Fd listen_unix(const std::string& path, int backlog) {
  Fd fd(::socket(AF_UNIX, SOCK_STREAM, 0));
  if (!fd.valid()) throw_errno("socket");
  const sockaddr_un address = make_address(path);
  // A previous daemon that died without cleanup leaves the socket file
  // behind; bind() would fail with EADDRINUSE on a file nobody answers.
  ::unlink(path.c_str());
  if (::bind(fd.get(), reinterpret_cast<const sockaddr*>(&address),
             sizeof(address)) != 0) {
    throw_errno("bind " + path);
  }
  if (::listen(fd.get(), backlog) != 0) throw_errno("listen " + path);
  return fd;
}

Fd connect_unix(const std::string& path) {
  Fd fd(::socket(AF_UNIX, SOCK_STREAM, 0));
  if (!fd.valid()) throw_errno("socket");
  const sockaddr_un address = make_address(path);
  int rc;
  do {
    rc = ::connect(fd.get(), reinterpret_cast<const sockaddr*>(&address),
                   sizeof(address));
  } while (rc != 0 && errno == EINTR);
  if (rc != 0) throw_errno("connect " + path);
  return fd;
}

Fd accept_connection(const Fd& listener) {
  const int fd = ::accept(listener.get(), nullptr, nullptr);
  if (fd < 0) {
    if (errno == EINTR || errno == EAGAIN || errno == EWOULDBLOCK ||
        errno == ECONNABORTED) {
      return Fd();
    }
    throw_errno("accept");
  }
  return Fd(fd);
}

bool read_exact(int fd, void* data, std::size_t size) {
  auto* bytes = static_cast<std::uint8_t*>(data);
  std::size_t done = 0;
  while (done < size) {
    const ssize_t n = ::read(fd, bytes + done, size - done);
    if (n > 0) {
      done += static_cast<std::size_t>(n);
      continue;
    }
    if (n == 0) {
      if (done == 0) return false;  // clean EOF between frames
      throw IoError("peer disconnected mid-frame");
    }
    if (errno == EINTR) continue;
    throw_errno("read");
  }
  return true;
}

void write_all(int fd, const void* data, std::size_t size) {
  const auto* bytes = static_cast<const std::uint8_t*>(data);
  std::size_t done = 0;
  while (done < size) {
    // MSG_NOSIGNAL: a vanished peer must surface as EPIPE here, not kill
    // the whole process with SIGPIPE.
    const ssize_t n = ::send(fd, bytes + done, size - done, MSG_NOSIGNAL);
    if (n >= 0) {
      done += static_cast<std::size_t>(n);
      continue;
    }
    if (errno == EINTR) continue;
    throw_errno("send");
  }
}

}  // namespace lbe::net
