#include "common/binary_io.hpp"

#include <algorithm>
#include <array>

namespace lbe::bin {

namespace {

std::array<std::uint32_t, 256> make_crc_table() {
  std::array<std::uint32_t, 256> table{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t c = i;
    for (int k = 0; k < 8; ++k) {
      c = (c & 1u) ? (0xEDB88320u ^ (c >> 1)) : (c >> 1);
    }
    table[i] = c;
  }
  return table;
}

}  // namespace

std::uint32_t crc32(const void* data, std::size_t size, std::uint32_t seed) {
  static const std::array<std::uint32_t, 256> kTable = make_crc_table();
  std::uint32_t crc = seed ^ 0xFFFFFFFFu;
  const auto* bytes = static_cast<const unsigned char*>(data);
  for (std::size_t i = 0; i < size; ++i) {
    crc = kTable[(crc ^ bytes[i]) & 0xFFu] ^ (crc >> 8);
  }
  return crc ^ 0xFFFFFFFFu;
}

void write_section(std::ostream& out, std::uint32_t tag,
                   std::string_view payload) {
  write_pod(out, tag);
  write_pod(out, static_cast<std::uint64_t>(payload.size()));
  write_pod(out, crc32(payload));
  out.write(payload.data(), static_cast<std::streamsize>(payload.size()));
  if (!out) throw IoError("binary write failed");
}

std::string read_section(std::istream& in, std::uint32_t expected_tag) {
  const auto tag = read_pod<std::uint32_t>(in);
  if (tag != expected_tag) {
    throw IoError("binary read failed: unexpected section tag (corrupt "
                  "file?)");
  }
  const auto size = read_pod<std::uint64_t>(in);
  if (size > kMaxSectionBytes) {
    throw IoError("binary read failed: implausible section size (corrupt "
                  "file?)");
  }
  const auto stored_crc = read_pod<std::uint32_t>(in);
  // Grow the buffer in bounded chunks rather than trusting the size field
  // with one up-front allocation: a corrupt size under the cap must fail
  // as a truncated-section IoError, not as an OOM/bad_alloc.
  constexpr std::size_t kChunk = std::size_t{1} << 20;
  std::string payload;
  std::uint64_t remaining = size;
  while (remaining > 0) {
    const auto step =
        static_cast<std::size_t>(std::min<std::uint64_t>(remaining, kChunk));
    const std::size_t old_size = payload.size();
    payload.resize(old_size + step);
    in.read(payload.data() + old_size, static_cast<std::streamsize>(step));
    if (!in) throw IoError("binary read failed: truncated section");
    remaining -= step;
  }
  if (crc32(payload) != stored_crc) {
    throw IoError("binary read failed: section checksum mismatch (corrupt "
                  "file?)");
  }
  return payload;
}

}  // namespace lbe::bin
