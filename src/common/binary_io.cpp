#include "common/binary_io.hpp"

#include <algorithm>
#include <array>

namespace lbe::bin {

namespace {

std::array<std::uint32_t, 256> make_crc_table() {
  std::array<std::uint32_t, 256> table{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t c = i;
    for (int k = 0; k < 8; ++k) {
      c = (c & 1u) ? (0xEDB88320u ^ (c >> 1)) : (c >> 1);
    }
    table[i] = c;
  }
  return table;
}

}  // namespace

std::uint32_t crc32(const void* data, std::size_t size, std::uint32_t seed) {
  static const std::array<std::uint32_t, 256> kTable = make_crc_table();
  std::uint32_t crc = seed ^ 0xFFFFFFFFu;
  const auto* bytes = static_cast<const unsigned char*>(data);
  for (std::size_t i = 0; i < size; ++i) {
    crc = kTable[(crc ^ bytes[i]) & 0xFFu] ^ (crc >> 8);
  }
  return crc ^ 0xFFFFFFFFu;
}

void write_section(std::ostream& out, std::uint32_t tag,
                   std::string_view payload) {
  write_pod(out, tag);
  write_pod(out, static_cast<std::uint64_t>(payload.size()));
  write_pod(out, crc32(payload));
  out.write(payload.data(), static_cast<std::streamsize>(payload.size()));
  if (!out) throw IoError("binary write failed");
}

std::string read_exact(std::istream& in, std::uint64_t size) {
  // Grow the buffer in bounded chunks rather than trusting the size field
  // with one up-front allocation: a corrupt size under the cap must fail
  // as a truncated-section IoError, not as an OOM/bad_alloc.
  constexpr std::size_t kChunk = std::size_t{1} << 20;
  std::string payload;
  std::uint64_t remaining = size;
  while (remaining > 0) {
    const auto step =
        static_cast<std::size_t>(std::min<std::uint64_t>(remaining, kChunk));
    const std::size_t old_size = payload.size();
    payload.resize(old_size + step);
    in.read(payload.data() + old_size, static_cast<std::streamsize>(step));
    if (!in) throw IoError("binary read failed: truncated section");
    remaining -= step;
  }
  return payload;
}

namespace {

constexpr std::size_t kRawAlign = 8;

std::size_t padding_for(std::uint64_t cursor) {
  return static_cast<std::size_t>((kRawAlign - cursor % kRawAlign) %
                                  kRawAlign);
}

/// Shared [tag][size][crc][payload] frame parse behind read_section and
/// read_raw_section (one copy of the validation logic and its messages).
/// Returns the payload; `frame_bytes` reports the frame + payload span.
std::string read_section_frame(std::istream& in, std::uint32_t expected_tag,
                               std::uint64_t& frame_bytes) {
  const auto tag = read_pod<std::uint32_t>(in);
  if (tag != expected_tag) {
    throw IoError("binary read failed: unexpected section tag (corrupt "
                  "file?)");
  }
  const auto size = read_pod<std::uint64_t>(in);
  if (size > kMaxSectionBytes) {
    throw IoError("binary read failed: implausible section size (corrupt "
                  "file?)");
  }
  const auto stored_crc = read_pod<std::uint32_t>(in);
  std::string payload = read_exact(in, size);
  if (crc32(payload) != stored_crc) {
    throw IoError("binary read failed: section checksum mismatch (corrupt "
                  "file?)");
  }
  frame_bytes = 16 + size;
  return payload;
}

}  // namespace

std::string read_section(std::istream& in, std::uint32_t expected_tag) {
  std::uint64_t frame_bytes = 0;
  return read_section_frame(in, expected_tag, frame_bytes);
}

std::uint64_t raw_section_span(std::uint64_t cursor, std::uint64_t size) {
  return padding_for(cursor) + 16 + size;
}

void write_alignment(std::ostream& out, std::uint64_t& cursor) {
  static const char kZeros[kRawAlign] = {};
  const std::size_t pad = padding_for(cursor);
  if (pad != 0) {
    out.write(kZeros, static_cast<std::streamsize>(pad));
    if (!out) throw IoError("binary write failed");
    cursor += pad;
  }
}

void read_alignment(std::istream& in, std::uint64_t& cursor) {
  const std::size_t pad = padding_for(cursor);
  if (pad == 0) return;
  char buffer[kRawAlign] = {};
  in.read(buffer, static_cast<std::streamsize>(pad));
  if (!in) throw IoError("binary read failed: truncated stream");
  for (std::size_t i = 0; i < pad; ++i) {
    if (buffer[i] != 0) {
      throw IoError("binary read failed: non-zero alignment padding "
                    "(corrupt file?)");
    }
  }
  cursor += pad;
}

void write_padded(std::ostream& out, const void* data, std::size_t size,
                  std::uint64_t& cursor) {
  if (size != 0) {
    out.write(static_cast<const char*>(data),
              static_cast<std::streamsize>(size));
    if (!out) throw IoError("binary write failed");
    cursor += size;
  }
  write_alignment(out, cursor);
}

void crc32_padded(const void* data, std::size_t size, std::uint64_t& cursor,
                  std::uint32_t& crc) {
  static const char kZeros[kRawAlign] = {};
  crc = crc32(data, size, crc);
  cursor += size;
  const std::size_t pad = padding_for(cursor);
  crc = crc32(kZeros, pad, crc);
  cursor += pad;
}

void write_raw_section_frame(std::ostream& out, std::uint64_t& cursor,
                             std::uint32_t tag, std::uint64_t size,
                             std::uint32_t crc) {
  write_alignment(out, cursor);
  write_pod(out, tag);
  write_pod(out, size);
  write_pod(out, crc);
  cursor += 16;
}

void write_raw_section(std::ostream& out, std::uint64_t& cursor,
                       std::uint32_t tag, std::string_view payload) {
  write_raw_section_frame(out, cursor, tag, payload.size(), crc32(payload));
  out.write(payload.data(), static_cast<std::streamsize>(payload.size()));
  if (!out) throw IoError("binary write failed");
  cursor += payload.size();
}

std::string read_raw_section(std::istream& in, std::uint64_t& cursor,
                             std::uint32_t expected_tag) {
  read_alignment(in, cursor);
  std::uint64_t frame_bytes = 0;
  std::string payload = read_section_frame(in, expected_tag, frame_bytes);
  cursor += frame_bytes;
  return payload;
}

}  // namespace lbe::bin
