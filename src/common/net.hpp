// Shared POSIX socket plumbing: an RAII fd, Unix-domain listen/connect
// helpers, and exact-length I/O loops that retry EINTR and never raise
// SIGPIPE (MSG_NOSIGNAL).
//
// Two subsystems frame their protocols on top of these primitives: the
// serving daemon (serve/socket.hpp, "LBES" frames) and the multi-process
// rank transport (simmpi/process.hpp, "LBEW" frames). The error split is
// shared too: a peer disconnect mid-frame surfaces as IoError, a frame
// that decodes badly as CommError, and a length prefix beyond the bound as
// FrameTooLargeError — callers can tell "the connection died" from "the
// peer sent garbage" from "the peer asked for too much".
#pragma once

#include <cstddef>
#include <string>
#include <utility>

#include "common/error.hpp"

namespace lbe::net {

/// Owning file descriptor. Move-only; closes on destruction.
class Fd {
 public:
  Fd() = default;
  explicit Fd(int fd) : fd_(fd) {}
  ~Fd() { reset(); }

  Fd(Fd&& other) noexcept : fd_(std::exchange(other.fd_, -1)) {}
  Fd& operator=(Fd&& other) noexcept {
    if (this != &other) {
      reset();
      fd_ = std::exchange(other.fd_, -1);
    }
    return *this;
  }
  Fd(const Fd&) = delete;
  Fd& operator=(const Fd&) = delete;

  int get() const noexcept { return fd_; }
  bool valid() const noexcept { return fd_ >= 0; }
  void reset();

 private:
  int fd_ = -1;
};

/// Binds and listens on a Unix-domain socket at `path`, unlinking any stale
/// socket file first. Throws IoError on failure (e.g. path too long for
/// sockaddr_un, permission denied).
Fd listen_unix(const std::string& path, int backlog = 16);

/// Connects to the socket at `path`. Throws IoError on failure.
Fd connect_unix(const std::string& path);

/// Accepts one pending connection; returns an invalid Fd if the accept was
/// interrupted or would block (listener is used with poll()).
Fd accept_connection(const Fd& listener);

/// Reads exactly `size` bytes. Returns false on clean EOF at offset 0 (peer
/// closed between frames); throws IoError on mid-buffer EOF or errors.
bool read_exact(int fd, void* data, std::size_t size);

/// Writes all of `size` bytes (send with MSG_NOSIGNAL, EINTR retried).
/// Throws IoError when the peer is gone.
void write_all(int fd, const void* data, std::size_t size);

/// Thrown by framed readers when a length prefix exceeds the admission
/// bound. Distinct from plain CommError so callers can answer specifically
/// (the serve daemon replies kTooLarge, not kMalformed; the process
/// transport reports which worker overflowed).
struct FrameTooLargeError : CommError {
  using CommError::CommError;
};

}  // namespace lbe::net
