#include "common/logging.hpp"

#include <atomic>
#include <cstdio>
#include <mutex>

namespace lbe::log {
namespace {

std::atomic<Level> g_level{Level::kInfo};

std::mutex& sink_mutex() {
  static std::mutex m;
  return m;
}

Sink& sink_storage() {
  static Sink s;  // empty => default sink
  return s;
}

const char* level_name(Level level) {
  switch (level) {
    case Level::kDebug:
      return "DEBUG";
    case Level::kInfo:
      return "INFO";
    case Level::kWarn:
      return "WARN";
    case Level::kError:
      return "ERROR";
    case Level::kOff:
      return "OFF";
  }
  return "?";
}

}  // namespace

void set_level(Level level) { g_level.store(level, std::memory_order_relaxed); }

Level level() { return g_level.load(std::memory_order_relaxed); }

void set_sink(Sink sink) {
  std::lock_guard<std::mutex> lock(sink_mutex());
  sink_storage() = std::move(sink);
}

void write(Level lvl, const std::string& message) {
  if (lvl < level()) return;
  std::lock_guard<std::mutex> lock(sink_mutex());
  if (Sink& s = sink_storage()) {
    s(lvl, message);
  } else {
    std::fprintf(stderr, "[%s] %s\n", level_name(lvl), message.c_str());
  }
}

}  // namespace lbe::log
