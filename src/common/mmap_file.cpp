#include "common/mmap_file.hpp"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "common/binary_io.hpp"

namespace lbe::bin {

std::shared_ptr<const MmapFile> MmapFile::open(const std::string& path) {
  const int fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
  if (fd < 0) {
    throw IoError("cannot open file for mapping: " + path + " (" +
                  std::strerror(errno) + ")");
  }
  struct stat st = {};
  if (::fstat(fd, &st) != 0) {
    const int saved = errno;
    ::close(fd);
    throw IoError("cannot stat file for mapping: " + path + " (" +
                  std::strerror(saved) + ")");
  }
  if (st.st_size <= 0) {
    ::close(fd);
    throw IoError("cannot map empty file: " + path);
  }
  const auto size = static_cast<std::size_t>(st.st_size);
  void* data = ::mmap(nullptr, size, PROT_READ, MAP_PRIVATE, fd, 0);
  // The mapping holds its own reference to the file; the descriptor is not
  // needed once mmap succeeds (POSIX keeps the pages valid after close).
  const int saved = errno;
  ::close(fd);
  if (data == MAP_FAILED) {
    throw IoError("cannot mmap file: " + path + " (" + std::strerror(saved) +
                  ")");
  }
  return std::shared_ptr<const MmapFile>(new MmapFile(data, size, path));
}

MmapFile::~MmapFile() {
  if (data_ != nullptr) ::munmap(data_, size_);
}

std::span<const std::byte> read_raw_section(ByteReader& reader,
                                            std::uint32_t expected_tag) {
  reader.align();
  const auto tag = reader.read_pod<std::uint32_t>();
  if (tag != expected_tag) {
    throw IoError("mapped read failed: unexpected section tag (corrupt "
                  "file?)");
  }
  const auto size = reader.read_pod<std::uint64_t>();
  if (size > kMaxSectionBytes) {
    throw IoError("mapped read failed: implausible section size (corrupt "
                  "file?)");
  }
  const auto stored_crc = reader.read_pod<std::uint32_t>();
  const auto payload = reader.take(static_cast<std::size_t>(size));
  if (crc32(payload.data(), payload.size()) != stored_crc) {
    throw IoError("mapped read failed: section checksum mismatch (corrupt "
                  "file?)");
  }
  return payload;
}

}  // namespace lbe::bin
