// Binary stream serialization helpers (little-endian, fixed-width).
//
// Used by the index on-disk format (index/serialize.hpp) and the plan file
// (app/pipeline.hpp). Reads validate against stream truncation and throw
// IoError; a sanity cap guards vector sizes so corrupted headers fail fast
// instead of attempting huge allocations. `write_section`/`read_section`
// add CRC-checked framing for formats that must reject bit corruption, not
// just truncation.
#pragma once

#include <cstdint>
#include <istream>
#include <ostream>
#include <string>
#include <string_view>
#include <type_traits>
#include <vector>

#include "common/error.hpp"

namespace lbe::bin {

/// Upper bound on any serialized vector's element count (16 Gi entries);
/// anything larger indicates corruption, not data.
inline constexpr std::uint64_t kMaxElements = 1ull << 34;

/// Upper bound on one CRC-framed section's payload (1 TiB).
inline constexpr std::uint64_t kMaxSectionBytes = 1ull << 40;

/// CRC-32 (IEEE 802.3, reflected polynomial 0xEDB88320) of a byte range.
std::uint32_t crc32(const void* data, std::size_t size,
                    std::uint32_t seed = 0);
inline std::uint32_t crc32(std::string_view bytes, std::uint32_t seed = 0) {
  return crc32(bytes.data(), bytes.size(), seed);
}

/// Writes one framed section: [tag u32][size u64][crc32 u32][payload].
void write_section(std::ostream& out, std::uint32_t tag,
                   std::string_view payload);

/// Reads one framed section, requiring `expected_tag`, and verifies the
/// payload checksum. Throws IoError on tag mismatch, truncation, an
/// implausible size, or a CRC mismatch (flipped bits).
std::string read_section(std::istream& in, std::uint32_t expected_tag);

// ---- format-v3 aligned ("raw") sections -----------------------------------
//
// Same 16-byte [tag u32][size u64][crc32 u32] frame as write_section, but
// preceded by zero padding so the frame — and, the frame being 16 bytes,
// the payload — starts at an 8-byte-aligned *file* offset. That is what
// lets the mmap warm-start path (common/mmap_file.hpp) view u32/u64/double
// arrays in place. Both sides thread an explicit byte cursor (bytes since
// the start of the file) instead of trusting tellp/tellg, so nested
// components embedded at arbitrary offsets stay in sync. Padding bytes are
// written as zeros and *verified* zero on read: no byte of a v3 file is
// outside some validated region, so a flipped bit anywhere is an IoError.

/// Bytes `write_raw_section` will occupy for a payload of `size` bytes
/// starting at file offset `cursor` (padding + 16-byte frame + payload).
std::uint64_t raw_section_span(std::uint64_t cursor, std::uint64_t size);

/// Zero-pads `out` to the next 8-byte boundary of `cursor`.
void write_alignment(std::ostream& out, std::uint64_t& cursor);

/// Consumes padding up to the next 8-byte boundary of `cursor`, requiring
/// every pad byte to be zero (IoError otherwise).
void read_alignment(std::istream& in, std::uint64_t& cursor);

/// Alignment padding + frame only — for callers that stream a large payload
/// right after (the payload's `size` and `crc` must be known up front).
void write_raw_section_frame(std::ostream& out, std::uint64_t& cursor,
                             std::uint32_t tag, std::uint64_t size,
                             std::uint32_t crc);

/// Alignment padding + frame + payload.
void write_raw_section(std::ostream& out, std::uint64_t& cursor,
                       std::uint32_t tag, std::string_view payload);

/// Reads one aligned section written by write_raw_section, verifying the
/// padding, tag and checksum. Throws IoError on any mismatch.
std::string read_raw_section(std::istream& in, std::uint64_t& cursor,
                             std::uint32_t expected_tag);

/// Reads exactly `size` bytes in bounded chunks (a corrupt size field fails
/// as a truncated-stream IoError, never as one giant bad_alloc).
std::string read_exact(std::istream& in, std::uint64_t size);

/// Appends `size` raw bytes plus zero padding to the next 8-byte boundary
/// of `cursor` (payload- or file-relative, as the caller tracks it).
void write_padded(std::ostream& out, const void* data, std::size_t size,
                  std::uint64_t& cursor);

/// CRC twin of write_padded: chains `size` bytes plus their zero padding
/// into `crc`, advancing `cursor` identically. Lets a writer know a large
/// payload's checksum before streaming it (no payload-sized buffer).
void crc32_padded(const void* data, std::size_t size, std::uint64_t& cursor,
                  std::uint32_t& crc);

template <typename T>
void write_pod(std::ostream& out, const T& value) {
  static_assert(std::is_trivially_copyable_v<T>);
  out.write(reinterpret_cast<const char*>(&value), sizeof(T));
  if (!out) throw IoError("binary write failed");
}

template <typename T>
T read_pod(std::istream& in) {
  static_assert(std::is_trivially_copyable_v<T>);
  T value;
  in.read(reinterpret_cast<char*>(&value), sizeof(T));
  if (!in) throw IoError("binary read failed: truncated stream");
  return value;
}

template <typename T>
void write_vector(std::ostream& out, const std::vector<T>& v) {
  static_assert(std::is_trivially_copyable_v<T>);
  write_pod(out, static_cast<std::uint64_t>(v.size()));
  if (!v.empty()) {
    out.write(reinterpret_cast<const char*>(v.data()),
              static_cast<std::streamsize>(v.size() * sizeof(T)));
    if (!out) throw IoError("binary write failed");
  }
}

template <typename T>
std::vector<T> read_vector(std::istream& in) {
  static_assert(std::is_trivially_copyable_v<T>);
  const auto count = read_pod<std::uint64_t>(in);
  if (count > kMaxElements) {
    throw IoError("binary read failed: implausible element count (corrupt "
                  "file?)");
  }
  std::vector<T> v(static_cast<std::size_t>(count));
  if (count) {
    in.read(reinterpret_cast<char*>(v.data()),
            static_cast<std::streamsize>(count * sizeof(T)));
    if (!in) throw IoError("binary read failed: truncated stream");
  }
  return v;
}

inline void write_string(std::ostream& out, const std::string& s) {
  write_pod(out, static_cast<std::uint64_t>(s.size()));
  out.write(s.data(), static_cast<std::streamsize>(s.size()));
  if (!out) throw IoError("binary write failed");
}

inline std::string read_string(std::istream& in) {
  const auto size = read_pod<std::uint64_t>(in);
  if (size > kMaxElements) {
    throw IoError("binary read failed: implausible string size");
  }
  std::string s(static_cast<std::size_t>(size), '\0');
  if (size) {
    in.read(s.data(), static_cast<std::streamsize>(size));
    if (!in) throw IoError("binary read failed: truncated stream");
  }
  return s;
}

}  // namespace lbe::bin
