// Minimal leveled logger.
//
// A single process-global sink (default: stderr) with a runtime level filter.
// Benchmarks set the level to `warn` so figure output stays clean; tests can
// capture messages through `set_sink`.
#pragma once

#include <functional>
#include <sstream>
#include <string>

namespace lbe::log {

enum class Level { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

/// Sets the minimum level that reaches the sink. Thread-safe.
void set_level(Level level);
Level level();

/// Replaces the output sink (default writes "LEVEL message\n" to stderr).
/// Passing nullptr restores the default sink. Thread-safe.
using Sink = std::function<void(Level, const std::string&)>;
void set_sink(Sink sink);

/// Emits one message if `level` passes the filter. Thread-safe.
void write(Level level, const std::string& message);

namespace detail {
template <typename... Args>
std::string concat(Args&&... args) {
  std::ostringstream os;
  (os << ... << std::forward<Args>(args));
  return os.str();
}
}  // namespace detail

template <typename... Args>
void debug(Args&&... args) {
  if (level() <= Level::kDebug)
    write(Level::kDebug, detail::concat(std::forward<Args>(args)...));
}
template <typename... Args>
void info(Args&&... args) {
  if (level() <= Level::kInfo)
    write(Level::kInfo, detail::concat(std::forward<Args>(args)...));
}
template <typename... Args>
void warn(Args&&... args) {
  if (level() <= Level::kWarn)
    write(Level::kWarn, detail::concat(std::forward<Args>(args)...));
}
template <typename... Args>
void error(Args&&... args) {
  if (level() <= Level::kError)
    write(Level::kError, detail::concat(std::forward<Args>(args)...));
}

}  // namespace lbe::log
