// Small string helpers used by the parsers and writers.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace lbe::str {

/// Removes leading and trailing ASCII whitespace.
std::string_view trim(std::string_view s);

/// Splits on a single character; empty fields are preserved.
std::vector<std::string_view> split(std::string_view s, char sep);

/// Splits on any amount of ASCII whitespace; empty fields never appear.
std::vector<std::string_view> split_ws(std::string_view s);

/// True if `s` starts with `prefix`.
bool starts_with(std::string_view s, std::string_view prefix);

/// ASCII upper-case copy.
std::string to_upper(std::string_view s);

/// Parses a double; throws lbe::ParseError-free std::invalid_argument-free
/// variant: returns false on failure instead of throwing.
bool parse_double(std::string_view s, double& out);

/// Parses a non-negative integer. Returns false on failure/overflow.
bool parse_u64(std::string_view s, std::uint64_t& out);

/// Formats `bytes` with binary units, e.g. "1.50 GiB".
std::string human_bytes(std::uint64_t bytes);

/// Formats seconds compactly, e.g. "1.23 s" / "45.6 ms".
std::string human_seconds(double seconds);

}  // namespace lbe::str
