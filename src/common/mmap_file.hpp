// Read-only memory-mapped files and a bounds-checked byte cursor.
//
// The warm-start path (index/serialize.hpp, format v3) binds index arrays
// straight into mapped file memory instead of streaming them into freshly
// allocated vectors: the kernel pages data in on first touch, so loading a
// prepared bundle costs O(metadata) up front and narrow-window searches
// that visit few chunks never read most of the file at all. `MmapFile` is
// the RAII mapping (shared ownership, because several index components may
// view one mapping and must keep it alive); `ByteReader` walks mapped bytes
// with the same corruption discipline as the stream readers in binary_io:
// every overrun, bad tag, non-zero alignment pad or checksum mismatch is a
// typed IoError, never UB.
#pragma once

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <memory>
#include <span>
#include <string>
#include <type_traits>

#include "common/error.hpp"

namespace lbe::bin {

/// Alignment every format-v3 raw-array section start is padded to, so that
/// u64/double columns can be viewed in place from a mapping.
inline constexpr std::size_t kRawAlignment = 8;

/// One read-only mapping of a whole file. Open via `open()` (shared_ptr so
/// spans into the mapping can keep it alive past the loader that created
/// it). Throws IoError when the file is missing, empty, or unmappable.
class MmapFile {
 public:
  static std::shared_ptr<const MmapFile> open(const std::string& path);

  MmapFile(const MmapFile&) = delete;
  MmapFile& operator=(const MmapFile&) = delete;
  ~MmapFile();

  std::span<const std::byte> bytes() const noexcept {
    return {static_cast<const std::byte*>(data_), size_};
  }
  std::size_t size() const noexcept { return size_; }
  const std::string& path() const noexcept { return path_; }

 private:
  MmapFile(void* data, std::size_t size, std::string path)
      : data_(data), size_(size), path_(std::move(path)) {}

  void* data_;
  std::size_t size_;
  std::string path_;
};

/// Bounds-checked cursor over a byte range (typically MmapFile::bytes()).
/// Mirrors the binary_io stream readers: any attempt to read past the end
/// throws IoError, so a truncated file can never yield a wild span.
class ByteReader {
 public:
  explicit ByteReader(std::span<const std::byte> bytes,
                      std::size_t offset = 0)
      : bytes_(bytes), offset_(offset) {
    if (offset_ > bytes_.size()) {
      throw IoError("mapped read failed: cursor past end of file");
    }
  }

  std::size_t offset() const noexcept { return offset_; }
  std::size_t remaining() const noexcept { return bytes_.size() - offset_; }

  /// Consumes `n` bytes; throws IoError on overrun.
  std::span<const std::byte> take(std::size_t n) {
    if (n > remaining()) {
      throw IoError("mapped read failed: truncated file");
    }
    const auto out = bytes_.subspan(offset_, n);
    offset_ += n;
    return out;
  }

  template <typename T>
  T read_pod() {
    static_assert(std::is_trivially_copyable_v<T>);
    T value;
    std::memcpy(&value, take(sizeof(T)).data(), sizeof(T));
    return value;
  }

  /// Consumes padding up to the next kRawAlignment boundary (relative to
  /// the start of the underlying range, i.e. the file). Pad bytes must be
  /// zero: a flipped bit in padding is corruption like any other.
  void align() {
    const std::size_t misalign = offset_ % kRawAlignment;
    if (misalign == 0) return;
    for (const std::byte b : take(kRawAlignment - misalign)) {
      if (b != std::byte{0}) {
        throw IoError("mapped read failed: non-zero alignment padding "
                      "(corrupt file?)");
      }
    }
  }

  /// Views `count` elements of T in place (no copy). The cursor must sit at
  /// an alignof(T)-compatible offset — guaranteed for the v3 layout, where
  /// every array start is 8-byte aligned — and the mapping must outlive the
  /// returned span.
  template <typename T>
  std::span<const T> view_array(std::size_t count) {
    static_assert(std::is_trivially_copyable_v<T>);
    static_assert(alignof(T) <= kRawAlignment);
    // Guard the byte-count multiply: a corrupt count must fail as a
    // truncation, not wrap around and hand back a short span.
    if (count > remaining() / sizeof(T)) {
      throw IoError("mapped read failed: truncated file");
    }
    const auto raw = take(count * sizeof(T));
    // Check the REAL pointer, not just the buffer-relative offset: mapped
    // files are page-aligned, but stream loads wrap heap buffers whose
    // base alignment the standard does not promise (practice does — this
    // turns an allocator surprise into IoError instead of misaligned UB).
    if (count != 0 &&
        reinterpret_cast<std::uintptr_t>(raw.data()) % alignof(T) != 0) {
      throw IoError("mapped read failed: misaligned array (corrupt file?)");
    }
    return {count == 0 ? nullptr : reinterpret_cast<const T*>(raw.data()),
            count};
  }

 private:
  std::span<const std::byte> bytes_;
  std::size_t offset_;
};

/// Mapped-side twin of binary_io's read_raw_section: consumes alignment
/// padding (verified zero), the [tag u32][size u64][crc32 u32] frame, and
/// the payload, validating the checksum before returning the in-place
/// payload view. Throws IoError on any mismatch.
std::span<const std::byte> read_raw_section(ByteReader& reader,
                                            std::uint32_t expected_tag);

}  // namespace lbe::bin
