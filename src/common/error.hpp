// Error handling for the LBE library.
//
// The library throws exceptions derived from `lbe::Error` for unrecoverable
// conditions (malformed input files, configuration errors, protocol
// violations in the simulated cluster). Hot paths never throw; they are
// written so invalid states are unrepresentable or checked once at entry.
#pragma once

#include <stdexcept>
#include <string>

namespace lbe {

/// Base class of every exception thrown by the library.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

/// Malformed or unreadable input (FASTA, MS2, config files).
class ParseError : public Error {
 public:
  ParseError(const std::string& file, std::size_t line, const std::string& msg);

  const std::string& file() const noexcept { return file_; }
  std::size_t line() const noexcept { return line_; }

 private:
  std::string file_;
  std::size_t line_;
};

/// Invalid configuration value or inconsistent parameter combination.
class ConfigError : public Error {
 public:
  explicit ConfigError(const std::string& msg) : Error(msg) {}
};

/// Misuse of the simulated-MPI API (mismatched collectives, bad rank, ...).
class CommError : public Error {
 public:
  explicit CommError(const std::string& msg) : Error(msg) {}
};

/// Filesystem failure (cannot open/read/write).
class IoError : public Error {
 public:
  explicit IoError(const std::string& msg) : Error(msg) {}
};

/// Internal invariant violation; indicates a library bug, not user error.
/// `LBE_CHECK` raises this.
class InvariantError : public Error {
 public:
  explicit InvariantError(const std::string& msg) : Error(msg) {}
};

namespace detail {
[[noreturn]] void check_failed(const char* expr, const char* file, int line,
                               const std::string& msg);
}  // namespace detail

/// Always-on invariant check (also in release builds): these guard algorithm
/// invariants whose violation would silently corrupt results.
#define LBE_CHECK(expr, msg)                                         \
  do {                                                               \
    if (!(expr)) {                                                   \
      ::lbe::detail::check_failed(#expr, __FILE__, __LINE__, (msg)); \
    }                                                                \
  } while (false)

}  // namespace lbe
