#include "common/stats.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "common/error.hpp"

namespace lbe {

void RunningStats::add(double x) {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  sum_ += x;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

double RunningStats::variance() const {
  return n_ ? m2_ / static_cast<double>(n_) : 0.0;
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

void RunningStats::merge(const RunningStats& other) {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  const double na = static_cast<double>(n_);
  const double nb = static_cast<double>(other.n_);
  const double delta = other.mean_ - mean_;
  const double n_total = na + nb;
  mean_ += delta * nb / n_total;
  m2_ += other.m2_ + delta * delta * na * nb / n_total;
  n_ += other.n_;
  sum_ += other.sum_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

Histogram::Histogram(double lo, double hi, std::size_t bins)
    : lo_(lo), hi_(hi), bin_width_((hi - lo) / static_cast<double>(bins)) {
  LBE_CHECK(hi > lo, "histogram range must be non-empty");
  LBE_CHECK(bins > 0, "histogram needs at least one bin");
  counts_.assign(bins, 0);
}

void Histogram::add(double x, std::uint64_t weight) {
  std::size_t bin;
  if (x < lo_) {
    bin = 0;
  } else if (x >= hi_) {
    bin = counts_.size() - 1;
  } else {
    bin = static_cast<std::size_t>((x - lo_) / bin_width_);
    bin = std::min(bin, counts_.size() - 1);
  }
  counts_[bin] += weight;
  total_ += weight;
}

double Histogram::bin_lo(std::size_t bin) const {
  return lo_ + static_cast<double>(bin) * bin_width_;
}

double Histogram::bin_hi(std::size_t bin) const {
  return bin_lo(bin) + bin_width_;
}

double Histogram::quantile(double q) const {
  q = std::clamp(q, 0.0, 1.0);
  if (total_ == 0) return lo_;
  const double target = q * static_cast<double>(total_);
  double cumulative = 0.0;
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    const double next = cumulative + static_cast<double>(counts_[i]);
    if (next >= target) {
      const double inside =
          counts_[i] ? (target - cumulative) / static_cast<double>(counts_[i])
                     : 0.0;
      return bin_lo(i) + inside * bin_width_;
    }
    cumulative = next;
  }
  return hi_;
}

std::string Histogram::render(std::size_t width) const {
  std::uint64_t peak = 1;
  for (const auto c : counts_) peak = std::max(peak, c);
  std::ostringstream os;
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    const auto bar_len = static_cast<std::size_t>(
        static_cast<double>(counts_[i]) / static_cast<double>(peak) *
        static_cast<double>(width));
    os << '[' << bin_lo(i) << ", " << bin_hi(i) << ") "
       << std::string(bar_len, '#') << ' ' << counts_[i] << '\n';
  }
  return os.str();
}

}  // namespace lbe
