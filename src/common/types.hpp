// Core scalar types shared across the LBE library.
//
// Conventions:
//  * All masses are monoisotopic and expressed in Daltons (Da) as `double`.
//  * Mass-to-charge ratios (m/z) are `double` in Thomson.
//  * Binned m/z values (index buckets) are `MzBin` (see index/binning.hpp).
//  * Peptide identifiers come in two flavours mirroring the paper:
//      - GlobalPeptideId: position in the master's global peptide index,
//      - LocalPeptideId:  position in one rank's partial index ("virtual
//        index" in the paper); the mapping table converts local -> global.
#pragma once

#include <cstdint>

namespace lbe {

/// Mass in Daltons.
using Mass = double;

/// Mass-to-charge ratio (Thomson).
using Mz = double;

/// Position of a peptide in the global (master) peptide index.
using GlobalPeptideId = std::uint32_t;

/// Position of a peptide in a single rank's partial index. The paper calls
/// these "virtual indices"; they are meaningless without the owning rank id.
using LocalPeptideId = std::uint32_t;

/// Rank number inside a (simulated) MPI communicator.
using RankId = int;

/// Charge state of an ion (1+, 2+, ...).
using Charge = std::uint8_t;

/// Sentinel for "no peptide".
inline constexpr GlobalPeptideId kInvalidPeptideId = 0xFFFFFFFFu;

}  // namespace lbe
