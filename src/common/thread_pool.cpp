#include "common/thread_pool.hpp"

#include <atomic>
#include <exception>

namespace lbe {

ThreadPool::ThreadPool(std::size_t threads) {
  if (threads == 0) {
    threads = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }
  // The caller participates in parallel_for, so spawn threads-1 workers.
  const std::size_t workers = threads - 1;
  workers_.reserve(workers);
  for (std::size_t i = 0; i < workers; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stop_ = true;
  }
  cv_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::worker_loop() {
  for (;;) {
    Task task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (stop_ && queue_.empty()) return;
      task = std::move(queue_.front());
      queue_.pop();
    }
    task.fn();
  }
}

void ThreadPool::enqueue(std::function<void()> fn) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    queue_.push(Task{std::move(fn)});
  }
  cv_.notify_one();
}

void ThreadPool::parallel_for(
    std::size_t begin, std::size_t end,
    const std::function<void(std::size_t, std::size_t)>& fn) {
  if (begin >= end) return;
  const std::size_t parts = size();
  const std::size_t n = end - begin;
  if (parts == 1 || n == 1) {
    fn(begin, end);
    return;
  }

  struct Shared {
    std::atomic<std::size_t> remaining;
    std::mutex done_mutex;
    std::condition_variable done_cv;
    std::exception_ptr error;
    std::mutex error_mutex;
  } shared;
  const std::size_t blocks = std::min(parts, n);
  shared.remaining.store(blocks - 1);  // caller runs block 0 inline

  auto run_block = [&](std::size_t block) {
    const std::size_t lo = begin + block * n / blocks;
    const std::size_t hi = begin + (block + 1) * n / blocks;
    try {
      fn(lo, hi);
    } catch (...) {
      std::lock_guard<std::mutex> lock(shared.error_mutex);
      if (!shared.error) shared.error = std::current_exception();
    }
  };

  for (std::size_t block = 1; block < blocks; ++block) {
    enqueue([&, block] {
      run_block(block);
      if (shared.remaining.fetch_sub(1) == 1) {
        std::lock_guard<std::mutex> lock(shared.done_mutex);
        shared.done_cv.notify_one();
      }
    });
  }
  run_block(0);
  {
    std::unique_lock<std::mutex> lock(shared.done_mutex);
    shared.done_cv.wait(lock, [&] { return shared.remaining.load() == 0; });
  }
  if (shared.error) std::rethrow_exception(shared.error);
}

}  // namespace lbe
