// Tiny CSV emitter for benchmark series.
//
// Every fig* bench prints its figure as rows `x,series,value` so the output
// can be re-plotted directly; CsvWriter guarantees consistent quoting and
// column counts.
#pragma once

#include <initializer_list>
#include <ostream>
#include <string>
#include <vector>

namespace lbe {

class CsvWriter {
 public:
  /// Writes the header immediately. `out` must outlive the writer.
  CsvWriter(std::ostream& out, std::vector<std::string> columns);

  /// Writes one row; throws InvariantError if the field count mismatches.
  void row(const std::vector<std::string>& fields);

  /// Convenience: formats doubles with %.6g, integers verbatim.
  static std::string field(double v);
  static std::string field(std::uint64_t v);
  static std::string field(std::int64_t v);
  static std::string field(int v);

  std::size_t rows_written() const { return rows_; }

 private:
  std::ostream& out_;
  std::size_t columns_;
  std::size_t rows_ = 0;
};

}  // namespace lbe
