#include "common/error.hpp"

#include <sstream>

namespace lbe {

namespace {
std::string format_parse_error(const std::string& file, std::size_t line,
                               const std::string& msg) {
  std::ostringstream os;
  os << file << ':' << line << ": " << msg;
  return os.str();
}
}  // namespace

ParseError::ParseError(const std::string& file, std::size_t line,
                       const std::string& msg)
    : Error(format_parse_error(file, line, msg)), file_(file), line_(line) {}

namespace detail {

void check_failed(const char* expr, const char* file, int line,
                  const std::string& msg) {
  std::ostringstream os;
  os << "invariant violated: (" << expr << ") at " << file << ':' << line;
  if (!msg.empty()) {
    os << " — " << msg;
  }
  throw InvariantError(os.str());
}

}  // namespace detail
}  // namespace lbe
