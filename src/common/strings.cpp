#include "common/strings.hpp"

#include <cctype>
#include <charconv>
#include <cstdio>

namespace lbe::str {

namespace {
bool is_space(char c) {
  return c == ' ' || c == '\t' || c == '\n' || c == '\r' || c == '\v' ||
         c == '\f';
}
}  // namespace

std::string_view trim(std::string_view s) {
  std::size_t b = 0;
  std::size_t e = s.size();
  while (b < e && is_space(s[b])) ++b;
  while (e > b && is_space(s[e - 1])) --e;
  return s.substr(b, e - b);
}

std::vector<std::string_view> split(std::string_view s, char sep) {
  std::vector<std::string_view> out;
  std::size_t start = 0;
  for (std::size_t i = 0; i <= s.size(); ++i) {
    if (i == s.size() || s[i] == sep) {
      out.push_back(s.substr(start, i - start));
      start = i + 1;
    }
  }
  return out;
}

std::vector<std::string_view> split_ws(std::string_view s) {
  std::vector<std::string_view> out;
  std::size_t i = 0;
  while (i < s.size()) {
    while (i < s.size() && is_space(s[i])) ++i;
    const std::size_t start = i;
    while (i < s.size() && !is_space(s[i])) ++i;
    if (i > start) out.push_back(s.substr(start, i - start));
  }
  return out;
}

bool starts_with(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

std::string to_upper(std::string_view s) {
  std::string out(s);
  for (char& c : out) {
    c = static_cast<char>(std::toupper(static_cast<unsigned char>(c)));
  }
  return out;
}

bool parse_double(std::string_view s, double& out) {
  s = trim(s);
  if (s.empty()) return false;
  const char* begin = s.data();
  const char* end = begin + s.size();
  const auto result = std::from_chars(begin, end, out);
  return result.ec == std::errc() && result.ptr == end;
}

bool parse_u64(std::string_view s, std::uint64_t& out) {
  s = trim(s);
  if (s.empty()) return false;
  const char* begin = s.data();
  const char* end = begin + s.size();
  const auto result = std::from_chars(begin, end, out);
  return result.ec == std::errc() && result.ptr == end;
}

std::string human_bytes(std::uint64_t bytes) {
  static const char* kUnits[] = {"B", "KiB", "MiB", "GiB", "TiB"};
  double value = static_cast<double>(bytes);
  int unit = 0;
  while (value >= 1024.0 && unit < 4) {
    value /= 1024.0;
    ++unit;
  }
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.2f %s", value, kUnits[unit]);
  return buf;
}

std::string human_seconds(double seconds) {
  char buf[32];
  if (seconds < 1e-3) {
    std::snprintf(buf, sizeof(buf), "%.1f us", seconds * 1e6);
  } else if (seconds < 1.0) {
    std::snprintf(buf, sizeof(buf), "%.1f ms", seconds * 1e3);
  } else {
    std::snprintf(buf, sizeof(buf), "%.2f s", seconds);
  }
  return buf;
}

}  // namespace lbe::str
