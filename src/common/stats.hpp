// Streaming statistics and fixed-width histograms.
//
// Used by the perf module (load-imbalance analysis) and by the index
// (postings-per-bin distributions feeding the load-prediction model).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace lbe {

/// Welford streaming accumulator: mean/variance/min/max without storing
/// samples.
class RunningStats {
 public:
  void add(double x);

  std::uint64_t count() const { return n_; }
  double mean() const { return n_ ? mean_ : 0.0; }
  double variance() const;  ///< population variance
  double stddev() const;
  double min() const { return n_ ? min_ : 0.0; }
  double max() const { return n_ ? max_ : 0.0; }
  double sum() const { return sum_; }

  /// Merges another accumulator (parallel reduction).
  void merge(const RunningStats& other);

 private:
  std::uint64_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
  double sum_ = 0.0;
};

/// Fixed-bin histogram over [lo, hi); out-of-range samples clamp to the edge
/// bins so totals always add up.
class Histogram {
 public:
  Histogram(double lo, double hi, std::size_t bins);

  void add(double x, std::uint64_t weight = 1);

  std::size_t bins() const { return counts_.size(); }
  std::uint64_t count(std::size_t bin) const { return counts_.at(bin); }
  std::uint64_t total() const { return total_; }
  double bin_lo(std::size_t bin) const;
  double bin_hi(std::size_t bin) const;

  /// Value below which `q` (0..1) of the mass lies (linear in-bin
  /// interpolation).
  double quantile(double q) const;

  /// Multi-line ASCII rendering for logs.
  std::string render(std::size_t width = 40) const;

 private:
  double lo_;
  double hi_;
  double bin_width_;
  std::vector<std::uint64_t> counts_;
  std::uint64_t total_ = 0;
};

}  // namespace lbe
