// Deterministic pseudo-random number generation.
//
// All randomized components (synthetic proteome/spectra generation, the
// Random partition policy) take an explicit 64-bit seed so every experiment
// is reproducible bit-for-bit across hosts. xoshiro256** is used as the bulk
// generator, seeded through SplitMix64 as its authors recommend.
#pragma once

#include <cmath>
#include <cstdint>
#include <limits>

namespace lbe {

/// SplitMix64: tiny generator used to expand one seed into stream state.
class SplitMix64 {
 public:
  explicit SplitMix64(std::uint64_t seed) : state_(seed) {}

  std::uint64_t next() {
    std::uint64_t z = (state_ += 0x9E3779B97F4A7C15ull);
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
    return z ^ (z >> 31);
  }

 private:
  std::uint64_t state_;
};

/// xoshiro256**: fast general-purpose PRNG (period 2^256 - 1).
/// Satisfies std::uniform_random_bit_generator.
class Xoshiro256 {
 public:
  using result_type = std::uint64_t;

  explicit Xoshiro256(std::uint64_t seed = 0x853C49E6748FEA9Bull) {
    SplitMix64 sm(seed);
    for (auto& word : state_) word = sm.next();
  }

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() {
    return std::numeric_limits<result_type>::max();
  }

  result_type operator()() {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform integer in [0, bound) using Lemire's multiply-shift reduction.
  std::uint64_t below(std::uint64_t bound) {
    // Rejection-free for our purposes: bias is < 2^-64 * bound, negligible
    // against bound << 2^32 used throughout the library.
    __extension__ using Wide = unsigned __int128;
    const Wide m = static_cast<Wide>((*this)()) * bound;
    return static_cast<std::uint64_t>(m >> 64);
  }

  /// Uniform double in [0, 1).
  double uniform() {
    return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) { return lo + (hi - lo) * uniform(); }

  /// Standard normal via Box–Muller (polar-free variant, two uniforms).
  double normal();

  /// True with probability p.
  bool bernoulli(double p) { return uniform() < p; }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }
  std::uint64_t state_[4];
};

/// Fisher–Yates shuffle with an explicit generator (deterministic given seed).
template <typename RandomIt>
void shuffle(RandomIt first, RandomIt last, Xoshiro256& rng) {
  const auto n = static_cast<std::uint64_t>(last - first);
  for (std::uint64_t i = n; i > 1; --i) {
    const std::uint64_t j = rng.below(i);
    using std::swap;
    swap(first[static_cast<std::ptrdiff_t>(i - 1)],
         first[static_cast<std::ptrdiff_t>(j)]);
  }
}

inline double Xoshiro256::normal() {
  // Box–Muller; one value per call keeps the generator stateless w.r.t.
  // caching, which matters for reproducibility when calls interleave.
  double u1 = uniform();
  if (u1 <= 0.0) u1 = 0x1.0p-53;
  const double u2 = uniform();
  constexpr double kTwoPi = 6.28318530717958647692;
  return std::sqrt(-2.0 * std::log(u1)) * std::cos(kTwoPi * u2);
}

}  // namespace lbe
