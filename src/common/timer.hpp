// Wall-clock stopwatch used for measured (as opposed to simulated) timings.
#pragma once

#include <chrono>

namespace lbe {

/// Monotonic stopwatch. Starts running on construction.
class Stopwatch {
 public:
  Stopwatch() : start_(Clock::now()) {}

  /// Restarts the stopwatch and returns the elapsed seconds before the reset.
  double restart() {
    const double s = seconds();
    start_ = Clock::now();
    return s;
  }

  /// Seconds elapsed since construction or the last restart().
  double seconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  /// Elapsed time in milliseconds.
  double millis() const { return seconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace lbe
