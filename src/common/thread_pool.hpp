// Fixed-size thread pool with a parallel_for helper.
//
// Implements the paper's "hybrid OpenMP + MPI" future-work direction: each
// simulated rank may fan its query loop out over a pool. On single-core hosts
// (such as CI) a pool of size 1 degenerates to an inline loop with no thread
// creation, keeping timings honest.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace lbe {

class ThreadPool {
 public:
  /// `threads == 0` selects hardware_concurrency (at least 1).
  explicit ThreadPool(std::size_t threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t size() const { return workers_.size() + 1; }  // +1 = caller

  /// Runs `fn(begin..end)` split into `size()` contiguous blocks; the calling
  /// thread executes one block, workers the rest. Blocks until all finish.
  /// Exceptions from `fn` propagate to the caller (first one wins).
  void parallel_for(std::size_t begin, std::size_t end,
                    const std::function<void(std::size_t, std::size_t)>& fn);

 private:
  struct Task {
    std::function<void()> fn;
  };

  void worker_loop();
  void enqueue(std::function<void()> fn);

  std::vector<std::thread> workers_;
  std::queue<Task> queue_;
  std::mutex mutex_;
  std::condition_variable cv_;
  bool stop_ = false;
};

}  // namespace lbe
