#include "common/csv.hpp"

#include <cstdio>

#include "common/error.hpp"

namespace lbe {

namespace {
// Quotes a field only when needed (comma, quote, newline present).
std::string escape(const std::string& s) {
  if (s.find_first_of(",\"\n") == std::string::npos) return s;
  std::string out = "\"";
  for (const char c : s) {
    if (c == '"') out += '"';
    out += c;
  }
  out += '"';
  return out;
}
}  // namespace

CsvWriter::CsvWriter(std::ostream& out, std::vector<std::string> columns)
    : out_(out), columns_(columns.size()) {
  LBE_CHECK(columns_ > 0, "CSV needs at least one column");
  for (std::size_t i = 0; i < columns.size(); ++i) {
    if (i) out_ << ',';
    out_ << escape(columns[i]);
  }
  out_ << '\n';
}

void CsvWriter::row(const std::vector<std::string>& fields) {
  LBE_CHECK(fields.size() == columns_, "CSV row width mismatch");
  for (std::size_t i = 0; i < fields.size(); ++i) {
    if (i) out_ << ',';
    out_ << escape(fields[i]);
  }
  out_ << '\n';
  ++rows_;
}

std::string CsvWriter::field(double v) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.6g", v);
  return buf;
}

std::string CsvWriter::field(std::uint64_t v) { return std::to_string(v); }
std::string CsvWriter::field(std::int64_t v) { return std::to_string(v); }
std::string CsvWriter::field(int v) { return std::to_string(v); }

}  // namespace lbe
