// Key=value configuration store.
//
// Mirrors the paper's engine configuration files (resolution, tolerances,
// shared-peak threshold, modification settings, cluster policy, ...). Files
// use one `key = value` pair per line, `#` comments, blank lines allowed.
// Typed getters validate on access and raise ConfigError with the key name.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace lbe {

class Config {
 public:
  Config() = default;

  /// Parses `text` as key=value lines. `origin` is used in error messages.
  static Config from_string(std::string_view text,
                            const std::string& origin = "<string>");

  /// Reads and parses a config file; throws IoError / ParseError.
  static Config from_file(const std::string& path);

  /// Sets/overrides a key.
  void set(const std::string& key, const std::string& value);

  bool contains(const std::string& key) const;

  /// Typed getters. The no-default overloads throw ConfigError when the key
  /// is missing; all throw ConfigError when the value does not parse.
  std::string get_string(const std::string& key) const;
  std::string get_string(const std::string& key,
                         const std::string& fallback) const;
  double get_double(const std::string& key) const;
  double get_double(const std::string& key, double fallback) const;
  std::int64_t get_int(const std::string& key) const;
  std::int64_t get_int(const std::string& key, std::int64_t fallback) const;
  bool get_bool(const std::string& key) const;
  bool get_bool(const std::string& key, bool fallback) const;

  /// All keys in lexicographic order (deterministic serialization).
  std::string to_string() const;

  /// Key names in lexicographic order (drivers validate against a known-key
  /// whitelist so config typos fail loudly instead of silently defaulting).
  std::vector<std::string> keys() const;

  std::size_t size() const { return values_.size(); }

 private:
  std::optional<std::string> find(const std::string& key) const;

  std::map<std::string, std::string> values_;
};

}  // namespace lbe
