#include "common/config.hpp"

#include <fstream>
#include <sstream>

#include "common/error.hpp"
#include "common/strings.hpp"

namespace lbe {

Config Config::from_string(std::string_view text, const std::string& origin) {
  Config cfg;
  std::size_t line_no = 0;
  std::size_t pos = 0;
  while (pos <= text.size()) {
    const std::size_t nl = text.find('\n', pos);
    std::string_view line = (nl == std::string_view::npos)
                                ? text.substr(pos)
                                : text.substr(pos, nl - pos);
    pos = (nl == std::string_view::npos) ? text.size() + 1 : nl + 1;
    ++line_no;

    line = str::trim(line);
    if (line.empty() || line.front() == '#') continue;
    const std::size_t eq = line.find('=');
    if (eq == std::string_view::npos) {
      throw ParseError(origin, line_no, "expected 'key = value'");
    }
    const std::string key(str::trim(line.substr(0, eq)));
    const std::string value(str::trim(line.substr(eq + 1)));
    if (key.empty()) {
      throw ParseError(origin, line_no, "empty key");
    }
    cfg.values_[key] = value;
  }
  return cfg;
}

Config Config::from_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    throw IoError("cannot open config file: " + path);
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return from_string(buffer.str(), path);
}

void Config::set(const std::string& key, const std::string& value) {
  values_[key] = value;
}

bool Config::contains(const std::string& key) const {
  return values_.count(key) != 0;
}

std::optional<std::string> Config::find(const std::string& key) const {
  const auto it = values_.find(key);
  if (it == values_.end()) return std::nullopt;
  return it->second;
}

std::string Config::get_string(const std::string& key) const {
  const auto v = find(key);
  if (!v) throw ConfigError("missing config key: " + key);
  return *v;
}

std::string Config::get_string(const std::string& key,
                               const std::string& fallback) const {
  return find(key).value_or(fallback);
}

double Config::get_double(const std::string& key) const {
  const auto v = find(key);
  if (!v) throw ConfigError("missing config key: " + key);
  double out = 0.0;
  if (!str::parse_double(*v, out)) {
    throw ConfigError("config key '" + key + "' is not a number: " + *v);
  }
  return out;
}

double Config::get_double(const std::string& key, double fallback) const {
  const auto v = find(key);
  if (!v) return fallback;
  double out = 0.0;
  if (!str::parse_double(*v, out)) {
    throw ConfigError("config key '" + key + "' is not a number: " + *v);
  }
  return out;
}

std::int64_t Config::get_int(const std::string& key) const {
  const double d = get_double(key);
  const auto i = static_cast<std::int64_t>(d);
  if (static_cast<double>(i) != d) {
    throw ConfigError("config key '" + key + "' is not an integer");
  }
  return i;
}

std::int64_t Config::get_int(const std::string& key,
                             std::int64_t fallback) const {
  if (!contains(key)) return fallback;
  return get_int(key);
}

bool Config::get_bool(const std::string& key) const {
  const auto v = find(key);
  if (!v) throw ConfigError("missing config key: " + key);
  const std::string s = str::to_upper(*v);
  if (s == "TRUE" || s == "1" || s == "YES" || s == "ON") return true;
  if (s == "FALSE" || s == "0" || s == "NO" || s == "OFF") return false;
  throw ConfigError("config key '" + key + "' is not a boolean: " + *v);
}

bool Config::get_bool(const std::string& key, bool fallback) const {
  if (!contains(key)) return fallback;
  return get_bool(key);
}

std::vector<std::string> Config::keys() const {
  std::vector<std::string> out;
  out.reserve(values_.size());
  for (const auto& [key, value] : values_) out.push_back(key);
  return out;
}

std::string Config::to_string() const {
  std::ostringstream os;
  for (const auto& [key, value] : values_) {
    os << key << " = " << value << '\n';
  }
  return os.str();
}

}  // namespace lbe
