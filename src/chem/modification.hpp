// Post-translational modifications (PTMs).
//
// The paper's §V-A experiment indexes variable modifications: deamidation on
// N/Q, Gly-Gly adducts on K/C, and oxidation on M, with at most 5 modified
// residues per peptide. The registry below models variable (and optionally
// fixed) modifications with residue-site rules; `ModificationSet` is the
// engine-facing view used by the variant generator in src/digest.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/types.hpp"

namespace lbe::chem {

/// Identifier of a modification inside a ModificationSet (small, dense).
using ModId = std::uint8_t;
inline constexpr ModId kNoMod = 0xFF;

struct Modification {
  std::string name;      ///< e.g. "Oxidation"
  Mass delta;            ///< mass shift in Da (may be negative)
  std::string residues;  ///< residues it can attach to, e.g. "NQ"
  bool fixed = false;    ///< fixed mods apply to every site, always

  /// True if this modification can sit on residue `c`.
  bool applies_to(char c) const noexcept {
    return residues.find(c) != std::string::npos;
  }
};

/// An ordered, immutable collection of modifications used by one search.
class ModificationSet {
 public:
  ModificationSet() = default;

  /// Adds a modification; throws ConfigError on duplicate name, empty
  /// residue list, or invalid residue letters. Returns its ModId.
  ModId add(Modification mod);

  std::size_t size() const noexcept { return mods_.size(); }
  const Modification& operator[](ModId id) const { return mods_.at(id); }

  /// Ids of variable modifications applicable to residue `c` (fixed mods are
  /// excluded; they are applied unconditionally by mass routines).
  std::vector<ModId> variable_mods_for(char c) const;

  /// Sum of fixed-modification deltas applicable to `c` (0 for none).
  Mass fixed_delta(char c) const noexcept;

  /// Parses "name:delta:residues[:fixed]" triples separated by ';', e.g.
  ///   "Oxidation:15.994915:M;Deamidation:0.984016:NQ;GlyGly:114.042927:KC"
  static ModificationSet parse(std::string_view spec);

  /// The exact variable-modification set of the paper's evaluation (§V-A):
  /// deamidation (N,Q), Gly-Gly (K,C), oxidation (M).
  static ModificationSet paper_default();

 private:
  std::vector<Modification> mods_;
};

/// One concrete modification placement on a peptide.
struct ModSite {
  std::uint16_t position;  ///< 0-based residue offset
  ModId mod;

  friend bool operator==(const ModSite&, const ModSite&) = default;
};

}  // namespace lbe::chem
