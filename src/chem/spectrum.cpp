#include "chem/spectrum.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

namespace lbe::chem {

void Spectrum::finalize() {
  if (mz_.size() <= 1) return;
  std::vector<std::size_t> order(mz_.size());
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::sort(order.begin(), order.end(),
            [this](std::size_t a, std::size_t b) { return mz_[a] < mz_[b]; });

  std::vector<Mz> mz_sorted;
  std::vector<float> int_sorted;
  mz_sorted.reserve(mz_.size());
  int_sorted.reserve(mz_.size());
  constexpr Mz kMergeEps = 1e-6;
  for (const std::size_t idx : order) {
    if (!mz_sorted.empty() && std::abs(mz_[idx] - mz_sorted.back()) < kMergeEps) {
      int_sorted.back() += intensity_[idx];
    } else {
      mz_sorted.push_back(mz_[idx]);
      int_sorted.push_back(intensity_[idx]);
    }
  }
  mz_ = std::move(mz_sorted);
  intensity_ = std::move(int_sorted);
}

double Spectrum::tic() const noexcept {
  double sum = 0.0;
  for (const float v : intensity_) sum += static_cast<double>(v);
  return sum;
}

}  // namespace lbe::chem
