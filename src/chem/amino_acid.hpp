// The 20 proteinogenic amino acids and their monoisotopic residue masses.
#pragma once

#include <array>
#include <string_view>

#include "common/types.hpp"

namespace lbe::chem {

/// Canonical residue alphabet in alphabetical order.
inline constexpr std::string_view kResidues = "ACDEFGHIKLMNPQRSTVWY";

/// True if `c` is one of the 20 canonical residues (upper-case).
bool is_residue(char c) noexcept;

/// Monoisotopic residue mass (peptide-bond residue, i.e. minus water).
/// Precondition: is_residue(c).
Mass residue_mass(char c) noexcept;

/// Residue mass or 0.0 for non-residues (no precondition); used by
/// validators that want to report rather than crash.
Mass residue_mass_or_zero(char c) noexcept;

/// Validates a peptide/protein string: non-empty, all canonical residues.
/// Returns the offset of the first invalid character or npos if valid.
std::size_t find_invalid_residue(std::string_view seq) noexcept;

/// Sum of residue masses plus water: the neutral monoisotopic mass of the
/// unmodified peptide. Precondition: sequence is valid.
Mass peptide_mass(std::string_view seq) noexcept;

/// Average residue frequencies in SwissProt (order matches kResidues);
/// used by the synthetic proteome generator.
const std::array<double, 20>& swissprot_frequencies() noexcept;

}  // namespace lbe::chem
