// Peptide value type: a validated sequence plus optional modification sites.
//
// Unmodified peptides dominate the database, so `Peptide` keeps the common
// case allocation-light: the mod-site vector is empty unless the variant
// generator placed modifications. Mass is computed on demand (and cached by
// the index, not here) to keep the type a plain value.
#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "chem/modification.hpp"
#include "common/types.hpp"

namespace lbe::chem {

class Peptide {
 public:
  Peptide() = default;

  /// Validates and stores `seq`; throws ConfigError on invalid residues.
  explicit Peptide(std::string seq);

  /// Modified variant: `sites` must be sorted by position, unique positions,
  /// every site's mod must apply to the residue there (checked).
  Peptide(std::string seq, std::vector<ModSite> sites,
          const ModificationSet& mods);

  const std::string& sequence() const noexcept { return seq_; }
  const std::vector<ModSite>& sites() const noexcept { return sites_; }
  std::size_t length() const noexcept { return seq_.size(); }
  bool modified() const noexcept { return !sites_.empty(); }

  /// Neutral monoisotopic mass including fixed + placed variable mods.
  Mass mass(const ModificationSet& mods) const noexcept;

  /// Residue-by-residue mass ladder contribution at `pos` (residue + fixed
  /// mods + any variable mod placed at pos). Used by the fragmenter.
  Mass residue_delta(std::size_t pos, const ModificationSet& mods) const
      noexcept;

  /// Canonical text form: sequence with "(name)" after modified residues,
  /// e.g. "PEPTM(Oxidation)IDE". Stable across runs; used for dedup & tests.
  std::string annotated(const ModificationSet& mods) const;

  friend bool operator==(const Peptide&, const Peptide&) = default;

 private:
  std::string seq_;
  std::vector<ModSite> sites_;
};

}  // namespace lbe::chem
