#include "chem/amino_acid.hpp"

#include "chem/mass.hpp"

namespace lbe::chem {
namespace {

// Indexed by (c - 'A'); 0.0 marks letters that are not canonical residues
// (B, J, O, U, X, Z).
constexpr std::array<Mass, 26> kResidueMass = {
    /*A*/ 71.03711381,  /*B*/ 0.0,           /*C*/ 103.00918496,
    /*D*/ 115.02694302, /*E*/ 129.04259309,  /*F*/ 147.06841391,
    /*G*/ 57.02146374,  /*H*/ 137.05891186,  /*I*/ 113.08406398,
    /*J*/ 0.0,          /*K*/ 128.09496302,  /*L*/ 113.08406398,
    /*M*/ 131.04048491, /*N*/ 114.04292744,  /*O*/ 0.0,
    /*P*/ 97.05276385,  /*Q*/ 128.05857751,  /*R*/ 156.10111102,
    /*S*/ 87.03202841,  /*T*/ 101.04767847,  /*U*/ 0.0,
    /*V*/ 99.06841391,  /*W*/ 186.07931295,  /*X*/ 0.0,
    /*Y*/ 163.06332853, /*Z*/ 0.0};

// SwissProt release-wide composition (percent / 100), order = kResidues
// (ACDEFGHIKLMNPQRSTVWY). Slightly renormalized to sum to 1.
constexpr std::array<double, 20> kSwissProtFreq = {
    0.0826, 0.0137, 0.0546, 0.0672, 0.0386, 0.0708, 0.0228,
    0.0593, 0.0582, 0.0965, 0.0241, 0.0406, 0.0474, 0.0393,
    0.0553, 0.0660, 0.0535, 0.0687, 0.0110, 0.0292};

}  // namespace

bool is_residue(char c) noexcept {
  return c >= 'A' && c <= 'Z' &&
         kResidueMass[static_cast<std::size_t>(c - 'A')] > 0.0;
}

Mass residue_mass(char c) noexcept {
  return kResidueMass[static_cast<std::size_t>(c - 'A')];
}

Mass residue_mass_or_zero(char c) noexcept {
  if (c < 'A' || c > 'Z') return 0.0;
  return kResidueMass[static_cast<std::size_t>(c - 'A')];
}

std::size_t find_invalid_residue(std::string_view seq) noexcept {
  if (seq.empty()) return 0;
  for (std::size_t i = 0; i < seq.size(); ++i) {
    if (!is_residue(seq[i])) return i;
  }
  return std::string_view::npos;
}

Mass peptide_mass(std::string_view seq) noexcept {
  Mass sum = kWater;
  for (const char c : seq) sum += residue_mass(c);
  return sum;
}

const std::array<double, 20>& swissprot_frequencies() noexcept {
  return kSwissProtFreq;
}

}  // namespace lbe::chem
