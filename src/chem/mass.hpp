// Physical mass constants (monoisotopic, Daltons).
//
// Values follow the CODATA/Unimod conventions used by every search engine so
// theoretical fragment masses line up with other tools to < 1e-5 Da.
#pragma once

#include "common/types.hpp"

namespace lbe::chem {

/// Mass of a proton (H+), used for charge-state arithmetic.
inline constexpr Mass kProton = 1.00727646688;

/// Mass of a hydrogen atom (1H).
inline constexpr Mass kHydrogen = 1.0078250319;

/// Mass of a water molecule (H2O); added to residue-sum for a full peptide.
inline constexpr Mass kWater = 18.0105646863;

/// Mass of ammonia (NH3); used for neutral-loss ions.
inline constexpr Mass kAmmonia = 17.0265491015;

/// Mass of carbon monoxide (CO); b-ion/a-ion offset.
inline constexpr Mass kCarbonMonoxide = 27.9949146221;

/// Converts a neutral mass to m/z at charge z.
constexpr Mz mz_from_mass(Mass neutral, Charge z) {
  return (neutral + static_cast<Mass>(z) * kProton) / static_cast<Mass>(z);
}

/// Converts an observed m/z at charge z back to neutral mass.
constexpr Mass mass_from_mz(Mz mz, Charge z) {
  return mz * static_cast<Mass>(z) - static_cast<Mass>(z) * kProton;
}

}  // namespace lbe::chem
