// MS/MS spectrum value types.
//
// `Spectrum` holds centroided peaks as parallel mz/intensity arrays (struct
// of arrays: the query path scans mz only, so keeping intensities separate
// halves the cache traffic of the hot loop). Both experimental (query) and
// theoretical (reference) spectra use this type; theoretical spectra carry
// unit intensities.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/types.hpp"

namespace lbe::chem {

struct Precursor {
  Mz mz = 0.0;        ///< observed precursor m/z (0 when unknown)
  Charge charge = 0;  ///< 0 when undetermined
  Mass neutral_mass = 0.0;
};

class Spectrum {
 public:
  Spectrum() = default;

  /// Appends one peak. Peaks may arrive unsorted; call `finalize()` once
  /// after the last peak.
  void add_peak(Mz mz, float intensity) {
    mz_.push_back(mz);
    intensity_.push_back(intensity);
  }

  /// Sorts peaks by m/z and merges duplicates (same m/z within 1e-6 Th sums
  /// intensity). Must be called before querying/serialization.
  void finalize();

  std::size_t size() const noexcept { return mz_.size(); }
  bool empty() const noexcept { return mz_.empty(); }

  const std::vector<Mz>& mzs() const noexcept { return mz_; }
  const std::vector<float>& intensities() const noexcept { return intensity_; }

  Mz mz(std::size_t i) const { return mz_[i]; }
  float intensity(std::size_t i) const { return intensity_[i]; }

  /// Total ion current (sum of intensities).
  double tic() const noexcept;

  Precursor precursor;
  std::uint32_t scan_id = 0;
  std::string title;  ///< free-text identifier from the source file

 private:
  std::vector<Mz> mz_;
  std::vector<float> intensity_;
};

}  // namespace lbe::chem
