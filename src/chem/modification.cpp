#include "chem/modification.hpp"

#include <charconv>

#include "chem/amino_acid.hpp"
#include "common/error.hpp"
#include "common/strings.hpp"

namespace lbe::chem {

ModId ModificationSet::add(Modification mod) {
  if (mod.name.empty()) {
    throw ConfigError("modification needs a name");
  }
  if (mod.residues.empty()) {
    throw ConfigError("modification '" + mod.name + "' has no target residues");
  }
  for (const char c : mod.residues) {
    if (!is_residue(c)) {
      throw ConfigError("modification '" + mod.name +
                        "' targets invalid residue '" + std::string(1, c) +
                        "'");
    }
  }
  for (const auto& existing : mods_) {
    if (existing.name == mod.name) {
      throw ConfigError("duplicate modification name: " + mod.name);
    }
  }
  if (mods_.size() >= kNoMod) {
    throw ConfigError("too many modifications (max 254)");
  }
  mods_.push_back(std::move(mod));
  return static_cast<ModId>(mods_.size() - 1);
}

std::vector<ModId> ModificationSet::variable_mods_for(char c) const {
  std::vector<ModId> out;
  for (std::size_t i = 0; i < mods_.size(); ++i) {
    if (!mods_[i].fixed && mods_[i].applies_to(c)) {
      out.push_back(static_cast<ModId>(i));
    }
  }
  return out;
}

Mass ModificationSet::fixed_delta(char c) const noexcept {
  Mass delta = 0.0;
  for (const auto& mod : mods_) {
    if (mod.fixed && mod.applies_to(c)) delta += mod.delta;
  }
  return delta;
}

ModificationSet ModificationSet::parse(std::string_view spec) {
  ModificationSet set;
  if (str::trim(spec).empty()) return set;
  for (const auto entry : str::split(spec, ';')) {
    const auto trimmed = str::trim(entry);
    if (trimmed.empty()) continue;
    const auto parts = str::split(trimmed, ':');
    if (parts.size() != 3 && parts.size() != 4) {
      throw ConfigError("bad modification spec (want name:delta:residues): " +
                        std::string(trimmed));
    }
    Modification mod;
    mod.name = std::string(str::trim(parts[0]));
    double delta = 0.0;
    if (!str::parse_double(parts[1], delta)) {
      throw ConfigError("bad modification delta: " + std::string(parts[1]));
    }
    mod.delta = delta;
    mod.residues = str::to_upper(str::trim(parts[2]));
    if (parts.size() == 4) {
      const auto flag = str::to_upper(str::trim(parts[3]));
      if (flag == "FIXED") {
        mod.fixed = true;
      } else if (flag == "VARIABLE") {
        mod.fixed = false;
      } else {
        throw ConfigError("bad modification flag (want fixed|variable): " +
                          std::string(parts[3]));
      }
    }
    set.add(std::move(mod));
  }
  return set;
}

ModificationSet ModificationSet::paper_default() {
  ModificationSet set;
  set.add({"Deamidation", 0.98401585, "NQ", false});
  set.add({"GlyGly", 114.04292744, "KC", false});
  set.add({"Oxidation", 15.99491462, "M", false});
  return set;
}

}  // namespace lbe::chem
