#include "chem/peptide.hpp"

#include "chem/amino_acid.hpp"
#include "chem/mass.hpp"
#include "common/error.hpp"

namespace lbe::chem {

Peptide::Peptide(std::string seq) : seq_(std::move(seq)) {
  const std::size_t bad = find_invalid_residue(seq_);
  if (bad != std::string_view::npos) {
    throw ConfigError("invalid residue '" +
                      (seq_.empty() ? std::string("<empty>")
                                    : std::string(1, seq_[bad])) +
                      "' in peptide: " + seq_);
  }
}

Peptide::Peptide(std::string seq, std::vector<ModSite> sites,
                 const ModificationSet& mods)
    : Peptide(std::move(seq)) {
  std::uint32_t prev = 0;
  bool first = true;
  for (const auto& site : sites) {
    if (site.position >= seq_.size()) {
      throw ConfigError("mod site beyond peptide end");
    }
    if (!first && site.position <= prev) {
      throw ConfigError("mod sites must be sorted and unique");
    }
    if (site.mod >= mods.size()) {
      throw ConfigError("mod id out of range");
    }
    if (!mods[site.mod].applies_to(seq_[site.position])) {
      throw ConfigError("modification '" + mods[site.mod].name +
                        "' cannot attach to residue '" +
                        std::string(1, seq_[site.position]) + "'");
    }
    prev = site.position;
    first = false;
  }
  sites_ = std::move(sites);
}

Mass Peptide::mass(const ModificationSet& mods) const noexcept {
  Mass sum = kWater;
  for (const char c : seq_) {
    sum += residue_mass(c) + mods.fixed_delta(c);
  }
  for (const auto& site : sites_) {
    sum += mods[site.mod].delta;
  }
  return sum;
}

Mass Peptide::residue_delta(std::size_t pos,
                            const ModificationSet& mods) const noexcept {
  const char c = seq_[pos];
  Mass delta = residue_mass(c) + mods.fixed_delta(c);
  for (const auto& site : sites_) {
    if (site.position == pos) {
      delta += mods[site.mod].delta;
      break;  // at most one variable mod per site by construction
    }
    if (site.position > pos) break;  // sites are sorted
  }
  return delta;
}

std::string Peptide::annotated(const ModificationSet& mods) const {
  std::string out;
  out.reserve(seq_.size() + sites_.size() * 12);
  std::size_t next_site = 0;
  for (std::size_t i = 0; i < seq_.size(); ++i) {
    out += seq_[i];
    if (next_site < sites_.size() && sites_[next_site].position == i) {
      out += '(';
      out += mods[sites_[next_site].mod].name;
      out += ')';
      ++next_site;
    }
  }
  return out;
}

}  // namespace lbe::chem
