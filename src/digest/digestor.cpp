#include "digest/digestor.hpp"

#include "chem/amino_acid.hpp"
#include "common/error.hpp"

namespace lbe::digest {

void DigestionParams::validate() const {
  if (min_length == 0 || min_length > max_length) {
    throw ConfigError("digestion: need 0 < min_length <= max_length");
  }
  if (min_mass < 0.0 || min_mass > max_mass) {
    throw ConfigError("digestion: need 0 <= min_mass <= max_mass");
  }
}

std::vector<DigestedPeptide> digest_protein(std::string_view protein,
                                            std::uint32_t protein_id,
                                            const Enzyme& enzyme,
                                            const DigestionParams& params) {
  params.validate();
  std::vector<DigestedPeptide> out;
  if (protein.empty()) return out;

  // Fragment boundaries: [0, s1+1, s2+1, ..., len] where s* are cleavage
  // sites. Fully-enzymatic peptides are unions of <= missed+1 consecutive
  // fragments.
  std::vector<std::size_t> bounds;
  bounds.push_back(0);
  for (const std::size_t site : enzyme.sites(protein)) {
    bounds.push_back(site + 1);
  }
  bounds.push_back(protein.size());

  const std::size_t fragments = bounds.size() - 1;
  for (std::size_t first = 0; first < fragments; ++first) {
    for (std::uint32_t missed = 0;
         missed <= params.missed_cleavages && first + missed < fragments;
         ++missed) {
      const std::size_t begin = bounds[first];
      const std::size_t end = bounds[first + missed + 1];
      const std::size_t len = end - begin;
      if (len < params.min_length) continue;
      if (len > params.max_length) break;  // longer spans only grow
      const std::string_view pep = protein.substr(begin, len);
      const Mass m = chem::peptide_mass(pep);
      if (m < params.min_mass || m > params.max_mass) continue;
      out.push_back(DigestedPeptide{std::string(pep), protein_id,
                                    static_cast<std::uint32_t>(begin), missed});
    }
  }
  return out;
}

std::vector<DigestedPeptide> digest_database(
    const std::vector<io::FastaRecord>& records, const Enzyme& enzyme,
    const DigestionParams& params) {
  std::vector<DigestedPeptide> out;
  for (std::size_t i = 0; i < records.size(); ++i) {
    auto peptides = digest_protein(records[i].sequence,
                                   static_cast<std::uint32_t>(i), enzyme,
                                   params);
    out.insert(out.end(), std::make_move_iterator(peptides.begin()),
               std::make_move_iterator(peptides.end()));
  }
  return out;
}

}  // namespace lbe::digest
