#include "digest/enzyme.hpp"

#include <array>

#include "common/error.hpp"
#include "common/strings.hpp"

namespace lbe::digest {

std::vector<std::size_t> Enzyme::sites(std::string_view seq) const {
  std::vector<std::size_t> out;
  if (seq.empty()) return out;
  for (std::size_t i = 0; i + 1 < seq.size(); ++i) {
    if (cleaves_after(seq, i)) out.push_back(i);
  }
  return out;
}

namespace {

const std::array<Enzyme, 6>& builtin_enzymes() {
  static const std::array<Enzyme, 6> kEnzymes = {{
      {"trypsin", "KR", "P"},
      {"trypsin/p", "KR", ""},  // ignores proline blocking
      {"lys-c", "K", ""},
      {"arg-c", "R", ""},
      {"chymotrypsin", "FWY", "P"},
      {"glu-c", "E", ""},
  }};
  return kEnzymes;
}

}  // namespace

const Enzyme& enzyme_by_name(std::string_view name) {
  std::string lowered;
  lowered.reserve(name.size());
  for (const char c : name) {
    lowered += static_cast<char>(
        c >= 'A' && c <= 'Z' ? c - 'A' + 'a' : c);
  }
  for (const auto& enzyme : builtin_enzymes()) {
    if (enzyme.name == lowered) return enzyme;
  }
  throw ConfigError("unknown enzyme: " + std::string(name));
}

const Enzyme& trypsin() { return builtin_enzymes()[0]; }

}  // namespace lbe::digest
