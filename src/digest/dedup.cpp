#include "digest/dedup.hpp"

#include <string_view>
#include <unordered_set>

namespace lbe::digest {

namespace {

// Generic stable-dedup over any range with a sequence accessor. string_view
// keys into the retained elements stay valid because retained elements are
// never moved after insertion (vector erase-remove happens via copy-down of
// *later* elements only, so we dedup into a fresh vector instead).
template <typename T, typename GetSeq>
std::size_t stable_dedup(std::vector<T>& items, GetSeq get) {
  std::unordered_set<std::string_view> seen;
  seen.reserve(items.size());
  std::vector<T> kept;
  kept.reserve(items.size());
  for (auto& item : items) {
    // Insert with a view into the candidate; only keep if new.
    if (seen.count(std::string_view(get(item))) == 0) {
      kept.push_back(std::move(item));
      seen.insert(std::string_view(get(kept.back())));
    }
  }
  const std::size_t dropped = items.size() - kept.size();
  items = std::move(kept);
  return dropped;
}

}  // namespace

std::size_t deduplicate(std::vector<DigestedPeptide>& peptides) {
  return stable_dedup(peptides,
                      [](const DigestedPeptide& p) -> const std::string& {
                        return p.sequence;
                      });
}

std::size_t deduplicate(std::vector<std::string>& sequences) {
  return stable_dedup(sequences,
                      [](const std::string& s) -> const std::string& {
                        return s;
                      });
}

}  // namespace lbe::digest
