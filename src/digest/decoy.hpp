// Decoy database generation for target-decoy FDR estimation.
//
// Every production search pipeline validates identifications by searching a
// decoy database of equal size and statistics alongside the targets; the
// decoy hit rate estimates the false-match rate among targets (Elias &
// Gygi). Three standard constructions:
//
//   kReverse        — reverse each protein sequence. Simple; tryptic decoy
//                     peptides differ from target peptides.
//   kPseudoReverse  — digest-aware: reverse each tryptic peptide in place
//                     but keep its C-terminal K/R. Preserves peptide mass
//                     and length distributions exactly (the preferred
//                     construction for fragment-ion indexes).
//   kShuffle        — per-protein random shuffle (seeded, deterministic).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "digest/enzyme.hpp"
#include "io/fasta.hpp"

namespace lbe::digest {

enum class DecoyMethod : std::uint8_t {
  kReverse,
  kPseudoReverse,
  kShuffle,
};

/// Prefix added to decoy record headers, e.g. "DECOY_sp|P1|...".
inline constexpr const char* kDecoyPrefix = "DECOY_";

/// Builds one decoy record per target record. `enzyme` is only used by
/// kPseudoReverse (cleavage sites delimit the per-peptide reversal).
std::vector<io::FastaRecord> make_decoys(
    const std::vector<io::FastaRecord>& targets, DecoyMethod method,
    const Enzyme& enzyme = trypsin(), std::uint64_t seed = 0xDEC0);

/// Targets followed by their decoys — the concatenated search database.
std::vector<io::FastaRecord> with_decoys(
    std::vector<io::FastaRecord> targets, DecoyMethod method,
    const Enzyme& enzyme = trypsin(), std::uint64_t seed = 0xDEC0);

/// True if a FASTA header (or any string) carries the decoy prefix.
bool is_decoy_header(std::string_view header);

/// Decoy transform of one protein sequence (exposed for tests).
std::string decoy_sequence(const std::string& sequence, DecoyMethod method,
                           const Enzyme& enzyme, std::uint64_t seed);

}  // namespace lbe::digest
