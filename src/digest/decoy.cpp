#include "digest/decoy.hpp"

#include <algorithm>

#include "common/rng.hpp"
#include "common/strings.hpp"

namespace lbe::digest {

namespace {

std::string pseudo_reverse(const std::string& sequence,
                           const Enzyme& enzyme) {
  // Reverse each enzymatic fragment in place, keeping the cleavage-site
  // residue (the fragment's last) fixed so digestion of the decoy yields
  // peptides with identical mass/length statistics to the targets.
  std::string out = sequence;
  std::size_t begin = 0;
  auto flush = [&out](std::size_t lo, std::size_t hi, bool keep_last) {
    // Reverse [lo, hi); if keep_last, the residue at hi-1 stays.
    if (hi - lo < 2) return;
    std::reverse(out.begin() + static_cast<std::ptrdiff_t>(lo),
                 out.begin() + static_cast<std::ptrdiff_t>(hi) -
                     (keep_last ? 1 : 0));
  };
  for (const std::size_t site : enzyme.sites(sequence)) {
    flush(begin, site + 1, /*keep_last=*/true);
    begin = site + 1;
  }
  // The C-terminal fragment keeps its last residue too when it is a
  // cleavable one; fully reversing e.g. "...SEIAHR" would move the R inward
  // and create a cleavage site the target never had.
  if (begin < sequence.size()) {
    const bool cleavable =
        enzyme.cut_after.find(sequence.back()) != std::string::npos;
    flush(begin, sequence.size(), /*keep_last=*/cleavable);
  }
  return out;
}

}  // namespace

std::string decoy_sequence(const std::string& sequence, DecoyMethod method,
                           const Enzyme& enzyme, std::uint64_t seed) {
  switch (method) {
    case DecoyMethod::kReverse: {
      std::string out = sequence;
      std::reverse(out.begin(), out.end());
      return out;
    }
    case DecoyMethod::kPseudoReverse:
      return pseudo_reverse(sequence, enzyme);
    case DecoyMethod::kShuffle: {
      std::string out = sequence;
      Xoshiro256 rng(seed);
      shuffle(out.begin(), out.end(), rng);
      return out;
    }
  }
  return sequence;  // unreachable
}

std::vector<io::FastaRecord> make_decoys(
    const std::vector<io::FastaRecord>& targets, DecoyMethod method,
    const Enzyme& enzyme, std::uint64_t seed) {
  std::vector<io::FastaRecord> decoys;
  decoys.reserve(targets.size());
  for (std::size_t i = 0; i < targets.size(); ++i) {
    decoys.push_back(io::FastaRecord{
        kDecoyPrefix + targets[i].header,
        decoy_sequence(targets[i].sequence, method, enzyme, seed + i)});
  }
  return decoys;
}

std::vector<io::FastaRecord> with_decoys(std::vector<io::FastaRecord> targets,
                                         DecoyMethod method,
                                         const Enzyme& enzyme,
                                         std::uint64_t seed) {
  auto decoys = make_decoys(targets, method, enzyme, seed);
  targets.insert(targets.end(), std::make_move_iterator(decoys.begin()),
                 std::make_move_iterator(decoys.end()));
  return targets;
}

bool is_decoy_header(std::string_view header) {
  return str::starts_with(header, kDecoyPrefix);
}

}  // namespace lbe::digest
