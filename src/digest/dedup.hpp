// Duplicate-peptide removal (the paper's DBToolkit step).
//
// Shotgun databases contain the same tryptic peptide from many homologous
// proteins; the index must carry each sequence once. `deduplicate` keeps the
// first occurrence (stable), which matches DBToolkit's behaviour and keeps
// protein attribution deterministic.
#pragma once

#include <string>
#include <vector>

#include "digest/digestor.hpp"

namespace lbe::digest {

/// Removes later duplicates of equal sequences, preserving first-seen order.
/// Returns the number of duplicates dropped.
std::size_t deduplicate(std::vector<DigestedPeptide>& peptides);

/// Sequence-only convenience overload used by the LBE grouping pipeline.
std::size_t deduplicate(std::vector<std::string>& sequences);

}  // namespace lbe::digest
