#include "digest/variants.hpp"

#include <algorithm>

#include "common/error.hpp"

namespace lbe::digest {

namespace {

// Shared enumeration skeleton: walks eligible sites breadth-first by number
// of placed modifications so "fewer mods first" holds, then by position and
// mod id. `emit` returns false to stop early (cap reached).
template <typename Emit>
void enumerate(const std::string& sequence, const chem::ModificationSet& mods,
               const VariantParams& params, Emit&& emit) {
  // Eligible sites with their applicable mod lists, positions ascending.
  struct Site {
    std::uint16_t position;
    std::vector<chem::ModId> mods;
  };
  std::vector<Site> sites;
  for (std::size_t i = 0; i < sequence.size(); ++i) {
    auto applicable = mods.variable_mods_for(sequence[i]);
    if (!applicable.empty()) {
      sites.push_back(Site{static_cast<std::uint16_t>(i),
                           std::move(applicable)});
    }
  }

  if (params.include_unmodified) {
    if (!emit(std::vector<chem::ModSite>{})) return;
  }
  if (params.max_mod_residues == 0 || sites.empty()) return;

  // Depth-first over site combinations with k placed mods, for k = 1..max.
  // For fixed k the DFS visits combinations in lexicographic position order,
  // and mod choices in ascending id order — fully deterministic. Recursion
  // depth <= max_k (<= 5 in practice). Returns false once emit stops.
  std::vector<chem::ModSite> current;
  const std::uint32_t max_k = std::min<std::uint32_t>(
      params.max_mod_residues, static_cast<std::uint32_t>(sites.size()));

  auto dfs = [&](auto&& self, std::size_t next_site,
                 std::uint32_t target_k) -> bool {
    if (current.size() == target_k) return emit(current);
    const std::size_t remaining = target_k - current.size();
    // Prune: not enough sites left to reach target_k.
    for (std::size_t s = next_site; s + remaining <= sites.size(); ++s) {
      for (const chem::ModId mod : sites[s].mods) {
        current.push_back(chem::ModSite{sites[s].position, mod});
        const bool keep_going = self(self, s + 1, target_k);
        current.pop_back();
        if (!keep_going) return false;
      }
    }
    return true;
  };

  for (std::uint32_t k = 1; k <= max_k; ++k) {
    if (!dfs(dfs, 0, k)) return;
  }
}

}  // namespace

std::vector<chem::Peptide> enumerate_variants(
    const std::string& sequence, const chem::ModificationSet& mods,
    const VariantParams& params) {
  std::vector<chem::Peptide> out;
  std::uint64_t emitted = 0;
  enumerate(sequence, mods, params,
            [&](const std::vector<chem::ModSite>& sites) {
              out.emplace_back(sequence, sites, mods);
              ++emitted;
              return params.max_variants_per_peptide == 0 ||
                     emitted < params.max_variants_per_peptide;
            });
  return out;
}

std::uint64_t count_variants(const std::string& sequence,
                             const chem::ModificationSet& mods,
                             const VariantParams& params) {
  std::uint64_t count = 0;
  enumerate(sequence, mods, params, [&](const std::vector<chem::ModSite>&) {
    ++count;
    return params.max_variants_per_peptide == 0 ||
           count < params.max_variants_per_peptide;
  });
  return count;
}

}  // namespace lbe::digest
