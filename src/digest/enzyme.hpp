// Proteolytic enzymes and their cleavage rules.
//
// A rule is "cleave C-terminally of residues in `cut_after` unless the next
// residue is in `block_next`" — the classic Keil notation subset that covers
// the enzymes used in shotgun proteomics. The paper digests with trypsin
// (cut after K/R, blocked by following P).
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace lbe::digest {

struct Enzyme {
  std::string name;
  std::string cut_after;   ///< residues whose C-terminal bond is cleaved
  std::string block_next;  ///< cleavage suppressed if next residue is here

  /// True if the bond between seq[i] and seq[i+1] is cleaved.
  bool cleaves_after(std::string_view seq, std::size_t i) const noexcept {
    if (cut_after.find(seq[i]) == std::string::npos) return false;
    if (i + 1 < seq.size() &&
        block_next.find(seq[i + 1]) != std::string::npos) {
      return false;
    }
    return true;
  }

  /// All cleavage-site indices: position i means "cut between i and i+1".
  std::vector<std::size_t> sites(std::string_view seq) const;
};

/// Looks up a built-in enzyme by case-insensitive name
/// (trypsin, trypsin/p, lys-c, arg-c, chymotrypsin, glu-c);
/// throws ConfigError for unknown names.
const Enzyme& enzyme_by_name(std::string_view name);

/// Fully-tryptic rule used throughout the paper.
const Enzyme& trypsin();

}  // namespace lbe::digest
