// In-silico protein digestion (the paper's "Digestor [32]" step).
//
// Produces fully-enzymatic peptides with up to `missed_cleavages` internal
// sites, filtered by length and neutral mass — the exact settings of §V-A:
// fully tryptic, ≤ 2 missed cleavages, length 6–40, mass 100–5000 Da.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/types.hpp"
#include "digest/enzyme.hpp"
#include "io/fasta.hpp"

namespace lbe::digest {

struct DigestionParams {
  std::uint32_t missed_cleavages = 2;
  std::uint32_t min_length = 6;
  std::uint32_t max_length = 40;
  Mass min_mass = 100.0;
  Mass max_mass = 5000.0;

  /// Throws ConfigError on inconsistent windows.
  void validate() const;
};

/// One digestion product; `protein` indexes the input record list.
struct DigestedPeptide {
  std::string sequence;
  std::uint32_t protein = 0;
  std::uint32_t start = 0;            ///< offset within the protein
  std::uint32_t missed_cleavages = 0;
};

/// Digests one protein sequence. Deterministic, ordered by (start, length).
std::vector<DigestedPeptide> digest_protein(std::string_view protein,
                                            std::uint32_t protein_id,
                                            const Enzyme& enzyme,
                                            const DigestionParams& params);

/// Digests a whole FASTA database in record order.
std::vector<DigestedPeptide> digest_database(
    const std::vector<io::FastaRecord>& records, const Enzyme& enzyme,
    const DigestionParams& params);

}  // namespace lbe::digest
