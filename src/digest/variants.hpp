// Modified-variant enumeration.
//
// Expands each base peptide into its variable-modification variants — the
// step that makes the index "grow exponentially with increase in
// post-translational modifications" (paper §I). At most one modification per
// residue, at most `max_mod_residues` modified residues per peptide (the
// paper uses 5). Enumeration order is deterministic: positions left to
// right, modification ids ascending, fewer-site variants first.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "chem/peptide.hpp"

namespace lbe::digest {

struct VariantParams {
  std::uint32_t max_mod_residues = 5;
  /// Safety valve against combinatorial blow-up on mod-dense peptides;
  /// 0 means unlimited. Variants beyond the cap are dropped deterministically
  /// (enumeration order), mirroring engines that truncate isoform lists.
  std::uint64_t max_variants_per_peptide = 0;
  bool include_unmodified = true;
};

/// Enumerates variants of `sequence` under `mods`.
std::vector<chem::Peptide> enumerate_variants(
    const std::string& sequence, const chem::ModificationSet& mods,
    const VariantParams& params);

/// Counts what enumerate_variants would produce, without materializing
/// (used by workload planners to predict index sizes). Respects the cap.
std::uint64_t count_variants(const std::string& sequence,
                             const chem::ModificationSet& mods,
                             const VariantParams& params);

}  // namespace lbe::digest
