#include "serve/client.hpp"

#include <chrono>
#include <thread>

#include "common/error.hpp"

namespace lbe::serve {

void ServeClient::connect() { fd_ = connect_unix(path_); }

bool ServeClient::connect_wait(double timeout_seconds) {
  const auto deadline =
      std::chrono::steady_clock::now() +
      std::chrono::duration_cast<std::chrono::steady_clock::duration>(
          std::chrono::duration<double>(timeout_seconds));
  for (;;) {
    try {
      connect();
      ping();
      return true;
    } catch (const Error&) {
      fd_.reset();
    }
    if (std::chrono::steady_clock::now() >= deadline) return false;
    std::this_thread::sleep_for(std::chrono::milliseconds(25));
  }
}

Frame ServeClient::transact(MsgType type, const mpi::Bytes& payload) {
  LBE_CHECK(fd_.valid(), "client is not connected");
  write_frame(fd_.get(), type, payload);
  Frame reply;
  if (!read_frame(fd_.get(), reply)) {
    throw IoError("server closed the connection");
  }
  return reply;
}

PongInfo ServeClient::ping() {
  const Frame reply = transact(MsgType::kPing, {});
  if (reply.type != MsgType::kPong) {
    throw CommError("unexpected reply to ping");
  }
  return decode_pong(reply.payload);
}

ServeClient::Outcome ServeClient::search(const SearchRequest& request) {
  send_search(request);
  return read_search_result();
}

void ServeClient::send_search(const SearchRequest& request) {
  LBE_CHECK(fd_.valid(), "client is not connected");
  write_frame(fd_.get(), MsgType::kSearchRequest,
              encode_search_request(request));
}

ServeClient::Outcome ServeClient::read_search_result() {
  LBE_CHECK(fd_.valid(), "client is not connected");
  Frame reply;
  if (!read_frame(fd_.get(), reply)) {
    throw IoError("server closed the connection");
  }
  Outcome outcome;
  if (reply.type == MsgType::kSearchResponse) {
    outcome.response = decode_search_response(reply.payload);
    return outcome;
  }
  if (reply.type == MsgType::kError) {
    const ErrorBody body = decode_error(reply.payload);
    outcome.status = body.status;
    outcome.error = body.message;
    return outcome;
  }
  throw CommError("unexpected reply to a search request");
}

StatsBody ServeClient::stats() {
  const Frame reply = transact(MsgType::kStatsRequest, {});
  if (reply.type != MsgType::kStatsResponse) {
    throw CommError("unexpected reply to a stats request");
  }
  return decode_stats(reply.payload);
}

void ServeClient::shutdown_server() {
  const Frame reply = transact(MsgType::kShutdownRequest, {});
  if (reply.type != MsgType::kShutdownResponse) {
    throw CommError("unexpected reply to a shutdown request");
  }
}

}  // namespace lbe::serve
