#include "serve/service.hpp"

#include <algorithm>
#include <cstdio>

#include "common/error.hpp"
#include "search/report.hpp"

namespace lbe::serve {

std::shared_ptr<ServingContext> load_serving_context(
    const app::AppOptions& opts) {
  auto context = std::make_shared<ServingContext>();
  context->opts = opts;
  // Fill in place, in dependency order: the plan and the warm bundle both
  // keep pointers into context->db (the modification set), which is stable
  // from here on because the context never relocates.
  context->db = app::build_database(opts);
  context->plan = app::build_plan(context->db, opts);
  if (opts.index_dir.empty()) {
    auto bundle = app::build_index_bundle(context->plan, context->db, opts);
    context->warm =
        std::make_unique<index::IndexBundle>(std::move(bundle));
  } else {
    context->warm = app::try_load_warm_indexes(opts.index_dir, context->plan,
                                               context->db, opts);
    if (context->warm == nullptr) {
      throw ConfigError(
          "index bundle at '" + opts.index_dir +
          "' does not match this plan/configuration; refusing to serve "
          "a cold rebuild of something else (re-run lbectl prepare)");
    }
  }
  return context;
}

std::shared_ptr<ServingContext> build_serving_context_in_memory(
    const app::AppOptions& opts) {
  app::AppOptions local = opts;
  local.index_dir.clear();
  return load_serving_context(local);
}

SearchService::SearchService(std::shared_ptr<const ServingContext> context)
    : context_(std::move(context)) {
  LBE_CHECK(context_ != nullptr, "SearchService needs a serving context");
}

std::shared_ptr<const ServingContext> SearchService::snapshot() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return context_;
}

void SearchService::replace(std::shared_ptr<const ServingContext> context) {
  LBE_CHECK(context != nullptr, "hot swap needs a serving context");
  std::lock_guard<std::mutex> lock(mutex_);
  context_ = std::move(context);
}

SearchResponse SearchService::search_batch(
    const std::vector<chem::Spectrum>& spectra, std::uint32_t start_id,
    ThreadPool* pool) const {
  const auto context = snapshot();
  const core::LbePlan& plan = *context->plan.plan;
  const index::IndexBundle& warm = *context->warm;
  const search::SearchParams& params = context->opts.search.search;
  const std::size_t num_queries = spectra.size();

  SearchResponse response;
  response.start_id = start_id;
  response.queries = num_queries;

  // Same merge as the distributed master: every rank searches the whole
  // batch, local ids travel through the mapping table, and the per-query
  // lists sort under the strict total order global_psm_better.
  std::vector<search::GlobalQueryResult> merged(num_queries);
  for (int rank = 0; rank < warm.ranks(); ++rank) {
    // Engines are per-call (cheap: pointers + params + an arena) so
    // concurrent batches never share the non-thread-safe internal arena.
    const search::QueryEngine engine(*warm.per_rank[rank], plan.mods(),
                                     params);
    index::QueryWork work;
    const std::vector<search::QueryResult> local =
        engine.search_all(spectra, work, pool);
    for (std::size_t q = 0; q < num_queries; ++q) {
      response.candidates += local[q].candidates;
      auto& slot = merged[q];
      for (const search::Psm& psm : local[q].top) {
        slot.top.push_back(search::GlobalPsm{
            plan.mapping().to_global(rank, psm.peptide), psm.shared_peaks,
            psm.score, rank});
      }
    }
  }
  const std::size_t top_k = params.top_k;
  for (std::size_t q = 0; q < num_queries; ++q) {
    auto& slot = merged[q];
    slot.query_id = start_id + static_cast<std::uint32_t>(q);
    std::sort(slot.top.begin(), slot.top.end(), search::global_psm_better);
    if (slot.top.size() > top_k) slot.top.resize(top_k);
  }

  response.rows =
      search::resolve_psms(plan, merged, context->plan.decoy_bases);
  return response;
}

}  // namespace lbe::serve
