#include "serve/server.hpp"

#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <utility>

#include "common/error.hpp"

namespace lbe::serve {

Server::Server(ServerConfig config,
               std::shared_ptr<const ServingContext> context)
    : config_(std::move(config)), service_(std::move(context)) {
  LBE_CHECK(!config_.socket_path.empty(), "serve needs a socket path");
  LBE_CHECK(config_.queue_depth >= 1, "queue_depth must be >= 1");
  LBE_CHECK(config_.workers >= 1, "workers must be >= 1");
}

Server::~Server() { stop(); }

void Server::start() {
  LBE_CHECK(!running_.load(), "server already started");
  listener_ = listen_unix(config_.socket_path);
  running_.store(true);
  paused_.store(config_.start_paused);
  accept_thread_ = std::thread([this] { accept_loop(); });
  for (std::uint32_t w = 0; w < config_.workers; ++w) {
    worker_threads_.emplace_back([this] { worker_loop(); });
  }
}

void Server::stop() {
  if (!running_.exchange(false)) return;
  paused_.store(false);
  queue_cv_.notify_all();
  // Closing the listener makes the accept thread's poll() see POLLNVAL and
  // exit; closing connection fds unblocks handler threads stuck in read().
  listener_.reset();
  if (accept_thread_.joinable()) accept_thread_.join();
  {
    std::lock_guard<std::mutex> lock(connections_mutex_);
    for (auto& conn : connections_) {
      ::shutdown(conn->fd.get(), SHUT_RDWR);
    }
  }
  for (auto& thread : connection_threads_) {
    if (thread.joinable()) thread.join();
  }
  connection_threads_.clear();
  for (auto& thread : worker_threads_) {
    if (thread.joinable()) thread.join();
  }
  worker_threads_.clear();
  {
    std::lock_guard<std::mutex> lock(connections_mutex_);
    connections_.clear();
  }
  {
    std::lock_guard<std::mutex> lock(queue_mutex_);
    queue_.clear();
  }
  ::unlink(config_.socket_path.c_str());
}

void Server::hot_swap(std::shared_ptr<const ServingContext> context) {
  service_.replace(std::move(context));
  reloads_.fetch_add(1, std::memory_order_relaxed);
}

void Server::resume_workers() {
  paused_.store(false);
  queue_cv_.notify_all();
}

StatsBody Server::stats() const {
  StatsBody body;
  body.connections_accepted =
      connections_accepted_.load(std::memory_order_relaxed);
  body.batches_served = batches_served_.load(std::memory_order_relaxed);
  body.queries_served = queries_served_.load(std::memory_order_relaxed);
  body.batches_rejected = batches_rejected_.load(std::memory_order_relaxed);
  body.malformed_frames = malformed_frames_.load(std::memory_order_relaxed);
  body.reloads = reloads_.load(std::memory_order_relaxed);
  {
    std::lock_guard<std::mutex> lock(queue_mutex_);
    body.queue_length = queue_.size();
  }
  const auto context = service_.snapshot();
  body.ranks = static_cast<std::uint32_t>(context->warm->ranks());
  body.queue_depth = config_.queue_depth;
  body.workers = config_.workers;
  return body;
}

void Server::accept_loop() {
  while (running_.load(std::memory_order_relaxed)) {
    pollfd pfd{};
    pfd.fd = listener_.get();
    pfd.events = POLLIN;
    const int ready = ::poll(&pfd, 1, /*timeout_ms=*/100);
    if (!running_.load(std::memory_order_relaxed)) break;
    if (ready <= 0) continue;
    if (pfd.revents & (POLLERR | POLLNVAL)) break;
    Fd fd = accept_connection(listener_);
    if (!fd.valid()) continue;
    connections_accepted_.fetch_add(1, std::memory_order_relaxed);
    auto conn = std::make_shared<Connection>(std::move(fd));
    std::lock_guard<std::mutex> lock(connections_mutex_);
    connections_.push_back(conn);
    connection_threads_.emplace_back(
        [this, conn] { handle_connection(conn); });
  }
}

void Server::send_frame_locked(Connection& conn, MsgType type,
                               const mpi::Bytes& payload) {
  std::lock_guard<std::mutex> lock(conn.write_mutex);
  write_frame(conn.fd.get(), type, payload);
}

void Server::send_error(Connection& conn, Status status,
                        std::uint32_t request_id, const std::string& message) {
  ErrorBody body;
  body.status = status;
  body.request_id = request_id;
  body.message = message;
  send_frame_locked(conn, MsgType::kError, encode_error(body));
}

bool Server::try_enqueue(Job job) {
  {
    std::lock_guard<std::mutex> lock(queue_mutex_);
    if (queue_.size() >= config_.queue_depth) return false;
    queue_.push_back(std::move(job));
  }
  queue_cv_.notify_one();
  return true;
}

void Server::handle_connection(std::shared_ptr<Connection> conn) {
  serve_connection(conn);
  // Half-close so the peer sees EOF now, then drop the server's reference;
  // the fd itself closes once the last in-flight worker holding this
  // connection finishes (its reply fails with IoError and is swallowed).
  ::shutdown(conn->fd.get(), SHUT_RDWR);
  std::lock_guard<std::mutex> lock(connections_mutex_);
  connections_.erase(
      std::remove(connections_.begin(), connections_.end(), conn),
      connections_.end());
}

void Server::serve_connection(const std::shared_ptr<Connection>& conn) {
  while (running_.load(std::memory_order_relaxed)) {
    Frame frame;
    try {
      if (!read_frame(conn->fd.get(), frame, config_.max_frame_bytes)) {
        return;  // clean disconnect between frames
      }
    } catch (const FrameTooLargeError& error) {
      malformed_frames_.fetch_add(1, std::memory_order_relaxed);
      try {
        send_error(*conn, Status::kTooLarge, 0, error.what());
      } catch (const IoError&) {
      }
      return;  // unread payload bytes poison the stream; drop the peer
    } catch (const CommError& error) {
      malformed_frames_.fetch_add(1, std::memory_order_relaxed);
      try {
        send_error(*conn, Status::kMalformed, 0, error.what());
      } catch (const IoError&) {
      }
      return;
    } catch (const IoError&) {
      return;  // peer vanished mid-frame
    }

    try {
      switch (frame.type) {
        case MsgType::kPing: {
          const auto snapshot = service_.snapshot();
          PongInfo info;
          info.ranks = static_cast<std::uint32_t>(snapshot->warm->ranks());
          info.top_k = snapshot->top_k();
          info.queue_depth = config_.queue_depth;
          info.max_frame_bytes = config_.max_frame_bytes;
          // The warm bundle carries the fingerprint of the database it was
          // built from (validated at load), so no recompute per ping.
          info.database_crc = snapshot->warm->database_crc;
          send_frame_locked(*conn, MsgType::kPong, encode_pong(info));
          break;
        }
        case MsgType::kStatsRequest: {
          send_frame_locked(*conn, MsgType::kStatsResponse,
                            encode_stats(stats()));
          break;
        }
        case MsgType::kShutdownRequest: {
          shutdown_requested_.store(true, std::memory_order_relaxed);
          send_frame_locked(*conn, MsgType::kShutdownResponse, {});
          break;
        }
        case MsgType::kSearchRequest: {
          SearchRequest request;
          try {
            request = decode_search_request(frame.payload);
          } catch (const CommError& error) {
            malformed_frames_.fetch_add(1, std::memory_order_relaxed);
            send_error(*conn, Status::kMalformed, 0, error.what());
            return;  // decoder state is unknown; drop the peer
          }
          const std::uint32_t start_id = request.start_id;
          if (!try_enqueue(Job{conn, std::move(request)})) {
            batches_rejected_.fetch_add(1, std::memory_order_relaxed);
            send_error(*conn, Status::kQueueFull, start_id,
                       "request queue is full; retry");
          }
          break;
        }
        default:
          // A response type arriving at the server is a peer bug.
          malformed_frames_.fetch_add(1, std::memory_order_relaxed);
          send_error(*conn, Status::kMalformed, 0,
                     "unexpected message type for a server");
          return;
      }
    } catch (const IoError&) {
      return;  // reply failed: peer gone
    }
  }
}

void Server::worker_loop() {
  // One pool per worker, shared across that worker's batches, so
  // threads_per_batch > 1 does not re-spawn threads per request.
  std::unique_ptr<ThreadPool> pool;
  if (config_.threads_per_batch > 1) {
    pool = std::make_unique<ThreadPool>(config_.threads_per_batch);
  }
  while (true) {
    Job job;
    {
      std::unique_lock<std::mutex> lock(queue_mutex_);
      queue_cv_.wait(lock, [this] {
        return !running_.load(std::memory_order_relaxed) ||
               (!paused_.load(std::memory_order_relaxed) && !queue_.empty());
      });
      if (!running_.load(std::memory_order_relaxed)) return;
      job = std::move(queue_.front());
      queue_.pop_front();
    }
    try {
      const SearchResponse response = service_.search_batch(
          job.request.spectra, job.request.start_id, pool.get());
      send_frame_locked(*job.conn, MsgType::kSearchResponse,
                        encode_search_response(response));
      batches_served_.fetch_add(1, std::memory_order_relaxed);
      queries_served_.fetch_add(job.request.spectra.size(),
                                std::memory_order_relaxed);
    } catch (const IoError&) {
      // Peer disconnected before the response; the batch was still served.
    } catch (const Error& error) {
      try {
        send_error(*job.conn, Status::kInternal, job.request.start_id,
                   error.what());
      } catch (const IoError&) {
      }
    }
  }
}

}  // namespace lbe::serve
