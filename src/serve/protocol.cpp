#include "serve/protocol.hpp"

#include <cstring>

#include "common/error.hpp"
#include "search/wire.hpp"

namespace lbe::serve {

namespace {

// Hard ceilings a decoder enforces before trusting any count. Payload bytes
// are already bounded by the frame-size check, so these only have to stop a
// small payload from *claiming* enormous element counts.
constexpr std::uint64_t kMaxBatchQueries = 1u << 20;
constexpr std::uint64_t kMaxRowsPerBatch = 1u << 24;

void require(bool condition, const char* message) {
  if (!condition) throw CommError(message);
}

void require_exhausted(const mpi::ByteReader& reader) {
  require(reader.exhausted(), "malformed payload: trailing bytes");
}

// The spectrum codec is shared with the rank-worker transport: the daemon
// and a worker process must agree byte-for-byte on what a spectrum looks
// like on a wire (see search/wire.hpp, including the deliberate
// no-finalize() rebuild on the read side).
void write_spectrum(mpi::ByteWriter& writer, const chem::Spectrum& spectrum) {
  search::wire::write_spectrum(writer, spectrum);
}

chem::Spectrum read_spectrum(mpi::ByteReader& reader) {
  return search::wire::read_spectrum(reader);
}

void write_row(mpi::ByteWriter& writer, const search::ResolvedPsm& row) {
  writer.pod(row.query_id);
  writer.pod(row.psm_rank);
  writer.string(row.peptide);
  writer.string(row.base_sequence);
  writer.pod(row.neutral_mass);
  writer.pod(row.shared_peaks);
  writer.pod(row.score);
  writer.pod(static_cast<std::int32_t>(row.source_rank));
  writer.pod(static_cast<std::uint8_t>(row.is_decoy ? 1 : 0));
}

search::ResolvedPsm read_row(mpi::ByteReader& reader) {
  search::ResolvedPsm row;
  row.query_id = reader.pod<std::uint32_t>();
  row.psm_rank = reader.pod<std::uint32_t>();
  row.peptide = reader.string();
  row.base_sequence = reader.string();
  row.neutral_mass = reader.pod<double>();
  row.shared_peaks = reader.pod<std::uint32_t>();
  row.score = reader.pod<float>();
  row.source_rank = static_cast<RankId>(reader.pod<std::int32_t>());
  row.is_decoy = reader.pod<std::uint8_t>() != 0;
  return row;
}

}  // namespace

const char* status_name(Status status) {
  switch (status) {
    case Status::kOk: return "ok";
    case Status::kQueueFull: return "queue-full";
    case Status::kMalformed: return "malformed";
    case Status::kTooLarge: return "too-large";
    case Status::kShuttingDown: return "shutting-down";
    case Status::kInternal: return "internal";
  }
  return "unknown";
}

std::array<std::uint8_t, kFrameHeaderBytes> encode_frame_header(
    MsgType type, std::uint64_t payload_size) {
  std::array<std::uint8_t, kFrameHeaderBytes> raw{};
  const std::uint32_t magic = kFrameMagic;
  const auto type_value = static_cast<std::uint32_t>(type);
  std::memcpy(raw.data(), &magic, sizeof(magic));
  std::memcpy(raw.data() + 4, &type_value, sizeof(type_value));
  std::memcpy(raw.data() + 8, &payload_size, sizeof(payload_size));
  return raw;
}

FrameHeader decode_frame_header(
    const std::array<std::uint8_t, kFrameHeaderBytes>& raw) {
  std::uint32_t magic = 0;
  std::uint32_t type_value = 0;
  FrameHeader header;
  std::memcpy(&magic, raw.data(), sizeof(magic));
  std::memcpy(&type_value, raw.data() + 4, sizeof(type_value));
  std::memcpy(&header.payload_size, raw.data() + 8,
              sizeof(header.payload_size));
  require(magic == kFrameMagic, "bad frame magic (not an lbectl-serve peer)");
  require(type_value >= static_cast<std::uint32_t>(MsgType::kPing) &&
              type_value <= static_cast<std::uint32_t>(MsgType::kError),
          "unknown frame type");
  header.type = static_cast<MsgType>(type_value);
  return header;
}

mpi::Bytes encode_pong(const PongInfo& info) {
  mpi::Bytes bytes;
  mpi::ByteWriter writer(bytes);
  writer.pod(info.protocol_version);
  writer.pod(info.ranks);
  writer.pod(info.top_k);
  writer.pod(info.queue_depth);
  writer.pod(info.max_frame_bytes);
  writer.pod(info.database_crc);
  return bytes;
}

PongInfo decode_pong(const mpi::Bytes& payload) {
  mpi::ByteReader reader(payload);
  PongInfo info;
  info.protocol_version = reader.pod<std::uint32_t>();
  info.ranks = reader.pod<std::uint32_t>();
  info.top_k = reader.pod<std::uint32_t>();
  info.queue_depth = reader.pod<std::uint32_t>();
  info.max_frame_bytes = reader.pod<std::uint64_t>();
  info.database_crc = reader.pod<std::uint32_t>();
  require_exhausted(reader);
  return info;
}

mpi::Bytes encode_search_request(const SearchRequest& request) {
  mpi::Bytes bytes;
  mpi::ByteWriter writer(bytes);
  writer.pod(request.start_id);
  writer.pod(static_cast<std::uint64_t>(request.spectra.size()));
  for (const auto& spectrum : request.spectra) {
    write_spectrum(writer, spectrum);
  }
  return bytes;
}

SearchRequest decode_search_request(const mpi::Bytes& payload) {
  mpi::ByteReader reader(payload);
  SearchRequest request;
  request.start_id = reader.pod<std::uint32_t>();
  const auto count = reader.pod<std::uint64_t>();
  require(count <= kMaxBatchQueries,
          "malformed batch: implausible query count");
  request.spectra.reserve(static_cast<std::size_t>(count));
  for (std::uint64_t i = 0; i < count; ++i) {
    request.spectra.push_back(read_spectrum(reader));
  }
  require_exhausted(reader);
  return request;
}

mpi::Bytes encode_search_response(const SearchResponse& response) {
  mpi::Bytes bytes;
  mpi::ByteWriter writer(bytes);
  writer.pod(response.start_id);
  writer.pod(response.queries);
  writer.pod(response.candidates);
  writer.pod(static_cast<std::uint64_t>(response.rows.size()));
  for (const auto& row : response.rows) write_row(writer, row);
  return bytes;
}

SearchResponse decode_search_response(const mpi::Bytes& payload) {
  mpi::ByteReader reader(payload);
  SearchResponse response;
  response.start_id = reader.pod<std::uint32_t>();
  response.queries = reader.pod<std::uint64_t>();
  response.candidates = reader.pod<std::uint64_t>();
  const auto count = reader.pod<std::uint64_t>();
  require(count <= kMaxRowsPerBatch,
          "malformed response: implausible row count");
  response.rows.reserve(static_cast<std::size_t>(count));
  for (std::uint64_t i = 0; i < count; ++i) {
    response.rows.push_back(read_row(reader));
  }
  require_exhausted(reader);
  return response;
}

mpi::Bytes encode_error(const ErrorBody& error) {
  mpi::Bytes bytes;
  mpi::ByteWriter writer(bytes);
  writer.pod(static_cast<std::uint32_t>(error.status));
  writer.pod(error.request_id);
  writer.string(error.message);
  return bytes;
}

ErrorBody decode_error(const mpi::Bytes& payload) {
  mpi::ByteReader reader(payload);
  ErrorBody error;
  const auto status = reader.pod<std::uint32_t>();
  require(status <= static_cast<std::uint32_t>(Status::kInternal),
          "malformed error frame: unknown status");
  error.status = static_cast<Status>(status);
  error.request_id = reader.pod<std::uint32_t>();
  error.message = reader.string();
  require_exhausted(reader);
  return error;
}

mpi::Bytes encode_stats(const StatsBody& stats) {
  mpi::Bytes bytes;
  mpi::ByteWriter writer(bytes);
  writer.pod(stats.connections_accepted);
  writer.pod(stats.batches_served);
  writer.pod(stats.queries_served);
  writer.pod(stats.batches_rejected);
  writer.pod(stats.malformed_frames);
  writer.pod(stats.reloads);
  writer.pod(stats.queue_length);
  writer.pod(stats.ranks);
  writer.pod(stats.queue_depth);
  writer.pod(stats.workers);
  return bytes;
}

StatsBody decode_stats(const mpi::Bytes& payload) {
  mpi::ByteReader reader(payload);
  StatsBody stats;
  stats.connections_accepted = reader.pod<std::uint64_t>();
  stats.batches_served = reader.pod<std::uint64_t>();
  stats.queries_served = reader.pod<std::uint64_t>();
  stats.batches_rejected = reader.pod<std::uint64_t>();
  stats.malformed_frames = reader.pod<std::uint64_t>();
  stats.reloads = reader.pod<std::uint64_t>();
  stats.queue_length = reader.pod<std::uint64_t>();
  stats.ranks = reader.pod<std::uint32_t>();
  stats.queue_depth = reader.pod<std::uint32_t>();
  stats.workers = reader.pod<std::uint32_t>();
  require_exhausted(reader);
  return stats;
}

}  // namespace lbe::serve
