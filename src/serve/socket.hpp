// Unix-domain socket plumbing for the serving daemon and its client.
//
// Thin wrappers over the POSIX API: an RAII fd, listen/connect helpers, and
// exact-length frame I/O built on read()/send() loops that retry EINTR and
// never raise SIGPIPE (MSG_NOSIGNAL). A peer disconnect mid-frame surfaces
// as IoError; a frame that decodes badly surfaces as CommError — callers
// can tell "the connection died" from "the peer sent garbage".
#pragma once

#include <cstdint>
#include <string>
#include <utility>

#include "serve/protocol.hpp"
#include "simmpi/bytes.hpp"

namespace lbe::serve {

/// Owning file descriptor. Move-only; closes on destruction.
class Fd {
 public:
  Fd() = default;
  explicit Fd(int fd) : fd_(fd) {}
  ~Fd() { reset(); }

  Fd(Fd&& other) noexcept : fd_(std::exchange(other.fd_, -1)) {}
  Fd& operator=(Fd&& other) noexcept {
    if (this != &other) {
      reset();
      fd_ = std::exchange(other.fd_, -1);
    }
    return *this;
  }
  Fd(const Fd&) = delete;
  Fd& operator=(const Fd&) = delete;

  int get() const noexcept { return fd_; }
  bool valid() const noexcept { return fd_ >= 0; }
  void reset();

 private:
  int fd_ = -1;
};

/// Binds and listens on a Unix-domain socket at `path`, unlinking any stale
/// socket file first. Throws IoError on failure (e.g. path too long for
/// sockaddr_un, permission denied).
Fd listen_unix(const std::string& path, int backlog = 16);

/// Connects to the daemon socket at `path`. Throws IoError on failure.
Fd connect_unix(const std::string& path);

/// Accepts one pending connection; returns an invalid Fd if the accept was
/// interrupted or would block (listener is used with poll()).
Fd accept_connection(const Fd& listener);

/// Reads exactly `size` bytes. Returns false on clean EOF at offset 0 (peer
/// closed between frames); throws IoError on mid-buffer EOF or errors.
bool read_exact(int fd, void* data, std::size_t size);

/// Writes all of `size` bytes (send with MSG_NOSIGNAL, EINTR retried).
/// Throws IoError when the peer is gone.
void write_all(int fd, const void* data, std::size_t size);

/// One whole frame: header + payload.
struct Frame {
  MsgType type = MsgType::kPing;
  mpi::Bytes payload;
};

/// Thrown by read_frame when the length prefix exceeds the bound. Distinct
/// from plain CommError so the server answers kTooLarge, not kMalformed.
struct FrameTooLargeError : CommError {
  using CommError::CommError;
};

/// Reads a frame. Returns false on clean EOF before a header. Throws
/// CommError for bad magic/type, FrameTooLargeError for a payload size
/// beyond `max_payload` (the payload is left unread — the caller answers
/// and closes), IoError when the peer vanishes mid-frame.
bool read_frame(int fd, Frame& frame,
                std::uint64_t max_payload = kDefaultMaxFrameBytes);

/// Writes one frame (header then payload).
void write_frame(int fd, MsgType type, const mpi::Bytes& payload);

}  // namespace lbe::serve
