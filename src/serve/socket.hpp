// Unix-domain socket plumbing for the serving daemon and its client.
//
// The POSIX primitives — RAII fd, listen/connect helpers, EINTR-safe
// exact-length I/O, the FrameTooLargeError bound — live in common/net.hpp
// and are shared with the multi-process rank transport; this header aliases
// them into lbe::serve and adds the daemon's "LBES" frame layer on top. A
// peer disconnect mid-frame surfaces as IoError; a frame that decodes badly
// surfaces as CommError — callers can tell "the connection died" from "the
// peer sent garbage".
#pragma once

#include <cstdint>
#include <string>

#include "common/net.hpp"
#include "serve/protocol.hpp"
#include "simmpi/bytes.hpp"

namespace lbe::serve {

using net::accept_connection;
using net::connect_unix;
using net::Fd;
using net::listen_unix;
using net::read_exact;
using net::write_all;

/// One whole frame: header + payload.
struct Frame {
  MsgType type = MsgType::kPing;
  mpi::Bytes payload;
};

/// Thrown by read_frame when the length prefix exceeds the bound. Distinct
/// from plain CommError so the server answers kTooLarge, not kMalformed.
using FrameTooLargeError = net::FrameTooLargeError;

/// Reads a frame. Returns false on clean EOF before a header. Throws
/// CommError for bad magic/type, FrameTooLargeError for a payload size
/// beyond `max_payload` (the payload is left unread — the caller answers
/// and closes), IoError when the peer vanishes mid-frame.
bool read_frame(int fd, Frame& frame,
                std::uint64_t max_payload = kDefaultMaxFrameBytes);

/// Writes one frame (header then payload).
void write_frame(int fd, MsgType type, const mpi::Bytes& payload);

}  // namespace lbe::serve
