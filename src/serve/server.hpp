// The `lbectl serve` daemon core: accept loop, bounded request queue,
// admission control, worker pool, and the hot-swap hook.
//
// Thread structure:
//
//   accept thread ── poll(listener) ──▶ one handler thread per connection
//   handler: reads frames; control frames (ping/stats/shutdown) answered
//            inline, search batches pushed onto the bounded queue — or
//            rejected with a typed kQueueFull error when it is full
//   workers (N): pop a batch, snapshot the serving context, search, write
//            the response under the connection's write lock
//
// Responses to one connection serialize on its write mutex, so an inline
// pong never interleaves bytes with a worker's search response. A reload
// (SIGHUP) swaps the SearchService's context pointer; batches already
// running keep their snapshot and drain on the old mapping.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "serve/service.hpp"
#include "serve/socket.hpp"

namespace lbe::serve {

struct ServerConfig {
  std::string socket_path;
  std::uint32_t queue_depth = 64;  ///< max batches waiting (admission bound)
  std::uint32_t workers = 1;       ///< concurrent search batches
  /// Threads fanning one batch's query loop out (1 = serial per batch).
  std::uint32_t threads_per_batch = 1;
  std::uint64_t max_frame_bytes = kDefaultMaxFrameBytes;
  /// Tests only: workers start idle until resume_workers(), so a bounded
  /// queue can be filled deterministically to exercise admission control.
  bool start_paused = false;
};

class Server {
 public:
  Server(ServerConfig config, std::shared_ptr<const ServingContext> context);
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Binds the socket and launches the accept thread and workers. Throws
  /// IoError when the socket cannot be bound.
  void start();

  /// Stops accepting, closes connections, joins every thread. Idempotent.
  void stop();

  /// Replaces the serving context (SIGHUP hot swap). In-flight batches
  /// drain on the generation they snapshotted.
  void hot_swap(std::shared_ptr<const ServingContext> context);

  /// Releases workers started with `start_paused`.
  void resume_workers();

  /// Set once a client sent kShutdownRequest; the driving loop polls it.
  bool shutdown_requested() const noexcept {
    return shutdown_requested_.load(std::memory_order_relaxed);
  }

  StatsBody stats() const;
  const ServerConfig& config() const noexcept { return config_; }

 private:
  struct Connection {
    explicit Connection(Fd fd) : fd(std::move(fd)) {}
    Fd fd;
    std::mutex write_mutex;
  };

  struct Job {
    std::shared_ptr<Connection> conn;
    SearchRequest request;
  };

  void accept_loop();
  void handle_connection(std::shared_ptr<Connection> conn);
  /// Frame loop of one connection; returning means the peer is done
  /// (clean EOF, fatal frame, or server shutdown).
  void serve_connection(const std::shared_ptr<Connection>& conn);
  void worker_loop();
  void send_frame_locked(Connection& conn, MsgType type,
                         const mpi::Bytes& payload);
  void send_error(Connection& conn, Status status, std::uint32_t request_id,
                  const std::string& message);
  bool try_enqueue(Job job);

  ServerConfig config_;
  SearchService service_;
  Fd listener_;

  std::atomic<bool> running_{false};
  std::atomic<bool> paused_{false};
  std::atomic<bool> shutdown_requested_{false};

  mutable std::mutex queue_mutex_;
  std::condition_variable queue_cv_;
  std::deque<Job> queue_;

  std::thread accept_thread_;
  std::vector<std::thread> worker_threads_;
  std::mutex connections_mutex_;
  std::vector<std::shared_ptr<Connection>> connections_;
  std::vector<std::thread> connection_threads_;

  // Counters behind the kStatsResponse frame.
  std::atomic<std::uint64_t> connections_accepted_{0};
  std::atomic<std::uint64_t> batches_served_{0};
  std::atomic<std::uint64_t> queries_served_{0};
  std::atomic<std::uint64_t> batches_rejected_{0};
  std::atomic<std::uint64_t> malformed_frames_{0};
  std::atomic<std::uint64_t> reloads_{0};
};

}  // namespace lbe::serve
