#include "serve/socket.hpp"

#include <array>

#include "common/error.hpp"

namespace lbe::serve {

bool read_frame(int fd, Frame& frame, std::uint64_t max_payload) {
  std::array<std::uint8_t, kFrameHeaderBytes> raw;
  if (!read_exact(fd, raw.data(), raw.size())) return false;
  const FrameHeader header = decode_frame_header(raw);
  if (header.payload_size > max_payload) {
    throw FrameTooLargeError("frame payload exceeds the size bound");
  }
  frame.type = header.type;
  frame.payload.resize(static_cast<std::size_t>(header.payload_size));
  if (header.payload_size > 0 &&
      !read_exact(fd, frame.payload.data(), frame.payload.size())) {
    throw IoError("peer disconnected mid-frame");
  }
  return true;
}

void write_frame(int fd, MsgType type, const mpi::Bytes& payload) {
  const auto header = encode_frame_header(type, payload.size());
  write_all(fd, header.data(), header.size());
  if (!payload.empty()) write_all(fd, payload.data(), payload.size());
}

}  // namespace lbe::serve
