// Client side of the serve protocol — what `lbectl query`, the serve
// bench suite, and the tests talk to the daemon with.
//
// The client is synchronous by default (`search` = send + wait), but the
// send/receive halves are exposed separately so a test can queue several
// batches on one connection before reading any response (that is how the
// bounded-queue admission control is exercised deterministically).
#pragma once

#include <cstdint>
#include <string>

#include "serve/protocol.hpp"
#include "serve/socket.hpp"

namespace lbe::serve {

class ServeClient {
 public:
  explicit ServeClient(std::string socket_path)
      : path_(std::move(socket_path)) {}

  /// Connects (throws IoError when nobody listens).
  void connect();

  /// Retries connect+ping until the daemon answers or `timeout_seconds`
  /// passes. Returns false on timeout — used to wait out daemon startup.
  bool connect_wait(double timeout_seconds);

  bool connected() const noexcept { return fd_.valid(); }
  void close() { fd_.reset(); }

  PongInfo ping();

  /// What one search batch came back as. `status == kOk` means `response`
  /// is valid; anything else carries the server's typed rejection.
  struct Outcome {
    Status status = Status::kOk;
    std::string error;
    SearchResponse response;
  };

  /// Send + wait for this batch's response (or typed error).
  Outcome search(const SearchRequest& request);

  /// Pipelined halves of `search`.
  void send_search(const SearchRequest& request);
  Outcome read_search_result();

  StatsBody stats();

  /// Asks the daemon to exit its serve loop (waits for the ack).
  void shutdown_server();

 private:
  Frame transact(MsgType type, const mpi::Bytes& payload);

  std::string path_;
  Fd fd_;
};

}  // namespace lbe::serve
