// Wire protocol of the `lbectl serve` daemon.
//
// Frames cross the Unix-domain socket as a fixed 16-byte header followed by
// a length-prefixed payload:
//
//   frame   := [magic u32 "LBES"][type u32][payload size u64][payload]
//
// Payloads are encoded with the same byte-level conventions as simulated
// MPI messages (simmpi/bytes.hpp ByteWriter/ByteReader): little-endian
// fixed-width PODs, u64-counted strings and vectors. Decoders are strict —
// underrun, trailing bytes, or implausible counts raise CommError, which
// the server answers with a typed kError frame instead of crashing (and
// never turns into an allocation proportional to an attacker-chosen
// length: the frame size is bounded before the payload is read).
//
// A search response carries *resolved* PSM rows (annotated peptide, base
// sequence, neutral mass, decoy flag) rather than raw global ids, so a
// thin client can write the exact same psms.tsv as a one-shot
// `lbectl search` without loading the plan the daemon holds resident.
#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "chem/spectrum.hpp"
#include "search/report.hpp"
#include "simmpi/bytes.hpp"

namespace lbe::serve {

/// "LBES" little-endian — distinct from the "LBEX" index container magic.
inline constexpr std::uint32_t kFrameMagic = 0x5345424Cu;

inline constexpr std::uint32_t kProtocolVersion = 1;

/// Frame header bytes on the wire: magic + type + payload size.
inline constexpr std::uint64_t kFrameHeaderBytes = 16;

/// Default admission bound on one frame's payload. A length prefix beyond
/// the bound is rejected with kTooLarge before any payload byte is read.
inline constexpr std::uint64_t kDefaultMaxFrameBytes = 64ull << 20;

enum class MsgType : std::uint32_t {
  kPing = 1,
  kPong = 2,
  kSearchRequest = 3,
  kSearchResponse = 4,
  kStatsRequest = 5,
  kStatsResponse = 6,
  kShutdownRequest = 7,
  kShutdownResponse = 8,
  kError = 9,
};

/// Typed daemon status codes (the payload of a kError frame).
enum class Status : std::uint32_t {
  kOk = 0,
  kQueueFull = 1,      ///< admission control: bounded request queue is full
  kMalformed = 2,      ///< frame or payload failed to decode
  kTooLarge = 3,       ///< length prefix exceeds the frame-size bound
  kShuttingDown = 4,   ///< server is draining; no new batches admitted
  kInternal = 5,       ///< search failed server-side (see message)
};

const char* status_name(Status status);

struct FrameHeader {
  MsgType type = MsgType::kPing;
  std::uint64_t payload_size = 0;
};

/// Packs a header for the wire.
std::array<std::uint8_t, kFrameHeaderBytes> encode_frame_header(
    MsgType type, std::uint64_t payload_size);

/// Throws CommError on bad magic or unknown message type. The payload size
/// is returned unchecked — callers enforce their own bound so an oversized
/// frame can be answered with kTooLarge instead of a blind disconnect.
FrameHeader decode_frame_header(
    const std::array<std::uint8_t, kFrameHeaderBytes>& raw);

/// kPong payload: what the daemon is serving.
struct PongInfo {
  std::uint32_t protocol_version = kProtocolVersion;
  std::uint32_t ranks = 0;
  std::uint32_t top_k = 0;
  std::uint32_t queue_depth = 0;
  std::uint64_t max_frame_bytes = kDefaultMaxFrameBytes;
  /// CRC-32 fingerprint of the database the daemon's resident indexes were
  /// built from (app::database_fingerprint). `lbectl query` compares this
  /// against the plan *it* loaded and warns loudly on a mismatch — a
  /// client pointed at the wrong daemon (or a daemon serving a stale
  /// bundle) otherwise writes a psms.tsv that silently disagrees with a
  /// one-shot `search --plan` of the client's plan.
  std::uint32_t database_crc = 0;
};

/// One query batch. Spectra must be finalized (peaks in m/z order) on the
/// client; the daemon searches them as-is. Queries are numbered
/// start_id .. start_id + spectra.size() - 1, and the response echoes
/// start_id so pipelined batches on one connection can be correlated.
struct SearchRequest {
  std::uint32_t start_id = 0;
  std::vector<chem::Spectrum> spectra;
};

/// Resolved rows for the batch, in query order, psm_rank ascending — the
/// exact rows search::write_psm_rows turns into psms.tsv lines.
struct SearchResponse {
  std::uint32_t start_id = 0;
  std::uint64_t queries = 0;     ///< spectra searched in this batch
  std::uint64_t candidates = 0;  ///< cPSMs passing filtration, summed
  std::vector<search::ResolvedPsm> rows;
};

struct ErrorBody {
  Status status = Status::kInternal;
  /// start_id of the rejected batch when known (admission rejections), 0
  /// for framing/decode errors that never recovered a request id.
  std::uint32_t request_id = 0;
  std::string message;
};

/// kStatsResponse payload: daemon counters for tests and monitoring.
struct StatsBody {
  std::uint64_t connections_accepted = 0;
  std::uint64_t batches_served = 0;
  std::uint64_t queries_served = 0;
  std::uint64_t batches_rejected = 0;  ///< admission-control rejections
  std::uint64_t malformed_frames = 0;
  std::uint64_t reloads = 0;           ///< completed SIGHUP hot swaps
  std::uint64_t queue_length = 0;      ///< batches waiting right now
  std::uint32_t ranks = 0;
  std::uint32_t queue_depth = 0;
  std::uint32_t workers = 0;
};

mpi::Bytes encode_pong(const PongInfo& info);
PongInfo decode_pong(const mpi::Bytes& payload);

mpi::Bytes encode_search_request(const SearchRequest& request);
SearchRequest decode_search_request(const mpi::Bytes& payload);

mpi::Bytes encode_search_response(const SearchResponse& response);
SearchResponse decode_search_response(const mpi::Bytes& payload);

mpi::Bytes encode_error(const ErrorBody& error);
ErrorBody decode_error(const mpi::Bytes& payload);

mpi::Bytes encode_stats(const StatsBody& stats);
StatsBody decode_stats(const mpi::Bytes& payload);

}  // namespace lbe::serve
