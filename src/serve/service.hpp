// Daemon-side search service: the resident index set and the batch search
// it answers requests with.
//
// A `ServingContext` pins one generation of everything a search needs —
// options, database, plan, and the per-rank warm indexes (mmapped from a
// v3 bundle, or built in memory for tests/benches). `SearchService` holds
// the current generation behind a shared_ptr: workers snapshot it per
// batch, and a SIGHUP hot swap just replaces the pointer — in-flight
// batches finish on the old mapping, which is torn down when the last
// snapshot drops.
//
// `search_batch` reproduces the one-shot distributed merge bit for bit:
// every rank's engine searches the whole batch against its partial index,
// local ids map to global through the plan's mapping table, and the merged
// list per query is sorted with the master's `global_psm_better` total
// order and truncated to top_k, then resolved into report rows.
#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <vector>

#include "app/pipeline.hpp"
#include "common/thread_pool.hpp"
#include "serve/protocol.hpp"

namespace lbe::serve {

/// One generation of serving state. Non-movable: the plan and the warm
/// indexes borrow `db.mods` by address, so the struct lives on the heap and
/// never relocates.
struct ServingContext {
  app::AppOptions opts;
  app::DatabaseBundle db;
  app::PlanBundle plan;
  std::unique_ptr<index::IndexBundle> warm;

  ServingContext() = default;
  ServingContext(const ServingContext&) = delete;
  ServingContext& operator=(const ServingContext&) = delete;

  std::uint32_t top_k() const noexcept {
    return opts.search.search.top_k;
  }
};

/// Builds the context the daemon serves: database (plan file > FASTA >
/// synthetic), LBE plan, and the warm bundle from `opts.index_dir`
/// (mmapped when `opts.index_mmap`). Unlike one-shot search, a bundle
/// mismatch is fatal here — a daemon must never silently fall back to a
/// cold rebuild of something else than what the operator pointed it at.
std::shared_ptr<ServingContext> load_serving_context(
    const app::AppOptions& opts);

/// Same context, but the per-rank indexes are built in memory from the
/// plan instead of loaded from disk — benches and tests skip the bundle
/// round-trip.
std::shared_ptr<ServingContext> build_serving_context_in_memory(
    const app::AppOptions& opts);

/// Thread-safe holder of the current ServingContext plus the batch search.
class SearchService {
 public:
  explicit SearchService(std::shared_ptr<const ServingContext> context);

  std::shared_ptr<const ServingContext> snapshot() const;

  /// Atomically replaces the serving generation (SIGHUP hot swap).
  void replace(std::shared_ptr<const ServingContext> context);

  /// Searches one batch against the current generation. Queries are
  /// numbered start_id, start_id+1, ... so daemon psms.tsv rows match the
  /// one-shot pipeline's 0-based query ids when clients batch in order.
  /// `pool`, when non-null, fans each rank's batch loop out over worker
  /// threads (identical results, per-worker arenas).
  SearchResponse search_batch(const std::vector<chem::Spectrum>& spectra,
                              std::uint32_t start_id,
                              ThreadPool* pool = nullptr) const;

 private:
  mutable std::mutex mutex_;
  std::shared_ptr<const ServingContext> context_;
};

}  // namespace lbe::serve
