#include "app/commands.hpp"

#include <cstdio>
#include <filesystem>
#include <string>
#include <vector>

#include "app/pipeline.hpp"
#include "common/error.hpp"
#include "core/partition.hpp"
#include "digest/variants.hpp"
#include "index/chunked_index.hpp"
#include "perf/metrics.hpp"

namespace lbe::app {

namespace {

void print_database_summary(const DatabaseBundle& db) {
  std::size_t decoys = 0;
  for (const bool flag : db.is_decoy) decoys += flag ? 1 : 0;
  std::printf("database: %zu peptides (%zu targets, %zu decoys), "
              "%zu duplicates dropped, %zu decoy collisions dropped\n",
              db.peptides.size(), db.peptides.size() - decoys, decoys,
              db.duplicates_dropped, db.decoy_collisions_dropped);
}

void print_plan_summary(const PlanBundle& plan) {
  const auto& p = *plan.plan;
  std::printf("plan: %zu bases in %zu groups -> %llu index entries over %d "
              "ranks (%s), prep %.1f ms\n",
              p.num_bases(), p.grouping().num_groups(),
              static_cast<unsigned long long>(p.num_variants()), p.ranks(),
              core::policy_name(p.params().partition.policy),
              plan.prep_seconds * 1e3);
}

std::string rank_index_path(const std::string& out_dir, int rank) {
  return out_dir + "/rank" + std::to_string(rank) + ".idx";
}

}  // namespace

int run_prepare(const AppOptions& opts) {
  const DatabaseBundle db = build_database(opts);
  print_database_summary(db);

  const PlanBundle plan = build_plan(db, opts);
  print_plan_summary(plan);

  std::filesystem::create_directories(opts.out_dir);
  const std::string plan_path = opts.out_dir + "/plan.lbe";
  save_plan_file(plan_path, db, plan.plan->params());
  std::printf("wrote %s (%ju bytes)\n", plan_path.c_str(),
              static_cast<std::uintmax_t>(
                  std::filesystem::file_size(plan_path)));

  // The rank indexes are the paper's disk-resident chunk artifacts (and a
  // serialization self-check); `search --plan` rebuilds its partials
  // deterministically from the stored plan rather than reading these.
  std::uint64_t total_bytes = 0;
  for (int rank = 0; rank < plan.plan->ranks(); ++rank) {
    index::PeptideStore store = plan.plan->build_rank_store(rank);
    const std::size_t entries = store.size();
    const index::ChunkedIndex partial(std::move(store), plan.plan->mods(),
                                      opts.search.index, opts.search.chunking);
    const std::string path = rank_index_path(opts.out_dir, rank);
    partial.save_file(path);
    total_bytes += partial.memory_bytes();
    std::printf("wrote %s: %zu entries, %llu postings\n", path.c_str(),
                entries,
                static_cast<unsigned long long>(partial.num_postings()));
  }

  // Round-trip one partition as a self-check: a plan that cannot be read
  // back is worse than no plan.
  const auto reloaded = index::ChunkedIndex::load_file(
      rank_index_path(opts.out_dir, 0), plan.plan->mods(), opts.search.index);
  LBE_CHECK(reloaded->num_peptides() ==
                plan.plan->mapping().rank_count(0),
            "rank 0 index failed its reload self-check");
  std::printf("prepared %d rank indexes (%.1f MiB in-memory total)\n",
              plan.plan->ranks(),
              static_cast<double>(total_bytes) / (1024.0 * 1024.0));
  return 0;
}

int run_search(const AppOptions& opts) {
  const PipelineInputs inputs = prepare_inputs(opts);
  print_database_summary(inputs.database);
  std::printf("queries: %zu spectra from %s\n", inputs.queries.spectra.size(),
              inputs.queries.origin.c_str());

  const PlanBundle plan = build_plan(inputs.database, opts);
  print_plan_summary(plan);

  const SearchOutcome outcome =
      run_search_pipeline(plan, inputs.queries, opts);

  std::printf("search: %zu/%zu queries matched, %zu target PSMs at q <= %g\n",
              outcome.queries_with_results,
              outcome.report.results.size(), outcome.accepted,
              opts.fdr_threshold);
  std::printf("query-phase load imbalance (Eq. 1): %.1f%% by time, "
              "%.1f%% by work units\n",
              100.0 * outcome.time_stats.imbalance,
              100.0 * outcome.work_stats.imbalance);
  std::printf("makespan %.1f ms (threads/rank=%u, batch=%u)\n",
              outcome.report.makespan * 1e3, opts.threads, opts.batch);

  if (opts.write_report) {
    write_reports(opts.out_dir, plan, outcome);
    std::printf("reports: %s/psms.tsv, %s/fdr.csv, %s/metrics.csv\n",
                opts.out_dir.c_str(), opts.out_dir.c_str(),
                opts.out_dir.c_str());
  }

  if (opts.verify_baseline) {
    const std::size_t mismatches =
        compare_with_baseline(plan, inputs.queries, opts, outcome);
    if (mismatches != 0) {
      std::printf("VERIFY FAILED: %zu queries differ from the shared-memory "
                  "baseline\n",
                  mismatches);
      return 1;
    }
    std::printf("verify: distributed results identical to the shared-memory "
                "baseline\n");
  }
  return 0;
}

int run_stats(const AppOptions& opts) {
  const DatabaseBundle db = build_database(opts);
  print_database_summary(db);

  const PlanBundle plan = build_plan(db, opts);
  print_plan_summary(plan);
  const auto& mapping = plan.plan->mapping();

  std::printf("\n%5s %12s %10s\n", "rank", "entries", "share");
  std::vector<double> entries_per_rank;
  for (int rank = 0; rank < plan.plan->ranks(); ++rank) {
    const auto count = static_cast<double>(mapping.rank_count(rank));
    entries_per_rank.push_back(count);
    std::printf("%5d %12.0f %9.2f%%\n", rank, count,
                100.0 * count /
                    static_cast<double>(plan.plan->num_variants()));
  }
  const auto stats = perf::load_stats(entries_per_rank);
  std::printf("\nentry-count load imbalance (Eq. 1): %.2f%% "
              "(avg %.0f, max %.0f)\n",
              100.0 * stats.imbalance, stats.t_avg, stats.t_max);
  std::printf("mapping table: %llu bytes\n",
              static_cast<unsigned long long>(mapping.memory_bytes()));

  // Policy comparison over the same clustered database: reuse the grouping,
  // re-partition per policy, and weigh each base by its variant count.
  const auto& grouping = plan.plan->grouping();
  std::vector<std::uint64_t> variant_counts;
  variant_counts.reserve(grouping.sequences.size());
  for (const auto& sequence : grouping.sequences) {
    variant_counts.push_back(
        digest::count_variants(sequence, db.mods, db.variants));
  }
  std::printf("\n%10s %28s\n", "policy", "entry LI at these ranks");
  for (const core::Policy policy :
       {core::Policy::kChunk, core::Policy::kCyclic, core::Policy::kRandom}) {
    core::PartitionParams params = opts.lbe.partition;
    params.policy = policy;
    params.weights.clear();
    const auto partition = core::partition(grouping.group_sizes, params);
    std::vector<double> load(partition.per_rank.size(), 0.0);
    for (std::size_t rank = 0; rank < partition.per_rank.size(); ++rank) {
      for (const auto base : partition.per_rank[rank]) {
        load[rank] += static_cast<double>(variant_counts[base]);
      }
    }
    std::printf("%10s %27.2f%%\n", core::policy_name(policy),
                100.0 * perf::load_imbalance(load));
  }
  return 0;
}

int dispatch(const CliInvocation& cli) {
  if (cli.subcommand == "help") {
    std::printf("%s", usage());
    return 0;
  }
  const AppOptions opts = options_from_config(cli.config);
  if (cli.subcommand == "prepare") return run_prepare(opts);
  if (cli.subcommand == "search") return run_search(opts);
  if (cli.subcommand == "stats") return run_stats(opts);
  throw ConfigError("unknown subcommand: " + cli.subcommand +
                    " (expected prepare|search|stats)");
}

}  // namespace lbe::app
