#include "app/commands.hpp"

#include <csignal>
#include <cstdio>
#include <filesystem>

#include <algorithm>
#include <chrono>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "app/pipeline.hpp"
#include "common/error.hpp"
#include "common/logging.hpp"
#include "core/partition.hpp"
#include "digest/variants.hpp"
#include "index/posting_codec.hpp"
#include "index/serialize.hpp"
#include "perf/metrics.hpp"
#include "search/report.hpp"
#include "serve/client.hpp"
#include "serve/server.hpp"
#include "serve/service.hpp"

namespace lbe::app {

namespace {

// Signal flags for the serve loop; sigaction handlers may only touch
// lock-free atomics of this kind.
volatile std::sig_atomic_t g_serve_stop = 0;
volatile std::sig_atomic_t g_serve_reload = 0;

void on_serve_stop(int) { g_serve_stop = 1; }
void on_serve_reload(int) { g_serve_reload = 1; }

void print_database_summary(const DatabaseBundle& db) {
  std::size_t decoys = 0;
  for (const bool flag : db.is_decoy) decoys += flag ? 1 : 0;
  std::printf("database: %zu peptides (%zu targets, %zu decoys), "
              "%zu duplicates dropped, %zu decoy collisions dropped\n",
              db.peptides.size(), db.peptides.size() - decoys, decoys,
              db.duplicates_dropped, db.decoy_collisions_dropped);
}

void print_plan_summary(const PlanBundle& plan) {
  const auto& p = *plan.plan;
  std::printf("plan: %zu bases in %zu groups -> %llu index entries over %d "
              "ranks (%s), prep %.1f ms\n",
              p.num_bases(), p.grouping().num_groups(),
              static_cast<unsigned long long>(p.num_variants()), p.ranks(),
              core::policy_name(p.params().partition.policy),
              plan.prep_seconds * 1e3);
}

}  // namespace

int run_prepare(const AppOptions& opts) {
  const DatabaseBundle db = build_database(opts);
  print_database_summary(db);

  const PlanBundle plan = build_plan(db, opts);
  print_plan_summary(plan);

  std::filesystem::create_directories(opts.out_dir);
  const std::string plan_path = opts.out_dir + "/plan.lbe";
  save_plan_file(plan_path, db, plan.plan->params());
  std::printf("wrote %s (%ju bytes)\n", plan_path.c_str(),
              static_cast<std::uintmax_t>(
                  std::filesystem::file_size(plan_path)));

  // The warm-start bundle: the paper's disk-resident per-rank chunk
  // artifacts plus the manifest `search --index` validates against. Ranks
  // stream one at a time (build, save, drop) so prepare's peak memory
  // stays one partial index, not the whole fleet.
  const std::string index_dir =
      opts.index_out_dir.empty() ? opts.out_dir : opts.index_out_dir;
  const int ranks = plan.plan->ranks();
  {
    index::IndexBundle manifest;
    manifest.lbe = plan.plan->params();
    manifest.index_params = opts.search.index;
    manifest.chunking = opts.search.chunking;
    manifest.mapping = plan.plan->mapping();
    manifest.database_crc = database_fingerprint(db);
    index::save_index_manifest(index_dir, manifest);
  }
  std::uint64_t total_bytes = 0;
  for (int rank = 0; rank < ranks; ++rank) {
    const index::ChunkedIndex partial(plan.plan->build_rank_store(rank),
                                      plan.plan->mods(), opts.search.index,
                                      opts.search.chunking);
    partial.save_file(index::bundle_rank_path(index_dir, rank));
    total_bytes += partial.memory_bytes();
    std::printf("wrote %s: %zu entries, %llu postings\n",
                index::bundle_rank_path(index_dir, rank).c_str(),
                partial.num_peptides(),
                static_cast<unsigned long long>(partial.num_postings()));
  }

  // Round-trip the whole bundle as a self-check: an index set that cannot
  // be read back — or that fails its own manifest validation — is worse
  // than none. Force the eager path so every chunk payload is actually
  // re-read and CRC-verified (a lazy mapped check would stop at metadata).
  AppOptions self_check = opts;
  self_check.index_mmap = false;
  const auto reloaded = try_load_warm_indexes(index_dir, plan, db,
                                              self_check);
  LBE_CHECK(reloaded != nullptr, "index bundle failed its reload self-check");
  std::printf("prepared %d rank indexes + %s (%.1f MiB in-memory total)\n",
              ranks, index::bundle_manifest_path(index_dir).c_str(),
              static_cast<double>(total_bytes) / (1024.0 * 1024.0));
  return 0;
}

int run_search(const AppOptions& opts) {
  const PipelineInputs inputs = prepare_inputs(opts);
  print_database_summary(inputs.database);
  std::printf("queries: %zu spectra from %s\n", inputs.queries.spectra.size(),
              inputs.queries.origin.c_str());

  const PlanBundle plan = build_plan(inputs.database, opts);
  print_plan_summary(plan);

  // Warm start: adopt prepared per-rank indexes when they still match the
  // plan; try_load_warm_indexes warns and returns null on any mismatch.
  std::unique_ptr<index::IndexBundle> warm;
  if (!opts.index_dir.empty()) {
    warm = try_load_warm_indexes(opts.index_dir, plan, inputs.database, opts);
    if (warm != nullptr) {
      std::printf("warm start: loaded %d rank indexes from %s%s\n",
                  warm->ranks(), opts.index_dir.c_str(),
                  opts.index_mmap ? " (mmap, lazy chunks)" : "");
    }
  }

  const SearchOutcome outcome =
      run_search_pipeline(plan, inputs.queries, opts, warm.get());

  std::printf("search: %zu/%zu queries matched, %zu target PSMs at q <= %g\n",
              outcome.queries_with_results,
              outcome.report.results.size(), outcome.accepted,
              opts.fdr_threshold);
  std::printf("query-phase load imbalance (Eq. 1): %.1f%% by time, "
              "%.1f%% by work units\n",
              100.0 * outcome.time_stats.imbalance,
              100.0 * outcome.work_stats.imbalance);
  std::printf("makespan %.1f ms (threads/rank=%u, batch=%u)\n",
              outcome.report.makespan * 1e3, opts.threads, opts.batch);
  if (opts.search.schedule.schedule != core::Schedule::kLbeStatic) {
    std::uint64_t stolen = 0;
    for (const auto count : outcome.report.batches_stolen) stolen += count;
    std::printf("schedule %s: %llu batches stolen",
                core::schedule_name(opts.search.schedule.schedule),
                static_cast<unsigned long long>(stolen));
    if (!outcome.calibration_weights.empty()) {
      std::printf(", re-planned from a %.0f ms probe",
                  outcome.calibration_seconds * 1e3);
    }
    std::printf("\n");
  }

  if (opts.write_report) {
    write_reports(opts.out_dir, plan, outcome);
    std::printf("reports: %s/psms.tsv, %s/fdr.csv, %s/metrics.csv\n",
                opts.out_dir.c_str(), opts.out_dir.c_str(),
                opts.out_dir.c_str());
  }

  if (opts.verify_baseline) {
    const std::size_t mismatches =
        compare_with_baseline(plan, inputs.queries, opts, outcome);
    if (mismatches != 0) {
      std::printf("VERIFY FAILED: %zu queries differ from the shared-memory "
                  "baseline\n",
                  mismatches);
      return 1;
    }
    std::printf("verify: distributed results identical to the shared-memory "
                "baseline\n");
  }
  return 0;
}

int run_stats(const AppOptions& opts) {
  const DatabaseBundle db = build_database(opts);
  print_database_summary(db);

  const PlanBundle plan = build_plan(db, opts);
  print_plan_summary(plan);
  const auto& mapping = plan.plan->mapping();

  std::printf("\n%5s %12s %10s\n", "rank", "entries", "share");
  std::vector<double> entries_per_rank;
  for (int rank = 0; rank < plan.plan->ranks(); ++rank) {
    const auto count = static_cast<double>(mapping.rank_count(rank));
    entries_per_rank.push_back(count);
    std::printf("%5d %12.0f %9.2f%%\n", rank, count,
                100.0 * count /
                    static_cast<double>(plan.plan->num_variants()));
  }
  const auto stats = perf::load_stats(entries_per_rank);
  std::printf("\nentry-count load imbalance (Eq. 1): %.2f%% "
              "(avg %.0f, max %.0f)\n",
              100.0 * stats.imbalance, stats.t_avg, stats.t_max);
  std::printf("mapping table: %llu bytes\n",
              static_cast<unsigned long long>(mapping.memory_bytes()));

  // Policy comparison over the same clustered database: reuse the grouping,
  // re-partition per policy, and weigh each base by its variant count.
  const auto& grouping = plan.plan->grouping();
  std::vector<std::uint64_t> variant_counts;
  variant_counts.reserve(grouping.sequences.size());
  for (const auto& sequence : grouping.sequences) {
    variant_counts.push_back(
        digest::count_variants(sequence, db.mods, db.variants));
  }
  std::printf("\n%10s %28s\n", "policy", "entry LI at these ranks");
  for (const core::Policy policy :
       {core::Policy::kChunk, core::Policy::kCyclic, core::Policy::kRandom}) {
    core::PartitionParams params = opts.lbe.partition;
    params.policy = policy;
    params.weights.clear();
    const auto partition = core::partition(grouping.group_sizes, params);
    std::vector<double> load(partition.per_rank.size(), 0.0);
    for (std::size_t rank = 0; rank < partition.per_rank.size(); ++rank) {
      for (const auto base : partition.per_rank[rank]) {
        load[rank] += static_cast<double>(variant_counts[base]);
      }
    }
    std::printf("%10s %27.2f%%\n", core::policy_name(policy),
                100.0 * perf::load_imbalance(load));
  }
  return 0;
}

int run_serve(const AppOptions& opts) {
  if (opts.socket_path.empty()) {
    throw ConfigError("serve requires --socket PATH");
  }
  auto context = serve::load_serving_context(opts);
  print_database_summary(context->db);
  print_plan_summary(context->plan);
  std::printf("serve: %d rank indexes resident%s\n", context->warm->ranks(),
              opts.index_dir.empty()
                  ? " (built in memory; use --index for a prepared bundle)"
                  : (opts.index_mmap ? " (mmap, lazy chunks)" : " (eager)"));

  serve::ServerConfig config;
  config.socket_path = opts.socket_path;
  config.queue_depth = opts.queue_depth;
  config.workers = opts.serve_workers;
  config.threads_per_batch = opts.threads;
  serve::Server server(config, context);
  context.reset();  // the server's snapshot is now the only generation owner

  struct sigaction stop_action {};
  stop_action.sa_handler = on_serve_stop;
  sigemptyset(&stop_action.sa_mask);
  struct sigaction reload_action {};
  reload_action.sa_handler = on_serve_reload;
  sigemptyset(&reload_action.sa_mask);
  g_serve_stop = 0;
  g_serve_reload = 0;
  sigaction(SIGINT, &stop_action, nullptr);
  sigaction(SIGTERM, &stop_action, nullptr);
  sigaction(SIGHUP, &reload_action, nullptr);

  server.start();
  std::printf("serve: listening on %s (queue %u, workers %u, threads %u)\n",
              opts.socket_path.c_str(), config.queue_depth, config.workers,
              config.threads_per_batch);
  std::fflush(stdout);

  while (g_serve_stop == 0 && !server.shutdown_requested()) {
    if (g_serve_reload != 0) {
      g_serve_reload = 0;
      // Re-prepare off to the side, validate, then swap atomically;
      // in-flight batches drain on the generation they snapshotted. A
      // failed reload keeps the current index serving.
      try {
        server.hot_swap(serve::load_serving_context(opts));
        std::printf("serve: hot swap complete (%llu reloads)\n",
                    static_cast<unsigned long long>(server.stats().reloads));
      } catch (const Error& error) {
        std::fprintf(stderr,
                     "serve: reload failed, keeping current index: %s\n",
                     error.what());
      }
      std::fflush(stdout);
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }

  server.stop();
  std::printf("serve: shutdown complete\n");
  std::fflush(stdout);
  return 0;
}

int run_query(const AppOptions& opts) {
  if (opts.socket_path.empty()) {
    throw ConfigError("query requires --socket PATH");
  }
  // Build the query set exactly as one-shot `search` would (same plan/
  // synthetic-generation path), so daemon psms.tsv is comparable.
  const PipelineInputs inputs = prepare_inputs(opts);
  const std::vector<chem::Spectrum>& spectra = inputs.queries.spectra;
  std::printf("queries: %zu spectra from %s\n", spectra.size(),
              inputs.queries.origin.c_str());

  serve::ServeClient client(opts.socket_path);
  if (!client.connect_wait(/*timeout_seconds=*/30.0)) {
    throw IoError("no daemon answered on " + opts.socket_path +
                  " within 30 s");
  }
  const serve::PongInfo info = client.ping();
  std::printf("query: connected to daemon on %s (%u ranks, top_k %u)\n",
              opts.socket_path.c_str(), info.ranks, info.top_k);

  // The PR 6 footgun, made loud: `query` builds its query set from *this*
  // invocation's plan/config, but the PSMs come from whatever database the
  // daemon has resident. If the fingerprints disagree, the psms.tsv below
  // will NOT match a one-shot `search --plan` of the client's plan — warn
  // on every such run instead of letting the mismatch pass silently.
  const std::uint32_t local_crc = database_fingerprint(inputs.database);
  if (info.database_crc != local_crc) {
    log::warn("database mismatch: the daemon on ", opts.socket_path,
              " serves database crc32 ", info.database_crc,
              " but this invocation's plan/config has crc32 ", local_crc,
              " — its psms.tsv will not match a one-shot `lbectl search` of "
              "this plan. Point --plan/--config at the files the daemon was "
              "started with (or restart the daemon).");
  }

  std::vector<search::ResolvedPsm> rows;
  std::vector<double> batch_ms;
  std::uint64_t candidates = 0;
  const std::size_t batch = opts.batch;
  for (std::size_t lo = 0; lo < spectra.size(); lo += batch) {
    const std::size_t hi = std::min(spectra.size(), lo + batch);
    serve::SearchRequest request;
    request.start_id = static_cast<std::uint32_t>(lo);
    request.spectra.assign(spectra.begin() + lo, spectra.begin() + hi);
    for (;;) {
      const auto sent = std::chrono::steady_clock::now();
      serve::ServeClient::Outcome outcome = client.search(request);
      if (outcome.status == serve::Status::kQueueFull) {
        // Admission control pushed back; yield briefly and retry.
        std::this_thread::sleep_for(std::chrono::milliseconds(10));
        continue;
      }
      if (outcome.status != serve::Status::kOk) {
        throw IoError(std::string("daemon rejected batch: ") +
                      serve::status_name(outcome.status) + ": " +
                      outcome.error);
      }
      batch_ms.push_back(
          std::chrono::duration<double, std::milli>(
              std::chrono::steady_clock::now() - sent)
              .count());
      candidates += outcome.response.candidates;
      rows.insert(rows.end(), outcome.response.rows.begin(),
                  outcome.response.rows.end());
      break;
    }
  }

  std::filesystem::create_directories(opts.out_dir);
  const std::string report_path = opts.out_dir + "/psms.tsv";
  search::write_psm_rows_file(report_path, rows);

  std::sort(batch_ms.begin(), batch_ms.end());
  const auto percentile = [&](double p) {
    if (batch_ms.empty()) return 0.0;
    const auto i = static_cast<std::size_t>(
        p * static_cast<double>(batch_ms.size() - 1) + 0.5);
    return batch_ms[i];
  };
  std::printf("query: %zu queries in %zu batches, %llu candidates; "
              "batch latency p50 %.2f ms, p99 %.2f ms\n",
              spectra.size(), batch_ms.size(),
              static_cast<unsigned long long>(candidates), percentile(0.5),
              percentile(0.99));
  std::printf("report: %s (%zu rows)\n", report_path.c_str(), rows.size());

  if (opts.send_shutdown) {
    client.shutdown_server();
    std::printf("query: daemon shutdown requested\n");
  }
  return 0;
}

int dispatch(const CliInvocation& cli) {
  if (cli.subcommand == "help") {
    std::printf("%s", usage());
    return 0;
  }
  const AppOptions opts = options_from_config(cli.config);
  {
    namespace codec = index::codec;
    codec::SimdLevel level = codec::SimdLevel::kAuto;
    codec::parse_simd_level(opts.simd, level);  // validated at parse
    codec::set_simd_level(level);
    if (level != codec::SimdLevel::kAuto &&
        codec::resolved_simd_level() != level) {
      log::warn("simd level '", opts.simd,
                "' is not supported by this CPU; using '",
                codec::simd_level_name(codec::resolved_simd_level()), "'");
    }
  }
  if (cli.subcommand == "prepare") return run_prepare(opts);
  if (cli.subcommand == "search") return run_search(opts);
  if (cli.subcommand == "stats") return run_stats(opts);
  if (cli.subcommand == "serve") return run_serve(opts);
  if (cli.subcommand == "query") return run_query(opts);
  throw ConfigError("unknown subcommand: " + cli.subcommand +
                    " (expected prepare|search|stats|serve|query)");
}

}  // namespace lbe::app
