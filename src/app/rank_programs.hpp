// Rank programs the app's binaries can run as forked worker processes.
//
// The multi-process transport (simmpi/process.hpp) cannot ship a C++
// closure across an exec boundary, so the worker side of a distributed
// search is a *named* program registered in the binary: the master ships
// `kSearchRankProgram` plus a serialized search::wire::SearchSetup, and the
// worker decodes it, pins the requested SIMD level, mmaps its rank's file
// from the shared bundle (one page-cache copy across all co-located
// ranks), and runs search::run_search_worker_rank — the exact SPMD body
// the in-process engines execute, so results are byte-identical.
//
// Any binary that may act as a process-transport host calls
// register_rank_programs() before mpi::rank_worker_main at the top of
// main().
#pragma once

namespace lbe::app {

/// Name the search pipeline's worker program is registered under.
inline constexpr const char* kSearchRankProgram = "lbe.search";

/// Registers every app rank program (currently just kSearchRankProgram).
void register_rank_programs();

}  // namespace lbe::app
