#include "app/pipeline.hpp"

#include <filesystem>
#include <fstream>
#include <unordered_set>
#include <utility>

#include "common/binary_io.hpp"
#include "common/csv.hpp"
#include "common/error.hpp"
#include "common/logging.hpp"
#include "common/timer.hpp"
#include "digest/decoy.hpp"
#include "digest/dedup.hpp"
#include "digest/digestor.hpp"
#include "digest/enzyme.hpp"
#include "app/rank_programs.hpp"
#include "core/scheduling.hpp"
#include "index/posting_codec.hpp"
#include "io/fasta.hpp"
#include "io/ms2.hpp"
#include "search/load_model.hpp"
#include "search/report.hpp"
#include "search/wire.hpp"
#include "simmpi/process.hpp"
#include "synth/spectra.hpp"
#include "synth/workload.hpp"

namespace lbe::app {

namespace {

constexpr std::uint64_t kPlanMagic = 0x4C4245504C414E31ull;  // "LBEPLAN1"
constexpr std::uint32_t kPlanVersion = 1;

chem::ModificationSet mods_from_spec(const std::string& spec) {
  if (spec == "paper") return chem::ModificationSet::paper_default();
  return chem::ModificationSet::parse(spec);
}

/// Appends decoy peptides derived per target peptide (pseudo-reverse keeps
/// tryptic mass/length statistics). Decoys colliding with a target sequence
/// or another decoy are dropped — a collision would make the entry ambiguous
/// for FDR.
void append_peptide_decoys(DatabaseBundle& db, const AppOptions& opts) {
  const digest::Enzyme& enzyme = digest::enzyme_by_name(opts.enzyme_name);
  std::unordered_set<std::string> seen(db.peptides.begin(), db.peptides.end());
  const std::size_t num_targets = db.peptides.size();
  for (std::size_t i = 0; i < num_targets; ++i) {
    std::string decoy = digest::decoy_sequence(
        db.peptides[i], opts.decoy_method, enzyme, opts.seed + i);
    if (!seen.insert(decoy).second) {
      ++db.decoy_collisions_dropped;
      continue;
    }
    db.peptides.push_back(std::move(decoy));
    db.is_decoy.push_back(true);
  }
}

DatabaseBundle database_from_workload(const synth::Workload& workload,
                                      const AppOptions& opts) {
  DatabaseBundle db;
  db.peptides = workload.base_peptides;
  db.is_decoy.assign(db.peptides.size(), false);
  db.mods = workload.mods;
  db.mods_spec = "paper";
  db.variants = workload.variant_params;
  if (opts.add_decoys) append_peptide_decoys(db, opts);
  return db;
}

DatabaseBundle database_from_fasta(const AppOptions& opts) {
  DatabaseBundle db;
  db.mods = mods_from_spec(opts.mods_spec);
  db.mods_spec = opts.mods_spec;
  db.variants = opts.variants;

  const auto targets = io::read_fasta_file(opts.fasta_path);
  const digest::Enzyme& enzyme = digest::enzyme_by_name(opts.enzyme_name);
  db.num_target_proteins = targets.size();

  std::vector<std::string> target_seqs;
  for (const auto& peptide :
       digest::digest_database(targets, enzyme, opts.digestion)) {
    target_seqs.push_back(peptide.sequence);
  }
  db.duplicates_dropped = digest::deduplicate(target_seqs);

  db.peptides = std::move(target_seqs);
  db.is_decoy.assign(db.peptides.size(), false);

  if (opts.add_decoys) {
    const auto decoys =
        digest::make_decoys(targets, opts.decoy_method, enzyme, opts.seed);
    db.num_decoy_proteins = decoys.size();
    std::vector<std::string> decoy_seqs;
    for (const auto& peptide :
         digest::digest_database(decoys, enzyme, opts.digestion)) {
      decoy_seqs.push_back(peptide.sequence);
    }
    db.duplicates_dropped += digest::deduplicate(decoy_seqs);
    std::unordered_set<std::string> seen(db.peptides.begin(),
                                         db.peptides.end());
    for (auto& decoy : decoy_seqs) {
      if (!seen.insert(decoy).second) {
        ++db.decoy_collisions_dropped;
        continue;
      }
      db.peptides.push_back(std::move(decoy));
      db.is_decoy.push_back(true);
    }
  }
  return db;
}

synth::Workload synthetic_workload(const AppOptions& opts) {
  return synth::make_paper_workload(opts.target_entries, opts.num_queries,
                                    opts.seed, opts.ptm_fraction);
}

QueryBundle queries_from_database(const DatabaseBundle& db,
                                  const AppOptions& opts) {
  std::vector<std::string> targets;
  for (std::size_t i = 0; i < db.peptides.size(); ++i) {
    if (!db.is_decoy[i]) targets.push_back(db.peptides[i]);
  }
  LBE_CHECK(!targets.empty(), "no target peptides to draw queries from");
  synth::SpectraParams params;
  params.num_spectra = opts.num_queries;
  params.seed = opts.seed;
  params.fragments = opts.search.index.fragments;
  params.ptm_shift_fraction = opts.ptm_fraction;
  QueryBundle queries;
  queries.spectra = synth::generate_spectra(targets, db.mods, params).spectra;
  queries.origin = "<synthetic>";
  return queries;
}

}  // namespace

DatabaseBundle build_database(const AppOptions& opts) {
  if (!opts.plan_path.empty()) return load_plan_file(opts.plan_path);
  if (!opts.fasta_path.empty()) return database_from_fasta(opts);
  return database_from_workload(synthetic_workload(opts), opts);
}

PipelineInputs prepare_inputs(const AppOptions& opts) {
  PipelineInputs inputs;
  const bool synthetic_db = opts.plan_path.empty() && opts.fasta_path.empty();
  if (synthetic_db) {
    // One workload generation feeds both the database and (absent an MS2
    // file) the query set, so truth-linked spectra stay aligned.
    const synth::Workload workload = synthetic_workload(opts);
    inputs.database = database_from_workload(workload, opts);
    if (opts.ms2_path.empty()) {
      inputs.queries.spectra = workload.queries;
      inputs.queries.origin = "<synthetic>";
    }
  } else {
    inputs.database = build_database(opts);
  }
  if (!opts.ms2_path.empty()) {
    inputs.queries.spectra = io::read_ms2_file(opts.ms2_path).spectra;
    inputs.queries.origin = opts.ms2_path;
  } else if (!synthetic_db) {
    inputs.queries = queries_from_database(inputs.database, opts);
  }
  LBE_CHECK(!inputs.queries.spectra.empty(), "query set is empty");
  return inputs;
}

core::LbeParams effective_lbe_params(const DatabaseBundle& db,
                                     const AppOptions& opts) {
  if (!db.stored_lbe) return opts.lbe;
  core::LbeParams merged = *db.stored_lbe;
  const Config& source = opts.source;
  if (source.contains("policy")) {
    merged.partition.policy = opts.lbe.partition.policy;
  }
  if (source.contains("ranks")) {
    merged.partition.ranks = opts.lbe.partition.ranks;
  }
  if (source.contains("partition_seed")) {
    merged.partition.seed = opts.lbe.partition.seed;
  }
  if (source.contains("criterion")) {
    merged.grouping.criterion = opts.lbe.grouping.criterion;
  }
  if (source.contains("d")) merged.grouping.d = opts.lbe.grouping.d;
  if (source.contains("d_prime")) {
    merged.grouping.d_prime = opts.lbe.grouping.d_prime;
  }
  if (source.contains("gsize")) merged.grouping.gsize = opts.lbe.grouping.gsize;
  merged.grouping.validate();
  merged.partition.validate();
  return merged;
}

PlanBundle build_plan(const DatabaseBundle& db, const AppOptions& opts) {
  PlanBundle bundle;
  Stopwatch prep;
  bundle.plan = std::make_unique<core::LbePlan>(
      db.peptides, db.mods, db.variants, effective_lbe_params(db, opts));
  bundle.prep_seconds = prep.seconds();

  // The plan's clustered order permutes the input; carry the decoy flags
  // along so FDR can label clustered base ids directly.
  const auto& permutation = bundle.plan->grouping().permutation;
  bundle.decoy_bases.resize(permutation.size());
  for (std::size_t i = 0; i < permutation.size(); ++i) {
    bundle.decoy_bases[i] = db.is_decoy[permutation[i]];
  }
  return bundle;
}

void save_plan(std::ostream& out, const DatabaseBundle& db,
               const core::LbeParams& lbe) {
  bin::write_pod(out, kPlanMagic);
  bin::write_pod(out, kPlanVersion);
  bin::write_pod(out, static_cast<std::uint8_t>(lbe.grouping.criterion));
  bin::write_pod(out, lbe.grouping.d);
  bin::write_pod(out, lbe.grouping.d_prime);
  bin::write_pod(out, lbe.grouping.gsize);
  bin::write_pod(out, static_cast<std::uint8_t>(lbe.partition.policy));
  bin::write_pod(out, static_cast<std::int32_t>(lbe.partition.ranks));
  bin::write_pod(out, lbe.partition.seed);
  bin::write_pod(out,
                 static_cast<std::uint8_t>(lbe.partition.rotate_groups));
  bin::write_string(out, db.mods_spec);
  bin::write_pod(out, db.variants.max_mod_residues);
  bin::write_pod(out, db.variants.max_variants_per_peptide);
  bin::write_pod(out,
                 static_cast<std::uint8_t>(db.variants.include_unmodified));
  bin::write_pod(out, static_cast<std::uint64_t>(db.num_target_proteins));
  bin::write_pod(out, static_cast<std::uint64_t>(db.num_decoy_proteins));
  bin::write_pod(out, static_cast<std::uint64_t>(db.peptides.size()));
  for (const auto& peptide : db.peptides) bin::write_string(out, peptide);
  std::vector<std::uint8_t> decoy_bytes(db.is_decoy.begin(),
                                        db.is_decoy.end());
  bin::write_vector(out, decoy_bytes);
}

void save_plan_file(const std::string& path, const DatabaseBundle& db,
                    const core::LbeParams& lbe) {
  std::ofstream out(path, std::ios::binary);
  if (!out) throw IoError("cannot write plan file: " + path);
  save_plan(out, db, lbe);
}

DatabaseBundle load_plan(std::istream& in) {
  if (bin::read_pod<std::uint64_t>(in) != kPlanMagic) {
    throw IoError("not an lbectl plan file (bad magic)");
  }
  const auto version = bin::read_pod<std::uint32_t>(in);
  if (version != kPlanVersion) {
    throw IoError("unsupported plan file version");
  }
  DatabaseBundle db;
  core::LbeParams lbe;
  const auto criterion = bin::read_pod<std::uint8_t>(in);
  if (criterion != 1 && criterion != 2) {
    throw IoError("plan file corrupt: bad grouping criterion");
  }
  lbe.grouping.criterion = static_cast<core::GroupingCriterion>(criterion);
  lbe.grouping.d = bin::read_pod<std::uint32_t>(in);
  lbe.grouping.d_prime = bin::read_pod<double>(in);
  lbe.grouping.gsize = bin::read_pod<std::uint32_t>(in);
  const auto policy = bin::read_pod<std::uint8_t>(in);
  if (policy > static_cast<std::uint8_t>(core::Policy::kWeighted)) {
    throw IoError("plan file corrupt: bad partition policy");
  }
  lbe.partition.policy = static_cast<core::Policy>(policy);
  lbe.partition.ranks = bin::read_pod<std::int32_t>(in);
  lbe.partition.seed = bin::read_pod<std::uint64_t>(in);
  lbe.partition.rotate_groups = bin::read_pod<std::uint8_t>(in) != 0;
  db.stored_lbe = lbe;
  db.mods_spec = bin::read_string(in);
  db.mods = mods_from_spec(db.mods_spec);
  db.variants.max_mod_residues = bin::read_pod<std::uint32_t>(in);
  db.variants.max_variants_per_peptide = bin::read_pod<std::uint64_t>(in);
  db.variants.include_unmodified = bin::read_pod<std::uint8_t>(in) != 0;
  db.num_target_proteins =
      static_cast<std::size_t>(bin::read_pod<std::uint64_t>(in));
  db.num_decoy_proteins =
      static_cast<std::size_t>(bin::read_pod<std::uint64_t>(in));
  const auto count = bin::read_pod<std::uint64_t>(in);
  if (count > bin::kMaxElements) {
    throw IoError("plan file corrupt: implausible peptide count");
  }
  db.peptides.reserve(static_cast<std::size_t>(count));
  for (std::uint64_t i = 0; i < count; ++i) {
    db.peptides.push_back(bin::read_string(in));
  }
  const auto decoy_bytes = bin::read_vector<std::uint8_t>(in);
  if (decoy_bytes.size() != db.peptides.size()) {
    throw IoError("plan file corrupt: decoy flags do not match peptides");
  }
  db.is_decoy.assign(decoy_bytes.begin(), decoy_bytes.end());
  return db;
}

DatabaseBundle load_plan_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw IoError("cannot open plan file: " + path);
  return load_plan(in);
}

std::uint32_t database_fingerprint(const DatabaseBundle& db) {
  std::uint32_t crc = 0;
  const auto mix = [&crc](const void* data, std::size_t size) {
    crc = bin::crc32(data, size, crc);
  };
  for (const auto& peptide : db.peptides) {
    mix(peptide.data(), peptide.size());
    const char separator = '\n';
    mix(&separator, 1);
  }
  for (const bool flag : db.is_decoy) {
    const char byte = flag ? 1 : 0;
    mix(&byte, 1);
  }
  mix(db.mods_spec.data(), db.mods_spec.size());
  mix(&db.variants.max_mod_residues, sizeof(db.variants.max_mod_residues));
  mix(&db.variants.max_variants_per_peptide,
      sizeof(db.variants.max_variants_per_peptide));
  const char unmodified = db.variants.include_unmodified ? 1 : 0;
  mix(&unmodified, 1);
  return crc;
}

index::IndexBundle build_index_bundle(const PlanBundle& plan,
                                      const DatabaseBundle& db,
                                      const AppOptions& opts) {
  index::IndexBundle bundle;
  bundle.lbe = plan.plan->params();
  bundle.index_params = opts.search.index;
  bundle.chunking = opts.search.chunking;
  bundle.mapping = plan.plan->mapping();
  bundle.database_crc = database_fingerprint(db);
  const int ranks = plan.plan->ranks();
  bundle.per_rank.reserve(static_cast<std::size_t>(ranks));
  for (int rank = 0; rank < ranks; ++rank) {
    bundle.per_rank.push_back(std::make_unique<index::ChunkedIndex>(
        plan.plan->build_rank_store(rank), plan.plan->mods(),
        bundle.index_params, bundle.chunking));
  }
  return bundle;
}

std::unique_ptr<index::IndexBundle> try_load_warm_indexes(
    const std::string& dir, const PlanBundle& plan, const DatabaseBundle& db,
    const AppOptions& opts) {
  std::unique_ptr<index::IndexBundle> bundle;
  try {
    bundle = std::make_unique<index::IndexBundle>(index::load_index_bundle(
        dir, db.mods,
        opts.index_mmap ? index::BundleLoadMode::kMapped
                        : index::BundleLoadMode::kEager));
  } catch (const index::serialize::FormatVersionError& e) {
    // A bundle from an older (or newer) format is stale, not corrupt:
    // warn and rebuild, exactly like a plan-parameter mismatch below.
    // Every other IoError still propagates — a bundle the user explicitly
    // pointed at must not be silently ignored when its bytes are bad.
    log::warn(e.what());
    log::warn("index bundle in ", dir,
              " uses an unsupported on-disk format version; rebuilding "
              "per-rank indexes from the plan (re-run `lbectl prepare` to "
              "refresh it)");
    return nullptr;
  }

  const auto reject = [&](const char* what) {
    log::warn("index bundle in ", dir, " was built under a different ", what,
              "; rebuilding per-rank indexes from the plan");
    return std::unique_ptr<index::IndexBundle>();
  };
  if (!index::serialize::same_lbe_params(bundle->lbe, plan.plan->params())) {
    return reject("LBE plan (grouping/partitioning parameters)");
  }
  if (!index::serialize::same_index_params(bundle->index_params,
                                           opts.search.index)) {
    return reject("IndexParams (resolution/fragment settings)");
  }
  if (bundle->chunking.max_chunk_entries !=
      opts.search.chunking.max_chunk_entries) {
    return reject("chunking configuration");
  }
  if (bundle->ranks() != plan.plan->ranks() ||
      !(bundle->mapping == plan.plan->mapping())) {
    return reject("rank assignment (mapping table)");
  }
  if (bundle->database_crc != database_fingerprint(db)) {
    return reject("database (peptides/decoys/mods changed since prepare)");
  }
  return bundle;
}

namespace {

/// Stages a cold-start bundle for the process backend: worker processes
/// need on-disk rank files to mmap, so when no warm bundle was given the
/// search writes one under out_dir first. Rank files are built and saved
/// one at a time (prepare's streaming idiom), so staging's peak memory is
/// one partial index; the saved arrays are the built ones, so results are
/// identical to an in-memory cold build.
std::string stage_process_bundle(const core::LbePlan& plan,
                                 const AppOptions& opts) {
  const std::string dir = opts.out_dir + "/rank-bundle";
  std::filesystem::create_directories(dir);
  for (int rank = 0; rank < plan.ranks(); ++rank) {
    const index::ChunkedIndex partial(plan.build_rank_store(rank),
                                      plan.mods(), opts.search.index,
                                      opts.search.chunking);
    partial.save_file(index::bundle_rank_path(dir, rank));
  }
  return dir;
}

/// `--schedule calibrated`: run a short *static* probe over the first few
/// queries on an in-process backend, refit the Eq. 1 cost model to the
/// observed per-rank speeds (core::calibration_weights), and re-partition
/// the plan with matching weights. Returns a null plan — keeping the static
/// placement — when the probe is degenerate (a rank with no time or no
/// work, e.g. on an unmetered clock) or the fleet is trivial.
struct CalibrationOutcome {
  std::unique_ptr<core::LbePlan> plan;
  std::vector<double> weights;
  double probe_seconds = 0.0;
};

CalibrationOutcome calibrate_plan(const core::LbePlan& plan,
                                  const QueryBundle& queries,
                                  const AppOptions& opts,
                                  const index::IndexBundle* warm) {
  CalibrationOutcome out;
  const auto probe_n = std::min<std::size_t>(
      opts.search.schedule.calibration_queries, queries.spectra.size());
  if (probe_n == 0 || plan.ranks() < 2) return out;

  Stopwatch timer;
  const std::vector<chem::Spectrum> probe_queries(
      queries.spectra.begin(),
      queries.spectra.begin() + static_cast<std::ptrdiff_t>(probe_n));
  search::DistributedParams params = opts.search;
  params.schedule = core::ScheduleParams{};  // the probe itself runs static
  params.prep_seconds = 0.0;
  if (warm != nullptr) params.preloaded = &warm->per_rank;

  mpi::ClusterOptions cluster_options;
  cluster_options.ranks = plan.ranks();
  // Probe on the matching in-process engine. The process backend probes via
  // kThreads: forking a fleet to time a handful of queries would cost more
  // than it measures, and real thread timing is what its workers see too.
  cluster_options.engine = opts.backend == "virtual" ? mpi::Engine::kVirtual
                                                     : mpi::Engine::kThreads;
  mpi::Cluster cluster(cluster_options);
  const search::DistributedReport probe =
      search::run_distributed_search(cluster, plan, probe_queries, params);

  core::CostFeedback feedback;
  feedback.rank_seconds = probe.query_phase_seconds();
  feedback.rank_cost_units.reserve(probe.work.size());
  for (const auto& work : probe.work) {
    feedback.rank_cost_units.push_back(
        static_cast<double>(work.cost_units()));
  }
  out.weights = core::calibration_weights(feedback);
  if (out.weights.empty()) {
    log::warn("calibration probe was degenerate (a rank observed no time or "
              "no work); keeping the static placement");
    out.probe_seconds = timer.seconds();
    return out;
  }
  const auto policy = core::make_policy(core::Schedule::kCalibrated);
  const core::PartitionParams fitted =
      policy->plan_params(plan.params().partition, feedback);
  out.plan = std::make_unique<core::LbePlan>(plan, fitted);
  out.probe_seconds = timer.seconds();
  return out;
}

}  // namespace

SearchOutcome run_search_pipeline(const PlanBundle& plan,
                                  const QueryBundle& queries,
                                  const AppOptions& opts,
                                  const index::IndexBundle* warm) {
  search::DistributedParams params = opts.search;
  params.prep_seconds = plan.prep_seconds;

  // `--schedule calibrated`: probe, refit, re-partition. The re-planned
  // LbePlan shares the original's grouping and global variant id space, so
  // decoy labels and locate_variant stay valid; only placement (and the
  // mapping table) changes.
  const core::LbePlan* lbe = plan.plan.get();
  SearchOutcome outcome;
  std::unique_ptr<core::LbePlan> replanned;
  if (opts.search.schedule.schedule == core::Schedule::kCalibrated) {
    CalibrationOutcome calibration =
        calibrate_plan(*plan.plan, queries, opts, warm);
    outcome.calibration_weights = std::move(calibration.weights);
    outcome.calibration_seconds = calibration.probe_seconds;
    // The probe is serial master work before the fleet starts — charge it
    // like the plan-construction prep it is.
    params.prep_seconds += calibration.probe_seconds;
    if (calibration.plan != nullptr) {
      replanned = std::move(calibration.plan);
      lbe = replanned.get();
      if (warm != nullptr && !(warm->mapping == lbe->mapping())) {
        log::warn("calibrated re-plan changed the rank assignment; the warm "
                  "index bundle no longer matches and will be ignored");
        warm = nullptr;
      }
    }
  }
  if (warm != nullptr) params.preloaded = &warm->per_rank;

  std::unique_ptr<mpi::Transport> transport;
  // Keeps the process backend's mapped staging indexes alive through the
  // search — params.preloaded points into it.
  std::vector<std::unique_ptr<index::ChunkedIndex>> staged;

  if (opts.backend == "process") {
    // Every rank — forked workers and the master alike — mmaps its rank
    // file from one shared read-only bundle, so co-located ranks keep a
    // single page-cache copy of the index between them: the warm bundle
    // the user pointed at, or a freshly staged one on a cold start.
    std::string bundle_dir;
    if (warm != nullptr && !opts.index_dir.empty()) {
      bundle_dir = opts.index_dir;
    } else {
      bundle_dir = stage_process_bundle(*lbe, opts);
      staged.reserve(static_cast<std::size_t>(lbe->ranks()));
      for (int rank = 0; rank < lbe->ranks(); ++rank) {
        staged.push_back(index::ChunkedIndex::map_file(
            index::bundle_rank_path(bundle_dir, rank), lbe->mods(),
            opts.search.index));
      }
      params.preloaded = &staged;
    }

    search::wire::SearchSetup setup;
    setup.bundle_dir = bundle_dir;
    // Ship the *resolved* level, never "auto": all ranks must take the
    // same decode kernels even if dispatch defaults ever diverge.
    setup.simd_level =
        index::codec::simd_level_name(index::codec::resolved_simd_level());
    setup.mods = lbe->mods();
    setup.index_params = opts.search.index;
    setup.search = opts.search.search;
    setup.result_batch = opts.search.result_batch;
    setup.threads_per_rank = opts.search.threads_per_rank;
    setup.schedule = opts.search.schedule;
    setup.queries = queries.spectra;

    mpi::ProcessTransportOptions process_options;
    process_options.ranks = lbe->ranks();
    process_options.program = kSearchRankProgram;
    process_options.setup = search::wire::encode_search_setup(setup);
    transport =
        std::make_unique<mpi::ProcessTransport>(std::move(process_options));
  } else {
    mpi::ClusterOptions cluster_options;
    cluster_options.ranks = lbe->ranks();
    cluster_options.engine = opts.backend == "threads"
                                 ? mpi::Engine::kThreads
                                 : mpi::Engine::kVirtual;
    transport = std::make_unique<mpi::Cluster>(cluster_options);
  }

  outcome.report = search::run_distributed_search(*transport, *lbe,
                                                  queries.spectra, params);
  outcome.comm = transport->reports();

  for (const auto& result : outcome.report.results) {
    if (result.top.empty()) continue;
    ++outcome.queries_with_results;
    const auto location = lbe->locate_variant(result.top[0].peptide);
    outcome.fdr_inputs.push_back(search::FdrInput{
        result.top[0].score, plan.decoy_bases[location.base_id]});
  }
  outcome.qvalues = search::compute_qvalues(outcome.fdr_inputs);
  outcome.accepted = search::accepted_at(outcome.fdr_inputs, outcome.qvalues,
                                         opts.fdr_threshold);

  outcome.time_stats =
      perf::load_stats(outcome.report.query_phase_seconds());
  outcome.work_stats = perf::load_stats_from_work(outcome.report.work);
  return outcome;
}

void write_reports(const std::string& out_dir, const PlanBundle& plan,
                   const SearchOutcome& outcome) {
  std::filesystem::create_directories(out_dir);

  search::write_psm_report_file(out_dir + "/psms.tsv", *plan.plan,
                                outcome.report.results, plan.decoy_bases);

  {
    std::ofstream out(out_dir + "/fdr.csv");
    if (!out) throw IoError("cannot write " + out_dir + "/fdr.csv");
    CsvWriter csv(out, {"query_id", "score", "is_decoy", "qvalue"});
    std::size_t row = 0;
    for (const auto& result : outcome.report.results) {
      if (result.top.empty()) continue;
      csv.row({CsvWriter::field(static_cast<std::uint64_t>(result.query_id)),
               CsvWriter::field(
                   static_cast<double>(outcome.fdr_inputs[row].score)),
               outcome.fdr_inputs[row].is_decoy ? "1" : "0",
               CsvWriter::field(outcome.qvalues[row])});
      ++row;
    }
  }

  {
    std::ofstream out(out_dir + "/metrics.csv");
    if (!out) throw IoError("cannot write " + out_dir + "/metrics.csv");
    // comm_* are the transport's measured per-rank totals (messages and
    // payload bytes actually sent), reported next to the Eq. 1 predicted
    // loads; peak_rss_bytes is per worker process (0 on in-process
    // backends, where ranks share one address space).
    // spans_*/blocks_pruned/candidates_scored expose block-max pruning per
    // rank (index/query_work.hpp); work_units deliberately excludes them.
    // The scheduling columns: batches_executed/stolen per *executing* rank,
    // and — when the schedule consumed cost predictions — the summed
    // predicted cost plus the relative-error summary of the Eq. 1 model per
    // *index* rank (|predicted - observed| / observed over that rank's
    // partial index; all 0 under lbe_static, where no model is built).
    CsvWriter csv(out, {"rank", "entries", "index_bytes", "build_seconds",
                        "query_seconds", "work_units", "spans_walked",
                        "spans_pruned", "blocks_pruned", "candidates_scored",
                        "comm_messages", "comm_bytes", "peak_rss_bytes",
                        "batches_executed", "batches_stolen",
                        "predicted_cost", "pred_rel_err_mean",
                        "pred_rel_err_p95"});
    const auto& report = outcome.report;

    // Per-index-rank fit of predicted vs observed (postings touched is what
    // the model predicts; see search/load_model.hpp).
    const std::size_t ranks = report.times.size();
    std::vector<std::vector<double>> predicted(ranks);
    std::vector<std::vector<double>> observed(ranks);
    for (const auto& record : report.query_costs) {
      const auto slot = static_cast<std::size_t>(record.index_rank);
      predicted[slot].push_back(record.predicted);
      observed[slot].push_back(
          static_cast<double>(record.work.postings_touched));
    }

    for (std::size_t rank = 0; rank < ranks; ++rank) {
      const mpi::RankReport comm = rank < outcome.comm.size()
                                       ? outcome.comm[rank]
                                       : mpi::RankReport{};
      const search::CostModelFit fit =
          search::fit_cost_model(predicted[rank], observed[rank]);
      double predicted_total = 0.0;
      for (const double value : predicted[rank]) predicted_total += value;
      csv.row({CsvWriter::field(static_cast<std::uint64_t>(rank)),
               CsvWriter::field(report.index_entries[rank]),
               CsvWriter::field(report.index_bytes[rank]),
               CsvWriter::field(report.times[rank].build_seconds()),
               CsvWriter::field(report.times[rank].query_seconds()),
               CsvWriter::field(report.work[rank].cost_units()),
               CsvWriter::field(report.work[rank].spans_walked),
               CsvWriter::field(report.work[rank].spans_pruned),
               CsvWriter::field(report.work[rank].blocks_pruned),
               CsvWriter::field(report.work[rank].candidates_scored),
               CsvWriter::field(comm.messages_sent),
               CsvWriter::field(comm.bytes_sent),
               CsvWriter::field(comm.peak_rss_bytes),
               CsvWriter::field(report.batches_executed[rank]),
               CsvWriter::field(report.batches_stolen[rank]),
               CsvWriter::field(predicted_total),
               CsvWriter::field(fit.samples == 0 ? 0.0 : fit.mean_rel_error),
               CsvWriter::field(fit.samples == 0 ? 0.0 : fit.p95_rel_error)});
    }
  }

  // Per-query predicted vs observed cost, one row per (index rank, query) —
  // only written when the schedule actually built the cost model.
  if (!outcome.report.query_costs.empty()) {
    std::ofstream out(out_dir + "/query_costs.csv");
    if (!out) throw IoError("cannot write " + out_dir + "/query_costs.csv");
    CsvWriter csv(out, {"index_rank", "query_id", "executed_by",
                        "predicted_cost", "observed_postings",
                        "observed_work_units"});
    for (const auto& record : outcome.report.query_costs) {
      csv.row({CsvWriter::field(static_cast<std::uint64_t>(
                   static_cast<std::uint32_t>(record.index_rank))),
               CsvWriter::field(static_cast<std::uint64_t>(record.query_id)),
               CsvWriter::field(static_cast<std::uint64_t>(
                   static_cast<std::uint32_t>(record.executed_by))),
               CsvWriter::field(record.predicted),
               CsvWriter::field(record.work.postings_touched),
               CsvWriter::field(record.work.cost_units())});
    }
  }
}

std::size_t compare_with_baseline(const PlanBundle& plan,
                                  const QueryBundle& queries,
                                  const AppOptions& opts,
                                  const SearchOutcome& outcome) {
  search::DistributedParams params = opts.search;
  const auto baseline =
      search::run_shared_baseline(*plan.plan, queries.spectra, params);
  LBE_CHECK(baseline.results.size() == outcome.report.results.size(),
            "baseline result count mismatch");
  std::size_t mismatches = 0;
  for (std::size_t q = 0; q < baseline.results.size(); ++q) {
    const auto& distributed = outcome.report.results[q].top;
    const auto& shared = baseline.results[q].top;
    bool equal = distributed.size() == shared.size();
    for (std::size_t k = 0; equal && k < distributed.size(); ++k) {
      equal = distributed[k].peptide == shared[k].peptide &&
              distributed[k].score == shared[k].score;
    }
    if (!equal) {
      ++mismatches;
      log::warn("baseline mismatch on query ", q);
    }
  }
  return mismatches;
}

}  // namespace lbe::app
