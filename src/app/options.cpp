#include "app/options.hpp"

#include <algorithm>
#include <array>
#include <cstdint>
#include <limits>
#include <string_view>

#include "common/error.hpp"
#include "common/strings.hpp"
#include "core/scheduling.hpp"
#include "index/posting_codec.hpp"

namespace lbe::app {

namespace {

// Every key the driver understands; parse_cli/options_from_config reject
// anything else so a misspelled knob cannot silently fall back to a default.
constexpr std::array<std::string_view, 51> kKnownKeys = {
    "db",          "queries",       "plan",
    "index",       "index_out",     "mmap",
    "simd",
    "out",         "entries",       "num_queries",
    "seed",        "enzyme",        "missed_cleavages",
    "min_length",  "max_length",    "min_mass",
    "max_mass",    "decoy",         "mods",
    "max_mod_residues", "max_variants_per_peptide",
    "policy",      "ranks",         "partition_seed",
    "criterion",   "d",             "d_prime",
    "gsize",       "resolution",    "max_fragment_mz",
    "max_fragment_charge", "fragment_tolerance", "shared_peak_min",
    "precursor_tolerance", "open_window", "prune",
    "ptm_fraction", "top_k",        "fdr",
    "threads",     "batch",         "backend",
    "report",      "verify",        "socket",
    "queue_depth", "workers",       "shutdown",
    "schedule",    "steal_threshold", "calibration_queries",
};

bool known_key(std::string_view key) {
  return std::find(kKnownKeys.begin(), kKnownKeys.end(), key) !=
         kKnownKeys.end();
}

digest::DecoyMethod decoy_method_from_string(const std::string& name,
                                             bool& enabled) {
  const std::string s = str::to_upper(name);
  enabled = true;
  if (s == "NONE" || s == "OFF") {
    enabled = false;
    return digest::DecoyMethod::kPseudoReverse;
  }
  if (s == "REVERSE") return digest::DecoyMethod::kReverse;
  if (s == "PSEUDO" || s == "PSEUDO-REVERSE" || s == "PSEUDO_REVERSE") {
    return digest::DecoyMethod::kPseudoReverse;
  }
  if (s == "SHUFFLE") return digest::DecoyMethod::kShuffle;
  throw ConfigError("unknown decoy method: " + name +
                    " (expected none|reverse|pseudo|shuffle)");
}

std::uint32_t get_u32(const Config& config, const std::string& key,
                      std::uint32_t fallback) {
  const std::int64_t v = config.get_int(key, fallback);
  if (v < 0 || v > std::numeric_limits<std::uint32_t>::max()) {
    throw ConfigError("config key '" + key + "' out of range");
  }
  return static_cast<std::uint32_t>(v);
}

}  // namespace

void AppOptions::validate() const {
  if (lbe.partition.ranks < 1) {
    throw ConfigError("ranks must be >= 1");
  }
  if (threads < 1) {
    throw ConfigError("threads must be >= 1");
  }
  if (batch < 1) {
    throw ConfigError("batch must be >= 1");
  }
  if (queue_depth < 1) {
    throw ConfigError("queue_depth must be >= 1");
  }
  if (serve_workers < 1) {
    throw ConfigError("workers must be >= 1");
  }
  if (fdr_threshold <= 0.0 || fdr_threshold > 1.0) {
    throw ConfigError("fdr must be in (0, 1]");
  }
  if (!plan_path.empty() && !fasta_path.empty()) {
    throw ConfigError("give either 'plan' or 'db', not both");
  }
  digestion.validate();
  lbe.grouping.validate();
  lbe.partition.validate();
  search.schedule.validate();
}

AppOptions options_from_config(const Config& config) {
  for (const auto& key : config.keys()) {
    if (!known_key(key)) {
      throw ConfigError("unknown config key: " + key);
    }
  }

  AppOptions opts;
  opts.fasta_path = config.get_string("db", "");
  opts.ms2_path = config.get_string("queries", "");
  opts.plan_path = config.get_string("plan", "");
  opts.index_dir = config.get_string("index", "");
  opts.index_out_dir = config.get_string("index_out", "");
  opts.index_mmap = config.get_bool("mmap", true);
  opts.simd = config.get_string("simd", "auto");
  {
    index::codec::SimdLevel level;
    if (!index::codec::parse_simd_level(opts.simd, level)) {
      throw ConfigError("unknown simd level: " + opts.simd +
                        " (expected auto|scalar|sse|avx2)");
    }
  }
  opts.out_dir = config.get_string("out", ".");

  opts.target_entries =
      static_cast<std::uint64_t>(config.get_int("entries", 50000));
  opts.num_queries = get_u32(config, "num_queries", 64);
  opts.seed = static_cast<std::uint64_t>(config.get_int("seed", 2019));

  opts.enzyme_name = config.get_string("enzyme", "trypsin");
  opts.digestion.missed_cleavages = get_u32(config, "missed_cleavages", 2);
  opts.digestion.min_length = get_u32(config, "min_length", 6);
  opts.digestion.max_length = get_u32(config, "max_length", 40);
  opts.digestion.min_mass = config.get_double("min_mass", 100.0);
  opts.digestion.max_mass = config.get_double("max_mass", 5000.0);
  opts.decoy_method = decoy_method_from_string(
      config.get_string("decoy", "pseudo"), opts.add_decoys);
  opts.mods_spec = config.get_string("mods", "paper");
  opts.variants.max_mod_residues = get_u32(config, "max_mod_residues", 5);
  opts.variants.max_variants_per_peptide = static_cast<std::uint64_t>(
      config.get_int("max_variants_per_peptide", 0));

  opts.lbe.partition.policy =
      core::policy_from_string(config.get_string("policy", "cyclic"));
  opts.lbe.partition.ranks =
      static_cast<int>(config.get_int("ranks", 4));
  opts.lbe.partition.seed =
      static_cast<std::uint64_t>(config.get_int("partition_seed", 42));
  const std::int64_t criterion = config.get_int("criterion", 2);
  if (criterion != 1 && criterion != 2) {
    throw ConfigError("criterion must be 1 or 2");
  }
  opts.lbe.grouping.criterion = criterion == 1
                                    ? core::GroupingCriterion::kAbsolute
                                    : core::GroupingCriterion::kNormalized;
  opts.lbe.grouping.d = get_u32(config, "d", 2);
  opts.lbe.grouping.d_prime = config.get_double("d_prime", 0.86);
  opts.lbe.grouping.gsize = get_u32(config, "gsize", 20);

  opts.search.index.resolution = config.get_double("resolution", 0.01);
  opts.search.index.max_fragment_mz =
      config.get_double("max_fragment_mz", 2000.0);
  const std::uint32_t max_charge = get_u32(config, "max_fragment_charge", 1);
  if (max_charge < 1 || max_charge > 255) {
    throw ConfigError("max_fragment_charge must be in [1, 255]");
  }
  opts.search.index.fragments.max_fragment_charge =
      static_cast<Charge>(max_charge);
  opts.search.search.filter.fragment_tolerance =
      config.get_double("fragment_tolerance", 0.05);
  opts.search.search.filter.shared_peak_min =
      get_u32(config, "shared_peak_min", 4);
  opts.search.search.filter.precursor_tolerance = config.get_double(
      "precursor_tolerance", std::numeric_limits<double>::infinity());
  // --open-window is the open-search spelling of the precursor window: a
  // half-width in Da, or "inf" for a fully open search. It wins over
  // precursor_tolerance when both are given.
  {
    const std::string open_window = config.get_string("open_window", "");
    if (!open_window.empty()) {
      const std::string upper = str::to_upper(open_window);
      if (upper == "INF" || upper == "INFINITY") {
        opts.search.search.filter.precursor_tolerance =
            std::numeric_limits<double>::infinity();
      } else {
        const double width = config.get_double("open_window", 0.0);
        if (!(width >= 0.0)) {
          throw ConfigError("open_window must be >= 0 Da (or 'inf')");
        }
        opts.search.search.filter.precursor_tolerance = width;
      }
    }
  }
  opts.search.search.filter.prune_blocks = config.get_bool("prune", true);
  opts.ptm_fraction = config.get_double("ptm_fraction", 0.0);
  if (opts.ptm_fraction < 0.0 || opts.ptm_fraction > 1.0) {
    throw ConfigError("ptm_fraction must be in [0, 1]");
  }
  opts.search.search.score.fragments = opts.search.index.fragments;
  opts.search.search.top_k = get_u32(config, "top_k", 5);
  opts.fdr_threshold = config.get_double("fdr", 0.02);

  opts.threads = get_u32(config, "threads", 1);
  opts.batch = get_u32(config, "batch", 64);
  opts.backend = config.get_string("backend", "virtual");
  if (opts.backend != "virtual" && opts.backend != "threads" &&
      opts.backend != "process") {
    throw ConfigError("unknown backend: " + opts.backend +
                      " (expected virtual|threads|process)");
  }
  opts.socket_path = config.get_string("socket", "");
  opts.queue_depth = get_u32(config, "queue_depth", 64);
  opts.serve_workers = get_u32(config, "workers", 1);
  opts.send_shutdown = config.get_bool("shutdown", false);
  opts.search.threads_per_rank = opts.threads;
  opts.search.result_batch = opts.batch;

  opts.search.schedule.schedule =
      core::schedule_from_string(config.get_string("schedule", "lbe_static"));
  opts.search.schedule.steal_threshold =
      config.get_double("steal_threshold", 1.2);
  opts.search.schedule.calibration_queries =
      get_u32(config, "calibration_queries", 16);

  opts.write_report = config.get_bool("report", true);
  opts.verify_baseline = config.get_bool("verify", false);
  opts.source = config;

  opts.validate();
  return opts;
}

CliInvocation parse_cli(int argc, const char* const* argv) {
  CliInvocation cli;
  if (argc < 2) {
    cli.subcommand = "help";
    return cli;
  }
  cli.subcommand = argv[1];
  if (cli.subcommand == "-h" || cli.subcommand == "--help") {
    cli.subcommand = "help";
    return cli;
  }

  Config overrides;
  std::string config_path;
  int i = 2;
  while (i < argc) {
    std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0 || arg.size() <= 2) {
      throw ConfigError("expected --key [value], got: " + arg);
    }
    arg = arg.substr(2);
    std::string key;
    std::string value;
    const std::size_t eq = arg.find('=');
    if (eq != std::string::npos) {
      key = arg.substr(0, eq);
      value = arg.substr(eq + 1);
      ++i;
    } else {
      key = arg;
      // `--flag` followed by another option (or end of line) means `true`.
      if (i + 1 < argc && std::string_view(argv[i + 1]).rfind("--", 0) != 0) {
        value = argv[i + 1];
        i += 2;
      } else {
        value = "true";
        ++i;
      }
    }
    // CLI convenience: dashes and underscores are interchangeable in option
    // names (--index-out == --index_out); config-file keys stay canonical.
    std::replace(key.begin(), key.end(), '-', '_');
    if (key == "config") {
      config_path = value;
    } else {
      if (!known_key(key)) {
        throw ConfigError("unknown option: --" + key);
      }
      overrides.set(key, value);
    }
  }

  if (!config_path.empty()) {
    cli.config = Config::from_file(config_path);
  }
  // CLI overrides beat the config file.
  for (const auto& key : overrides.keys()) {
    cli.config.set(key, overrides.get_string(key));
  }
  return cli;
}

const char* usage() {
  return R"(lbectl — end-to-end LBE peptide-search driver

Usage:
  lbectl <prepare|search|stats|serve|query> [--config FILE] [--key value]...

Subcommands:
  prepare   build the LBE plan and per-rank indexes, serialize to --out
  search    run the full distributed pipeline and write PSM/metrics reports
  stats     print partition load-balance statistics for the configured plan
  serve     long-lived daemon: map the index bundle once, answer query
            batches over a Unix-domain socket (SIGHUP = hot-swap reload)
  query     client: send the query set to a running daemon, write psms.tsv

Common options (config-file keys and --key overrides are identical;
dashes in CLI option names are accepted as underscores):
  --db FILE            protein FASTA (omit for a synthetic proteome)
  --queries FILE       query MS2 file (omit for synthetic spectra)
  --plan FILE          plan file from `lbectl prepare` (instead of --db)
  --index DIR          warm start: load the per-rank index bundle written by
                       `prepare --index-out` instead of rebuilding (falls
                       back to a rebuild, with a warning, on any mismatch)
  --mmap on|off        with --index: mmap rank files and materialize chunks
                       lazily on first query touch (on, the default), or
                       eagerly stream every array into memory (off).
                       Results are byte-identical either way
  --simd LEVEL         posting-decode kernel for packed (v4) indexes:
                       auto|scalar|sse|avx2 (default auto = widest ISA the
                       CPU supports). Results are byte-identical at every
                       level; unsupported requests degrade with a notice
  --index_out DIR      prepare: index bundle directory (default: --out)
  --out DIR            output directory (default .)
  --entries N          synthetic index-entry target        (default 50000)
  --num_queries N      synthetic query count               (default 64)
  --seed N             synthetic workload seed             (default 2019)
  --policy NAME        chunk|cyclic|random|weighted        (default cyclic)
  --ranks N            simulated MPI ranks                 (default 4)
  --backend NAME       search rank transport: virtual|threads|process.
                       virtual/threads simulate the cluster in-process;
                       process forks one OS worker per rank, exchanging the
                       same messages over Unix-domain sockets while all
                       ranks share one read-only mmap of the index bundle.
                       Results are byte-identical across backends
  --threads N          threads per rank (hybrid mode)      (default 1)
  --batch N            queries per result batch            (default 64)
  --decoy NAME         none|reverse|pseudo|shuffle         (default pseudo)
  --fdr Q              q-value acceptance threshold        (default 0.02)
  --verify             also run the shared-memory baseline and compare
  --report BOOL        write psms.tsv + metrics.csv        (default true)

Open-search options:
  --open-window W      precursor window half-width in Da, or `inf` for a
                       fully open search (alias for --precursor_tolerance;
                       wins when both are given)
  --prune BOOL         block-max span pruning via v5 per-block bounds
                       (default true). Results are byte-identical with
                       pruning on or off — CI proves it per commit
  --ptm_fraction F     synthetic spectra only: fraction of queries carrying
                       an unannounced PTM-like mass shift   (default 0)

Scheduling options (search):
  --schedule NAME      lbe_static|calibrated|stealing      (default lbe_static)
                       lbe_static: the paper's fixed placement. calibrated:
                       probe a few queries, refit the cost model to observed
                       per-rank speeds, re-partition with matching weights.
                       stealing: static placement plus runtime rebalancing —
                       idle ranks claim query batches from the most-loaded
                       rank's unstarted tail; psms.tsv stays byte-identical
                       to lbe_static on every backend (CI proves it)
  --steal_threshold F  steal only from a rank whose backlog is at least F x
                       the mean remaining load                (default 1.2)
  --calibration_queries N  probe size for --schedule calibrated (default 16)

Serving options:
  --socket PATH        serve/query: Unix-domain socket path (required)
  --queue_depth N      serve: bounded request-queue depth   (default 64)
  --workers N          serve: concurrent search batches     (default 1)
  --shutdown           query: ask the daemon to exit after the batch

Examples:
  lbectl search --ranks 4 --threads 4 --verify
  lbectl search --open-window 100 --ptm_fraction 0.5
  lbectl prepare --db proteins.fasta --out run1
  lbectl search --plan run1/plan.lbe --queries spectra.ms2 --out run1
  lbectl search --plan run1/plan.lbe --index run1 --out run1
  lbectl search --plan run1/plan.lbe --index run1 --backend process
  lbectl search --ranks 8 --schedule stealing --steal-threshold 1.5
  lbectl serve --plan run1/plan.lbe --index run1 --socket /tmp/lbe.sock
  lbectl query --plan run1/plan.lbe --socket /tmp/lbe.sock --out client
  lbectl stats --policy chunk --ranks 16
)";
}

}  // namespace lbe::app
