#include "app/rank_programs.hpp"

#include <utility>

#include "common/error.hpp"
#include "common/logging.hpp"
#include "index/chunked_index.hpp"
#include "index/posting_codec.hpp"
#include "index/serialize.hpp"
#include "search/distributed.hpp"
#include "search/wire.hpp"
#include "simmpi/process.hpp"

namespace lbe::app {

namespace {

// The worker half of `lbectl search --backend process`: one forked process
// per non-master rank runs exactly this, against the same wire protocol the
// in-process engines speak (search/distributed.hpp).
void search_rank_program(mpi::Comm& comm, const mpi::Bytes& setup_payload) {
  const search::wire::SearchSetup setup =
      search::wire::decode_search_setup(setup_payload);

  // Pin the master's resolved SIMD level so every rank decodes postings
  // through the same kernel. The master ships a concrete level (never
  // "auto"); an unsupported request on a heterogeneous host degrades with
  // the usual notice — results are byte-identical at every level anyway.
  if (!setup.simd_level.empty()) {
    namespace codec = index::codec;
    codec::SimdLevel level = codec::SimdLevel::kAuto;
    if (!codec::parse_simd_level(setup.simd_level, level)) {
      throw CommError("master requested unknown simd level: " +
                      setup.simd_level);
    }
    codec::set_simd_level(level);
    if (level != codec::SimdLevel::kAuto &&
        codec::resolved_simd_level() != level) {
      log::warn("rank ", comm.rank(), ": simd level '", setup.simd_level,
                "' is not supported by this CPU; using '",
                codec::simd_level_name(codec::resolved_simd_level()), "'");
    }
  }

  search::WorkerSearchConfig config;
  config.search = setup.search;
  config.result_batch = setup.result_batch;
  config.threads_per_rank = setup.threads_per_rank;
  // Same pure function of (schedule, ranks, queries) the master evaluates —
  // both sides of the socket must agree on whether steal messages flow.
  config.stealing = search::steal_protocol_active(
      setup.schedule, comm.size(), setup.queries.size());
  config.cost_model =
      setup.schedule.schedule != core::Schedule::kLbeStatic;

  // mmap this rank's file from the shared bundle: co-located ranks mapping
  // the same read-only files share one physical page-cache copy, so the
  // fleet's aggregate resident index stays ~one bundle, not ranks× it.
  const auto index_source = [&setup](int rank) {
    search::RankIndex index;
    index.owned = index::ChunkedIndex::map_file(
        index::bundle_rank_path(setup.bundle_dir, rank), setup.mods,
        setup.index_params);
    index.view = index.owned.get();
    return index;
  };

  search::run_search_worker_rank(comm, setup.queries, setup.mods, config,
                                 index_source);
}

}  // namespace

void register_rank_programs() {
  mpi::register_rank_program(kSearchRankProgram, search_rank_program);
}

}  // namespace lbe::app
