// lbectl subcommand entry points. Each returns a process exit code:
// 0 = success, 1 = pipeline ran but a check failed (e.g. --verify found a
// baseline mismatch); configuration/input errors throw lbe::Error and the
// caller maps them to exit code 2.
#pragma once

#include "app/options.hpp"

namespace lbe::app {

/// Builds the LBE plan plus per-rank chunked indexes and serializes them
/// under opts.out_dir (plan.lbe + rank<N>.idx).
int run_prepare(const AppOptions& opts);

/// Full pipeline: database -> plan -> distributed search -> FDR -> reports.
int run_search(const AppOptions& opts);

/// Prints partition load-balance statistics (per-rank entries, Eq. 1 LI)
/// for the configured plan, plus a policy comparison table.
int run_stats(const AppOptions& opts);

/// Long-lived search daemon on opts.socket_path: maps the index bundle
/// once, answers query batches until SIGINT/SIGTERM or a client shutdown
/// request; SIGHUP re-prepares the serving context and hot-swaps it.
int run_serve(const AppOptions& opts);

/// Daemon client: builds the query set exactly as `search` would, ships it
/// in batches to the daemon at opts.socket_path, writes psms.tsv.
int run_query(const AppOptions& opts);

/// Maps a parsed invocation to the matching subcommand (or prints usage).
int dispatch(const CliInvocation& cli);

}  // namespace lbe::app
