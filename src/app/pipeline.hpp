// lbectl pipeline layer — the glue between the library modules and the CLI.
//
// Mirrors the paper's end-to-end flow as composable steps:
//
//   FASTA / synth::proteome ──digest+decoy+dedup──▶ DatabaseBundle
//   DatabaseBundle ──LbePlan (group + partition)──▶ PlanBundle
//   MS2 / synth::spectra ───────────────────────────▶ QueryBundle
//   (Plan, Queries) ──simmpi distributed search──▶ SearchOutcome
//                      └─ target-decoy FDR, Eq. 1 load metrics, reports
//
// Every step is callable from tests (the integration suite drives the same
// functions the binary does), and `prepare` can serialize a DatabaseBundle
// so repeated searches skip digestion.
#pragma once

#include <iosfwd>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "app/options.hpp"
#include "chem/modification.hpp"
#include "chem/spectrum.hpp"
#include "core/lbe_layer.hpp"
#include "index/serialize.hpp"
#include "perf/metrics.hpp"
#include "search/distributed.hpp"
#include "search/fdr.hpp"
#include "simmpi/transport.hpp"

namespace lbe::app {

/// The deduplicated target+decoy peptide database ready for planning.
/// Peptides are in input order (targets first, then surviving decoys);
/// `is_decoy` is parallel to `peptides`.
struct DatabaseBundle {
  std::vector<std::string> peptides;
  std::vector<bool> is_decoy;
  chem::ModificationSet mods;
  std::string mods_spec = "paper";  ///< re-parseable provenance
  digest::VariantParams variants;
  std::size_t num_target_proteins = 0;
  std::size_t num_decoy_proteins = 0;
  std::size_t duplicates_dropped = 0;
  std::size_t decoy_collisions_dropped = 0;
  /// LbeParams a prepared plan was built with (set by load_plan). A search
  /// from `--plan` reuses these unless the invocation overrides a key.
  std::optional<core::LbeParams> stored_lbe;
};

/// The query spectra and where they came from.
struct QueryBundle {
  std::vector<chem::Spectrum> spectra;
  std::string origin;  ///< file path or "<synthetic>"
};

/// Everything `search`/`stats` need about one workload.
struct PipelineInputs {
  DatabaseBundle database;
  QueryBundle queries;
};

/// Builds the database (plan file > FASTA > synthetic proteome, in that
/// precedence) and the query set (MS2 file > synthetic spectra).
PipelineInputs prepare_inputs(const AppOptions& opts);

/// Database only — `prepare` and `stats` skip query generation.
DatabaseBundle build_database(const AppOptions& opts);

/// An LbePlan plus the clustered-order decoy flags FDR needs.
struct PlanBundle {
  std::unique_ptr<core::LbePlan> plan;
  std::vector<bool> decoy_bases;  ///< clustered base id -> is decoy
  double prep_seconds = 0.0;      ///< measured LbePlan construction time
};

PlanBundle build_plan(const DatabaseBundle& db, const AppOptions& opts);

/// The LbeParams build_plan will actually use: a plan file's stored params
/// where present, with any key the invocation names explicitly (policy,
/// ranks, partition_seed, criterion, d, d_prime, gsize) overriding it.
core::LbeParams effective_lbe_params(const DatabaseBundle& db,
                                     const AppOptions& opts);

/// Serialized database format (`lbectl prepare` / `--plan`): a versioned
/// binary file holding peptides, decoy flags, modification spec, variant
/// limits and the LbeParams used at prepare time, written with
/// common/binary_io.
void save_plan(std::ostream& out, const DatabaseBundle& db,
               const core::LbeParams& lbe);
void save_plan_file(const std::string& path, const DatabaseBundle& db,
                    const core::LbeParams& lbe);
DatabaseBundle load_plan(std::istream& in);
DatabaseBundle load_plan_file(const std::string& path);

/// One end-to-end distributed search plus its derived statistics.
struct SearchOutcome {
  search::DistributedReport report;
  /// Per-rank transport accounting (messages/bytes actually sent, peak RSS
  /// for real worker processes) — what metrics.csv's comm_* columns report
  /// next to the Eq. 1 predicted loads. Same on every backend: the SPMD
  /// program is identical, only the transport underneath changes.
  std::vector<mpi::RankReport> comm;
  /// Best PSM per answered query, in query order (input to FDR).
  std::vector<search::FdrInput> fdr_inputs;
  std::vector<double> qvalues;        ///< parallel to fdr_inputs
  std::size_t accepted = 0;           ///< targets at q <= opts.fdr_threshold
  std::size_t queries_with_results = 0;
  perf::LoadStats time_stats;  ///< Eq. 1 over query-phase seconds
  perf::LoadStats work_stats;  ///< Eq. 1 over deterministic work units
  /// `--schedule calibrated`: per-rank speed weights the re-plan used
  /// (empty = probe skipped or degenerate, static placement kept) and the
  /// probe's wall time (charged to the run's prep phase).
  std::vector<double> calibration_weights;
  double calibration_seconds = 0.0;
};

/// Builds the full warm-start artifact for `prepare --index_out`: every
/// rank's partial index plus the plan/index parameters, mapping table and
/// database fingerprint they were carved under (see index/serialize.hpp).
/// `db` must be the database `plan` was built from.
index::IndexBundle build_index_bundle(const PlanBundle& plan,
                                      const DatabaseBundle& db,
                                      const AppOptions& opts);

/// CRC-32 fingerprint of a database's content (peptides, decoy flags,
/// modification spec, variant limits) — stored in the bundle manifest so a
/// bundle built from an edited database is rejected even when every
/// parameter and the mapping table still match.
std::uint32_t database_fingerprint(const DatabaseBundle& db);

/// Loads `dir`'s bundle and validates it against the plan this search is
/// about to run (LBE params, index/chunking params, mapping table, rank
/// count). Returns nullptr — after logging a warning — when anything
/// mismatches, or when the bundle is a stale on-disk format version (e.g.
/// v3 files under a v4 build), so the caller falls back to a cold
/// rebuild. Corrupt or truncated files still throw IoError: a bundle the
/// user explicitly pointed at must not be silently ignored. The returned
/// bundle borrows `db.mods`, so `db` must outlive it.
std::unique_ptr<index::IndexBundle> try_load_warm_indexes(
    const std::string& dir, const PlanBundle& plan, const DatabaseBundle& db,
    const AppOptions& opts);

/// `warm` (optional) supplies preloaded per-rank indexes from
/// try_load_warm_indexes; results are identical to a cold build.
SearchOutcome run_search_pipeline(const PlanBundle& plan,
                                  const QueryBundle& queries,
                                  const AppOptions& opts,
                                  const index::IndexBundle* warm = nullptr);

/// Writes psms.tsv, fdr.csv and metrics.csv under `out_dir` (created if
/// missing).
void write_reports(const std::string& out_dir, const PlanBundle& plan,
                   const SearchOutcome& outcome);

/// Re-runs the shared-memory baseline engine and counts queries whose
/// merged PSM list differs from the distributed result (0 = exact match).
std::size_t compare_with_baseline(const PlanBundle& plan,
                                  const QueryBundle& queries,
                                  const AppOptions& opts,
                                  const SearchOutcome& outcome);

}  // namespace lbe::app
