// lbectl option surface.
//
// One `AppOptions` struct carries every knob of the end-to-end pipeline
// (database source, digestion, LBE plan, index/search parameters, runtime
// parallelism, outputs). Options come from a `Config` (key = value file
// and/or `--key value` CLI overrides), so a search is reproducible from a
// single config file checked into an experiment directory.
#pragma once

#include <cstdint>
#include <string>

#include "common/config.hpp"
#include "core/lbe_layer.hpp"
#include "digest/decoy.hpp"
#include "digest/digestor.hpp"
#include "digest/variants.hpp"
#include "search/distributed.hpp"

namespace lbe::app {

struct AppOptions {
  // ---- inputs ----
  std::string fasta_path;  ///< protein FASTA; empty = synthetic proteome
  std::string ms2_path;    ///< query MS2 file; empty = synthetic spectra
  std::string plan_path;   ///< serialized plan from `lbectl prepare`
  std::string out_dir = ".";
  /// `prepare`: where the warm-start index bundle lands (defaults to
  /// out_dir, next to the plan).
  std::string index_out_dir;
  /// `search`: bundle directory from `prepare --index-out`; load instead of
  /// rebuilding per-rank indexes (falls back to rebuild on params mismatch).
  std::string index_dir;
  /// `--mmap on|off` (default on): warm-start by mmapping rank files and
  /// materializing chunks lazily on first query touch, instead of eagerly
  /// streaming every array into heap vectors. Results are identical; only
  /// time-to-first-query and peak RSS change.
  bool index_mmap = true;
  /// `--simd auto|scalar|sse|avx2`: posting-decode kernel for packed
  /// (format v4) indexes (index/posting_codec.hpp). `auto` (default)
  /// resolves to the widest ISA the CPU supports; results are
  /// byte-identical at every level — CI proves it per commit.
  std::string simd = "auto";

  // ---- synthetic workload (used when fasta_path is empty) ----
  std::uint64_t target_entries = 50000;
  std::uint32_t num_queries = 64;
  std::uint64_t seed = 2019;
  /// `--ptm_fraction F`: fraction of synthetic queries carrying an
  /// unannounced PTM-like mass shift (synth/spectra.hpp). Those spectra are
  /// findable only with a precursor window wider than the shift — the
  /// open-search workload. 0 (the default) leaves the generator's draw
  /// sequence untouched, so existing workloads stay byte-identical.
  double ptm_fraction = 0.0;

  // ---- digestion / database prep ----
  std::string enzyme_name = "trypsin";
  digest::DigestionParams digestion;
  bool add_decoys = true;
  digest::DecoyMethod decoy_method = digest::DecoyMethod::kPseudoReverse;
  std::string mods_spec = "paper";  ///< "paper" or a ModificationSet::parse spec
  digest::VariantParams variants;

  // ---- LBE grouping + partitioning ----
  core::LbeParams lbe;

  // ---- index + search ----
  search::DistributedParams search;
  double fdr_threshold = 0.02;

  // ---- runtime ----
  std::uint32_t threads = 1;  ///< threads per simulated rank
  std::uint32_t batch = 64;   ///< queries per result batch on the wire
  /// `--backend virtual|threads|process`: rank transport for `search`.
  /// `virtual` (default) and `threads` are the in-process simulated
  /// engines (simmpi/cluster.hpp); `process` forks one OS worker process
  /// per rank over Unix-domain sockets, with co-located ranks sharing one
  /// read-only mmap of the index bundle (simmpi/process.hpp). Results are
  /// byte-identical across backends — CI proves it per commit.
  std::string backend = "virtual";

  // ---- serving (`lbectl serve` / `lbectl query`) ----
  std::string socket_path;          ///< Unix-domain socket the daemon binds
  std::uint32_t queue_depth = 64;   ///< serve: bounded request-queue depth
  std::uint32_t serve_workers = 1;  ///< serve: concurrent search batches
  bool send_shutdown = false;       ///< query: ask the daemon to exit after

  // ---- outputs / behaviour ----
  bool write_report = true;      ///< psms.tsv + metrics.csv under out_dir
  bool verify_baseline = false;  ///< re-run shared-memory engine and compare

  /// The Config these options were built from. A prepared plan stores the
  /// LbeParams it was built with; at load time a key present here overrides
  /// the stored value, an absent key keeps it (see effective_lbe_params).
  Config source;

  /// Throws ConfigError on inconsistent values.
  void validate() const;
};

/// Builds options from a parsed Config; throws ConfigError on unknown keys
/// or unparseable values so typos fail loudly instead of silently defaulting.
AppOptions options_from_config(const Config& config);

/// Parsed command line: `lbectl <subcommand> [--config FILE] [--key value]...`
struct CliInvocation {
  std::string subcommand;  ///< "prepare" | "search" | "stats" | "help"
  Config config;           ///< config file merged with CLI overrides
};

/// Parses argv. `--key value` and `--key=value` both work; a `--flag`
/// followed by another option (or nothing) is treated as a boolean `true`.
/// Throws ConfigError on malformed arguments.
CliInvocation parse_cli(int argc, const char* const* argv);

/// The usage/help text.
const char* usage();

}  // namespace lbe::app
