// Synthetic MS/MS query spectra (substitution for PRIDE PXD009072).
//
// Each query is derived from a real database peptide: fragment it, keep each
// fragment with an observation probability, jitter m/z with Gaussian noise,
// draw intensities from a simple b/y model, then add uniform noise peaks.
// The source peptide index is recorded so recall ("does the engine find the
// peptide that generated the spectrum?") is testable end-to-end.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "chem/modification.hpp"
#include "chem/spectrum.hpp"
#include "io/ms2.hpp"
#include "theospec/fragmenter.hpp"

namespace lbe::synth {

struct SpectraParams {
  std::uint32_t num_spectra = 1000;
  double peak_observe_prob = 0.85;  ///< fragment actually seen
  double mz_jitter_stddev = 0.008;  ///< Da, instrument error (< ΔF = 0.05)
  std::uint32_t noise_peaks = 25;
  Mz noise_max_mz = 2000.0;
  double modified_fraction = 0.3;  ///< queries drawn from modified variants
  std::uint32_t max_mods_per_query = 2;
  /// Open-search workload: fraction of spectra carrying an *unannounced*
  /// PTM-like mass shift. A shifted spectrum picks a delta uniform in
  /// [ptm_shift_min, ptm_shift_max] and a residue site; fragments containing
  /// the site (b-ions past it, y-ions covering it from the C terminus) move
  /// by delta/charge and the precursor moves by delta, exactly like a real
  /// modification the database does not know about. Such spectra are only
  /// findable with a precursor window wider than the shift. The default 0
  /// consumes no RNG draws, so existing workloads stay byte-identical.
  double ptm_shift_fraction = 0.0;
  Mass ptm_shift_min = 12.0;   ///< Da, smallest unannounced shift
  Mass ptm_shift_max = 120.0;  ///< Da, largest unannounced shift
  Charge precursor_charge_min = 2;
  Charge precursor_charge_max = 3;
  theospec::FragmentParams fragments;  ///< true-peak generator settings
  std::uint64_t seed = 0xFACE;
};

struct GeneratedSpectra {
  std::vector<chem::Spectrum> spectra;
  /// truth[i] = index into the source peptide list for spectra[i].
  std::vector<std::uint32_t> truth;
  /// ptm_shift[i] = unannounced precursor mass shift applied to spectra[i]
  /// (0 for unshifted spectra). Always sized like `spectra`.
  std::vector<Mass> ptm_shift;

  io::Ms2File to_ms2() const;
};

/// Samples peptides uniformly from `peptides` and synthesizes one spectrum
/// per draw. Deterministic given the seed.
GeneratedSpectra generate_spectra(const std::vector<std::string>& peptides,
                                  const chem::ModificationSet& mods,
                                  const SpectraParams& params);

}  // namespace lbe::synth
