#include "synth/proteome.hpp"

#include <algorithm>
#include <array>
#include <cmath>

#include "chem/amino_acid.hpp"
#include "common/error.hpp"
#include "common/rng.hpp"

namespace lbe::synth {

namespace {

// Cumulative SwissProt composition for inverse-CDF sampling.
const std::array<double, 20>& cumulative_frequencies() {
  static const std::array<double, 20> kCdf = [] {
    std::array<double, 20> cdf{};
    double sum = 0.0;
    const auto& freq = chem::swissprot_frequencies();
    for (std::size_t i = 0; i < freq.size(); ++i) {
      sum += freq[i];
      cdf[i] = sum;
    }
    cdf.back() = 1.0;  // guard against rounding
    return cdf;
  }();
  return kCdf;
}

char sample_residue(Xoshiro256& rng) {
  const double u = rng.uniform();
  const auto& cdf = cumulative_frequencies();
  const auto it = std::lower_bound(cdf.begin(), cdf.end(), u);
  const auto idx = static_cast<std::size_t>(it - cdf.begin());
  return chem::kResidues[std::min<std::size_t>(idx, 19)];
}

std::uint64_t sub_seed(std::uint64_t seed, std::uint64_t stream) {
  SplitMix64 sm(seed ^ (0x9E3779B97F4A7C15ull * (stream + 1)));
  return sm.next();
}

}  // namespace

std::string random_protein(std::size_t length, std::uint64_t seed) {
  Xoshiro256 rng(seed);
  std::string protein;
  protein.reserve(length);
  for (std::size_t i = 0; i < length; ++i) protein += sample_residue(rng);
  return protein;
}

std::vector<std::string> random_peptides(std::size_t count,
                                         std::uint64_t seed,
                                         std::size_t min_len,
                                         std::size_t max_len) {
  LBE_CHECK(min_len >= 1 && min_len <= max_len, "bad peptide length range");
  Xoshiro256 rng(seed);
  std::vector<std::string> out;
  out.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    std::string s;
    const std::size_t len = min_len + rng.below(max_len - min_len + 1);
    for (std::size_t j = 0; j < len; ++j) {
      s += chem::kResidues[rng.below(chem::kResidues.size())];
    }
    out.push_back(std::move(s));
  }
  return out;
}

std::string mutate_protein(const std::string& base, double substitution_rate,
                           double indel_rate, std::uint64_t seed) {
  Xoshiro256 rng(seed);
  std::string out;
  out.reserve(base.size() + 8);
  for (const char c : base) {
    if (rng.bernoulli(indel_rate)) {
      if (rng.bernoulli(0.5)) {
        out += sample_residue(rng);  // insertion (keeps original too)
        out += c;
      }
      // else: deletion — skip the residue
      continue;
    }
    out += rng.bernoulli(substitution_rate) ? sample_residue(rng) : c;
  }
  if (out.empty()) out += sample_residue(rng);  // degenerate all-deleted case
  return out;
}

std::vector<io::FastaRecord> generate_family(const ProteomeParams& params,
                                             std::uint32_t family_index) {
  if (params.substitution_rate < 0.0 || params.substitution_rate > 1.0 ||
      params.indel_rate < 0.0 || params.indel_rate > 1.0) {
    throw ConfigError("proteome: rates must be in [0, 1]");
  }
  std::vector<io::FastaRecord> records;
  records.reserve(params.proteins_per_family);

  const std::uint64_t family_seed = sub_seed(params.seed, family_index);
  Xoshiro256 rng(family_seed);

  const double raw_length =
      static_cast<double>(params.protein_length_mean) +
      rng.normal() * static_cast<double>(params.protein_length_stddev);
  const std::size_t length = static_cast<std::size_t>(std::max(
      static_cast<double>(params.protein_length_min), raw_length));

  const std::string base = random_protein(length, sub_seed(family_seed, 1));
  for (std::uint32_t member = 0; member < params.proteins_per_family;
       ++member) {
    std::string sequence =
        member == 0 ? base
                    : mutate_protein(base, params.substitution_rate,
                                     params.indel_rate,
                                     sub_seed(family_seed, 100 + member));
    records.push_back(io::FastaRecord{
        "fam" + std::to_string(family_index) + "|mem" +
            std::to_string(member),
        std::move(sequence)});
  }
  return records;
}

std::vector<io::FastaRecord> generate_proteome(const ProteomeParams& params) {
  std::vector<io::FastaRecord> records;
  records.reserve(static_cast<std::size_t>(params.num_families) *
                  params.proteins_per_family);
  for (std::uint32_t family = 0; family < params.num_families; ++family) {
    auto family_records = generate_family(params, family);
    records.insert(records.end(),
                   std::make_move_iterator(family_records.begin()),
                   std::make_move_iterator(family_records.end()));
  }
  return records;
}

}  // namespace lbe::synth
