#include "synth/workload.hpp"

#include <algorithm>
#include <unordered_set>

#include "common/error.hpp"
#include "common/logging.hpp"
#include "digest/digestor.hpp"
#include "digest/enzyme.hpp"

namespace lbe::synth {

Workload make_workload(const WorkloadParams& params) {
  Workload workload;
  workload.mods = chem::ModificationSet::paper_default();
  workload.variant_params = params.variants;

  // §V-A digestion settings: fully tryptic, <= 2 missed cleavages,
  // length 6-40, mass 100-5000 Da.
  digest::DigestionParams digestion;
  const auto& enzyme = digest::trypsin();

  // Grow the proteome family-by-family until enough entries accumulate.
  // Family generation is prefix-stable (per-family sub-seeds), so this is
  // equivalent to generating a big proteome and cutting it. Dedup and
  // variant counting run incrementally — each new peptide is seen once.
  ProteomeParams proteome = params.proteome;
  proteome.seed = params.seed;
  std::unordered_set<std::string> seen;
  std::uint64_t cumulative = 0;
  constexpr std::uint32_t kMaxFamilies = 1u << 20;

  for (std::uint32_t family = 0;
       cumulative < params.target_entries && family < kMaxFamilies;
       ++family) {
    const auto records = generate_family(proteome, family);
    for (std::size_t r = 0;
         r < records.size() && cumulative < params.target_entries; ++r) {
      auto peptides = digest::digest_protein(records[r].sequence, 0, enzyme,
                                             digestion);
      for (auto& peptide : peptides) {
        if (cumulative >= params.target_entries) break;
        if (!seen.insert(peptide.sequence).second) continue;
        cumulative += digest::count_variants(peptide.sequence, workload.mods,
                                             workload.variant_params);
        workload.base_peptides.push_back(std::move(peptide.sequence));
      }
    }
  }
  if (cumulative < params.target_entries) {
    throw ConfigError("workload: could not reach target_entries");
  }
  workload.planned_entries = cumulative;

  // Queries sample the retained peptides.
  SpectraParams spectra = params.spectra;
  spectra.num_spectra = params.num_queries;
  spectra.seed = params.seed ^ 0xABCDEF;
  auto generated =
      generate_spectra(workload.base_peptides, workload.mods, spectra);
  workload.queries = std::move(generated.spectra);
  workload.query_truth = std::move(generated.truth);

  log::debug("workload: ", workload.base_peptides.size(), " base peptides, ",
             workload.planned_entries, " entries, ",
             workload.queries.size(), " queries");
  return workload;
}

Workload make_paper_workload(std::uint64_t target_entries,
                             std::uint32_t num_queries, std::uint64_t seed,
                             double ptm_fraction) {
  WorkloadParams params;
  params.target_entries = target_entries;
  params.num_queries = num_queries;
  params.seed = seed;
  params.spectra.ptm_shift_fraction = ptm_fraction;
  params.variants.max_mod_residues = 5;  // §V-A: <= 5 modified residues
  // Cap the blow-up per peptide so scaled-down runs stay tractable while
  // preserving the "index grows much faster than the peptide count" effect.
  params.variants.max_variants_per_peptide = 64;
  return make_workload(params);
}

}  // namespace lbe::synth
