#include "synth/spectra.hpp"

#include <algorithm>

#include "chem/mass.hpp"
#include "common/error.hpp"
#include "common/rng.hpp"
#include "digest/variants.hpp"

namespace lbe::synth {

io::Ms2File GeneratedSpectra::to_ms2() const {
  io::Ms2File file;
  file.headers["Extractor"] = "lbe-synth";
  file.headers["ExtractorVersion"] = "1.0";
  file.spectra = spectra;
  return file;
}

GeneratedSpectra generate_spectra(const std::vector<std::string>& peptides,
                                  const chem::ModificationSet& mods,
                                  const SpectraParams& params) {
  if (peptides.empty()) {
    throw ConfigError("spectra generator needs a non-empty peptide list");
  }
  if (params.precursor_charge_min < 1 ||
      params.precursor_charge_min > params.precursor_charge_max) {
    throw ConfigError("spectra generator: bad precursor charge range");
  }

  if (params.ptm_shift_fraction < 0.0 || params.ptm_shift_fraction > 1.0 ||
      (params.ptm_shift_fraction > 0.0 &&
       !(params.ptm_shift_min <= params.ptm_shift_max))) {
    throw ConfigError("spectra generator: bad PTM shift parameters");
  }

  GeneratedSpectra out;
  out.spectra.reserve(params.num_spectra);
  out.truth.reserve(params.num_spectra);
  out.ptm_shift.reserve(params.num_spectra);
  Xoshiro256 rng(params.seed);

  for (std::uint32_t s = 0; s < params.num_spectra; ++s) {
    const auto pick = static_cast<std::uint32_t>(rng.below(peptides.size()));
    const std::string& base = peptides[pick];

    // Possibly present the peptide in a modified form; variant 0 is the
    // unmodified one, so skip it when drawing a modified presentation.
    chem::Peptide peptide(base);
    if (rng.bernoulli(params.modified_fraction)) {
      digest::VariantParams vp;
      vp.max_mod_residues = params.max_mods_per_query;
      auto variants = digest::enumerate_variants(base, mods, vp);
      if (variants.size() > 1) {
        const auto idx = 1 + rng.below(variants.size() - 1);
        peptide = std::move(variants[idx]);
      }
    }

    // Open-search mode: with probability ptm_shift_fraction, plant an
    // unannounced mass shift at one residue site. The guard keeps the draw
    // sequence untouched when the mode is off, so every pre-existing
    // workload stays byte-identical.
    Mass ptm_delta = 0.0;
    std::size_t ptm_site = 0;
    if (params.ptm_shift_fraction > 0.0 &&
        rng.bernoulli(params.ptm_shift_fraction)) {
      ptm_delta = rng.uniform(params.ptm_shift_min, params.ptm_shift_max);
      ptm_site = static_cast<std::size_t>(rng.below(base.size()));
    }

    chem::Spectrum spec;
    const auto fragments =
        theospec::fragment_peptide(peptide, mods, params.fragments);
    for (const auto& fragment : fragments) {
      if (!rng.bernoulli(params.peak_observe_prob)) continue;
      Mz mz = fragment.mz + rng.normal() * params.mz_jitter_stddev;
      if (ptm_delta != 0.0) {
        // A fragment moves iff it contains the shifted residue: y-ions
        // cover the last `ordinal` residues, every other series (b, a) the
        // first `ordinal`.
        const bool contains_site =
            fragment.series == theospec::IonSeries::kY
                ? ptm_site >= base.size() - fragment.ordinal
                : ptm_site < fragment.ordinal;
        if (contains_site) mz += ptm_delta / fragment.charge;
      }
      // y-ions fly better than b-ions in CID; keep that bias so intensity
      // ranking is realistic for hyperscore tests.
      const double series_base =
          fragment.series == theospec::IonSeries::kY ? 100.0 : 60.0;
      const float intensity =
          static_cast<float>(series_base * (0.25 + 0.75 * rng.uniform()));
      if (mz > 0.0) spec.add_peak(mz, intensity);
    }
    for (std::uint32_t n = 0; n < params.noise_peaks; ++n) {
      spec.add_peak(rng.uniform(50.0, params.noise_max_mz),
                    static_cast<float>(rng.uniform(1.0, 20.0)));
    }

    const Charge z = static_cast<Charge>(
        params.precursor_charge_min +
        rng.below(static_cast<std::uint64_t>(params.precursor_charge_max -
                                             params.precursor_charge_min) +
                  1));
    spec.precursor.neutral_mass = peptide.mass(mods) + ptm_delta;
    spec.precursor.charge = z;
    spec.precursor.mz = chem::mz_from_mass(spec.precursor.neutral_mass, z);
    spec.scan_id = s + 1;
    spec.title = "synth|" + base;
    spec.finalize();

    out.spectra.push_back(std::move(spec));
    out.truth.push_back(pick);
    out.ptm_shift.push_back(ptm_delta);
  }
  return out;
}

}  // namespace lbe::synth
