// Synthetic proteome generation (substitution for UniProt UP000005640).
//
// Real proteomes contain families of homologous proteins whose tryptic
// peptides differ by a few residues — exactly the similarity structure LBE's
// grouping step exploits and the Chunk baseline suffers from. The generator
// reproduces it directly: each family derives `proteins_per_family` members
// from one base sequence through point substitutions and indels; residues
// are drawn from SwissProt composition so cleavage-site density (K/R) and
// peptide length distributions are realistic.
//
// Determinism: every family is generated from a sub-seed derived from
// (seed, family index), so enlarging `num_families` extends a database
// without changing the proteins already generated — workload sweeps reuse
// prefixes instead of regenerating worlds.
#pragma once

#include <cstdint>
#include <vector>

#include "io/fasta.hpp"

namespace lbe::synth {

struct ProteomeParams {
  std::uint32_t num_families = 64;
  std::uint32_t proteins_per_family = 8;
  std::uint32_t protein_length_mean = 360;
  std::uint32_t protein_length_stddev = 90;
  std::uint32_t protein_length_min = 60;
  double substitution_rate = 0.04;  ///< per-residue, vs the family base
  double indel_rate = 0.008;        ///< per-residue insert-or-delete
  std::uint64_t seed = 0x5EED;
};

/// Generates the database; headers are "fam<F>|mem<M>".
std::vector<io::FastaRecord> generate_proteome(const ProteomeParams& params);

/// Generates exactly one family (`proteins_per_family` records). Family
/// `f` of a proteome equals generate_family(params, f) — the prefix
/// stability the workload builder relies on.
std::vector<io::FastaRecord> generate_family(const ProteomeParams& params,
                                             std::uint32_t family_index);

/// One protein sequence of the given length from SwissProt composition.
std::string random_protein(std::size_t length, std::uint64_t seed);

/// Uniform-residue peptide sequences with lengths in [min_len, max_len] —
/// the shared workload generator of the micro benchmarks and the
/// filtration-equivalence tests (deterministic per seed).
std::vector<std::string> random_peptides(std::size_t count,
                                         std::uint64_t seed,
                                         std::size_t min_len = 8,
                                         std::size_t max_len = 27);

/// Applies the family mutation model to `base` (exposed for tests).
std::string mutate_protein(const std::string& base, double substitution_rate,
                           double indel_rate, std::uint64_t seed);

}  // namespace lbe::synth
