// Benchmark workload presets mirroring §V-A of the paper, scaled to finish
// in seconds on one core. A workload bundles everything one experiment
// needs: deduplicated base peptides (the digested database), the paper's
// modification set, variant limits, and a query batch with ground truth.
//
// `target_entries` plays the role of the paper's "index size (million
// peptides & spectra)" axis: the base peptide list is cut where cumulative
// variant counts reach the target, so the realized index size lands within
// one peptide's variant count of the request.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "chem/modification.hpp"
#include "chem/spectrum.hpp"
#include "digest/variants.hpp"
#include "synth/proteome.hpp"
#include "synth/spectra.hpp"

namespace lbe::synth {

struct WorkloadParams {
  std::uint64_t target_entries = 100000;  ///< index entries incl. variants
  std::uint32_t num_queries = 200;
  std::uint64_t seed = 2019;  ///< publication year; any value works
  ProteomeParams proteome;    ///< family structure knobs
  SpectraParams spectra;      ///< query realism knobs
  digest::VariantParams variants;
};

struct Workload {
  std::vector<std::string> base_peptides;  ///< digested + deduplicated
  chem::ModificationSet mods;              ///< paper defaults (§V-A)
  digest::VariantParams variant_params;
  std::vector<chem::Spectrum> queries;
  std::vector<std::uint32_t> query_truth;  ///< base-peptide index per query
  std::uint64_t planned_entries = 0;       ///< realized variant total
};

/// Builds a workload: grows the synthetic proteome family-by-family until
/// the digested+expanded entry count reaches the target, then generates
/// queries from the retained peptides. Deterministic given `seed`.
Workload make_workload(const WorkloadParams& params);

/// Convenience used by every figure bench: paper-default settings at a
/// given index size and query count. `ptm_fraction` > 0 plants unannounced
/// PTM-like mass shifts on that fraction of queries (the open-search
/// workload, synth/spectra.hpp); 0 keeps the generator stream untouched.
Workload make_paper_workload(std::uint64_t target_entries,
                             std::uint32_t num_queries,
                             std::uint64_t seed = 2019,
                             double ptm_fraction = 0.0);

}  // namespace lbe::synth
