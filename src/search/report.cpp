#include "search/report.hpp"

#include <cstdio>
#include <fstream>
#include <ostream>

#include "common/error.hpp"

namespace lbe::search {

void write_psm_report(std::ostream& out, const core::LbePlan& plan,
                      const std::vector<GlobalQueryResult>& results,
                      const std::vector<bool>& decoy_bases) {
  out << "query_id\tpsm_rank\tpeptide\tbase_sequence\tneutral_mass\t"
         "shared_peaks\tscore\tsource_rank\tis_decoy\n";
  char buffer[64];
  for (const auto& result : results) {
    for (std::size_t rank = 0; rank < result.top.size(); ++rank) {
      const auto& psm = result.top[rank];
      const auto loc = plan.locate_variant(psm.peptide);
      const chem::Peptide peptide = plan.variant_peptide(psm.peptide);
      const bool decoy =
          loc.base_id < decoy_bases.size() && decoy_bases[loc.base_id];
      out << result.query_id << '\t' << rank + 1 << '\t'
          << peptide.annotated(plan.mods()) << '\t'
          << plan.base_sequence(loc.base_id) << '\t';
      std::snprintf(buffer, sizeof(buffer), "%.5f",
                    peptide.mass(plan.mods()));
      out << buffer << '\t' << psm.shared_peaks << '\t';
      std::snprintf(buffer, sizeof(buffer), "%.4f",
                    static_cast<double>(psm.score));
      out << buffer << '\t' << psm.source_rank << '\t' << (decoy ? 1 : 0)
          << '\n';
    }
  }
}

void write_psm_report_file(const std::string& path, const core::LbePlan& plan,
                           const std::vector<GlobalQueryResult>& results,
                           const std::vector<bool>& decoy_bases) {
  std::ofstream out(path);
  if (!out) throw IoError("cannot open report file for writing: " + path);
  write_psm_report(out, plan, results, decoy_bases);
  if (!out) throw IoError("report write failed: " + path);
}

}  // namespace lbe::search
