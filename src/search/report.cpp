#include "search/report.hpp"

#include <cstdio>
#include <fstream>
#include <ostream>

#include "common/error.hpp"

namespace lbe::search {

std::vector<ResolvedPsm> resolve_psms(
    const core::LbePlan& plan, const std::vector<GlobalQueryResult>& results,
    const std::vector<bool>& decoy_bases) {
  std::vector<ResolvedPsm> rows;
  for (const auto& result : results) {
    for (std::size_t rank = 0; rank < result.top.size(); ++rank) {
      const auto& psm = result.top[rank];
      const auto loc = plan.locate_variant(psm.peptide);
      const chem::Peptide peptide = plan.variant_peptide(psm.peptide);
      ResolvedPsm row;
      row.query_id = result.query_id;
      row.psm_rank = static_cast<std::uint32_t>(rank + 1);
      row.peptide = peptide.annotated(plan.mods());
      row.base_sequence = plan.base_sequence(loc.base_id);
      row.neutral_mass = peptide.mass(plan.mods());
      row.shared_peaks = psm.shared_peaks;
      row.score = psm.score;
      row.source_rank = psm.source_rank;
      row.is_decoy = loc.base_id < decoy_bases.size() &&
                     decoy_bases[loc.base_id];
      rows.push_back(std::move(row));
    }
  }
  return rows;
}

void write_psm_rows(std::ostream& out, const std::vector<ResolvedPsm>& rows) {
  out << "query_id\tpsm_rank\tpeptide\tbase_sequence\tneutral_mass\t"
         "shared_peaks\tscore\tsource_rank\tis_decoy\n";
  char buffer[64];
  for (const auto& row : rows) {
    out << row.query_id << '\t' << row.psm_rank << '\t' << row.peptide
        << '\t' << row.base_sequence << '\t';
    std::snprintf(buffer, sizeof(buffer), "%.5f", row.neutral_mass);
    out << buffer << '\t' << row.shared_peaks << '\t';
    std::snprintf(buffer, sizeof(buffer), "%.4f",
                  static_cast<double>(row.score));
    out << buffer << '\t' << row.source_rank << '\t' << (row.is_decoy ? 1 : 0)
        << '\n';
  }
}

void write_psm_rows_file(const std::string& path,
                         const std::vector<ResolvedPsm>& rows) {
  std::ofstream out(path);
  if (!out) throw IoError("cannot open report file for writing: " + path);
  write_psm_rows(out, rows);
  if (!out) throw IoError("report write failed: " + path);
}

void write_psm_report(std::ostream& out, const core::LbePlan& plan,
                      const std::vector<GlobalQueryResult>& results,
                      const std::vector<bool>& decoy_bases) {
  write_psm_rows(out, resolve_psms(plan, results, decoy_bases));
}

void write_psm_report_file(const std::string& path, const core::LbePlan& plan,
                           const std::vector<GlobalQueryResult>& results,
                           const std::vector<bool>& decoy_bases) {
  std::ofstream out(path);
  if (!out) throw IoError("cannot open report file for writing: " + path);
  write_psm_report(out, plan, results, decoy_bases);
  if (!out) throw IoError("report write failed: " + path);
}

}  // namespace lbe::search
