// Distributed querying — §III-E / Fig. 4 of the paper.
//
// Every rank builds a partial index over its LBE-assigned peptides, all
// ranks search the full query set against their partial index, and the
// per-query top-k PSMs travel to the MPI master as *virtual (local) ids*.
// The master maps them back to global ids with the O(1) mapping table and
// merges the per-rank lists into the final report.
//
// Phase structure and what each figure reads from it:
//
//   [prep]  serial master work: grouping + partitioning (charged to rank 0;
//           everyone else waits at a barrier)           — Fig. 9/10 Amdahl
//   [build] per-rank index construction                 — Fig. 5 memory
//   [query] per-rank filtration + rescoring             — Fig. 6 LI, Fig. 7/8
//   [merge] result gather + mapping at master           — Figs. 9/10
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "core/lbe_layer.hpp"
#include "core/scheduling.hpp"
#include "index/chunked_index.hpp"
#include "search/query_engine.hpp"
#include "simmpi/cluster.hpp"
#include "simmpi/transport.hpp"

namespace lbe::search {

struct DistributedParams {
  SearchParams search;
  index::IndexParams index;
  index::ChunkingParams chunking;
  /// Queries per result message to the master (comm-granularity ablation).
  std::uint32_t result_batch = 256;
  /// Seconds of serial master prep to charge rank 0 (measured by caller,
  /// e.g. the LbePlan construction time). Models the Amdahl serial term.
  double prep_seconds = 0.0;
  /// Hybrid MPI+threads mode (§VIII future work): threads per rank fanning
  /// the whole per-query pipeline — preprocessing, filtration, scoring —
  /// over per-thread arenas within each rank's query loop. 1 = off.
  /// Results are identical either way; only timing changes.
  std::uint32_t threads_per_rank = 1;
  /// Warm start (index/serialize.hpp bundles): when non-null, rank m adopts
  /// (*preloaded)[m] in the build phase instead of constructing its partial
  /// index — the paper's "partition once, search many" amortization. Must
  /// hold exactly plan.ranks() entries built from the same plan and params
  /// (the app layer validates and falls back to a cold build otherwise);
  /// the pointees must outlive the search. Results are identical to a cold
  /// build: the serialized transformed arrays are the built ones.
  const std::vector<std::unique_ptr<index::ChunkedIndex>>* preloaded = nullptr;
  /// Scheduling policy (core/scheduling.hpp). kLbeStatic reproduces the
  /// fixed owner-computes protocol bit for bit; kStealing keeps static
  /// placement but lets idle ranks claim query batches from the most-loaded
  /// rank's unstarted tail; kCalibrated only changes the *plan* (the caller
  /// re-partitions before invoking this), so the runtime treats it like
  /// static placement plus cost-record collection.
  core::ScheduleParams schedule;
};

/// Whether the steal-request/steal-grant protocol is live for a run. Both
/// sides of a process boundary must agree, so it is a pure function of data
/// both sides have: master passes plan.ranks(), a worker comm.size().
bool steal_protocol_active(const core::ScheduleParams& schedule, int ranks,
                           std::size_t num_queries);

/// A PSM with master-side (global) peptide identity.
struct GlobalPsm {
  GlobalPeptideId peptide = kInvalidPeptideId;
  std::uint32_t shared_peaks = 0;
  float score = 0.0f;
  RankId source_rank = -1;
};

struct GlobalQueryResult {
  std::uint32_t query_id = 0;
  std::vector<GlobalPsm> top;  ///< merged across ranks, best-first
};

/// The master's merge order: score desc, shared desc, global id asc. Global
/// variant ids are unique across ranks, so this is a strict total order and
/// any merge that sorts with it is deterministic. Exposed so the serving
/// daemon reproduces the one-shot merge bit for bit.
bool global_psm_better(const GlobalPsm& a, const GlobalPsm& b);

/// Per-rank virtual-time phase boundaries (seconds on that rank's clock).
struct PhaseTimes {
  double start = 0.0;         ///< after the prep barrier
  double build_done = 0.0;    ///< partial index constructed
  double query_start = 0.0;   ///< after the post-build barrier
  double query_done = 0.0;    ///< all queries filtered + scored
  double finish = 0.0;        ///< results sent / merge complete

  double build_seconds() const { return build_done - start; }
  double query_seconds() const { return query_done - query_start; }
};

/// One query's predicted vs observed cost against one rank's partial index.
/// Collected master-side (from result-batch payloads) whenever the schedule
/// consumes predictions; sorted by (index_rank, query_id) so the record
/// stream is executor- and arrival-order-independent.
struct QueryCostRecord {
  std::uint32_t query_id = 0;
  RankId index_rank = -1;   ///< whose partial index the query ran against
  RankId executed_by = -1;  ///< who searched it (differs when stolen)
  double predicted = 0.0;   ///< Eq. 1 cost-model prediction
  index::QueryWork work;    ///< observed counters for this query alone
};

struct DistributedReport {
  std::vector<PhaseTimes> times;           ///< per rank
  std::vector<index::QueryWork> work;      ///< per rank, deterministic
  std::vector<std::uint64_t> index_bytes;  ///< per rank partial index memory
  std::vector<std::uint64_t> index_entries;  ///< per rank peptide entries
  std::uint64_t mapping_bytes = 0;         ///< master-side mapping table
  std::vector<GlobalQueryResult> results;  ///< final, at master
  double makespan = 0.0;                   ///< max rank finish time
  /// Per-rank result batches searched / stolen (empty counters under
  /// lbe_static where no rank can execute foreign work).
  std::vector<std::uint64_t> batches_executed;
  std::vector<std::uint64_t> batches_stolen;
  /// Predicted-vs-observed per query; empty under lbe_static (the cost
  /// model is never built there, keeping mapped indexes lazy).
  std::vector<QueryCostRecord> query_costs;

  /// Query-phase compute times, the series Fig. 6's LI is computed from.
  std::vector<double> query_phase_seconds() const;
};

/// Runs the full protocol on any rank transport (which must have
/// plan.ranks() ranks): the simulated engines run every rank in-process; a
/// ProcessTransport runs only rank 0 here while its worker processes run
/// the matching registered rank program (app/rank_programs.hpp), which
/// drives run_search_worker_rank below — the same protocol, so results are
/// byte-identical across backends. `queries` plays the role of the MS2 file
/// on shared storage: every rank reads it directly. Results are
/// deterministic given deterministic clocks.
DistributedReport run_distributed_search(
    mpi::Transport& transport, const core::LbePlan& plan,
    const std::vector<chem::Spectrum>& queries,
    const DistributedParams& params);

/// The subset of DistributedParams a worker rank needs.
struct WorkerSearchConfig {
  SearchParams search;
  std::uint32_t result_batch = 256;
  std::uint32_t threads_per_rank = 1;
  /// Run the steal-request/steal-grant loop instead of the fixed batch
  /// schedule. Must equal steal_protocol_active(...) on the master, or the
  /// two sides deadlock waiting for messages the other never sends.
  bool stealing = false;
  /// Build the per-index QueryCostModel and ship per-query predictions in
  /// result batches. Off under lbe_static: building the model materializes
  /// mapped index chunks, defeating lazy warm starts.
  bool cost_model = false;
};

/// A worker rank's partial index: `view` is always valid; `owned` keeps a
/// freshly built (or freshly mapped) index alive and is null when the view
/// borrows a caller-owned (preloaded) index.
struct RankIndex {
  std::unique_ptr<index::ChunkedIndex> owned;
  const index::ChunkedIndex* view = nullptr;
};

/// Produces rank `rank`'s partial index; called between the prep barrier
/// and the build barrier so its cost lands in the build phase.
using RankIndexSource = std::function<RankIndex(int rank)>;

/// The worker half of the distributed protocol: prep barrier, acquire the
/// partial index, build barrier, search every query shipping result batches
/// to rank 0, then ship this rank's phase/work stats. Called by the
/// in-process engines (from inside run_distributed_search's rank function)
/// and by worker processes (via the registered rank program) — one body, so
/// the SPMD program cannot drift between backends.
void run_search_worker_rank(mpi::Comm& comm,
                            const std::vector<chem::Spectrum>& queries,
                            const chem::ModificationSet& mods,
                            const WorkerSearchConfig& config,
                            const RankIndexSource& index_source);

/// Shared-memory baseline: the same engine over the global index, single
/// address space. Returns merged-format results for equivalence checks.
struct SharedBaselineReport {
  std::vector<GlobalQueryResult> results;
  index::QueryWork work;
  std::uint64_t index_bytes = 0;
  double build_seconds = 0.0;
  double query_seconds = 0.0;
};
SharedBaselineReport run_shared_baseline(
    const core::LbePlan& plan, const std::vector<chem::Spectrum>& queries,
    const DistributedParams& params);

}  // namespace lbe::search
