#include "search/scoring.hpp"

#include <cmath>

namespace lbe::search {

double log_factorial(std::uint32_t n) {
  return std::lgamma(static_cast<double>(n) + 1.0);
}

ScoreBreakdown score_candidate(const chem::Spectrum& query,
                               const chem::Peptide& peptide,
                               const chem::ModificationSet& mods,
                               const ScoreParams& params) {
  ScoreBreakdown result;
  const auto fragments =
      theospec::fragment_peptide(peptide, mods, params.fragments);
  if (fragments.empty() || query.empty()) return result;

  // Both lists are ascending in m/z: two-pointer sweep. A query peak can
  // match several theoretical fragments within tolerance; we credit the
  // closest one and advance, so every query peak is counted at most once.
  std::size_t f = 0;
  const double tol = params.fragment_tolerance;
  for (std::size_t q = 0; q < query.size(); ++q) {
    const Mz mz = query.mz(q);
    while (f < fragments.size() && fragments[f].mz < mz - tol) ++f;
    if (f == fragments.size()) break;
    // fragments[f].mz >= mz - tol; find the closest fragment in window.
    std::size_t best = fragments.size();
    double best_delta = tol;
    for (std::size_t k = f; k < fragments.size() && fragments[k].mz <= mz + tol;
         ++k) {
      const double delta = std::abs(fragments[k].mz - mz);
      if (delta <= best_delta) {
        best_delta = delta;
        best = k;
      }
    }
    if (best == fragments.size()) continue;
    const double intensity = static_cast<double>(query.intensity(q));
    switch (fragments[best].series) {
      case theospec::IonSeries::kB:
      case theospec::IonSeries::kA:  // a-ions credit the b ledger
        ++result.matched_b;
        result.intensity_b += intensity;
        break;
      case theospec::IonSeries::kY:
        ++result.matched_y;
        result.intensity_y += intensity;
        break;
    }
  }

  result.hyperscore = log_factorial(result.matched_b) +
                      log_factorial(result.matched_y) +
                      std::log1p(result.intensity_b) +
                      std::log1p(result.intensity_y);
  return result;
}

}  // namespace lbe::search
