// Query-load prediction — the paper's future-work "load-predicting model".
//
// The query phase's dominant cost is postings traffic: the engine merges
// the query peaks' fragment-tolerance windows into coalesced bin spans and
// walks every posting of each span exactly once (SlmIndex::build_spans).
// That quantity is computable from the index's bin-occupancy histogram and
// the query peak positions alone — no scorecard pass needed — so a master
// can estimate per-rank query cost before any query runs, and (with the
// Weighted policy) size partitions to heterogeneous rank speeds. The model
// performs the same window merge: summing per-peak windows independently
// would double-count overlap bins and overestimate dense spectra.
//
// The prediction is exact for the postings the engine walks and a
// lower-order approximation of total cost (it ignores the per-candidate
// term), so its correlation with measured work is high but deliberately
// not 1.0.
//
// QueryCostModel is the per-index form the scheduling layer uses: build the
// occupancy prefix sums once, then predict per query — the per-query
// predicted-vs-observed records metrics.csv reports come from it. NOTE:
// constructing one against a mapped (lazy) index materializes every chunk
// (ChunkedIndex::bin_occupancy), so the runtime only builds it when a
// schedule actually consumes predictions.
#pragma once

#include <cstdint>
#include <vector>

#include "chem/spectrum.hpp"
#include "index/chunked_index.hpp"
#include "search/preprocess.hpp"

namespace lbe::search {

class QueryCostModel {
 public:
  /// Borrows `index`'s cached occupancy prefix (ChunkedIndex computes it
  /// once, typically during the build phase); the index must outlive the
  /// model. Borrowing instead of snapshotting is what makes a thief's
  /// foreign-index cost model O(1) to construct mid-query-phase.
  QueryCostModel(const index::ChunkedIndex& index,
                 const index::QueryParams& filter,
                 const PreprocessParams& preprocess);

  /// Predicted postings traffic for one *raw* query spectrum
  /// (preprocessing applied internally, same as the engine).
  double predict(const chem::Spectrum& raw) const;

 private:
  index::Binning binning_;
  /// The index's occupancy prefix sums, size bins+1 (not owned).
  const std::vector<std::uint64_t>* prefix_ = nullptr;
  index::MzBin tol_bins_ = 0;
  PreprocessParams preprocess_;
};

/// Predicted postings traffic for searching `queries` against `index`
/// (preprocessing applied, tolerance window from `filter`).
double predict_query_cost(const index::ChunkedIndex& index,
                          const std::vector<chem::Spectrum>& queries,
                          const index::QueryParams& filter,
                          const PreprocessParams& preprocess);

/// Pearson correlation between predicted and measured per-rank loads.
/// Returns 0 when either vector is degenerate (zero variance).
double prediction_correlation(const std::vector<double>& predicted,
                              const std::vector<double>& measured);

/// Least-squares refit of the Eq. 1 cost model against observation:
/// observed ≈ slope * predicted + intercept, plus the relative-error
/// summary metrics.csv reports (|predicted - observed| / observed over
/// samples with observed > 0).
struct CostModelFit {
  double slope = 1.0;
  double intercept = 0.0;
  double mean_rel_error = 0.0;
  double p95_rel_error = 0.0;
  std::size_t samples = 0;
};

CostModelFit fit_cost_model(const std::vector<double>& predicted,
                            const std::vector<double>& observed);

}  // namespace lbe::search
