// Query-load prediction — the paper's future-work "load-predicting model".
//
// The query phase's dominant cost is postings traffic: the engine merges
// the query peaks' fragment-tolerance windows into coalesced bin spans and
// walks every posting of each span exactly once (SlmIndex::build_spans).
// That quantity is computable from the index's bin-occupancy histogram and
// the query peak positions alone — no scorecard pass needed — so a master
// can estimate per-rank query cost before any query runs, and (with the
// Weighted policy) size partitions to heterogeneous rank speeds. The model
// performs the same window merge: summing per-peak windows independently
// would double-count overlap bins and overestimate dense spectra.
//
// The prediction is exact for the postings the engine walks and a
// lower-order approximation of total cost (it ignores the per-candidate
// term), so its correlation with measured work is high but deliberately
// not 1.0.
#pragma once

#include <vector>

#include "chem/spectrum.hpp"
#include "index/chunked_index.hpp"
#include "search/preprocess.hpp"

namespace lbe::search {

/// Predicted postings traffic for searching `queries` against `index`
/// (preprocessing applied, tolerance window from `filter`).
double predict_query_cost(const index::ChunkedIndex& index,
                          const std::vector<chem::Spectrum>& queries,
                          const index::QueryParams& filter,
                          const PreprocessParams& preprocess);

/// Pearson correlation between predicted and measured per-rank loads.
/// Returns 0 when either vector is degenerate (zero variance).
double prediction_correlation(const std::vector<double>& predicted,
                              const std::vector<double>& measured);

}  // namespace lbe::search
