// PSM report writer — the tab-separated results file the pipeline hands to
// downstream tools (one row per reported PSM, best first per query).
//
// The writer is split in two layers so the serving daemon can produce
// byte-identical output without the client holding a plan: `resolve_psms`
// turns merged global results into self-contained rows (annotated peptide,
// base sequence, neutral mass, decoy flag), and `write_psm_rows` formats
// rows into the TSV. One-shot `lbectl search` composes both; `lbectl serve`
// resolves on the daemon, ships rows over the wire, and the thin client
// writes them with the same formatter.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "core/lbe_layer.hpp"
#include "search/distributed.hpp"

namespace lbe::search {

/// One report row, fully resolved against the plan — no global ids left.
struct ResolvedPsm {
  std::uint32_t query_id = 0;
  std::uint32_t psm_rank = 0;  ///< 1-based, best first within a query
  std::string peptide;         ///< modification-annotated sequence
  std::string base_sequence;
  double neutral_mass = 0.0;
  std::uint32_t shared_peaks = 0;
  float score = 0.0f;
  RankId source_rank = -1;
  bool is_decoy = false;
};

/// Resolves merged results into report rows, in query order, psm_rank
/// ascending. `decoy_bases` flags clustered base ids that came from decoy
/// proteins (empty = no decoy annotation).
std::vector<ResolvedPsm> resolve_psms(
    const core::LbePlan& plan, const std::vector<GlobalQueryResult>& results,
    const std::vector<bool>& decoy_bases = {});

/// Writes the TSV header plus one line per row. Formatting is fixed
/// (masses %.5f, scores %.4f) so identical rows always produce identical
/// bytes, wherever they were resolved.
void write_psm_rows(std::ostream& out, const std::vector<ResolvedPsm>& rows);
void write_psm_rows_file(const std::string& path,
                         const std::vector<ResolvedPsm>& rows);

/// Columns: query_id, psm_rank, peptide (annotated), base_sequence,
/// neutral_mass, shared_peaks, score, source_rank, is_decoy.
void write_psm_report(std::ostream& out, const core::LbePlan& plan,
                      const std::vector<GlobalQueryResult>& results,
                      const std::vector<bool>& decoy_bases = {});

void write_psm_report_file(const std::string& path, const core::LbePlan& plan,
                           const std::vector<GlobalQueryResult>& results,
                           const std::vector<bool>& decoy_bases = {});

}  // namespace lbe::search
