// PSM report writer — the tab-separated results file the pipeline hands to
// downstream tools (one row per reported PSM, best first per query).
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "core/lbe_layer.hpp"
#include "search/distributed.hpp"

namespace lbe::search {

/// Columns: query_id, psm_rank, peptide (annotated), base_sequence,
/// neutral_mass, shared_peaks, score, source_rank, is_decoy.
/// `decoy_bases` flags clustered base ids that came from decoy proteins
/// (empty = no decoy annotation).
void write_psm_report(std::ostream& out, const core::LbePlan& plan,
                      const std::vector<GlobalQueryResult>& results,
                      const std::vector<bool>& decoy_bases = {});

void write_psm_report_file(const std::string& path, const core::LbePlan& plan,
                           const std::vector<GlobalQueryResult>& results,
                           const std::vector<bool>& decoy_bases = {});

}  // namespace lbe::search
