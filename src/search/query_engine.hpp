// Per-rank query engine: filtration + rescoring + top-k selection.
//
// This is the code every (simulated) machine runs against its partial index;
// the shared-memory baseline runs the identical engine against the global
// index, which is what makes cross-policy equivalence testable.
#pragma once

#include <cstdint>
#include <vector>

#include "chem/spectrum.hpp"
#include "common/thread_pool.hpp"
#include "index/chunked_index.hpp"
#include "index/query_arena.hpp"
#include "search/preprocess.hpp"
#include "search/scoring.hpp"

namespace lbe::search {

struct SearchParams {
  PreprocessParams preprocess;
  index::QueryParams filter;  ///< ΔF, Shpeak, ΔM
  ScoreParams score;
  std::uint32_t top_k = 5;  ///< PSMs reported per query
  /// Candidates re-scored with the full b/y-aware hyperscore (fragment
  /// regeneration) after filter-score ranking. 0 (default) keeps the O(1)
  /// filtration score — the partition-invariant configuration distributed
  /// runs must use: per-rank full rescoring of rank-local top candidates
  /// would make scores depend on where a peptide lives.
  std::uint32_t rescore_depth = 0;
};

/// One peptide-to-spectrum match (local ids; the master remaps to global).
/// `score` is the filter score — ln(shared!) + ln(1 + matched intensity) —
/// unless the engine ran with rescore_depth > 0, in which case the top
/// candidates carry the full b/y hyperscore instead.
struct Psm {
  LocalPeptideId peptide = kInvalidPeptideId;
  std::uint32_t shared_peaks = 0;
  float score = 0.0f;
};

/// The O(1) filtration score: monotone in shared peaks and in matched
/// intensity, comparable across ranks and partitions.
double filter_score(std::uint32_t shared_peaks, double matched_intensity);

struct QueryResult {
  std::uint32_t query_id = 0;
  std::vector<Psm> top;           ///< best-first, <= top_k entries
  std::uint64_t candidates = 0;   ///< cPSMs passing filtration
};

/// Deterministic PSM ordering: hyperscore desc, shared desc, id asc.
bool psm_better(const Psm& a, const Psm& b);

class QueryEngine {
 public:
  /// `index` and `mods` must outlive the engine.
  QueryEngine(const index::ChunkedIndex& index,
              const chem::ModificationSet& mods, const SearchParams& params);

  /// Searches one *raw* spectrum (preprocessing applied internally) using
  /// the caller's arena. Thread-safe: concurrent calls with distinct
  /// arenas are independent.
  QueryResult search(const chem::Spectrum& raw, std::uint32_t query_id,
                     index::QueryWork& work, index::QueryArena& arena) const;

  /// Convenience overload using the engine's internal arena. NOT
  /// thread-safe — the single-threaded drivers and tests use this.
  QueryResult search(const chem::Spectrum& raw, std::uint32_t query_id,
                     index::QueryWork& work) const;

  /// Searches a batch; when `pool` is non-null the loop fans out over it
  /// (the hybrid MPI+threads mode of the paper's future work).
  std::vector<QueryResult> search_all(
      const std::vector<chem::Spectrum>& raw_queries,
      index::QueryWork& work, ThreadPool* pool = nullptr) const;

  /// Searches the sub-range [lo, hi) of `raw_queries` into results[lo..hi).
  /// `results` must already span at least `hi` slots. The batched distributed
  /// runtime drives this per result batch so filtration of one batch can
  /// overlap delivery of the previous one. With a pool, each worker gets a
  /// private arena, so preprocessing, filtration and scoring all run in
  /// parallel; results are identical to the serial path.
  ///
  /// When `per_query` is non-null it must also span at least `hi` slots;
  /// slots [lo, hi) are overwritten with each query's own counters (the
  /// scheduling layer's observed-cost records) while `work` still receives
  /// the range total — counters are u64 sums, so totals are identical with
  /// or without the per-query split.
  void search_range(const std::vector<chem::Spectrum>& raw_queries,
                    std::size_t lo, std::size_t hi,
                    std::vector<QueryResult>& results, index::QueryWork& work,
                    ThreadPool* pool = nullptr,
                    std::vector<index::QueryWork>* per_query = nullptr) const;

  const SearchParams& params() const noexcept { return params_; }

 private:
  QueryResult search_preprocessed(const chem::Spectrum& query,
                                  std::uint32_t query_id,
                                  index::QueryWork& work,
                                  index::QueryArena& arena) const;

  const index::ChunkedIndex* index_;
  const chem::ModificationSet* mods_;
  SearchParams params_;
  // Backs the no-arena convenience overload only.
  mutable index::QueryArena internal_arena_;
};

}  // namespace lbe::search
