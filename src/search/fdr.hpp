// Target-decoy false-discovery-rate estimation.
//
// Given PSMs scored against a concatenated target+decoy database, the
// decoy-hit rate above a score threshold estimates the false-positive rate
// among target hits at that threshold (Elias & Gygi 2007):
//
//   FDR(s) = (#decoys >= s) / max(1, #targets >= s)
//
// q-values are the monotone (cumulative-minimum from the bottom) FDRs, so
// q(psm) is the smallest FDR at which that PSM would still be accepted.
#pragma once

#include <cstdint>
#include <vector>

namespace lbe::search {

struct FdrInput {
  float score = 0.0f;
  bool is_decoy = false;
};

/// q-value per input PSM (same order as the input). Deterministic for
/// score ties (decoys sort before targets at equal score: conservative).
std::vector<double> compute_qvalues(const std::vector<FdrInput>& psms);

/// Number of *target* PSMs accepted at q <= threshold.
std::size_t accepted_at(const std::vector<FdrInput>& psms,
                        const std::vector<double>& qvalues, double threshold);

}  // namespace lbe::search
